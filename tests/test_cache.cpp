#include "cache/cache.hpp"

#include <gtest/gtest.h>

#include "cache/replacement.hpp"

namespace gpuqos {
namespace {

CacheConfig small_cache(bool srrip = false, unsigned ways = 4,
                        std::uint64_t sets = 4) {
  CacheConfig cfg;
  cfg.block_bytes = 64;
  cfg.ways = ways;
  cfg.size_bytes = sets * ways * 64;
  cfg.srrip = srrip;
  return cfg;
}

Addr addr_for(std::uint64_t set, std::uint64_t tag, std::uint64_t sets) {
  return (tag * sets + set) * 64;
}

TEST(SetAssocCache, MissThenHit) {
  SetAssocCache c(small_cache(), "t");
  EXPECT_FALSE(c.lookup(0x1000, false));
  (void)c.fill(0x1000, SourceId::cpu(0), GpuAccessClass::None, false);
  EXPECT_TRUE(c.lookup(0x1000, false));
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(SetAssocCache, BlockGranularity) {
  SetAssocCache c(small_cache(), "t");
  (void)c.fill(0x1000, SourceId::cpu(0), GpuAccessClass::None, false);
  EXPECT_TRUE(c.lookup(0x1004, false));  // same 64B block
  EXPECT_TRUE(c.lookup(0x103F, false));
  EXPECT_FALSE(c.lookup(0x1040, false));  // next block
}

TEST(SetAssocCache, WriteSetsDirtyAndEvictionReportsIt) {
  SetAssocCache c(small_cache(false, 1, 4), "t");  // direct-mapped
  (void)c.fill(addr_for(0, 1, 4), SourceId::cpu(0), GpuAccessClass::None,
               false);
  EXPECT_TRUE(c.lookup(addr_for(0, 1, 4), /*write=*/true));
  auto ev = c.fill(addr_for(0, 2, 4), SourceId::cpu(0), GpuAccessClass::None,
                   false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_TRUE(ev->dirty);
  EXPECT_EQ(ev->block_addr, addr_for(0, 1, 4));
}

TEST(SetAssocCache, EvictionReturnsOwnerAndClass) {
  SetAssocCache c(small_cache(false, 1, 4), "t");
  (void)c.fill(addr_for(1, 7, 4), SourceId::gpu(), GpuAccessClass::Texture,
               false);
  auto ev = c.fill(addr_for(1, 9, 4), SourceId::cpu(2), GpuAccessClass::None,
                   false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_TRUE(ev->owner.is_gpu());
  EXPECT_EQ(ev->gclass, GpuAccessClass::Texture);
}

TEST(SetAssocCache, InvalidateRemovesBlock) {
  SetAssocCache c(small_cache(), "t");
  (void)c.fill(0x2000, SourceId::cpu(0), GpuAccessClass::None, true);
  auto ev = c.invalidate(0x2000);
  ASSERT_TRUE(ev.has_value());
  EXPECT_TRUE(ev->dirty);
  EXPECT_FALSE(c.probe(0x2000));
  EXPECT_FALSE(c.invalidate(0x2000).has_value());
}

TEST(SetAssocCache, LruEvictsLeastRecentlyUsed) {
  SetAssocCache c(small_cache(false, 2, 4), "t");
  const Addr a = addr_for(0, 1, 4), b = addr_for(0, 2, 4),
             d = addr_for(0, 3, 4);
  (void)c.fill(a, SourceId::cpu(0), GpuAccessClass::None, false);
  (void)c.fill(b, SourceId::cpu(0), GpuAccessClass::None, false);
  EXPECT_TRUE(c.lookup(a, false));  // a is now MRU
  auto ev = c.fill(d, SourceId::cpu(0), GpuAccessClass::None, false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->block_addr, b);
}

TEST(SetAssocCache, GpuBlockAccounting) {
  SetAssocCache c(small_cache(), "t");
  EXPECT_EQ(c.gpu_blocks(), 0u);
  (void)c.fill(0x0, SourceId::gpu(), GpuAccessClass::Color, false);
  (void)c.fill(0x40, SourceId::cpu(0), GpuAccessClass::None, false);
  EXPECT_EQ(c.gpu_blocks(), 1u);
  EXPECT_EQ(c.valid_blocks(), 2u);
  (void)c.invalidate(0x0);
  EXPECT_EQ(c.gpu_blocks(), 0u);
  EXPECT_EQ(c.valid_blocks(), 1u);
}

TEST(SetAssocCache, DrainDirtyCollectsAndClears) {
  SetAssocCache c(small_cache(), "t");
  (void)c.fill(0x0, SourceId::gpu(), GpuAccessClass::Color, true);
  (void)c.fill(0x40, SourceId::gpu(), GpuAccessClass::Color, false);
  (void)c.fill(0x80, SourceId::gpu(), GpuAccessClass::Color, true);
  auto dirty = c.drain_dirty();
  EXPECT_EQ(dirty.size(), 2u);
  EXPECT_TRUE(c.drain_dirty().empty());  // cleared
  EXPECT_TRUE(c.probe(0x0));             // blocks stay valid
}

TEST(SetAssocCache, RefillMergesDirtyState) {
  SetAssocCache c(small_cache(), "t");
  (void)c.fill(0x0, SourceId::cpu(0), GpuAccessClass::None, true);
  auto ev = c.fill(0x0, SourceId::cpu(0), GpuAccessClass::None, false);
  EXPECT_FALSE(ev.has_value());
  auto inv = c.invalidate(0x0);
  ASSERT_TRUE(inv.has_value());
  EXPECT_TRUE(inv->dirty);  // dirty bit survived the clean refill
}

TEST(Srrip, VictimizesDistantBlocks) {
  SrripPolicy p(1, 4);
  for (unsigned w = 0; w < 4; ++w) p.on_fill(0, w);
  p.on_hit(0, 2);  // promote way 2 to RRPV 0
  const unsigned v = p.victim(0);
  EXPECT_NE(v, 2u);  // the promoted way survives aging longest
}

TEST(Srrip, HitPromotionProtectsReusedBlock) {
  SrripPolicy p(1, 2);
  p.on_fill(0, 0);
  p.on_fill(0, 1);
  p.on_hit(0, 0);
  EXPECT_EQ(p.victim(0), 1u);
  // After refilling way 1 and re-hitting way 0, way 1 is again the victim.
  p.on_fill(0, 1);
  p.on_hit(0, 0);
  EXPECT_EQ(p.victim(0), 1u);
}

TEST(Lru, VictimIsOldest) {
  LruPolicy p(1, 3);
  p.on_fill(0, 0);
  p.on_fill(0, 1);
  p.on_fill(0, 2);
  EXPECT_EQ(p.victim(0), 0u);
  p.on_hit(0, 0);
  EXPECT_EQ(p.victim(0), 1u);
}

struct CacheShape {
  std::uint64_t size;
  unsigned ways;
  bool srrip;
};

class CacheSweepTest : public ::testing::TestWithParam<CacheShape> {};

TEST_P(CacheSweepTest, FillEntireCacheNoEvictions) {
  const auto [size, ways, srrip] = GetParam();
  CacheConfig cfg;
  cfg.size_bytes = size;
  cfg.ways = ways;
  cfg.srrip = srrip;
  SetAssocCache c(cfg, "sweep");
  const std::uint64_t blocks = size / 64;
  for (std::uint64_t i = 0; i < blocks; ++i) {
    auto ev = c.fill(i * 64, SourceId::cpu(0), GpuAccessClass::None, false);
    EXPECT_FALSE(ev.has_value()) << "unexpected eviction at block " << i;
  }
  EXPECT_EQ(c.valid_blocks(), blocks);
  // Every block hits; one more distinct block forces exactly one eviction.
  for (std::uint64_t i = 0; i < blocks; ++i) {
    EXPECT_TRUE(c.lookup(i * 64, false));
  }
  auto ev = c.fill(blocks * 64, SourceId::cpu(0), GpuAccessClass::None, false);
  EXPECT_TRUE(ev.has_value());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheSweepTest,
    ::testing::Values(CacheShape{4 * KiB, 2, false},
                      CacheShape{4 * KiB, 2, true},
                      CacheShape{32 * KiB, 8, false},
                      CacheShape{32 * KiB, 8, true},
                      CacheShape{64 * KiB, 16, true},
                      CacheShape{2 * KiB, 1, false}));

}  // namespace
}  // namespace gpuqos
