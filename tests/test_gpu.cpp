#include "gpu/pipeline.hpp"

#include <gtest/gtest.h>

#include "gpu/caches.hpp"
#include "gpu/memiface.hpp"

namespace gpuqos {
namespace {

SceneFrame tiny_frame(unsigned passes = 1, double overdraw = 1.0) {
  SceneFrame f;
  f.tiles_x = 4;
  f.tiles_y = 2;
  f.tile_px = 8;
  f.color_base = 0x40000000;
  f.depth_base = 0x50000000;
  f.vertex_base = 0x60000000;
  f.texture_base = 0x70000000;
  f.texture_bytes = 1 << 20;
  for (unsigned p = 0; p < passes; ++p) {
    DrawBatch b;
    b.triangles = 8;
    b.tile_coverage = 1.0;
    b.frags_per_tile_px = overdraw;
    b.tex_samples = 1;
    b.shader_cycles = 2;
    b.depth_write = p == 0;
    f.batches.push_back(b);
  }
  return f;
}

struct GpuHarness {
  Engine engine;
  StatRegistry stats;
  GpuConfig cfg;
  GpuMemInterface gmi;
  GpuPipeline pipe;
  Cycle mem_latency = 40;
  std::uint64_t tex_reads = 0;
  std::uint64_t writes = 0;

  explicit GpuHarness(GpuConfig c = GpuConfig{})
      : cfg(c), gmi(cfg, stats), pipe(engine, cfg, stats, Rng(11)) {
    gmi.set_sender([this](MemRequest&& r) {
      if (r.gclass == GpuAccessClass::Texture && !r.is_write) ++tex_reads;
      if (r.is_write) ++writes;
      if (r.on_complete) {
        auto cb = std::move(r.on_complete);
        engine.schedule(mem_latency, [cb, this] { cb(engine.now()); });
      }
    });
    pipe.set_mem_interface(&gmi);
    engine.add_ticker(kGpuClockDivider, 0, [this](Cycle now) {
      gmi.tick(base_to_gpu_cycles(now));
    });
    engine.add_ticker(kGpuClockDivider, 0, [this](Cycle now) {
      pipe.tick_gpu(base_to_gpu_cycles(now));
    });
  }
};

TEST(GpuPipeline, RendersAFrame) {
  GpuHarness h;
  h.pipe.submit_frame(tiny_frame());
  h.engine.run_until([&] { return h.pipe.frames_completed() == 1; },
                     2'000'000);
  EXPECT_EQ(h.pipe.frames_completed(), 1u);
  // 4x2 tiles x 64 px x overdraw 1 = 512 fragments.
  EXPECT_EQ(h.pipe.fragments_retired(), 512u);
}

TEST(GpuPipeline, OverdrawMultipliesFragments) {
  GpuHarness h;
  h.pipe.submit_frame(tiny_frame(1, 2.0));
  h.engine.run_until([&] { return h.pipe.frames_completed() == 1; },
                     2'000'000);
  EXPECT_EQ(h.pipe.fragments_retired(), 1024u);
}

TEST(GpuPipeline, RepeatsSequenceWhenEnabled) {
  GpuHarness h;
  h.pipe.submit_frame(tiny_frame());
  h.pipe.set_repeat(true);
  h.engine.run_until([&] { return h.pipe.frames_completed() >= 3; },
                     8'000'000);
  EXPECT_GE(h.pipe.frames_completed(), 3u);
}

TEST(GpuPipeline, GeneratesClassifiedLlcTraffic) {
  GpuHarness h;
  SceneFrame f = tiny_frame(2);
  f.batches[1].blend = true;
  h.pipe.submit_frame(f);
  h.engine.run_until([&] { return h.pipe.frames_completed() == 1; },
                     4'000'000);
  EXPECT_GT(h.stats.counter("gpu.llc_accesses"), 0u);
  EXPECT_GT(h.tex_reads, 0u);
}

TEST(GpuPipeline, SlowerMemorySlowsFrame) {
  GpuHarness fast;
  fast.mem_latency = 10;
  fast.pipe.submit_frame(tiny_frame(4));
  fast.engine.run_until([&] { return fast.pipe.frames_completed() == 1; },
                        8'000'000);

  GpuHarness slow;
  slow.mem_latency = 2000;
  slow.pipe.submit_frame(tiny_frame(4));
  slow.engine.run_until([&] { return slow.pipe.frames_completed() == 1; },
                        80'000'000);

  ASSERT_EQ(fast.pipe.frames_completed(), 1u);
  ASSERT_EQ(slow.pipe.frames_completed(), 1u);
  EXPECT_GT(slow.pipe.last_frame_cycles(), fast.pipe.last_frame_cycles());
}

TEST(GpuPipeline, LatencyToleranceDropsUnderLoad) {
  GpuHarness h;
  h.mem_latency = 4000;
  h.pipe.submit_frame(tiny_frame(4, 4.0));
  h.engine.run_for(200'000);
  const double tol = h.pipe.latency_tolerance();
  EXPECT_LT(tol, 0.9);  // many contexts busy waiting on memory
}

/// Gate that blocks everything — the pipeline must stall, not crash.
class ClosedGate : public AccessGate {
 public:
  bool allow(Cycle) override { return false; }
  void on_issued(Cycle) override {}
};

TEST(GpuPipeline, FullyThrottledGateStallsProgress) {
  GpuHarness h;
  ClosedGate gate;
  h.gmi.set_gate(&gate);
  h.pipe.submit_frame(tiny_frame(2));
  h.engine.run_for(300'000);
  EXPECT_EQ(h.pipe.frames_completed(), 0u);  // cold misses can never return
}

TEST(GpuMemInterface, BackpressuresWhenFull) {
  StatRegistry stats;
  GpuConfig cfg;
  cfg.mem_queue_depth = 4;
  GpuMemInterface gmi(cfg, stats);
  for (int i = 0; i < 4; ++i) {
    MemRequest r;
    r.addr = i * 64;
    EXPECT_TRUE(gmi.enqueue(std::move(r)));
  }
  MemRequest r;
  EXPECT_FALSE(gmi.enqueue(std::move(r)));
  EXPECT_EQ(stats.counter("gpu.gmi_full_rejections"), 1u);
}

TEST(GpuMemInterface, IssueIntervalLimitsRate) {
  StatRegistry stats;
  GpuConfig cfg;
  cfg.llc_issue_interval = 4;
  GpuMemInterface gmi(cfg, stats);
  int sent = 0;
  gmi.set_sender([&](MemRequest&&) { ++sent; });
  for (int i = 0; i < 16; ++i) {
    MemRequest r;
    r.addr = i * 64;
    (void)gmi.enqueue(std::move(r));
  }
  for (Cycle c = 0; c < 8; ++c) gmi.tick(c);
  EXPECT_EQ(sent, 2);  // only gpu cycles 0 and 4 are issue slots
}

TEST(GpuCaches, TextureHierarchyFillsOnMiss) {
  GpuConfig cfg;
  GpuCaches caches(cfg);
  EXPECT_TRUE(caches.access_texture(0x1000).needs_mem);
  EXPECT_FALSE(caches.access_texture(0x1000).needs_mem);  // now resident
  EXPECT_FALSE(caches.access_texture(0x1010).needs_mem);  // same block
}

TEST(GpuCaches, ColorWriteNeedsNoMemoryFetch) {
  GpuConfig cfg;
  GpuCaches caches(cfg);
  EXPECT_FALSE(caches.access_color(0x2000, /*write=*/true).needs_mem);
  // A blend (read) of an uncached block does need memory.
  EXPECT_TRUE(caches.access_color(0x9000, /*write=*/false).needs_mem);
}

TEST(GpuCaches, RenderTargetFlushEmitsDirtyBlocks) {
  GpuConfig cfg;
  GpuCaches caches(cfg);
  int writes = 0;
  caches.set_write_out([&](Addr, GpuAccessClass) { ++writes; });
  for (Addr a = 0; a < 16 * 64; a += 64) {
    (void)caches.access_color(0x2000 + a, /*write=*/true);
  }
  caches.flush_render_targets();
  EXPECT_GE(writes, 16);
  writes = 0;
  caches.flush_render_targets();
  EXPECT_EQ(writes, 0);  // dirty bits were cleared
}

TEST(GpuCaches, DeepLevelEvictionSpillsWrite) {
  GpuConfig cfg;
  cfg.color_l1 = CacheConfig{128, 2, 64, 1, false};  // 2 blocks
  cfg.color_l2 = CacheConfig{256, 4, 64, 1, false};  // 4 blocks
  GpuCaches caches(cfg);
  int spilled = 0;
  caches.set_write_out([&](Addr, GpuAccessClass) { ++spilled; });
  for (Addr a = 0; a < 64 * 64; a += 64) {
    (void)caches.access_color(a, /*write=*/true);
  }
  EXPECT_GT(spilled, 0);
}

}  // namespace
}  // namespace gpuqos
