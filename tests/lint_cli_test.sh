#!/usr/bin/env bash
# gpuqos-lint CLI acceptance (docs/ANALYSIS.md, "gpuqos-lint"): for each rule
# family, seeding a deliberate violation into a scratch file must exit
# non-zero and name the rule; a compliant file must exit 0.
set -euo pipefail

LINT=$1
WORK=$2

rm -rf "$WORK"
mkdir -p "$WORK"

expect_rule() {
  local rule=$1 file=$2
  local out
  if out=$("$LINT" --no-baseline "$file"); then
    echo "FAIL: $rule violation in $file exited 0"
    echo "$out"
    exit 1
  fi
  if ! grep -q "\[$rule\]" <<<"$out"; then
    echo "FAIL: output for $file does not name rule '$rule'"
    echo "$out"
    exit 1
  fi
  echo "ok: $rule named for $file"
}

# R1 state-coverage: field saved but missing from digest.
cat > "$WORK/r1.hpp" <<'EOF'
#pragma once
struct Module {
  void save(StateWriter& w) const { w.u64(a_); w.u64(b_); }
  void load(StateReader& r) { a_ = r.u64(); b_ = r.u64(); }
  std::uint64_t digest() const { Fnv1a64 h; h.mix(a_); return h.value(); }
  std::uint64_t a_ = 0;
  std::uint64_t b_ = 0;
};
EOF
expect_rule state-coverage "$WORK/r1.hpp"

# R2 thread-purity: mutable namespace state reachable from run_many().
cat > "$WORK/r2.cpp" <<'EOF'
int g_calls = 0;
void helper() { ++g_calls; }
void run_many() { helper(); }
EOF
expect_rule thread-purity "$WORK/r2.cpp"

# R3 check-hygiene: bare assert().
cat > "$WORK/r3.cpp" <<'EOF'
void f(int x) { assert(x > 0); }
EOF
expect_rule check-hygiene "$WORK/r3.cpp"

# R4 header-hygiene: header without a guard.
cat > "$WORK/r4.hpp" <<'EOF'
struct Unguarded {};
EOF
expect_rule header-hygiene "$WORK/r4.hpp"

# R5 det-hazard: unordered_map folded in digest() without a det:ok escape.
cat > "$WORK/r5.hpp" <<'EOF'
#pragma once
struct Table {
  std::uint64_t digest() const {
    std::uint64_t h = 0;
    for (const auto& [k, v] : entries_) { h += k; }
    return h;
  }
  std::unordered_map<std::uint64_t, int> entries_;
};
EOF
expect_rule det-hazard "$WORK/r5.hpp"

# R6 concurrency-discipline: mutex-owning class written without an RAII lock.
cat > "$WORK/r6.hpp" <<'EOF'
#pragma once
struct Registry {
  void record(int v) { rows_.push_back(v); }
  std::mutex mu_;
  std::vector<int> rows_;
};
EOF
expect_rule concurrency-discipline "$WORK/r6.hpp"

# R7 event-capture: reference capture posted into the engine queue.
cat > "$WORK/r7.hpp" <<'EOF'
#pragma once
struct Mod {
  void arm(Engine& eng) {
    int budget = 4;
    eng.schedule(10, [&] { consume(budget); });
  }
  void consume(int n);
};
EOF
expect_rule event-capture "$WORK/r7.hpp"

# A compliant file exits 0 (and json stays parseable on empty results).
cat > "$WORK/clean.hpp" <<'EOF'
#pragma once
struct Clean {};
EOF
"$LINT" --no-baseline --format=json "$WORK/clean.hpp" > "$WORK/clean.json"
grep -q '"count": 0' "$WORK/clean.json"
echo "ok: clean file exits 0"

# SARIF output names the tool, the rule, and a stable fingerprint.
"$LINT" --no-baseline --format=sarif "$WORK/r5.hpp" > "$WORK/r5.sarif" || true
grep -q '"version": "2.1.0"' "$WORK/r5.sarif"
grep -q '"name": "gpuqos-lint"' "$WORK/r5.sarif"
grep -q '"ruleId": "det-hazard"' "$WORK/r5.sarif"
grep -q 'gpuqosLintFingerprint/v1' "$WORK/r5.sarif"
echo "ok: sarif output carries rule + fingerprint"

# --stats goes to stderr so piped output stays parseable.
"$LINT" --no-baseline --stats --format=json "$WORK/clean.hpp" \
  > "$WORK/stats.json" 2> "$WORK/stats.txt"
grep -q '"count": 0' "$WORK/stats.json"
grep -q 'det-hazard' "$WORK/stats.txt"
echo "ok: --stats prints the rule table on stderr"

# --changed-only narrows reporting to git-diff paths (skipped without git).
if command -v git > /dev/null 2>&1; then
  (
    cd "$WORK"
    git init -q changed && cd changed
    git config user.email lint@test && git config user.name lint
    cp ../r4.hpp base.hpp
    git add base.hpp && git commit -qm base
    cp ../r1.hpp grown.hpp   # new violations, not yet committed
    git add grown.hpp
    if "$LINT" --no-baseline --changed-only=HEAD base.hpp grown.hpp \
        > out.txt; then
      echo "FAIL: changed-only run with findings in a changed file exited 0"
      exit 1
    fi
    grep -q 'grown.hpp' out.txt
    if grep -q 'base.hpp' out.txt; then
      echo "FAIL: changed-only reported the unchanged file"
      exit 1
    fi
  )
  echo "ok: --changed-only reports only changed files"
else
  echo "skip: git not available, --changed-only untested"
fi
