#!/usr/bin/env bash
# gpuqos-lint CLI acceptance (docs/ANALYSIS.md, "gpuqos-lint"): for each rule
# family, seeding a deliberate violation into a scratch file must exit
# non-zero and name the rule; a compliant file must exit 0.
set -euo pipefail

LINT=$1
WORK=$2

rm -rf "$WORK"
mkdir -p "$WORK"

expect_rule() {
  local rule=$1 file=$2
  local out
  if out=$("$LINT" --no-baseline "$file"); then
    echo "FAIL: $rule violation in $file exited 0"
    echo "$out"
    exit 1
  fi
  if ! grep -q "\[$rule\]" <<<"$out"; then
    echo "FAIL: output for $file does not name rule '$rule'"
    echo "$out"
    exit 1
  fi
  echo "ok: $rule named for $file"
}

# R1 state-coverage: field saved but missing from digest.
cat > "$WORK/r1.hpp" <<'EOF'
#pragma once
struct Module {
  void save(StateWriter& w) const { w.u64(a_); w.u64(b_); }
  void load(StateReader& r) { a_ = r.u64(); b_ = r.u64(); }
  std::uint64_t digest() const { Fnv1a64 h; h.mix(a_); return h.value(); }
  std::uint64_t a_ = 0;
  std::uint64_t b_ = 0;
};
EOF
expect_rule state-coverage "$WORK/r1.hpp"

# R2 thread-purity: mutable namespace state reachable from run_many().
cat > "$WORK/r2.cpp" <<'EOF'
int g_calls = 0;
void helper() { ++g_calls; }
void run_many() { helper(); }
EOF
expect_rule thread-purity "$WORK/r2.cpp"

# R3 check-hygiene: bare assert().
cat > "$WORK/r3.cpp" <<'EOF'
void f(int x) { assert(x > 0); }
EOF
expect_rule check-hygiene "$WORK/r3.cpp"

# R4 header-hygiene: header without a guard.
cat > "$WORK/r4.hpp" <<'EOF'
struct Unguarded {};
EOF
expect_rule header-hygiene "$WORK/r4.hpp"

# A compliant file exits 0 (and json stays parseable on empty results).
cat > "$WORK/clean.hpp" <<'EOF'
#pragma once
struct Clean {};
EOF
"$LINT" --no-baseline --format=json "$WORK/clean.hpp" > "$WORK/clean.json"
grep -q '"count": 0' "$WORK/clean.json"
echo "ok: clean file exits 0"
