#!/usr/bin/env bash
# Simulation-service acceptance (docs/SERVICE.md): the daemon path must be a
# transport, not a results path. One batch is dumped (key digest hex-bytes per
# job) four ways — in-process reference, via the daemon, resubmitted to the
# same daemon, and resubmitted after a SIGKILL + restart on the same store —
# and every dump must be byte-identical. Along the way: two clients share one
# daemon concurrently, the resubmission must be 100% store hits with zero
# simulation, and the post-kill daemon must resume from the persistent store.
#
# usage: serve_test.sh <gpuqos_serve> <gpuqos_submit> <workdir>
set -u

SERVE="$1"
SUBMIT="$2"
WORK="$3"

export GPUQOS_FAST=1
unset GPUQOS_SERVE_SOCKET

rm -rf "$WORK"
mkdir -p "$WORK"
# Unix socket paths are length-limited (~108 bytes); the ctest binary dir can
# exceed that, so the socket lives under mktemp while dumps stay in WORK.
SOCKDIR="$(mktemp -d)"
SOCK="$SOCKDIR/serve.sock"
STORE="$WORK/store"
DAEMON_PID=""

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null
  rm -rf "$SOCKDIR"
}
trap cleanup EXIT

start_daemon() {
  "$SERVE" --socket "$SOCK" --store-dir "$STORE" >"$WORK/daemon.log" 2>&1 &
  DAEMON_PID=$!
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && return 0
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon exited at startup (see $WORK/daemon.log)"
    sleep 0.1
  done
  fail "daemon never created $SOCK"
}

MIXES="W1,W2"
POLICIES="Baseline,DynPrio"

# --- 1. In-process reference (its own store so nothing is shared). ---------
"$SUBMIT" --local --quiet --mixes "$MIXES" --policies "$POLICIES" \
    --store-dir "$WORK/ref_store" --dump "$WORK/ref.dump" \
    >"$WORK/ref.out" 2>&1 || fail "local reference batch failed (see $WORK/ref.out)"

# --- 2. Same batch through the daemon, two clients at once. ----------------
start_daemon
"$SUBMIT" --socket "$SOCK" --quiet --mixes "$MIXES" --policies "$POLICIES" \
    --dump "$WORK/c1.dump" >"$WORK/c1.out" 2>&1 &
C1=$!
"$SUBMIT" --socket "$SOCK" --quiet --mixes "$MIXES" --policies "$POLICIES" \
    --dump "$WORK/c2.dump" >"$WORK/c2.out" 2>&1 &
C2=$!
wait "$C1" || fail "daemon client 1 failed (see $WORK/c1.out)"
wait "$C2" || fail "daemon client 2 failed (see $WORK/c2.out)"
grep -q "via daemon" "$WORK/c1.out" || fail "client 1 did not use the daemon"

cmp -s "$WORK/ref.dump" "$WORK/c1.dump" \
    || fail "daemon results differ from the in-process reference"
cmp -s "$WORK/c1.dump" "$WORK/c2.dump" \
    || fail "two concurrent clients got different bytes"

# --- 3. Resubmission must be a pure store replay. --------------------------
"$SUBMIT" --socket "$SOCK" --quiet --mixes "$MIXES" --policies "$POLICIES" \
    --dump "$WORK/replay.dump" >"$WORK/replay.out" 2>&1 \
    || fail "resubmission failed (see $WORK/replay.out)"
cmp -s "$WORK/ref.dump" "$WORK/replay.dump" || fail "replay bytes differ"
grep -q "4 jobs, 4 store hits" "$WORK/replay.out" \
    || fail "resubmission was not 100% store hits: $(grep done: "$WORK/replay.out")"

# --- 4. SIGKILL the daemon, restart on the same store, resume. -------------
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null
DAEMON_PID=""
rm -f "$SOCK"
start_daemon

# The restarted daemon has a cold warm-cache but the same store: the old
# batch replays without simulation, and a superset batch only simulates the
# genuinely new jobs.
"$SUBMIT" --socket "$SOCK" --quiet --mixes "$MIXES" --policies "$POLICIES" \
    --dump "$WORK/resume.dump" >"$WORK/resume.out" 2>&1 \
    || fail "post-restart resubmission failed (see $WORK/resume.out)"
cmp -s "$WORK/ref.dump" "$WORK/resume.dump" \
    || fail "post-restart bytes differ from the reference"
grep -q "4 jobs, 4 store hits" "$WORK/resume.out" \
    || fail "restart did not resume from the store: $(grep done: "$WORK/resume.out")"

"$SUBMIT" --socket "$SOCK" --quiet --mixes "$MIXES,W3" --policies "$POLICIES" \
    >"$WORK/superset.out" 2>&1 \
    || fail "superset batch failed (see $WORK/superset.out)"
grep -q "6 jobs, 4 store hits" "$WORK/superset.out" \
    || fail "superset batch re-simulated finished jobs: $(grep done: "$WORK/superset.out")"

# --- 5. Malformed frames must not take the daemon down. --------------------
# Three raw pokes at the socket — an oversized length prefix, a truncated
# payload, and a non-JSON body — each from a fresh connection. The daemon
# must survive all three (dropping the bad client is fine) and still serve
# a well-formed batch afterwards.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$SOCK" <<'PYEOF' >"$WORK/fuzz.out" 2>&1 || fail "malformed-frame pokes errored (see $WORK/fuzz.out)"
import socket, struct, sys

sock_path = sys.argv[1]

def poke(data):
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.settimeout(5)
    s.connect(sock_path)
    s.sendall(data)
    s.shutdown(socket.SHUT_WR)
    try:
        while s.recv(4096):
            pass
    except (socket.timeout, ConnectionResetError, BrokenPipeError):
        pass
    s.close()

# Length prefix past kMaxFrameBytes (64 MiB).
poke(struct.pack('<I', (64 << 20) + 1))
# Truncated payload: claims 64 bytes, delivers 5, then EOF.
poke(struct.pack('<I', 64) + b'hello')
# Well-framed but non-JSON body.
body = b'this is not json'
poke(struct.pack('<I', len(body)) + body)
print('poked 3 malformed frames')
PYEOF
  kill -0 "$DAEMON_PID" 2>/dev/null \
      || fail "daemon died on a malformed frame (see $WORK/daemon.log)"
  "$SUBMIT" --socket "$SOCK" --quiet --mixes "$MIXES" --policies "$POLICIES" \
      --dump "$WORK/postfuzz.dump" >"$WORK/postfuzz.out" 2>&1 \
      || fail "daemon unhealthy after malformed frames (see $WORK/postfuzz.out)"
  cmp -s "$WORK/ref.dump" "$WORK/postfuzz.dump" \
      || fail "post-fuzz bytes differ from the reference"
else
  echo "skip: python3 not found, malformed-frame round not run" >&2
fi

# --- 6. Graceful shutdown: SIGTERM must drain and exit 0. ------------------
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
STATUS=$?
DAEMON_PID=""
[ "$STATUS" -eq 0 ] || fail "SIGTERM drain exited $STATUS (see $WORK/daemon.log)"

echo "PASS: daemon, concurrent clients, store replay, and kill/restart resume are byte-identical"
