#include <gtest/gtest.h>

#include "sim/hetero_cmp.hpp"
#include "workloads/spec.hpp"

namespace gpuqos {
namespace {

TEST(Presets, PaperMatchesTableI) {
  const SimConfig cfg = Presets::paper();
  // CPU cache hierarchy.
  EXPECT_EQ(cfg.cpu_cores, 4u);
  EXPECT_EQ(cfg.core.l1d.size_bytes, 32 * KiB);
  EXPECT_EQ(cfg.core.l1d.ways, 8u);
  EXPECT_EQ(cfg.core.l1d.latency, 2u);
  EXPECT_EQ(cfg.core.l2.size_bytes, 256 * KiB);
  EXPECT_EQ(cfg.core.l2.latency, 3u);
  // Shared LLC: 16 MB, 16-way, 64 B blocks, 10-cycle lookup.
  EXPECT_EQ(cfg.llc.size_bytes, 16 * MiB);
  EXPECT_EQ(cfg.llc.ways, 16u);
  EXPECT_EQ(cfg.llc.block_bytes, 64u);
  EXPECT_EQ(cfg.llc.latency, 10u);
  // Memory: two single-channel DDR3-2133 controllers, 14-14-14, BL=8.
  EXPECT_EQ(cfg.dram.channels, 2u);
  EXPECT_EQ(cfg.dram.banks_per_channel, 8u);
  EXPECT_EQ(cfg.dram.timing.tCL, 14u);
  EXPECT_EQ(cfg.dram.timing.tRCD, 14u);
  EXPECT_EQ(cfg.dram.timing.tRP, 14u);
  EXPECT_EQ(cfg.dram.timing.tBurst, 4u);  // BL=8 on a DDR bus
  // Ring: single-cycle hop.
  EXPECT_EQ(cfg.ring.hop_latency, 1u);
  // GPU: Table I texture hierarchy sizes.
  EXPECT_EQ(cfg.gpu.tex_l1.size_bytes, 64 * KiB);
  EXPECT_EQ(cfg.gpu.tex_l2.size_bytes, 384 * KiB);
  EXPECT_EQ(cfg.gpu.tex_l2.ways, 48u);
  EXPECT_EQ(cfg.gpu.shader_cores, 64u);
  // QoS defaults (Section III): 40 FPS target, 64-entry RTP table.
  EXPECT_DOUBLE_EQ(cfg.qos.target_fps, 40.0);
  EXPECT_EQ(cfg.qos.rtp_table_entries, 64u);
  EXPECT_EQ(cfg.qos.ng_init, 1u);
  EXPECT_EQ(cfg.qos.wg_step, 2u);
}

TEST(Presets, ScaledShrinksCapacityNotStructure) {
  const SimConfig paper = Presets::paper();
  const SimConfig scaled = Presets::scaled();
  // Capacities shrink...
  EXPECT_LT(scaled.llc.size_bytes, paper.llc.size_bytes);
  EXPECT_LT(scaled.core.l2.size_bytes, paper.core.l2.size_bytes);
  EXPECT_LT(scaled.gpu.tex_l2.size_bytes, paper.gpu.tex_l2.size_bytes);
  // ...while the structural parameters stay paper-true.
  EXPECT_EQ(scaled.llc.ways, paper.llc.ways);
  EXPECT_EQ(scaled.llc.block_bytes, paper.llc.block_bytes);
  EXPECT_EQ(scaled.dram.channels, paper.dram.channels);
  EXPECT_EQ(scaled.dram.timing.tCL, paper.dram.timing.tCL);
  EXPECT_EQ(scaled.qos.target_fps, paper.qos.target_fps);
}

TEST(Presets, PaperConfigurationSimulates) {
  // The verbatim Table I machine must construct and make progress (the
  // scaled preset is the default for sweeps purely for host-speed reasons).
  const SimConfig cfg = Presets::paper();
  HeteroCmp cmp(cfg, Policy::ThrottleCpuPrio,
                {spec_profile(429), spec_profile(462)}, {}, 1.0);
  cmp.engine().run_for(20'000);
  EXPECT_GT(cmp.core(0).committed(), 0u);
  EXPECT_GT(cmp.core(1).committed(), 0u);
  EXPECT_GT(cmp.stats().counter("llc.access.cpu"), 0u);
}

TEST(Presets, CacheConfigSetsArePowerOfTwo) {
  for (const SimConfig& cfg : {Presets::paper(), Presets::scaled()}) {
    for (const CacheConfig& c :
         {cfg.core.l1d, cfg.core.l2, cfg.gpu.tex_l1, cfg.gpu.tex_l2,
          cfg.gpu.depth_l2, cfg.gpu.color_l2, cfg.gpu.vertex_cache,
          cfg.gpu.hiz_cache, cfg.gpu.shader_icache}) {
      const std::uint64_t sets = c.sets();
      EXPECT_GT(sets, 0u);
      EXPECT_EQ(sets & (sets - 1), 0u) << "sets must be a power of two";
    }
  }
}

}  // namespace
}  // namespace gpuqos
