#include "ring/ring.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gpuqos {
namespace {

struct RingHarness {
  Engine engine;
  StatRegistry stats;
  RingConfig cfg;
  RingNetwork ring{engine, 8, cfg, stats};
};

TEST(Ring, HopCountsAreMinimal) {
  RingHarness h;
  EXPECT_EQ(h.ring.hops(0, 0), 0u);
  EXPECT_EQ(h.ring.hops(0, 1), 1u);
  EXPECT_EQ(h.ring.hops(0, 4), 4u);  // opposite side of 8-stop ring
  EXPECT_EQ(h.ring.hops(0, 7), 1u);  // wrap-around is shorter
  EXPECT_EQ(h.ring.hops(6, 1), 3u);
}

TEST(Ring, DeliveryLatencyEqualsHops) {
  RingHarness h;
  Cycle delivered = kNoCycle;
  h.ring.send(0, 3, [&] { delivered = h.engine.now(); });
  h.engine.run_for(10);
  EXPECT_EQ(delivered, 3u);
}

TEST(Ring, SameStopDeliversSameCycle) {
  RingHarness h;
  Cycle delivered = kNoCycle;
  h.ring.send(2, 2, [&] { delivered = h.engine.now(); });
  h.engine.run_for(2);
  EXPECT_EQ(delivered, 0u);
}

TEST(Ring, LinkContentionQueuesMessages) {
  RingHarness h;
  std::vector<Cycle> deliveries;
  // Two messages over the same first link in the same cycle.
  h.ring.send(0, 2, [&] { deliveries.push_back(h.engine.now()); });
  h.ring.send(0, 2, [&] { deliveries.push_back(h.engine.now()); });
  h.engine.run_for(10);
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], 2u);
  EXPECT_EQ(deliveries[1], 3u);  // one cycle behind on each link
  EXPECT_GT(h.stats.counter("ring.queue_cycles"), 0u);
}

TEST(Ring, OppositeDirectionsDoNotContend) {
  RingHarness h;
  std::vector<Cycle> deliveries;
  h.ring.send(0, 2, [&] { deliveries.push_back(h.engine.now()); });  // cw
  h.ring.send(0, 6, [&] { deliveries.push_back(h.engine.now()); });  // ccw
  h.engine.run_for(10);
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], 2u);
  EXPECT_EQ(deliveries[1], 2u);
}

TEST(Ring, MessageCounterAdvances) {
  RingHarness h;
  for (int i = 0; i < 5; ++i) h.ring.send(0, 1, [] {});
  h.engine.run_for(10);
  EXPECT_EQ(h.stats.counter("ring.messages"), 5u);
}

class RingPairTest
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(RingPairTest, DeliveryNeverExceedsHalfRingPlusQueue) {
  RingHarness h;
  const auto [from, to] = GetParam();
  Cycle delivered = kNoCycle;
  h.ring.send(from, to, [&] { delivered = h.engine.now(); });
  h.engine.run_for(16);
  ASSERT_NE(delivered, kNoCycle);
  EXPECT_LE(delivered, 4u);  // 8-stop ring: max 4 hops uncongested
  EXPECT_EQ(delivered, h.ring.hops(from, to));
}

INSTANTIATE_TEST_SUITE_P(
    AllPairsSample, RingPairTest,
    ::testing::Values(std::make_pair(0u, 4u), std::make_pair(1u, 5u),
                      std::make_pair(7u, 3u), std::make_pair(3u, 7u),
                      std::make_pair(5u, 6u), std::make_pair(6u, 5u),
                      std::make_pair(2u, 1u)));

}  // namespace
}  // namespace gpuqos
