#include <gtest/gtest.h>

#include "common/qos_signals.hpp"
#include "qos/atu.hpp"
#include "qos/frpu.hpp"
#include "qos/governor.hpp"
#include "qos/rtp_table.hpp"

namespace gpuqos {
namespace {

TEST(RtpTable, RecordsAndAggregates) {
  RtpTable t(4);
  t.record(100, 1000, 8, 50);
  t.record(100, 3000, 8, 70);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.rtp_count(), 2u);
  EXPECT_DOUBLE_EQ(t.avg_cycles_per_rtp(), 2000.0);
  EXPECT_EQ(t.total_llc_accesses(), 120u);
  EXPECT_EQ(t.total_updates(), 200u);
}

TEST(RtpTable, OverflowAccumulatesInLastEntry) {
  RtpTable t(2);
  t.record(10, 100, 4, 5);
  t.record(10, 100, 4, 5);
  t.record(10, 100, 4, 5);  // overflows into entry 1
  t.record(10, 100, 4, 5);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.rtp_count(), 4u);  // still counts all RTPs
  EXPECT_EQ(t.entry(1).updates, 30u);
  EXPECT_EQ(t.total_cycles(), 400u);
}

TEST(RtpTable, ClearResetsEverything) {
  RtpTable t(4);
  t.record(10, 100, 4, 5);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.rtp_count(), 0u);
  EXPECT_DOUBLE_EQ(t.avg_cycles_per_rtp(), 0.0);
}

TEST(RtpTable, StorageBudgetMatchesPaper) {
  // Section III-D: the proposal costs "just over a kilobyte" — 64 entries of
  // four 4-byte fields plus valid bits.
  RtpTable t(64);
  EXPECT_GE(t.storage_bytes(), 1024u);
  EXPECT_LE(t.storage_bytes(), 1088u);
}

// --- FRPU driven with synthetic observer events -------------------------

SceneFrame frame_2x1() {
  SceneFrame f;
  f.tiles_x = 2;
  f.tiles_y = 1;
  f.tile_px = 2;  // 4 pixels per tile => 8 updates per RTP
  return f;
}

/// Drive one full RTP (all tiles covered once), spending `cycles`.
void drive_rtp(FrameRateEstimator& e, Cycle& now, Cycle cycles) {
  const Cycle step = cycles / 8;
  for (unsigned px = 0; px < 4; ++px) {
    for (unsigned tile = 0; tile < 2; ++tile) {
      now += step;
      e.on_llc_access(now);
      e.on_rt_update(tile, now);
    }
  }
}

TEST(Frpu, LearnsOneFrameThenPredicts) {
  QosConfig cfg;
  FrameRateEstimator e(cfg);
  EXPECT_EQ(e.phase(), FrameRateEstimator::Phase::Learning);
  Cycle now = 0;
  e.on_frame_start(frame_2x1(), now);
  drive_rtp(e, now, 800);
  drive_rtp(e, now, 800);
  e.on_frame_complete(now);
  EXPECT_TRUE(e.predicting());
  EXPECT_EQ(e.table().rtp_count(), 2u);
  EXPECT_NEAR(e.table().avg_cycles_per_rtp(), 800.0, 1.0);
  EXPECT_EQ(e.learned_accesses_per_frame(), 16u);
}

TEST(Frpu, Equation3BlendsCurrentAndLearnedRates) {
  QosConfig cfg;
  FrameRateEstimator e(cfg);
  Cycle now = 0;
  e.on_frame_start(frame_2x1(), now);
  drive_rtp(e, now, 800);
  drive_rtp(e, now, 800);
  e.on_frame_complete(now);  // learned: 2 RTPs x 800 cycles

  // New frame renders its first RTP 2x slower (1600 cycles).
  const Cycle start = now;
  e.on_frame_start(frame_2x1(), now);
  drive_rtp(e, now, 1600);
  ASSERT_EQ(now - start, 1600u);
  // lambda = 1/2, C_inter = 1600, C_avg = 800:
  // F = (0.5*1600 + 0.5*800) * 2 = 2400.
  EXPECT_NEAR(e.predicted_frame_cycles(now), 2400.0, 32.0);
  EXPECT_NEAR(e.frame_progress(), 0.5, 1e-9);
}

TEST(Frpu, PredictionAccurateForSteadyFrames) {
  QosConfig cfg;
  FrameRateEstimator e(cfg);
  Cycle now = 0;
  for (int f = 0; f < 4; ++f) {
    e.on_frame_start(frame_2x1(), now);
    drive_rtp(e, now, 800);
    drive_rtp(e, now, 800);
    e.on_frame_complete(now);
  }
  ASSERT_FALSE(e.samples().empty());
  for (const auto& s : e.samples()) {
    EXPECT_NEAR(s.predicted_cycles, s.actual_cycles,
                0.05 * s.actual_cycles);
  }
  EXPECT_EQ(e.relearn_events(), 0u);
}

TEST(Frpu, RelearnsWhenWorkloadShifts) {
  QosConfig cfg;
  cfg.relearn_threshold = 0.25;
  FrameRateEstimator e(cfg);
  Cycle now = 0;
  e.on_frame_start(frame_2x1(), now);
  drive_rtp(e, now, 800);
  e.on_frame_complete(now);
  ASSERT_TRUE(e.predicting());

  // Scene change: the next frame has 3x the work (3 RTPs vs 1).
  e.on_frame_start(frame_2x1(), now);
  drive_rtp(e, now, 800);
  drive_rtp(e, now, 800);
  drive_rtp(e, now, 800);
  e.on_frame_complete(now);
  EXPECT_EQ(e.phase(), FrameRateEstimator::Phase::Learning);
  EXPECT_EQ(e.relearn_events(), 1u);

  // It relearns the new shape and returns to prediction.
  e.on_frame_start(frame_2x1(), now);
  drive_rtp(e, now, 800);
  drive_rtp(e, now, 800);
  drive_rtp(e, now, 800);
  e.on_frame_complete(now);
  EXPECT_TRUE(e.predicting());
  EXPECT_EQ(e.table().rtp_count(), 3u);
}

TEST(Frpu, CycleDivergenceTriggersRelearn) {
  QosConfig cfg;
  cfg.relearn_threshold = 0.25;
  FrameRateEstimator e(cfg);
  Cycle now = 0;
  e.on_frame_start(frame_2x1(), now);
  drive_rtp(e, now, 800);
  e.on_frame_complete(now);
  ASSERT_TRUE(e.predicting());
  // Same work, but 2x slower (e.g. throttling kicked in).
  e.on_frame_start(frame_2x1(), now);
  drive_rtp(e, now, 1600);
  e.on_frame_complete(now);
  EXPECT_EQ(e.relearn_events(), 1u);
}

// --- ATU ------------------------------------------------------------------

TEST(Atu, NoThrottleWhenGpuSlowerThanTarget) {
  QosConfig cfg;
  AccessThrottler atu(cfg);
  atu.update(/*cp=*/500'000, /*ct=*/400'000, /*A=*/1000);
  EXPECT_EQ(atu.wg(), 0u);
  EXPECT_FALSE(atu.throttling());
  EXPECT_TRUE(atu.allow(0));
}

TEST(Atu, WgGrowsByStepTowardBound) {
  QosConfig cfg;  // wg_step = 2
  AccessThrottler atu(cfg);
  // Bound = (ct - cp) / A = (400k - 200k) / 10k = 20.
  for (int i = 0; i < 5; ++i) atu.update(200'000, 400'000, 10'000);
  EXPECT_EQ(atu.wg(), 10u);  // 5 steps of +2
  // Keeps growing until it crosses the bound, then freezes.
  for (int i = 0; i < 50; ++i) atu.update(200'000, 400'000, 10'000);
  EXPECT_GE(atu.wg(), 20u);
  EXPECT_LE(atu.wg(), 22u);  // one step past the bound at most
}

TEST(Atu, ResetsWhenTargetCrossed) {
  QosConfig cfg;
  AccessThrottler atu(cfg);
  for (int i = 0; i < 10; ++i) atu.update(200'000, 400'000, 10'000);
  EXPECT_TRUE(atu.throttling());
  atu.update(450'000, 400'000, 10'000);  // now below target
  EXPECT_FALSE(atu.throttling());
  EXPECT_EQ(atu.wg(), 0u);
}

TEST(Atu, TokenMechanismEnforcesWindow) {
  QosConfig cfg;
  AccessThrottler atu(cfg);
  for (int i = 0; i < 3; ++i) atu.update(200'000, 400'000, 10'000);
  const Cycle wg = atu.wg();
  ASSERT_GT(wg, 0u);
  ASSERT_EQ(atu.ng(), 1u);

  Cycle now = 100;
  EXPECT_TRUE(atu.allow(now));
  atu.on_issued(now);  // consumed the NG=1 token
  EXPECT_FALSE(atu.allow(now));
  EXPECT_FALSE(atu.allow(now + wg - 1));
  EXPECT_TRUE(atu.allow(now + wg));  // window elapsed, token refreshed
}

TEST(Atu, DisableOpensTheGate) {
  QosConfig cfg;
  AccessThrottler atu(cfg);
  for (int i = 0; i < 3; ++i) atu.update(200'000, 400'000, 10'000);
  atu.on_issued(50);
  EXPECT_FALSE(atu.allow(50));
  atu.disable();
  EXPECT_TRUE(atu.allow(50));
}

TEST(Atu, ZeroAccessesPerFrameIsSafe) {
  QosConfig cfg;
  AccessThrottler atu(cfg);
  atu.update(200'000, 400'000, 0);
  EXPECT_EQ(atu.wg(), 0u);
}

// --- Governor ---------------------------------------------------------------

struct GovernorHarness {
  Engine engine;
  StatRegistry stats;
  GpuConfig gcfg;
  QosConfig qcfg;
  GpuMemInterface gmi{gcfg, stats};
  GpuPipeline pipeline{engine, gcfg, stats, Rng(1)};
  FrameRateEstimator frpu{qcfg};
  AccessThrottler atu{qcfg};
  QosSignals signals;
  QosGovernor governor;

  explicit GovernorHarness(QosGovernor::Options opts, double fps_scale = 100)
      : governor(engine, qcfg, opts, frpu, atu, pipeline, signals, fps_scale,
                 stats) {
    pipeline.set_mem_interface(&gmi);
    gmi.set_sender([](MemRequest&&) {});
  }
};

TEST(Governor, TargetCyclesMatchScale) {
  GovernorHarness h({true, true}, /*fps_scale=*/100);
  // CT = 1e9 / (40 * 100) = 250'000 GPU cycles per frame.
  EXPECT_NEAR(h.governor.target_frame_cycles(), 250'000.0, 1.0);
}

TEST(Governor, HoldsThrottleDuringLearning) {
  GovernorHarness h({true, true});
  h.atu.update(100'000, 250'000, 1'000);  // some throttle built up
  const Cycle wg = h.atu.wg();
  h.governor.control(0);  // FRPU is learning: hold, do not disable
  EXPECT_EQ(h.atu.wg(), wg);
  EXPECT_FALSE(h.signals.estimating);
}

TEST(Governor, PublishesSignalsOncePredicting) {
  GovernorHarness h({true, true}, 100);
  // Teach the estimator a fast frame: 1 RTP of 8 updates, 1000 cycles.
  SceneFrame f;
  f.tiles_x = 2;
  f.tiles_y = 1;
  f.tile_px = 2;
  Cycle now = 0;
  h.frpu.on_frame_start(f, now);
  for (unsigned px = 0; px < 4; ++px) {
    for (unsigned t = 0; t < 2; ++t) {
      now += 125;
      h.frpu.on_llc_access(now);
      h.frpu.on_rt_update(t, now);
    }
  }
  h.frpu.on_frame_complete(now);
  ASSERT_TRUE(h.frpu.predicting());

  h.frpu.on_frame_start(f, now);
  h.governor.control(now);
  EXPECT_TRUE(h.signals.estimating);
  // Predicted ~1000 cycles/frame << CT 250'000: far above target.
  EXPECT_TRUE(h.signals.gpu_meets_target);
  EXPECT_GT(h.signals.predicted_fps, h.signals.target_fps);
  EXPECT_TRUE(h.signals.cpu_prio_boost);
  EXPECT_GT(h.atu.wg(), 0u);  // throttle engaged
}

TEST(Governor, ThrottleOnlyModeNeverBoostsCpu) {
  GovernorHarness h({true, false}, 100);
  SceneFrame f;
  f.tiles_x = 2;
  f.tiles_y = 1;
  f.tile_px = 2;
  Cycle now = 0;
  h.frpu.on_frame_start(f, now);
  for (unsigned px = 0; px < 4; ++px) {
    for (unsigned t = 0; t < 2; ++t) {
      now += 125;
      h.frpu.on_llc_access(now);
      h.frpu.on_rt_update(t, now);
    }
  }
  h.frpu.on_frame_complete(now);
  h.frpu.on_frame_start(f, now);
  h.governor.control(now);
  EXPECT_TRUE(h.signals.estimating);
  EXPECT_FALSE(h.signals.cpu_prio_boost);
  EXPECT_GT(h.atu.wg(), 0u);
}

}  // namespace
}  // namespace gpuqos
