#include "common/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gpuqos {
namespace {

TEST(Engine, EventsFireAtScheduledCycle) {
  Engine e;
  Cycle fired = kNoCycle;
  e.schedule(5, [&] { fired = e.now(); });
  e.run_for(10);
  EXPECT_EQ(fired, 5u);
}

TEST(Engine, SameCycleEventsRunInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(3, [&] { order.push_back(1); });
  e.schedule(3, [&] { order.push_back(2); });
  e.schedule(3, [&] { order.push_back(3); });
  e.run_for(5);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, EventsMayScheduleMoreEvents) {
  Engine e;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 4) e.schedule(2, chain);
  };
  e.schedule(0, chain);
  e.run_for(10);
  EXPECT_EQ(count, 4);
}

TEST(Engine, ZeroDelayFromEventRunsSameCycle) {
  Engine e;
  Cycle inner = kNoCycle;
  e.schedule(2, [&] { e.schedule(0, [&] { inner = e.now(); }); });
  e.run_for(3);
  EXPECT_EQ(inner, 2u);
}

TEST(Engine, TickerPeriodAndPhase) {
  Engine e;
  std::vector<Cycle> fires;
  e.add_ticker(4, 1, [&](Cycle c) { fires.push_back(c); });
  e.run_for(12);
  EXPECT_EQ(fires, (std::vector<Cycle>{1, 5, 9}));
}

TEST(Engine, TickerEveryCycle) {
  Engine e;
  int n = 0;
  e.add_ticker(1, 0, [&](Cycle) { ++n; });
  e.run_for(7);
  EXPECT_EQ(n, 7);
}

TEST(Engine, EventsBeforeTickersWithinCycle) {
  Engine e;
  std::vector<int> order;
  e.add_ticker(1, 0, [&](Cycle c) {
    if (c == 2) order.push_back(2);
  });
  e.schedule(2, [&] { order.push_back(1); });
  e.run_for(4);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, ZeroDelayFromTickerRunsSameCycle) {
  Engine e;
  Cycle fired = kNoCycle;
  e.add_ticker(1, 0, [&](Cycle c) {
    if (c == 3 && fired == kNoCycle) {
      e.schedule(0, [&] { fired = e.now(); });
    }
  });
  e.run_for(5);
  EXPECT_EQ(fired, 3u);
}

TEST(Engine, RunUntilStopsOnPredicate) {
  Engine e;
  int ticks = 0;
  e.add_ticker(1, 0, [&](Cycle) { ++ticks; });
  const Cycle ran = e.run_until([&] { return ticks >= 5; }, 100);
  EXPECT_EQ(ran, 5u);
  EXPECT_EQ(e.now(), 5u);
}

TEST(Engine, RunUntilHonorsCap) {
  Engine e;
  const Cycle ran = e.run_until([] { return false; }, 37);
  EXPECT_EQ(ran, 37u);
}

}  // namespace
}  // namespace gpuqos
