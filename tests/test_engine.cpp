#include "common/engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "common/engine_ref.hpp"
#include "common/rng.hpp"
#include "common/smallfn.hpp"

namespace gpuqos {
namespace {

TEST(Engine, EventsFireAtScheduledCycle) {
  Engine e;
  Cycle fired = kNoCycle;
  e.schedule(5, [&] { fired = e.now(); });
  e.run_for(10);
  EXPECT_EQ(fired, 5u);
}

TEST(Engine, SameCycleEventsRunInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(3, [&] { order.push_back(1); });
  e.schedule(3, [&] { order.push_back(2); });
  e.schedule(3, [&] { order.push_back(3); });
  e.run_for(5);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, EventsMayScheduleMoreEvents) {
  Engine e;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 4) e.schedule(2, chain);
  };
  e.schedule(0, chain);
  e.run_for(10);
  EXPECT_EQ(count, 4);
}

TEST(Engine, ZeroDelayFromEventRunsSameCycle) {
  Engine e;
  Cycle inner = kNoCycle;
  e.schedule(2, [&] { e.schedule(0, [&] { inner = e.now(); }); });
  e.run_for(3);
  EXPECT_EQ(inner, 2u);
}

TEST(Engine, TickerPeriodAndPhase) {
  Engine e;
  std::vector<Cycle> fires;
  e.add_ticker(4, 1, [&](Cycle c) { fires.push_back(c); });
  e.run_for(12);
  EXPECT_EQ(fires, (std::vector<Cycle>{1, 5, 9}));
}

TEST(Engine, TickerEveryCycle) {
  Engine e;
  int n = 0;
  e.add_ticker(1, 0, [&](Cycle) { ++n; });
  e.run_for(7);
  EXPECT_EQ(n, 7);
}

TEST(Engine, EventsBeforeTickersWithinCycle) {
  Engine e;
  std::vector<int> order;
  e.add_ticker(1, 0, [&](Cycle c) {
    if (c == 2) order.push_back(2);
  });
  e.schedule(2, [&] { order.push_back(1); });
  e.run_for(4);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, ZeroDelayFromTickerRunsSameCycle) {
  Engine e;
  Cycle fired = kNoCycle;
  e.add_ticker(1, 0, [&](Cycle c) {
    if (c == 3 && fired == kNoCycle) {
      e.schedule(0, [&] { fired = e.now(); });
    }
  });
  e.run_for(5);
  EXPECT_EQ(fired, 3u);
}

TEST(Engine, RunUntilStopsOnPredicate) {
  Engine e;
  int ticks = 0;
  e.add_ticker(1, 0, [&](Cycle) { ++ticks; });
  const Cycle ran = e.run_until([&] { return ticks >= 5; }, 100);
  EXPECT_EQ(ran, 5u);
  EXPECT_EQ(e.now(), 5u);
}

TEST(Engine, RunUntilHonorsCap) {
  Engine e;
  const Cycle ran = e.run_until([] { return false; }, 37);
  EXPECT_EQ(ran, 37u);
}

// ---------------------------------------------------------------------------
// Timing-wheel specifics: the wheel holds the next kWheelSize cycles; longer
// delays spill to the far heap and must refill in (when, seq) order.

TEST(EngineWheel, FarFutureSpillFiresInWhenOrder) {
  Engine e;
  std::vector<std::pair<Cycle, int>> trace;
  // All far beyond the wheel horizon, scheduled out of cycle order.
  e.schedule(5000, [&] { trace.emplace_back(e.now(), 2); });
  e.schedule(300, [&] { trace.emplace_back(e.now(), 0); });
  e.schedule(1000, [&] { trace.emplace_back(e.now(), 1); });
  e.schedule(7, [&] { trace.emplace_back(e.now(), -1); });  // near: direct
  e.run_for(6000);
  const std::vector<std::pair<Cycle, int>> want{
      {7, -1}, {300, 0}, {1000, 1}, {5000, 2}};
  EXPECT_EQ(trace, want);
}

TEST(EngineWheel, SameCycleStableAcrossNearFarBoundary) {
  Engine e;
  std::vector<int> order;
  // First lands in the far heap (delay 300 > wheel size); after advancing,
  // the second targets the same absolute cycle through the near path.
  e.schedule(300, [&] { order.push_back(1); });
  e.run_for(200);
  e.schedule(100, [&] { order.push_back(2); });
  e.run_for(200);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));  // schedule (seq) order
}

TEST(EngineWheel, ManySameCycleEventsStayStableThroughSpill) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 64; ++i) {
    e.schedule(1000, [&order, i] { order.push_back(i); });
  }
  e.run_for(1100);
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[i], i);
}

TEST(EngineWheel, SkipAheadPreservesEventAndTickerSchedule) {
  // Sparse workload: run_for may jump over idle gaps. The observable
  // schedule must match the reference engine stepping every cycle.
  auto drive = [](auto& e) {
    std::vector<std::pair<Cycle, int>> trace;
    e.add_ticker(700, 13, [&e, &trace](Cycle c) {
      trace.emplace_back(c, -1);
      if (c < 4000) {
        e.schedule(911, [&e, &trace] { trace.emplace_back(e.now(), 1); });
      }
    });
    e.schedule(2500, [&e, &trace] { trace.emplace_back(e.now(), 2); });
    e.run_for(6000);
    return trace;
  };
  Engine fast;
  ReferenceEngine ref;
  EXPECT_EQ(drive(fast), drive(ref));
  EXPECT_EQ(fast.now(), ref.now());
}

TEST(EngineWheel, PendingEventsCountsNearAndFar) {
  Engine e;
  e.schedule(3, [] {});
  e.schedule(1000, [] {});
  EXPECT_EQ(e.pending_events(), 2u);
  EXPECT_EQ(e.next_event_cycle(), 3u);
  e.run_for(10);
  EXPECT_EQ(e.pending_events(), 1u);
  EXPECT_EQ(e.next_event_cycle(), 1000u);
}

TEST(EngineWheel, DigestReflectsQueueState) {
  Engine a, b;
  EXPECT_EQ(a.digest(), b.digest());
  a.schedule(5, [] {});
  EXPECT_NE(a.digest(), b.digest());  // pending event is part of the digest
  b.schedule(5, [] {});
  EXPECT_EQ(a.digest(), b.digest());
  a.schedule(1000, [] {});  // far-heap occupancy too
  EXPECT_NE(a.digest(), b.digest());
}

// ---------------------------------------------------------------------------
// Differential check: a seeded random workload must unfold identically on
// the production engine and on the frozen pre-overhaul ReferenceEngine.

template <typename E>
std::vector<std::pair<Cycle, int>> random_workload_trace() {
  E e;
  Rng rng(0xC0FFEE);
  std::vector<std::pair<Cycle, int>> trace;
  int next_id = 0;
  e.add_ticker(3, 1, [&](Cycle c) {
    trace.emplace_back(c, -1);
    if (c < 3000 && rng.bernoulli(0.7)) {
      const int id = next_id++;
      // Delays straddle the wheel horizon so near, boundary, and far paths
      // all see traffic.
      const Cycle d = rng.next_below(700);
      e.schedule(d, [&e, &trace, id] { trace.emplace_back(e.now(), id); });
    }
  });
  e.add_ticker(1, 0, [&](Cycle) {});  // period-1 ticker as in the real sims
  e.run_for(4000);
  return trace;
}

TEST(EngineDifferential, RandomWorkloadMatchesReferenceEngine) {
  const auto fast = random_workload_trace<Engine>();
  const auto ref = random_workload_trace<ReferenceEngine>();
  ASSERT_EQ(fast.size(), ref.size());
  EXPECT_EQ(fast, ref);
}

// ---------------------------------------------------------------------------
// SmallFn: the engine's non-allocating callable.

TEST(SmallFn, InvokesInlineAndHeapCallables) {
  SmallFn<int(int), 16> small([](int x) { return x + 1; });
  EXPECT_EQ(small(41), 42);

  struct Big {
    char pad[128] = {};
    int operator()(int x) { return x * 2; }
  };
  SmallFn<int(int), 16> big(Big{});  // larger than the buffer: heap path
  EXPECT_EQ(big(21), 42);
}

TEST(SmallFn, MoveTransfersOwnership) {
  auto counter = std::make_shared<int>(0);
  SmallFn<void(), 64> a([counter] { ++*counter; });
  SmallFn<void(), 64> b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(*counter, 1);
}

TEST(SmallFn, MoveOnlyCapturesWork) {
  auto owned = std::make_unique<int>(7);
  SmallFn<int(), 64> f([p = std::move(owned)] { return *p; });
  EXPECT_EQ(f(), 7);
}

}  // namespace
}  // namespace gpuqos
