#!/usr/bin/env bash
# Sweep-pool determinism (docs/PERFORMANCE.md): a simulation executed inside
# the parallel sweep pool must emit exactly the digest stream of a serial
# execution of the same configuration. gpuqos_run --pool N runs N identical
# copies through run_many() on worker threads and writes job 0's stream;
# tools/digest_diff then compares it against a plain serial run.
set -euo pipefail

GPUQOS_RUN=$1
DIGEST_DIFF=$2
MIX=$3
WORK=$4

mkdir -p "$WORK"
export GPUQOS_FAST=1

"$GPUQOS_RUN" "$MIX" ThrotCPUprio --check \
    --digest-out "$WORK/$MIX.serial.digest" --digest-interval 500000 \
    > /dev/null

GPUQOS_THREADS=4 "$GPUQOS_RUN" "$MIX" ThrotCPUprio --check --pool 3 \
    --digest-out "$WORK/$MIX.pooled.digest" --digest-interval 500000 \
    > /dev/null

echo "serial-vs-pooled:"
"$DIGEST_DIFF" "$WORK/$MIX.serial.digest" "$WORK/$MIX.pooled.digest"
