// Correctness-analysis layer (docs/ANALYSIS.md): every auditor must catch a
// directly constructed violating view, the conservation ledger must detect
// duplication/leaks, digests must be deterministic, and the comparator must
// pinpoint the first divergent record.
#include <gtest/gtest.h>

#include <sstream>

#include "check/auditors.hpp"
#include "check/check.hpp"
#include "check/context.hpp"
#include "check/digest.hpp"
#include "common/config.hpp"
#include "sim/runner.hpp"
#include "workloads/mixes.hpp"

namespace gpuqos {
namespace {

CheckOptions recording_opts() {
  CheckOptions o;
  o.abort_on_violation = false;
  return o;
}

/// True when `ctx` recorded at least one violation from `auditor`.
bool violated(const CheckContext& ctx, const std::string& auditor) {
  for (const auto& v : ctx.violations()) {
    if (v.auditor == auditor) return true;
  }
  return false;
}

// --- FNV-1a hashing ------------------------------------------------------

TEST(Fnv1a, SameInputsSameHash) {
  Fnv1a64 a, b;
  for (std::uint64_t v : {1ull, 2ull, 0xdeadbeefull}) {
    a.mix(v);
    b.mix(v);
  }
  EXPECT_EQ(a.value(), b.value());
}

TEST(Fnv1a, OrderSensitive) {
  Fnv1a64 a, b;
  a.mix(1);
  a.mix(2);
  b.mix(2);
  b.mix(1);
  EXPECT_NE(a.value(), b.value());
}

TEST(Fnv1a, StringTerminatorSeparatesFields) {
  Fnv1a64 a, b;
  a.mix_string("ab");
  a.mix_string("c");
  b.mix_string("a");
  b.mix_string("bc");
  EXPECT_NE(a.value(), b.value());
}

TEST(Fnv1a, UnorderedFoldIsOrderIndependent) {
  Fnv1a64 a, b;
  a.mix_unordered(11);
  a.mix_unordered(22);
  a.commit_unordered();
  b.mix_unordered(22);
  b.mix_unordered(11);
  b.commit_unordered();
  EXPECT_EQ(a.value(), b.value());
}

// --- Digest streams and the comparator -----------------------------------

std::vector<DigestRecord> sample_stream() {
  return {{100, "llc", 0x1111}, {100, "dram", 0x2222}, {200, "llc", 0x3333}};
}

TEST(DigestStream, RoundTripsThroughText) {
  const auto recs = sample_stream();
  std::stringstream ss;
  write_digest_stream(ss, recs);
  EXPECT_EQ(parse_digest_stream(ss), recs);
}

TEST(DigestStream, ParserSkipsCommentsAndBlankLines) {
  std::stringstream ss("# header\n\n100 llc 1111\n# trailing\n");
  const auto recs = parse_digest_stream(ss);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0], (DigestRecord{100, "llc", 0x1111}));
}

TEST(DigestDiff, IdenticalStreamsHaveNoDivergence) {
  EXPECT_FALSE(first_divergence(sample_stream(), sample_stream()).has_value());
}

TEST(DigestDiff, PinpointsFirstDivergentCycleAndModule) {
  auto a = sample_stream();
  auto b = sample_stream();
  b[1].hash ^= 1;  // injected perturbation
  const auto div = first_divergence(a, b);
  ASSERT_TRUE(div.has_value());
  EXPECT_EQ(div->index, 1u);
  EXPECT_EQ(div->cycle, 100u);
  EXPECT_EQ(div->module, "dram");
  EXPECT_FALSE(div->length_mismatch);
}

TEST(DigestDiff, ReportsLengthMismatch) {
  auto a = sample_stream();
  auto b = sample_stream();
  b.pop_back();
  const auto div = first_divergence(a, b);
  ASSERT_TRUE(div.has_value());
  EXPECT_TRUE(div->length_mismatch);
  EXPECT_EQ(div->index, 2u);
  EXPECT_EQ(div->module, "llc");
}

// --- Conservation ledger -------------------------------------------------

TEST(Ledger, TracksInjectedAndRetired) {
  CheckContext ctx(recording_opts());
  ctx.on_inject(CheckContext::Flow::CpuRead);
  ctx.on_inject(CheckContext::Flow::CpuRead);
  ctx.on_retire(CheckContext::Flow::CpuRead, 10);
  EXPECT_EQ(ctx.injected(CheckContext::Flow::CpuRead), 2u);
  EXPECT_EQ(ctx.retired(CheckContext::Flow::CpuRead), 1u);
  EXPECT_EQ(ctx.in_flight(CheckContext::Flow::CpuRead), 1u);
  EXPECT_TRUE(ctx.violations().empty());
}

TEST(Ledger, SpuriousCompletionIsCaught) {
  CheckContext ctx(recording_opts());
  ctx.on_retire(CheckContext::Flow::GpuRead, 5);  // never injected
  EXPECT_TRUE(violated(ctx, "conservation"));
}

TEST(Ledger, GuardRetireDetectsDuplicatedCompletion) {
  CheckContext ctx(recording_opts());
  ctx.on_inject(CheckContext::Flow::CpuRead);
  int delivered = 0;
  auto cb = ctx.guard_retire([&](Cycle) { ++delivered; },
                             CheckContext::Flow::CpuRead);
  cb(10);
  EXPECT_EQ(delivered, 1);
  EXPECT_TRUE(ctx.violations().empty());
  cb(11);  // the memory system duplicated the request
  EXPECT_EQ(delivered, 1);  // inner callback still runs exactly once
  EXPECT_TRUE(violated(ctx, "conservation"));
}

TEST(Ledger, InFlightBoundViolationSurfacesOnAudit) {
  CheckContext ctx(recording_opts());
  ctx.set_in_flight_bound(CheckContext::Flow::CpuRead, 2);
  for (int i = 0; i < 3; ++i) ctx.on_inject(CheckContext::Flow::CpuRead);
  ctx.audit(100);
  EXPECT_TRUE(violated(ctx, "conservation"));
}

TEST(Ledger, QuiescedFinalizeDetectsLeakedRead) {
  CheckContext ctx(recording_opts());
  ctx.on_inject(CheckContext::Flow::DramRead);
  ctx.finalize(1000, /*quiesced=*/false);  // mid-flight stop: no requirement
  EXPECT_TRUE(ctx.violations().empty());
  ctx.finalize(1000, /*quiesced=*/true);  // drained engine: the read leaked
  EXPECT_TRUE(violated(ctx, "conservation"));
}

TEST(Ledger, PostedWritesNeedNoRetirement) {
  CheckContext ctx(recording_opts());
  ctx.on_inject(CheckContext::Flow::CpuWrite);
  ctx.on_inject(CheckContext::Flow::GpuWrite);
  ctx.finalize(1000, /*quiesced=*/true);
  EXPECT_TRUE(ctx.violations().empty());
}

TEST(Ledger, AbortOnViolationAborts) {
  CheckOptions o;  // abort_on_violation defaults to true
  EXPECT_DEATH(
      {
        CheckContext ctx(o);
        ctx.on_retire(CheckContext::Flow::CpuRead, 1);
      },
      "invariant violation");
}

// --- Invariant auditors (violating views constructed directly) -----------

TEST(Auditors, MshrOverflowAndWaiterBound) {
  CheckContext ctx(recording_opts());
  MshrAuditView v;
  v.size = 5;
  v.capacity = 4;
  audit_mshr(ctx, 1, v);
  EXPECT_TRUE(violated(ctx, "mshr"));

  CheckContext ctx2(recording_opts());
  v = MshrAuditView{};
  v.size = 2;
  v.capacity = 4;
  v.max_waiters = 9;
  v.waiter_bound = 8;
  audit_mshr(ctx2, 1, v);
  EXPECT_TRUE(violated(ctx2, "mshr"));

  CheckContext ok(recording_opts());
  v.max_waiters = 8;
  audit_mshr(ok, 1, v);
  EXPECT_TRUE(ok.violations().empty());
}

TEST(Auditors, LlcTagInconsistencyAndOverfill) {
  CheckContext ctx(recording_opts());
  LlcAuditView v;
  v.mshr.capacity = 32;
  v.tag_error = "set 3 holds tag 0xabc twice";
  audit_llc(ctx, 1, v);
  EXPECT_TRUE(violated(ctx, "llc"));

  CheckContext ctx2(recording_opts());
  v = LlcAuditView{};
  v.mshr.capacity = 32;
  v.valid_blocks = 1025;
  v.capacity_blocks = 1024;
  audit_llc(ctx2, 1, v);
  EXPECT_TRUE(violated(ctx2, "llc"));

  CheckContext ctx3(recording_opts());
  v = LlcAuditView{};
  v.mshr.capacity = 32;
  v.outstanding_reads = 33;  // more DRAM reads than MSHRs backing them
  audit_llc(ctx3, 1, v);
  EXPECT_TRUE(violated(ctx3, "llc"));
}

TEST(Auditors, AtuTokenAccounting) {
  CheckContext ctx(recording_opts());
  AtuAuditView v;
  v.ng = 4;
  v.tokens_left = 5;  // more tokens than the grant budget
  audit_atu(ctx, 1, v);
  EXPECT_TRUE(violated(ctx, "atu"));

  CheckContext ctx2(recording_opts());
  v = AtuAuditView{};
  v.ng = 4;
  v.grants = 10;
  v.issues = 11;  // gate bypassed
  audit_atu(ctx2, 1, v);
  EXPECT_TRUE(violated(ctx2, "atu"));

  CheckContext ctx3(recording_opts());
  v = AtuAuditView{};
  v.wg = 0;
  v.blocked_until = 500;  // window armed while throttling is off
  audit_atu(ctx3, 1, v);
  EXPECT_TRUE(violated(ctx3, "atu"));

  CheckContext ctx4(recording_opts());
  v = AtuAuditView{};
  v.wg = 100;
  v.window_overlaps = 1;  // WG windows overlapped
  audit_atu(ctx4, 1, v);
  EXPECT_TRUE(violated(ctx4, "atu"));
}

TEST(Auditors, DramQueueBoundsAndStarvation) {
  CheckContext ctx(recording_opts());
  ChannelAuditView v;
  v.read_depth = 65;
  v.read_bound = 64;
  audit_channel(ctx, 1, v);
  EXPECT_TRUE(violated(ctx, "dram"));

  CheckContext ctx2(recording_opts());
  v = ChannelAuditView{};
  v.oldest_read_arrival = 0;
  v.now = 9'000'000;
  v.starvation_bound = 8'000'000;
  audit_channel(ctx2, v.now, v);
  EXPECT_TRUE(violated(ctx2, "dram"));

  CheckContext ok(recording_opts());
  v.now = 7'000'000;  // within the bound
  audit_channel(ok, v.now, v);
  EXPECT_TRUE(ok.violations().empty());
}

TEST(Auditors, RingDuplicationAndBacklog) {
  CheckContext ctx(recording_opts());
  RingAuditView v;
  v.sent = 10;
  v.delivered = 11;
  audit_ring(ctx, 1, v);
  EXPECT_TRUE(violated(ctx, "ring"));

  CheckContext ctx2(recording_opts());
  v = RingAuditView{};
  v.now = 1000;
  v.max_link_reserved = 3000;
  v.horizon = 1500;
  audit_ring(ctx2, v.now, v);
  EXPECT_TRUE(violated(ctx2, "ring"));
}

TEST(Auditors, RtpTableBounds) {
  CheckContext ctx(recording_opts());
  RtpAuditView v;
  v.capacity = 65;  // above the architected 64 entries
  audit_rtp(ctx, 1, v);
  EXPECT_TRUE(violated(ctx, "rtp"));

  CheckContext ctx2(recording_opts());
  v = RtpAuditView{};
  v.capacity = 64;
  v.used = 7;
  v.rtp_count = 6;  // lost RTPs
  audit_rtp(ctx2, 1, v);
  EXPECT_TRUE(violated(ctx2, "rtp"));

  CheckContext ctx3(recording_opts());
  v = RtpAuditView{};
  v.capacity = 64;
  v.avg_cycles_per_rtp = -1.0;  // Eq. 2 input out of domain
  audit_rtp(ctx3, 1, v);
  EXPECT_TRUE(violated(ctx3, "rtp"));
}

TEST(Auditors, FrpuTileBookkeeping) {
  CheckContext ctx(recording_opts());
  FrpuAuditView v;
  v.in_frame = true;
  v.num_tiles = 16;
  v.tile_slots = 15;
  audit_frpu(ctx, 1, v);
  EXPECT_TRUE(violated(ctx, "frpu"));

  CheckContext ctx2(recording_opts());
  v = FrpuAuditView{};
  v.num_tiles = 16;
  v.tiles_at_target = 17;
  audit_frpu(ctx2, 1, v);
  EXPECT_TRUE(violated(ctx2, "frpu"));
}

TEST(Auditors, EngineEventBound) {
  CheckContext ctx(recording_opts());
  EngineAuditView v;
  v.pending_events = 1'000'001;
  v.event_bound = 1'000'000;
  audit_engine(ctx, 1, v);
  EXPECT_TRUE(violated(ctx, "engine"));
}

TEST(Auditors, RegisteredAuditorsRunEveryAudit) {
  CheckContext ctx(recording_opts());
  int calls = 0;
  ctx.add_auditor("probe", [&](Cycle) { ++calls; });
  ctx.audit(1);
  ctx.audit(2);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(ctx.audits_run(), 2u);
}

// --- GPUQOS_CHECK --------------------------------------------------------

TEST(Check, ModuleNameDerivesFromSourcePath) {
  EXPECT_EQ(check_module_of("src/dram/channel.cpp"), "dram");
  EXPECT_EQ(check_module_of("/abs/path/src/qos/atu.cpp"), "qos");
  EXPECT_EQ(check_module_of("tools/digest_diff.cpp"), "digest_diff.cpp");
}

TEST(Check, FailureAbortsWithDiagnostic) {
  EXPECT_DEATH(check_fail("src/dram/channel.cpp", 42, "x < y", "x=9 y=3"),
               "dram");
}

// --- End-to-end determinism ----------------------------------------------

RunScale tiny_scale() {
  RunScale s;
  s.warm_instrs = 10'000;
  s.measure_instrs = 40'000;
  s.warm_frames = 1;
  s.measure_frames = 2;
  s.warm_min_cycles = 100'000;
  s.max_cycles = 60'000'000;
  return s;
}

CheckOptions digest_opts() {
  CheckOptions o;
  o.audit_interval = 50'000;
  o.digest_interval = 50'000;
  return o;
}

TEST(Determinism, IdenticalSeededRunsProduceIdenticalDigests) {
  const SimConfig cfg = Presets::scaled();
  const HeteroMix& m = mix("M8");

  CheckContext a(digest_opts());
  RunHooks hooks_a;
  hooks_a.check = &a;
  const auto ra =
      run_hetero(cfg, m, Policy::ThrottleCpuPrio, tiny_scale(), hooks_a);
  CheckContext b(digest_opts());
  RunHooks hooks_b;
  hooks_b.check = &b;
  const auto rb =
      run_hetero(cfg, m, Policy::ThrottleCpuPrio, tiny_scale(), hooks_b);

  EXPECT_GT(a.audits_run(), 0u);
  ASSERT_FALSE(a.digest_records().empty());
  const auto div = first_divergence(a.digest_records(), b.digest_records());
  EXPECT_FALSE(div.has_value())
      << "first divergence at cycle " << div->cycle << ", module "
      << div->module;
  EXPECT_EQ(ra.fps, rb.fps);
  EXPECT_EQ(ra.cpu_ipc, rb.cpu_ipc);
}

TEST(Determinism, SeedPerturbationIsPinpointed) {
  SimConfig cfg = Presets::scaled();
  const HeteroMix& m = mix("M8");

  CheckContext a(digest_opts());
  RunHooks hooks_a;
  hooks_a.check = &a;
  (void)run_hetero(cfg, m, Policy::Baseline, tiny_scale(), hooks_a);
  cfg.seed += 1;  // injected perturbation
  CheckContext b(digest_opts());
  RunHooks hooks_b;
  hooks_b.check = &b;
  (void)run_hetero(cfg, m, Policy::Baseline, tiny_scale(), hooks_b);

  const auto div = first_divergence(a.digest_records(), b.digest_records());
  ASSERT_TRUE(div.has_value());
  EXPECT_FALSE(div->module.empty());
}

}  // namespace
}  // namespace gpuqos
