// Simulation-service tests (docs/SERVICE.md): the JSON model and strict
// parser, the length-prefixed frame protocol, job canonicalization and its
// dedup keys, the CRC-guarded result container, the persistent result store,
// the warm checkpoint cache, and the batch executor's canonical-execution
// guarantee (cold run == warm fork == store hit, byte for byte). The daemon
// socket path is covered end-to-end by tests/serve_test.sh.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/state_io.hpp"
#include "sim/runner.hpp"
#include "svc/client.hpp"
#include "svc/exec.hpp"
#include "svc/jobspec.hpp"
#include "svc/json.hpp"
#include "svc/protocol.hpp"
#include "svc/result_io.hpp"
#include "svc/store.hpp"
#include "svc/warm_cache.hpp"

namespace gpuqos::svc {
namespace {

RunScale tiny_scale() {
  RunScale s;
  s.warm_instrs = 20'000;
  s.measure_instrs = 60'000;
  s.warm_frames = 1;
  s.measure_frames = 1;
  s.warm_min_cycles = 300'000;
  s.max_cycles = 60'000'000;
  return s;
}

JobSpec tiny_hetero(const std::string& mix_id, const std::string& policy) {
  JobSpec spec = hetero_job(mix_id, policy, tiny_scale());
  return spec;
}

JobSpec tiny_cpu_alone(int spec_id) {
  JobSpec spec;
  spec.kind = JobKind::kCpuAlone;
  spec.spec_id = spec_id;
  spec.scale = tiny_scale();
  return spec;
}

/// Fabricated result for the container/store tests — no simulation needed.
HeteroResult fake_result() {
  HeteroResult r;
  r.mix_id = "M1";
  r.policy = Policy::DynPrio;
  r.spec_ids = {403, 450};
  r.cpu_ipc = {1.25, 0.75};
  r.fps = 42.5;
  r.gpu_frame_cycles = 123456.0;
  r.seconds = 0.125;
  r.hit_cycle_cap = false;
  r.est_error_pct = -3.5;
  r.est_samples = 17;
  r.est_relearns = 2;
  r.stat_delta = {{"llc.miss", 1234}, {"mc.reads", 5678}};
  return r;
}

struct TempDir {
  TempDir()
      : path((std::filesystem::temp_directory_path() /
              ("gpuqos_svc_test_" + std::to_string(::getpid()) + "_" +
               std::to_string(counter++)))
                 .string()) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  static int counter;
  std::string path;
};
int TempDir::counter = 0;

// ---------------------------------------------------------------------------
// JSON model + parser.

TEST(SvcJson, WriteParsesBackIdentically) {
  JsonValue doc = JsonValue::object();
  doc.add("name", JsonValue::str("quote \" slash \\ newline \n tab \t"));
  doc.add("count", JsonValue::num_u64(18446744073709551615ull));
  doc.add("ratio", JsonValue::num_f64(0.125));
  doc.add("on", JsonValue::boolean(true));
  doc.add("off", JsonValue::boolean(false));
  doc.add("nothing", JsonValue());
  JsonValue arr = JsonValue::array();
  arr.push(JsonValue::num_u64(1)).push(JsonValue::str("two"));
  doc.add("items", std::move(arr));

  const std::string text = json_write(doc);
  const JsonValue back = json_parse(text);
  EXPECT_EQ(json_write(back), text);
  EXPECT_EQ(back.req_string("name"), "quote \" slash \\ newline \n tab \t");
  EXPECT_EQ(back.req_u64("count"), 18446744073709551615ull);
  EXPECT_EQ(back.req_f64("ratio"), 0.125);
  EXPECT_TRUE(back.req("on").flag);
  EXPECT_EQ(back.req("nothing").kind, JsonValue::Kind::kNull);
  ASSERT_EQ(back.req("items").items.size(), 2u);
}

TEST(SvcJson, ObjectKeepsInsertionOrder) {
  const JsonValue v = json_parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(v.fields.size(), 3u);
  EXPECT_EQ(v.fields[0].first, "z");
  EXPECT_EQ(v.fields[1].first, "a");
  EXPECT_EQ(v.fields[2].first, "m");
}

TEST(SvcJson, UnicodeEscapesDecode) {
  const JsonValue v = json_parse(R"({"s": "\u0041\u00e9"})");
  EXPECT_EQ(v.req_string("s"), "A\xc3\xa9");
}

TEST(SvcJson, MalformedInputsThrowJsonError) {
  EXPECT_THROW((void)json_parse(""), JsonError);
  EXPECT_THROW((void)json_parse("{"), JsonError);
  EXPECT_THROW((void)json_parse("[1, 2,]"), JsonError);          // trailing comma
  EXPECT_THROW((void)json_parse("{\"a\": 1} extra"), JsonError); // trailing junk
  EXPECT_THROW((void)json_parse("\"unterminated"), JsonError);
  EXPECT_THROW((void)json_parse("{\"a\": \"\\q\"}"), JsonError); // bad escape
  EXPECT_THROW((void)json_parse("{'a': 1}"), JsonError);         // not RFC 8259
  const std::string deep(100, '[');
  EXPECT_THROW((void)json_parse(deep), JsonError);  // depth limit
}

TEST(SvcJson, CheckedAccessorsNameTheField) {
  const JsonValue v = json_parse(R"({"n": -1, "s": "x"})");
  EXPECT_THROW((void)v.req("missing"), JsonError);
  EXPECT_THROW((void)v.req_u64("s"), JsonError);    // kind mismatch
  EXPECT_THROW((void)v.req_u64("n"), JsonError);    // negative into u64
  EXPECT_THROW((void)v.req_string("n"), JsonError);
  EXPECT_EQ(v.req_f64("n"), -1.0);
}

// ---------------------------------------------------------------------------
// Frame protocol.

TEST(SvcProtocol, HexRoundTripAndRejects) {
  const std::vector<std::uint8_t> bytes = {0x00, 0x7f, 0xAB, 0xFF};
  const std::string hex = hex_encode(bytes);
  EXPECT_EQ(hex_decode(hex), bytes);
  EXPECT_THROW((void)hex_decode("abc"), ProtoError);   // odd length
  EXPECT_THROW((void)hex_decode("zz"), ProtoError);    // non-hex
  EXPECT_EQ(u64_hex(0xDEADBEEFull), "00000000deadbeef");
}

TEST(SvcProtocol, FrameReaderReassemblesByteByByte) {
  const std::vector<std::uint8_t> a = encode_frame(hello_frame(kProtoVersion));
  const std::vector<std::uint8_t> b =
      encode_frame(error_frame("bad-job", "nope"));
  std::vector<std::uint8_t> wire = a;
  wire.insert(wire.end(), b.begin(), b.end());

  FrameReader reader;
  std::vector<JsonValue> frames;
  for (std::uint8_t byte : wire) {
    reader.feed(&byte, 1);
    while (auto f = reader.next()) frames.push_back(std::move(*f));
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frame_type(frames[0]), "hello");
  EXPECT_EQ(frames[0].req_u64("version"), kProtoVersion);
  EXPECT_EQ(frame_type(frames[1]), "error");
  EXPECT_EQ(frames[1].req_string("code"), "bad-job");
  EXPECT_EQ(frames[1].req_string("message"), "nope");
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(SvcProtocol, OversizedLengthPrefixThrows) {
  const std::uint32_t len = kMaxFrameBytes + 1;
  std::uint8_t prefix[4];
  std::memcpy(prefix, &len, sizeof prefix);
  FrameReader reader;
  reader.feed(prefix, sizeof prefix);
  EXPECT_THROW((void)reader.next(), ProtoError);
}

TEST(SvcProtocol, InvalidJsonPayloadThrows) {
  const std::string payload = "not json\n";
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::vector<std::uint8_t> wire(sizeof len);
  std::memcpy(wire.data(), &len, sizeof len);
  wire.insert(wire.end(), payload.begin(), payload.end());
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  EXPECT_THROW((void)reader.next(), ProtoError);
}

TEST(SvcProtocol, SubmitFrameRoundTrips) {
  std::vector<JobSpec> jobs = {tiny_hetero("M8", "DynPrio"),
                               tiny_cpu_alone(481)};
  const JsonValue frame = submit_frame(7, jobs);
  EXPECT_EQ(frame_type(frame), "submit");
  EXPECT_EQ(frame.req_u64("id"), 7u);

  const std::vector<JobSpec> back = decode_submit_jobs(frame);
  ASSERT_EQ(back.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(canonical(back[i]), canonical(jobs[i]));
  }
}

TEST(SvcProtocol, EncodeFrameRejectsOversizedPayload) {
  // The encode side enforces the same kMaxFrameBytes cap as the reader: a
  // payload the peer could never accept must not be serialised at all.
  JsonValue v = JsonValue::object();
  v.add("type", JsonValue::str("error"));
  v.add("code", JsonValue::str("big"));
  v.add("message", JsonValue::str(std::string(kMaxFrameBytes, 'a')));
  EXPECT_THROW((void)encode_frame(v), ProtoError);
}

TEST(SvcProtocol, SubmitBatchOverJobCapThrows) {
  JsonValue frame = JsonValue::object();
  frame.add("type", JsonValue::str("submit"));
  frame.add("id", JsonValue::num_u64(1));
  JsonValue jobs = JsonValue::array();
  for (std::size_t i = 0; i < kMaxBatchJobs + 1; ++i) {
    jobs.push(JsonValue::object());
  }
  frame.add("jobs", std::move(jobs));
  // The cap is checked before any per-job parsing or reserve(), so the
  // empty job objects are never inspected.
  EXPECT_THROW((void)decode_submit_jobs(frame), SpecError);
}

TEST(SvcProtocol, MalformedSubmitJobThrowsSpecError) {
  JsonValue frame = JsonValue::object();
  frame.add("type", JsonValue::str("submit"));
  frame.add("id", JsonValue::num_u64(1));
  JsonValue jobs = JsonValue::array();
  jobs.push(JsonValue::object());  // no kind/preset/... fields
  frame.add("jobs", std::move(jobs));
  EXPECT_THROW((void)decode_submit_jobs(frame), SpecError);
}

TEST(SvcProtocol, ResultFrameRoundTripsAndBindsToSpec) {
  const JobSpec spec = tiny_hetero("M1", "Throttle");
  JobResult r;
  r.spec = spec;
  r.result = fake_result();
  r.bytes = encode_result(spec, r.result);
  r.digest = result_digest(r.bytes);
  r.source = JobSource::kCold;

  const JsonValue frame = result_frame(3, 0, r);
  EXPECT_EQ(frame_type(frame), "result");
  const JobResult back = decode_result_frame(frame, spec);
  EXPECT_EQ(back.bytes, r.bytes);
  EXPECT_EQ(back.digest, r.digest);
  EXPECT_EQ(back.result.fps, r.result.fps);

  // The same frame decoded for a different job must be rejected: the
  // container's canonical-job binding catches it.
  const JobSpec other = tiny_hetero("M1", "DynPrio");
  EXPECT_THROW((void)decode_result_frame(frame, other), ckpt::CkptError);
}

TEST(SvcProtocol, FrameTypeRequiresTypeString) {
  JsonValue v = JsonValue::object();
  v.add("id", JsonValue::num_u64(1));
  EXPECT_THROW((void)frame_type(v), JsonError);
}

// ---------------------------------------------------------------------------
// Job canonicalization (the dedup identity).

TEST(SvcJobSpec, CanonicalFormIsStable) {
  // Pinned rendering: this string is the persistent content address — if it
  // changes, every existing result store silently cold-runs. Extend the spec
  // by appending fields, never by reshaping these.
  const JobSpec spec = tiny_hetero("M8", "DynPrio");
  EXPECT_EQ(canonical(spec),
            "v1;kind=hetero;preset=scaled;mix=M8;policy=DynPrio;seed=42;"
            "tfps=40;wi=20000;mi=60000;wf=1;mf=1;wmc=300000;cap=60000000");
  EXPECT_EQ(warm_canonical(spec),
            "warm;v1;kind=hetero;preset=scaled;mix=M8;seed=42;"
            "tfps=40;wi=20000;mi=60000;wf=1;mf=1;wmc=300000;cap=60000000");
}

TEST(SvcJobSpec, PoliciesShareWarmKeyButNotJobKey) {
  const JobSpec a = tiny_hetero("M8", "Baseline");
  const JobSpec b = tiny_hetero("M8", "DynPrio");
  EXPECT_EQ(warm_canonical(a), warm_canonical(b));
  EXPECT_NE(job_key(a), job_key(b));
  EXPECT_EQ(job_key_hex(a).size(), 16u);
}

TEST(SvcJobSpec, JsonRoundTripPreservesIdentityForEveryKind) {
  JobSpec gpu;
  gpu.kind = JobKind::kGpuAlone;
  gpu.gpu_app = "Crysis";
  gpu.scale = tiny_scale();
  for (const JobSpec& spec :
       {tiny_hetero("M1", "Throttle"), tiny_cpu_alone(403), gpu}) {
    const JobSpec back = job_from_json(to_json(spec));
    EXPECT_EQ(canonical(back), canonical(spec));
  }
}

TEST(SvcJobSpec, ValidateRejectsUnknownNames) {
  EXPECT_NO_THROW(validate(tiny_hetero("M8", "DynPrio")));
  EXPECT_THROW(validate(tiny_hetero("M99", "DynPrio")), SpecError);
  EXPECT_THROW(validate(tiny_hetero("M8", "Turbo")), SpecError);
  EXPECT_THROW(validate(tiny_cpu_alone(999)), SpecError);

  JobSpec bad_preset = tiny_hetero("M8", "DynPrio");
  bad_preset.preset = "huge";
  EXPECT_THROW(validate(bad_preset), SpecError);

  JobSpec hang = tiny_hetero("M8", "DynPrio");
  hang.scale.max_cycles = 0;
  EXPECT_THROW(validate(hang), SpecError);

  JobSpec app = tiny_cpu_alone(403);
  app.kind = JobKind::kGpuAlone;
  app.gpu_app = "Pong";
  EXPECT_THROW(validate(app), SpecError);
}

TEST(SvcJobSpec, ConfigForAppliesCoreConventions) {
  JobSpec alone = tiny_cpu_alone(481);
  alone.seed = 7;
  alone.target_fps = 30.0;
  const SimConfig cfg = config_for(alone);
  EXPECT_EQ(cfg.cpu_cores, 1u);  // standalone CPU IPC is the one-core number
  EXPECT_EQ(cfg.seed, 7u);
  EXPECT_EQ(cfg.qos.target_fps, 30.0);

  // W-mixes are the Section II one-core setup; M-mixes keep the preset CMP.
  EXPECT_EQ(config_for(tiny_hetero("W1", "Baseline")).cpu_cores, 1u);
  EXPECT_EQ(config_for(tiny_hetero("M1", "Baseline")).cpu_cores,
            Presets::scaled().cpu_cores);
}

// ---------------------------------------------------------------------------
// Result container.

TEST(SvcResultIo, EncodeDecodeRoundTripsEveryField) {
  const JobSpec spec = tiny_hetero("M1", "DynPrio");
  const HeteroResult r = fake_result();
  const std::vector<std::uint8_t> bytes = encode_result(spec, r);
  EXPECT_EQ(bytes, encode_result(spec, r)) << "encode must be deterministic";

  const HeteroResult back = decode_result(spec, bytes);
  EXPECT_EQ(back.mix_id, r.mix_id);
  EXPECT_EQ(back.policy, r.policy);
  EXPECT_EQ(back.spec_ids, r.spec_ids);
  EXPECT_EQ(back.cpu_ipc, r.cpu_ipc);
  EXPECT_EQ(back.fps, r.fps);
  EXPECT_EQ(back.gpu_frame_cycles, r.gpu_frame_cycles);
  EXPECT_EQ(back.seconds, r.seconds);
  EXPECT_EQ(back.hit_cycle_cap, r.hit_cycle_cap);
  EXPECT_EQ(back.est_error_pct, r.est_error_pct);
  EXPECT_EQ(back.est_samples, r.est_samples);
  EXPECT_EQ(back.est_relearns, r.est_relearns);
  EXPECT_EQ(back.stat_delta, r.stat_delta);
}

TEST(SvcResultIo, CorruptionAndWrongSpecAreRejected) {
  const JobSpec spec = tiny_hetero("M1", "DynPrio");
  std::vector<std::uint8_t> bytes = encode_result(spec, fake_result());

  std::vector<std::uint8_t> flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x40;
  EXPECT_THROW((void)decode_result(spec, flipped), ckpt::CkptError);
  EXPECT_NE(result_digest(flipped), result_digest(bytes));

  // Intact bytes requested for a different job: the canonical binding in
  // the "svc.job" section must refuse (an FNV collision can never serve the
  // wrong job's numbers).
  EXPECT_THROW((void)decode_result(tiny_hetero("M1", "Baseline"), bytes),
               ckpt::CkptError);
}

// ---------------------------------------------------------------------------
// Persistent result store.

TEST(SvcStore, PutGetRoundTripAndCounters) {
  TempDir dir;
  ResultStore store(dir.path);
  ASSERT_TRUE(store.enabled());
  const JobSpec spec = tiny_hetero("M1", "DynPrio");
  const std::vector<std::uint8_t> bytes = encode_result(spec, fake_result());

  EXPECT_FALSE(store.get(spec).has_value());
  EXPECT_EQ(store.misses(), 1u);

  store.put(spec, bytes);
  const auto got = store.get(spec);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, bytes);
  EXPECT_EQ(store.hits(), 1u);

  // A second store over the same directory sees the same entry.
  ResultStore reopened(dir.path);
  EXPECT_TRUE(reopened.get(spec).has_value());
}

TEST(SvcStore, CorruptFileBehavesAsMiss) {
  TempDir dir;
  ResultStore store(dir.path);
  const JobSpec spec = tiny_hetero("M1", "DynPrio");
  store.put(spec, encode_result(spec, fake_result()));

  std::ofstream(dir.path + "/" + job_key_hex(spec) + ".gqr",
                std::ios::binary | std::ios::trunc)
      << "garbage, not a container";
  EXPECT_FALSE(store.get(spec).has_value());
  EXPECT_EQ(store.rejects(), 1u);
}

TEST(SvcStore, EmptyDirDisablesPersistence) {
  ResultStore store("");
  EXPECT_FALSE(store.enabled());
  const JobSpec spec = tiny_hetero("M1", "DynPrio");
  store.put(spec, encode_result(spec, fake_result()));  // dropped
  EXPECT_FALSE(store.get(spec).has_value());
}

// ---------------------------------------------------------------------------
// Warm checkpoint cache.

TEST(SvcWarmCache, SecondLookupHitsWithoutRebuilding) {
  WarmCache cache(0);
  int builds = 0;
  auto build = [&builds] {
    ++builds;
    return std::vector<std::uint8_t>(64, 0xAA);
  };
  const auto a = cache.get_or_build("k", build);
  const auto b = cache.get_or_build("k", build);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(a.get(), b.get()) << "hit must share the snapshot";
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.resident_bytes(), 64u);
}

TEST(SvcWarmCache, EvictsLeastRecentlyUsedToFit) {
  WarmCache cache(200);
  auto snap = [](std::uint8_t fill) {
    return [fill] { return std::vector<std::uint8_t>(80, fill); };
  };
  (void)cache.get_or_build("a", snap(1));
  (void)cache.get_or_build("b", snap(2));
  (void)cache.get_or_build("a", snap(1));  // touch: b becomes LRU
  (void)cache.get_or_build("c", snap(3));  // 240 > 200: evict b
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.resident_bytes(), 160u);

  const std::uint64_t hits_before = cache.hits();
  (void)cache.get_or_build("a", snap(1));
  EXPECT_EQ(cache.hits(), hits_before + 1) << "a must have survived";
  (void)cache.get_or_build("b", snap(2));
  EXPECT_EQ(cache.misses(), 4u) << "b was evicted and rebuilt";
}

TEST(SvcWarmCache, BuilderFailureClearsTheKeyForRetry) {
  WarmCache cache(0);
  auto boom = []() -> std::vector<std::uint8_t> {
    throw std::runtime_error("warm-up failed");
  };
  EXPECT_THROW((void)cache.get_or_build("k", boom), std::runtime_error);
  const auto ok = cache.get_or_build(
      "k", [] { return std::vector<std::uint8_t>(8, 1); });
  EXPECT_EQ(ok->size(), 8u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(SvcWarmCache, ConcurrentCallersJoinTheBuilder) {
  WarmCache cache(0);
  std::atomic<int> builds{0};
  auto build = [&builds] {
    ++builds;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    return std::vector<std::uint8_t>(16, 7);
  };
  std::shared_ptr<const std::vector<std::uint8_t>> got[2];
  std::thread t0([&] { got[0] = cache.get_or_build("k", build); });
  std::thread t1([&] { got[1] = cache.get_or_build("k", build); });
  t0.join();
  t1.join();
  EXPECT_EQ(builds.load(), 1) << "one builder, one joiner";
  EXPECT_EQ(got[0].get(), got[1].get());
  EXPECT_EQ(cache.misses() + cache.joins() + cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
}

// ---------------------------------------------------------------------------
// Batch executor: the canonical-execution guarantee.

TEST(SvcExecutor, WarmForkIsByteIdenticalToColdRun) {
  ExecOptions serial;
  serial.threads = 1;

  // One batch, two policies of the same mix: the first warms and forks, the
  // second forks from the cached warm snapshot.
  Executor batch_exec(serial);
  BatchStats stats;
  const std::vector<JobResult> batch = batch_exec.run_batch(
      {tiny_hetero("W1", "Baseline"), tiny_hetero("W1", "DynPrio")}, {},
      &stats);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(stats.jobs, 2u);
  EXPECT_EQ(stats.cold_runs, 1u);
  EXPECT_EQ(stats.warm_forks, 1u);
  EXPECT_EQ(batch[0].source, JobSource::kCold);
  EXPECT_EQ(batch[1].source, JobSource::kWarmFork);

  // A fresh executor running only the forked policy pays the full warm-up —
  // and must still produce the identical container.
  Executor fresh(serial);
  const std::vector<JobResult> cold =
      fresh.run_batch({tiny_hetero("W1", "DynPrio")});
  EXPECT_EQ(cold[0].source, JobSource::kCold);
  EXPECT_EQ(cold[0].bytes, batch[1].bytes);
  EXPECT_EQ(cold[0].digest, batch[1].digest);
}

TEST(SvcExecutor, StoreResubmissionIsAPureReplay) {
  TempDir dir;
  ExecOptions opts;
  opts.threads = 1;
  opts.store_dir = dir.path;

  Executor first(opts);
  const std::vector<JobResult> cold =
      first.run_batch({tiny_hetero("W1", "Baseline")});
  EXPECT_EQ(cold[0].source, JobSource::kCold);

  // New executor, same store (a daemon restart): zero simulation.
  Executor second(opts);
  BatchStats stats;
  const std::vector<JobResult> replay =
      second.run_batch({tiny_hetero("W1", "Baseline")}, {}, &stats);
  EXPECT_EQ(replay[0].source, JobSource::kStore);
  EXPECT_EQ(stats.store_hits, 1u);
  EXPECT_EQ(second.sim_runs(), 0u);
  EXPECT_EQ(replay[0].bytes, cold[0].bytes);
}

TEST(SvcExecutor, InBatchDuplicatesRunOnceAndProgressStaysOrdered) {
  ExecOptions serial;
  serial.threads = 1;
  Executor exec(serial);

  std::vector<std::pair<std::size_t, std::size_t>> seen;
  BatchStats stats;
  const std::vector<JobResult> out = exec.run_batch(
      {tiny_cpu_alone(481), tiny_cpu_alone(481)},
      [&seen](std::size_t done, std::size_t total, const JobResult&) {
        seen.emplace_back(done, total);
      },
      &stats);
  EXPECT_EQ(stats.dup_jobs, 1u);
  EXPECT_EQ(exec.sim_runs(), 1u);
  EXPECT_EQ(out[0].bytes, out[1].bytes);
  EXPECT_EQ(seen, (std::vector<std::pair<std::size_t, std::size_t>>{{1, 2},
                                                                    {2, 2}}));

  // Standalone CPU results carry the one-core IPC in the hetero envelope.
  ASSERT_EQ(out[0].result.cpu_ipc.size(), 1u);
  EXPECT_GT(out[0].result.cpu_ipc[0], 0.0);
  EXPECT_EQ(out[0].result.spec_ids, std::vector<int>{481});
}

// ---------------------------------------------------------------------------
// Client entry point.

TEST(SvcClient, FallsBackToInProcessWithoutADaemon) {
  ::unsetenv("GPUQOS_SERVE_SOCKET");
  ExecOptions opts;
  opts.threads = 1;
  const std::unique_ptr<Client> client = Client::create("", opts);
  ASSERT_NE(client, nullptr);
  EXPECT_FALSE(client->remote());

  const std::vector<JobResult> out =
      client->submit_batch({tiny_cpu_alone(403)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_GT(out[0].result.cpu_ipc[0], 0.0);
}

TEST(SvcClient, ResolveSocketPrefersExplicitPathOverEnvironment) {
  ::setenv("GPUQOS_SERVE_SOCKET", "/tmp/env.sock", 1);
  EXPECT_EQ(resolve_socket("/tmp/flag.sock"), "/tmp/flag.sock");
  EXPECT_EQ(resolve_socket(""), "/tmp/env.sock");
  ::unsetenv("GPUQOS_SERVE_SOCKET");
  EXPECT_EQ(resolve_socket(""), "");
}

TEST(SvcClient, ConnectToAbsentSocketReturnsNull) {
  EXPECT_EQ(Client::connect("/nonexistent/path/gpuqos.sock"), nullptr);
}

}  // namespace
}  // namespace gpuqos::svc
