// Observability layer: histograms, sampler, trace writer, journal, and the
// telemetry hub threaded through a small heterogeneous run.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/journal.hpp"
#include "obs/profiler.hpp"
#include "obs/sampler.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "sim/runner.hpp"
#include "workloads/mixes.hpp"

namespace gpuqos {
namespace {

// ---------------------------------------------------------------- histogram

TEST(LatencyHistogram, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 0.0);
}

TEST(LatencyHistogram, SingleSampleReturnsThatSampleForAllPercentiles) {
  LatencyHistogram h;
  h.record(37);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 37u);
  EXPECT_EQ(h.max(), 37u);
  for (double p : {0.0, 1.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(p), 37.0) << "p=" << p;
  }
}

TEST(LatencyHistogram, BucketBoundaries) {
  // Bucket 0 holds zero; bucket b holds [2^(b-1), 2^b).
  LatencyHistogram h;
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(4);
  EXPECT_EQ(h.bucket_count(0), 1u);  // 0
  EXPECT_EQ(h.bucket_count(1), 1u);  // 1
  EXPECT_EQ(h.bucket_count(2), 2u);  // 2, 3
  EXPECT_EQ(h.bucket_count(3), 1u);  // 4..7
  EXPECT_EQ(LatencyHistogram::bucket_lo(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_lo(3), 4u);
  EXPECT_EQ(LatencyHistogram::bucket_hi(3), 8u);
}

TEST(LatencyHistogram, OverflowBucketCollapsesHugeValues) {
  LatencyHistogram h;
  const std::uint64_t huge = 1ull << 62;
  h.record(huge);
  h.record(huge + 5);
  EXPECT_EQ(h.overflow_count(), 2u);
  EXPECT_EQ(h.max(), huge + 5);
  // Percentiles stay within the observed range even for the overflow bucket.
  EXPECT_GE(h.percentile(99), static_cast<double>(huge));
  EXPECT_LE(h.percentile(99), static_cast<double>(huge + 5));
}

TEST(LatencyHistogram, PercentilesOrderedAndClamped) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const double p50 = h.percentile(50);
  const double p90 = h.percentile(90);
  const double p99 = h.percentile(99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p99, 1000.0);
  // With a log-bucketed histogram p50 is only bucket-accurate: the true
  // median 500 lives in bucket [512,1024) together with ~half the mass.
  EXPECT_NEAR(p50, 500.0, 300.0);
  EXPECT_GT(p99, 900.0);
}

TEST(LatencyHistogram, ClearResets) {
  LatencyHistogram h;
  h.record(10);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(LatencyHistogram, ToJsonHasAllKeys) {
  LatencyHistogram h;
  h.record(8);
  const std::string j = h.to_json();
  for (const char* key :
       {"\"count\"", "\"mean\"", "\"min\"", "\"max\"", "\"p50\"", "\"p90\"",
        "\"p99\""}) {
    EXPECT_NE(j.find(key), std::string::npos) << key << " missing in " << j;
  }
}

// ------------------------------------------------------------------ sampler

TEST(IntervalSampler, DeltasAgainstPreviousSnapshot) {
  StatRegistry stats;
  IntervalSampler s;
  s.bind(&stats);
  s.rebase(0);

  stats.add("x", 10);
  s.sample(100);
  stats.add("x", 5);
  stats.add("y", 2);
  s.sample(200);

  ASSERT_EQ(s.samples().size(), 2u);
  EXPECT_EQ(s.samples()[0].cycle, 100u);
  EXPECT_EQ(s.samples()[0].dt, 100u);
  EXPECT_EQ(s.samples()[0].deltas.at("x"), 10u);
  EXPECT_EQ(s.samples()[1].deltas.at("x"), 5u);
  EXPECT_EQ(s.samples()[1].deltas.at("y"), 2u);
  // Unchanged counters are omitted from the delta map.
  EXPECT_EQ(s.samples()[1].deltas.count("z"), 0u);
}

TEST(IntervalSampler, RebaseExcludesWarmupActivity) {
  StatRegistry stats;
  IntervalSampler s;
  s.bind(&stats);

  stats.add("warm", 1000);  // warm-up noise
  s.rebase(5000);
  stats.add("warm", 3);
  s.sample(6000);

  ASSERT_EQ(s.samples().size(), 1u);
  EXPECT_EQ(s.samples()[0].dt, 1000u);
  EXPECT_EQ(s.samples()[0].deltas.at("warm"), 3u);  // not 1003
}

TEST(IntervalSampler, UnboundSamplerIsDisabledNoOp) {
  IntervalSampler s;  // never bound: telemetry without --sample-interval
  s.rebase(100);
  s.sample(200);
  EXPECT_TRUE(s.samples().empty());
}

TEST(IntervalSampler, GaugesEvaluatedEachSample) {
  StatRegistry stats;
  IntervalSampler s;
  s.bind(&stats);
  double g = 1.5;
  s.add_gauge("g", [&g] { return g; });
  s.rebase(0);
  s.sample(10);
  g = 2.5;
  s.sample(20);
  EXPECT_DOUBLE_EQ(s.samples()[0].gauges.at("g"), 1.5);
  EXPECT_DOUBLE_EQ(s.samples()[1].gauges.at("g"), 2.5);
}

TEST(IntervalSampler, JsonlOneObjectPerLine) {
  StatRegistry stats;
  IntervalSampler s;
  s.bind(&stats);
  s.rebase(0);
  stats.add("n", 1);
  s.sample(10);
  s.sample(20);
  std::ostringstream os;
  s.write_jsonl(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("{\"cycle\":10,\"dt\":10,"), std::string::npos);
  EXPECT_NE(out.find("\"n\":1"), std::string::npos);
  // Two lines, each a JSON object.
  std::size_t lines = 0;
  for (char c : out) lines += c == '\n';
  EXPECT_EQ(lines, 2u);
}

// -------------------------------------------------------------------- trace

TEST(TraceWriter, EmitsChromeTraceKeys) {
  TraceWriter t;
  t.name_process("sim");
  t.name_thread(TraceWriter::kTidFrames, "frames");
  t.complete("frame 0", TraceWriter::kTidFrames, 4000, 8000, "\"frame\":0");
  t.instant("mark", TraceWriter::kTidControl, 4000);
  t.counter("atu.wg", 4000, 2.0);
  std::ostringstream os;
  t.write(os);
  const std::string j = os.str();
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  for (const char* key : {"\"ph\"", "\"ts\"", "\"pid\"", "\"name\""}) {
    EXPECT_NE(j.find(key), std::string::npos) << key;
  }
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"M\""), std::string::npos);
  // 4000 base cycles at 4 GHz = 1 us.
  EXPECT_NE(j.find("\"ts\":1"), std::string::npos);
}

// ------------------------------------------------------------------ journal

TEST(QosJournal, PredictionErrorMatchesFig08Math) {
  QosJournal j;
  j.record_prediction(100, 0, 110.0, 100.0);  // +10%
  j.record_prediction(200, 1, 90.0, 100.0);   // -10%
  j.record_prediction(300, 2, 120.0, 100.0);  // +20%
  EXPECT_EQ(j.predictions(), 3u);
  EXPECT_NEAR(j.mean_prediction_error_pct(), 20.0 / 3.0, 1e-9);
  EXPECT_NEAR(j.mean_abs_prediction_error_pct(), 40.0 / 3.0, 1e-9);
}

TEST(QosJournal, ZeroActualSamplesSkipped) {
  QosJournal j;
  j.record_prediction(100, 0, 50.0, 0.0);  // no realized frame yet
  EXPECT_DOUBLE_EQ(j.mean_prediction_error_pct(), 0.0);
}

TEST(QosJournal, JsonlRecordsDecisions) {
  QosJournal j;
  j.record_wg_change(10, 0, 2, 100, 9.0e5, 1.0e6, 5000);
  j.record_prio_flip(20, true, 8.0e5, 1.0e6);
  j.record_relearn(30, 1);
  j.mark(40, "measure_start");
  EXPECT_EQ(j.wg_changes(), 1u);
  EXPECT_EQ(j.prio_flips(), 1u);
  std::ostringstream os;
  j.write_jsonl(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"type\":\"wg\""), std::string::npos);
  EXPECT_NE(out.find("\"prev_wg\":0"), std::string::npos);
  EXPECT_NE(out.find("\"wg\":2"), std::string::npos);
  EXPECT_NE(out.find("\"a\":5000"), std::string::npos);
  EXPECT_NE(out.find("\"type\":\"cpu_prio\""), std::string::npos);
  EXPECT_NE(out.find("\"type\":\"relearn\""), std::string::npos);
  EXPECT_NE(out.find("measure_start"), std::string::npos);
}

// ---------------------------------------------------- end-to-end telemetry

TEST(Telemetry, HotPathGuardedByOptions) {
  TelemetryOptions opts;
  opts.capture_histograms = false;
  Telemetry t(opts);
  t.record_latency(LatStage::RingHop, /*gpu=*/false, 10);
  EXPECT_EQ(t.histogram(LatStage::RingHop, false).count(), 0u);
}

TEST(Telemetry, HeteroRunPopulatesAllSinks) {
  // A short M8-style run (GPU ahead of target => throttle engages).
  SimConfig cfg = Presets::scaled();
  const HeteroMix& m = mix("M8");
  RunScale scale;
  scale.warm_instrs = 20'000;
  scale.measure_instrs = 100'000;
  scale.warm_frames = 2;
  scale.measure_frames = 2;
  scale.warm_min_cycles = 500'000;
  scale.max_cycles = 60'000'000;

  TelemetryOptions opts;
  opts.sample_interval = 100'000;
  Telemetry tel(opts);
  RunHooks hooks;
  hooks.telemetry = &tel;
  const HeteroResult r =
      run_hetero(cfg, m, Policy::ThrottleCpuPrio, scale, hooks);

  // Histograms: every stage saw traffic from both classes except MSHR/DRAM
  // stages which at minimum saw GPU traffic.
  EXPECT_GT(tel.histogram(LatStage::RingHop, false).count(), 0u);
  EXPECT_GT(tel.histogram(LatStage::RingHop, true).count(), 0u);
  EXPECT_GT(tel.histogram(LatStage::LlcLookup, true).count(), 0u);
  EXPECT_GT(tel.histogram(LatStage::DramQueue, true).count(), 0u);
  EXPECT_GT(tel.histogram(LatStage::DramService, true).count(), 0u);
  EXPECT_GT(tel.histogram(LatStage::LlcMissRoundtrip, true).count(), 0u);

  // Sampler streamed at least two intervals.
  EXPECT_GE(tel.sampler().samples().size(), 2u);

  // Trace has the metadata plus at least one frame span.
  EXPECT_GT(tel.trace().size(), 6u);

  // Journal predictions reproduce the runner's fig08-style estimator error.
  EXPECT_EQ(tel.journal().predictions(), r.est_samples);
  EXPECT_NEAR(tel.journal().mean_prediction_error_pct(), r.est_error_pct,
              1e-9);

  // Stats were captured before the CMP died.
  EXPECT_NE(tel.stats_json().find("\"counters\""), std::string::npos);
  EXPECT_NE(tel.stats_json().find("llc.access.gpu"), std::string::npos);
}

// ----------------------------------------------------------------- profiler

std::uint64_t total_entries(const Profiler& p) {
  std::uint64_t n = 0;
  for (int ph = 0; ph < kNumProfPhases; ++ph) {
    for (int m = 0; m < kNumProfModules; ++m) {
      n += p.slot(static_cast<ProfPhase>(ph), static_cast<ProfModule>(m))
               .entries;
    }
  }
  return n;
}

TEST(Profiler, NestedScopesAttributeSelfTimeOnce) {
  Profiler p;
  p.start();
  {
    ProfScope outer(&p, ProfModule::Llc);
    ProfScope inner(&p, ProfModule::Dram);
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 10'000; ++i) sink = sink + 1;
  }
  p.stop();
  const std::uint64_t llc =
      p.slot(ProfPhase::Warm, ProfModule::Llc).self_ticks;
  const std::uint64_t dram =
      p.slot(ProfPhase::Warm, ProfModule::Dram).self_ticks;
  // The busy loop ran inside the inner (Dram) scope; the outer (Llc) frame
  // keeps only its entry/exit slack after the child subtraction.
  EXPECT_GT(dram, 0u);
  EXPECT_LT(llc, dram);
  // Rows sum to the run window: attributed never exceeds total.
  EXPECT_LE(p.attributed_ticks(), p.total_ticks());
  EXPECT_EQ(p.attributed_ticks(), llc + dram);
}

TEST(Profiler, PhaseSplitsAttribution) {
  Profiler p;
  p.start();
  { ProfScope s(&p, ProfModule::Ring); }
  p.set_phase(ProfPhase::Measure);
  { ProfScope s(&p, ProfModule::Ring); }
  { ProfScope s(&p, ProfModule::Ring); }
  p.stop();
  EXPECT_EQ(p.slot(ProfPhase::Warm, ProfModule::Ring).entries, 1u);
  EXPECT_EQ(p.slot(ProfPhase::Measure, ProfModule::Ring).entries, 2u);
}

TEST(Profiler, SampledScopeExtrapolatesEntries) {
  Profiler p;
  p.start();
  std::uint32_t decim = 0;
  for (int i = 0; i < 64; ++i) {
    SampledProfScope<16> s(&p, ProfModule::CpuCore, decim);
  }
  p.stop();
  // 64 calls at stride 16: 4 timed entries extrapolated x16 back to 64.
  EXPECT_EQ(p.slot(ProfPhase::Warm, ProfModule::CpuCore).entries, 64u);
}

TEST(Profiler, NullProfilerScopesAreNoOps) {
  std::uint32_t decim = 0;
  ProfScope a(nullptr, ProfModule::Llc);
  SampledProfScope<16> b(nullptr, ProfModule::CpuCore, decim);
  // decim is untouched when no profiler is attached: the hot path stays
  // byte-for-byte identical with observability off.
  EXPECT_EQ(decim, 0u);
}

TEST(Profiler, MergeAddsSlotsAndWindows) {
  Profiler a, b;
  a.start();
  { ProfScope s(&a, ProfModule::Llc); }
  a.stop();
  b.start();
  { ProfScope s(&b, ProfModule::Llc); }
  { ProfScope s(&b, ProfModule::Dram); }
  b.flush(123);
  b.stop();

  Profiler merged;
  merged.merge(a);
  merged.merge(b);
  EXPECT_EQ(total_entries(merged), total_entries(a) + total_entries(b));
  EXPECT_EQ(merged.attributed_ticks(),
            a.attributed_ticks() + b.attributed_ticks());
  EXPECT_LE(merged.attributed_ticks(), merged.total_ticks());
  ASSERT_EQ(merged.flushes().size(), 1u);
  EXPECT_EQ(merged.flushes()[0].cycle, 123u);
}

TEST(Profiler, TableAndJsonIncludeEveryModule) {
  Profiler p;
  p.start();
  { ProfScope s(&p, ProfModule::Governor); }
  p.stop();
  const std::string table = p.table();
  const std::string json = p.to_json();
  for (int m = 0; m < kNumProfModules; ++m) {
    EXPECT_NE(table.find(to_string(static_cast<ProfModule>(m))),
              std::string::npos);
  }
  EXPECT_NE(json.find("\"engine_residual_ticks\""), std::string::npos);
  EXPECT_NE(json.find("\"governor\""), std::string::npos);
}

TEST(Profiler, HeteroRunAttributesHostTime) {
  SimConfig cfg = Presets::scaled();
  RunScale scale;
  scale.warm_instrs = 20'000;
  scale.measure_instrs = 100'000;
  scale.warm_frames = 2;
  scale.measure_frames = 2;
  scale.warm_min_cycles = 500'000;
  scale.max_cycles = 60'000'000;

  TelemetryOptions opts;
  opts.capture_profile = true;
  opts.prof_flush_interval = 500'000;
  Telemetry tel(opts);
  RunHooks hooks;
  hooks.telemetry = &tel;
  (void)run_hetero(cfg, mix("M8"), Policy::ThrottleCpuPrio, scale, hooks);

  const Profiler* p = tel.profiler();
  ASSERT_NE(p, nullptr);
  EXPECT_FALSE(p->running());  // finalize() closed the run window
  EXPECT_LE(p->attributed_ticks(), p->total_ticks());
  EXPECT_GT(p->attributed_ticks(), 0u);
  // Every simulated module saw at least one scope in each phase.
  for (ProfModule m : {ProfModule::CpuCore, ProfModule::GpuPipeline,
                       ProfModule::GpuMem, ProfModule::Llc, ProfModule::Ring,
                       ProfModule::Dram}) {
    EXPECT_GT(p->slot(ProfPhase::Warm, m).entries, 0u) << to_string(m);
    EXPECT_GT(p->slot(ProfPhase::Measure, m).entries, 0u) << to_string(m);
  }
  EXPECT_GT(p->slot(ProfPhase::Measure, ProfModule::Governor).entries, 0u);
  // The flush ticker fired.
  EXPECT_GE(p->flushes().size(), 2u);
  EXPECT_GT(p->wall_seconds(), 0.0);
}

// --------------------------------------------------------- activity counters

TEST(ActivityCounterBank, CatalogIsStableForShape) {
  const ActivityCounterBank bank(2, 2);
  const ActivityCounterBank again(2, 2);
  ASSERT_EQ(bank.catalog().size(), again.catalog().size());
  for (std::size_t i = 0; i < bank.catalog().size(); ++i) {
    EXPECT_EQ(bank.catalog()[i].stat, again.catalog()[i].stat);
  }
  // Shape scaling: per-channel and per-core entries expand.
  const ActivityCounterBank wider(4, 4);
  EXPECT_GT(wider.catalog().size(), bank.catalog().size());
}

TEST(ActivityCounterBank, AbsentKeysRenderAsZero) {
  const ActivityCounterBank bank(1, 1);
  const std::string json = bank.values_json({});
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"dram.ch0.act\":0"), std::string::npos);
  EXPECT_NE(json.find("\"cpu0.committed_instrs\":0"), std::string::npos);
}

TEST(ActivityCounterBank, HeteroRunBumpsCoreCatalogEntries) {
  SimConfig cfg = Presets::scaled();
  RunScale scale;
  scale.warm_instrs = 20'000;
  scale.measure_instrs = 100'000;
  scale.warm_frames = 2;
  scale.measure_frames = 2;
  scale.warm_min_cycles = 500'000;
  scale.max_cycles = 60'000'000;

  Telemetry tel;
  RunHooks hooks;
  hooks.telemetry = &tel;
  (void)run_hetero(cfg, mix("M8"), Policy::ThrottleCpuPrio, scale, hooks);

  const auto& counters = tel.counters();
  const ActivityCounterBank bank = ActivityCounterBank::for_config(cfg);
  // The core activity events must all have fired in a real hetero run.
  for (const char* stat :
       {"dram.ch0.act", "dram.ch0.rd", "dram.ch1.act", "llc.fills",
        "llc.mshr_allocations", "ring.hops", "gpu.fragments",
        "gpu.tiles_retired", "qos.atu_token_grants",
        "cpu0.committed_instrs"}) {
    const auto it = counters.find(stat);
    ASSERT_NE(it, counters.end()) << stat;
    EXPECT_GT(it->second, 0u) << stat;
  }
  // And the committed-instruction counter agrees with the architectural one.
  // (The counter is registered by the core itself, so this is an identity
  // check on the instrumentation, not a tautology.)
  std::uint64_t catalog_stats = 0;
  for (const auto& c : bank.catalog()) {
    if (counters.count(c.stat) > 0) ++catalog_stats;
  }
  EXPECT_GT(catalog_stats, bank.catalog().size() / 2);
}

TEST(ActivityCounterBank, MonotoneAcrossCheckpointResume) {
  // Counter values at the warm-up snapshot must never exceed the values the
  // resumed run finishes with: StatRegistry counters are checkpointed, so
  // activity accumulates monotonically across save/restore.
  SimConfig cfg = Presets::scaled();
  RunScale scale;
  scale.warm_instrs = 20'000;
  scale.measure_instrs = 100'000;
  scale.warm_frames = 2;
  scale.measure_frames = 2;
  scale.warm_min_cycles = 500'000;
  scale.max_cycles = 60'000'000;

  std::vector<std::uint8_t> warm;
  Telemetry warm_tel;
  {
    RunHooks hooks;
    hooks.telemetry = &warm_tel;
    hooks.warm_capture = &warm;
    (void)run_hetero(cfg, mix("M8"), Policy::ThrottleCpuPrio, scale, hooks);
  }
  Telemetry full_tel;
  {
    RunHooks hooks;
    hooks.telemetry = &full_tel;
    hooks.resume_data = &warm;
    (void)run_hetero(cfg, mix("M8"), Policy::ThrottleCpuPrio, scale, hooks);
  }

  const ActivityCounterBank bank = ActivityCounterBank::for_config(cfg);
  const auto& at_warm = warm_tel.counters();
  const auto& at_end = full_tel.counters();
  for (const ActivityCounter& c : bank.catalog()) {
    const auto wi = at_warm.find(c.stat);
    const auto ei = at_end.find(c.stat);
    const std::uint64_t w = wi == at_warm.end() ? 0 : wi->second;
    const std::uint64_t e = ei == at_end.end() ? 0 : ei->second;
    EXPECT_GE(e, w) << c.stat;
  }
  // Committed instructions strictly grew during the measured window.
  EXPECT_GT(at_end.at("cpu0.committed_instrs"),
            at_warm.at("cpu0.committed_instrs"));
}

}  // namespace
}  // namespace gpuqos
