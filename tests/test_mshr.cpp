#include "cache/mshr.hpp"

#include <gtest/gtest.h>

namespace gpuqos {
namespace {

TEST(Mshr, AllocateNewVsCoalesce) {
  MshrTable m(4);
  EXPECT_TRUE(m.allocate(0x100, [](Cycle) {}));
  EXPECT_FALSE(m.allocate(0x100, [](Cycle) {}));  // coalesced
  EXPECT_EQ(m.size(), 1u);
}

TEST(Mshr, CompleteReturnsAllWaiters) {
  MshrTable m(4);
  int fired = 0;
  (void)m.allocate(0x40, [&](Cycle) { ++fired; });
  (void)m.allocate(0x40, [&](Cycle) { ++fired; });
  (void)m.allocate(0x40, [&](Cycle) { ++fired; });
  auto waiters = m.complete(0x40);
  EXPECT_EQ(waiters.size(), 3u);
  for (auto& w : waiters) w(0);
  EXPECT_EQ(fired, 3);
  EXPECT_FALSE(m.pending(0x40));
}

TEST(Mshr, CompleteUnknownAddressIsEmpty) {
  MshrTable m(2);
  EXPECT_TRUE(m.complete(0xdead).empty());
}

TEST(Mshr, FullForRespectsCapacityButAllowsCoalescing) {
  MshrTable m(2);
  (void)m.allocate(0x0, [](Cycle) {});
  (void)m.allocate(0x40, [](Cycle) {});
  EXPECT_TRUE(m.full_for(0x80));    // new block: full
  EXPECT_FALSE(m.full_for(0x40));   // existing block: coalesce allowed
}

TEST(Mshr, AllocateNoWaiter) {
  MshrTable m(2);
  EXPECT_TRUE(m.allocate_no_waiter(0x0));
  EXPECT_FALSE(m.allocate_no_waiter(0x0));
  EXPECT_TRUE(m.pending(0x0));
  EXPECT_TRUE(m.complete(0x0).empty());
}

TEST(Mshr, CapacityFreesAfterComplete) {
  MshrTable m(1);
  (void)m.allocate(0x0, [](Cycle) {});
  EXPECT_TRUE(m.full_for(0x40));
  (void)m.complete(0x0);
  EXPECT_FALSE(m.full_for(0x40));
}

}  // namespace
}  // namespace gpuqos
