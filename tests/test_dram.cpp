#include "dram/controller.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dram/bank.hpp"
#include "dram/frfcfs.hpp"

namespace gpuqos {
namespace {

ScaledTiming timing() {
  return ScaledTiming::from(DramTiming{}, kDramClockDivider);
}

TEST(Bank, RowHitFasterThanConflict) {
  const ScaledTiming t = timing();
  Bank hit_bank, conflict_bank;
  hit_bank.begin_activate(5, 0, t);
  conflict_bank.begin_activate(9, 0, t);
  // Warm CAS so tRAS accounting is comparable; measure the second access.
  const Cycle now = 400;
  // Row hit: CAS can go as soon as the bank is ready.
  EXPECT_TRUE(hit_bank.is_row_hit(5));
  const Cycle hit_done = hit_bank.cas(false, now, t);
  // Conflict: needs precharge + activate first.
  conflict_bank.begin_activate(5, now, t);
  EXPECT_GT(conflict_bank.ready_at(), now + t.tRP);
  const Cycle conflict_done =
      conflict_bank.cas(false, conflict_bank.ready_at(), t);
  EXPECT_LT(hit_done, conflict_done);
}

TEST(Bank, ActivateRespectsTras) {
  const ScaledTiming t = timing();
  Bank b;
  b.begin_activate(1, 0, t);
  const Cycle first_ready = b.ready_at();
  // Immediately conflicting activate must wait out tRAS from the first
  // activate before precharging.
  b.begin_activate(2, first_ready, t);
  EXPECT_GE(b.ready_at(), t.tRAS + t.tRP + t.tRCD);
}

TEST(Bank, ReadLatencyIsClPlusBurst) {
  const ScaledTiming t = timing();
  Bank b;
  b.begin_activate(0, 0, t);
  const Cycle cas_at = b.ready_at();
  const Cycle done = b.cas(false, cas_at, t);
  EXPECT_EQ(done - cas_at, t.tCL + t.tBurst);
}

TEST(Bank, WriteRecoveryDelaysNextCas) {
  const ScaledTiming t = timing();
  Bank b;
  b.begin_activate(0, 0, t);
  const Cycle cas_at = b.ready_at();
  (void)b.cas(true, cas_at, t);
  EXPECT_GE(b.ready_at(), cas_at + t.tBurst + t.tWTR);
}

TEST(FrFcfs, PrefersIssuableRowHit) {
  // Bank 1 has row 7 open and is ready; bank 0 is closed.
  const std::vector<Bank> bank_state{Bank{}, Bank::for_test(true, 7, 0)};
  const BankView banks(bank_state);
  FrFcfsScheduler sched;
  DramQueue q;
  DramQueueEntry a;
  a.id = 1;
  a.bank = 0;
  a.row = 3;
  a.arrival = 0;
  DramQueueEntry b;
  b.id = 2;
  b.bank = 1;
  b.row = 7;
  b.arrival = 5;
  q.push_back(a);
  q.push_back(b);
  EXPECT_EQ(sched.pick(q, banks, 10), 2);  // row hit wins over older conflict
}

TEST(FrFcfs, StarvationCapPromotesOldest) {
  const std::vector<Bank> bank_state{Bank{}, Bank::for_test(true, 7, 0)};
  const BankView banks(bank_state);
  FrFcfsScheduler sched(/*starvation_cap=*/100);
  DramQueue q;
  DramQueueEntry a;
  a.id = 1;
  a.bank = 0;
  a.row = 3;
  a.arrival = 0;
  DramQueueEntry b;
  b.id = 2;
  b.bank = 1;
  b.row = 7;
  b.arrival = 5;
  q.push_back(a);
  q.push_back(b);
  EXPECT_EQ(sched.pick(q, banks, 200), 1);  // aged past the cap
}

TEST(FrFcfs, SkipsBusyBanks) {
  // Bank 0 has row 1 open but is mid-activate until cycle 1000.
  const std::vector<Bank> bank_state{Bank::for_test(true, 1, 1000), Bank{}};
  const BankView banks(bank_state);
  FrFcfsScheduler sched;
  DramQueue q;
  DramQueueEntry a;
  a.id = 1;
  a.bank = 0;
  a.row = 1;  // row hit but bank busy
  DramQueueEntry b;
  b.id = 2;
  b.bank = 1;
  b.row = 9;  // conflict on a free bank
  q.push_back(a);
  q.push_back(b);
  EXPECT_EQ(sched.pick(q, banks, 10), 2);
}

TEST(Controller, AddressMappingIsConsistent) {
  Engine engine;
  StatRegistry stats;
  DramConfig cfg;
  DramController dram(engine, cfg, stats, [](unsigned) {
    return std::make_unique<FrFcfsScheduler>();
  });
  // Consecutive blocks interleave across channels.
  EXPECT_NE(dram.channel_of(0), dram.channel_of(64));
  EXPECT_EQ(dram.channel_of(0), dram.channel_of(128));
  // Blocks within one row share bank and row.
  const Addr a = 0x100000;
  EXPECT_EQ(dram.bank_of(a), dram.bank_of(a + 128));
  EXPECT_EQ(dram.row_of(a), dram.row_of(a + 128));
  // Rows differ eventually.
  bool row_changed = false;
  for (Addr off = 0; off < 64 * MiB; off += 1 * MiB) {
    if (dram.row_of(a + off) != dram.row_of(a)) row_changed = true;
  }
  EXPECT_TRUE(row_changed);
}

TEST(Controller, ReadCompletesWithPlausibleLatency) {
  Engine engine;
  StatRegistry stats;
  DramConfig cfg;
  DramController dram(engine, cfg, stats, [](unsigned) {
    return std::make_unique<FrFcfsScheduler>();
  });
  Cycle done = kNoCycle;
  MemRequest req;
  req.addr = 0x4000;
  req.is_write = false;
  req.source = SourceId::cpu(0);
  req.on_complete = [&](Cycle c) { done = c; };
  dram.request(std::move(req));
  engine.run_for(2000);
  ASSERT_NE(done, kNoCycle);
  // Cold access: activate (tRCD) + CAS (tCL) + burst, all x4 base cycles,
  // plus up to one DRAM tick of alignment.
  const ScaledTiming t = timing();
  EXPECT_GE(done, t.tRCD + t.tCL + t.tBurst);
  EXPECT_LE(done, t.tRP + t.tRCD + t.tCL + t.tBurst + 16);
  EXPECT_TRUE(dram.idle());
}

TEST(Controller, RowHitStreamBeatsRandomAccesses) {
  auto run = [](bool sequential) {
    Engine engine;
    StatRegistry stats;
    DramConfig cfg;
    cfg.channels = 1;
    DramController dram(engine, cfg, stats, [](unsigned) {
      return std::make_unique<FrFcfsScheduler>();
    });
    Rng rng(3);
    int done = 0;
    for (int i = 0; i < 64; ++i) {
      MemRequest req;
      req.addr = sequential ? static_cast<Addr>(i) * 64
                            : rng.next_below(1 << 20) * 64;
      req.is_write = false;
      req.source = SourceId::cpu(0);
      req.on_complete = [&](Cycle) { ++done; };
      dram.request(std::move(req));
    }
    const Cycle t = engine.run_until([&] { return done == 64; }, 200000);
    return t;
  };
  EXPECT_LT(run(true), run(false));
}

TEST(Controller, WriteDrainServesWrites) {
  Engine engine;
  StatRegistry stats;
  DramConfig cfg;
  cfg.channels = 1;
  DramController dram(engine, cfg, stats, [](unsigned) {
    return std::make_unique<FrFcfsScheduler>();
  });
  for (int i = 0; i < 60; ++i) {
    MemRequest req;
    req.addr = static_cast<Addr>(i) * 64;
    req.is_write = true;
    req.source = SourceId::gpu();
    dram.request(std::move(req));
  }
  engine.run_until([&] { return dram.idle(); }, 500000);
  EXPECT_TRUE(dram.idle());
  EXPECT_EQ(stats.counter("dram.writes"), 60u);
}

}  // namespace
}  // namespace gpuqos
