// Checkpoint/restore subsystem tests (docs/CHECKPOINT.md): the byte format
// (round-trip, forward-compatible skip, corruption rejection), the meta
// compatibility check, whole-CMP save -> load -> digest equality, warm-state
// forking, the resumable sweep manifest, and the deprecated runner overloads.
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/context.hpp"
#include "ckpt/snapshot.hpp"
#include "ckpt/state_io.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"
#include "workloads/gpu_apps.hpp"
#include "workloads/spec.hpp"

namespace gpuqos {
namespace {

using ckpt::CkptError;
using ckpt::RestoreMode;
using ckpt::SnapshotMeta;
using ckpt::StateReader;
using ckpt::StateWriter;

RunScale tiny_scale() {
  RunScale s;
  s.warm_instrs = 20'000;
  s.measure_instrs = 60'000;
  s.warm_frames = 1;
  s.measure_frames = 1;
  s.warm_min_cycles = 300'000;
  s.max_cycles = 60'000'000;
  return s;
}

// ---------------------------------------------------------------------------
// Byte format.

TEST(StateIo, PrimitivesRoundTrip) {
  StateWriter w;
  w.begin_section("prims");
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(3.141592653589793);
  w.boolean(true);
  w.boolean(false);
  w.str("hello snapshot");
  const std::uint8_t raw[4] = {1, 2, 3, 4};
  w.bytes(raw, sizeof raw);
  w.end_section();

  StateReader r(w.finish());
  ASSERT_TRUE(r.next_section());
  EXPECT_EQ(r.tag(), "prims");
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 3.141592653589793);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), "hello snapshot");
  std::uint8_t back[4] = {};
  r.bytes(back, sizeof back);
  EXPECT_EQ(back[0], 1);
  EXPECT_EQ(back[3], 4);
  EXPECT_NO_THROW(r.expect_section_end());
  EXPECT_FALSE(r.next_section());
}

TEST(StateIo, UnknownSectionsAreSkipped) {
  StateWriter w;
  w.begin_section("known");
  w.u64(7);
  w.end_section();
  w.begin_section("from_the_future");
  w.str("payload an old reader has never heard of");
  w.u64(99);
  w.end_section();
  w.begin_section("also_known");
  w.u64(8);
  w.end_section();

  StateReader r(w.finish());
  ASSERT_TRUE(r.next_section());
  EXPECT_EQ(r.tag(), "known");
  EXPECT_EQ(r.u64(), 7u);
  // The reader never touches the unknown payload; next_section() steps over
  // whatever is left of the current section.
  ASSERT_TRUE(r.next_section());
  EXPECT_EQ(r.tag(), "from_the_future");
  ASSERT_TRUE(r.next_section());
  EXPECT_EQ(r.tag(), "also_known");
  EXPECT_EQ(r.u64(), 8u);
  EXPECT_FALSE(r.next_section());
}

TEST(StateIo, TruncatedSnapshotIsRejected) {
  StateWriter w;
  w.begin_section("mod");
  for (int i = 0; i < 64; ++i) w.u64(static_cast<std::uint64_t>(i));
  w.end_section();
  std::vector<std::uint8_t> data = w.finish();

  // Chop mid-payload: framing claims more bytes than remain.
  std::vector<std::uint8_t> cut(data.begin(), data.begin() + data.size() / 2);
  StateReader r(std::move(cut));
  EXPECT_THROW((void)r.next_section(), CkptError);
}

TEST(StateIo, HeaderTooShortIsRejected) {
  EXPECT_THROW(StateReader(std::vector<std::uint8_t>{1, 2, 3}), CkptError);
}

TEST(StateIo, BadMagicIsRejected) {
  StateWriter w;
  w.begin_section("mod");
  w.u64(1);
  w.end_section();
  std::vector<std::uint8_t> data = w.finish();
  data[0] ^= 0xFF;
  EXPECT_THROW(StateReader{std::move(data)}, CkptError);
}

TEST(StateIo, BitFlipFailsCrc) {
  StateWriter w;
  w.begin_section("mod");
  for (int i = 0; i < 32; ++i) w.u64(0x1111'2222'3333'4444ull);
  w.end_section();
  std::vector<std::uint8_t> data = w.finish();
  data[data.size() - 10] ^= 0x01;  // flip one payload bit

  StateReader r(std::move(data));
  try {
    (void)r.next_section();
    FAIL() << "corrupt section was accepted";
  } catch (const CkptError& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos)
        << "error should name the CRC failure: " << e.what();
  }
}

TEST(StateIo, OverreadWithinSectionIsRejected) {
  StateWriter w;
  w.begin_section("mod");
  w.u32(5);
  w.end_section();
  StateReader r(w.finish());
  ASSERT_TRUE(r.next_section());
  EXPECT_EQ(r.u32(), 5u);
  EXPECT_THROW((void)r.u64(), CkptError);  // past the section payload
}

TEST(StateIo, UnconsumedBytesFailExpectSectionEnd) {
  StateWriter w;
  w.begin_section("mod");
  w.u64(1);
  w.u64(2);
  w.end_section();
  StateReader r(w.finish());
  ASSERT_TRUE(r.next_section());
  EXPECT_EQ(r.u64(), 1u);
  EXPECT_THROW(r.expect_section_end(), CkptError);
}

TEST(StateIo, FileRoundTripAndMissingFile) {
  StateWriter w;
  w.begin_section("mod");
  w.str("on disk");
  w.end_section();
  const std::string path =
      (std::filesystem::temp_directory_path() / "gpuqos_ckpt_io_test.snap")
          .string();
  ckpt::write_snapshot_file(path, w.finish());
  StateReader r(ckpt::read_snapshot_file(path));
  ASSERT_TRUE(r.next_section());
  EXPECT_EQ(r.str(), "on disk");
  std::filesystem::remove(path);
  EXPECT_THROW((void)ckpt::read_snapshot_file(path), CkptError);
}

// ---------------------------------------------------------------------------
// Meta validation.

SnapshotMeta test_meta() {
  SnapshotMeta m;
  m.mix_id = "M8";
  m.policy = "ThrotCPUprio";
  m.seed = 1234;
  m.cpu_cores = 4;
  m.fps_scale = 2.0;
  m.cfg_digest = 0xABCDEF;
  m.warm_instrs = 100;
  m.measure_instrs = 200;
  m.warm_frames = 3;
  m.measure_frames = 4;
  m.warm_min_cycles = 500;
  m.max_cycles = 600;
  return m;
}

TEST(SnapshotMetaTest, RoundTripsThroughItsSection) {
  StateWriter w;
  ckpt::save_meta(w, test_meta());
  StateReader r(w.finish());
  ASSERT_TRUE(r.next_section());
  const SnapshotMeta back = ckpt::load_meta(r);
  EXPECT_EQ(back.mix_id, "M8");
  EXPECT_EQ(back.policy, "ThrotCPUprio");
  EXPECT_EQ(back.seed, 1234u);
  EXPECT_EQ(back.cpu_cores, 4u);
  EXPECT_EQ(back.fps_scale, 2.0);
  EXPECT_EQ(back.cfg_digest, 0xABCDEFu);
  EXPECT_EQ(back.max_cycles, 600u);
}

TEST(SnapshotMetaTest, ResumeRequiresExactMatchForkExemptsPolicy) {
  const SnapshotMeta snap = test_meta();
  SnapshotMeta live = test_meta();
  EXPECT_NO_THROW(ckpt::validate_meta(snap, live, RestoreMode::kResume));

  live.policy = "Baseline";
  EXPECT_THROW(ckpt::validate_meta(snap, live, RestoreMode::kResume),
               CkptError);
  EXPECT_NO_THROW(ckpt::validate_meta(snap, live, RestoreMode::kFork));

  live = test_meta();
  live.seed = 9999;
  EXPECT_THROW(ckpt::validate_meta(snap, live, RestoreMode::kResume),
               CkptError);
  EXPECT_THROW(ckpt::validate_meta(snap, live, RestoreMode::kFork), CkptError);

  live = test_meta();
  live.cfg_digest ^= 1;
  EXPECT_THROW(ckpt::validate_meta(snap, live, RestoreMode::kFork), CkptError);
}

TEST(SnapshotMetaTest, ConfigDigestSeesConfigChanges) {
  SimConfig a = Presets::scaled();
  SimConfig b = a;
  EXPECT_EQ(config_digest(a), config_digest(b));
  b.llc.size_bytes *= 2;
  EXPECT_NE(config_digest(a), config_digest(b));
  b = a;
  b.qos.target_fps += 1.0;
  EXPECT_NE(config_digest(a), config_digest(b));
}

// ---------------------------------------------------------------------------
// Whole-CMP drain -> save -> load -> digest equality.

std::unique_ptr<HeteroCmp> build_m8(const SimConfig& cfg, Policy policy) {
  const HeteroMix& m = mix("M8");
  std::vector<SpecProfile> profiles;
  for (int id : m.cpu_specs) profiles.push_back(spec_profile(id));
  const GpuAppDesc& app = gpu_app(m.gpu_app);
  auto cmp = std::make_unique<HeteroCmp>(cfg, policy, std::move(profiles),
                                         build_frames(app, cfg.seed),
                                         app.fps_scale);
  cmp->gpu().set_repeat(true);
  return cmp;
}

TEST(CkptCmp, SaveLoadContinuationMatchesOriginalDigests) {
  const SimConfig cfg = Presets::scaled();
  CheckOptions copts;
  copts.audit_interval = 0;
  copts.digest_interval = 50'000;

  // Original: run, drain at a barrier, snapshot, keep running.
  auto a = build_m8(cfg, Policy::ThrottleCpuPrio);
  CheckContext ca(copts);
  a->attach_checks(ca);
  a->engine().run_for(400'000);
  a->drain();
  ASSERT_TRUE(a->quiesced());
  StateWriter w;
  a->save_state(w);
  const std::vector<std::uint8_t> snap = w.finish();
  const Cycle save_cycle = a->engine().now();
  a->unfreeze_injectors();
  a->engine().run_for(400'000);

  // Restored copy: fresh CMP with identical instrumentation, then the same
  // continuation.
  auto b = build_m8(cfg, Policy::ThrottleCpuPrio);
  CheckContext cb(copts);
  b->attach_checks(cb);
  StateReader r(snap);
  b->load_state(r, RestoreMode::kResume);
  EXPECT_EQ(b->engine().now(), save_cycle);
  ASSERT_TRUE(b->quiesced());
  b->engine().run_for(400'000);

  // Digest records after the save cycle must agree record-for-record.
  std::vector<DigestRecord> da(ca.digest_records());
  std::erase_if(da, [save_cycle](const DigestRecord& rec) {
    return rec.cycle < save_cycle;
  });
  ASSERT_FALSE(da.empty());
  const auto div = first_divergence(da, cb.digest_records());
  EXPECT_FALSE(div.has_value())
      << "diverged at cycle " << div->cycle << ", module " << div->module;
}

TEST(CkptCmp, SaveStateRequiresQuiescence) {
  const SimConfig cfg = Presets::scaled();
  auto cmp = build_m8(cfg, Policy::Baseline);
  cmp->engine().run_for(100'000);  // in-flight work almost surely present
  if (!cmp->quiesced()) {
    StateWriter w;
    EXPECT_THROW(cmp->save_state(w), CkptError);
  }
  cmp->drain();
  StateWriter w2;
  EXPECT_NO_THROW(cmp->save_state(w2));
}

TEST(CkptCmp, MissingSectionIsRejectedOnResume) {
  const SimConfig cfg = Presets::scaled();
  auto a = build_m8(cfg, Policy::Baseline);
  a->engine().run_for(200'000);
  a->drain();
  StateWriter w;
  a->save_state(w);

  // Re-frame the snapshot without the "gpu" section.
  StateReader in(w.finish());
  StateWriter out;
  while (in.next_section()) {
    if (in.tag() == "gpu") continue;
    StateWriter* dst = &out;
    dst->begin_section(in.tag());
    std::vector<std::uint8_t> payload(in.remaining());
    in.bytes(payload.data(), payload.size());
    dst->bytes(payload.data(), payload.size());
    dst->end_section();
  }

  auto b = build_m8(cfg, Policy::Baseline);
  StateReader r(out.finish());
  try {
    b->load_state(r, RestoreMode::kResume);
    FAIL() << "snapshot missing a section was accepted";
  } catch (const CkptError& e) {
    EXPECT_NE(std::string(e.what()).find("gpu"), std::string::npos)
        << "error should name the missing section: " << e.what();
  }
}

// ---------------------------------------------------------------------------
// Runner integration: warm forking and in-memory resume.

TEST(CkptRunner, WarmForkProducesResultsForEveryPolicy) {
  SimConfig cfg = Presets::scaled();
  const HeteroMix& m = mix("M8");
  const std::vector<Policy> policies = {Policy::Baseline,
                                        Policy::ThrottleCpuPrio};
  const std::vector<HeteroResult> results =
      run_hetero_forked(cfg, m, policies, tiny_scale());
  ASSERT_EQ(results.size(), policies.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].policy, policies[i]);
    EXPECT_GT(results[i].fps, 0.0);
    EXPECT_EQ(results[i].cpu_ipc.size(), m.cpu_specs.size());
    for (double ipc : results[i].cpu_ipc) EXPECT_GT(ipc, 0.0);
  }
}

TEST(CkptRunner, ForkedRunsFromOneWarmupAreDeterministic) {
  SimConfig cfg = Presets::scaled();
  const HeteroMix& m = mix("M8");
  const std::vector<uint8_t> warm =
      warm_hetero_snapshot(cfg, m, Policy::Baseline, tiny_scale());
  ASSERT_FALSE(warm.empty());

  RunHooks hooks;
  hooks.resume_data = &warm;
  hooks.resume_mode = RestoreMode::kFork;
  const HeteroResult r1 =
      run_hetero(cfg, m, Policy::ThrottleCpuPrio, tiny_scale(), hooks);
  const HeteroResult r2 =
      run_hetero(cfg, m, Policy::ThrottleCpuPrio, tiny_scale(), hooks);
  EXPECT_EQ(r1.fps, r2.fps);
  EXPECT_EQ(r1.cpu_ipc, r2.cpu_ipc);
  EXPECT_EQ(r1.stat_delta, r2.stat_delta);
}

TEST(CkptRunner, ResumeRejectsConfigMismatch) {
  SimConfig cfg = Presets::scaled();
  const HeteroMix& m = mix("M8");
  const std::vector<uint8_t> warm =
      warm_hetero_snapshot(cfg, m, Policy::Baseline, tiny_scale());

  SimConfig other = cfg;
  other.seed += 1;
  RunHooks hooks;
  hooks.resume_data = &warm;
  EXPECT_THROW((void)run_hetero(other, m, Policy::Baseline, tiny_scale(),
                                hooks),
               CkptError);
}

TEST(CkptRunner, ResumeRejectsPolicyMismatchButForkAllowsIt) {
  SimConfig cfg = Presets::scaled();
  const HeteroMix& m = mix("M8");
  const std::vector<uint8_t> warm =
      warm_hetero_snapshot(cfg, m, Policy::Baseline, tiny_scale());

  RunHooks hooks;
  hooks.resume_data = &warm;
  EXPECT_THROW(
      (void)run_hetero(cfg, m, Policy::DynPrio, tiny_scale(), hooks),
      CkptError);
  hooks.resume_mode = RestoreMode::kFork;
  EXPECT_GT(run_hetero(cfg, m, Policy::DynPrio, tiny_scale(), hooks).fps, 0.0);
}

// ---------------------------------------------------------------------------
// Resumable sweep manifest.

struct ManifestFile {
  ManifestFile()
      : path((std::filesystem::temp_directory_path() /
              ("gpuqos_manifest_" + std::to_string(::getpid()) + ".snap"))
                 .string()) {
    std::filesystem::remove(path);
  }
  ~ManifestFile() { std::filesystem::remove(path); }
  std::string path;
};

TEST(SweepResume, ManifestRecordsAndReloads) {
  ManifestFile f;
  {
    SweepManifest m(f.path);
    EXPECT_EQ(m.size(), 0u);
    EXPECT_FALSE(m.has("job_a"));
    m.record("job_a", "result_a");
    m.record("job_b", "result_b");
  }
  SweepManifest m2(f.path);
  EXPECT_EQ(m2.size(), 2u);
  ASSERT_TRUE(m2.has("job_a"));
  EXPECT_EQ(*m2.result("job_a"), "result_a");
  EXPECT_EQ(*m2.result("job_b"), "result_b");
  EXPECT_EQ(m2.result("job_c"), nullptr);
}

TEST(SweepResume, CompletedJobsAreSkippedOnResume) {
  ManifestFile f;
  const std::vector<std::string> keys = {"k0", "k1", "k2", "k3"};
  auto encode = [](const int& v) { return std::to_string(v); };
  auto decode = [](const std::string& s) { return std::stoi(s); };

  std::atomic<int> runs{0};
  auto make_jobs = [&runs] {
    std::vector<std::function<int()>> jobs;
    for (int i = 0; i < 4; ++i) {
      jobs.push_back([&runs, i] {
        ++runs;
        return i * 10;
      });
    }
    return jobs;
  };

  {
    SweepManifest manifest(f.path);
    const std::vector<int> out = run_many_resumable<int>(
        make_jobs(), keys, manifest, encode, decode, 2);
    EXPECT_EQ(out, (std::vector<int>{0, 10, 20, 30}));
    EXPECT_EQ(runs.load(), 4);
    EXPECT_EQ(manifest.size(), 4u);
  }

  // Second sweep over the same manifest: nothing re-runs, results decode.
  SweepManifest manifest(f.path);
  const std::vector<int> out = run_many_resumable<int>(
      make_jobs(), keys, manifest, encode, decode, 2);
  EXPECT_EQ(out, (std::vector<int>{0, 10, 20, 30}));
  EXPECT_EQ(runs.load(), 4) << "completed jobs must not re-run";
}

TEST(SweepResume, PartialManifestRunsOnlyMissingJobs) {
  ManifestFile f;
  {
    SweepManifest seed(f.path);
    seed.record("k1", "11");  // pretend job 1 finished in a prior sweep
  }
  SweepManifest manifest(f.path);
  std::atomic<int> runs{0};
  std::vector<std::function<int()>> jobs;
  for (int i = 0; i < 3; ++i) {
    jobs.push_back([&runs, i] {
      ++runs;
      return i;
    });
  }
  const std::vector<int> out = run_many_resumable<int>(
      std::move(jobs), {"k0", "k1", "k2"}, manifest,
      [](const int& v) { return std::to_string(v); },
      [](const std::string& s) { return std::stoi(s); }, 1);
  EXPECT_EQ(out, (std::vector<int>{0, 11, 2}));
  EXPECT_EQ(runs.load(), 2) << "only k0 and k2 should have run";
}

TEST(SweepResume, TornTailIsDroppedAndCompacted) {
  ManifestFile f;
  {
    SweepManifest m(f.path);
    m.record("k0", "r0");
    m.record("k1", "r1");
    m.record("k2", "r2");
  }
  // Simulate a crash mid-append: the last section loses its final bytes.
  const auto size = std::filesystem::file_size(f.path);
  std::filesystem::resize_file(f.path, size - 3);

  SweepManifest recovered(f.path);
  EXPECT_EQ(recovered.size(), 2u) << "everything before the tear survives";
  EXPECT_TRUE(recovered.has("k0"));
  EXPECT_TRUE(recovered.has("k1"));
  EXPECT_FALSE(recovered.has("k2"));
  EXPECT_EQ(recovered.recovered(), 1u);

  // The recovering load compacted the file, so the next load is clean.
  SweepManifest clean(f.path);
  EXPECT_EQ(clean.size(), 2u);
  EXPECT_EQ(clean.recovered(), 0u);
}

TEST(SweepResume, DuplicateKeyKeepsLatestAndCompacts) {
  ManifestFile f;
  {
    SweepManifest m(f.path);
    m.record("k", "stale");
    m.record("other", "x");
    m.record("k", "fresh");  // re-recorded: append-only files can repeat keys
  }
  SweepManifest m2(f.path);
  EXPECT_EQ(m2.size(), 2u);
  EXPECT_EQ(*m2.result("k"), "fresh");
  EXPECT_EQ(m2.recovered(), 1u);

  SweepManifest m3(f.path);
  EXPECT_EQ(*m3.result("k"), "fresh");
  EXPECT_EQ(m3.recovered(), 0u) << "compaction removed the duplicate";
}

TEST(SweepResume, NonManifestFileIsRejectedNotRecovered) {
  ManifestFile f;
  std::ofstream(f.path, std::ios::binary)
      << "this was never a gpuqos container";
  EXPECT_THROW(SweepManifest m(f.path), CkptError);
}

// ---------------------------------------------------------------------------
// RunHooks is the one run-configuration surface (the deprecated
// telemetry/check pointer-tail overloads are gone).

TEST(RunHooksApi, CheckAttachesThroughHooks) {
  SimConfig cfg = Presets::scaled();
  const HeteroMix& m = mix("M1");
  CheckOptions copts;
  copts.audit_interval = 0;
  copts.digest_interval = 100'000;
  CheckContext check(copts);
  RunHooks hooks;
  hooks.check = &check;
  const HeteroResult r = run_hetero(cfg, m, Policy::Baseline, tiny_scale(),
                                    hooks);
  EXPECT_GT(r.fps, 0.0);
  EXPECT_FALSE(check.digest_records().empty());
}

}  // namespace
}  // namespace gpuqos
