#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <functional>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "check/context.hpp"
#include "sim/runner.hpp"

namespace gpuqos {
namespace {

std::vector<std::function<int()>> square_jobs(int n) {
  std::vector<std::function<int()>> jobs;
  for (int i = 0; i < n; ++i) {
    jobs.push_back([i] { return i * i; });
  }
  return jobs;
}

TEST(Sweep, ResultsStayInJobOrder) {
  // Early jobs sleep longer, so with several workers later jobs finish
  // first; result placement must still follow job order.
  std::vector<std::function<int()>> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back([i] {
      std::this_thread::sleep_for(std::chrono::milliseconds(8 - i));
      return i;
    });
  }
  const std::vector<int> out = run_many(std::move(jobs), 4);
  ASSERT_EQ(out.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], i);
}

TEST(Sweep, PooledMatchesSerialAtAnyThreadCount) {
  const std::vector<int> serial = run_many(square_jobs(17), 1);
  for (unsigned threads : {2u, 3u, 8u, 32u}) {
    EXPECT_EQ(run_many(square_jobs(17), threads), serial)
        << "threads=" << threads;
  }
}

TEST(Sweep, FirstExceptionPropagatesToCaller) {
  std::vector<std::function<int()>> jobs = square_jobs(6);
  jobs[3] = []() -> int { throw std::runtime_error("job 3 exploded"); };
  EXPECT_THROW((void)run_many(std::move(jobs), 4), std::runtime_error);
}

TEST(Sweep, ExceptionOnSerialPathPropagatesToo) {
  std::vector<std::function<int()>> jobs = square_jobs(3);
  jobs[1] = []() -> int { throw std::runtime_error("job 1 exploded"); };
  EXPECT_THROW((void)run_many(std::move(jobs), 1), std::runtime_error);
}

TEST(Sweep, ThreadCountHonorsEnvAndClampsToJobs) {
  ::setenv("GPUQOS_THREADS", "3", 1);
  EXPECT_EQ(sweep_thread_count(10), 3u);
  EXPECT_EQ(sweep_thread_count(2), 2u);   // never more workers than jobs
  EXPECT_EQ(sweep_thread_count(0), 1u);   // never fewer than one
  ::unsetenv("GPUQOS_THREADS");
  EXPECT_GE(sweep_thread_count(64), 1u);  // hardware fallback
}

// ---------------------------------------------------------------------------
// The property the pool exists for: a simulation run inside a worker thread
// is indistinguishable — results and determinism digests — from the same
// run on the caller's thread.

RunScale tiny_scale() {
  RunScale s;
  s.warm_instrs = 20'000;
  s.measure_instrs = 100'000;
  s.warm_frames = 1;
  s.measure_frames = 1;
  s.warm_min_cycles = 200'000;
  s.max_cycles = 20'000'000;
  return s;
}

std::string digest_stream(const CheckContext& c) {
  std::ostringstream os;
  c.write_digests(os);
  return os.str();
}

TEST(Sweep, HeteroRunInsidePoolMatchesSerialRun) {
  const SimConfig cfg = Presets::scaled();
  const HeteroMix& m = mix("M1");
  const RunScale scale = tiny_scale();

  CheckOptions copts;
  copts.audit_interval = 0;
  copts.digest_interval = 100'000;

  CheckContext serial_check(copts);
  RunHooks serial_hooks;
  serial_hooks.check = &serial_check;
  const HeteroResult serial =
      run_hetero(cfg, m, Policy::ThrottleCpuPrio, scale, serial_hooks);

  // Three identical copies through the pool; every one must reproduce the
  // serial result bit-for-bit.
  std::vector<std::unique_ptr<CheckContext>> checks;
  std::vector<std::function<HeteroResult()>> jobs;
  for (int i = 0; i < 3; ++i) {
    checks.push_back(std::make_unique<CheckContext>(copts));
    CheckContext* c = checks.back().get();
    jobs.push_back([&cfg, &m, &scale, c] {
      RunHooks hooks;
      hooks.check = c;
      return run_hetero(cfg, m, Policy::ThrottleCpuPrio, scale, hooks);
    });
  }
  const std::vector<HeteroResult> pooled = run_many(std::move(jobs), 3);

  ASSERT_FALSE(serial_check.digest_records().empty());
  const std::string want = digest_stream(serial_check);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(pooled[i].fps, serial.fps) << "job " << i;
    EXPECT_EQ(pooled[i].cpu_ipc, serial.cpu_ipc) << "job " << i;
    EXPECT_EQ(pooled[i].est_samples, serial.est_samples) << "job " << i;
    EXPECT_EQ(pooled[i].stat_delta, serial.stat_delta) << "job " << i;
    EXPECT_EQ(digest_stream(*checks[i]), want) << "job " << i;
  }
}

}  // namespace
}  // namespace gpuqos
