#include "cpu/core.hpp"

#include <gtest/gtest.h>

#include "cpu/stream.hpp"
#include "workloads/spec.hpp"

namespace gpuqos {
namespace {

SpecProfile simple_profile() {
  SpecProfile p;
  p.name = "test";
  p.mem_op_fraction = 0.25;
  p.store_fraction = 0.2;
  p.dependent_fraction = 0.3;
  p.llc_apki = 10.0;
  p.stream_fraction = 0.2;
  p.llc_ws_bytes = 256 * KiB;
  p.hot_bytes = 8 * KiB;
  p.stream_bytes = 4 * MiB;
  return p;
}

TEST(CpuStream, Deterministic) {
  CpuStream a(simple_profile(), 0x1000000, Rng(5));
  CpuStream b(simple_profile(), 0x1000000, Rng(5));
  for (int i = 0; i < 500; ++i) {
    const MicroOp x = a.next(), y = b.next();
    EXPECT_EQ(x.addr, y.addr);
    EXPECT_EQ(x.gap, y.gap);
    EXPECT_EQ(x.is_store, y.is_store);
  }
}

TEST(CpuStream, MemOpFractionApproximatelyHolds) {
  CpuStream s(simple_profile(), 0, Rng(6));
  std::uint64_t instrs = 0;
  const int ops = 20000;
  for (int i = 0; i < ops; ++i) instrs += s.next().gap + 1;
  const double frac = static_cast<double>(ops) / static_cast<double>(instrs);
  EXPECT_NEAR(frac, 0.25, 0.02);
}

TEST(CpuStream, StoreFractionApproximatelyHolds) {
  CpuStream s(simple_profile(), 0, Rng(7));
  int stores = 0;
  const int ops = 20000;
  for (int i = 0; i < ops; ++i) stores += s.next().is_store ? 1 : 0;
  EXPECT_NEAR(stores / static_cast<double>(ops), 0.2, 0.02);
}

TEST(CpuStream, LlcApkiTargetRealized) {
  // Count accesses landing outside the hot set per kilo-instruction; this
  // should track the profile's llc_apki.
  SpecProfile p = simple_profile();
  CpuStream s(p, 0, Rng(8));
  std::uint64_t instrs = 0;
  std::uint64_t llc_blocks = 0;
  Addr last_stream_block = ~0ull;
  for (int i = 0; i < 200000; ++i) {
    const MicroOp op = s.next();
    instrs += op.gap + 1;
    const Addr block = op.addr / 64 * 64;
    const bool in_stream = op.addr < p.stream_bytes;
    const bool in_llc_ws =
        op.addr >= p.stream_bytes && op.addr < p.stream_bytes + p.llc_ws_bytes;
    if (in_stream) {
      if (block != last_stream_block) ++llc_blocks;  // one fetch per block
      last_stream_block = block;
    } else if (in_llc_ws) {
      ++llc_blocks;
    }
  }
  const double apki =
      static_cast<double>(llc_blocks) * 1000.0 / static_cast<double>(instrs);
  EXPECT_NEAR(apki, p.llc_apki, p.llc_apki * 0.2);
}

TEST(CpuStream, StoresAreNeverDependent) {
  CpuStream s(simple_profile(), 0, Rng(9));
  for (int i = 0; i < 5000; ++i) {
    const MicroOp op = s.next();
    if (op.is_store) {
      EXPECT_FALSE(op.dependent);
    }
  }
}

/// Core with a perfect (always-hit after fill) memory behind it.
struct CoreHarness {
  Engine engine;
  StatRegistry stats;
  CpuCoreConfig cfg;
  CpuCore core;
  std::vector<MemRequest> reqs;
  Cycle mem_latency = 50;

  explicit CoreHarness(const SpecProfile& p, CpuCoreConfig c = CpuCoreConfig{})
      : cfg(c),
        core(engine, cfg, 0, std::make_unique<CpuStream>(p, 0x1000000, Rng(4)),
             stats) {
    core.set_mem_port([this](MemRequest&& r) {
      if (r.on_complete) {
        auto cb = std::move(r.on_complete);
        engine.schedule(mem_latency, [cb, this] { cb(engine.now()); });
      }
      reqs.push_back(MemRequest{r.addr, r.is_write, r.source, r.gclass,
                                r.issued_at, r.miss_at, nullptr});
    });
    engine.add_ticker(1, 0, [this](Cycle now) { core.tick(now); });
  }
};

TEST(CpuCore, CommitsAtWidthWithCacheHits) {
  SpecProfile p = simple_profile();
  p.llc_apki = 0.0;       // everything in the hot set
  p.stream_fraction = 0;  // no streaming
  p.hot_bytes = 4 * KiB;  // fits L1
  CoreHarness h(p);
  h.engine.run_for(20000);
  const double ipc = static_cast<double>(h.core.committed()) / 20000.0;
  EXPECT_GT(ipc, 1.5);  // near-width commit once warm
}

TEST(CpuCore, MemoryLatencySlowsDependentLoads) {
  SpecProfile p = simple_profile();
  p.dependent_fraction = 1.0;
  p.llc_apki = 40.0;
  p.llc_ws_bytes = 2 * MiB;  // misses private caches

  CoreHarness fast(p);
  fast.mem_latency = 20;
  fast.engine.run_for(50000);

  CoreHarness slow(p);
  slow.mem_latency = 400;
  slow.engine.run_for(50000);

  EXPECT_GT(fast.core.committed(), slow.core.committed() * 2);
}

TEST(CpuCore, GeneratesLlcTraffic) {
  CoreHarness h(simple_profile());
  h.engine.run_for(100000);
  EXPECT_GT(h.reqs.size(), 0u);
  EXPECT_GT(h.stats.counter("cpu0.llc_reads"), 0u);
}

TEST(CpuCore, PrefetcherCoversStreams) {
  SpecProfile p = simple_profile();
  p.stream_fraction = 0.9;
  p.llc_apki = 30.0;
  CoreHarness h(p);
  h.engine.run_for(200000);
  EXPECT_GT(h.stats.counter("cpu0.prefetches"), 0u);
}

TEST(CpuCore, BackInvalidateDropsPrivateCopies) {
  SpecProfile p = simple_profile();
  p.llc_apki = 0.0;
  p.stream_fraction = 0.0;
  p.hot_bytes = 4 * KiB;
  CoreHarness h(p);
  h.engine.run_for(5000);
  // The hot set is cached privately; find one resident block.
  const Addr base = 0x1000000 + p.stream_bytes + p.llc_ws_bytes;
  bool found = false;
  for (Addr a = base; a < base + p.hot_bytes; a += 64) {
    if (h.core.l1d().probe(a)) {
      (void)h.core.back_invalidate(a);
      EXPECT_FALSE(h.core.l1d().probe(a));
      EXPECT_FALSE(h.core.l2().probe(a));
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CpuCore, MshrLimitBoundsOutstanding) {
  SpecProfile p = simple_profile();
  p.llc_apki = 200.0;  // everything misses
  p.llc_ws_bytes = 32 * MiB;
  p.dependent_fraction = 0.0;
  CpuCoreConfig cfg;
  cfg.l2_mshrs = 4;
  CoreHarness h(p, cfg);
  h.mem_latency = 5000;  // keep misses outstanding
  h.engine.run_for(20000);
  EXPECT_LE(h.core.outstanding_misses(), 5u);  // 4 live + compaction slack
}

TEST(SpecProfiles, AllMixIdsHaveProfiles) {
  for (int id : {401, 403, 410, 429, 433, 434, 437, 450, 462, 470, 471, 481,
                 482}) {
    EXPECT_NO_THROW({
      const SpecProfile& p = spec_profile(id);
      EXPECT_EQ(p.spec_id, id);
      EXPECT_GT(p.mem_op_fraction, 0.0);
      EXPECT_GT(p.llc_apki, 0.0);
    });
  }
  EXPECT_THROW((void)spec_profile(999), std::out_of_range);
  EXPECT_EQ(spec_ids().size(), 13u);
}

}  // namespace
}  // namespace gpuqos
