#include "sim/metrics.hpp"

#include <gtest/gtest.h>

namespace gpuqos {
namespace {

TEST(Metrics, WeightedSpeedupSumsRatios) {
  EXPECT_DOUBLE_EQ(weighted_speedup({1.0, 2.0}, {2.0, 2.0}), 1.5);
  EXPECT_DOUBLE_EQ(weighted_speedup({1.0, 1.0, 1.0, 1.0},
                                    {1.0, 1.0, 1.0, 1.0}),
                   4.0);
}

TEST(Metrics, WeightedSpeedupSkipsZeroBaselines) {
  EXPECT_DOUBLE_EQ(weighted_speedup({1.0, 5.0}, {1.0, 0.0}), 1.0);
}

TEST(Metrics, CombinedPerformanceIsGeometricMean) {
  EXPECT_DOUBLE_EQ(combined_performance(1.0, 1.0), 1.0);
  EXPECT_NEAR(combined_performance(1.21, 1.0), 1.1, 1e-12);
  EXPECT_NEAR(combined_performance(0.5, 2.0), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(combined_performance(0.0, 1.0), 0.0);
}

}  // namespace
}  // namespace gpuqos
