#!/usr/bin/env bash
# Determinism regression (docs/ANALYSIS.md): two seeded runs of the same mix
# must produce byte-identical digest streams, and the stream must match the
# committed fixture in tests/fixtures/. Regenerate a fixture after an
# intentional behaviour change with:
#   GPUQOS_FAST=1 gpuqos_run <mix> ThrotCPUprio --digest-out \
#       tests/fixtures/<mix>.digest --digest-interval 500000
set -euo pipefail

GPUQOS_RUN=$1
DIGEST_DIFF=$2
MIX=$3
FIXTURE=$4
WORK=$5

mkdir -p "$WORK"
export GPUQOS_FAST=1

"$GPUQOS_RUN" "$MIX" ThrotCPUprio --check \
    --digest-out "$WORK/$MIX.a.digest" --digest-interval 500000 > /dev/null
"$GPUQOS_RUN" "$MIX" ThrotCPUprio --check \
    --digest-out "$WORK/$MIX.b.digest" --digest-interval 500000 > /dev/null

echo "run-vs-run:"
"$DIGEST_DIFF" "$WORK/$MIX.a.digest" "$WORK/$MIX.b.digest"
echo "run-vs-fixture:"
"$DIGEST_DIFF" "$WORK/$MIX.a.digest" "$FIXTURE"
