// Property-style parameterized sweeps across the substrates: invariants that
// must hold for whole regions of the configuration space, not just the
// defaults.
#include <gtest/gtest.h>

#include "common/engine.hpp"
#include "cpu/stream.hpp"
#include "dram/controller.hpp"
#include "dram/frfcfs.hpp"
#include "qos/atu.hpp"
#include "qos/frpu.hpp"
#include "workloads/spec.hpp"

namespace gpuqos {
namespace {

// --- ATU: Figure-6 controller invariants over a (CP, CT, A) grid ----------

struct AtuPoint {
  double cp, ct;
  std::uint64_t a;
};

class AtuGridTest : public ::testing::TestWithParam<AtuPoint> {};

TEST_P(AtuGridTest, ControllerInvariants) {
  const auto [cp, ct, a] = GetParam();
  QosConfig cfg;
  AccessThrottler atu(cfg);
  for (int i = 0; i < 200; ++i) atu.update(cp, ct, a);

  if (cp > ct) {
    // GPU slower than target: never throttled.
    EXPECT_EQ(atu.wg(), 0u);
  } else if (a > 0) {
    // WG never overshoots the Figure-6 bound by more than one step.
    const double bound = (ct - cp) / static_cast<double>(a);
    EXPECT_LE(static_cast<double>(atu.wg()), bound + cfg.wg_step);
    // And after enough invocations it reaches the bound region.
    EXPECT_GE(static_cast<double>(atu.wg()) + cfg.wg_step,
              std::min(bound, 200.0 * cfg.wg_step));
  }
  // NG is always the configured constant (paper: NG = 1).
  EXPECT_EQ(atu.ng(), cfg.ng_init);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AtuGridTest,
    ::testing::Values(AtuPoint{100e3, 400e3, 10'000},
                      AtuPoint{390e3, 400e3, 10'000},
                      AtuPoint{500e3, 400e3, 10'000},
                      AtuPoint{100e3, 400e3, 100},
                      AtuPoint{100e3, 400e3, 1'000'000},
                      AtuPoint{1, 400e3, 1}, AtuPoint{400e3, 400e3, 50},
                      AtuPoint{0, 1e6, 0}));

// --- ATU token stream: issued rate respects the WG window ------------------

TEST(AtuProperty, LongRunIssueRateMatchesWindow) {
  QosConfig cfg;
  AccessThrottler atu(cfg);
  for (int i = 0; i < 50; ++i) atu.update(100'000, 400'000, 10'000);
  const Cycle wg = atu.wg();
  ASSERT_GT(wg, 0u);

  std::uint64_t issued = 0;
  for (Cycle t = 0; t < 10'000; ++t) {
    if (atu.allow(t)) {
      atu.on_issued(t);
      ++issued;
    }
  }
  // NG=1 per WG window: at most one access per wg cycles (plus the first).
  EXPECT_LE(issued, 10'000 / wg + 2);
  EXPECT_GE(issued, 10'000 / (wg + 1) - 2);
}

// --- DRAM: timing-parameter sweeps ----------------------------------------

class DramTimingTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(DramTimingTest, SlowerTimingNeverSpeedsUpReads) {
  auto run = [](unsigned tcl) {
    Engine engine;
    StatRegistry stats;
    DramConfig cfg;
    cfg.channels = 1;
    cfg.timing.tCL = tcl;
    cfg.timing.tRCD = tcl;
    cfg.timing.tRP = tcl;
    DramController dram(engine, cfg, stats, [](unsigned) {
      return std::make_unique<FrFcfsScheduler>();
    });
    Rng rng(1);
    int done = 0;
    for (int i = 0; i < 128; ++i) {
      MemRequest req;
      req.addr = rng.next_below(1 << 22) * 64;
      req.source = SourceId::cpu(0);
      req.on_complete = [&](Cycle) { ++done; };
      dram.request(std::move(req));
    }
    return engine.run_until([&] { return done == 128; }, 10'000'000);
  };
  const unsigned tcl = GetParam();
  EXPECT_LE(run(tcl), run(tcl + 6));
}

INSTANTIATE_TEST_SUITE_P(Tcl, DramTimingTest, ::testing::Values(8u, 14u, 20u));

class DramBankTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(DramBankTest, MoreBanksNeverHurtRandomTraffic) {
  auto run = [](unsigned banks) {
    Engine engine;
    StatRegistry stats;
    DramConfig cfg;
    cfg.channels = 1;
    cfg.banks_per_channel = banks;
    DramController dram(engine, cfg, stats, [](unsigned) {
      return std::make_unique<FrFcfsScheduler>();
    });
    Rng rng(2);
    int done = 0;
    for (int i = 0; i < 256; ++i) {
      MemRequest req;
      req.addr = rng.next_below(1 << 22) * 64;
      req.source = SourceId::cpu(0);
      req.on_complete = [&](Cycle) { ++done; };
      dram.request(std::move(req));
    }
    return engine.run_until([&] { return done == 256; }, 20'000'000);
  };
  const unsigned banks = GetParam();
  // 1.02 slack: tick-phase alignment can cost a few cycles either way.
  EXPECT_LE(static_cast<double>(run(banks * 2)),
            static_cast<double>(run(banks)) * 1.02);
}

INSTANTIATE_TEST_SUITE_P(Banks, DramBankTest, ::testing::Values(2u, 4u, 8u));

// --- FRPU: prediction exactness over frame shapes ---------------------------

struct FrameShape {
  unsigned tiles_x, tiles_y, tile_px, rtps;
};

class FrpuShapeTest : public ::testing::TestWithParam<FrameShape> {};

TEST_P(FrpuShapeTest, SteadyFramesPredictExactly) {
  const auto [tx, ty, tpx, rtps] = GetParam();
  QosConfig cfg;
  FrameRateEstimator e(cfg);
  SceneFrame f;
  f.tiles_x = tx;
  f.tiles_y = ty;
  f.tile_px = tpx;

  const std::uint64_t updates_per_rtp =
      static_cast<std::uint64_t>(tx) * ty * tpx * tpx;
  Cycle now = 0;
  auto render_frame = [&] {
    e.on_frame_start(f, now);
    for (unsigned r = 0; r < rtps; ++r) {
      for (std::uint64_t u = 0; u < updates_per_rtp; ++u) {
        now += 2;
        e.on_llc_access(now);
        e.on_rt_update(static_cast<unsigned>(u % (tx * ty)), now);
      }
    }
    e.on_frame_complete(now);
  };
  render_frame();  // learning
  ASSERT_TRUE(e.predicting());
  EXPECT_EQ(e.table().rtp_count(), rtps);
  render_frame();  // predicted
  ASSERT_FALSE(e.samples().empty());
  const auto& s = e.samples().back();
  EXPECT_NEAR(s.predicted_cycles, s.actual_cycles, 0.02 * s.actual_cycles);
}

INSTANTIATE_TEST_SUITE_P(Shapes, FrpuShapeTest,
                         ::testing::Values(FrameShape{2, 2, 4, 1},
                                           FrameShape{4, 3, 8, 2},
                                           FrameShape{8, 6, 4, 3},
                                           FrameShape{10, 8, 2, 5},
                                           FrameShape{3, 1, 16, 70}));

// The 70-RTP shape above exceeds the 64-entry table: overflow accumulates in
// the last entry and prediction still works (paper Section III-A1).
TEST(FrpuProperty, TableOverflowKeepsPredicting) {
  QosConfig cfg;
  cfg.rtp_table_entries = 8;
  FrameRateEstimator e(cfg);
  SceneFrame f;
  f.tiles_x = 2;
  f.tiles_y = 1;
  f.tile_px = 2;
  Cycle now = 0;
  e.on_frame_start(f, now);
  for (unsigned r = 0; r < 20; ++r) {
    for (unsigned u = 0; u < 8; ++u) {
      now += 5;
      e.on_rt_update(u % 2, now);
    }
  }
  e.on_frame_complete(now);
  EXPECT_TRUE(e.predicting());
  EXPECT_EQ(e.table().rtp_count(), 20u);
  EXPECT_EQ(e.table().size(), 8u);
}

// --- CPU streams: APKI scaling across all SPEC profiles --------------------

class SpecStreamTest : public ::testing::TestWithParam<int> {};

TEST_P(SpecStreamTest, LlcTrafficTracksApkiTarget) {
  const SpecProfile& p = spec_profile(GetParam());
  CpuStream s(p, 0, Rng(99));
  std::uint64_t instrs = 0;
  std::uint64_t llc_blocks = 0;
  Addr last_stream_block = ~0ull;
  for (int i = 0; i < 150000; ++i) {
    const MicroOp op = s.next();
    instrs += op.gap + 1;
    const Addr block = op.addr / 64 * 64;
    if (op.addr < p.stream_bytes) {
      if (block != last_stream_block) ++llc_blocks;
      last_stream_block = block;
    } else if (op.addr < p.stream_bytes + p.llc_ws_bytes) {
      ++llc_blocks;
    }
  }
  const double apki =
      static_cast<double>(llc_blocks) * 1000.0 / static_cast<double>(instrs);
  EXPECT_NEAR(apki, p.llc_apki, p.llc_apki * 0.25 + 0.5) << p.name;
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, SpecStreamTest,
                         ::testing::ValuesIn(spec_ids()));

}  // namespace
}  // namespace gpuqos
