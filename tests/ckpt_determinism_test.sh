#!/usr/bin/env bash
# Checkpoint-resume determinism (docs/CHECKPOINT.md): a run resumed from a
# mid-run snapshot must replay the rest of the simulation bit-for-bit — its
# digest stream must match the uninterrupted run's stream from the snapshot
# cycle onward. Also checks that truncated snapshots are rejected with a
# clear error and a nonzero exit.
set -euo pipefail

GPUQOS_RUN=$1
DIGEST_DIFF=$2
MIX=$3
WORK=$4

mkdir -p "$WORK"
export GPUQOS_FAST=1

# Dense digests so even a short post-snapshot suffix yields records to
# compare; barriers every 2M cycles so at least one lands mid-run.
DIGEST_ARGS=(--digest-interval 100000)
SNAP="$WORK/$MIX.snap"

# Straight run: snapshot overwritten at every barrier, each write announced
# on stderr ("# ckpt: wrote <path> at cycle <C>").
"$GPUQOS_RUN" "$MIX" ThrotCPUprio \
    --ckpt-interval 2000000 --ckpt-out "$SNAP" \
    --digest-out "$WORK/$MIX.straight.digest" "${DIGEST_ARGS[@]}" \
    > /dev/null 2> "$WORK/$MIX.straight.err"

# The file holds the LAST barrier's snapshot; recover its cycle from the
# final announcement.
CYCLE=$(grep -o 'at cycle [0-9]*' "$WORK/$MIX.straight.err" \
        | tail -1 | awk '{print $3}')
if [ -z "${CYCLE:-}" ]; then
  echo "FAIL: no checkpoint announcement on stderr" >&2
  cat "$WORK/$MIX.straight.err" >&2
  exit 1
fi
echo "last snapshot written at cycle $CYCLE"

# Resume with the same instrumentation; must replay the suffix identically.
"$GPUQOS_RUN" "$MIX" ThrotCPUprio --resume "$SNAP" \
    --digest-out "$WORK/$MIX.resumed.digest" "${DIGEST_ARGS[@]}" > /dev/null

RECORDS=$(grep -c . "$WORK/$MIX.resumed.digest" || true)
if [ "$RECORDS" -lt 10 ]; then
  echo "FAIL: resumed digest stream is trivial ($RECORDS records)" >&2
  exit 1
fi

echo "straight-vs-resumed (from cycle $CYCLE, $RECORDS resumed records):"
"$DIGEST_DIFF" --from "$CYCLE" \
    "$WORK/$MIX.straight.digest" "$WORK/$MIX.resumed.digest"

# Negative: a truncated snapshot must fail gracefully, not crash or run.
head -c 150 "$SNAP" > "$WORK/$MIX.trunc.snap"
if "$GPUQOS_RUN" "$MIX" ThrotCPUprio --resume "$WORK/$MIX.trunc.snap" \
    "${DIGEST_ARGS[@]}" --digest-out "$WORK/$MIX.trunc.digest" \
    > /dev/null 2> "$WORK/$MIX.trunc.err"; then
  echo "FAIL: truncated snapshot was accepted" >&2
  exit 1
fi
if ! grep -q "checkpoint error:" "$WORK/$MIX.trunc.err"; then
  echo "FAIL: no clear error message for the truncated snapshot" >&2
  cat "$WORK/$MIX.trunc.err" >&2
  exit 1
fi
echo "truncated snapshot rejected: $(cat "$WORK/$MIX.trunc.err")"
