#include <gtest/gtest.h>

#include "sched/bypass.hpp"
#include "sched/cpu_prio.hpp"
#include "sched/dynprio.hpp"
#include "sched/helm.hpp"
#include "sched/sms.hpp"

namespace gpuqos {
namespace {

// All banks closed and immediately ready — the neutral state every policy
// test wants. Converts to the (now concrete) BankView schedulers consume.
class OpenBanks {
 public:
  operator BankView() const { return BankView(banks_); }  // NOLINT

 private:
  std::vector<Bank> banks_ = std::vector<Bank>(8);
};

DramQueueEntry entry(std::uint64_t id, SourceId src, unsigned bank = 0,
                     std::uint64_t row = 0, Cycle arrival = 0) {
  DramQueueEntry e;
  e.id = id;
  e.req.source = src;
  e.bank = bank;
  e.row = row;
  e.arrival = arrival;
  return e;
}

TEST(CpuPrio, BehavesLikeFrFcfsWithoutBoost) {
  QosSignals sig;
  sig.cpu_prio_boost = false;
  CpuPriorityScheduler sched(&sig);
  OpenBanks banks;
  DramQueue q;
  q.push_back(entry(1, SourceId::gpu()));
  q.push_back(entry(2, SourceId::cpu(0)));
  EXPECT_EQ(sched.pick(q, banks, 10), 1);  // oldest first
}

TEST(CpuPrio, PrefersCpuWhenBoosted) {
  QosSignals sig;
  sig.cpu_prio_boost = true;
  CpuPriorityScheduler sched(&sig);
  OpenBanks banks;
  DramQueue q;
  q.push_back(entry(1, SourceId::gpu()));
  q.push_back(entry(2, SourceId::cpu(0)));
  EXPECT_EQ(sched.pick(q, banks, 10), 2);
}

TEST(CpuPrio, FallsBackToGpuWhenNoCpuRequests) {
  QosSignals sig;
  sig.cpu_prio_boost = true;
  CpuPriorityScheduler sched(&sig);
  OpenBanks banks;
  DramQueue q;
  q.push_back(entry(1, SourceId::gpu()));
  EXPECT_EQ(sched.pick(q, banks, 10), 1);
}

TEST(DynPrio, EqualPriorityWithoutEstimate) {
  QosSignals sig;
  sig.estimating = false;
  DynPrioScheduler sched(&sig);
  OpenBanks banks;
  DramQueue q;
  q.push_back(entry(1, SourceId::gpu()));
  q.push_back(entry(2, SourceId::cpu(0)));
  EXPECT_EQ(sched.pick(q, banks, 10), 1);
}

TEST(DynPrio, GpuFirstWhenUrgent) {
  QosSignals sig;
  sig.estimating = true;
  sig.gpu_urgent = true;
  DynPrioScheduler sched(&sig);
  OpenBanks banks;
  DramQueue q;
  q.push_back(entry(1, SourceId::cpu(0)));
  q.push_back(entry(2, SourceId::gpu()));
  EXPECT_EQ(sched.pick(q, banks, 10), 2);
}

TEST(DynPrio, CpuFirstWhenGpuComfortablyAhead) {
  QosSignals sig;
  sig.estimating = true;
  sig.gpu_urgent = false;
  sig.gpu_meets_target = true;
  DynPrioScheduler sched(&sig);
  OpenBanks banks;
  DramQueue q;
  q.push_back(entry(1, SourceId::gpu()));
  q.push_back(entry(2, SourceId::cpu(0)));
  EXPECT_EQ(sched.pick(q, banks, 10), 2);
}

TEST(DynPrio, EqualPriorityWhenGpuLags) {
  QosSignals sig;
  sig.estimating = true;
  sig.gpu_urgent = false;
  sig.gpu_meets_target = false;
  DynPrioScheduler sched(&sig);
  OpenBanks banks;
  DramQueue q;
  q.push_back(entry(1, SourceId::gpu()));
  q.push_back(entry(2, SourceId::cpu(0)));
  EXPECT_EQ(sched.pick(q, banks, 10), 1);  // plain FR-FCFS: oldest
}

TEST(Sms, FormsPerSourceBatchesAndDrainsInOrder) {
  SmsScheduler::Params params;
  params.shortest_first_prob = 1.0;  // deterministic shortest-first
  params.batch_timeout = 10;
  SmsScheduler sched(params, Rng(1));
  OpenBanks banks;
  DramQueue q;
  // GPU batch of 3 same-row requests; CPU batch of 1.
  for (std::uint64_t i = 0; i < 3; ++i) {
    auto e = entry(i, SourceId::gpu(), 0, 7, 0);
    sched.on_enqueue(e);
    q.push_back(e);
  }
  auto c = entry(10, SourceId::cpu(0), 1, 3, 0);
  sched.on_enqueue(c);
  q.push_back(c);

  // Batches close by timeout; shortest (CPU, size 1) goes first.
  const std::int64_t first = sched.pick(q, banks, 100);
  EXPECT_EQ(first, 10);
  sched.on_issue(c);
  q.erase_id(10);

  // Then the GPU batch drains in FIFO order.
  for (std::uint64_t i = 0; i < 3; ++i) {
    const std::int64_t id = sched.pick(q, banks, 100);
    EXPECT_EQ(id, static_cast<std::int64_t>(i));
    auto e = q.front();
    sched.on_issue(e);
    q.pop_front();
  }
}

TEST(Sms, WaitsWhileBatchesForm) {
  SmsScheduler::Params params;
  params.batch_timeout = 1000;
  SmsScheduler sched(params, Rng(2));
  OpenBanks banks;
  DramQueue q;
  auto e = entry(1, SourceId::gpu(), 0, 7, 0);
  sched.on_enqueue(e);
  q.push_back(e);
  // Batch still forming (not closed, no timeout): SMS delays service.
  EXPECT_EQ(sched.pick(q, banks, 10), -1);
  // After the timeout the batch closes and is served.
  EXPECT_EQ(sched.pick(q, banks, 2000), 1);
}

TEST(Sms, RowChangeClosesBatch) {
  SmsScheduler::Params params;
  params.shortest_first_prob = 1.0;
  SmsScheduler sched(params, Rng(3));
  OpenBanks banks;
  DramQueue q;
  auto a = entry(1, SourceId::gpu(), 0, 7, 0);
  sched.on_enqueue(a);
  q.push_back(a);
  auto b = entry(2, SourceId::gpu(), 0, 9, 1);  // different row
  sched.on_enqueue(b);
  q.push_back(b);
  // The first batch closed on the row change; it is served immediately.
  EXPECT_EQ(sched.pick(q, banks, 5), 1);
}

TEST(Sms, RoundRobinModeAlternatesSources) {
  SmsScheduler::Params params;
  params.shortest_first_prob = 0.0;  // SMS-0: always round-robin
  params.batch_timeout = 0;
  SmsScheduler sched(params, Rng(4));
  OpenBanks banks;
  DramQueue q;
  auto c0 = entry(1, SourceId::cpu(0), 0, 1, 0);
  auto c1 = entry(2, SourceId::cpu(1), 1, 2, 0);
  sched.on_enqueue(c0);
  sched.on_enqueue(c1);
  q.push_back(c0);
  q.push_back(c1);
  const std::int64_t first = sched.pick(q, banks, 10);
  ASSERT_TRUE(first == 1 || first == 2);
  DramQueueEntry served = first == 1 ? c0 : c1;
  sched.on_issue(served);
  q.erase_id(served.id);
  const std::int64_t second = sched.pick(q, banks, 20);
  EXPECT_NE(second, first);
}

TEST(Helm, BypassesShaderSourcedReadsWhenTolerant) {
  QosSignals sig;
  sig.gpu_latency_tolerance = 0.5;
  HelmBypassPolicy helm(&sig, 0.10);
  MemRequest tex;
  tex.source = SourceId::gpu();
  tex.gclass = GpuAccessClass::Texture;
  EXPECT_TRUE(helm.should_bypass(tex));

  sig.gpu_latency_tolerance = 0.05;  // not tolerant
  EXPECT_FALSE(helm.should_bypass(tex));
}

TEST(Helm, NeverBypassesRopOrCpuTraffic) {
  QosSignals sig;
  sig.gpu_latency_tolerance = 1.0;
  HelmBypassPolicy helm(&sig);
  MemRequest depth;
  depth.source = SourceId::gpu();
  depth.gclass = GpuAccessClass::Depth;
  EXPECT_FALSE(helm.should_bypass(depth));
  MemRequest color;
  color.source = SourceId::gpu();
  color.gclass = GpuAccessClass::Color;
  EXPECT_FALSE(helm.should_bypass(color));
  MemRequest cpu;
  cpu.source = SourceId::cpu(0);
  EXPECT_FALSE(helm.should_bypass(cpu));
}

TEST(ForceBypass, BypassesEveryGpuRead) {
  ForceBypassPolicy fb;
  MemRequest r;
  r.source = SourceId::gpu();
  for (auto g : {GpuAccessClass::Texture, GpuAccessClass::Depth,
                 GpuAccessClass::Color, GpuAccessClass::Vertex}) {
    r.gclass = g;
    EXPECT_TRUE(fb.should_bypass(r));
  }
  r.is_write = true;
  EXPECT_FALSE(fb.should_bypass(r));
  r.is_write = false;
  r.source = SourceId::cpu(1);
  EXPECT_FALSE(fb.should_bypass(r));
}

}  // namespace
}  // namespace gpuqos
