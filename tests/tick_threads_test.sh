#!/usr/bin/env bash
# Thread-count invariance (docs/PERFORMANCE.md, "The parallel tick"): the
# partitioned per-cycle tick must be bit-identical to the serial path at any
# worker count. Runs the same mix at GPUQOS_TICK_THREADS=1,2,4 and diffs each
# digest stream against the committed serial fixture in tests/fixtures/ —
# digest_diff reports the first divergent cycle + module on mismatch.
set -euo pipefail

GPUQOS_RUN=$1
DIGEST_DIFF=$2
MIX=$3
FIXTURE=$4
WORK=$5

mkdir -p "$WORK"
export GPUQOS_FAST=1

for T in 1 2 4; do
  GPUQOS_TICK_THREADS=$T "$GPUQOS_RUN" "$MIX" ThrotCPUprio --check \
      --digest-out "$WORK/$MIX.t$T.digest" --digest-interval 500000 > /dev/null
  echo "tick-threads=$T vs fixture:"
  "$DIGEST_DIFF" "$WORK/$MIX.t$T.digest" "$FIXTURE"
done
