// gpuqos-lint rule semantics (docs/ANALYSIS.md, "gpuqos-lint").
//
// Each test lints a small inline fixture snippet through the same engine the
// CLI uses (run_lint from gpuqos_lint_core), covering for every rule family:
// a positive (the violation is found), a negative (compliant code is clean),
// a suppression (NOLINT-gpuqos / skip annotations are honored), and the
// baseline filter. The self-lint of the real tree runs as the separate
// lint_src ctest against the committed baseline.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "absint.hpp"
#include "ast.hpp"
#include "cfg.hpp"
#include "lint.hpp"

namespace gpuqos::lint {
namespace {

LintResult lint_files(std::vector<SourceFile> files, LintOptions opts = {}) {
  return run_lint(files, opts);
}

LintResult lint_one(const std::string& path, const std::string& text,
                    LintOptions opts = {}) {
  return lint_files({SourceFile{path, text}}, std::move(opts));
}

int count_rule(const LintResult& r, const std::string& rule) {
  int n = 0;
  for (const Finding& f : r.findings) n += f.rule == rule ? 1 : 0;
  return n;
}

bool has_symbol(const LintResult& r, const std::string& symbol) {
  for (const Finding& f : r.findings) {
    if (f.symbol == symbol) return true;
  }
  return false;
}

// ---- R1: state-coverage ---------------------------------------------------

// A checkpointed module whose save/load/digest cover every field.
constexpr const char* kCoveredModule = R"cpp(
#pragma once
struct CoveredModule {
  void save(StateWriter& w) const { w.u64(count_); w.u64(acc_); }
  void load(StateReader& r) { count_ = r.u64(); acc_ = r.u64(); }
  std::uint64_t digest() const {
    Fnv1a64 h;
    h.mix(count_);
    h.mix(acc_);
    return h.value();
  }
  std::uint64_t count_ = 0;
  std::uint64_t acc_ = 0;
};
)cpp";

TEST(StateCoverage, CoveredModuleIsClean) {
  const LintResult r = lint_one("fx/covered.hpp", kCoveredModule);
  EXPECT_TRUE(r.findings.empty());
}

// The acceptance demo: adding a field to a checkpointed module without
// extending save/load/digest must fail the lint with one finding per
// uncovered method.
TEST(StateCoverage, AddedFieldWithoutCoverageFails) {
  std::string text = kCoveredModule;
  const std::string anchor = "std::uint64_t count_ = 0;";
  text.insert(text.find(anchor), "std::uint64_t added_ = 0;\n  ");
  const LintResult r = lint_one("fx/covered.hpp", text);
  EXPECT_EQ(count_rule(r, kRuleStateCoverage), 3);  // save, load, digest
  EXPECT_TRUE(has_symbol(r, "CoveredModule::added_"));
}

TEST(StateCoverage, DigestOnlyDriftIsFound) {
  const LintResult r = lint_one("fx/drift.hpp", R"cpp(
#pragma once
struct Drifting {
  void save(StateWriter& w) const { w.u64(a_); w.u64(b_); }
  void load(StateReader& r) { a_ = r.u64(); b_ = r.u64(); }
  std::uint64_t digest() const { Fnv1a64 h; h.mix(a_); return h.value(); }
  std::uint64_t a_ = 0;
  std::uint64_t b_ = 0;
};
)cpp");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, kRuleStateCoverage);
  EXPECT_EQ(r.findings[0].symbol, "Drifting::b_");
  EXPECT_NE(r.findings[0].message.find("digest"), std::string::npos);
}

TEST(StateCoverage, SkipAnnotationsAndWiringAreExempt) {
  const LintResult r = lint_one("fx/exempt.hpp", R"cpp(
#pragma once
struct Exempt {
  void save(StateWriter& w) const { w.u64(a_); }
  void load(StateReader& r) { a_ = r.u64(); }
  std::uint64_t digest() const { Fnv1a64 h; h.mix(a_); return h.value(); }
  Engine& engine_;          // references are non-owning wiring
  Telemetry* telemetry_;    // raw pointers likewise
  Config cfg_;              // ckpt:skip digest:skip: construction parameter
  std::uint64_t memo_ = 0;  // ckpt:skip digest:skip: derived cache
  std::uint64_t a_ = 0;
};
)cpp");
  EXPECT_TRUE(r.findings.empty());
}

TEST(StateCoverage, CkptSkipStillRequiresDigestCoverage) {
  // A drained queue is not serialized but its in-flight size is digested;
  // ckpt:skip alone must keep the digest obligation.
  const LintResult r = lint_one("fx/drained.hpp", R"cpp(
#pragma once
struct Drained {
  void save(StateWriter& w) const { w.u64(a_); }
  void load(StateReader& r) { a_ = r.u64(); }
  std::uint64_t digest() const { Fnv1a64 h; h.mix(a_); return h.value(); }
  std::deque<Request> queue_;  // ckpt:skip: drained at the barrier
  std::uint64_t a_ = 0;
};
)cpp");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].symbol, "Drained::queue_");
  EXPECT_NE(r.findings[0].message.find("digest"), std::string::npos);
}

TEST(StateCoverage, OutOfLineBodiesMergeAcrossFiles) {
  const char* hpp = R"cpp(
#pragma once
struct Split {
  void save(StateWriter& w) const;
  void load(StateReader& r);
  std::uint64_t digest() const;
  std::uint64_t a_ = 0;
  std::uint64_t b_ = 0;
};
)cpp";
  const char* cpp = R"cpp(
#include "split.hpp"
void Split::save(StateWriter& w) const { w.u64(a_); w.u64(b_); }
void Split::load(StateReader& r) { a_ = r.u64(); b_ = r.u64(); }
std::uint64_t Split::digest() const {
  Fnv1a64 h;
  h.mix(a_);
  return h.value();  // b_ deliberately missing
}
)cpp";
  const LintResult r = lint_files(
      {SourceFile{"fx/split.hpp", hpp}, SourceFile{"fx/split.cpp", cpp}});
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].symbol, "Split::b_");
}

TEST(StateCoverage, DeclaredButUndefinedMethodIsNotChecked) {
  // Only the header is in the input set: there is no digest body to check
  // fields against, so the rule must stay silent rather than guess.
  const LintResult r = lint_one("fx/decl_only.hpp", R"cpp(
#pragma once
struct DeclOnly {
  void save(StateWriter& w) const;
  void load(StateReader& r);
  std::uint64_t digest() const;
  std::uint64_t a_ = 0;
};
)cpp");
  EXPECT_TRUE(r.findings.empty());
}

TEST(StateCoverage, NolintSuppressesTheFinding) {
  const LintResult r = lint_one("fx/nolint.hpp", R"cpp(
#pragma once
struct Legacy {
  void save(StateWriter& w) const { w.u64(a_); }
  void load(StateReader& r) { a_ = r.u64(); }
  std::uint64_t a_ = 0;
  std::uint64_t b_ = 0;  // NOLINT-gpuqos(state-coverage): migration pending
};
)cpp");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.nolint_suppressed, 2);  // save and load findings for b_
}

// ---- R2: thread-purity ----------------------------------------------------

TEST(ThreadPurity, NamespaceStateReachableFromRootIsFound) {
  const LintResult r = lint_one("fx/purity.cpp", R"cpp(
namespace {
int g_calls = 0;
void helper() { ++g_calls; }
}  // namespace
void run_many() { helper(); }
)cpp");
  ASSERT_EQ(count_rule(r, kRuleThreadPurity), 1);
  EXPECT_TRUE(has_symbol(r, "g_calls"));
}

TEST(ThreadPurity, LocalStaticInReachableFunctionIsFound) {
  const LintResult r = lint_one("fx/purity.cpp", R"cpp(
void helper() {
  static int calls = 0;
  ++calls;
}
void run_many() { helper(); }
)cpp");
  ASSERT_EQ(count_rule(r, kRuleThreadPurity), 1);
  EXPECT_TRUE(has_symbol(r, "calls"));
}

TEST(ThreadPurity, UnreachableAndConstStateIsClean) {
  const LintResult r = lint_one("fx/purity.cpp", R"cpp(
const int kTable[] = {1, 2, 3};
constexpr int kLimit = 4;
void cold_path() { static int debug_hits = 0; ++debug_hits; }
void run_many() { (void)kTable; (void)kLimit; }
)cpp");
  EXPECT_TRUE(r.findings.empty());  // cold_path is never called from a root
}

TEST(ThreadPurity, MacroIndirectionStillReaches) {
  // run_many only touches the state through a macro body, the way
  // GPUQOS_LOG expands to log_message(): the edge must still resolve.
  const LintResult r = lint_one("fx/purity.cpp", R"cpp(
int g_hits = 0;
void bump() { ++g_hits; }
#define BUMP() bump()
void run_many() { BUMP(); }
)cpp");
  EXPECT_EQ(count_rule(r, kRuleThreadPurity), 1);
}

TEST(ThreadPurity, OwnLineNolintCoversTheDeclarationBelow) {
  const LintResult r = lint_one("fx/purity.cpp", R"cpp(
void io_lock() {
  // NOLINT-gpuqos(thread-purity): audited — serializes stdout only, and a
  // multi-line justification must still reach the declaration below.
  static std::mutex m;
  (void)m;
}
void run_many() { io_lock(); }
)cpp");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.nolint_suppressed, 1);
}

// ---- R3: check-hygiene ----------------------------------------------------

TEST(CheckHygiene, BannedConstructsAreFound) {
  const LintResult r = lint_one("fx/hygiene.cpp", R"cpp(
#include <cassert>
void f(int x) {
  assert(x > 0);
  std::cerr << "raw log\n";
  int* p = new int[4];
  delete[] p;
}
)cpp");
  EXPECT_EQ(count_rule(r, kRuleCheckHygiene), 4);
}

TEST(CheckHygiene, ProjectIdiomsAreClean) {
  const LintResult r = lint_one("fx/hygiene.cpp", R"cpp(
#include <new>
void g(void* buf, int x) {
  GPUQOS_CHECK(x > 0, "positive");
  GPUQOS_LOG(Info, "stamped");
  ::new (buf) int(x);      // placement new: no allocation
  auto owned = std::make_unique<int>(x);
}
struct NoCopy {
  NoCopy(const NoCopy&) = delete;
  void* operator new(std::size_t) = delete;
};
)cpp");
  EXPECT_TRUE(r.findings.empty());
}

TEST(CheckHygiene, ArenaNolintIsHonored) {
  const LintResult r = lint_one("fx/hygiene.cpp", R"cpp(
void arena(int x) {
  // NOLINT-gpuqos(check-hygiene): heap-fallback arena, freed by the pool
  int* p = new int(x);
  // NOLINT-gpuqos(check-hygiene): arena release
  delete p;
}
)cpp");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.nolint_suppressed, 2);
}

// ---- R4: header-hygiene ---------------------------------------------------

TEST(HeaderHygiene, UnguardedHeaderIsFound) {
  const LintResult r = lint_one("fx/raw.hpp", "struct Unguarded {};\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, kRuleHeaderHygiene);
}

TEST(HeaderHygiene, PragmaOnceAndIncludeGuardsAreClean) {
  EXPECT_TRUE(
      lint_one("fx/a.hpp", "// comment\n#pragma once\nstruct A {};\n")
          .findings.empty());
  EXPECT_TRUE(lint_one("fx/b.hpp",
                       "#ifndef FX_B_HPP\n#define FX_B_HPP\nstruct B {};\n"
                       "#endif\n")
                  .findings.empty());
  // Non-headers carry no guard obligation.
  EXPECT_TRUE(lint_one("fx/c.cpp", "struct C {};\n").findings.empty());
}

TEST(HeaderHygiene, FileWideNolintSuppresses) {
  const LintResult r = lint_one(
      "fx/gen.hpp",
      "// NOLINT-gpuqos-file(header-hygiene): generated fragment\n"
      "struct Generated {};\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.nolint_suppressed, 1);
}

// ---- Baseline and output formats ------------------------------------------

TEST(Baseline, FingerprintsFilterAndSurviveLineShifts) {
  const std::string drifting = R"cpp(
#pragma once
struct Drifting {
  void save(StateWriter& w) const { w.u64(a_); }
  void load(StateReader& r) { a_ = r.u64(); }
  std::uint64_t a_ = 0;
  std::uint64_t b_ = 0;
};
)cpp";
  LintResult first = lint_one("fx/base.hpp", drifting);
  ASSERT_EQ(first.findings.size(), 2u);
  // Fingerprints are rule|file|symbol: the save and load findings for b_
  // collapse into one entry, so the whole symbol is baselined at once.
  const std::set<std::string> baseline =
      parse_baseline(to_baseline(first));
  EXPECT_EQ(baseline.size(), 1u);

  // Shift every line: fingerprints are line-free, so the baseline holds.
  LintResult second = lint_one("fx/base.hpp", "\n\n\n" + drifting);
  apply_baseline(second, baseline);
  EXPECT_TRUE(second.findings.empty());
  EXPECT_EQ(second.baseline_filtered, 2);

  // A new violation is NOT absorbed by the old baseline.
  std::string grown = drifting;
  grown.insert(grown.find("std::uint64_t b_"), "std::uint64_t c_ = 0;\n  ");
  LintResult third = lint_one("fx/base.hpp", grown);
  apply_baseline(third, baseline);
  ASSERT_EQ(third.findings.size(), 2u);  // save + load for c_
  EXPECT_TRUE(has_symbol(third, "Drifting::c_"));
}

TEST(Baseline, ParserIgnoresCommentsAndBlanks) {
  const std::set<std::string> b = parse_baseline(
      "# header comment\n\n  state-coverage|src/a.hpp|A::x_  \r\n");
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(*b.begin(), "state-coverage|src/a.hpp|A::x_");
}

TEST(Formats, JsonAndGithubCarryRuleFileLine) {
  const LintResult r = lint_one("fx/raw.hpp", "struct Unguarded {};\n");
  ASSERT_EQ(r.findings.size(), 1u);
  const std::string json = format_json(r);
  EXPECT_NE(json.find("\"rule\": \"header-hygiene\""), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"fx/raw.hpp\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  const std::string gh = format_github(r);
  EXPECT_NE(gh.find("::error file=fx/raw.hpp,line=1,"
                    "title=gpuqos-lint(header-hygiene)::"),
            std::string::npos);
}

TEST(Formats, RuleFilterRunsOnlySelectedRules) {
  LintOptions opts;
  opts.rules.insert(kRuleCheckHygiene);
  const LintResult r = lint_one("fx/raw.hpp",
                                "void f() { std::cerr << 1; }\n", opts);
  EXPECT_EQ(count_rule(r, kRuleCheckHygiene), 1);
  EXPECT_EQ(count_rule(r, kRuleHeaderHygiene), 0);  // unguarded, but off
}

// ---- R5: det-hazard -------------------------------------------------------

// The acceptance demo: folding an unordered_map in digest() without an
// order-independent annotation is the textbook seeded violation.
constexpr const char* kUnorderedDigest = R"cpp(
#pragma once
struct Table {
  std::uint64_t digest() const {
    std::uint64_t h = 0;
    for (const auto& [k, v] : entries_) { h += k; }
    return h;
  }
  std::unordered_map<std::uint64_t, int> entries_;
};
)cpp";

TEST(DetHazard, UnorderedIterationInDigestIsFound) {
  const LintResult r = lint_one("fx/table.hpp", kUnorderedDigest);
  EXPECT_EQ(count_rule(r, kRuleDetHazard), 1);
  EXPECT_TRUE(has_symbol(r, "Table::digest#unordered-iter:entries_"));
}

TEST(DetHazard, DetOkAnnotationEscapes) {
  std::string text = kUnorderedDigest;
  const std::string anchor = "for (const auto& [k, v] : entries_)";
  text.insert(text.find(anchor), "/*det:ok: order-independent fold*/ ");
  const LintResult r = lint_one("fx/table.hpp", text);
  EXPECT_EQ(count_rule(r, kRuleDetHazard), 0);
  EXPECT_EQ(r.nolint_suppressed, 0);  // escaped inside the rule, not NOLINT
}

TEST(DetHazard, NolintSuppressionAlsoWorks) {
  std::string text = kUnorderedDigest;
  const std::string anchor = "for (const auto& [k, v] : entries_)";
  text.insert(text.find(anchor),
              "// NOLINT-gpuqos(det-hazard): audited\n    ");
  const LintResult r = lint_one("fx/table.hpp", text);
  EXPECT_EQ(count_rule(r, kRuleDetHazard), 0);
  EXPECT_EQ(r.nolint_suppressed, 1);
}

TEST(DetHazard, OrderedIntKeyedIterationIsClean) {
  const LintResult r = lint_one("fx/table.hpp", R"cpp(
#pragma once
struct Table {
  std::uint64_t digest() const {
    std::uint64_t h = 0;
    for (const auto& [k, v] : entries_) { h += k; }
    return h;
  }
  std::map<std::uint64_t, int> entries_;
};
)cpp");
  EXPECT_EQ(count_rule(r, kRuleDetHazard), 0);
}

TEST(DetHazard, WallClockAndPrngReadsAreFoundOnDetPathsOnly) {
  // tick() is a det root; helper() is reachable through it, unused() is not.
  const LintResult r = lint_files({
      SourceFile{"fx/a.cpp", "void helper();\nvoid tick() { helper(); }\n"},
      SourceFile{"fx/b.cpp",
                 "void helper() { int x = rand(); }\n"
                 "void unused() { int y = rand(); }\n"},
  });
  EXPECT_EQ(count_rule(r, kRuleDetHazard), 1);
  EXPECT_TRUE(has_symbol(r, "helper#wall-clock:rand"));
}

TEST(DetHazard, PtrKeyedLocalIsFlaggedEvenOffDetPaths) {
  // Output/report paths must be run-to-run stable too: the ptr-key check is
  // deliberately reachability-free. tick() exists and never calls report().
  const LintResult r = lint_one("fx/rep.cpp", R"cpp(
struct Def {};
void tick() {}
void report() {
  std::map<const Def*, int> counts;
  counts.clear();
}
)cpp");
  EXPECT_EQ(count_rule(r, kRuleDetHazard), 1);
  EXPECT_TRUE(has_symbol(r, "report#ptr-key:counts"));
}

TEST(DetHazard, FloatAccumulationInUnorderedLoopIsFound) {
  const LintResult r = lint_one("fx/avg.hpp", R"cpp(
#pragma once
struct Averager {
  std::uint64_t digest() const {
    double sum = 0;
    for (const auto& [k, v] : vals_) { sum += v; }
    return static_cast<std::uint64_t>(sum);
  }
  std::unordered_map<int, double> vals_;
};
)cpp");
  EXPECT_EQ(count_rule(r, kRuleDetHazard), 2);  // unordered-iter + float-accum
  EXPECT_TRUE(has_symbol(r, "Averager::digest#float-accum:sum"));
}

TEST(DetHazard, PtrKeyedFieldOfDetClassIsFound) {
  const LintResult r = lint_one("fx/owner.hpp", R"cpp(
#pragma once
struct Line {};
struct Owner {
  std::uint64_t digest() const { return 0; }
  std::map<const Line*, int> by_ptr_;
};
)cpp");
  EXPECT_EQ(count_rule(r, kRuleDetHazard), 1);
  EXPECT_TRUE(has_symbol(r, "Owner::by_ptr_"));
}

// ---- R6: concurrency-discipline -------------------------------------------

constexpr const char* kSharedRegistry = R"cpp(
#pragma once
struct Registry {
  void record(int v) { rows_.push_back(v); }
  std::mutex mu_;
  std::vector<int> rows_;
};
)cpp";

TEST(Concurrency, UnlockedWriteInSharedClassIsFound) {
  const LintResult r = lint_one("fx/reg.hpp", kSharedRegistry);
  EXPECT_EQ(count_rule(r, kRuleConcurrency), 1);
  EXPECT_TRUE(has_symbol(r, "Registry::rows_@record"));
}

TEST(Concurrency, RaiiLockInSameFunctionIsClean) {
  const LintResult r = lint_one("fx/reg.hpp", R"cpp(
#pragma once
struct Registry {
  void record(int v) {
    std::lock_guard<std::mutex> g(mu_);
    rows_.push_back(v);
  }
  std::mutex mu_;
  std::vector<int> rows_;
};
)cpp");
  EXPECT_EQ(count_rule(r, kRuleConcurrency), 0);
}

TEST(Concurrency, LockedSuffixMeansCallerHoldsTheMutex) {
  std::string text = kSharedRegistry;
  const std::size_t pos = text.find("record");
  text.replace(pos, 6, "record_locked");
  const LintResult r = lint_one("fx/reg.hpp", text);
  EXPECT_EQ(count_rule(r, kRuleConcurrency), 0);
}

TEST(Concurrency, OwnWorkerClassAnnotationExempts) {
  std::string text = kSharedRegistry;
  const std::string anchor = "struct Registry {";
  text.insert(text.find(anchor) + anchor.size(),
              " /*own:worker: one per pool worker*/");
  const LintResult r = lint_one("fx/reg.hpp", text);
  EXPECT_EQ(count_rule(r, kRuleConcurrency), 0);
}

TEST(Concurrency, OwnGuardedFieldAnnotationExempts) {
  std::string text = kSharedRegistry;
  const std::string anchor = "std::vector<int> rows_;";
  text.insert(text.find(anchor) + anchor.size(),
              " /*own:guarded: only written before the pool starts*/");
  const LintResult r = lint_one("fx/reg.hpp", text);
  EXPECT_EQ(count_rule(r, kRuleConcurrency), 0);
}

TEST(Concurrency, OwnSharedClassWithoutMutexIsChecked) {
  const LintResult r = lint_one("fx/bus.hpp", R"cpp(
#pragma once
struct Bus { /*own:shared: one queue, many producers*/
  void post(int v) { ++pending_; }
  int pending_ = 0;
};
)cpp");
  EXPECT_EQ(count_rule(r, kRuleConcurrency), 1);
  EXPECT_TRUE(has_symbol(r, "Bus::pending_@post"));
}

TEST(Concurrency, BareMutexLockIsFound) {
  const LintResult r = lint_one("fx/bare.hpp", R"cpp(
#pragma once
struct S {
  int get() { mu_.lock(); int v = x_; mu_.unlock(); return v; }
  std::mutex mu_;
  int x_ = 0;
};
)cpp");
  EXPECT_TRUE(has_symbol(r, "S::get#bare-lock:mu_"));
  EXPECT_GE(count_rule(r, kRuleConcurrency), 2);  // lock() and unlock()
}

TEST(Concurrency, ConstStaticWithCallInitializerIsFound) {
  const LintResult r = lint_one("fx/tab.cpp", R"cpp(
std::vector<int> build();
const std::vector<int>& table() {
  static const std::vector<int> t = build();
  return t;
}
)cpp");
  EXPECT_EQ(count_rule(r, kRuleConcurrency), 1);
  EXPECT_TRUE(has_symbol(r, "table#static-init:t"));
}

TEST(Concurrency, ConstexprStaticIsConstantInitializedAndClean) {
  const LintResult r = lint_one("fx/tab.cpp", R"cpp(
constexpr int make() { return 3; }
int probe() {
  static constexpr int t = make();
  return t;
}
)cpp");
  EXPECT_EQ(count_rule(r, kRuleConcurrency), 0);
}

// ---- R7: event-capture ----------------------------------------------------

constexpr const char* kRefCapture = R"cpp(
#pragma once
struct Mod {
  void arm(Engine& eng) {
    int budget = 4;
    eng.schedule(10, [&] { consume(budget); });
  }
  void consume(int n);
};
)cpp";

TEST(EventCapture, ReferenceCaptureIntoScheduleIsFound) {
  const LintResult r = lint_one("fx/mod.hpp", kRefCapture);
  EXPECT_EQ(count_rule(r, kRuleEventCapture), 1);
  EXPECT_TRUE(has_symbol(r, "Mod::arm#capture:&"));
}

TEST(EventCapture, NamedReferenceAndAddressInitCaptureAreFound) {
  const LintResult r = lint_one("fx/mod.hpp", R"cpp(
#pragma once
struct Mod {
  void arm(Engine& eng) {
    int budget = 4;
    eng.schedule(10, [&budget] { use(budget); });
    eng.add_ticker([p = &budget] { use(*p); });
  }
};
)cpp");
  EXPECT_EQ(count_rule(r, kRuleEventCapture), 2);
  EXPECT_TRUE(has_symbol(r, "Mod::arm#capture:budget"));
  EXPECT_TRUE(has_symbol(r, "Mod::arm#capture:p"));
}

TEST(EventCapture, ByValueAndThisCapturesAreClean) {
  const LintResult r = lint_one("fx/mod.hpp", R"cpp(
#pragma once
struct Mod {
  void arm(Engine& eng) {
    int budget = 4;
    eng.schedule(10, [this, budget] { consume(budget); });
    eng.add_ticker([n = budget] { sink(n); });
  }
  void consume(int n);
};
)cpp");
  EXPECT_EQ(count_rule(r, kRuleEventCapture), 0);
}

TEST(EventCapture, CapOkAnnotationEscapes) {
  std::string text = kRefCapture;
  const std::string anchor = "eng.schedule(10, [&]";
  text.insert(text.find(anchor),
              "/*cap:ok: Mod outlives the engine queue*/ ");
  const LintResult r = lint_one("fx/mod.hpp", text);
  EXPECT_EQ(count_rule(r, kRuleEventCapture), 0);
}

// ---- CFG builder (v3 substrate) -------------------------------------------

Cfg cfg_of(const std::string& src) {
  ParsedFile pf = parse("fx/cfg.cpp", lex(src));
  EXPECT_EQ(pf.functions.size(), 1u);
  const FunctionDef& fn = pf.functions.front();
  return build_cfg(pf.ts.tokens, fn.body_begin, fn.body_end);
}

TEST(CfgBuild, LoopHeadAndEarlyReturn) {
  const Cfg cfg = cfg_of(R"cpp(
void f(int n) {
  if (n < 0) return;
  while (n > 0) {
    --n;
  }
}
)cpp");
  // Exactly one loop head (the while); the plain if is conditional but not
  // a loop.
  std::size_t head = 0, ifhead = 0;
  int loops = 0, plain = 0;
  for (std::size_t i = 0; i < cfg.blocks.size(); ++i) {
    if (cfg.blocks[i].loop_head) {
      ++loops;
      head = i;
    } else if (cfg.blocks[i].has_cond) {
      ++plain;
      ifhead = i;
    }
  }
  EXPECT_EQ(loops, 1);
  EXPECT_EQ(plain, 1);
  // The loop body's flow returns to the head (the back edge).
  ASSERT_EQ(cfg.blocks[head].succ.size(), 2u);
  const std::size_t body = cfg.blocks[head].succ[0];
  EXPECT_TRUE(std::find(cfg.blocks[body].succ.begin(),
                        cfg.blocks[body].succ.end(),
                        head) != cfg.blocks[body].succ.end());
  // The early return's true edge reaches the unified exit.
  ASSERT_EQ(cfg.blocks[ifhead].succ.size(), 2u);
  const std::size_t ret = cfg.blocks[ifhead].succ[0];
  EXPECT_TRUE(std::find(cfg.blocks[ret].succ.begin(),
                        cfg.blocks[ret].succ.end(),
                        cfg.exit) != cfg.blocks[ret].succ.end());
}

TEST(CfgBuild, ScopeTreeNestsBraceGroups) {
  const Cfg cfg = cfg_of(R"cpp(
void f() {
  int a = 0;
  {
    int b = 1;
  }
}
)cpp");
  int inner = -1;
  for (const CfgBlock& b : cfg.blocks) {
    for (const CfgStmt& s : b.stmts) inner = std::max(inner, s.scope);
  }
  ASSERT_GT(inner, 0);  // the nested brace group opened a child scope
  EXPECT_TRUE(cfg.scope_encloses(0, inner));
  EXPECT_FALSE(cfg.scope_encloses(inner, 0));
}

// ---- abstract interpreter (v3 substrate) ----------------------------------

// A must-fact probe: `mark()` establishes fact "m", `unmark()` kills it, and
// every `probe()` statement records whether the converged state still holds
// it. join_missing = kDrop models lock-set semantics.
class ProbeDomain : public Domain {
 public:
  explicit ProbeDomain(const std::vector<Token>& t) : t_(t) {}
  int join(const std::string&, int a, int b) const override {
    return std::min(a, b);
  }
  int join_missing(const std::string&, int) const override { return kDrop; }
  void transfer(AbsState& s, const CfgStmt& stmt) override {
    for (std::size_t k = stmt.begin; k < stmt.end; ++k) {
      if (t_[k].kind != Tok::Ident) continue;
      if (t_[k].text == "mark") s["m"] = 1;
      if (t_[k].text == "unmark") s.erase("m");
    }
  }
  void visit(const AbsState& s, const CfgStmt& stmt) override {
    for (std::size_t k = stmt.begin; k < stmt.end; ++k) {
      if (t_[k].kind == Tok::Ident && t_[k].text == "probe") {
        saw.push_back(s.count("m") != 0);
        return;
      }
    }
  }
  std::vector<bool> saw;

 private:
  const std::vector<Token>& t_;
};

std::vector<bool> probe_run(const std::string& src) {
  ParsedFile pf = parse("fx/abs.cpp", lex(src));
  EXPECT_EQ(pf.functions.size(), 1u);
  const FunctionDef& fn = pf.functions.front();
  const Cfg cfg = build_cfg(pf.ts.tokens, fn.body_begin, fn.body_end);
  ProbeDomain d(pf.ts.tokens);
  const AbsResult r = solve(cfg, d);
  report(cfg, d, r);
  return d.saw;
}

TEST(AbsInt, MustFactDiesAtOneSidedJoin) {
  const std::vector<bool> saw = probe_run(R"cpp(
void f(bool c) {
  if (c) { mark(); }
  probe();
}
)cpp");
  ASSERT_EQ(saw.size(), 1u);
  EXPECT_FALSE(saw[0]);  // only the true path established it
}

TEST(AbsInt, MustFactSurvivesWhenBothBranchesEstablishIt) {
  const std::vector<bool> saw = probe_run(R"cpp(
void f(bool c) {
  if (c) { mark(); } else { mark(); }
  probe();
}
)cpp");
  ASSERT_EQ(saw.size(), 1u);
  EXPECT_TRUE(saw[0]);
}

TEST(AbsInt, LoopBackEdgeReachesFixpointNotFirstPass) {
  // On the first sweep the loop body still sees "m"; the back edge joins in
  // the unmarked state, and report() replays the *converged* facts.
  const std::vector<bool> saw = probe_run(R"cpp(
void f(bool c) {
  mark();
  while (c) {
    probe();
    unmark();
  }
}
)cpp");
  ASSERT_EQ(saw.size(), 1u);
  EXPECT_FALSE(saw[0]);
}

TEST(AbsInt, EarlyReturnDoesNotPolluteTheFallThroughPath) {
  const std::vector<bool> saw = probe_run(R"cpp(
void f(bool c) {
  mark();
  if (c) { return; }
  probe();
}
)cpp");
  ASSERT_EQ(saw.size(), 1u);
  EXPECT_TRUE(saw[0]);  // the taken return leaves one reachable predecessor
}

// ---- R8: state-order ------------------------------------------------------

// The acceptance demo: load() reads the two fields in the opposite order to
// save() — byte-compatible by accident today, a CRC mismatch the moment the
// types diverge.
constexpr const char* kFieldReorder = R"cpp(
#pragma once
struct Snap {
  void save(ckpt::StateWriter& w) const {
    w.u64(a_);
    w.u64(b_);
  }
  void load(ckpt::StateReader& r) {
    b_ = r.u64();
    a_ = r.u64();
  }
  std::uint64_t a_ = 0;
  std::uint64_t b_ = 0;
};
)cpp";

TEST(StateOrder, FieldReorderBetweenSaveAndLoadIsFound) {
  const LintResult r = lint_one("fx/snap.hpp", kFieldReorder);
  EXPECT_EQ(count_rule(r, kRuleStateOrder), 1);
  EXPECT_TRUE(has_symbol(r, "Snap::load"));
}

TEST(StateOrder, PrimStreamTypeMismatchIsFound) {
  const LintResult r = lint_one("fx/snap.hpp", R"cpp(
#pragma once
struct Snap {
  void save(ckpt::StateWriter& w) const { w.u64(a_); }
  void load(ckpt::StateReader& r) { a_ = r.u32(); }
  std::uint64_t a_ = 0;
};
)cpp");
  ASSERT_EQ(count_rule(r, kRuleStateOrder), 1);
  for (const Finding& f : r.findings) {
    if (f.rule == kRuleStateOrder) {
      EXPECT_NE(f.message.find("byte order must be symmetric"),
                std::string::npos);
    }
  }
}

TEST(StateOrder, OpCountDriftNamesTheFirstUnmatchedStep) {
  const LintResult r = lint_one("fx/snap.hpp", R"cpp(
#pragma once
struct Snap {
  void save(ckpt::StateWriter& w) const {
    w.u64(a_);
    w.boolean(flag_);
  }
  void load(ckpt::StateReader& r) { a_ = r.u64(); }
  std::uint64_t a_ = 0;
  bool flag_ = false;
};
)cpp");
  ASSERT_EQ(count_rule(r, kRuleStateOrder), 1);
  EXPECT_TRUE(has_symbol(r, "Snap::save"));
}

TEST(StateOrder, DigestFoldOrderMustMatchSave) {
  const LintResult r = lint_one("fx/snap.hpp", R"cpp(
#pragma once
struct Snap {
  void save(ckpt::StateWriter& w) const {
    w.u64(a_);
    w.u64(b_);
  }
  void load(ckpt::StateReader& r) {
    a_ = r.u64();
    b_ = r.u64();
  }
  std::uint64_t digest() const {
    Fnv1a64 h;
    h.mix(b_);
    h.mix(a_);
    return h.value();
  }
  std::uint64_t a_ = 0;
  std::uint64_t b_ = 0;
};
)cpp");
  EXPECT_EQ(count_rule(r, kRuleStateOrder), 1);
  EXPECT_TRUE(has_symbol(r, "Snap::digest"));
}

TEST(StateOrder, SoaLaneLoopAndSubObjectHopsAreClean) {
  const LintResult r = lint_one("fx/snap.hpp", R"cpp(
#pragma once
struct Snap {
  void save(ckpt::StateWriter& w) const {
    w.u64(gen_.size());
    for (std::size_t i = 0; i < gen_.size(); ++i) {
      w.u32(gen_[i]);
      w.u64(ready_[i]);
    }
    rng_.save(w);
  }
  void load(ckpt::StateReader& r) {
    gen_.resize(r.u64());
    ready_.resize(gen_.size());
    for (std::size_t i = 0; i < gen_.size(); ++i) {
      gen_[i] = r.u32();
      ready_[i] = r.u64();
    }
    rng_.load(r);
  }
  std::vector<std::uint32_t> gen_;
  std::vector<std::uint64_t> ready_;
  Rng rng_;
};
)cpp");
  EXPECT_EQ(count_rule(r, kRuleStateOrder), 0);
}

TEST(StateOrder, OrderOkAnnotationEscapes) {
  std::string text = kFieldReorder;
  const std::string anchor = "void load";
  text.insert(text.find(anchor), "/*order:ok: legacy layout*/ ");
  const LintResult r = lint_one("fx/snap.hpp", text);
  EXPECT_EQ(count_rule(r, kRuleStateOrder), 0);
}

TEST(StateOrder, NolintSuppresses) {
  std::string text = kFieldReorder;
  const std::string anchor = "b_ = r.u64();";
  text.insert(text.find(anchor) + anchor.size(),
              "  // NOLINT-gpuqos(state-order)");
  const LintResult r = lint_one("fx/snap.hpp", text);
  EXPECT_EQ(count_rule(r, kRuleStateOrder), 0);
}

// ---- R9: lock-discipline --------------------------------------------------

// The acceptance demo: the same two mutexes taken in opposite orders.
constexpr const char* kLockInversion = R"cpp(
#pragma once
class Pair {
 public:
  void forward() {
    std::lock_guard<std::mutex> a(mu_a_);
    std::lock_guard<std::mutex> b(mu_b_);
    ++x_;
  }
  void backward() {
    std::lock_guard<std::mutex> b(mu_b_);
    std::lock_guard<std::mutex> a(mu_a_);
    ++x_;
  }

 private:
  std::mutex mu_a_;
  std::mutex mu_b_;
  int x_ = 0;
};
)cpp";

TEST(LockDiscipline, AcquisitionOrderInversionIsFound) {
  const LintResult r = lint_one("fx/pair.hpp", kLockInversion);
  EXPECT_EQ(count_rule(r, kRuleLockDiscipline), 1);
  EXPECT_TRUE(has_symbol(r, "lock-order:Pair::mu_a_<->Pair::mu_b_"));
}

TEST(LockDiscipline, ConsistentOrderIsClean) {
  const LintResult r = lint_one("fx/pair.hpp", R"cpp(
#pragma once
class Pair {
 public:
  void forward() {
    std::lock_guard<std::mutex> a(mu_a_);
    std::lock_guard<std::mutex> b(mu_b_);
    ++x_;
  }
  void also_forward() {
    std::scoped_lock both(mu_a_, mu_b_);
    ++x_;
  }

 private:
  std::mutex mu_a_;
  std::mutex mu_b_;
  int x_ = 0;
};
)cpp");
  EXPECT_EQ(count_rule(r, kRuleLockDiscipline), 0);
}

TEST(LockDiscipline, LockOkAnnotationEscapesTheInversion) {
  std::string text = kLockInversion;
  // Annotate the second acquisition in forward(), where the edge is drawn.
  const std::string anchor = "std::lock_guard<std::mutex> b(mu_b_);\n    ++x_;";
  text.insert(text.find(anchor),
              "/*lock:ok: forward and backward are phase-exclusive*/\n    ");
  const LintResult r = lint_one("fx/pair.hpp", text);
  EXPECT_EQ(count_rule(r, kRuleLockDiscipline), 0);
}

TEST(LockDiscipline, BlockingSleepUnderGuardIsFound) {
  const LintResult r = lint_one("fx/sleepy.hpp", R"cpp(
#pragma once
struct Sleepy {
  void nap() {
    std::lock_guard<std::mutex> g(mu_);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ++hits_;
  }
  std::mutex mu_;
  int hits_ = 0;
};
)cpp");
  ASSERT_EQ(count_rule(r, kRuleLockDiscipline), 1);
  for (const Finding& f : r.findings) {
    if (f.rule == kRuleLockDiscipline) {
      EXPECT_NE(f.message.find("sleep_for"), std::string::npos);
      EXPECT_NE(f.message.find("Sleepy::mu_"), std::string::npos);
    }
  }
}

TEST(LockDiscipline, CvWaitReleasesItsOwnLock) {
  const LintResult r = lint_one("fx/cv.hpp", R"cpp(
#pragma once
struct Pump {
  void drain() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk);
    ++woke_;
  }
  std::mutex mu_;
  std::condition_variable cv_;
  int woke_ = 0;
};
)cpp");
  EXPECT_EQ(count_rule(r, kRuleLockDiscipline), 0);
}

TEST(LockDiscipline, WriteBeforeTheGuardHasAnEmptyLockSet) {
  const LintResult r = lint_one("fx/counter.hpp", R"cpp(
#pragma once
struct Counter {
  void bump() {
    ++hits_;
    std::lock_guard<std::mutex> g(mu_);
    ++hits_;
  }
  std::mutex mu_;
  int hits_ = 0;
};
)cpp");
  EXPECT_EQ(count_rule(r, kRuleLockDiscipline), 1);
  EXPECT_TRUE(has_symbol(r, "Counter::hits_"));
}

TEST(LockDiscipline, LockedSuffixSeedsTheEntryLockSet) {
  // *_locked runs with the class mutexes held by convention, so a blocking
  // sleep inside is a finding even with no guard in sight.
  const LintResult r = lint_one("fx/conv.hpp", R"cpp(
#pragma once
struct Conv {
  void slow_locked() {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::mutex mu_;
};
)cpp");
  EXPECT_EQ(count_rule(r, kRuleLockDiscipline), 1);
}

TEST(LockDiscipline, NolintSuppresses) {
  const LintResult r = lint_one("fx/sleepy.hpp", R"cpp(
#pragma once
struct Sleepy {
  void nap() {
    std::lock_guard<std::mutex> g(mu_);
    // NOLINT-gpuqos(lock-discipline): bench-only pacing loop
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::mutex mu_;
};
)cpp");
  EXPECT_EQ(count_rule(r, kRuleLockDiscipline), 0);
}

// ---- R10: input-taint -----------------------------------------------------

// The acceptance demo: a JSON-sourced count sizes a vector unchecked.
constexpr const char* kUnboundedReserve = R"cpp(
void decode(const JsonValue& v, std::vector<int>& out) {
  const JsonValue& arr = v.req("jobs");
  out.reserve(arr.items.size());
}
)cpp";

TEST(InputTaint, JsonSourcedAllocationSizeIsFound) {
  const LintResult r = lint_one("fx/svc/proto.cpp", kUnboundedReserve);
  EXPECT_EQ(count_rule(r, kRuleInputTaint), 1);
}

TEST(InputTaint, DominatingBoundCheckSanitizes) {
  const LintResult r = lint_one("fx/svc/proto.cpp", R"cpp(
void decode(const JsonValue& v, std::vector<int>& out) {
  const JsonValue& arr = v.req("jobs");
  if (arr.items.size() > kMaxJobs) {
    return;
  }
  out.reserve(arr.items.size());
}
)cpp");
  EXPECT_EQ(count_rule(r, kRuleInputTaint), 0);
}

TEST(InputTaint, TaintedLoopBoundIsFound) {
  const LintResult r = lint_one("fx/svc/proto.cpp", R"cpp(
void expand(const JsonValue& v, std::vector<int>& out) {
  const std::uint64_t n = v.req_u64("count");
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(0);
  }
}
)cpp");
  ASSERT_EQ(count_rule(r, kRuleInputTaint), 1);
  for (const Finding& f : r.findings) {
    if (f.rule == kRuleInputTaint) {
      EXPECT_NE(f.message.find("loop bound"), std::string::npos);
    }
  }
}

TEST(InputTaint, MemcpyLengthFromReaderIsFound) {
  const LintResult r = lint_one("fx/svc/proto.cpp", R"cpp(
void slurp(ckpt::StateReader& r, char* dst, const char* src) {
  const std::uint64_t len = r.u64();
  memcpy(dst, src, len);
}
)cpp");
  EXPECT_EQ(count_rule(r, kRuleInputTaint), 1);
}

TEST(InputTaint, FreeCallResultsDoNotCarryArgumentTaint) {
  // send_frame(tainted) returns a clean bool; only member calls keep their
  // receiver's taint.
  const LintResult r = lint_one("fx/svc/proto.cpp", R"cpp(
void pump(const JsonValue& v, std::vector<int>& out) {
  const JsonValue& arr = v.req("jobs");
  const bool ok = send_frame(arr);
  for (std::size_t i = 0; i < out.size() && ok; ++i) {
    out[i] = 0;
  }
}
)cpp");
  EXPECT_EQ(count_rule(r, kRuleInputTaint), 0);
}

TEST(InputTaint, TaintOkAnnotationEscapes) {
  std::string text = kUnboundedReserve;
  const std::string anchor = "out.reserve";
  text.insert(text.find(anchor),
              "/*taint:ok: jobs capped by decode_submit_jobs*/\n  ");
  const LintResult r = lint_one("fx/svc/proto.cpp", text);
  EXPECT_EQ(count_rule(r, kRuleInputTaint), 0);
}

TEST(InputTaint, OutOfScopeFilesCarryNoSources) {
  // Default taint_scopes = {"svc"}: the same snippet elsewhere is quiet.
  const LintResult r = lint_one("fx/sim/proto.cpp", kUnboundedReserve);
  EXPECT_EQ(count_rule(r, kRuleInputTaint), 0);
}

TEST(InputTaint, NolintSuppresses) {
  std::string text = kUnboundedReserve;
  const std::string anchor = "out.reserve(arr.items.size());";
  text.insert(text.find(anchor) + anchor.size(),
              "  // NOLINT-gpuqos(input-taint)");
  const LintResult r = lint_one("fx/svc/proto.cpp", text);
  EXPECT_EQ(count_rule(r, kRuleInputTaint), 0);
}

// ---- R11: narrowing-cast --------------------------------------------------

// The acceptance demo: a 64-bit snapshot value squeezed into int unchecked.
constexpr const char* kUncheckedNarrow = R"cpp(
void load(ckpt::StateReader& r, int& out) {
  const std::int64_t wide = r.i64();
  out = static_cast<int>(wide);
}
)cpp";

TEST(NarrowingCast, UncheckedSixtyFourToIntIsFound) {
  const LintResult r = lint_one("fx/load.cpp", kUncheckedNarrow);
  EXPECT_EQ(count_rule(r, kRuleNarrowingCast), 1);
}

TEST(NarrowingCast, CallChainResultCountsAsWide) {
  const LintResult r = lint_one("fx/load.cpp", R"cpp(
void load(ckpt::StateReader& r, int& out) {
  out = static_cast<int>(r.i64());
}
)cpp");
  EXPECT_EQ(count_rule(r, kRuleNarrowingCast), 1);
}

TEST(NarrowingCast, DominatingRangeCheckIsClean) {
  const LintResult r = lint_one("fx/load.cpp", R"cpp(
void load(ckpt::StateReader& r, int& out) {
  const std::int64_t wide = r.i64();
  if (wide > 65535) {
    return;
  }
  out = static_cast<int>(wide);
}
)cpp");
  EXPECT_EQ(count_rule(r, kRuleNarrowingCast), 0);
}

TEST(NarrowingCast, MaskAndMinIdiomsAreClean) {
  const LintResult r = lint_one("fx/load.cpp", R"cpp(
void load(std::uint64_t wide, std::uint32_t& lo, std::uint32_t& capped) {
  lo = static_cast<std::uint32_t>(wide & 0xffffffffULL);
  capped = static_cast<std::uint32_t>(std::min<std::uint64_t>(wide, 64));
}
)cpp");
  EXPECT_EQ(count_rule(r, kRuleNarrowingCast), 0);
}

TEST(NarrowingCast, SameStatementTernaryGuardIsClean) {
  const LintResult r = lint_one("fx/load.cpp", R"cpp(
void pick(std::size_t n, const std::vector<int>& v, unsigned& out) {
  out = n < v.size() ? 0u : static_cast<unsigned>(v.size()) - 1u;
}
)cpp");
  EXPECT_EQ(count_rule(r, kRuleNarrowingCast), 0);
}

TEST(NarrowingCast, SubscriptIndexChainsAreNotTheCastOperand) {
  const LintResult r = lint_one("fx/load.cpp", R"cpp(
void scan(const std::string& src, std::size_t pos, bool& digit) {
  digit = isdigit(static_cast<unsigned char>(src[pos])) != 0;
}
)cpp");
  EXPECT_EQ(count_rule(r, kRuleNarrowingCast), 0);
}

TEST(NarrowingCast, NarrowOkAnnotationEscapes) {
  std::string text = kUncheckedNarrow;
  const std::string anchor = "out = static_cast<int>(wide);";
  text.insert(text.find(anchor) + anchor.size(),
              "  /*narrow:ok: bounded by the writer*/");
  const LintResult r = lint_one("fx/load.cpp", text);
  EXPECT_EQ(count_rule(r, kRuleNarrowingCast), 0);
}

TEST(NarrowingCast, NolintSuppresses) {
  std::string text = kUncheckedNarrow;
  const std::string anchor = "out = static_cast<int>(wide);";
  text.insert(text.find(anchor) + anchor.size(),
              "  // NOLINT-gpuqos(narrowing-cast)");
  const LintResult r = lint_one("fx/load.cpp", text);
  EXPECT_EQ(count_rule(r, kRuleNarrowingCast), 0);
}

// ---- parser regressions ---------------------------------------------------

// operator< used to open a phantom angle bracket and swallow the following
// field declarations; weight_ must still be visible to state-coverage.
TEST(ParserRegression, FieldsAfterOperatorLessAreSeen) {
  const LintResult r = lint_one("fx/ranked.hpp", R"cpp(
#pragma once
struct Ranked {
  bool operator<(const Ranked& o) const { return key_ < o.key_; }
  std::uint64_t digest() const { Fnv1a64 h; h.mix(key_); return h.value(); }
  std::uint64_t key_ = 0;
  std::uint64_t weight_ = 0;
};
)cpp");
  EXPECT_EQ(count_rule(r, kRuleStateCoverage), 1);
  EXPECT_TRUE(has_symbol(r, "Ranked::weight_"));
}

// Out-of-line class-template members (`Box<T>::digest`) must merge into the
// class's method table: payload_ is covered there, uses_ is not.
TEST(ParserRegression, ClassTemplateOutOfLineBodyMerges) {
  const LintResult r = lint_one("fx/box.hpp", R"cpp(
#pragma once
template <typename T>
struct Box {
  std::uint64_t digest() const;
  T payload_{};
  std::uint64_t uses_ = 0;
};
template <typename T>
std::uint64_t Box<T>::digest() const {
  Fnv1a64 h;
  h.mix(payload_);
  return h.value();
}
)cpp");
  EXPECT_TRUE(has_symbol(r, "Box::uses_"));
  EXPECT_FALSE(has_symbol(r, "Box::payload_"));
}

// decltype(...) members used to parse as method declarations and vanish.
TEST(ParserRegression, DecltypeFieldIsAField) {
  const LintResult r = lint_one("fx/d.hpp", R"cpp(
#pragma once
struct D {
  std::uint64_t digest() const { Fnv1a64 h; h.mix(a_); return h.value(); }
  std::uint64_t a_ = 0;
  decltype(0u) counter_ = 0;
};
)cpp");
  EXPECT_EQ(count_rule(r, kRuleStateCoverage), 1);
  EXPECT_TRUE(has_symbol(r, "D::counter_"));
}

// ---- parse cache + parallel parse ----------------------------------------

TEST(ParseCacheTest, SecondRunHitsAndStampChangeMisses) {
  ParseCache cache;
  std::vector<FileInput> files{
      FileInput{"fx/raw.hpp", "struct Unguarded {};\n", 42}};
  const LintResult r1 = run_lint_cached(files, cache, {});
  EXPECT_EQ(r1.files_parsed, 1);
  EXPECT_EQ(r1.cache_hits, 0);
  ASSERT_EQ(r1.findings.size(), 1u);

  const LintResult r2 = run_lint_cached(files, cache, {});
  EXPECT_EQ(r2.files_parsed, 0);
  EXPECT_EQ(r2.cache_hits, 1);
  ASSERT_EQ(r2.findings.size(), 1u);
  EXPECT_EQ(fingerprint(r2.findings[0]), fingerprint(r1.findings[0]));

  files[0].stamp = 43;  // content "changed"
  const LintResult r3 = run_lint_cached(files, cache, {});
  EXPECT_EQ(r3.files_parsed, 1);
  EXPECT_EQ(r3.cache_hits, 0);
  EXPECT_EQ(cache.size(), 1u);  // replaced, not grown
}

TEST(ParseCacheTest, StampZeroDisablesCaching) {
  ParseCache cache;
  const std::vector<FileInput> files{
      FileInput{"fx/raw.hpp", "struct Unguarded {};\n", 0}};
  const LintResult r1 = run_lint_cached(files, cache, {});
  const LintResult r2 = run_lint_cached(files, cache, {});
  EXPECT_EQ(r1.cache_hits + r2.cache_hits, 0);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ParallelParse, FindingOrderIsThreadCountInvariant) {
  std::vector<FileInput> files;
  for (int i = 0; i < 24; ++i) {
    files.push_back(FileInput{"fx/u" + std::to_string(i) + ".hpp",
                              "struct U" + std::to_string(i) + " {};\n", 0});
  }
  LintOptions one;
  one.threads = 1;
  LintOptions many;
  many.threads = 8;
  ParseCache c1, c2;
  const LintResult r1 = run_lint_cached(files, c1, one);
  const LintResult r2 = run_lint_cached(files, c2, many);
  ASSERT_EQ(r1.findings.size(), r2.findings.size());
  for (std::size_t i = 0; i < r1.findings.size(); ++i) {
    EXPECT_EQ(fingerprint(r1.findings[i]), fingerprint(r2.findings[i]));
    EXPECT_EQ(r1.findings[i].line, r2.findings[i].line);
  }
}

// ---- SARIF + stats --------------------------------------------------------

TEST(Formats, SarifCarriesRuleLocationAndFingerprint) {
  const LintResult r = lint_one("fx/raw.hpp", "struct Unguarded {};\n");
  ASSERT_EQ(r.findings.size(), 1u);
  const std::string sarif = format_sarif(r);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"gpuqos-lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"header-hygiene\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"fx/raw.hpp\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 1"), std::string::npos);
  EXPECT_NE(sarif.find("\"gpuqosLintFingerprint/v1\": \"" +
                       fingerprint(r.findings[0]) + "\""),
            std::string::npos);
  // Every rule is declared in the driver, even with one result.
  for (const std::string& rule : all_rules()) {
    EXPECT_NE(sarif.find("{\"id\": \"" + rule + "\"}"), std::string::npos);
  }
}

TEST(Formats, StatsTableListsEveryRuleFamily) {
  const LintResult r = lint_one("fx/raw.hpp", "struct Unguarded {};\n");
  std::set<std::string> seen;
  for (const RuleStat& rs : r.rule_stats) seen.insert(rs.rule);
  for (const std::string& rule : all_rules()) {
    EXPECT_EQ(seen.count(rule), 1u) << rule;
  }
  const std::string stats = format_stats(r);
  EXPECT_NE(stats.find("det-hazard"), std::string::npos);
  EXPECT_NE(stats.find("parse:"), std::string::npos);
}

}  // namespace
}  // namespace gpuqos::lint
