// gpuqos-lint rule semantics (docs/ANALYSIS.md, "gpuqos-lint").
//
// Each test lints a small inline fixture snippet through the same engine the
// CLI uses (run_lint from gpuqos_lint_core), covering for every rule family:
// a positive (the violation is found), a negative (compliant code is clean),
// a suppression (NOLINT-gpuqos / skip annotations are honored), and the
// baseline filter. The self-lint of the real tree runs as the separate
// lint_src ctest against the committed baseline.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint.hpp"

namespace gpuqos::lint {
namespace {

LintResult lint_files(std::vector<SourceFile> files, LintOptions opts = {}) {
  return run_lint(files, opts);
}

LintResult lint_one(const std::string& path, const std::string& text,
                    LintOptions opts = {}) {
  return lint_files({SourceFile{path, text}}, std::move(opts));
}

int count_rule(const LintResult& r, const std::string& rule) {
  int n = 0;
  for (const Finding& f : r.findings) n += f.rule == rule ? 1 : 0;
  return n;
}

bool has_symbol(const LintResult& r, const std::string& symbol) {
  for (const Finding& f : r.findings) {
    if (f.symbol == symbol) return true;
  }
  return false;
}

// ---- R1: state-coverage ---------------------------------------------------

// A checkpointed module whose save/load/digest cover every field.
constexpr const char* kCoveredModule = R"cpp(
#pragma once
struct CoveredModule {
  void save(StateWriter& w) const { w.u64(count_); w.u64(acc_); }
  void load(StateReader& r) { count_ = r.u64(); acc_ = r.u64(); }
  std::uint64_t digest() const {
    Fnv1a64 h;
    h.mix(count_);
    h.mix(acc_);
    return h.value();
  }
  std::uint64_t count_ = 0;
  std::uint64_t acc_ = 0;
};
)cpp";

TEST(StateCoverage, CoveredModuleIsClean) {
  const LintResult r = lint_one("fx/covered.hpp", kCoveredModule);
  EXPECT_TRUE(r.findings.empty());
}

// The acceptance demo: adding a field to a checkpointed module without
// extending save/load/digest must fail the lint with one finding per
// uncovered method.
TEST(StateCoverage, AddedFieldWithoutCoverageFails) {
  std::string text = kCoveredModule;
  const std::string anchor = "std::uint64_t count_ = 0;";
  text.insert(text.find(anchor), "std::uint64_t added_ = 0;\n  ");
  const LintResult r = lint_one("fx/covered.hpp", text);
  EXPECT_EQ(count_rule(r, kRuleStateCoverage), 3);  // save, load, digest
  EXPECT_TRUE(has_symbol(r, "CoveredModule::added_"));
}

TEST(StateCoverage, DigestOnlyDriftIsFound) {
  const LintResult r = lint_one("fx/drift.hpp", R"cpp(
#pragma once
struct Drifting {
  void save(StateWriter& w) const { w.u64(a_); w.u64(b_); }
  void load(StateReader& r) { a_ = r.u64(); b_ = r.u64(); }
  std::uint64_t digest() const { Fnv1a64 h; h.mix(a_); return h.value(); }
  std::uint64_t a_ = 0;
  std::uint64_t b_ = 0;
};
)cpp");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, kRuleStateCoverage);
  EXPECT_EQ(r.findings[0].symbol, "Drifting::b_");
  EXPECT_NE(r.findings[0].message.find("digest"), std::string::npos);
}

TEST(StateCoverage, SkipAnnotationsAndWiringAreExempt) {
  const LintResult r = lint_one("fx/exempt.hpp", R"cpp(
#pragma once
struct Exempt {
  void save(StateWriter& w) const { w.u64(a_); }
  void load(StateReader& r) { a_ = r.u64(); }
  std::uint64_t digest() const { Fnv1a64 h; h.mix(a_); return h.value(); }
  Engine& engine_;          // references are non-owning wiring
  Telemetry* telemetry_;    // raw pointers likewise
  Config cfg_;              // ckpt:skip digest:skip: construction parameter
  std::uint64_t memo_ = 0;  // ckpt:skip digest:skip: derived cache
  std::uint64_t a_ = 0;
};
)cpp");
  EXPECT_TRUE(r.findings.empty());
}

TEST(StateCoverage, CkptSkipStillRequiresDigestCoverage) {
  // A drained queue is not serialized but its in-flight size is digested;
  // ckpt:skip alone must keep the digest obligation.
  const LintResult r = lint_one("fx/drained.hpp", R"cpp(
#pragma once
struct Drained {
  void save(StateWriter& w) const { w.u64(a_); }
  void load(StateReader& r) { a_ = r.u64(); }
  std::uint64_t digest() const { Fnv1a64 h; h.mix(a_); return h.value(); }
  std::deque<Request> queue_;  // ckpt:skip: drained at the barrier
  std::uint64_t a_ = 0;
};
)cpp");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].symbol, "Drained::queue_");
  EXPECT_NE(r.findings[0].message.find("digest"), std::string::npos);
}

TEST(StateCoverage, OutOfLineBodiesMergeAcrossFiles) {
  const char* hpp = R"cpp(
#pragma once
struct Split {
  void save(StateWriter& w) const;
  void load(StateReader& r);
  std::uint64_t digest() const;
  std::uint64_t a_ = 0;
  std::uint64_t b_ = 0;
};
)cpp";
  const char* cpp = R"cpp(
#include "split.hpp"
void Split::save(StateWriter& w) const { w.u64(a_); w.u64(b_); }
void Split::load(StateReader& r) { a_ = r.u64(); b_ = r.u64(); }
std::uint64_t Split::digest() const {
  Fnv1a64 h;
  h.mix(a_);
  return h.value();  // b_ deliberately missing
}
)cpp";
  const LintResult r = lint_files(
      {SourceFile{"fx/split.hpp", hpp}, SourceFile{"fx/split.cpp", cpp}});
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].symbol, "Split::b_");
}

TEST(StateCoverage, DeclaredButUndefinedMethodIsNotChecked) {
  // Only the header is in the input set: there is no digest body to check
  // fields against, so the rule must stay silent rather than guess.
  const LintResult r = lint_one("fx/decl_only.hpp", R"cpp(
#pragma once
struct DeclOnly {
  void save(StateWriter& w) const;
  void load(StateReader& r);
  std::uint64_t digest() const;
  std::uint64_t a_ = 0;
};
)cpp");
  EXPECT_TRUE(r.findings.empty());
}

TEST(StateCoverage, NolintSuppressesTheFinding) {
  const LintResult r = lint_one("fx/nolint.hpp", R"cpp(
#pragma once
struct Legacy {
  void save(StateWriter& w) const { w.u64(a_); }
  void load(StateReader& r) { a_ = r.u64(); }
  std::uint64_t a_ = 0;
  std::uint64_t b_ = 0;  // NOLINT-gpuqos(state-coverage): migration pending
};
)cpp");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.nolint_suppressed, 2);  // save and load findings for b_
}

// ---- R2: thread-purity ----------------------------------------------------

TEST(ThreadPurity, NamespaceStateReachableFromRootIsFound) {
  const LintResult r = lint_one("fx/purity.cpp", R"cpp(
namespace {
int g_calls = 0;
void helper() { ++g_calls; }
}  // namespace
void run_many() { helper(); }
)cpp");
  ASSERT_EQ(count_rule(r, kRuleThreadPurity), 1);
  EXPECT_TRUE(has_symbol(r, "g_calls"));
}

TEST(ThreadPurity, LocalStaticInReachableFunctionIsFound) {
  const LintResult r = lint_one("fx/purity.cpp", R"cpp(
void helper() {
  static int calls = 0;
  ++calls;
}
void run_many() { helper(); }
)cpp");
  ASSERT_EQ(count_rule(r, kRuleThreadPurity), 1);
  EXPECT_TRUE(has_symbol(r, "calls"));
}

TEST(ThreadPurity, UnreachableAndConstStateIsClean) {
  const LintResult r = lint_one("fx/purity.cpp", R"cpp(
const int kTable[] = {1, 2, 3};
constexpr int kLimit = 4;
void cold_path() { static int debug_hits = 0; ++debug_hits; }
void run_many() { (void)kTable; (void)kLimit; }
)cpp");
  EXPECT_TRUE(r.findings.empty());  // cold_path is never called from a root
}

TEST(ThreadPurity, MacroIndirectionStillReaches) {
  // run_many only touches the state through a macro body, the way
  // GPUQOS_LOG expands to log_message(): the edge must still resolve.
  const LintResult r = lint_one("fx/purity.cpp", R"cpp(
int g_hits = 0;
void bump() { ++g_hits; }
#define BUMP() bump()
void run_many() { BUMP(); }
)cpp");
  EXPECT_EQ(count_rule(r, kRuleThreadPurity), 1);
}

TEST(ThreadPurity, OwnLineNolintCoversTheDeclarationBelow) {
  const LintResult r = lint_one("fx/purity.cpp", R"cpp(
void io_lock() {
  // NOLINT-gpuqos(thread-purity): audited — serializes stdout only, and a
  // multi-line justification must still reach the declaration below.
  static std::mutex m;
  (void)m;
}
void run_many() { io_lock(); }
)cpp");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.nolint_suppressed, 1);
}

// ---- R3: check-hygiene ----------------------------------------------------

TEST(CheckHygiene, BannedConstructsAreFound) {
  const LintResult r = lint_one("fx/hygiene.cpp", R"cpp(
#include <cassert>
void f(int x) {
  assert(x > 0);
  std::cerr << "raw log\n";
  int* p = new int[4];
  delete[] p;
}
)cpp");
  EXPECT_EQ(count_rule(r, kRuleCheckHygiene), 4);
}

TEST(CheckHygiene, ProjectIdiomsAreClean) {
  const LintResult r = lint_one("fx/hygiene.cpp", R"cpp(
#include <new>
void g(void* buf, int x) {
  GPUQOS_CHECK(x > 0, "positive");
  GPUQOS_LOG(Info, "stamped");
  ::new (buf) int(x);      // placement new: no allocation
  auto owned = std::make_unique<int>(x);
}
struct NoCopy {
  NoCopy(const NoCopy&) = delete;
  void* operator new(std::size_t) = delete;
};
)cpp");
  EXPECT_TRUE(r.findings.empty());
}

TEST(CheckHygiene, ArenaNolintIsHonored) {
  const LintResult r = lint_one("fx/hygiene.cpp", R"cpp(
void arena(int x) {
  // NOLINT-gpuqos(check-hygiene): heap-fallback arena, freed by the pool
  int* p = new int(x);
  // NOLINT-gpuqos(check-hygiene): arena release
  delete p;
}
)cpp");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.nolint_suppressed, 2);
}

// ---- R4: header-hygiene ---------------------------------------------------

TEST(HeaderHygiene, UnguardedHeaderIsFound) {
  const LintResult r = lint_one("fx/raw.hpp", "struct Unguarded {};\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, kRuleHeaderHygiene);
}

TEST(HeaderHygiene, PragmaOnceAndIncludeGuardsAreClean) {
  EXPECT_TRUE(
      lint_one("fx/a.hpp", "// comment\n#pragma once\nstruct A {};\n")
          .findings.empty());
  EXPECT_TRUE(lint_one("fx/b.hpp",
                       "#ifndef FX_B_HPP\n#define FX_B_HPP\nstruct B {};\n"
                       "#endif\n")
                  .findings.empty());
  // Non-headers carry no guard obligation.
  EXPECT_TRUE(lint_one("fx/c.cpp", "struct C {};\n").findings.empty());
}

TEST(HeaderHygiene, FileWideNolintSuppresses) {
  const LintResult r = lint_one(
      "fx/gen.hpp",
      "// NOLINT-gpuqos-file(header-hygiene): generated fragment\n"
      "struct Generated {};\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.nolint_suppressed, 1);
}

// ---- Baseline and output formats ------------------------------------------

TEST(Baseline, FingerprintsFilterAndSurviveLineShifts) {
  const std::string drifting = R"cpp(
#pragma once
struct Drifting {
  void save(StateWriter& w) const { w.u64(a_); }
  void load(StateReader& r) { a_ = r.u64(); }
  std::uint64_t a_ = 0;
  std::uint64_t b_ = 0;
};
)cpp";
  LintResult first = lint_one("fx/base.hpp", drifting);
  ASSERT_EQ(first.findings.size(), 2u);
  // Fingerprints are rule|file|symbol: the save and load findings for b_
  // collapse into one entry, so the whole symbol is baselined at once.
  const std::set<std::string> baseline =
      parse_baseline(to_baseline(first));
  EXPECT_EQ(baseline.size(), 1u);

  // Shift every line: fingerprints are line-free, so the baseline holds.
  LintResult second = lint_one("fx/base.hpp", "\n\n\n" + drifting);
  apply_baseline(second, baseline);
  EXPECT_TRUE(second.findings.empty());
  EXPECT_EQ(second.baseline_filtered, 2);

  // A new violation is NOT absorbed by the old baseline.
  std::string grown = drifting;
  grown.insert(grown.find("std::uint64_t b_"), "std::uint64_t c_ = 0;\n  ");
  LintResult third = lint_one("fx/base.hpp", grown);
  apply_baseline(third, baseline);
  ASSERT_EQ(third.findings.size(), 2u);  // save + load for c_
  EXPECT_TRUE(has_symbol(third, "Drifting::c_"));
}

TEST(Baseline, ParserIgnoresCommentsAndBlanks) {
  const std::set<std::string> b = parse_baseline(
      "# header comment\n\n  state-coverage|src/a.hpp|A::x_  \r\n");
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(*b.begin(), "state-coverage|src/a.hpp|A::x_");
}

TEST(Formats, JsonAndGithubCarryRuleFileLine) {
  const LintResult r = lint_one("fx/raw.hpp", "struct Unguarded {};\n");
  ASSERT_EQ(r.findings.size(), 1u);
  const std::string json = format_json(r);
  EXPECT_NE(json.find("\"rule\": \"header-hygiene\""), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"fx/raw.hpp\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  const std::string gh = format_github(r);
  EXPECT_NE(gh.find("::error file=fx/raw.hpp,line=1,"
                    "title=gpuqos-lint(header-hygiene)::"),
            std::string::npos);
}

TEST(Formats, RuleFilterRunsOnlySelectedRules) {
  LintOptions opts;
  opts.rules.insert(kRuleCheckHygiene);
  const LintResult r = lint_one("fx/raw.hpp",
                                "void f() { std::cerr << 1; }\n", opts);
  EXPECT_EQ(count_rule(r, kRuleCheckHygiene), 1);
  EXPECT_EQ(count_rule(r, kRuleHeaderHygiene), 0);  // unguarded, but off
}

}  // namespace
}  // namespace gpuqos::lint
