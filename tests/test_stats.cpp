#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gpuqos {
namespace {

TEST(StatRegistry, CountersAccumulate) {
  StatRegistry s;
  s.add("a");
  s.add("a", 4);
  EXPECT_EQ(s.counter("a"), 5u);
  EXPECT_EQ(s.counter("missing"), 0u);
  EXPECT_TRUE(s.has_counter("a"));
  EXPECT_FALSE(s.has_counter("missing"));
}

TEST(StatRegistry, CounterPtrStableAcrossInsertions) {
  StatRegistry s;
  std::uint64_t* p = s.counter_ptr("hot");
  for (int i = 0; i < 1000; ++i) {
    // Built with += rather than `"k" + std::to_string(i)`: GCC 12's
    // -Wrestrict false-positives on the inlined operator+ insert at -O3.
    std::string name = "k";
    name += std::to_string(i);
    s.add(name);
  }
  *p += 7;
  EXPECT_EQ(s.counter("hot"), 7u);
}

TEST(StatRegistry, ClearZeroesButKeepsPointersValid) {
  StatRegistry s;
  std::uint64_t* p = s.counter_ptr("x");
  *p = 42;
  s.clear();
  EXPECT_EQ(s.counter("x"), 0u);
  *p = 3;
  EXPECT_EQ(s.counter("x"), 3u);
}

TEST(StatRegistry, SinceSubtractsBaseline) {
  StatRegistry s;
  s.add("n", 10);
  const auto snap = s.counters();
  s.add("n", 5);
  s.add("m", 2);
  EXPECT_EQ(s.since("n", snap), 5u);
  EXPECT_EQ(s.since("m", snap), 2u);
  EXPECT_EQ(s.since("absent", snap), 0u);
}

TEST(StatRegistry, ScalarsStored) {
  StatRegistry s;
  s.set("f", 2.5);
  EXPECT_DOUBLE_EQ(s.scalar("f"), 2.5);
  EXPECT_DOUBLE_EQ(s.scalar("g"), 0.0);
}

TEST(StatRegistry, ReportFiltersByPrefix) {
  StatRegistry s;
  s.add("llc.hit", 1);
  s.add("dram.reads", 2);
  const std::string rep = s.report("llc.");
  EXPECT_NE(rep.find("llc.hit 1"), std::string::npos);
  EXPECT_EQ(rep.find("dram"), std::string::npos);
}

TEST(StatRegistry, ToJsonEmitsCountersAndScalarsInStableOrder) {
  StatRegistry s;
  s.add("b.count", 2);
  s.add("a.count", 1);
  s.set("z.rate", 0.5);
  s.set("y.rate", 1.5);
  EXPECT_EQ(s.to_json(),
            "{\"counters\":{\"a.count\":1,\"b.count\":2},"
            "\"scalars\":{\"y.rate\":1.5,\"z.rate\":0.5}}");
}

TEST(StatRegistry, ToJsonEmptyRegistry) {
  StatRegistry s;
  EXPECT_EQ(s.to_json(), "{\"counters\":{},\"scalars\":{}}");
}

TEST(StatRegistry, ToJsonEscapesKeys) {
  StatRegistry s;
  s.add("weird\"key\\n", 1);
  const std::string j = s.to_json();
  EXPECT_NE(j.find("\\\"key\\\\n"), std::string::npos);
}

TEST(Geomean, Basics) {
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(geomean({1.0, 0.0}), 0.0);  // non-positive guard
}

}  // namespace
}  // namespace gpuqos
