#include "cache/llc.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sched/bypass.hpp"

namespace gpuqos {
namespace {

/// Harness that plays the DRAM side: records requests and lets the test
/// complete them explicitly.
struct LlcHarness {
  Engine engine;
  StatRegistry stats;
  LlcConfig cfg;
  SharedLlc llc;
  std::vector<MemRequest> mem_requests;
  std::vector<std::pair<unsigned, Addr>> back_invals;
  bool back_inval_dirty = false;

  explicit LlcHarness(LlcConfig c = make_cfg()) : cfg(c), llc(engine, cfg, stats) {
    llc.set_mem_sender([this](MemRequest&& r) { mem_requests.push_back(std::move(r)); });
    llc.set_back_invalidate([this](unsigned core, Addr a) {
      back_invals.emplace_back(core, a);
      return back_inval_dirty;
    });
  }

  static LlcConfig make_cfg() {
    LlcConfig c;
    c.size_bytes = 64 * KiB;  // 64 sets x 16 ways
    c.mshrs = 4;
    return c;
  }

  void complete_mem(std::size_t i) {
    auto cb = std::move(mem_requests[i].on_complete);
    if (cb) cb(engine.now());
  }

  MemRequest read(Addr a, SourceId src, std::function<void(Cycle)> done,
                  GpuAccessClass g = GpuAccessClass::None) {
    MemRequest r;
    r.addr = a;
    r.is_write = false;
    r.source = src;
    r.gclass = g;
    r.on_complete = std::move(done);
    return r;
  }
};

TEST(SharedLlc, ReadMissGoesToMemoryThenHits) {
  LlcHarness h;
  Cycle done_at = kNoCycle;
  h.llc.request(h.read(0x1000, SourceId::cpu(0),
                       [&](Cycle c) { done_at = c; }));
  h.engine.run_for(h.cfg.latency + 2);
  ASSERT_EQ(h.mem_requests.size(), 1u);
  EXPECT_FALSE(h.mem_requests[0].is_write);
  EXPECT_EQ(done_at, kNoCycle);  // still waiting on DRAM
  h.complete_mem(0);
  h.engine.run_for(1);
  EXPECT_NE(done_at, kNoCycle);

  // Second access hits without further memory traffic.
  Cycle hit_at = kNoCycle;
  h.llc.request(h.read(0x1000, SourceId::cpu(0), [&](Cycle c) { hit_at = c; }));
  h.engine.run_for(h.cfg.latency + 2);
  EXPECT_NE(hit_at, kNoCycle);
  EXPECT_EQ(h.mem_requests.size(), 1u);
  EXPECT_EQ(h.stats.counter("llc.hit.cpu"), 1u);
}

TEST(SharedLlc, HitLatencyMatchesConfig) {
  LlcHarness h;
  MemRequest warm;
  warm.addr = 0x40;
  warm.is_write = true;  // write-allocates without DRAM
  warm.source = SourceId::cpu(0);
  h.llc.request(std::move(warm));
  h.engine.run_for(h.cfg.latency + 1);

  const Cycle start = h.engine.now();
  Cycle done = kNoCycle;
  h.llc.request(h.read(0x40, SourceId::cpu(0), [&](Cycle c) { done = c; }));
  h.engine.run_for(h.cfg.latency + 2);
  ASSERT_NE(done, kNoCycle);
  EXPECT_EQ(done - start, h.cfg.latency);
}

TEST(SharedLlc, WriteAllocatesWithoutDramRead) {
  LlcHarness h;
  MemRequest w;
  w.addr = 0x2000;
  w.is_write = true;
  w.source = SourceId::gpu();
  w.gclass = GpuAccessClass::Color;
  h.llc.request(std::move(w));
  h.engine.run_for(h.cfg.latency + 1);
  EXPECT_TRUE(h.mem_requests.empty());  // paper footnote 6
  EXPECT_EQ(h.stats.counter("llc.miss.gpu"), 1u);
  EXPECT_EQ(h.llc.tags().gpu_blocks(), 1u);
}

TEST(SharedLlc, CoalescesMissesToSameBlock) {
  LlcHarness h;
  int done = 0;
  h.llc.request(h.read(0x3000, SourceId::cpu(0), [&](Cycle) { ++done; }));
  h.llc.request(h.read(0x3000, SourceId::cpu(1), [&](Cycle) { ++done; }));
  h.engine.run_for(h.cfg.latency + 2);
  EXPECT_EQ(h.mem_requests.size(), 1u);
  h.complete_mem(0);
  h.engine.run_for(1);
  EXPECT_EQ(done, 2);
  EXPECT_EQ(h.stats.counter("llc.mshr_coalesced"), 1u);
}

TEST(SharedLlc, DefersMissesBeyondMshrCapacity) {
  LlcHarness h;  // 4 MSHRs
  int done = 0;
  for (Addr a = 0; a < 6; ++a) {
    h.llc.request(
        h.read(0x10000 + a * 64, SourceId::cpu(0), [&](Cycle) { ++done; }));
  }
  h.engine.run_for(h.cfg.latency + 4);
  EXPECT_EQ(h.mem_requests.size(), 4u);  // capacity
  EXPECT_GT(h.stats.counter("llc.deferred_reads"), 0u);
  // Completing one admits one parked miss.
  h.complete_mem(0);
  h.engine.run_for(2);
  EXPECT_EQ(h.mem_requests.size(), 5u);
  for (std::size_t i = 1; i < h.mem_requests.size(); ++i) h.complete_mem(i);
  h.engine.run_for(2);
  h.complete_mem(5);
  h.engine.run_for(2);
  EXPECT_EQ(done, 6);
}

TEST(SharedLlc, CpuEvictionBackInvalidates) {
  LlcConfig cfg;
  cfg.size_bytes = 1 * KiB;  // 1 set x 16 ways
  cfg.ways = 16;
  cfg.mshrs = 32;
  LlcHarness h(cfg);
  // Fill the single set with 16 CPU write-allocates, then one more evicts.
  for (Addr i = 0; i < 17; ++i) {
    MemRequest w;
    w.addr = i * 1024;  // same set (1 set total)
    w.is_write = true;
    w.source = SourceId::cpu(3);
    h.llc.request(std::move(w));
  }
  h.engine.run_for(64);
  ASSERT_FALSE(h.back_invals.empty());
  EXPECT_EQ(h.back_invals[0].first, 3u);
  // Dirty LLC line is written back to DRAM.
  ASSERT_FALSE(h.mem_requests.empty());
  EXPECT_TRUE(h.mem_requests[0].is_write);
}

TEST(SharedLlc, GpuEvictionDoesNotBackInvalidate) {
  LlcConfig cfg;
  cfg.size_bytes = 1 * KiB;
  cfg.ways = 16;
  cfg.mshrs = 32;
  LlcHarness h(cfg);
  for (Addr i = 0; i < 18; ++i) {
    MemRequest w;
    w.addr = i * 1024;
    w.is_write = true;
    w.source = SourceId::gpu();
    w.gclass = GpuAccessClass::Depth;
    h.llc.request(std::move(w));
  }
  h.engine.run_for(64);
  EXPECT_TRUE(h.back_invals.empty());
  EXPECT_GT(h.stats.counter("llc.gpu_evictions"), 0u);
}

TEST(SharedLlc, ForceBypassSkipsGpuFills) {
  LlcHarness h;
  ForceBypassPolicy bypass;
  h.llc.set_bypass_policy(&bypass);
  Cycle done = kNoCycle;
  h.llc.request(h.read(0x5000, SourceId::gpu(), [&](Cycle c) { done = c; },
                       GpuAccessClass::Texture));
  h.engine.run_for(h.cfg.latency + 2);
  h.complete_mem(0);
  h.engine.run_for(1);
  EXPECT_NE(done, kNoCycle);
  EXPECT_FALSE(h.llc.tags().probe(0x5000));  // not installed
  EXPECT_EQ(h.stats.counter("llc.fill_bypassed.gpu"), 1u);

  // CPU fills are never bypassed.
  h.llc.request(h.read(0x6000, SourceId::cpu(0), [](Cycle) {}));
  h.engine.run_for(h.cfg.latency + 2);
  h.complete_mem(1);
  h.engine.run_for(1);
  EXPECT_TRUE(h.llc.tags().probe(0x6000));
}

TEST(SharedLlc, PortContentionSerializesLookups) {
  LlcConfig cfg = LlcHarness::make_cfg();
  cfg.ports = 1;
  LlcHarness h(cfg);
  // Warm two blocks via writes.
  for (Addr a : {0x0ull, 0x40ull}) {
    MemRequest w;
    w.addr = a;
    w.is_write = true;
    w.source = SourceId::cpu(0);
    h.llc.request(std::move(w));
    h.engine.run_for(h.cfg.latency + 1);
  }
  const Cycle start = h.engine.now();
  Cycle d0 = kNoCycle, d1 = kNoCycle;
  h.llc.request(h.read(0x0, SourceId::cpu(0), [&](Cycle c) { d0 = c; }));
  h.llc.request(h.read(0x40, SourceId::cpu(0), [&](Cycle c) { d1 = c; }));
  h.engine.run_for(h.cfg.latency + 4);
  ASSERT_NE(d0, kNoCycle);
  ASSERT_NE(d1, kNoCycle);
  EXPECT_EQ(d0 - start, h.cfg.latency);
  EXPECT_EQ(d1 - start, h.cfg.latency + 1);  // second port slot
}

}  // namespace
}  // namespace gpuqos
