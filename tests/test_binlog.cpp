// Binary telemetry stream (obs/binlog.hpp): encode/decode round-trips for
// every field type, byte-identical reconstruction of the native JSONL/CSV/
// Chrome-trace writers, and rejection of malformed input. The format is
// frozen (docs/OBSERVABILITY.md), so these tests double as the format spec.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "obs/binlog.hpp"
#include "obs/journal.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"

namespace gpuqos {
namespace {

// ------------------------------------------------------------- round-trips

TEST(BinLog, VarintEdgeValuesRoundTrip) {
  const std::vector<std::uint64_t> edges = {
      0,
      1,
      127,
      128,
      16383,
      16384,
      (1ull << 32) - 1,
      1ull << 32,
      (1ull << 56) - 1,
      std::numeric_limits<std::uint64_t>::max() - 1,
      std::numeric_limits<std::uint64_t>::max()};
  BinLogWriter w;
  const std::uint32_t id = w.define_stream("edge", {{"v", BinField::U64}});
  for (std::uint64_t v : edges) {
    w.begin_row(id);
    w.u64(v);
    w.end_row();
  }
  BinLogReader r(w.bytes());
  BinRow row;
  for (std::uint64_t v : edges) {
    ASSERT_TRUE(r.next(row));
    EXPECT_EQ(row.values[0].u, v);
  }
  EXPECT_FALSE(r.next(row));
}

TEST(BinLog, SignedZigzagRoundTrip) {
  const std::vector<std::int64_t> edges = {
      0, -1, 1, -64, 63, -65, 64,
      std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max()};
  BinLogWriter w;
  const std::uint32_t id = w.define_stream("sz", {{"v", BinField::I64}});
  for (std::int64_t v : edges) {
    w.begin_row(id);
    w.i64(v);
    w.end_row();
  }
  BinLogReader r(w.bytes());
  BinRow row;
  for (std::int64_t v : edges) {
    ASSERT_TRUE(r.next(row));
    EXPECT_EQ(row.values[0].i, v);
  }
}

TEST(BinLog, AllFieldTypesRoundTrip) {
  BinLogWriter w;
  const std::uint32_t id =
      w.define_stream("all", {{"u", BinField::U64},
                              {"i", BinField::I64},
                              {"d", BinField::F64},
                              {"s", BinField::Str},
                              {"b", BinField::Bool},
                              {"ku", BinField::KvU64},
                              {"kd", BinField::KvF64}});
  const std::map<std::string, std::uint64_t> ku = {{"a", 1}, {"bb", 2}};
  const std::map<std::string, double> kd = {{"x", -0.5}, {"y", 1e300}};
  w.begin_row(id);
  w.u64(42);
  w.i64(-7);
  w.f64(3.25);
  w.str("hello \"quoted\"\n");
  w.boolean(true);
  w.kv_u64(ku);
  w.kv_f64(kd);
  w.end_row();

  BinLogReader r(w.bytes());
  BinRow row;
  ASSERT_TRUE(r.next(row));
  ASSERT_EQ(row.def->name, "all");
  ASSERT_EQ(row.values.size(), 7u);
  EXPECT_EQ(row.values[0].u, 42u);
  EXPECT_EQ(row.values[1].i, -7);
  EXPECT_DOUBLE_EQ(row.values[2].d, 3.25);
  EXPECT_EQ(row.values[3].s, "hello \"quoted\"\n");
  EXPECT_EQ(row.values[4].u, 1u);
  ASSERT_EQ(row.values[5].kv_u.size(), 2u);
  EXPECT_EQ(row.values[5].kv_u[0].first, "a");
  EXPECT_EQ(row.values[5].kv_u[0].second, 1u);
  EXPECT_EQ(row.values[5].kv_u[1].first, "bb");
  ASSERT_EQ(row.values[6].kv_d.size(), 2u);
  EXPECT_DOUBLE_EQ(row.values[6].kv_d[0].second, -0.5);
  EXPECT_DOUBLE_EQ(row.values[6].kv_d[1].second, 1e300);
  EXPECT_FALSE(r.next(row));
}

TEST(BinLog, DictionaryKeysInternedOnce) {
  BinLogWriter w;
  const std::uint32_t id = w.define_stream("kv", {{"m", BinField::KvU64}});
  const std::map<std::string, std::uint64_t> kv = {
      {"a_rather_long_counter_name", 1}};
  for (int i = 0; i < 50; ++i) {
    w.begin_row(id);
    w.kv_u64(kv);
    w.end_row();
  }
  // 50 rows but the key is stored once: well under 50x the key length.
  EXPECT_LT(w.bytes().size(), 50 * kv.begin()->first.size());
  BinLogReader r(w.bytes());
  BinRow row;
  int rows = 0;
  while (r.next(row)) {
    ASSERT_EQ(row.values[0].kv_u.size(), 1u);
    EXPECT_EQ(row.values[0].kv_u[0].first, "a_rather_long_counter_name");
    ++rows;
  }
  EXPECT_EQ(rows, 50);
}

TEST(BinLog, MultipleStreamsInterleaved) {
  BinLogWriter w;
  const std::uint32_t a = w.define_stream("a", {{"v", BinField::U64}});
  const std::uint32_t b = w.define_stream("b", {{"v", BinField::Str}});
  w.begin_row(a);
  w.u64(1);
  w.end_row();
  w.begin_row(b);
  w.str("x");
  w.end_row();
  w.begin_row(a);
  w.u64(2);
  w.end_row();

  BinLogReader r(w.bytes());
  BinRow row;
  ASSERT_TRUE(r.next(row));
  EXPECT_EQ(row.def->name, "a");
  ASSERT_TRUE(r.next(row));
  EXPECT_EQ(row.def->name, "b");
  ASSERT_TRUE(r.next(row));
  // `def` pointers from earlier rows must survive later stream definitions
  // (the reader stores definitions in a deque, not a reallocating vector).
  EXPECT_EQ(row.def->name, "a");
  EXPECT_EQ(row.values[0].u, 2u);
}

// --------------------------------------------- byte-identical reconstruction

StatRegistry& test_registry() {
  static StatRegistry stats;
  return stats;
}

IntervalSampler sampled_fixture() {
  IntervalSampler s;
  StatRegistry& stats = test_registry();
  std::uint64_t* c1 = stats.counter_ptr("alpha.count");
  std::uint64_t* c2 = stats.counter_ptr("beta.bytes");
  s.bind(&stats);
  double gauge = 0.0;
  s.add_gauge("load", [&gauge] { return gauge; });
  s.rebase(0);
  for (int i = 1; i <= 5; ++i) {
    *c1 += static_cast<std::uint64_t>(i);
    *c2 += 1000ull * static_cast<std::uint64_t>(i);
    gauge = 0.125 * i;
    s.sample(static_cast<Cycle>(i) * 1000);
  }
  return s;
}

TEST(BinLog, SamplerJsonlByteIdentical) {
  IntervalSampler s = sampled_fixture();
  std::ostringstream native;
  s.write_jsonl(native);

  BinLogWriter w;
  s.write_binlog(w);
  BinLogReader r(w.bytes());
  std::ostringstream decoded;
  binlog_to_jsonl(r, "samples", decoded);
  EXPECT_EQ(decoded.str(), native.str());
}

TEST(BinLog, SamplerCsvByteIdentical) {
  IntervalSampler s = sampled_fixture();
  std::ostringstream native;
  s.write_csv(native);

  BinLogWriter w;
  s.write_binlog(w);
  BinLogReader r(w.bytes());
  std::ostringstream decoded;
  binlog_to_csv(r, "samples", decoded);
  EXPECT_EQ(decoded.str(), native.str());
}

TEST(BinLog, JournalJsonlByteIdentical) {
  QosJournal j;
  j.mark(10, "measure_start");
  j.record_prediction(100, 1, 52000.5, 50000.0);
  j.record_prediction(200, 2, 49000.0, 0.0);  // actual=0: err_pct renders 0
  j.record_wg_change(300, 0, 16, 2, 52000.5, 50000.0, 1234);
  j.record_prio_flip(400, true, 52000.5, 50000.0);
  j.record_relearn(500, 3);
  j.record_prio_flip(600, false, 48000.0, 50000.0);
  std::ostringstream native;
  j.write_jsonl(native);

  BinLogWriter w;
  j.write_binlog(w);
  BinLogReader r(w.bytes());
  std::ostringstream decoded;
  // The dot-prefix selector gathers every journal.* stream in file order,
  // which preserves the entry chronology across kinds.
  binlog_to_jsonl(r, "journal", decoded);
  EXPECT_EQ(decoded.str(), native.str());
}

TEST(BinLog, ChromeTraceByteIdentical) {
  TraceWriter t;
  t.name_process("binlog test");
  t.name_thread(TraceWriter::kTidFrames, "frames");
  t.complete("frame 0", TraceWriter::kTidFrames, 100, 5100,
             "\"frame\":0,\"gpu_cycles\":5000");
  t.counter("atu.wg", 2000, 16.0);
  t.instant("measure_start", TraceWriter::kTidControl, 3000);
  std::ostringstream native;
  t.write(native);

  BinLogWriter w;
  t.write_binlog(w);
  BinLogReader r(w.bytes());
  std::ostringstream decoded;
  binlog_to_chrome_trace(r, decoded);
  EXPECT_EQ(decoded.str(), native.str());
}

TEST(BinLog, StreamSelectorPrefixSemantics) {
  EXPECT_TRUE(binlog_stream_matches("samples", "samples"));
  EXPECT_TRUE(binlog_stream_matches("journal", "journal.wg"));
  EXPECT_TRUE(binlog_stream_matches("journal.wg", "journal.wg"));
  EXPECT_FALSE(binlog_stream_matches("journal.wg", "journal"));
  EXPECT_FALSE(binlog_stream_matches("jour", "journal.wg"));
  EXPECT_FALSE(binlog_stream_matches("samples", "journal.wg"));
}

// ------------------------------------------------------------ malformed input

TEST(BinLog, RejectsBadMagic) {
  std::vector<std::uint8_t> bytes = {'N', 'O', 'P', 'E', 1};
  EXPECT_THROW(BinLogReader r(std::move(bytes)), BinLogError);
}

TEST(BinLog, RejectsUnknownVersion) {
  std::vector<std::uint8_t> bytes = {'G', 'Q', 'B', 'L', 99};
  EXPECT_THROW(BinLogReader r(std::move(bytes)), BinLogError);
}

TEST(BinLog, RejectsTruncatedRow) {
  BinLogWriter w;
  const std::uint32_t id = w.define_stream("t", {{"s", BinField::Str}});
  w.begin_row(id);
  w.str("a string long enough to truncate mid-payload");
  w.end_row();
  std::vector<std::uint8_t> bytes = w.bytes();
  bytes.resize(bytes.size() - 10);
  BinLogReader r(std::move(bytes));
  BinRow row;
  EXPECT_THROW((void)r.next(row), BinLogError);
}

TEST(BinLog, RejectsUnknownOpcode) {
  std::vector<std::uint8_t> bytes = {'G', 'Q', 'B', 'L', 1, 0x7F};
  BinLogReader r(std::move(bytes));
  BinRow row;
  EXPECT_THROW((void)r.next(row), BinLogError);
}

TEST(BinLog, RejectsRowForUndefinedStream) {
  // Opcode 0x02 (row) naming stream id 5 with no definitions seen.
  std::vector<std::uint8_t> bytes = {'G', 'Q', 'B', 'L', 1, 0x02, 5};
  BinLogReader r(std::move(bytes));
  BinRow row;
  EXPECT_THROW((void)r.next(row), BinLogError);
}

TEST(BinLog, WriterEnforcesSchemaOrder) {
  BinLogWriter w;
  const std::uint32_t id =
      w.define_stream("s", {{"a", BinField::U64}, {"b", BinField::Str}});
  w.begin_row(id);
  w.u64(1);
  w.str("ok");
  w.end_row();
  EXPECT_EQ(w.rows(), 1u);
}

TEST(BinLog, CsvRejectsMultiStreamSelector) {
  BinLogWriter w;
  const std::uint32_t a = w.define_stream("j.a", {{"v", BinField::U64}});
  const std::uint32_t b = w.define_stream("j.b", {{"v", BinField::U64}});
  w.begin_row(a);
  w.u64(1);
  w.end_row();
  w.begin_row(b);
  w.u64(2);
  w.end_row();
  BinLogReader r(w.bytes());
  std::ostringstream os;
  EXPECT_THROW(binlog_to_csv(r, "j", os), BinLogError);
}

}  // namespace
}  // namespace gpuqos
