#!/usr/bin/env bash
# Binary telemetry acceptance (docs/OBSERVABILITY.md): a gpuqos_run --binlog
# capture, decoded with obs_cat, must reproduce the natively written JSONL
# and Chrome-trace artifacts byte for byte — and turning the full
# observability stack on must not move the determinism digest.
set -euo pipefail

GPUQOS_RUN=$1
OBS_CAT=$2
WORK=$3

mkdir -p "$WORK"
export GPUQOS_FAST=1

"$GPUQOS_RUN" M8 ThrotCPUprio \
    --sample-interval 100000 \
    --samples-out "$WORK/samples.jsonl" \
    --journal-out "$WORK/journal.jsonl" \
    --trace-out "$WORK/trace.json" \
    --prof-out "$WORK/profile.json" \
    --counters-out "$WORK/counters.json" \
    --binlog "$WORK/run.binlog" \
    --digest-out "$WORK/obs.digest" --digest-interval 500000 > /dev/null

echo "stream listing:"
"$OBS_CAT" "$WORK/run.binlog"

"$OBS_CAT" "$WORK/run.binlog" --stream samples --format jsonl \
    --out "$WORK/samples.decoded.jsonl"
cmp "$WORK/samples.jsonl" "$WORK/samples.decoded.jsonl"
echo "samples: byte-identical"

"$OBS_CAT" "$WORK/run.binlog" --stream journal --format jsonl \
    --out "$WORK/journal.decoded.jsonl"
cmp "$WORK/journal.jsonl" "$WORK/journal.decoded.jsonl"
echo "journal: byte-identical"

"$OBS_CAT" "$WORK/run.binlog" --format trace --out "$WORK/trace.decoded.json"
cmp "$WORK/trace.json" "$WORK/trace.decoded.json"
echo "trace: byte-identical"

# CSV decode of the samples stream must parse (header + one line per sample).
"$OBS_CAT" "$WORK/run.binlog" --stream samples --format csv \
    --out "$WORK/samples.csv"
lines=$(wc -l < "$WORK/samples.csv")
samples=$(wc -l < "$WORK/samples.jsonl")
if [ "$lines" -ne $((samples + 1)) ]; then
    echo "csv has $lines lines, expected $((samples + 1))" >&2
    exit 1
fi
echo "csv: $((lines - 1)) rows"

# Malformed input is rejected with exit 1 (not a crash).
head -c 64 "$WORK/run.binlog" > "$WORK/truncated.binlog"
if "$OBS_CAT" "$WORK/truncated.binlog" --stream samples --format jsonl \
    > /dev/null 2> "$WORK/truncated.err"; then
    echo "truncated binlog was accepted" >&2
    exit 1
fi
grep -q "obs_cat:" "$WORK/truncated.err"
echo "truncated input: rejected cleanly"

# The full observability stack must not perturb the simulation: the digest
# stream recorded above must equal one from an uninstrumented run.
"$GPUQOS_RUN" M8 ThrotCPUprio \
    --digest-out "$WORK/plain.digest" --digest-interval 500000 > /dev/null
cmp "$WORK/obs.digest" "$WORK/plain.digest"
echo "digest: identical with and without observability"
