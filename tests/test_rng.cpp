#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace gpuqos {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsIndependentOfParentDraws) {
  Rng parent(77);
  Rng fork1 = parent.fork(5);
  Rng parent2(77);
  Rng fork2 = parent2.fork(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(fork1.next_u64(), fork2.next_u64());
}

TEST(Rng, ForksWithDifferentTagsDiffer) {
  Rng parent(77);
  Rng a = parent.fork(1), b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
  // All residues eventually hit.
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(10);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng r(12);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

class RngGeometricTest : public ::testing::TestWithParam<double> {};

TEST_P(RngGeometricTest, MeanMatches) {
  const double mean = GetParam();
  Rng r(static_cast<std::uint64_t>(mean * 1000));
  double sum = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const auto g = r.geometric(mean);
    EXPECT_GE(g, 1u);
    sum += static_cast<double>(g);
  }
  EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.1);
}

INSTANTIATE_TEST_SUITE_P(Means, RngGeometricTest,
                         ::testing::Values(1.5, 2.0, 3.0, 5.0, 10.0, 30.0));

TEST(Rng, GeometricDegenerateMean) {
  Rng r(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.geometric(0.5), 1u);
}

}  // namespace
}  // namespace gpuqos
