// End-to-end integration tests on the assembled heterogeneous CMP. Budgets
// are deliberately tiny; these verify wiring and directional behaviour, not
// paper-scale numbers (the bench/ harnesses do that).
#include <gtest/gtest.h>

#include "sim/hetero_cmp.hpp"
#include "sim/metrics.hpp"
#include "sim/runner.hpp"
#include "workloads/spec.hpp"

namespace gpuqos {
namespace {

RunScale tiny_scale() {
  RunScale s;
  s.warm_instrs = 20'000;
  s.measure_instrs = 100'000;
  s.warm_frames = 1;
  s.measure_frames = 1;
  s.warm_min_cycles = 200'000;
  s.max_cycles = 60'000'000;
  return s;
}

TEST(Integration, StandaloneCpuProducesPlausibleIpc) {
  const SimConfig cfg = Presets::scaled();
  const double ipc = standalone_cpu_ipc(cfg, 401, tiny_scale());
  EXPECT_GT(ipc, 0.2);
  EXPECT_LT(ipc, 4.0);
}

TEST(Integration, StandaloneGpuRendersFrames) {
  const SimConfig cfg = Presets::scaled();
  const auto r = standalone_gpu(cfg, gpu_app("UT2004"), tiny_scale());
  EXPECT_FALSE(r.hit_cycle_cap);
  EXPECT_GT(r.fps, 0.0);
  EXPECT_GT(r.gpu_frame_cycles, 0.0);
  EXPECT_GT(r.stat("gpu.fragments"), 0u);
}

TEST(Integration, HeterogeneousRunDegradesCpu) {
  const SimConfig cfg = Presets::scaled();
  const RunScale s = tiny_scale();
  const HeteroMix& m = mix("W13");
  SimConfig one = cfg;
  one.cpu_cores = 1;
  const double alone = standalone_cpu_ipc(one, m.cpu_specs[0], s);
  const auto h = run_hetero(one, m, Policy::Baseline, s);
  ASSERT_EQ(h.cpu_ipc.size(), 1u);
  EXPECT_LT(h.cpu_ipc[0], alone);  // contention must cost something
  EXPECT_GT(h.cpu_ipc[0], 0.0);
}

TEST(Integration, ThrottlingReducesGpuBandwidthAndHelpsCpu) {
  const SimConfig cfg = Presets::scaled();
  RunScale s = tiny_scale();
  s.warm_frames = 8;  // let the controller converge
  s.measure_frames = 5;
  s.measure_instrs = 400'000;
  const HeteroMix& m = mix("M13");  // UT2004: far above 40 FPS
  const auto base = run_hetero(cfg, m, Policy::Baseline, s);
  const auto thr = run_hetero(cfg, m, Policy::Throttle, s);
  ASSERT_FALSE(base.hit_cycle_cap);
  ASSERT_FALSE(thr.hit_cycle_cap);
  // GPU slowed toward the target...
  EXPECT_LT(thr.fps, base.fps);
  // ...its DRAM bandwidth demand dropped...
  const double base_bw =
      static_cast<double>(base.stat("dram.read_bytes.gpu")) / base.seconds;
  const double thr_bw =
      static_cast<double>(thr.stat("dram.read_bytes.gpu")) / thr.seconds;
  EXPECT_LT(thr_bw, base_bw);
  // ...and the CPU mix sped up.
  double base_sum = 0, thr_sum = 0;
  for (double v : base.cpu_ipc) base_sum += v;
  for (double v : thr.cpu_ipc) thr_sum += v;
  EXPECT_GT(thr_sum, base_sum);
}

TEST(Integration, EstimatorProducesSamplesInHeteroRun) {
  const SimConfig cfg = Presets::scaled();
  RunScale s = tiny_scale();
  s.warm_frames = 3;
  s.measure_frames = 3;
  const auto r = run_hetero(cfg, mix("M12"), Policy::Baseline, s);
  EXPECT_GT(r.est_samples, 0u);
  EXPECT_LT(std::abs(r.est_error_pct), 50.0);
}

class PolicySmokeTest : public ::testing::TestWithParam<Policy> {};

TEST_P(PolicySmokeTest, RunsToCompletionWithSaneOutputs) {
  const SimConfig cfg = Presets::scaled();
  const auto r = run_hetero(cfg, mix("M8"), GetParam(), tiny_scale());
  EXPECT_FALSE(r.hit_cycle_cap);
  EXPECT_GT(r.fps, 0.0);
  ASSERT_EQ(r.cpu_ipc.size(), 4u);
  for (double ipc : r.cpu_ipc) {
    EXPECT_GT(ipc, 0.0);
    EXPECT_LT(ipc, 4.0);
  }
  EXPECT_GT(r.stat("dram.reads"), 0u);
  EXPECT_GT(r.stat("llc.access.gpu"), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicySmokeTest,
    ::testing::Values(Policy::Baseline, Policy::Throttle,
                      Policy::ThrottleCpuPrio, Policy::Sms09, Policy::Sms0,
                      Policy::DynPrio, Policy::Helm, Policy::ForceBypass),
    [](const ::testing::TestParamInfo<Policy>& pinfo) {
      std::string n = to_string(pinfo.param);
      std::erase_if(n, [](char c) { return c == '-' || c == '.'; });
      return n;
    });

TEST(Integration, ForceBypassLeavesNoGpuReadFills) {
  const SimConfig cfg = Presets::scaled();
  const auto r = run_hetero(cfg, mix("W8"), Policy::ForceBypass, tiny_scale());
  EXPECT_GT(r.stat("llc.fill_bypassed.gpu"), 0u);
}

TEST(Integration, DeterministicAcrossRuns) {
  const SimConfig cfg = Presets::scaled();
  const RunScale s = tiny_scale();
  const auto a = run_hetero(cfg, mix("M10"), Policy::Baseline, s);
  const auto b = run_hetero(cfg, mix("M10"), Policy::Baseline, s);
  EXPECT_DOUBLE_EQ(a.fps, b.fps);
  ASSERT_EQ(a.cpu_ipc.size(), b.cpu_ipc.size());
  for (std::size_t i = 0; i < a.cpu_ipc.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.cpu_ipc[i], b.cpu_ipc[i]);
  }
  EXPECT_EQ(a.stat("dram.reads"), b.stat("dram.reads"));
}

TEST(Integration, TextureShareOfGpuLlcTrafficIsSubstantial) {
  // Paper Section IV: texture accesses are ~25% of GPU LLC accesses; our
  // scenes should keep texture traffic a first-class but not exclusive
  // component.
  const SimConfig cfg = Presets::scaled();
  const auto r = run_hetero(cfg, mix("M5"), Policy::Baseline, tiny_scale());
  const double tex = static_cast<double>(r.stat("llc.access.gpu.texture"));
  const double all = static_cast<double>(r.stat("llc.access.gpu"));
  ASSERT_GT(all, 0.0);
  EXPECT_GT(tex / all, 0.10);
  EXPECT_LT(tex / all, 0.90);
}

TEST(HeteroCmp, ConstructsAllPolicyWirings) {
  const SimConfig cfg = Presets::scaled();
  for (Policy p : {Policy::Baseline, Policy::Throttle, Policy::ThrottleCpuPrio,
                   Policy::Sms09, Policy::Sms0, Policy::DynPrio, Policy::Helm,
                   Policy::ForceBypass}) {
    HeteroCmp cmp(cfg, p, {spec_profile(401)}, {}, 1.0);
    EXPECT_EQ(cmp.num_cores(), 1u);
    EXPECT_EQ(cmp.policy(), p);
    cmp.engine().run_for(1000);  // no crash, makes progress
    EXPECT_GT(cmp.core(0).committed(), 0u);
  }
}

}  // namespace
}  // namespace gpuqos
