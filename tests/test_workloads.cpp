#include <gtest/gtest.h>

#include "workloads/gpu_apps.hpp"
#include "workloads/mixes.hpp"

namespace gpuqos {
namespace {

TEST(GpuApps, FourteenApplicationsInTableOrder) {
  const auto& apps = gpu_apps();
  ASSERT_EQ(apps.size(), 14u);
  EXPECT_EQ(apps[0].name, "3DMark06GT1");
  EXPECT_EQ(apps[6].name, "DOOM3");
  EXPECT_EQ(apps[13].name, "UT3");
}

TEST(GpuApps, ApiTagsMatchTableII) {
  EXPECT_EQ(gpu_app("DOOM3").api, "OGL");
  EXPECT_EQ(gpu_app("Quake4").api, "OGL");
  EXPECT_EQ(gpu_app("COR").api, "OGL");
  EXPECT_EQ(gpu_app("UT2004").api, "OGL");
  EXPECT_EQ(gpu_app("HL2").api, "DX");
  EXPECT_EQ(gpu_app("Crysis").api, "DX");
}

TEST(GpuApps, PaperFpsColumnMatchesTableII) {
  EXPECT_DOUBLE_EQ(gpu_app("3DMark06GT1").paper_fps, 6.0);
  EXPECT_DOUBLE_EQ(gpu_app("DOOM3").paper_fps, 81.0);
  EXPECT_DOUBLE_EQ(gpu_app("UT2004").paper_fps, 130.7);
  EXPECT_DOUBLE_EQ(gpu_app("L4D").paper_fps, 32.5);
}

TEST(GpuApps, UnknownNameThrows) {
  EXPECT_THROW((void)gpu_app("Skyrim"), std::out_of_range);
}

TEST(GpuApps, BuildFramesIsDeterministic) {
  const auto& app = gpu_app("NFS");
  const auto a = build_frames(app, 42);
  const auto b = build_frames(app, 42);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), app.frames);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].batches.size(), b[i].batches.size());
    for (std::size_t j = 0; j < a[i].batches.size(); ++j) {
      EXPECT_DOUBLE_EQ(a[i].batches[j].frags_per_tile_px,
                       b[i].batches[j].frags_per_tile_px);
      EXPECT_EQ(a[i].batches[j].blend, b[i].batches[j].blend);
    }
  }
}

TEST(GpuApps, FramesDoubleBufferColorSurfaces) {
  const auto frames = build_frames(gpu_app("DOOM3"), 1);
  ASSERT_GE(frames.size(), 2u);
  EXPECT_NE(frames[0].color_base, frames[1].color_base);
  EXPECT_EQ(frames[0].color_base, frames[2 % frames.size()].color_base);
}

TEST(GpuApps, MainPassesCoverAllTiles) {
  for (const auto& app : gpu_apps()) {
    const auto frames = build_frames(app, 7);
    for (const auto& f : frames) {
      ASSERT_FALSE(f.batches.empty());
      EXPECT_DOUBLE_EQ(f.batches[0].tile_coverage, 1.0)
          << app.name << ": the base pass must cover the render target so "
                         "RTP detection has a clean coverage signal";
      EXPECT_GT(f.num_tiles(), 0u);
    }
  }
}

class GpuAppParamTest : public ::testing::TestWithParam<int> {};

TEST_P(GpuAppParamTest, DescriptorInvariants) {
  const auto& app = gpu_apps()[static_cast<std::size_t>(GetParam())];
  EXPECT_GT(app.frames, 0u);
  EXPECT_GT(app.fps_scale, 0.0);
  EXPECT_GT(app.passes, 0u);
  EXPECT_GE(app.overdraw, 1.0);
  EXPECT_GT(app.texture_bytes, 0u);
  EXPECT_GE(app.mrt_targets, 1u);
  EXPECT_TRUE(app.api == "DX" || app.api == "OGL");
}

INSTANTIATE_TEST_SUITE_P(AllApps, GpuAppParamTest, ::testing::Range(0, 14));

TEST(Mixes, TableIIIExactComposition) {
  ASSERT_EQ(m_mixes().size(), 14u);
  ASSERT_EQ(w_mixes().size(), 14u);
  EXPECT_EQ(mix("M1").cpu_specs, (std::vector<int>{403, 450, 481, 482}));
  EXPECT_EQ(mix("M7").cpu_specs, (std::vector<int>{410, 433, 462, 471}));
  EXPECT_EQ(mix("M7").gpu_app, "DOOM3");
  EXPECT_EQ(mix("M14").cpu_specs, (std::vector<int>{403, 437, 450, 481}));
  EXPECT_EQ(mix("W2").cpu_specs, (std::vector<int>{471}));
  EXPECT_EQ(mix("W13").gpu_app, "UT2004");
  EXPECT_EQ(mix("W13").cpu_specs, (std::vector<int>{450}));
}

TEST(Mixes, HighLowSplitMatchesPaper) {
  const auto high = high_fps_mixes();
  ASSERT_EQ(high.size(), 6u);
  for (const auto& m : high) {
    EXPECT_GT(gpu_app(m.gpu_app).paper_fps, 40.0) << m.gpu_app;
  }
  const auto low = low_fps_mixes();
  ASSERT_EQ(low.size(), 8u);
  for (const auto& m : low) {
    EXPECT_LT(gpu_app(m.gpu_app).paper_fps, 40.0) << m.gpu_app;
  }
}

TEST(Mixes, EveryMixUsesKnownSpecsAndApps) {
  for (const auto& m : m_mixes()) {
    EXPECT_EQ(m.cpu_specs.size(), 4u);
    EXPECT_NO_THROW((void)gpu_app(m.gpu_app));
  }
  for (const auto& w : w_mixes()) {
    EXPECT_EQ(w.cpu_specs.size(), 1u);
    EXPECT_NO_THROW((void)gpu_app(w.gpu_app));
  }
  EXPECT_THROW((void)mix("M99"), std::out_of_range);
}

}  // namespace
}  // namespace gpuqos
