file(REMOVE_RECURSE
  "CMakeFiles/fig01_hetero_degradation.dir/fig01_hetero_degradation.cpp.o"
  "CMakeFiles/fig01_hetero_degradation.dir/fig01_hetero_degradation.cpp.o.d"
  "fig01_hetero_degradation"
  "fig01_hetero_degradation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_hetero_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
