file(REMOVE_RECURSE
  "CMakeFiles/fig02_fps_standalone_vs_hetero.dir/fig02_fps_standalone_vs_hetero.cpp.o"
  "CMakeFiles/fig02_fps_standalone_vs_hetero.dir/fig02_fps_standalone_vs_hetero.cpp.o.d"
  "fig02_fps_standalone_vs_hetero"
  "fig02_fps_standalone_vs_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_fps_standalone_vs_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
