# Empty dependencies file for fig02_fps_standalone_vs_hetero.
# This may be replaced when dependencies are built.
