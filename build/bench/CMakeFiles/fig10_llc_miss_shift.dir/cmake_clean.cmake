file(REMOVE_RECURSE
  "CMakeFiles/fig10_llc_miss_shift.dir/fig10_llc_miss_shift.cpp.o"
  "CMakeFiles/fig10_llc_miss_shift.dir/fig10_llc_miss_shift.cpp.o.d"
  "fig10_llc_miss_shift"
  "fig10_llc_miss_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_llc_miss_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
