# Empty dependencies file for fig10_llc_miss_shift.
# This may be replaced when dependencies are built.
