# Empty dependencies file for fig13_policy_comparison_low_fps.
# This may be replaced when dependencies are built.
