file(REMOVE_RECURSE
  "CMakeFiles/fig13_policy_comparison_low_fps.dir/fig13_policy_comparison_low_fps.cpp.o"
  "CMakeFiles/fig13_policy_comparison_low_fps.dir/fig13_policy_comparison_low_fps.cpp.o.d"
  "fig13_policy_comparison_low_fps"
  "fig13_policy_comparison_low_fps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_policy_comparison_low_fps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
