file(REMOVE_RECURSE
  "CMakeFiles/gpuqos_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/gpuqos_bench_util.dir/bench_util.cpp.o.d"
  "libgpuqos_bench_util.a"
  "libgpuqos_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuqos_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
