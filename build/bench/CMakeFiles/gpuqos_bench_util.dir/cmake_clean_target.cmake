file(REMOVE_RECURSE
  "libgpuqos_bench_util.a"
)
