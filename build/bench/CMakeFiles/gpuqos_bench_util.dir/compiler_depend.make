# Empty compiler generated dependencies file for gpuqos_bench_util.
# This may be replaced when dependencies are built.
