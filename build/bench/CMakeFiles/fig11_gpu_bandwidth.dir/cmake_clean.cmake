file(REMOVE_RECURSE
  "CMakeFiles/fig11_gpu_bandwidth.dir/fig11_gpu_bandwidth.cpp.o"
  "CMakeFiles/fig11_gpu_bandwidth.dir/fig11_gpu_bandwidth.cpp.o.d"
  "fig11_gpu_bandwidth"
  "fig11_gpu_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_gpu_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
