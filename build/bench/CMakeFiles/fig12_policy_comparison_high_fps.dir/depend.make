# Empty dependencies file for fig12_policy_comparison_high_fps.
# This may be replaced when dependencies are built.
