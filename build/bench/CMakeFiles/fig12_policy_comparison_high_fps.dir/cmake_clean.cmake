file(REMOVE_RECURSE
  "CMakeFiles/fig12_policy_comparison_high_fps.dir/fig12_policy_comparison_high_fps.cpp.o"
  "CMakeFiles/fig12_policy_comparison_high_fps.dir/fig12_policy_comparison_high_fps.cpp.o.d"
  "fig12_policy_comparison_high_fps"
  "fig12_policy_comparison_high_fps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_policy_comparison_high_fps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
