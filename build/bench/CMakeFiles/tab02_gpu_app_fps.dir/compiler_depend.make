# Empty compiler generated dependencies file for tab02_gpu_app_fps.
# This may be replaced when dependencies are built.
