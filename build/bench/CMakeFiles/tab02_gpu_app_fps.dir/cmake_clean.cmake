file(REMOVE_RECURSE
  "CMakeFiles/tab02_gpu_app_fps.dir/tab02_gpu_app_fps.cpp.o"
  "CMakeFiles/tab02_gpu_app_fps.dir/tab02_gpu_app_fps.cpp.o.d"
  "tab02_gpu_app_fps"
  "tab02_gpu_app_fps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_gpu_app_fps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
