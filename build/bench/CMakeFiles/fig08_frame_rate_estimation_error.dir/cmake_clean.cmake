file(REMOVE_RECURSE
  "CMakeFiles/fig08_frame_rate_estimation_error.dir/fig08_frame_rate_estimation_error.cpp.o"
  "CMakeFiles/fig08_frame_rate_estimation_error.dir/fig08_frame_rate_estimation_error.cpp.o.d"
  "fig08_frame_rate_estimation_error"
  "fig08_frame_rate_estimation_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_frame_rate_estimation_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
