# Empty compiler generated dependencies file for fig08_frame_rate_estimation_error.
# This may be replaced when dependencies are built.
