file(REMOVE_RECURSE
  "CMakeFiles/fig09_throttling.dir/fig09_throttling.cpp.o"
  "CMakeFiles/fig09_throttling.dir/fig09_throttling.cpp.o.d"
  "fig09_throttling"
  "fig09_throttling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_throttling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
