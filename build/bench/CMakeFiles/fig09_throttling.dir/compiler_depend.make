# Empty compiler generated dependencies file for fig09_throttling.
# This may be replaced when dependencies are built.
