# Empty dependencies file for fig14_combined_performance.
# This may be replaced when dependencies are built.
