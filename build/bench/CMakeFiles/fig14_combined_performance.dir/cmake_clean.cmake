file(REMOVE_RECURSE
  "CMakeFiles/fig14_combined_performance.dir/fig14_combined_performance.cpp.o"
  "CMakeFiles/fig14_combined_performance.dir/fig14_combined_performance.cpp.o.d"
  "fig14_combined_performance"
  "fig14_combined_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_combined_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
