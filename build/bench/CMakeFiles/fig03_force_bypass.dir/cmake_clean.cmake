file(REMOVE_RECURSE
  "CMakeFiles/fig03_force_bypass.dir/fig03_force_bypass.cpp.o"
  "CMakeFiles/fig03_force_bypass.dir/fig03_force_bypass.cpp.o.d"
  "fig03_force_bypass"
  "fig03_force_bypass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_force_bypass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
