# Empty compiler generated dependencies file for fig03_force_bypass.
# This may be replaced when dependencies are built.
