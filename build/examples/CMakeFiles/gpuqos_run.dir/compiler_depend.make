# Empty compiler generated dependencies file for gpuqos_run.
# This may be replaced when dependencies are built.
