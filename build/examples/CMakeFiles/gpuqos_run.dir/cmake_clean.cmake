file(REMOVE_RECURSE
  "CMakeFiles/gpuqos_run.dir/gpuqos_run.cpp.o"
  "CMakeFiles/gpuqos_run.dir/gpuqos_run.cpp.o.d"
  "gpuqos_run"
  "gpuqos_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuqos_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
