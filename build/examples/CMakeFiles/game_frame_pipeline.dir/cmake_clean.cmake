file(REMOVE_RECURSE
  "CMakeFiles/game_frame_pipeline.dir/game_frame_pipeline.cpp.o"
  "CMakeFiles/game_frame_pipeline.dir/game_frame_pipeline.cpp.o.d"
  "game_frame_pipeline"
  "game_frame_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_frame_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
