# Empty compiler generated dependencies file for game_frame_pipeline.
# This may be replaced when dependencies are built.
