
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/hpc_insitu_viz.cpp" "examples/CMakeFiles/hpc_insitu_viz.dir/hpc_insitu_viz.cpp.o" "gcc" "examples/CMakeFiles/hpc_insitu_viz.dir/hpc_insitu_viz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpuqos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuqos_qos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuqos_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuqos_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuqos_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuqos_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuqos_ring.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuqos_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuqos_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuqos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
