file(REMOVE_RECURSE
  "CMakeFiles/hpc_insitu_viz.dir/hpc_insitu_viz.cpp.o"
  "CMakeFiles/hpc_insitu_viz.dir/hpc_insitu_viz.cpp.o.d"
  "hpc_insitu_viz"
  "hpc_insitu_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_insitu_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
