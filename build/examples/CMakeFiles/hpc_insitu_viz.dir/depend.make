# Empty dependencies file for hpc_insitu_viz.
# This may be replaced when dependencies are built.
