# Empty compiler generated dependencies file for qos_controller_trace.
# This may be replaced when dependencies are built.
