file(REMOVE_RECURSE
  "CMakeFiles/qos_controller_trace.dir/qos_controller_trace.cpp.o"
  "CMakeFiles/qos_controller_trace.dir/qos_controller_trace.cpp.o.d"
  "qos_controller_trace"
  "qos_controller_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_controller_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
