# Empty dependencies file for gpuqos_dram.
# This may be replaced when dependencies are built.
