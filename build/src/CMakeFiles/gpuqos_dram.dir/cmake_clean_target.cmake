file(REMOVE_RECURSE
  "libgpuqos_dram.a"
)
