file(REMOVE_RECURSE
  "CMakeFiles/gpuqos_dram.dir/dram/bank.cpp.o"
  "CMakeFiles/gpuqos_dram.dir/dram/bank.cpp.o.d"
  "CMakeFiles/gpuqos_dram.dir/dram/channel.cpp.o"
  "CMakeFiles/gpuqos_dram.dir/dram/channel.cpp.o.d"
  "CMakeFiles/gpuqos_dram.dir/dram/controller.cpp.o"
  "CMakeFiles/gpuqos_dram.dir/dram/controller.cpp.o.d"
  "CMakeFiles/gpuqos_dram.dir/dram/frfcfs.cpp.o"
  "CMakeFiles/gpuqos_dram.dir/dram/frfcfs.cpp.o.d"
  "libgpuqos_dram.a"
  "libgpuqos_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuqos_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
