file(REMOVE_RECURSE
  "CMakeFiles/gpuqos_qos.dir/qos/atu.cpp.o"
  "CMakeFiles/gpuqos_qos.dir/qos/atu.cpp.o.d"
  "CMakeFiles/gpuqos_qos.dir/qos/frpu.cpp.o"
  "CMakeFiles/gpuqos_qos.dir/qos/frpu.cpp.o.d"
  "CMakeFiles/gpuqos_qos.dir/qos/governor.cpp.o"
  "CMakeFiles/gpuqos_qos.dir/qos/governor.cpp.o.d"
  "CMakeFiles/gpuqos_qos.dir/qos/rtp_table.cpp.o"
  "CMakeFiles/gpuqos_qos.dir/qos/rtp_table.cpp.o.d"
  "libgpuqos_qos.a"
  "libgpuqos_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuqos_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
