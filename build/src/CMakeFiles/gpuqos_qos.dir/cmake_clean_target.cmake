file(REMOVE_RECURSE
  "libgpuqos_qos.a"
)
