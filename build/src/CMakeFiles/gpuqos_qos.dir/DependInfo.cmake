
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qos/atu.cpp" "src/CMakeFiles/gpuqos_qos.dir/qos/atu.cpp.o" "gcc" "src/CMakeFiles/gpuqos_qos.dir/qos/atu.cpp.o.d"
  "/root/repo/src/qos/frpu.cpp" "src/CMakeFiles/gpuqos_qos.dir/qos/frpu.cpp.o" "gcc" "src/CMakeFiles/gpuqos_qos.dir/qos/frpu.cpp.o.d"
  "/root/repo/src/qos/governor.cpp" "src/CMakeFiles/gpuqos_qos.dir/qos/governor.cpp.o" "gcc" "src/CMakeFiles/gpuqos_qos.dir/qos/governor.cpp.o.d"
  "/root/repo/src/qos/rtp_table.cpp" "src/CMakeFiles/gpuqos_qos.dir/qos/rtp_table.cpp.o" "gcc" "src/CMakeFiles/gpuqos_qos.dir/qos/rtp_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpuqos_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuqos_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuqos_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
