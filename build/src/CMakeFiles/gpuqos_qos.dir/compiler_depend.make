# Empty compiler generated dependencies file for gpuqos_qos.
# This may be replaced when dependencies are built.
