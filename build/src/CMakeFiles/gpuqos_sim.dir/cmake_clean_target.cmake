file(REMOVE_RECURSE
  "libgpuqos_sim.a"
)
