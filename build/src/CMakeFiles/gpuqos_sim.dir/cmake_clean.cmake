file(REMOVE_RECURSE
  "CMakeFiles/gpuqos_sim.dir/sim/hetero_cmp.cpp.o"
  "CMakeFiles/gpuqos_sim.dir/sim/hetero_cmp.cpp.o.d"
  "CMakeFiles/gpuqos_sim.dir/sim/metrics.cpp.o"
  "CMakeFiles/gpuqos_sim.dir/sim/metrics.cpp.o.d"
  "CMakeFiles/gpuqos_sim.dir/sim/runner.cpp.o"
  "CMakeFiles/gpuqos_sim.dir/sim/runner.cpp.o.d"
  "libgpuqos_sim.a"
  "libgpuqos_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuqos_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
