# Empty compiler generated dependencies file for gpuqos_sim.
# This may be replaced when dependencies are built.
