# Empty dependencies file for gpuqos_cache.
# This may be replaced when dependencies are built.
