file(REMOVE_RECURSE
  "CMakeFiles/gpuqos_cache.dir/cache/cache.cpp.o"
  "CMakeFiles/gpuqos_cache.dir/cache/cache.cpp.o.d"
  "CMakeFiles/gpuqos_cache.dir/cache/llc.cpp.o"
  "CMakeFiles/gpuqos_cache.dir/cache/llc.cpp.o.d"
  "CMakeFiles/gpuqos_cache.dir/cache/mshr.cpp.o"
  "CMakeFiles/gpuqos_cache.dir/cache/mshr.cpp.o.d"
  "CMakeFiles/gpuqos_cache.dir/cache/replacement.cpp.o"
  "CMakeFiles/gpuqos_cache.dir/cache/replacement.cpp.o.d"
  "libgpuqos_cache.a"
  "libgpuqos_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuqos_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
