file(REMOVE_RECURSE
  "libgpuqos_cache.a"
)
