# Empty dependencies file for gpuqos_gpu.
# This may be replaced when dependencies are built.
