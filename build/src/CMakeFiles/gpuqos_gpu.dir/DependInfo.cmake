
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/caches.cpp" "src/CMakeFiles/gpuqos_gpu.dir/gpu/caches.cpp.o" "gcc" "src/CMakeFiles/gpuqos_gpu.dir/gpu/caches.cpp.o.d"
  "/root/repo/src/gpu/memiface.cpp" "src/CMakeFiles/gpuqos_gpu.dir/gpu/memiface.cpp.o" "gcc" "src/CMakeFiles/gpuqos_gpu.dir/gpu/memiface.cpp.o.d"
  "/root/repo/src/gpu/pipeline.cpp" "src/CMakeFiles/gpuqos_gpu.dir/gpu/pipeline.cpp.o" "gcc" "src/CMakeFiles/gpuqos_gpu.dir/gpu/pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpuqos_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuqos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
