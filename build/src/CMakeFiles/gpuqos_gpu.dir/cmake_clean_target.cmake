file(REMOVE_RECURSE
  "libgpuqos_gpu.a"
)
