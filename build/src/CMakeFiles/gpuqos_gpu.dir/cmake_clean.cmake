file(REMOVE_RECURSE
  "CMakeFiles/gpuqos_gpu.dir/gpu/caches.cpp.o"
  "CMakeFiles/gpuqos_gpu.dir/gpu/caches.cpp.o.d"
  "CMakeFiles/gpuqos_gpu.dir/gpu/memiface.cpp.o"
  "CMakeFiles/gpuqos_gpu.dir/gpu/memiface.cpp.o.d"
  "CMakeFiles/gpuqos_gpu.dir/gpu/pipeline.cpp.o"
  "CMakeFiles/gpuqos_gpu.dir/gpu/pipeline.cpp.o.d"
  "libgpuqos_gpu.a"
  "libgpuqos_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuqos_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
