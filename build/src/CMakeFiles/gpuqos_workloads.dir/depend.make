# Empty dependencies file for gpuqos_workloads.
# This may be replaced when dependencies are built.
