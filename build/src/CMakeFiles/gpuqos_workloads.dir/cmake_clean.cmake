file(REMOVE_RECURSE
  "CMakeFiles/gpuqos_workloads.dir/workloads/gpu_apps.cpp.o"
  "CMakeFiles/gpuqos_workloads.dir/workloads/gpu_apps.cpp.o.d"
  "CMakeFiles/gpuqos_workloads.dir/workloads/mixes.cpp.o"
  "CMakeFiles/gpuqos_workloads.dir/workloads/mixes.cpp.o.d"
  "CMakeFiles/gpuqos_workloads.dir/workloads/spec.cpp.o"
  "CMakeFiles/gpuqos_workloads.dir/workloads/spec.cpp.o.d"
  "libgpuqos_workloads.a"
  "libgpuqos_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuqos_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
