file(REMOVE_RECURSE
  "libgpuqos_workloads.a"
)
