file(REMOVE_RECURSE
  "libgpuqos_common.a"
)
