# Empty dependencies file for gpuqos_common.
# This may be replaced when dependencies are built.
