file(REMOVE_RECURSE
  "CMakeFiles/gpuqos_common.dir/common/config.cpp.o"
  "CMakeFiles/gpuqos_common.dir/common/config.cpp.o.d"
  "CMakeFiles/gpuqos_common.dir/common/engine.cpp.o"
  "CMakeFiles/gpuqos_common.dir/common/engine.cpp.o.d"
  "CMakeFiles/gpuqos_common.dir/common/log.cpp.o"
  "CMakeFiles/gpuqos_common.dir/common/log.cpp.o.d"
  "CMakeFiles/gpuqos_common.dir/common/rng.cpp.o"
  "CMakeFiles/gpuqos_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/gpuqos_common.dir/common/stats.cpp.o"
  "CMakeFiles/gpuqos_common.dir/common/stats.cpp.o.d"
  "libgpuqos_common.a"
  "libgpuqos_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuqos_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
