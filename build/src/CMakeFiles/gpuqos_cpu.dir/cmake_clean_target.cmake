file(REMOVE_RECURSE
  "libgpuqos_cpu.a"
)
