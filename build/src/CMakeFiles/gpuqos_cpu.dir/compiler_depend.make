# Empty compiler generated dependencies file for gpuqos_cpu.
# This may be replaced when dependencies are built.
