file(REMOVE_RECURSE
  "CMakeFiles/gpuqos_cpu.dir/cpu/core.cpp.o"
  "CMakeFiles/gpuqos_cpu.dir/cpu/core.cpp.o.d"
  "CMakeFiles/gpuqos_cpu.dir/cpu/stream.cpp.o"
  "CMakeFiles/gpuqos_cpu.dir/cpu/stream.cpp.o.d"
  "libgpuqos_cpu.a"
  "libgpuqos_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuqos_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
