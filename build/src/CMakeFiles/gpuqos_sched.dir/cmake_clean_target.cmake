file(REMOVE_RECURSE
  "libgpuqos_sched.a"
)
