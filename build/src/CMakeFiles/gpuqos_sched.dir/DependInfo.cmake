
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/bypass.cpp" "src/CMakeFiles/gpuqos_sched.dir/sched/bypass.cpp.o" "gcc" "src/CMakeFiles/gpuqos_sched.dir/sched/bypass.cpp.o.d"
  "/root/repo/src/sched/cpu_prio.cpp" "src/CMakeFiles/gpuqos_sched.dir/sched/cpu_prio.cpp.o" "gcc" "src/CMakeFiles/gpuqos_sched.dir/sched/cpu_prio.cpp.o.d"
  "/root/repo/src/sched/dynprio.cpp" "src/CMakeFiles/gpuqos_sched.dir/sched/dynprio.cpp.o" "gcc" "src/CMakeFiles/gpuqos_sched.dir/sched/dynprio.cpp.o.d"
  "/root/repo/src/sched/helm.cpp" "src/CMakeFiles/gpuqos_sched.dir/sched/helm.cpp.o" "gcc" "src/CMakeFiles/gpuqos_sched.dir/sched/helm.cpp.o.d"
  "/root/repo/src/sched/sms.cpp" "src/CMakeFiles/gpuqos_sched.dir/sched/sms.cpp.o" "gcc" "src/CMakeFiles/gpuqos_sched.dir/sched/sms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpuqos_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuqos_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuqos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
