file(REMOVE_RECURSE
  "CMakeFiles/gpuqos_sched.dir/sched/bypass.cpp.o"
  "CMakeFiles/gpuqos_sched.dir/sched/bypass.cpp.o.d"
  "CMakeFiles/gpuqos_sched.dir/sched/cpu_prio.cpp.o"
  "CMakeFiles/gpuqos_sched.dir/sched/cpu_prio.cpp.o.d"
  "CMakeFiles/gpuqos_sched.dir/sched/dynprio.cpp.o"
  "CMakeFiles/gpuqos_sched.dir/sched/dynprio.cpp.o.d"
  "CMakeFiles/gpuqos_sched.dir/sched/helm.cpp.o"
  "CMakeFiles/gpuqos_sched.dir/sched/helm.cpp.o.d"
  "CMakeFiles/gpuqos_sched.dir/sched/sms.cpp.o"
  "CMakeFiles/gpuqos_sched.dir/sched/sms.cpp.o.d"
  "libgpuqos_sched.a"
  "libgpuqos_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuqos_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
