# Empty compiler generated dependencies file for gpuqos_sched.
# This may be replaced when dependencies are built.
