# Empty compiler generated dependencies file for gpuqos_ring.
# This may be replaced when dependencies are built.
