file(REMOVE_RECURSE
  "libgpuqos_ring.a"
)
