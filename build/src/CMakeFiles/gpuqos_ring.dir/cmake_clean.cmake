file(REMOVE_RECURSE
  "CMakeFiles/gpuqos_ring.dir/ring/ring.cpp.o"
  "CMakeFiles/gpuqos_ring.dir/ring/ring.cpp.o.d"
  "libgpuqos_ring.a"
  "libgpuqos_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuqos_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
