# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_mshr[1]_include.cmake")
include("/root/repo/build/tests/test_llc[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_ring[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_gpu[1]_include.cmake")
include("/root/repo/build/tests/test_qos[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_presets[1]_include.cmake")
