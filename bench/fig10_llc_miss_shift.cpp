// Figure 10: normalized LLC miss counts under throttling for the high-FPS
// mixes — GPU applications (left) and CPU workloads (right).
// Paper: GPU misses +39% (throttled) / +42% (+CPU priority); CPU misses
// -4% / -4.5%.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace gpuqos;
using namespace gpuqos::bench;

namespace {
double ratio(std::uint64_t num, std::uint64_t den) {
  return den > 0 ? static_cast<double>(num) / static_cast<double>(den) : 0.0;
}
}  // namespace

int main(int argc, char** argv) {
  init_harness(argc, argv, "Figure 10: LLC miss shift under throttling.");
  print_header("Figure 10 — normalized LLC miss counts under throttling",
               "miss counts normalized to the heterogeneous baseline");
  const SimConfig cfg = four_core_config();
  const RunScale scale = bench_scale();
  prefetch_hetero(
      cfg, high_fps_mixes(),
      {Policy::Baseline, Policy::Throttle, Policy::ThrottleCpuPrio}, scale);

  std::printf("%-8s %-10s | %10s %10s | %10s %10s\n", "mix", "gpu app",
              "gpu_throt", "gpu_prio", "cpu_throt", "cpu_prio");
  std::vector<double> gt, gp, ct, cp;
  for (const auto& m : high_fps_mixes()) {
    const HeteroResult base = cached_hetero(cfg, m, Policy::Baseline, scale);
    const HeteroResult thr = cached_hetero(cfg, m, Policy::Throttle, scale);
    const HeteroResult pri =
        cached_hetero(cfg, m, Policy::ThrottleCpuPrio, scale);
    // Miss *rates* (misses per access): throttled runs cover a different
    // wall-clock window, so raw counts are not comparable across policies.
    auto rate = [](const HeteroResult& r, const char* miss, const char* acc) {
      return ratio(r.stat(miss), r.stat(acc));
    };
    const double g_t = rate(thr, "llc.miss.gpu", "llc.access.gpu") /
                       rate(base, "llc.miss.gpu", "llc.access.gpu");
    const double g_p = rate(pri, "llc.miss.gpu", "llc.access.gpu") /
                       rate(base, "llc.miss.gpu", "llc.access.gpu");
    const double c_t = rate(thr, "llc.miss.cpu", "llc.access.cpu") /
                       rate(base, "llc.miss.cpu", "llc.access.cpu");
    const double c_p = rate(pri, "llc.miss.cpu", "llc.access.cpu") /
                       rate(base, "llc.miss.cpu", "llc.access.cpu");
    gt.push_back(g_t);
    gp.push_back(g_p);
    ct.push_back(c_t);
    cp.push_back(c_p);
    std::printf("%-8s %-10s | %10.3f %10.3f | %10.3f %10.3f\n", m.id.c_str(),
                m.gpu_app.c_str(), g_t, g_p, c_t, c_p);
    std::fflush(stdout);
  }
  std::printf("%-8s %-10s | %10.3f %10.3f | %10.3f %10.3f\n", "GEOMEAN", "",
              geomean(gt), geomean(gp), geomean(ct), geomean(cp));
  std::printf("\npaper: GPU +39%%/+42%%; CPU -4%%/-4.5%%\n");
  return 0;
}
