// Figure 3: CPU speedup when all GPU read-miss fills are forced to bypass
// the LLC, relative to the heterogeneous baseline (W1-W14).
// Paper: GMEAN ~0.98 — some mixes gain up to +10%, others lose up to 14%
// because the GPU's extra DRAM traffic hurts bandwidth-sensitive CPUs.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace gpuqos;
using namespace gpuqos::bench;

int main(int argc, char** argv) {
  init_harness(argc, argv, "Figure 3: forced LLC bypass impact (Section II).");
  print_header("Figure 3 — CPU speedup under forced GPU read-miss LLC bypass",
               "speedup vs heterogeneous baseline, mixes W1-W14");
  const SimConfig cfg = one_core_config();
  const RunScale scale = bench_scale();
  prefetch_hetero(cfg, w_mixes(), {Policy::Baseline, Policy::ForceBypass},
                  scale);

  std::printf("%-6s %-14s %10s %14s %14s\n", "mix", "gpu app", "speedup",
              "gpu_dram_rd_x", "gpu_llc_miss_x");
  std::vector<double> speedups;
  for (const auto& w : w_mixes()) {
    const HeteroResult base = cached_hetero(cfg, w, Policy::Baseline, scale);
    const HeteroResult byp = cached_hetero(cfg, w, Policy::ForceBypass, scale);
    const double sp =
        base.cpu_ipc[0] > 0 ? byp.cpu_ipc[0] / base.cpu_ipc[0] : 0.0;
    const double rd_ratio =
        base.stat("dram.read_bytes.gpu") > 0
            ? static_cast<double>(byp.stat("dram.read_bytes.gpu")) /
                  static_cast<double>(base.stat("dram.read_bytes.gpu"))
            : 0.0;
    const double miss_ratio =
        base.stat("llc.miss.gpu") > 0
            ? static_cast<double>(byp.stat("llc.miss.gpu")) /
                  static_cast<double>(base.stat("llc.miss.gpu"))
            : 0.0;
    speedups.push_back(sp);
    std::printf("%-6s %-14s %10.3f %14.2f %14.2f\n", w.id.c_str(),
                w.gpu_app.c_str(), sp, rd_ratio, miss_ratio);
    std::fflush(stdout);
  }
  std::printf("%-6s %-14s %10.3f\n", "GMEAN", "", geomean(speedups));
  std::printf("\npaper: GMEAN ~0.98 (bypass alone is not sufficient)\n");
  return 0;
}
