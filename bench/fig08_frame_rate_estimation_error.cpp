// Figure 8: percent error of the dynamic frame-rate estimation for each GPU
// application running in its heterogeneous M-mix.
// Paper: max over-estimation +6% (UT2004), max under-estimation -4% (COR),
// average error below 1%.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace gpuqos;
using namespace gpuqos::bench;

int main(int argc, char** argv) {
  init_harness(argc, argv, "Figure 8: frame-rate estimation error.");
  print_header("Figure 8 — percent error in dynamic frame rate estimation",
               "mean signed error of mid-frame prediction vs actual, M-mixes");
  const SimConfig cfg = four_core_config();
  const RunScale scale = bench_scale();
  prefetch_hetero(cfg, m_mixes(), {Policy::Baseline}, scale);

  std::printf("%-14s %10s %10s %10s\n", "application", "error %", "samples",
              "relearns");
  double abs_sum = 0.0;
  int n = 0;
  for (const auto& m : m_mixes()) {
    const HeteroResult h = cached_hetero(cfg, m, Policy::Baseline, scale);
    std::printf("%-14s %10.2f %10llu %10llu\n", m.gpu_app.c_str(),
                h.est_error_pct,
                static_cast<unsigned long long>(h.est_samples),
                static_cast<unsigned long long>(h.est_relearns));
    std::fflush(stdout);
    if (h.est_samples > 0) {
      abs_sum += std::abs(h.est_error_pct);
      ++n;
    }
  }
  std::printf("%-14s %10.2f\n", "MEAN |err|", n > 0 ? abs_sum / n : 0.0);
  std::printf("\npaper: errors within [-4%%, +6%%], average below 1%%\n");
  return 0;
}
