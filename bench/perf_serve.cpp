// Simulation-service performance harness (docs/SERVICE.md). Two claims,
// written as BENCH_serve.json and gated at exit:
//
//   1. warm_cache — a 4-policy M8 sweep submitted as one batch shares one
//      warm snapshot (1 cold + 3 warm forks); the same four jobs submitted
//      as isolated single-job batches on fresh executors each pay the full
//      warm-up. The batched path must be >= --min-speedup faster (1.5x by
//      default; 0 disables the gate). Both sides run single-threaded so the
//      ratio measures the cache, not the pool. Budgets are the harness's
//      own (deep warm-up, short measured window — the regime the warm cache
//      targets; GPUQOS_FAST's shrunken warm-up would understate it).
//   2. dedup — resubmitting the identical batch against the persistent
//      result store must be 100% store hits, simulate nothing, and return
//      byte-identical result containers.
//
// GPUQOS_FAST=1 shrinks the budgets for CI smoke runs. Usage:
//   perf_serve [--out BENCH_serve.json] [--min-speedup X]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "sim/runner.hpp"
#include "svc/exec.hpp"
#include "svc/jobspec.hpp"
#include "svc/protocol.hpp"

using namespace gpuqos;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::vector<svc::JobSpec> sweep_jobs(const RunScale& scale) {
  std::vector<svc::JobSpec> jobs;
  for (Policy p : {Policy::Baseline, Policy::Throttle, Policy::ThrottleCpuPrio,
                   Policy::DynPrio}) {
    jobs.push_back(svc::hetero_job("M8", to_string(p), scale));
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_serve.json";
  std::string store_dir = "perf_serve_store";
  double min_speedup = 1.5;

  cli::OptionSet opts(
      "[--out FILE] [--min-speedup X]",
      "times a 4-policy M8 sweep through the service executor: batched "
      "(shared warm cache)\nvs isolated cold runs, then proves store-dedup "
      "resubmission is simulation-free");
  opts.str("--out", "FILE", "report destination (default BENCH_serve.json)",
           &out);
  opts.str("--store-dir", "DIR",
           "scratch result store for the dedup phase (wiped at start)",
           &store_dir);
  opts.f64("--min-speedup", "X",
           "exit 1 when the batched path is less than X times faster "
           "(default 1.5; 0 = report only)", &min_speedup);
  std::vector<const char*> positional;
  opts.parse(argc, argv, positional);
  if (!positional.empty()) {
    opts.print_help(stderr, argv[0]);
    return 2;
  }

  const char* fast_env = std::getenv("GPUQOS_FAST");
  const bool fast = fast_env != nullptr && std::strcmp(fast_env, "0") != 0;
  RunScale scale;
  scale.warm_instrs = fast ? 50'000 : 200'000;
  scale.warm_frames = fast ? 2 : 4;
  scale.warm_min_cycles = fast ? 4'000'000 : 12'000'000;
  scale.measure_instrs = fast ? 100'000 : 300'000;
  scale.measure_frames = 1;
  scale.max_cycles = 100'000'000;
  const std::vector<svc::JobSpec> jobs = sweep_jobs(scale);
  std::printf("service perf harness: mix M8, %zu policies\n\n", jobs.size());

  // --- 1. Cold reference: each job on its own executor pays the warm-up.
  svc::ExecOptions solo;
  solo.threads = 1;
  const auto t_cold = std::chrono::steady_clock::now();
  std::vector<svc::JobResult> cold;
  for (const svc::JobSpec& job : jobs) {
    svc::Executor exec(solo);
    cold.push_back(exec.run_batch({job}).front());
  }
  const double cold_s = seconds_since(t_cold);

  // --- Warm-cache batch: one executor, one batch, one shared warm-up.
  svc::Executor batch_exec(solo);
  svc::BatchStats warm_stats;
  const auto t_warm = std::chrono::steady_clock::now();
  const std::vector<svc::JobResult> warm =
      batch_exec.run_batch(jobs, {}, &warm_stats);
  const double warm_s = seconds_since(t_warm);
  const double speedup = warm_s > 0 ? cold_s / warm_s : 0.0;

  bool warm_identical = true;
  std::printf("%-14s %12s %12s %10s\n", "policy", "cold FPS", "batched FPS",
              "source");
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    std::printf("%-14s %12.1f %12.1f %10s\n", jobs[i].policy.c_str(),
                cold[i].result.fps, warm[i].result.fps,
                svc::to_string(warm[i].source));
    if (warm[i].bytes != cold[i].bytes) warm_identical = false;
  }
  std::printf("\nisolated %.2fs, batched %.2fs (%.2fx, %llu warm forks)\n",
              cold_s, warm_s, speedup,
              static_cast<unsigned long long>(warm_stats.warm_forks));
  if (!warm_identical) {
    std::fprintf(stderr,
                 "FAIL: batched results differ from isolated cold runs\n");
    return 1;
  }

  // --- 2. Dedup: identical resubmission against the store must not
  // simulate and must return the same bytes.
  std::filesystem::remove_all(store_dir);
  svc::ExecOptions stored = solo;
  stored.store_dir = store_dir;
  svc::Executor store_exec(stored);
  const std::vector<svc::JobResult> first = store_exec.run_batch(jobs);
  const std::uint64_t sims_before = store_exec.sim_runs();
  svc::BatchStats dedup_stats;
  const std::vector<svc::JobResult> second =
      store_exec.run_batch(jobs, {}, &dedup_stats);
  const std::uint64_t sims_delta = store_exec.sim_runs() - sims_before;

  bool dedup_identical = true;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (second[i].bytes != first[i].bytes) dedup_identical = false;
  }
  std::printf(
      "resubmission: %llu/%zu store hits, %llu simulations, "
      "byte-identical: %s\n",
      static_cast<unsigned long long>(dedup_stats.store_hits), jobs.size(),
      static_cast<unsigned long long>(sims_delta),
      dedup_identical ? "yes" : "NO");
  if (dedup_stats.store_hits != jobs.size() || sims_delta != 0 ||
      !dedup_identical) {
    std::fprintf(stderr, "FAIL: store resubmission was not a pure replay\n");
    return 1;
  }

  std::ofstream os(out);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", out.c_str());
    return 1;
  }
  char buf[512];
  os << "{\n  \"mix\": \"M8\",\n  \"jobs\": [\n";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    std::snprintf(buf, sizeof buf,
                  "    {\"policy\": \"%s\", \"fps\": %.2f, \"source\": "
                  "\"%s\", \"digest\": \"%s\"}%s\n",
                  jobs[i].policy.c_str(), warm[i].result.fps,
                  svc::to_string(warm[i].source),
                  svc::u64_hex(warm[i].digest).c_str(),
                  i + 1 == jobs.size() ? "" : ",");
    os << buf;
  }
  std::snprintf(buf, sizeof buf,
                "  ],\n  \"cold_seconds\": %.3f,\n  \"batched_seconds\": "
                "%.3f,\n  \"speedup\": %.3f,\n  \"warm_forks\": %llu,\n"
                "  \"resubmit_store_hits\": %llu,\n"
                "  \"resubmit_simulations\": %llu,\n"
                "  \"resubmit_byte_identical\": %s\n}\n",
                cold_s, warm_s, speedup,
                static_cast<unsigned long long>(warm_stats.warm_forks),
                static_cast<unsigned long long>(dedup_stats.store_hits),
                static_cast<unsigned long long>(sims_delta),
                dedup_identical ? "true" : "false");
  os << buf;
  os.flush();
  if (!os) {
    std::fprintf(stderr, "short write to %s (disk full?)\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());

  if (min_speedup > 0 && speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: batched speedup %.2fx below gate %.2fx\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}
