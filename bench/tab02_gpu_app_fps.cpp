// Table II: per-application frame details and the baseline average FPS in
// the four-CPU heterogeneous configuration (M-mixes).
#include <cstdio>

#include "bench_util.hpp"

using namespace gpuqos;
using namespace gpuqos::bench;

int main(int argc, char** argv) {
  init_harness(argc, argv, "Table II: standalone GPU application frame rates.");
  print_header("Table II — graphics frame details and baseline FPS",
               "FPS measured in the 4-CPU heterogeneous baseline (M-mixes)");
  const SimConfig cfg = four_core_config();
  const RunScale scale = bench_scale();
  prefetch_hetero(cfg, m_mixes(), {Policy::Baseline}, scale);

  std::printf("%-14s %-4s %-18s %7s %10s %10s\n", "application", "API",
              "resolution", "frames", "paper FPS", "measured");
  for (const auto& m : m_mixes()) {
    const auto& app = gpu_app(m.gpu_app);
    const HeteroResult h = cached_hetero(cfg, m, Policy::Baseline, scale);
    std::printf("%-14s %-4s %-18s %7u %10.1f %10.1f\n", app.name.c_str(),
                app.api.c_str(), app.resolution.c_str(), app.frames,
                app.paper_fps, h.fps);
    std::fflush(stdout);
  }
  std::printf(
      "\nsix applications (DOOM3, HL2, NFS, Quake4, COR, UT2004) exceed the\n"
      "40 FPS target and are amenable to access throttling\n");
  return 0;
}
