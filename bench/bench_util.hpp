// Shared plumbing for the per-figure benchmark harnesses.
//
// Several figures are computed from the same simulations (e.g. Figures 9-11
// all need the throttled runs of the six high-FPS mixes), so results are
// memoized in a small text cache under ./gpuqos_bench_cache. Delete the
// directory (or bump kCacheVersion) after changing simulator code.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/runner.hpp"

namespace gpuqos::bench {

inline constexpr const char* kCacheVersion = "v1";

/// RunScale used by every figure harness; honours GPUQOS_FAST.
[[nodiscard]] RunScale bench_scale();

/// Memoized heterogeneous run.
[[nodiscard]] HeteroResult cached_hetero(const SimConfig& cfg,
                                         const HeteroMix& mix, Policy policy,
                                         const RunScale& scale);

/// Memoized standalone GPU run.
[[nodiscard]] HeteroResult cached_gpu_alone(const SimConfig& cfg,
                                            const GpuAppDesc& app,
                                            const RunScale& scale);

/// Memoized standalone CPU IPC.
[[nodiscard]] double cached_cpu_alone(const SimConfig& cfg, int spec_id,
                                      const RunScale& scale);

/// Standalone IPCs for every CPU application of a mix (memoized per app).
[[nodiscard]] std::vector<double> cached_alone_ipcs(const SimConfig& cfg,
                                                    const HeteroMix& mix,
                                                    const RunScale& scale);

/// Section II configuration: one CPU core plus the GPU.
[[nodiscard]] SimConfig one_core_config();
/// Section VI configuration: four CPU cores plus the GPU.
[[nodiscard]] SimConfig four_core_config();

void print_header(const std::string& title, const std::string& what);
void print_geomean_row(const char* label, const std::vector<double>& values);

}  // namespace gpuqos::bench
