// Shared plumbing for the per-figure benchmark harnesses.
//
// Several figures are computed from the same simulations (e.g. Figures 9-11
// all need the throttled runs of the six high-FPS mixes), so results are
// memoized in a small text cache under ./gpuqos_bench_cache (override the
// location with GPUQOS_BENCH_CACHE). Delete the directory (or bump
// kCacheVersion) after changing simulator code.
//
// The prefetch_* helpers warm that cache for a whole batch of runs through
// the sweep pool (sim/sweep.hpp), so a harness adds one call up front and
// its existing serial cached_* loops then hit the cache. Cache files are
// written atomically (tmp + rename) under the sweep I/O mutex.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/runner.hpp"

namespace gpuqos::bench {

// v2: the engine overhaul preserved architectural behavior (digest-verified),
// but the cache is re-keyed anyway so pre-overhaul memoized results can never
// mix with new runs.
inline constexpr const char* kCacheVersion = "v2";

/// RunScale used by every figure harness; honours GPUQOS_FAST.
[[nodiscard]] RunScale bench_scale();

/// Memoized heterogeneous run.
[[nodiscard]] HeteroResult cached_hetero(const SimConfig& cfg,
                                         const HeteroMix& mix, Policy policy,
                                         const RunScale& scale);

/// Memoized standalone GPU run.
[[nodiscard]] HeteroResult cached_gpu_alone(const SimConfig& cfg,
                                            const GpuAppDesc& app,
                                            const RunScale& scale);

/// Memoized standalone CPU IPC.
[[nodiscard]] double cached_cpu_alone(const SimConfig& cfg, int spec_id,
                                      const RunScale& scale);

/// Standalone IPCs for every CPU application of a mix (memoized per app).
[[nodiscard]] std::vector<double> cached_alone_ipcs(const SimConfig& cfg,
                                                    const HeteroMix& mix,
                                                    const RunScale& scale);

/// Warm the cache for every (mix, policy) heterogeneous run concurrently;
/// duplicates are deduped so no cache file is raced. Jobs that are already
/// cached cost one file read.
void prefetch_hetero(const SimConfig& cfg, const std::vector<HeteroMix>& mixes,
                     const std::vector<Policy>& policies,
                     const RunScale& scale);

/// Warm the cache for the standalone-CPU IPCs of every listed mix (the
/// one-core runs behind cached_alone_ipcs), deduped across mixes.
void prefetch_alone_ipcs(const SimConfig& cfg,
                         const std::vector<HeteroMix>& mixes,
                         const RunScale& scale);

/// Warm the cache for the standalone-GPU run of every listed mix's GPU
/// application, deduped across mixes sharing an application.
void prefetch_gpu_alone(const SimConfig& cfg,
                        const std::vector<HeteroMix>& mixes,
                        const RunScale& scale);

/// Section II configuration: one CPU core plus the GPU.
[[nodiscard]] SimConfig one_core_config();
/// Section VI configuration: four CPU cores plus the GPU.
[[nodiscard]] SimConfig four_core_config();

void print_header(const std::string& title, const std::string& what);
void print_geomean_row(const char* label, const std::vector<double>& values);

}  // namespace gpuqos::bench
