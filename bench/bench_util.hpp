// Shared plumbing for the per-figure benchmark harnesses.
//
// Several figures are computed from the same simulations (e.g. Figures 9-11
// all need the throttled runs of the six high-FPS mixes), so every cached_*
// helper routes through the simulation service client (svc/client.hpp): jobs
// are memoized in the service's content-addressed result store under
// ./gpuqos_bench_cache (override with GPUQOS_BENCH_CACHE or --store-dir),
// and hetero jobs that share a mix fork from one warm snapshot instead of
// re-simulating the warm-up. Point any harness at a gpuqos_serve daemon with
// --socket or GPUQOS_SERVE_SOCKET; without one the batch runs in-process on
// the sweep pool — same results either way, byte-identical by digest.
// Delete the cache directory after changing simulator code.
//
// The prefetch_* helpers submit a whole batch of runs up front, so a harness
// adds one call and its existing serial cached_* loops then hit the store.
#pragma once

#include <string>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/runner.hpp"

namespace gpuqos::bench {

/// Parse the shared harness flags (--socket, --store-dir, --warm-cache-max,
/// --threads, --help) and install them for the process-wide service client.
/// Call it first in main(); bad flags exit(2), --help exits(0). Harnesses
/// take no positional arguments.
void init_harness(int argc, char** argv, const char* what);

/// RunScale used by every figure harness; honours GPUQOS_FAST.
[[nodiscard]] RunScale bench_scale();

/// Memoized heterogeneous run.
[[nodiscard]] HeteroResult cached_hetero(const SimConfig& cfg,
                                         const HeteroMix& mix, Policy policy,
                                         const RunScale& scale);

/// Memoized standalone GPU run.
[[nodiscard]] HeteroResult cached_gpu_alone(const SimConfig& cfg,
                                            const GpuAppDesc& app,
                                            const RunScale& scale);

/// Memoized standalone CPU IPC (always the one-core configuration).
[[nodiscard]] double cached_cpu_alone(const SimConfig& cfg, int spec_id,
                                      const RunScale& scale);

/// Standalone IPCs for every CPU application of a mix (memoized per app).
[[nodiscard]] std::vector<double> cached_alone_ipcs(const SimConfig& cfg,
                                                    const HeteroMix& mix,
                                                    const RunScale& scale);

/// Run every (mix, policy) heterogeneous job as one service batch;
/// duplicates dedupe in-batch, jobs sharing a mix share one warm snapshot,
/// and jobs already in the store cost one file read.
void prefetch_hetero(const SimConfig& cfg, const std::vector<HeteroMix>& mixes,
                     const std::vector<Policy>& policies,
                     const RunScale& scale);

/// Warm the store for the standalone-CPU IPCs of every listed mix (the
/// one-core runs behind cached_alone_ipcs), deduped across mixes.
void prefetch_alone_ipcs(const SimConfig& cfg,
                         const std::vector<HeteroMix>& mixes,
                         const RunScale& scale);

/// Warm the store for the standalone-GPU run of every listed mix's GPU
/// application, deduped across mixes sharing an application.
void prefetch_gpu_alone(const SimConfig& cfg,
                        const std::vector<HeteroMix>& mixes,
                        const RunScale& scale);

/// Section II configuration: one CPU core plus the GPU.
[[nodiscard]] SimConfig one_core_config();
/// Section VI configuration: four CPU cores plus the GPU.
[[nodiscard]] SimConfig four_core_config();

void print_header(const std::string& title, const std::string& what);
void print_geomean_row(const char* label, const std::vector<double>& values);

}  // namespace gpuqos::bench
