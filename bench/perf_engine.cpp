// Engine/sweep performance harness (docs/PERFORMANCE.md). Three sections,
// written as BENCH_engine.json and summarized on stdout:
//
//   1. end_to_end — full HeteroCmp simulations (M1 and M8 under Baseline and
//      ThrotCPUprio) timed for a fixed simulated-cycle budget: simulated
//      kilocycles/sec plus engine event/ticker throughput on THIS build.
//   2. engine_core_ab — the speedup claim. The same synthetic workload,
//      shaped like the M8 hetero run (ticker period multiset of the real
//      machine, event density and payload size measured from section 1),
//      drives both the frozen pre-overhaul ReferenceEngine
//      (common/engine_ref.hpp: priority_queue + heap std::function + modulo
//      ticker scan) and the production timing-wheel Engine. Both throughput
//      numbers and their ratio are recorded.
//   3. sweep_scaling — the same M1 job list through run_many() at one worker
//      vs. all hardware workers.
//
// GPUQOS_FAST=1 shrinks every budget for CI smoke runs. Usage:
//   perf_engine [--out BENCH_engine.json]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/engine.hpp"
#include "common/engine_ref.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"
#include "workloads/spec.hpp"

using namespace gpuqos;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ---------------------------------------------------------------------------
// Section 1: end-to-end simulation throughput.

struct EndToEnd {
  std::string mix_id;
  Policy policy = Policy::Baseline;
  Cycle cycles = 0;
  std::uint64_t events = 0;
  std::uint64_t ticks = 0;
  double seconds = 0.0;

  [[nodiscard]] double kcycles_per_sec() const {
    return seconds > 0 ? static_cast<double>(cycles) / 1e3 / seconds : 0.0;
  }
  [[nodiscard]] double events_per_sec() const {
    return seconds > 0 ? static_cast<double>(events) / seconds : 0.0;
  }
};

EndToEnd run_end_to_end(const HeteroMix& m, Policy policy, Cycle budget) {
  SimConfig cfg = Presets::scaled();
  if (m.cpu_specs.size() == 1) cfg.cpu_cores = 1;

  std::vector<SpecProfile> profiles;
  for (int id : m.cpu_specs) profiles.push_back(spec_profile(id));
  const GpuAppDesc& app = gpu_app(m.gpu_app);
  HeteroCmp cmp(cfg, policy, std::move(profiles),
                build_frames(app, cfg.seed), app.fps_scale);
  cmp.gpu().set_repeat(true);

  EndToEnd r;
  r.mix_id = m.id;
  r.policy = policy;
  const auto t0 = std::chrono::steady_clock::now();
  cmp.engine().run_for(budget);
  r.seconds = seconds_since(t0);
  r.cycles = cmp.engine().now();
  r.events = cmp.engine().events_run();
  r.ticks = cmp.engine().ticks_run();
  return r;
}

// ---------------------------------------------------------------------------
// Section 2: engine-core A/B on an M8-shaped synthetic workload.
//
// Ticker multiset of the real 4-core hetero machine: four period-1 core
// tickers, two period-4 GPU tickers (memory interface + pipeline), one
// period-4 ticker per DRAM channel, and one long-period governor. Events are
// injected from a core ticker at `events_per_kcycle` (measured from the real
// M8 run) with latency-like delays, mostly inside the wheel horizon with a
// far-future tail. The payload is padded to the size of a MemRequest-carrying
// closure, which is exactly the case the SmallFn inline buffer was sized for
// — and the case where std::function must heap-allocate.

struct AbSide {
  Cycle cycles = 0;
  std::uint64_t events = 0;
  double seconds = 0.0;

  [[nodiscard]] double kcycles_per_sec() const {
    return seconds > 0 ? static_cast<double>(cycles) / 1e3 / seconds : 0.0;
  }
  [[nodiscard]] double events_per_sec() const {
    return seconds > 0 ? static_cast<double>(events) / seconds : 0.0;
  }
};

struct Payload {  // mimics a captured MemRequest (addr, ids, cycle stamps)
  std::uint64_t words[9] = {};
};

template <typename E>
AbSide drive_ab(std::uint64_t events_per_kcycle, Cycle cycles,
                unsigned dram_channels, Cycle governor_period) {
  E eng;
  std::uint64_t sink = 0;
  std::uint64_t lcg = 0x9E3779B97F4A7C15ull;
  auto rnd = [&lcg] {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 33;
  };

  std::uint64_t acc = 0;
  std::uint64_t events = 0;
  // Core 0 doubles as the event injector.
  eng.add_ticker(1, 0, [&](Cycle) {
    acc += events_per_kcycle;
    while (acc >= 1000) {
      acc -= 1000;
      const std::uint64_t r = rnd();
      // Cache/ring/DRAM-like latencies; every 16th goes past the wheel
      // horizon so the far heap sees steady traffic.
      const Cycle delay =
          (r & 15u) == 0 ? 256 + (r >> 4) % 2048 : 4 + (r >> 4) % 200;
      Payload p;
      p.words[0] = r;
      eng.schedule(delay, [&sink, &events, p] {
        sink += p.words[0];
        ++events;
      });
    }
  });
  for (int core = 1; core < 4; ++core) {
    eng.add_ticker(1, 0, [&sink](Cycle c) { sink += c; });
  }
  for (int g = 0; g < 2; ++g) {  // GPU memory interface + pipeline
    eng.add_ticker(4, 0, [&sink](Cycle c) { sink += c; });
  }
  for (unsigned ch = 0; ch < dram_channels; ++ch) {
    eng.add_ticker(4, ch % 4, [&sink](Cycle c) { sink += c; });
  }
  eng.add_ticker(governor_period, 1, [&sink](Cycle c) { sink += c; });

  const auto t0 = std::chrono::steady_clock::now();
  eng.run_for(cycles);
  AbSide side;
  side.seconds = seconds_since(t0);
  side.cycles = cycles;
  side.events = events;
  if (sink == 42) std::fputc(' ', stderr);  // defeat dead-code elimination
  return side;
}

template <typename E>
AbSide best_of(int reps, std::uint64_t events_per_kcycle, Cycle cycles,
               unsigned dram_channels, Cycle governor_period) {
  AbSide best;
  for (int i = 0; i < reps; ++i) {
    AbSide s =
        drive_ab<E>(events_per_kcycle, cycles, dram_channels, governor_period);
    if (best.seconds == 0.0 || s.seconds < best.seconds) best = s;
  }
  return best;
}

// ---------------------------------------------------------------------------
// Section 3: sweep-pool scaling.

double time_sweep(const HeteroMix& m, const RunScale& scale, unsigned jobs,
                  unsigned threads) {
  const SimConfig cfg = Presets::scaled();
  std::vector<std::function<double()>> work;
  for (unsigned j = 0; j < jobs; ++j) {
    work.push_back([&cfg, &m, &scale] {
      return run_hetero(cfg, m, Policy::Baseline, scale).fps;
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  (void)run_many(std::move(work), threads);
  return seconds_since(t0);
}

void json_end_to_end(std::ostream& os, const EndToEnd& r, bool last) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "    {\"mix\": \"%s\", \"policy\": \"%s\", \"sim_cycles\": "
                "%llu, \"events\": %llu, \"ticks\": %llu, \"seconds\": %.4f, "
                "\"sim_kcycles_per_sec\": %.1f, \"events_per_sec\": %.0f}%s\n",
                r.mix_id.c_str(), to_string(r.policy).c_str(),
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.events),
                static_cast<unsigned long long>(r.ticks), r.seconds,
                r.kcycles_per_sec(), r.events_per_sec(), last ? "" : ",");
  os << buf;
}

void json_ab_side(std::ostream& os, const char* name, const AbSide& s,
                  bool last) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "    \"%s\": {\"sim_cycles\": %llu, \"events\": %llu, "
                "\"seconds\": %.4f, \"sim_kcycles_per_sec\": %.1f, "
                "\"events_per_sec\": %.0f}%s\n",
                name, static_cast<unsigned long long>(s.cycles),
                static_cast<unsigned long long>(s.events), s.seconds,
                s.kcycles_per_sec(), s.events_per_sec(), last ? "" : ",");
  os << buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_engine.json";
  cli::OptionSet opts("[--out FILE]", "Engine/sweep performance harness (docs/PERFORMANCE.md);\nwrites BENCH_engine.json. GPUQOS_FAST=1 shrinks budgets.");
  opts.str("--out", "FILE", "report destination (default BENCH_engine.json)",
           &out);
  std::vector<const char*> positional;
  opts.parse(argc, argv, positional);
  if (!positional.empty()) {
    std::fprintf(stderr, "%s: unexpected argument '%s'\n", argv[0],
                 positional.front());
    return 2;
  }

  const char* fast_env = std::getenv("GPUQOS_FAST");
  const bool fast = fast_env != nullptr && std::strcmp(fast_env, "0") != 0;
  const Cycle e2e_budget = fast ? 400'000 : 2'000'000;
  const Cycle ab_budget = fast ? 1'000'000 : 8'000'000;
  const int ab_reps = fast ? 2 : 3;
  const unsigned sweep_jobs = 4;

  std::printf("engine perf harness (%s budgets)\n\n", fast ? "fast" : "full");

  // --- 1. End-to-end simulation throughput.
  std::printf("end-to-end (budget %llu cycles):\n",
              static_cast<unsigned long long>(e2e_budget));
  std::vector<EndToEnd> e2e;
  for (const char* mix_id : {"M1", "M8"}) {
    for (Policy p : {Policy::Baseline, Policy::ThrottleCpuPrio}) {
      e2e.push_back(run_end_to_end(mix(mix_id), p, e2e_budget));
      const EndToEnd& r = e2e.back();
      std::printf("  %-3s %-13s %9.1f sim kcycles/s  %11.0f events/s\n",
                  r.mix_id.c_str(), to_string(r.policy).c_str(),
                  r.kcycles_per_sec(), r.events_per_sec());
    }
  }

  // --- 2. Engine-core A/B, shaped from the measured M8 ThrotCPUprio run.
  const EndToEnd& m8 = e2e.back();
  const std::uint64_t events_per_kcycle =
      m8.cycles > 0 ? m8.events * 1000 / m8.cycles : 60;
  const unsigned dram_channels = Presets::scaled().dram.channels;
  const Cycle governor_period = 5000;
  std::printf("\nengine core A/B (M8-shaped: %llu events/kcycle, "
              "%llu cycles):\n",
              static_cast<unsigned long long>(events_per_kcycle),
              static_cast<unsigned long long>(ab_budget));
  const AbSide ref = best_of<ReferenceEngine>(
      ab_reps, events_per_kcycle, ab_budget, dram_channels, governor_period);
  const AbSide wheel = best_of<Engine>(
      ab_reps, events_per_kcycle, ab_budget, dram_channels, governor_period);
  const double speedup =
      ref.seconds > 0 && wheel.seconds > 0 ? ref.seconds / wheel.seconds : 0.0;
  std::printf("  reference (pre-overhaul) %9.1f sim kcycles/s\n",
              ref.kcycles_per_sec());
  std::printf("  timing wheel (current)   %9.1f sim kcycles/s\n",
              wheel.kcycles_per_sec());
  std::printf("  speedup                  %9.2fx\n", speedup);

  // --- 3. Sweep-pool scaling.
  RunScale tiny;
  tiny.warm_instrs = 20'000;
  tiny.measure_instrs = fast ? 50'000 : 200'000;
  tiny.warm_frames = 1;
  tiny.measure_frames = 1;
  tiny.warm_min_cycles = 200'000;
  tiny.max_cycles = 50'000'000;
  const unsigned hw = sweep_thread_count(sweep_jobs);
  const double serial_s = time_sweep(mix("M1"), tiny, sweep_jobs, 1);
  const double pooled_s = time_sweep(mix("M1"), tiny, sweep_jobs, hw);
  std::printf("\nsweep pool (%u jobs): serial %.2fs, %u threads %.2fs "
              "(%.2fx)\n",
              sweep_jobs, serial_s, hw, pooled_s,
              pooled_s > 0 ? serial_s / pooled_s : 0.0);

  std::ofstream os(out);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", out.c_str());
    return 1;
  }
  os << "{\n  \"end_to_end\": [\n";
  for (std::size_t i = 0; i < e2e.size(); ++i) {
    json_end_to_end(os, e2e[i], i + 1 == e2e.size());
  }
  os << "  ],\n  \"engine_core_ab\": {\n";
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "    \"workload\": \"M8-shaped synthetic: 4x p1 + 2x p4 gpu "
                "+ %ux p4 dram + 1x p%llu tickers, %llu events/kcycle, "
                "72-byte payloads\",\n",
                dram_channels,
                static_cast<unsigned long long>(governor_period),
                static_cast<unsigned long long>(events_per_kcycle));
  os << buf;
  json_ab_side(os, "reference_pre_overhaul", ref, false);
  json_ab_side(os, "timing_wheel", wheel, false);
  std::snprintf(buf, sizeof buf, "    \"speedup\": %.3f\n  },\n", speedup);
  os << buf;
  std::snprintf(buf, sizeof buf,
                "  \"sweep_scaling\": {\"jobs\": %u, \"serial_seconds\": "
                "%.3f, \"threads\": %u, \"pooled_seconds\": %.3f, "
                "\"speedup\": %.3f}\n}\n",
                sweep_jobs, serial_s, hw, pooled_s,
                pooled_s > 0 ? serial_s / pooled_s : 0.0);
  os << buf;
  os.flush();
  if (!os) {
    std::fprintf(stderr, "short write to %s (disk full?)\n", out.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
