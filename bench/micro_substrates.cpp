// Micro-benchmarks of the simulator substrates (google-benchmark): cache
// lookup/fill, DRAM channel scheduling, ring transit, RNG, and the GPU
// fragment pipeline. These quantify host-side simulation throughput, which
// bounds how large a paper-scale experiment the harness can sweep.
#include <benchmark/benchmark.h>

#include "cache/cache.hpp"
#include "common/engine.hpp"
#include "common/rng.hpp"
#include "dram/controller.hpp"
#include "dram/frfcfs.hpp"
#include "ring/ring.hpp"
#include "sim/hetero_cmp.hpp"
#include "workloads/gpu_apps.hpp"
#include "workloads/spec.hpp"

using namespace gpuqos;

static void BM_RngNextU64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_RngNextU64);

static void BM_CacheLookupHit(benchmark::State& state) {
  CacheConfig cfg;
  cfg.size_bytes = 256 * KiB;
  cfg.srrip = state.range(0) != 0;
  SetAssocCache cache(cfg, "bm");
  for (Addr a = 0; a < cfg.size_bytes; a += 64) {
    (void)cache.fill(a, SourceId::cpu(0), GpuAccessClass::None, false);
  }
  Addr a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(a, false));
    a = (a + 64) % cfg.size_bytes;
  }
}
BENCHMARK(BM_CacheLookupHit)->Arg(0)->Arg(1);

static void BM_CacheFillEvict(benchmark::State& state) {
  CacheConfig cfg;
  cfg.size_bytes = 64 * KiB;
  cfg.srrip = true;
  SetAssocCache cache(cfg, "bm");
  Addr a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.fill(a, SourceId::gpu(), GpuAccessClass::Texture, false));
    a += 64;
  }
}
BENCHMARK(BM_CacheFillEvict);

static void BM_DramChannelStream(benchmark::State& state) {
  Engine engine;
  StatRegistry stats;
  DramConfig cfg;
  cfg.channels = 1;
  DramController dram(engine, cfg, stats,
                      [](unsigned) { return std::make_unique<FrFcfsScheduler>(); });
  Rng rng(7);
  for (auto _ : state) {
    MemRequest req;
    req.addr = rng.next_below(1 << 24) * 64;
    req.is_write = false;
    req.source = SourceId::gpu();
    dram.request(std::move(req));
    engine.run_for(16);
  }
}
BENCHMARK(BM_DramChannelStream);

static void BM_RingTransit(benchmark::State& state) {
  Engine engine;
  StatRegistry stats;
  RingConfig cfg;
  RingNetwork ring(engine, 8, cfg, stats);
  unsigned delivered = 0;
  for (auto _ : state) {
    ring.send(0, 5, [&] { ++delivered; });
    engine.run_for(6);
  }
  benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_RingTransit);

static void BM_CpuCoreCycles(benchmark::State& state) {
  SimConfig cfg = Presets::scaled();
  HeteroCmp cmp(cfg, Policy::Baseline, {spec_profile(462)}, {}, 1.0);
  for (auto _ : state) cmp.engine().run_for(1024);
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_CpuCoreCycles);

static void BM_GpuPipelineCycles(benchmark::State& state) {
  SimConfig cfg = Presets::scaled();
  const auto& app = gpu_app("UT2004");
  HeteroCmp cmp(cfg, Policy::Baseline, {}, build_frames(app, 1),
                app.fps_scale);
  cmp.gpu().set_repeat(true);
  for (auto _ : state) cmp.engine().run_for(1024);
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_GpuPipelineCycles);

BENCHMARK_MAIN();
