// Sweep-pool + parallel-tick scaling harness (docs/PERFORMANCE.md). Two
// sections:
//
//   sweep_threads — the same 8-job M8 policy sweep (one job per Policy, the
//   shape of a real figure harness) run through run_many() at GPUQOS_THREADS
//   = 1, 2, 4, 8. Records the wall time and speedup-vs-serial at each
//   setting, plus per-thread-count agreement: every pooled run must produce
//   the exact FPS vector of the serial run (results[i] <- jobs[i], and each
//   job owns its engine/RNG/stats), so any divergence fails the harness.
//
//   tick_parallel — one end-to-end M8 ThrotCPUprio run at
//   GPUQOS_TICK_THREADS = 1 (serial reference) and 2 (partitioned per-cycle
//   tick). The two runs must report the same FPS (the digest-level claim is
//   proven by ctest -R tick_invariance); the section records the wall times,
//   the speedup, and the host's core count — intra-run gains need real
//   parallel hardware, so single-core readings are expected to be <= 1x.
//
// Both sections splice into BENCH_engine.json (written by perf_engine; run
// that first) rather than a separate file, so the one report carries the
// single-run and the sweep-level scaling story. GPUQOS_FAST=1 shrinks the
// per-job budget for CI smoke runs. Usage:
//   perf_sweep [--out BENCH_engine.json]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"
#include "workloads/spec.hpp"

using namespace gpuqos;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

constexpr Policy kPolicies[] = {
    Policy::Baseline, Policy::Throttle, Policy::ThrottleCpuPrio,
    Policy::Sms09,    Policy::Sms0,     Policy::DynPrio,
    Policy::Helm,     Policy::ForceBypass,
};
constexpr unsigned kJobs = 8;

struct Point {
  unsigned threads = 0;
  double seconds = 0.0;
  std::vector<double> fps;
};

Point run_at(const HeteroMix& m, const RunScale& scale, unsigned threads) {
  const SimConfig cfg = Presets::scaled();
  std::vector<std::function<double()>> work;
  for (Policy p : kPolicies) {
    work.push_back(
        [&cfg, &m, &scale, p] { return run_hetero(cfg, m, p, scale).fps; });
  }
  // Drive the worker count the way a user would: through GPUQOS_THREADS
  // (sweep_thread_count), not the explicit override.
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u", threads);
  setenv("GPUQOS_THREADS", buf, 1);
  Point pt;
  pt.threads = threads;
  const auto t0 = std::chrono::steady_clock::now();
  pt.fps = run_many(std::move(work));
  pt.seconds = seconds_since(t0);
  return pt;
}

/// Insert (or replace) the named section as the last member of the
/// top-level object in `path`; creates a minimal file when absent. Sections
/// spliced by this harness always sit after perf_engine's, so replacing one
/// on a re-run means erasing from the preceding comma to its closing brace.
bool splice_section(const std::string& path, const std::string& key,
                    const std::string& section) {
  std::string body;
  {
    std::ifstream is(path);
    if (is) {
      std::ostringstream ss;
      ss << is.rdbuf();
      body = ss.str();
    }
  }
  std::size_t close = body.rfind('}');
  if (close == std::string::npos) {
    body = "{\n" + section + "}\n";
  } else {
    const std::size_t start = body.find("\"" + key + "\"");
    if (start != std::string::npos) {
      // Re-run without a fresh perf_engine: drop the old section first —
      // from the comma before the key through the section's own closing
      // brace (sections are written with a two-space-indented "  }").
      std::size_t from = body.rfind(',', start);
      if (from == std::string::npos) from = start;
      std::size_t end = body.find("\n  }", start);
      end = end == std::string::npos ? close : end + 4;
      body.erase(from, end - from);
      close = body.rfind('}');
    }
    body.insert(close, ",\n" + section);
  }
  std::ofstream os(path);
  os << body;
  return static_cast<bool>(os.flush());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_engine.json";
  cli::OptionSet opts("[--out FILE]", "Sweep-pool + parallel-tick scaling harness\n(docs/PERFORMANCE.md); splices into BENCH_engine.json written by\nperf_engine. GPUQOS_FAST=1 shrinks budgets.");
  opts.str("--out", "FILE", "report destination (default BENCH_engine.json)",
           &out);
  std::vector<const char*> positional;
  opts.parse(argc, argv, positional);
  if (!positional.empty()) {
    std::fprintf(stderr, "%s: unexpected argument '%s'\n", argv[0],
                 positional.front());
    return 2;
  }

  const char* fast_env = std::getenv("GPUQOS_FAST");
  const bool fast = fast_env != nullptr && std::strcmp(fast_env, "0") != 0;
  RunScale scale;
  scale.warm_instrs = 20'000;
  scale.measure_instrs = fast ? 50'000 : 200'000;
  scale.warm_frames = 1;
  scale.measure_frames = 1;
  scale.warm_min_cycles = 200'000;
  scale.max_cycles = 50'000'000;

  const HeteroMix& m = mix("M8");
  std::printf("sweep scaling harness (%s budgets): %u-job M8 policy sweep\n\n",
              fast ? "fast" : "full", kJobs);

  std::vector<Point> curve;
  for (unsigned t : {1u, 2u, 4u, 8u}) {
    curve.push_back(run_at(m, scale, t));
    const Point& pt = curve.back();
    const double speedup =
        pt.seconds > 0 ? curve.front().seconds / pt.seconds : 0.0;
    std::printf("  GPUQOS_THREADS=%u  %7.2fs  %5.2fx\n", pt.threads,
                pt.seconds, speedup);
    if (pt.fps != curve.front().fps) {
      std::fprintf(stderr,
                   "FAIL: pooled results at %u threads differ from serial\n",
                   pt.threads);
      return 1;
    }
  }

  // Parallel-tick A/B: one end-to-end M8 run, serial tick vs. partitioned
  // tick. FPS must agree exactly; wall-clock gain requires real cores.
  std::printf("\nparallel tick, single M8 ThrotCPUprio run:\n");
  const SimConfig cfg = Presets::scaled();
  double tick_secs[2] = {0.0, 0.0};
  double tick_fps[2] = {0.0, 0.0};
  const unsigned tick_threads[2] = {1, 2};
  for (int i = 0; i < 2; ++i) {
    char tbuf[16];
    std::snprintf(tbuf, sizeof tbuf, "%u", tick_threads[i]);
    setenv("GPUQOS_TICK_THREADS", tbuf, 1);
    const auto t0 = std::chrono::steady_clock::now();
    tick_fps[i] = run_hetero(cfg, m, Policy::ThrottleCpuPrio, scale).fps;
    tick_secs[i] = seconds_since(t0);
    std::printf("  GPUQOS_TICK_THREADS=%u  %7.2fs  %5.2fx\n", tick_threads[i],
                tick_secs[i],
                tick_secs[i] > 0 ? tick_secs[0] / tick_secs[i] : 0.0);
  }
  setenv("GPUQOS_TICK_THREADS", "1", 1);
  if (tick_fps[0] != tick_fps[1]) {
    std::fprintf(stderr,
                 "FAIL: parallel-tick run differs from serial (fps %f vs "
                 "%f)\n",
                 tick_fps[1], tick_fps[0]);
    return 1;
  }

  std::ostringstream sec;
  sec << "  \"sweep_threads\": {\n    \"mix\": \"M8\", \"jobs\": " << kJobs
      << ",\n    \"curve\": [\n";
  char buf[160];
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const Point& pt = curve[i];
    std::snprintf(buf, sizeof buf,
                  "      {\"threads\": %u, \"seconds\": %.3f, "
                  "\"speedup\": %.3f}%s\n",
                  pt.threads, pt.seconds,
                  pt.seconds > 0 ? curve.front().seconds / pt.seconds : 0.0,
                  i + 1 == curve.size() ? "" : ",");
    sec << buf;
  }
  sec << "    ],\n    \"results_identical_across_thread_counts\": true\n"
      << "  }\n";

  std::ostringstream tsec;
  std::snprintf(buf, sizeof buf,
                "  \"tick_parallel\": {\n    \"mix\": \"M8\", \"policy\": "
                "\"ThrotCPUprio\", \"host_cores\": %u,\n",
                std::thread::hardware_concurrency());
  tsec << buf;
  std::snprintf(buf, sizeof buf,
                "    \"serial_seconds\": %.3f, \"parallel_seconds\": %.3f, "
                "\"speedup\": %.3f,\n",
                tick_secs[0], tick_secs[1],
                tick_secs[1] > 0 ? tick_secs[0] / tick_secs[1] : 0.0);
  tsec << buf << "    \"results_identical\": true\n  }\n";

  if (!splice_section(out, "sweep_threads", sec.str()) ||
      !splice_section(out, "tick_parallel", tsec.str())) {
    std::fprintf(stderr, "cannot update %s\n", out.c_str());
    return 1;
  }
  std::printf("\nspliced \"sweep_threads\" + \"tick_parallel\" into %s\n",
              out.c_str());
  return 0;
}
