// Figure 12: comparison against the related proposals for the mixes whose
// GPU applications meet the 40 FPS target: FPS (top panel) and normalized
// weighted CPU speedup (bottom panel).
// Paper: every proposal keeps FPS above 40; CPU gains are SMS-0.9 +4%,
// SMS-0 +4%, DynPrio +10%, HeLM +3%, ThrotCPUprio +18%.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace gpuqos;
using namespace gpuqos::bench;

int main(int argc, char** argv) {
  init_harness(argc, argv, "Figure 12: policy comparison, high-FPS mixes.");
  print_header("Figure 12 — policy comparison, high-FPS mixes",
               "top: FPS; bottom: weighted CPU speedup vs baseline");
  const SimConfig cfg = four_core_config();
  const RunScale scale = bench_scale();
  const std::vector<Policy> policies = {Policy::Baseline, Policy::Sms09,
                                        Policy::Sms0,     Policy::DynPrio,
                                        Policy::Helm,     Policy::ThrottleCpuPrio};
  prefetch_alone_ipcs(cfg, high_fps_mixes(), scale);
  prefetch_hetero(cfg, high_fps_mixes(), policies, scale);

  std::printf("FPS\n%-8s %-10s", "mix", "gpu app");
  for (Policy p : policies) std::printf(" %12s", to_string(p).c_str());
  std::printf("\n");
  std::vector<std::vector<double>> fps_rows, ws_rows;
  for (const auto& m : high_fps_mixes()) {
    std::printf("%-8s %-10s", m.id.c_str(), m.gpu_app.c_str());
    std::vector<double> fps_row;
    for (Policy p : policies) {
      const HeteroResult r = cached_hetero(cfg, m, p, scale);
      fps_row.push_back(r.fps);
      std::printf(" %12.1f", r.fps);
      std::fflush(stdout);
    }
    fps_rows.push_back(fps_row);
    std::printf("\n");
  }

  std::printf("\nNormalized weighted CPU speedup\n%-8s %-10s", "mix",
              "gpu app");
  for (Policy p : policies) std::printf(" %12s", to_string(p).c_str());
  std::printf("\n");
  std::vector<std::vector<double>> per_policy(policies.size());
  for (const auto& m : high_fps_mixes()) {
    const auto alone = cached_alone_ipcs(cfg, m, scale);
    const double wb = weighted_speedup(
        cached_hetero(cfg, m, Policy::Baseline, scale).cpu_ipc, alone);
    std::printf("%-8s %-10s", m.id.c_str(), m.gpu_app.c_str());
    for (std::size_t i = 0; i < policies.size(); ++i) {
      const HeteroResult r = cached_hetero(cfg, m, policies[i], scale);
      const double ws =
          wb > 0 ? weighted_speedup(r.cpu_ipc, alone) / wb : 0.0;
      per_policy[i].push_back(ws);
      std::printf(" %12.3f", ws);
    }
    std::printf("\n");
  }
  std::printf("%-8s %-10s", "GEOMEAN", "");
  for (const auto& col : per_policy) std::printf(" %12.3f", geomean(col));
  std::printf("\n\npaper: +4%% / +4%% / +10%% / +3%% / +18%% over baseline\n");
  return 0;
}
