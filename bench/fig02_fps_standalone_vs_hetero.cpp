// Figure 2: GPU frame rate in standalone vs heterogeneous execution for the
// fourteen applications (W-mix pairing), with the 30 FPS reference line.
// Paper: several applications stay comfortably above 30 FPS even in
// heterogeneous mode.
#include <cstdio>

#include "bench_util.hpp"

using namespace gpuqos;
using namespace gpuqos::bench;

int main(int argc, char** argv) {
  init_harness(argc, argv, "Figure 2: GPU FPS standalone vs heterogeneous (Section II).");
  print_header("Figure 2 — GPU FPS, standalone vs heterogeneous (W1-W14)",
               "reference line: 30 FPS (visual satisfaction threshold)");
  const SimConfig cfg = one_core_config();
  const RunScale scale = bench_scale();
  prefetch_gpu_alone(cfg, w_mixes(), scale);
  prefetch_hetero(cfg, w_mixes(), {Policy::Baseline}, scale);

  std::printf("%-6s %-14s %12s %12s %10s\n", "mix", "gpu app", "standalone",
              "hetero", ">=30FPS?");
  int above = 0;
  for (const auto& w : w_mixes()) {
    const auto& app = gpu_app(w.gpu_app);
    const HeteroResult galone = cached_gpu_alone(cfg, app, scale);
    const HeteroResult h = cached_hetero(cfg, w, Policy::Baseline, scale);
    const bool ok = h.fps >= 30.0;
    above += ok ? 1 : 0;
    std::printf("%-6s %-14s %12.1f %12.1f %10s\n", w.id.c_str(),
                w.gpu_app.c_str(), galone.fps, h.fps, ok ? "yes" : "no");
    std::fflush(stdout);
  }
  std::printf("\n%d of 14 applications meet 30 FPS in heterogeneous mode\n",
              above);
  return 0;
}
