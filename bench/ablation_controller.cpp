// Ablation of the two control-loop design choices DESIGN.md §4a documents
// on top of the paper's Figure-6 controller:
//   (a) relearn_on_cycles — the learned RTP table is also invalidated when
//       observed frame *cycles* diverge (keeps C_avg of Equation 2 anchored
//       to the throttled regime);
//   (b) hold_throttle_in_learning — the ATU keeps its WG window while the
//       estimator relearns (instead of releasing the throttle).
// Without (a) the controller equilibrates roughly halfway between the
// unthrottled frame time and CT; without (b) learning frames run at full
// speed and the loop oscillates. This harness quantifies both on one
// high-FPS mix.
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.hpp"
#include "sim/sweep.hpp"

using namespace gpuqos;
using namespace gpuqos::bench;

int main(int argc, char** argv) {
  init_harness(argc, argv, "Ablation of the QoS control-loop design choices (DESIGN.md 4a).");
  print_header("Ablation — QoS control-loop design choices (mix M13, UT2004)",
               "throttle-only policy; target 40 FPS; lower FPS surplus = "
               "tighter convergence");
  const RunScale scale = bench_scale();
  const HeteroMix& m = mix("M13");

  struct Variant {
    const char* name;
    bool relearn_on_cycles;
    bool hold;
  };
  const Variant variants[] = {
      {"full (default)", true, true},
      {"no cycle-relearn", false, true},
      {"no hold-in-learning", true, false},
      {"literal Fig.6 only", false, false},
  };

  const SimConfig base_cfg = four_core_config();
  const auto alone = cached_alone_ipcs(base_cfg, m, scale);
  const HeteroResult baseline =
      cached_hetero(base_cfg, m, Policy::Baseline, scale);
  const double ws_base = weighted_speedup(baseline.cpu_ipc, alone);

  std::printf("%-22s %10s %12s %10s\n", "variant", "GPU FPS", "CPU speedup",
              "relearns");
  // The four variants are independent sims: run them through the sweep pool
  // and print in variant order (results[i] <- jobs[i], so output is
  // byte-identical to the serial loop).
  std::vector<std::function<HeteroResult()>> jobs;
  for (const auto& v : variants) {
    SimConfig cfg = base_cfg;
    cfg.qos.relearn_on_cycles = v.relearn_on_cycles;
    cfg.qos.hold_throttle_in_learning = v.hold;
    jobs.push_back([cfg, &m, &scale] {
      return run_hetero(cfg, m, Policy::Throttle, scale);
    });
  }
  const std::vector<HeteroResult> results = run_many(std::move(jobs));
  for (std::size_t i = 0; i < results.size(); ++i) {
    const HeteroResult& r = results[i];
    const double ws = ws_base > 0
                          ? weighted_speedup(r.cpu_ipc, alone) / ws_base
                          : 0.0;
    std::printf("%-22s %10.1f %12.3f %10llu\n", variants[i].name, r.fps, ws,
                static_cast<unsigned long long>(r.est_relearns));
    std::fflush(stdout);
  }
  std::printf(
      "\nbaseline (no throttling) FPS: %.1f — the default variant should\n"
      "sit closest to the 40 FPS target with the best CPU speedup.\n",
      baseline.fps);
  return 0;
}
