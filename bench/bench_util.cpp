#include "bench_util.hpp"

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "svc/client.hpp"
#include "svc/jobspec.hpp"
#include "svc/options.hpp"

namespace gpuqos::bench {
namespace {

svc::ClientFlags g_client_flags;
svc::ExecFlags g_exec_flags;

std::string default_store_dir() {
  // GPUQOS_BENCH_CACHE is the documented override; GPUQOS_CACHE_DIR is the
  // original spelling, kept so existing scripts don't silently re-simulate.
  const char* env = std::getenv("GPUQOS_BENCH_CACHE");
  if (env == nullptr) env = std::getenv("GPUQOS_CACHE_DIR");
  return env != nullptr ? env : "gpuqos_bench_cache";
}

/// Process-wide service client. Built on first use from whatever
/// init_harness parsed (or the defaults when a harness never called it);
/// remote when --socket / GPUQOS_SERVE_SOCKET names a live daemon.
svc::Client& client() {
  // NOLINT-gpuqos(concurrency-discipline): C++11 magic-static init is
  // thread-safe; Client::submit_batch runs batches one at a time per caller.
  static std::unique_ptr<svc::Client> c = [] {
    svc::ExecFlags exec = g_exec_flags;
    if (exec.store_dir.empty()) exec.store_dir = default_store_dir();
    return svc::make_client(g_client_flags, exec);
  }();
  return *c;
}

svc::JobSpec job_base(const SimConfig& cfg) {
  // Every harness configuration is Presets::scaled() (the §II one-core setup
  // is the single-spec W-mix case, which config_for reproduces).
  svc::JobSpec spec;
  spec.preset = "scaled";
  spec.seed = cfg.seed;
  spec.target_fps = cfg.qos.target_fps;
  return spec;
}

svc::JobSpec hetero_spec(const SimConfig& cfg, const HeteroMix& mix,
                         Policy policy, const RunScale& scale) {
  svc::JobSpec spec = job_base(cfg);
  spec.kind = svc::JobKind::kHetero;
  spec.mix_id = mix.id;
  spec.policy = to_string(policy);
  spec.scale = scale;
  return spec;
}

svc::JobSpec cpu_alone_spec(const SimConfig& cfg, int spec_id,
                            const RunScale& scale) {
  svc::JobSpec spec = job_base(cfg);
  spec.kind = svc::JobKind::kCpuAlone;
  spec.spec_id = spec_id;
  spec.scale = scale;
  return spec;
}

svc::JobSpec gpu_alone_spec(const SimConfig& cfg, const GpuAppDesc& app,
                            const RunScale& scale) {
  svc::JobSpec spec = job_base(cfg);
  spec.kind = svc::JobKind::kGpuAlone;
  spec.gpu_app = app.name;
  spec.scale = scale;
  return spec;
}

HeteroResult submit_one(const svc::JobSpec& spec) {
  return client().submit_batch({spec}).front().result;
}

void submit_all(std::vector<svc::JobSpec> jobs) {
  if (jobs.empty()) return;
  (void)client().submit_batch(jobs);
}

}  // namespace

void init_harness(int argc, char** argv, const char* what) {
  cli::OptionSet opts("[--socket PATH] [--store-dir DIR] [--flags...]", what);
  g_exec_flags.store_dir = default_store_dir();
  svc::register_client_flags(opts, g_client_flags);
  svc::register_exec_flags(opts, g_exec_flags);

  std::vector<const char*> positional;
  opts.parse(argc, argv, positional);
  if (!positional.empty()) {
    std::fprintf(stderr, "%s: unexpected argument '%s'\n", argv[0],
                 positional.front());
    std::exit(2);
  }
}

RunScale bench_scale() { return RunScale::from_env(); }

SimConfig one_core_config() {
  SimConfig cfg = Presets::scaled();
  cfg.cpu_cores = 1;
  return cfg;
}

SimConfig four_core_config() { return Presets::scaled(); }

HeteroResult cached_hetero(const SimConfig& cfg, const HeteroMix& mix,
                           Policy policy, const RunScale& scale) {
  return submit_one(hetero_spec(cfg, mix, policy, scale));
}

HeteroResult cached_gpu_alone(const SimConfig& cfg, const GpuAppDesc& app,
                              const RunScale& scale) {
  return submit_one(gpu_alone_spec(cfg, app, scale));
}

double cached_cpu_alone(const SimConfig& cfg, int spec_id,
                        const RunScale& scale) {
  const HeteroResult r = submit_one(cpu_alone_spec(cfg, spec_id, scale));
  return r.cpu_ipc.empty() ? 0.0 : r.cpu_ipc[0];
}

std::vector<double> cached_alone_ipcs(const SimConfig& cfg,
                                      const HeteroMix& mix,
                                      const RunScale& scale) {
  std::vector<svc::JobSpec> jobs;
  jobs.reserve(mix.cpu_specs.size());
  for (int id : mix.cpu_specs) jobs.push_back(cpu_alone_spec(cfg, id, scale));
  const std::vector<svc::JobResult> results = client().submit_batch(jobs);
  std::vector<double> out;
  out.reserve(results.size());
  for (const svc::JobResult& r : results) {
    out.push_back(r.result.cpu_ipc.empty() ? 0.0 : r.result.cpu_ipc[0]);
  }
  return out;
}

void prefetch_hetero(const SimConfig& cfg, const std::vector<HeteroMix>& mixes,
                     const std::vector<Policy>& policies,
                     const RunScale& scale) {
  std::vector<svc::JobSpec> jobs;
  jobs.reserve(mixes.size() * policies.size());
  for (const HeteroMix& mix : mixes) {
    for (Policy policy : policies) {
      jobs.push_back(hetero_spec(cfg, mix, policy, scale));
    }
  }
  submit_all(std::move(jobs));
}

void prefetch_alone_ipcs(const SimConfig& cfg,
                         const std::vector<HeteroMix>& mixes,
                         const RunScale& scale) {
  std::vector<svc::JobSpec> jobs;
  for (const HeteroMix& mix : mixes) {
    for (int id : mix.cpu_specs) jobs.push_back(cpu_alone_spec(cfg, id, scale));
  }
  submit_all(std::move(jobs));
}

void prefetch_gpu_alone(const SimConfig& cfg,
                        const std::vector<HeteroMix>& mixes,
                        const RunScale& scale) {
  std::vector<svc::JobSpec> jobs;
  for (const HeteroMix& mix : mixes) {
    jobs.push_back(gpu_alone_spec(cfg, gpu_app(mix.gpu_app), scale));
  }
  submit_all(std::move(jobs));
}

void print_header(const std::string& title, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("==============================================================\n");
}

void print_geomean_row(const char* label, const std::vector<double>& values) {
  std::printf("%-16s %8.3f\n", label, geomean(values));
}

}  // namespace gpuqos::bench
