#include "bench_util.hpp"

#include <sys/stat.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/stats.hpp"

namespace gpuqos::bench {
namespace {

std::string cache_dir() {
  const char* env = std::getenv("GPUQOS_CACHE_DIR");
  std::string dir = env != nullptr ? env : "gpuqos_bench_cache";
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

std::string scale_key(const RunScale& s) {
  std::ostringstream os;
  os << s.warm_instrs << '_' << s.measure_instrs << '_' << s.warm_frames << '_'
     << s.measure_frames << '_' << s.warm_min_cycles;
  return os.str();
}

bool load(const std::string& path, HeteroResult& r) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line) || line != kCacheVersion) return false;
  std::size_t n_ipc = 0, n_stats = 0;
  in >> r.mix_id >> r.fps >> r.gpu_frame_cycles >> r.seconds >>
      r.est_error_pct >> r.est_samples >> r.est_relearns >> n_ipc >> n_stats;
  if (!in) return false;
  r.cpu_ipc.resize(n_ipc);
  for (auto& v : r.cpu_ipc) in >> v;
  for (std::size_t i = 0; i < n_stats; ++i) {
    std::string name;
    std::uint64_t value = 0;
    in >> name >> value;
    r.stat_delta[name] = value;
  }
  return static_cast<bool>(in);
}

void store(const std::string& path, const HeteroResult& r) {
  std::ofstream out(path);
  out << kCacheVersion << '\n'
      << (r.mix_id.empty() ? "-" : r.mix_id) << ' ' << r.fps << ' '
      << r.gpu_frame_cycles << ' ' << r.seconds << ' ' << r.est_error_pct
      << ' ' << r.est_samples << ' ' << r.est_relearns << ' '
      << r.cpu_ipc.size() << ' ' << r.stat_delta.size() << '\n';
  for (double v : r.cpu_ipc) out << v << ' ';
  out << '\n';
  for (const auto& [name, value] : r.stat_delta) {
    out << name << ' ' << value << '\n';
  }
}

}  // namespace

RunScale bench_scale() { return RunScale::from_env(); }

SimConfig one_core_config() {
  SimConfig cfg = Presets::scaled();
  cfg.cpu_cores = 1;
  return cfg;
}

SimConfig four_core_config() { return Presets::scaled(); }

HeteroResult cached_hetero(const SimConfig& cfg, const HeteroMix& mix,
                           Policy policy, const RunScale& scale) {
  const std::string path = cache_dir() + "/h_" + mix.id + "_" +
                           to_string(policy) + "_c" +
                           std::to_string(cfg.cpu_cores) + "_" +
                           scale_key(scale) + ".txt";
  HeteroResult r;
  if (load(path, r)) {
    r.policy = policy;
    r.spec_ids = mix.cpu_specs;
    return r;
  }
  r = run_hetero(cfg, mix, policy, scale);
  store(path, r);
  return r;
}

HeteroResult cached_gpu_alone(const SimConfig& cfg, const GpuAppDesc& app,
                              const RunScale& scale) {
  const std::string path =
      cache_dir() + "/g_" + app.name + "_" + scale_key(scale) + ".txt";
  HeteroResult r;
  if (load(path, r)) return r;
  r = standalone_gpu(cfg, app, scale);
  store(path, r);
  return r;
}

double cached_cpu_alone(const SimConfig& cfg, int spec_id,
                        const RunScale& scale) {
  const std::string path = cache_dir() + "/c_" + std::to_string(spec_id) +
                           "_" + scale_key(scale) + ".txt";
  {
    std::ifstream in(path);
    std::string ver;
    double ipc = 0;
    if (in && std::getline(in, ver) && ver == kCacheVersion && (in >> ipc)) {
      return ipc;
    }
  }
  const double ipc = standalone_cpu_ipc(cfg, spec_id, scale);
  std::ofstream out(path);
  out << kCacheVersion << '\n' << ipc << '\n';
  return ipc;
}

std::vector<double> cached_alone_ipcs(const SimConfig& cfg,
                                      const HeteroMix& mix,
                                      const RunScale& scale) {
  SimConfig one = cfg;
  one.cpu_cores = 1;
  std::vector<double> out;
  out.reserve(mix.cpu_specs.size());
  for (int id : mix.cpu_specs) out.push_back(cached_cpu_alone(one, id, scale));
  return out;
}

void print_header(const std::string& title, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("==============================================================\n");
}

void print_geomean_row(const char* label, const std::vector<double>& values) {
  std::printf("%-16s %8.3f\n", label, geomean(values));
}

}  // namespace gpuqos::bench
