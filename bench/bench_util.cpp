#include "bench_util.hpp"

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include "common/stats.hpp"
#include "sim/sweep.hpp"

namespace gpuqos::bench {
namespace {

std::string cache_dir() {
  // GPUQOS_BENCH_CACHE is the documented override; GPUQOS_CACHE_DIR is the
  // original spelling, kept so existing scripts don't silently re-simulate.
  const char* env = std::getenv("GPUQOS_BENCH_CACHE");
  if (env == nullptr) env = std::getenv("GPUQOS_CACHE_DIR");
  std::string dir = env != nullptr ? env : "gpuqos_bench_cache";
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

std::string scale_key(const RunScale& s) {
  std::ostringstream os;
  os << s.warm_instrs << '_' << s.measure_instrs << '_' << s.warm_frames << '_'
     << s.measure_frames << '_' << s.warm_min_cycles;
  return os.str();
}

bool load(const std::string& path, HeteroResult& r) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line) || line != kCacheVersion) return false;
  std::size_t n_ipc = 0, n_stats = 0;
  in >> r.mix_id >> r.fps >> r.gpu_frame_cycles >> r.seconds >>
      r.est_error_pct >> r.est_samples >> r.est_relearns >> n_ipc >> n_stats;
  if (!in) return false;
  r.cpu_ipc.resize(n_ipc);
  for (auto& v : r.cpu_ipc) in >> v;
  for (std::size_t i = 0; i < n_stats; ++i) {
    std::string name;
    std::uint64_t value = 0;
    in >> name >> value;
    r.stat_delta[name] = value;
  }
  return static_cast<bool>(in);
}

// Stage through a temp file + rename, serialized on the sweep I/O mutex, so
// a concurrent reader (or a second harness process) never sees a torn file.
// A failed or short staging write abandons the rename: the cache keeps its
// previous entry instead of installing a torn one.
void write_atomic(const std::string& path, const std::string& contents) {
  std::lock_guard<std::mutex> lock(sweep_io_mutex());
  const std::string tmp = path + ".tmp";
  bool ok = false;
  {
    std::ofstream out(tmp);
    out << contents;
    out.flush();
    ok = static_cast<bool>(out);
  }
  if (!ok) {
    std::fprintf(stderr, "bench cache: short write to %s, entry dropped\n",
                 tmp.c_str());
    std::remove(tmp.c_str());
    return;
  }
  std::rename(tmp.c_str(), path.c_str());
}

void store(const std::string& path, const HeteroResult& r) {
  std::ostringstream out;
  out << kCacheVersion << '\n'
      << (r.mix_id.empty() ? "-" : r.mix_id) << ' ' << r.fps << ' '
      << r.gpu_frame_cycles << ' ' << r.seconds << ' ' << r.est_error_pct
      << ' ' << r.est_samples << ' ' << r.est_relearns << ' '
      << r.cpu_ipc.size() << ' ' << r.stat_delta.size() << '\n';
  for (double v : r.cpu_ipc) out << v << ' ';
  out << '\n';
  for (const auto& [name, value] : r.stat_delta) {
    out << name << ' ' << value << '\n';
  }
  write_atomic(path, out.str());
}

std::string hetero_path(const SimConfig& cfg, const HeteroMix& mix,
                        Policy policy, const RunScale& scale) {
  return cache_dir() + "/h_" + mix.id + "_" + to_string(policy) + "_c" +
         std::to_string(cfg.cpu_cores) + "_" + scale_key(scale) + ".txt";
}

std::string cpu_alone_path(int spec_id, const RunScale& scale) {
  return cache_dir() + "/c_" + std::to_string(spec_id) + "_" +
         scale_key(scale) + ".txt";
}

std::string gpu_alone_path(const GpuAppDesc& app, const RunScale& scale) {
  return cache_dir() + "/g_" + app.name + "_" + scale_key(scale) + ".txt";
}

}  // namespace

RunScale bench_scale() { return RunScale::from_env(); }

SimConfig one_core_config() {
  SimConfig cfg = Presets::scaled();
  cfg.cpu_cores = 1;
  return cfg;
}

SimConfig four_core_config() { return Presets::scaled(); }

HeteroResult cached_hetero(const SimConfig& cfg, const HeteroMix& mix,
                           Policy policy, const RunScale& scale) {
  const std::string path = hetero_path(cfg, mix, policy, scale);
  HeteroResult r;
  if (load(path, r)) {
    r.policy = policy;
    r.spec_ids = mix.cpu_specs;
    return r;
  }
  r = run_hetero(cfg, mix, policy, scale);
  store(path, r);
  return r;
}

HeteroResult cached_gpu_alone(const SimConfig& cfg, const GpuAppDesc& app,
                              const RunScale& scale) {
  const std::string path = gpu_alone_path(app, scale);
  HeteroResult r;
  if (load(path, r)) return r;
  r = standalone_gpu(cfg, app, scale);
  store(path, r);
  return r;
}

double cached_cpu_alone(const SimConfig& cfg, int spec_id,
                        const RunScale& scale) {
  const std::string path = cpu_alone_path(spec_id, scale);
  {
    std::ifstream in(path);
    std::string ver;
    double ipc = 0;
    if (in && std::getline(in, ver) && ver == kCacheVersion && (in >> ipc)) {
      return ipc;
    }
  }
  const double ipc = standalone_cpu_ipc(cfg, spec_id, scale);
  std::ostringstream out;
  out << kCacheVersion << '\n' << ipc << '\n';
  write_atomic(path, out.str());
  return ipc;
}

std::vector<double> cached_alone_ipcs(const SimConfig& cfg,
                                      const HeteroMix& mix,
                                      const RunScale& scale) {
  SimConfig one = cfg;
  one.cpu_cores = 1;
  std::vector<double> out;
  out.reserve(mix.cpu_specs.size());
  for (int id : mix.cpu_specs) out.push_back(cached_cpu_alone(one, id, scale));
  return out;
}

void prefetch_hetero(const SimConfig& cfg, const std::vector<HeteroMix>& mixes,
                     const std::vector<Policy>& policies,
                     const RunScale& scale) {
  std::set<std::string> seen;
  std::vector<std::function<int()>> jobs;
  for (const HeteroMix& mix : mixes) {
    for (Policy policy : policies) {
      if (!seen.insert(hetero_path(cfg, mix, policy, scale)).second) continue;
      jobs.push_back([&cfg, &mix, policy, &scale] {
        (void)cached_hetero(cfg, mix, policy, scale);
        return 0;
      });
    }
  }
  (void)run_many(std::move(jobs));
}

void prefetch_alone_ipcs(const SimConfig& cfg,
                         const std::vector<HeteroMix>& mixes,
                         const RunScale& scale) {
  SimConfig one = cfg;
  one.cpu_cores = 1;
  std::set<std::string> seen;
  std::vector<std::function<int()>> jobs;
  for (const HeteroMix& mix : mixes) {
    for (int id : mix.cpu_specs) {
      if (!seen.insert(cpu_alone_path(id, scale)).second) continue;
      jobs.push_back([one, id, &scale] {
        (void)cached_cpu_alone(one, id, scale);
        return 0;
      });
    }
  }
  (void)run_many(std::move(jobs));
}

void prefetch_gpu_alone(const SimConfig& cfg,
                        const std::vector<HeteroMix>& mixes,
                        const RunScale& scale) {
  std::set<std::string> seen;
  std::vector<std::function<int()>> jobs;
  for (const HeteroMix& mix : mixes) {
    const GpuAppDesc& app = gpu_app(mix.gpu_app);
    if (!seen.insert(gpu_alone_path(app, scale)).second) continue;
    jobs.push_back([&cfg, &app, &scale] {
      (void)cached_gpu_alone(cfg, app, scale);
      return 0;
    });
  }
  (void)run_many(std::move(jobs));
}

void print_header(const std::string& title, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("==============================================================\n");
}

void print_geomean_row(const char* label, const std::vector<double>& values) {
  std::printf("%-16s %8.3f\n", label, geomean(values));
}

}  // namespace gpuqos::bench
