// Figure 1: performance of the CPU and the GPU in heterogeneous execution
// normalized to standalone execution, for the single-CPU mixes W1-W14.
// Paper: both classes lose ~22% on average (GMEAN ~0.78).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace gpuqos;
using namespace gpuqos::bench;

int main(int argc, char** argv) {
  init_harness(argc, argv, "Figure 1: CPU/GPU degradation when co-running (Section II).");
  print_header("Figure 1 — heterogeneous vs standalone performance (W1-W14)",
               "normalized performance = standalone time / heterogeneous time");
  const SimConfig cfg = one_core_config();
  const RunScale scale = bench_scale();
  prefetch_alone_ipcs(cfg, w_mixes(), scale);
  prefetch_gpu_alone(cfg, w_mixes(), scale);
  prefetch_hetero(cfg, w_mixes(), {Policy::Baseline}, scale);

  std::printf("%-6s %-14s %-16s %10s %10s\n", "mix", "gpu app", "cpu app",
              "CPU", "GPU");
  std::vector<double> cpu_norm, gpu_norm;
  for (const auto& w : w_mixes()) {
    const auto& app = gpu_app(w.gpu_app);
    const double alone_ipc = cached_cpu_alone(cfg, w.cpu_specs[0], scale);
    const HeteroResult galone = cached_gpu_alone(cfg, app, scale);
    const HeteroResult h = cached_hetero(cfg, w, Policy::Baseline, scale);
    const double cn = alone_ipc > 0 ? h.cpu_ipc[0] / alone_ipc : 0.0;
    const double gn = galone.fps > 0 ? h.fps / galone.fps : 0.0;
    cpu_norm.push_back(cn);
    gpu_norm.push_back(gn);
    std::printf("%-6s %-14s %-16d %10.3f %10.3f\n", w.id.c_str(),
                w.gpu_app.c_str(), w.cpu_specs[0], cn, gn);
    std::fflush(stdout);
  }
  std::printf("%-6s %-14s %-16s %10.3f %10.3f\n", "GMEAN", "", "",
              geomean(cpu_norm), geomean(gpu_norm));
  std::printf("\npaper: GMEAN ~0.78 for both CPU and GPU\n");
  return 0;
}
