// Observability performance harness (docs/OBSERVABILITY.md §perf,
// docs/PERFORMANCE.md). Three sections, written as BENCH_obs.json and
// summarized on stdout:
//
//   1. overhead — the same M8 ThrotCPUprio run timed with observability off
//      and with everything on (sampler, journal, trace, histograms, profiler
//      with periodic flushes). Best of three reps each; the headline number
//      is the percentage slowdown of the fully instrumented run. The CI
//      perf-smoke gate fails the build when it exceeds --max-overhead-pct.
//   2. binlog_vs_jsonl — the binary telemetry stream (obs/binlog.hpp)
//      against the native JSONL writers on the section-1 capture: encoded
//      size ratio, encode-time ratio, and a decode_matches flag asserting
//      obs_cat's JSONL/trace reconstruction is byte-identical.
//   3. pool_merge — per-worker profilers through run_many(), merged at join;
//      checks the merged attribution equals the per-job sums.
//
// GPUQOS_FAST=1 shrinks every budget for CI smoke runs. Usage:
//   perf_obs [--out BENCH_obs.json] [--max-overhead-pct PCT]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/jsonio.hpp"
#include "obs/binlog.hpp"
#include "obs/counters.hpp"
#include "obs/telemetry.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"

using namespace gpuqos;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

TelemetryOptions full_options(Cycle sample_interval) {
  TelemetryOptions topts;
  topts.sample_interval = sample_interval;
  topts.capture_trace = true;
  topts.capture_journal = true;
  topts.capture_histograms = true;
  topts.capture_log = true;
  topts.capture_profile = true;
  topts.prof_flush_interval = sample_interval * 10;
  return topts;
}

/// One timed M8 run; `telemetry` null = observability off.
double time_run(const RunScale& scale, Telemetry* telemetry) {
  SimConfig cfg = Presets::scaled();
  RunHooks hooks;
  hooks.telemetry = telemetry;
  const auto t0 = std::chrono::steady_clock::now();
  (void)run_hetero(cfg, mix("M8"), Policy::ThrottleCpuPrio, scale, hooks);
  return seconds_since(t0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_obs.json";
  double max_overhead_pct = 0.0;  // 0 = report only, no gate

  cli::OptionSet opts("[--out BENCH_obs.json] [--max-overhead-pct PCT]",
                      "observability overhead + binlog harness "
                      "(docs/OBSERVABILITY.md)");
  opts.str("--out", "FILE", "benchmark report destination", &out);
  opts.f64("--max-overhead-pct", "PCT",
           "exit 1 when full-telemetry overhead exceeds PCT (0 = no gate)",
           &max_overhead_pct);
  std::vector<const char*> positional;
  opts.parse(argc, argv, positional);

  const char* fast_env = std::getenv("GPUQOS_FAST");
  const bool fast = fast_env != nullptr && std::strcmp(fast_env, "0") != 0;
  const int reps = 3;

  RunScale scale = RunScale::from_env();
  if (!fast) {
    // Full mode still keeps the run bounded: the comparison needs identical
    // work on both sides, not a long simulation.
    scale.warm_instrs = 100'000;
    scale.measure_instrs = 600'000;
    scale.warm_frames = 2;
    scale.measure_frames = 3;
    scale.warm_min_cycles = 1'000'000;
    scale.max_cycles = 100'000'000;
  }
  const Cycle sample_interval = 100'000;

  // --- 1. Overhead: off vs fully instrumented, best of `reps`.
  std::printf("observability overhead (M8 ThrotCPUprio, best of %d):\n", reps);
  double off_s = 1e30;
  for (int i = 0; i < reps; ++i) off_s = std::min(off_s, time_run(scale, nullptr));
  double on_s = 1e30;
  std::unique_ptr<Telemetry> kept;  // last instrumented capture, for §2
  for (int i = 0; i < reps; ++i) {
    auto telemetry = std::make_unique<Telemetry>(full_options(sample_interval));
    on_s = std::min(on_s, time_run(scale, telemetry.get()));
    kept = std::move(telemetry);
  }
  const double overhead_pct = off_s > 0 ? (on_s - off_s) / off_s * 100.0 : 0.0;
  std::printf("  off %.3fs, full telemetry %.3fs -> overhead %.2f%%\n", off_s,
              on_s, overhead_pct);

  // --- 2. Binlog vs JSONL on the section-1 capture.
  const SimConfig cfg = Presets::scaled();
  const ActivityCounterBank bank = ActivityCounterBank::for_config(cfg);

  std::string jsonl_samples, jsonl_journal, jsonl_trace;
  double jsonl_s = 1e30;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    std::ostringstream ss, js, ts;
    kept->sampler().write_jsonl(ss);
    kept->journal().write_jsonl(js);
    kept->trace().write(ts);
    jsonl_s = std::min(jsonl_s, seconds_since(t0));
    jsonl_samples = ss.str();
    jsonl_journal = js.str();
    jsonl_trace = ts.str();
  }
  const std::size_t jsonl_bytes =
      jsonl_samples.size() + jsonl_journal.size() + jsonl_trace.size();

  std::vector<std::uint8_t> bin;
  double bin_s = 1e30;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    BinLogWriter w;
    kept->sampler().write_binlog(w);
    kept->journal().write_binlog(w);
    kept->trace().write_binlog(w);
    kept->profiler()->write_binlog(w);
    bank.write_binlog(w, kept->counters());
    bin_s = std::min(bin_s, seconds_since(t0));
    bin = w.bytes();
  }

  bool decode_matches = false;
  try {
    std::ostringstream ss, js, ts;
    {
      BinLogReader r(bin);
      binlog_to_jsonl(r, "samples", ss);
    }
    {
      BinLogReader r(bin);
      binlog_to_jsonl(r, "journal", js);
    }
    {
      BinLogReader r(bin);
      binlog_to_chrome_trace(r, ts);
    }
    decode_matches = ss.str() == jsonl_samples && js.str() == jsonl_journal &&
                     ts.str() == jsonl_trace;
  } catch (const BinLogError& e) {
    std::fprintf(stderr, "binlog decode failed: %s\n", e.what());
  }
  const double size_ratio =
      bin.empty() ? 0.0
                  : static_cast<double>(jsonl_bytes) /
                        static_cast<double>(bin.size());
  const double encode_ratio = bin_s > 0 ? jsonl_s / bin_s : 0.0;
  std::printf(
      "binlog vs jsonl: %zu vs %zu bytes (%.2fx smaller), encode %.1fus vs "
      "%.1fus (%.2fx faster), decode %s\n",
      bin.size(), jsonl_bytes, size_ratio, bin_s * 1e6, jsonl_s * 1e6,
      encode_ratio, decode_matches ? "byte-identical" : "MISMATCH");

  // --- 3. Per-worker profilers merged at join.
  RunScale tiny;
  tiny.warm_instrs = 20'000;
  tiny.measure_instrs = 50'000;
  tiny.warm_frames = 1;
  tiny.measure_frames = 1;
  tiny.warm_min_cycles = 200'000;
  tiny.max_cycles = 50'000'000;
  const unsigned pool_jobs = 2;
  std::vector<std::unique_ptr<Telemetry>> tels;
  std::vector<std::function<HeteroResult()>> jobs;
  for (unsigned j = 0; j < pool_jobs; ++j) {
    tels.push_back(std::make_unique<Telemetry>(full_options(sample_interval)));
    Telemetry* t = tels.back().get();
    jobs.push_back([&tiny, t] {
      SimConfig jcfg = Presets::scaled();
      jcfg.cpu_cores = 1;
      RunHooks hooks;
      hooks.telemetry = t;
      return run_hetero(jcfg, mix("M1"), Policy::Baseline, tiny, hooks);
    });
  }
  (void)run_many(std::move(jobs));
  std::uint64_t per_job_ticks = 0, per_job_entries = 0;
  for (const auto& t : tels) {
    per_job_ticks += t->profiler()->attributed_ticks();
    for (int p = 0; p < kNumProfPhases; ++p) {
      for (int m = 0; m < kNumProfModules; ++m) {
        per_job_entries += t->profiler()
                               ->slot(static_cast<ProfPhase>(p),
                                      static_cast<ProfModule>(m))
                               .entries;
      }
    }
  }
  Profiler merged;
  for (const auto& t : tels) merged.merge(*t->profiler());
  std::uint64_t merged_entries = 0;
  for (int p = 0; p < kNumProfPhases; ++p) {
    for (int m = 0; m < kNumProfModules; ++m) {
      merged_entries += merged
                            .slot(static_cast<ProfPhase>(p),
                                  static_cast<ProfModule>(m))
                            .entries;
    }
  }
  const bool merge_ok = merged.attributed_ticks() == per_job_ticks &&
                        merged_entries == per_job_entries &&
                        merged.attributed_ticks() <= merged.total_ticks();
  std::printf("pool merge (%u jobs): %s (%llu attributed ticks)\n", pool_jobs,
              merge_ok ? "consistent" : "MISMATCH",
              static_cast<unsigned long long>(merged.attributed_ticks()));

  // --- Report.
  std::ofstream os(out);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", out.c_str());
    return 1;
  }
  os << "{\n  \"overhead\": {\"mix\": \"M8\", \"policy\": \"ThrotCPUprio\", "
     << "\"reps\": " << reps << ", \"off_seconds\": " << json_double(off_s)
     << ", \"full_seconds\": " << json_double(on_s)
     << ", \"overhead_pct\": " << json_double(overhead_pct) << "},\n";
  os << "  \"binlog_vs_jsonl\": {\"binlog_bytes\": " << bin.size()
     << ", \"jsonl_bytes\": " << jsonl_bytes
     << ", \"size_ratio\": " << json_double(size_ratio)
     << ", \"binlog_encode_seconds\": " << json_double(bin_s)
     << ", \"jsonl_encode_seconds\": " << json_double(jsonl_s)
     << ", \"encode_ratio\": " << json_double(encode_ratio)
     << ", \"decode_matches\": " << (decode_matches ? "true" : "false")
     << "},\n";
  os << "  \"pool_merge\": {\"jobs\": " << pool_jobs
     << ", \"consistent\": " << (merge_ok ? "true" : "false") << "}\n}\n";
  os.flush();
  if (!os) {
    std::fprintf(stderr, "short write to %s\n", out.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out.c_str());

  if (!decode_matches || !merge_ok) return 1;
  if (max_overhead_pct > 0 && overhead_pct > max_overhead_pct) {
    std::fprintf(stderr,
                 "observability overhead %.2f%% exceeds the %.2f%% gate\n",
                 overhead_pct, max_overhead_pct);
    return 1;
  }
  return 0;
}
