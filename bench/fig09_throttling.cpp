// Figure 9: (left) FPS of the six throttle-amenable GPU applications under
// baseline / throttled / throttled+CPU-priority; (right) normalized weighted
// CPU speedup of the corresponding mixes.
// Paper: throttled FPS settles just above the 40 FPS target; CPU speedup
// +11% with throttling alone, +18% with CPU priority added.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace gpuqos;
using namespace gpuqos::bench;

int main(int argc, char** argv) {
  init_harness(argc, argv, "Figure 9: CPU speedup under GPU access throttling.");
  print_header("Figure 9 — GPU access throttling (high-FPS mixes, 40 FPS target)",
               "FPS (left panel) and normalized weighted CPU speedup (right)");
  const SimConfig cfg = four_core_config();
  const RunScale scale = bench_scale();
  prefetch_alone_ipcs(cfg, high_fps_mixes(), scale);
  prefetch_hetero(
      cfg, high_fps_mixes(),
      {Policy::Baseline, Policy::Throttle, Policy::ThrottleCpuPrio}, scale);

  std::printf("%-8s %-10s | %8s %8s %8s | %9s %9s\n", "mix", "gpu app",
              "base", "throt", "thr+pri", "ws_throt", "ws_prio");
  std::vector<double> ws_t, ws_p;
  for (const auto& m : high_fps_mixes()) {
    const auto alone = cached_alone_ipcs(cfg, m, scale);
    const HeteroResult base = cached_hetero(cfg, m, Policy::Baseline, scale);
    const HeteroResult thr = cached_hetero(cfg, m, Policy::Throttle, scale);
    const HeteroResult pri =
        cached_hetero(cfg, m, Policy::ThrottleCpuPrio, scale);
    const double wb = weighted_speedup(base.cpu_ipc, alone);
    const double wt = weighted_speedup(thr.cpu_ipc, alone) / wb;
    const double wp = weighted_speedup(pri.cpu_ipc, alone) / wb;
    ws_t.push_back(wt);
    ws_p.push_back(wp);
    std::printf("%-8s %-10s | %8.1f %8.1f %8.1f | %9.3f %9.3f\n",
                m.id.c_str(), m.gpu_app.c_str(), base.fps, thr.fps, pri.fps,
                wt, wp);
    std::fflush(stdout);
  }
  std::printf("%-8s %-10s | %8s %8s %8s | %9.3f %9.3f\n", "GEOMEAN", "", "",
              "", "", geomean(ws_t), geomean(ws_p));
  std::printf("\npaper: throttled FPS ~40; CPU speedup +11%% / +18%%\n");
  return 0;
}
