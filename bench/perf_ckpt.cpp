// Checkpoint/warm-fork performance harness (docs/CHECKPOINT.md). A policy
// comparison repeats the same warm-up once per policy; warm-state forking
// (sim/runner.hpp: warm_hetero_snapshot + RunHooks{resume_data, kFork}) pays
// for it once and forks the drained warm state into every measured run. This
// harness times the same policy sweep both ways on one mix and writes the
// wall-clock numbers as BENCH_ckpt.json.
//
// The two paths measure from slightly different machine states (the fork
// path drains in-flight work at the warm-up barrier; the sequential path does
// not), so per-policy FPS numbers are reported side by side rather than
// asserted equal. GPUQOS_FAST=1 shrinks the budgets for CI smoke runs.
// Usage:
//   perf_ckpt [--out BENCH_ckpt.json]
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "sim/runner.hpp"

using namespace gpuqos;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_ckpt.json";
  cli::OptionSet opts("[--out FILE]",
                      "times a sequential policy sweep against warm-state "
                      "forking on M8");
  opts.str("--out", "FILE", "output JSON path (default BENCH_ckpt.json)",
           &out);
  std::vector<const char*> positional;
  opts.parse(argc, argv, positional);
  if (!positional.empty()) {
    opts.print_help(stderr, argv[0]);
    return 2;
  }

  const SimConfig cfg = Presets::scaled();
  const HeteroMix& m = mix("M8");
  const RunScale scale = RunScale::from_env();
  const std::vector<Policy> policies = {
      Policy::Baseline, Policy::Throttle, Policy::ThrottleCpuPrio,
      Policy::DynPrio};

  std::printf("checkpoint perf harness: mix %s, %zu policies\n\n",
              m.id.c_str(), policies.size());

  // Sequential reference: every policy runs warm-up + measurement in full.
  const auto t_seq = std::chrono::steady_clock::now();
  std::vector<HeteroResult> sequential;
  sequential.reserve(policies.size());
  for (Policy p : policies) {
    sequential.push_back(run_hetero(cfg, m, p, scale));
  }
  const double seq_s = seconds_since(t_seq);

  // Forked path: one warm-up (under policies.front()), then one measured run
  // per policy from the shared warm snapshot.
  const auto t_fork = std::chrono::steady_clock::now();
  const std::vector<HeteroResult> forked =
      run_hetero_forked(cfg, m, policies, scale);
  const double fork_s = seconds_since(t_fork);

  const double speedup = fork_s > 0 ? seq_s / fork_s : 0.0;
  std::printf("%-14s %12s %12s\n", "policy", "seq FPS", "forked FPS");
  for (std::size_t i = 0; i < policies.size(); ++i) {
    std::printf("%-14s %12.1f %12.1f\n", to_string(policies[i]).c_str(),
                sequential[i].fps, forked[i].fps);
  }
  std::printf("\nsequential %.2fs, warm-forked %.2fs (%.2fx)\n", seq_s, fork_s,
              speedup);

  std::ofstream os(out);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", out.c_str());
    return 1;
  }
  char buf[256];
  os << "{\n  \"mix\": \"" << m.id << "\",\n  \"policies\": [\n";
  for (std::size_t i = 0; i < policies.size(); ++i) {
    std::snprintf(buf, sizeof buf,
                  "    {\"policy\": \"%s\", \"sequential_fps\": %.2f, "
                  "\"forked_fps\": %.2f}%s\n",
                  to_string(policies[i]).c_str(), sequential[i].fps,
                  forked[i].fps, i + 1 == policies.size() ? "" : ",");
    os << buf;
  }
  std::snprintf(buf, sizeof buf,
                "  ],\n  \"sequential_seconds\": %.3f,\n"
                "  \"forked_seconds\": %.3f,\n  \"speedup\": %.3f\n}\n",
                seq_s, fork_s, speedup);
  os << buf;
  os.flush();
  if (!os) {
    std::fprintf(stderr, "short write to %s (disk full?)\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
