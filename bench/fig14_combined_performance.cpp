// Figure 14: equal-weight combined CPU+GPU performance of the heterogeneous
// processor for the low-FPS mixes.
// Paper: the proposal and DynPrio deliver baseline performance; both SMS
// variants suffer large losses; HeLM is ~1% below baseline.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace gpuqos;
using namespace gpuqos::bench;

int main(int argc, char** argv) {
  init_harness(argc, argv, "Figure 14: combined CPU+GPU performance, low-FPS mixes.");
  print_header("Figure 14 — combined CPU+GPU performance, low-FPS mixes",
               "geometric mean of normalized CPU speedup and normalized FPS");
  const SimConfig cfg = four_core_config();
  const RunScale scale = bench_scale();
  const std::vector<Policy> policies = {Policy::Baseline, Policy::Sms09,
                                        Policy::Sms0,     Policy::DynPrio,
                                        Policy::Helm,     Policy::ThrottleCpuPrio};
  prefetch_alone_ipcs(cfg, low_fps_mixes(), scale);
  prefetch_hetero(cfg, low_fps_mixes(), policies, scale);

  std::printf("%-8s %-12s", "mix", "gpu app");
  for (Policy p : policies) std::printf(" %12s", to_string(p).c_str());
  std::printf("\n");
  std::vector<std::vector<double>> cols(policies.size());
  for (const auto& m : low_fps_mixes()) {
    const auto alone = cached_alone_ipcs(cfg, m, scale);
    const HeteroResult base = cached_hetero(cfg, m, Policy::Baseline, scale);
    const double wb = weighted_speedup(base.cpu_ipc, alone);
    std::printf("%-8s %-12s", m.id.c_str(), m.gpu_app.c_str());
    for (std::size_t i = 0; i < policies.size(); ++i) {
      const HeteroResult r = cached_hetero(cfg, m, policies[i], scale);
      const double cpu_norm =
          wb > 0 ? weighted_speedup(r.cpu_ipc, alone) / wb : 0.0;
      const double gpu_norm = base.fps > 0 ? r.fps / base.fps : 0.0;
      const double combined = combined_performance(cpu_norm, gpu_norm);
      cols[i].push_back(combined);
      std::printf(" %12.3f", combined);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("%-8s %-12s", "GEOMEAN", "");
  for (const auto& col : cols) std::printf(" %12.3f", geomean(col));
  std::printf("\n\npaper: proposal & DynPrio ~1.0; SMS large losses; HeLM ~0.99\n");
  return 0;
}
