// Figure 13: the mixes whose GPU applications fail to meet the 40 FPS
// target: normalized FPS (top) and weighted CPU speedup (bottom).
// Paper: the proposal stays disabled (baseline-equal); SMS loses large GPU
// FPS for +7%/+6% CPU; DynPrio tracks the baseline; HeLM loses ~7% FPS for
// +4% CPU.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace gpuqos;
using namespace gpuqos::bench;

int main(int argc, char** argv) {
  init_harness(argc, argv, "Figure 13: policy comparison, low-FPS mixes.");
  print_header("Figure 13 — policy comparison, low-FPS mixes",
               "top: normalized FPS; bottom: weighted CPU speedup vs baseline");
  const SimConfig cfg = four_core_config();
  const RunScale scale = bench_scale();
  const std::vector<Policy> policies = {Policy::Baseline, Policy::Sms09,
                                        Policy::Sms0,     Policy::DynPrio,
                                        Policy::Helm,     Policy::ThrottleCpuPrio};
  prefetch_hetero(cfg, low_fps_mixes(), policies, scale);

  std::printf("Normalized FPS\n%-8s %-12s", "mix", "gpu app");
  for (Policy p : policies) std::printf(" %12s", to_string(p).c_str());
  std::printf("\n");
  std::vector<std::vector<double>> fps_cols(policies.size());
  for (const auto& m : low_fps_mixes()) {
    const double base_fps =
        cached_hetero(cfg, m, Policy::Baseline, scale).fps;
    std::printf("%-8s %-12s", m.id.c_str(), m.gpu_app.c_str());
    for (std::size_t i = 0; i < policies.size(); ++i) {
      const HeteroResult r = cached_hetero(cfg, m, policies[i], scale);
      const double nf = base_fps > 0 ? r.fps / base_fps : 0.0;
      fps_cols[i].push_back(nf);
      std::printf(" %12.3f", nf);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("%-8s %-12s", "GEOMEAN", "");
  for (const auto& col : fps_cols) std::printf(" %12.3f", geomean(col));

  std::printf("\n\nNormalized weighted CPU speedup\n%-8s %-12s", "mix",
              "gpu app");
  for (Policy p : policies) std::printf(" %12s", to_string(p).c_str());
  std::printf("\n");
  std::vector<std::vector<double>> ws_cols(policies.size());
  for (const auto& m : low_fps_mixes()) {
    const auto alone = cached_alone_ipcs(cfg, m, scale);
    const double wb = weighted_speedup(
        cached_hetero(cfg, m, Policy::Baseline, scale).cpu_ipc, alone);
    std::printf("%-8s %-12s", m.id.c_str(), m.gpu_app.c_str());
    for (std::size_t i = 0; i < policies.size(); ++i) {
      const HeteroResult r = cached_hetero(cfg, m, policies[i], scale);
      const double ws =
          wb > 0 ? weighted_speedup(r.cpu_ipc, alone) / wb : 0.0;
      ws_cols[i].push_back(ws);
      std::printf(" %12.3f", ws);
    }
    std::printf("\n");
  }
  std::printf("%-8s %-12s", "GEOMEAN", "");
  for (const auto& col : ws_cols) std::printf(" %12.3f", geomean(col));
  std::printf(
      "\n\npaper: SMS large FPS loss for +7%%/+6%% CPU; DynPrio ~baseline;\n"
      "HeLM -7%% FPS, +4%% CPU; the proposal stays disabled (~baseline)\n");
  return 0;
}
