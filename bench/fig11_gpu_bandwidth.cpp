// Figure 11: normalized DRAM bandwidth (read and write shown separately)
// consumed by the throttle-amenable GPU applications.
// Paper: GPU bandwidth demand drops 35% (throttled) / 37% (+CPU priority);
// both read and write components fall across the board.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace gpuqos;
using namespace gpuqos::bench;

int main(int argc, char** argv) {
  init_harness(argc, argv, "Figure 11: GPU DRAM bandwidth under throttling.");
  print_header("Figure 11 — normalized GPU DRAM bandwidth under throttling",
               "bytes/second normalized to the heterogeneous baseline");
  const SimConfig cfg = four_core_config();
  const RunScale scale = bench_scale();
  prefetch_hetero(
      cfg, high_fps_mixes(),
      {Policy::Baseline, Policy::Throttle, Policy::ThrottleCpuPrio}, scale);

  std::printf("%-8s %-10s | %9s %9s | %9s %9s\n", "mix", "gpu app", "rd_thr",
              "wr_thr", "rd_prio", "wr_prio");
  std::vector<double> tot_t, tot_p;
  for (const auto& m : high_fps_mixes()) {
    const HeteroResult base = cached_hetero(cfg, m, Policy::Baseline, scale);
    const HeteroResult thr = cached_hetero(cfg, m, Policy::Throttle, scale);
    const HeteroResult pri =
        cached_hetero(cfg, m, Policy::ThrottleCpuPrio, scale);
    auto bw = [](const HeteroResult& r, const char* key) {
      return r.seconds > 0 ? static_cast<double>(r.stat(key)) / r.seconds
                           : 0.0;
    };
    auto norm = [&](const HeteroResult& r, const char* key) {
      const double b = bw(base, key);
      return b > 0 ? bw(r, key) / b : 0.0;
    };
    const double rd_t = norm(thr, "dram.read_bytes.gpu");
    const double wr_t = norm(thr, "dram.write_bytes.gpu");
    const double rd_p = norm(pri, "dram.read_bytes.gpu");
    const double wr_p = norm(pri, "dram.write_bytes.gpu");
    auto total = [&](const HeteroResult& r) {
      const double b = bw(base, "dram.read_bytes.gpu") +
                       bw(base, "dram.write_bytes.gpu");
      const double v =
          bw(r, "dram.read_bytes.gpu") + bw(r, "dram.write_bytes.gpu");
      return b > 0 ? v / b : 0.0;
    };
    tot_t.push_back(total(thr));
    tot_p.push_back(total(pri));
    std::printf("%-8s %-10s | %9.3f %9.3f | %9.3f %9.3f\n", m.id.c_str(),
                m.gpu_app.c_str(), rd_t, wr_t, rd_p, wr_p);
    std::fflush(stdout);
  }
  std::printf("%-8s %-10s | total throttled %.3f, total +CPUprio %.3f\n",
              "GEOMEAN", "", geomean(tot_t), geomean(tot_p));
  std::printf("\npaper: total GPU bandwidth demand 0.65 / 0.63 of baseline\n");
  return 0;
}
