#!/bin/sh
# Regenerates every paper table/figure plus the substrate micro-benchmarks.
# Figure harnesses reuse memoized simulation results from ./gpuqos_bench_cache.
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "### $b"
  "$b"
  echo
done
