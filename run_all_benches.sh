#!/bin/sh
# Regenerates every paper table/figure plus the substrate micro-benchmarks.
#
# Each figure harness warms the shared memoized cache (gpuqos_bench_cache/,
# override with GPUQOS_BENCH_CACHE) through the parallel sweep pool before
# printing, so a harness runs the simulations it needs concurrently and later
# harnesses reuse the cached files. Thread count comes from GPUQOS_THREADS
# (default: all hardware threads).
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  case "$b" in
    */perf_engine) continue ;;  # perf harness: run explicitly, emits JSON
  esac
  echo "### $b"
  "$b"
  echo
done
