// obs_cat: decode a gpuqos binary telemetry stream (obs/binlog.hpp).
//
// The binlog is the compact on-disk form of every observability sink; this
// tool converts it back to the exact text the native writers would have
// produced (byte-identical JSONL / Chrome trace), a CSV table, or a stream
// listing. docs/OBSERVABILITY.md documents the format.
//
// Usage:
//   obs_cat FILE                          # list streams
//   obs_cat FILE --stream samples --format jsonl
//   obs_cat FILE --stream journal --format jsonl   # all journal.* streams
//   obs_cat FILE --format trace --out trace.json
// Exit: 0 on success, 1 on a malformed/truncated binlog, 2 on usage errors.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "obs/binlog.hpp"

using namespace gpuqos;

int main(int argc, char** argv) {
  std::string stream_sel, format = "list", out_path;

  cli::OptionSet opts(
      "FILE [--stream NAME] [--format jsonl|csv|trace|list] [--out FILE]",
      "decodes a binlog written by gpuqos_run --binlog; 'jsonl' and 'trace' "
      "reproduce\nthe native writers byte for byte (docs/OBSERVABILITY.md)");
  opts.str("--stream", "NAME",
           "stream to decode (exact name or dot-prefix; e.g. 'journal' "
           "selects journal.*)", &stream_sel);
  opts.str("--format", "KIND", "jsonl, csv, trace, or list (default list)",
           &format);
  opts.str("--out", "FILE", "write here instead of stdout", &out_path);

  std::vector<const char*> positional;
  opts.parse(argc, argv, positional);
  if (positional.size() != 1) {
    std::fprintf(stderr, "obs_cat: expected exactly one input file\n");
    return 2;
  }
  if (format != "jsonl" && format != "csv" && format != "trace" &&
      format != "list") {
    std::fprintf(stderr, "obs_cat: unknown format '%s'\n", format.c_str());
    return 2;
  }
  if ((format == "jsonl" || format == "csv") && stream_sel.empty()) {
    std::fprintf(stderr, "obs_cat: --format %s requires --stream\n",
                 format.c_str());
    return 2;
  }

  std::ofstream file_os;
  if (!out_path.empty()) {
    file_os.open(out_path);
    if (!file_os) {
      std::fprintf(stderr, "obs_cat: cannot open %s for writing\n",
                   out_path.c_str());
      return 2;
    }
  }
  std::ostream& os = out_path.empty() ? std::cout : file_os;

  try {
    BinLogReader reader(BinLogReader::read_file(positional[0]));
    if (format == "jsonl" || format == "csv") {
      if (format == "jsonl") {
        binlog_to_jsonl(reader, stream_sel, os);
      } else {
        binlog_to_csv(reader, stream_sel, os);
      }
      // The decoders consumed the whole file, so streams() is complete: a
      // selector that matched nothing means a typo, not an empty stream.
      bool matched = false;
      for (const BinStreamDef& def : reader.streams()) {
        if (binlog_stream_matches(stream_sel, def.name)) matched = true;
      }
      if (!matched) {
        std::fprintf(stderr, "obs_cat: no stream matches '%s' (try the "
                     "default listing)\n", stream_sel.c_str());
        return 1;
      }
    } else if (format == "trace") {
      binlog_to_chrome_trace(reader, os);
    } else {
      binlog_list(reader, os);
    }
  } catch (const BinLogError& e) {
    std::fprintf(stderr, "obs_cat: %s\n", e.what());
    return 1;
  }

  os.flush();
  if (!os) {
    std::fprintf(stderr, "obs_cat: short write%s%s\n",
                 out_path.empty() ? "" : " to ",
                 out_path.empty() ? "" : out_path.c_str());
    return 1;
  }
  return 0;
}
