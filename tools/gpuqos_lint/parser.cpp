#include <algorithm>
#include <cstddef>

#include "ast.hpp"

// Lightweight declaration parser: a single forward pass with a scope stack,
// classifying each brace group from the statement head that precedes it
// (namespace / class / enum / function-body / initializer). It recovers
// classes + fields + method bodies, free-function bodies, namespace-scope
// variables, and function-local statics. Known, accepted limitations (none
// occur in this codebase; self-lint keeps it that way):
//   * constructor member-init lists written with braces (`: x_{1} {`) — the
//     project style uses parens;
//   * multi-declarator members share the head's cv-flags;
//   * function-pointer members are classified as method declarations.

namespace gpuqos::lint {
namespace {

bool is_one_of(const std::string& s, std::initializer_list<const char*> set) {
  return std::any_of(set.begin(), set.end(),
                     [&](const char* v) { return s == v; });
}

/// Keywords that can appear in a declaration head but never name a field.
bool is_decl_keyword(const std::string& s) {
  return is_one_of(
      s, {"static",   "const",    "constexpr", "consteval", "constinit",
          "mutable",  "volatile", "inline",    "extern",    "thread_local",
          "virtual",  "explicit", "typename",  "unsigned",  "signed",
          "long",     "short",    "int",       "char",      "bool",
          "float",    "double",   "void",      "auto",      "register",
          "struct",   "class",    "union",     "enum",      "operator",
          "noexcept", "override", "final",     "default",   "nullptr",
          "true",     "false",    "alignas",   "decltype"});
}

struct Parser {
  explicit Parser(ParsedFile& out) : out_(out), t_(out.ts.tokens) {}

  void run() { parse_scope(nullptr, ""); }

  ParsedFile& out_;
  const std::vector<Token>& t_;
  std::size_t i_ = 0;

  [[nodiscard]] const Token& cur() const { return t_[i_]; }
  [[nodiscard]] bool eof() const { return t_[i_].kind == Tok::Eof; }
  [[nodiscard]] bool at_punct(const char* p) const {
    return cur().kind == Tok::Punct && cur().text == p;
  }

  /// Skip a preprocessor directive. Object/function macro definitions are
  /// recorded as pseudo-functions ("GPUQOS_LOG" -> {log_message, ...}) so
  /// the thread-purity reachability walk can follow macro indirection.
  void skip_directive() {
    ++i_;  // the '#'
    std::vector<std::size_t> toks;
    while (!eof() && !cur().starts_line) {
      toks.push_back(i_);
      ++i_;
    }
    if (toks.size() >= 2 && t_[toks[0]].kind == Tok::Ident &&
        t_[toks[0]].text == "define" && t_[toks[1]].kind == Tok::Ident) {
      FunctionDef fn;
      fn.name = t_[toks[1]].text;
      fn.line = t_[toks[1]].line;
      for (std::size_t k = 2; k < toks.size(); ++k) {
        if (t_[toks[k]].kind == Tok::Ident) {
          fn.body_idents.insert(t_[toks[k]].text);
        }
      }
      out_.functions.push_back(std::move(fn));
    }
  }

  /// Skip a balanced {...} group; cur() must be at the '{'.
  void skip_braces() {
    int depth = 0;
    while (!eof()) {
      if (at_punct("{")) ++depth;
      if (at_punct("}")) {
        --depth;
        if (depth == 0) {
          ++i_;
          return;
        }
      }
      ++i_;
    }
  }

  void parse_scope(ClassDecl* cls, const std::string& nest_prefix) {
    while (!eof()) {
      if (at_punct("}")) {
        ++i_;
        return;
      }
      if (at_punct(";")) {
        ++i_;
        continue;
      }
      if (cur().kind == Tok::Hash) {
        skip_directive();
        continue;
      }
      if (cls != nullptr && cur().kind == Tok::Ident &&
          is_one_of(cur().text, {"public", "private", "protected"}) &&
          t_[i_ + 1].kind == Tok::Punct && t_[i_ + 1].text == ":") {
        i_ += 2;
        continue;
      }
      parse_element(cls, nest_prefix);
    }
  }

  // ---- element parsing ----------------------------------------------------

  struct Head {
    std::vector<std::size_t> toks;  // indices into t_
    int angle = 0;                  // template-angle depth
    int paren = 0;
    bool saw_toplevel_eq = false;     // '=' at angle/paren depth 0
    bool saw_toplevel_paren = false;  // '(' at angle depth 0 (before any '=')
    int first_line = 0;
    [[nodiscard]] bool contains(const char* kw, const Parser& p) const {
      return std::any_of(toks.begin(), toks.end(), [&](std::size_t k) {
        return p.t_[k].kind == Tok::Ident && p.t_[k].text == kw;
      });
    }
  };

  void head_track(Head& h, const Token& tk) {
    if (tk.kind != Tok::Punct) return;
    const std::string& s = tk.text;
    if (s == "<") {
      // Angle heuristic: an opener only after a name or a closing angle
      // (std::vector<..., SmallFn<...). Comparisons don't appear in the
      // declaration heads this parser cares about.
      if (!h.toks.empty()) {
        const Token& prev = t_[h.toks.back()];
        if (prev.kind == Tok::Ident || prev.text == ">" || prev.text == "::") {
          ++h.angle;
        }
      }
    } else if (s == ">" && h.angle > 0) {
      --h.angle;
    } else if (s == ">>" && h.angle > 0) {
      h.angle = h.angle >= 2 ? h.angle - 2 : 0;
    } else if (s == "(") {
      if (h.angle == 0 && !h.saw_toplevel_eq) h.saw_toplevel_paren = true;
      ++h.paren;
    } else if (s == ")") {
      if (h.paren > 0) --h.paren;
    } else if (s == "=" && h.angle == 0 && h.paren == 0) {
      h.saw_toplevel_eq = true;
    }
  }

  void parse_element(ClassDecl* cls, const std::string& nest_prefix) {
    Head head;
    head.first_line = cur().line;
    while (!eof()) {
      if (cur().kind == Tok::Hash) {
        skip_directive();
        continue;
      }
      if (at_punct(";") && head.paren == 0) {
        const int end_line = cur().line;
        ++i_;
        finish_declaration(cls, head, end_line);
        return;
      }
      if (at_punct("{") && head.paren == 0) {
        if (head.contains("namespace", *this)) {
          ++i_;
          parse_scope(nullptr, nest_prefix);
          return;
        }
        if (head.contains("enum", *this)) {
          skip_braces();
          consume_to_semi();
          return;
        }
        if (head.saw_toplevel_paren && !head.saw_toplevel_eq) {
          parse_function(cls, head);
          return;
        }
        if (class_key_index(head) != npos) {
          parse_class(cls, head, nest_prefix);
          return;
        }
        // Brace initializer (or a construct this parser doesn't model):
        // swallow it and keep reading the declaration.
        skip_braces();
        continue;
      }
      head_track(head, cur());
      head.toks.push_back(i_);
      ++i_;
    }
  }

  void consume_to_semi() {
    int depth = 0;
    while (!eof()) {
      if (at_punct("{")) ++depth;
      if (at_punct("}") && depth > 0) --depth;
      if (at_punct(";") && depth == 0) {
        ++i_;
        return;
      }
      ++i_;
    }
  }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Index (into head.toks) of the last class/struct/union key at angle
  /// depth 0 — skipping template-parameter `class T` occurrences.
  [[nodiscard]] std::size_t class_key_index(const Head& head) const {
    std::size_t found = npos;
    int angle = 0;
    for (std::size_t k = 0; k < head.toks.size(); ++k) {
      const Token& tk = t_[head.toks[k]];
      if (tk.kind == Tok::Punct) {
        if (tk.text == "<") {
          if (k > 0) {
            const Token& prev = t_[head.toks[k - 1]];
            if (prev.kind == Tok::Ident || prev.text == ">" ||
                prev.text == "::") {
              ++angle;
            }
          }
        } else if (tk.text == ">" && angle > 0) {
          --angle;
        } else if (tk.text == ">>" && angle > 0) {
          angle = angle >= 2 ? angle - 2 : 0;
        }
      }
      if (angle == 0 && tk.kind == Tok::Ident &&
          is_one_of(tk.text, {"class", "struct", "union"})) {
        found = k;
      }
    }
    return found;
  }

  // ---- classes ------------------------------------------------------------

  void parse_class(ClassDecl* outer, const Head& head,
                   const std::string& nest_prefix) {
    ClassDecl decl;
    decl.line = head.first_line;
    const std::size_t key = class_key_index(head);
    for (std::size_t k = key + 1; k < head.toks.size(); ++k) {
      const Token& tk = t_[head.toks[k]];
      if (tk.kind == Tok::Ident && !is_decl_keyword(tk.text)) {
        decl.name = tk.text;
        break;
      }
      // Stop at the base-clause ':' — an unnamed class stays unnamed.
      if (tk.kind == Tok::Punct && tk.text == ":") break;
    }
    if (outer != nullptr && !decl.name.empty()) {
      decl.name = (nest_prefix.empty() ? outer->name : nest_prefix) +
                  "::" + decl.name;
    }
    ++i_;  // '{'
    parse_scope(&decl, decl.name);
    consume_to_semi();
    if (!decl.name.empty()) out_.classes.push_back(std::move(decl));
  }

  // ---- functions ----------------------------------------------------------

  /// Function name and (for out-of-line members) the qualifying class, taken
  /// from the tokens just before the first top-level '('.
  static void function_name(const Parser& p, const Head& head,
                            std::string& name, std::string& qual) {
    int angle = 0;
    std::size_t paren = npos;
    for (std::size_t k = 0; k < head.toks.size(); ++k) {
      const Token& tk = p.t_[head.toks[k]];
      if (tk.kind == Tok::Punct) {
        if (tk.text == "<") {
          if (k > 0) {
            const Token& prev = p.t_[head.toks[k - 1]];
            if (prev.kind == Tok::Ident || prev.text == ">" ||
                prev.text == "::") {
              ++angle;
            }
          }
        } else if (tk.text == ">" && angle > 0) {
          --angle;
        } else if (tk.text == ">>" && angle > 0) {
          angle = angle >= 2 ? angle - 2 : 0;
        } else if (tk.text == "(" && angle == 0) {
          paren = k;
          break;
        }
      }
    }
    if (paren == npos || paren == 0) return;
    const Token& before = p.t_[head.toks[paren - 1]];
    if (before.kind == Tok::Ident) {
      name = before.text;
    } else if (before.kind == Tok::Punct && paren >= 2 &&
               p.t_[head.toks[paren - 2]].text == "operator") {
      name = "operator" + before.text;
    }
    if (paren >= 3 && p.t_[head.toks[paren - 2]].text == "::" &&
        p.t_[head.toks[paren - 3]].kind == Tok::Ident) {
      qual = p.t_[head.toks[paren - 3]].text;
    }
  }

  void parse_function(ClassDecl* cls, const Head& head) {
    FunctionDef fn;
    fn.line = head.first_line;
    function_name(*this, head, fn.name, fn.qual_class);
    if (cls != nullptr && fn.qual_class.empty()) fn.qual_class = cls->name;
    ++i_;  // '{'
    scan_function_body(fn);
    if (cls != nullptr && !fn.name.empty()) {
      MethodInfo& m = cls->methods[fn.name];
      m.declared = true;
      m.line = head.first_line;
      m.has_body = true;
      m.body_idents.insert(fn.body_idents.begin(), fn.body_idents.end());
    }
    if (!fn.name.empty()) out_.functions.push_back(std::move(fn));
  }

  void scan_function_body(FunctionDef& fn) {
    int depth = 1;
    std::string prev_punct = "{";
    bool prev_was_punct = true;
    while (!eof() && depth > 0) {
      const Token& tk = cur();
      if (tk.kind == Tok::Punct) {
        if (tk.text == "{") ++depth;
        if (tk.text == "}") {
          --depth;
          if (depth == 0) {
            ++i_;
            return;
          }
        }
        prev_punct = tk.text;
        prev_was_punct = true;
        ++i_;
        continue;
      }
      if (tk.kind == Tok::Hash) {
        skip_directive();
        continue;
      }
      if (tk.kind == Tok::Ident) {
        fn.body_idents.insert(tk.text);
        const bool stmt_start =
            tk.starts_line ||
            (prev_was_punct &&
             (prev_punct == ";" || prev_punct == "{" || prev_punct == "}"));
        if (stmt_start &&
            (tk.text == "static" || tk.text == "thread_local")) {
          scan_local_static(fn);
          prev_was_punct = false;
          continue;
        }
      }
      prev_was_punct = false;
      ++i_;
    }
  }

  /// cur() is at the `static` / `thread_local` keyword of a block-scope
  /// declaration; consume through its ';', recording idents as body tokens.
  void scan_local_static(FunctionDef& fn) {
    LocalStatic var;
    var.line = cur().line;
    std::vector<std::size_t> decl;
    int depth = 0;
    while (!eof()) {
      const Token& tk = cur();
      if (tk.kind == Tok::Ident) fn.body_idents.insert(tk.text);
      if (tk.kind == Tok::Punct) {
        if (tk.text == "{") ++depth;
        if (tk.text == "}") --depth;
        if (tk.text == ";" && depth <= 0) {
          ++i_;
          break;
        }
      }
      decl.push_back(i_);
      ++i_;
    }
    int angle = 0;
    bool stop_flags = false;
    std::string last_ident;
    for (std::size_t k : decl) {
      const Token& tk = t_[k];
      if (tk.kind == Tok::Punct) {
        if (tk.text == "<") {
          const Token& prev = t_[k - 1];
          if (prev.kind == Tok::Ident || prev.text == ">" || prev.text == "::")
            ++angle;
        } else if (tk.text == ">" && angle > 0) {
          --angle;
        } else if (tk.text == ">>" && angle > 0) {
          angle = angle >= 2 ? angle - 2 : 0;
        } else if ((tk.text == "=" || tk.text == "{" || tk.text == "[") &&
                   angle == 0) {
          stop_flags = true;
        }
        continue;
      }
      if (tk.kind != Tok::Ident || angle != 0 || stop_flags) continue;
      if (tk.text == "const" || tk.text == "constexpr") var.is_const = true;
      if (tk.text == "thread_local") var.is_thread_local = true;
      if (tk.text.rfind("atomic", 0) == 0) var.is_atomic = true;
      if (tk.text.find("mutex") != std::string::npos) var.is_mutex = true;
      if (!is_decl_keyword(tk.text)) last_ident = tk.text;
    }
    var.name = last_ident;
    if (!var.name.empty()) fn.local_statics.push_back(std::move(var));
  }

  // ---- terminal declarations (ended by ';') -------------------------------

  void finish_declaration(ClassDecl* cls, const Head& head, int end_line) {
    if (head.toks.empty()) return;
    if (head.contains("using", *this) || head.contains("typedef", *this) ||
        head.contains("friend", *this) ||
        head.contains("static_assert", *this) ||
        head.contains("template", *this)) {
      return;
    }
    if (head.saw_toplevel_paren) {
      // Function declaration (or a function-pointer member). Record declared
      // methods so R1 knows which of save/load/digest a class promises.
      if (cls != nullptr) {
        std::string name;
        std::string qual;
        function_name(*this, head, name, qual);
        if (!name.empty()) {
          MethodInfo& m = cls->methods[name];
          m.declared = true;
          if (m.line == 0) m.line = head.first_line;
        }
      }
      return;
    }
    if (class_key_index(head) != npos || head.contains("enum", *this) ||
        head.contains("namespace", *this) || head.contains("extern", *this)) {
      return;  // forward declarations, enum decls, extern hooks
    }
    emit_variables(cls, head, end_line);
  }

  void emit_variables(ClassDecl* cls, const Head& head, int end_line) {
    // Split on top-level commas; each chunk is one declarator (the first
    // carries the type).
    std::vector<std::vector<std::size_t>> chunks(1);
    int angle = 0;
    int paren = 0;
    int bracket = 0;
    bool after_eq = false;
    for (std::size_t k = 0; k < head.toks.size(); ++k) {
      const Token& tk = t_[head.toks[k]];
      if (tk.kind == Tok::Punct) {
        if (tk.text == "<") {
          if (k > 0) {
            const Token& prev = t_[head.toks[k - 1]];
            if (prev.kind == Tok::Ident || prev.text == ">" ||
                prev.text == "::") {
              ++angle;
            }
          }
        } else if (tk.text == ">" && angle > 0) {
          --angle;
        } else if (tk.text == ">>" && angle > 0) {
          angle = angle >= 2 ? angle - 2 : 0;
        } else if (tk.text == "(") {
          ++paren;
        } else if (tk.text == ")") {
          --paren;
        } else if (tk.text == "[") {
          ++bracket;
        } else if (tk.text == "]") {
          --bracket;
        } else if (tk.text == "=" && angle == 0 && paren == 0) {
          after_eq = true;
        } else if (tk.text == "," && angle == 0 && paren == 0 &&
                   bracket == 0) {
          chunks.emplace_back();
          after_eq = false;
          continue;
        }
      }
      chunks.back().push_back(head.toks[k]);
    }
    (void)after_eq;

    FieldDecl flags;  // head-wide cv/storage flags from the first chunk
    {
      int a = 0;
      bool stop = false;
      for (std::size_t k = 0; k < chunks[0].size() && !stop; ++k) {
        const Token& tk = t_[chunks[0][k]];
        if (tk.kind == Tok::Punct) {
          if (tk.text == "<") {
            const Token& prev = t_[chunks[0][k - 1]];
            if (prev.kind == Tok::Ident || prev.text == ">" ||
                prev.text == "::")
              ++a;
          } else if (tk.text == ">" && a > 0) {
            --a;
          } else if (tk.text == ">>" && a > 0) {
            a = a >= 2 ? a - 2 : 0;
          } else if (tk.text == "=" && a == 0) {
            stop = true;
          } else if ((tk.text == "&" || tk.text == "&&") && a == 0) {
            flags.is_ref = true;
          } else if (tk.text == "*" && a == 0) {
            flags.is_ptr = true;
          }
          continue;
        }
        if (tk.kind != Tok::Ident || a != 0) continue;
        if (tk.text == "static") flags.is_static = true;
        if (tk.text == "const" || tk.text == "constexpr") flags.is_const = true;
        if (tk.text == "thread_local") flags.is_thread_local = true;
        if (tk.text.rfind("atomic", 0) == 0) flags.is_atomic = true;
        if (tk.text.find("mutex") != std::string::npos) flags.is_mutex = true;
      }
    }

    for (const auto& chunk : chunks) {
      std::string name;
      int name_line = head.first_line;
      int a = 0;
      for (std::size_t k = 0; k < chunk.size(); ++k) {
        const Token& tk = t_[chunk[k]];
        if (tk.kind == Tok::Punct) {
          if (tk.text == "<") {
            const Token& prev = t_[chunk[k - 1]];
            if (prev.kind == Tok::Ident || prev.text == ">" ||
                prev.text == "::")
              ++a;
          } else if (tk.text == ">" && a > 0) {
            --a;
          } else if (tk.text == ">>" && a > 0) {
            a = a >= 2 ? a - 2 : 0;
          } else if ((tk.text == "=" || tk.text == "[" || tk.text == ":") &&
                     a == 0) {
            break;
          }
          continue;
        }
        if (tk.kind == Tok::Ident && a == 0 && !is_decl_keyword(tk.text)) {
          name = tk.text;
          name_line = tk.line;
        }
      }
      if (name.empty()) continue;
      if (cls != nullptr) {
        FieldDecl f = flags;
        f.name = name;
        f.line = name_line;
        annotate(f, head.first_line, end_line);
        (f.is_static ? cls->static_members : cls->fields)
            .push_back(std::move(f));
      } else {
        NamespaceVar v;
        v.name = name;
        v.line = name_line;
        v.is_const = flags.is_const;
        v.is_atomic = flags.is_atomic;
        v.is_thread_local = flags.is_thread_local;
        v.is_mutex = flags.is_mutex;
        out_.namespace_vars.push_back(std::move(v));
      }
    }
  }

  /// /*ckpt:skip*/ and /*digest:skip*/ annotations attach to any comment on
  /// the declaration's lines.
  void annotate(FieldDecl& f, int first_line, int end_line) const {
    for (const Comment& c : out_.ts.comments) {
      if (c.line < first_line || c.line > end_line) continue;
      if (c.text.find("ckpt:skip") != std::string::npos) f.skip_ckpt = true;
      if (c.text.find("digest:skip") != std::string::npos)
        f.skip_digest = true;
    }
  }
};

}  // namespace

ParsedFile parse(std::string path, TokenStream ts) {
  ParsedFile out;
  out.path = std::move(path);
  out.ts = std::move(ts);
  Parser p(out);
  p.run();
  return out;
}

}  // namespace gpuqos::lint
