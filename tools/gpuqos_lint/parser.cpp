#include <algorithm>
#include <cstddef>

#include "ast.hpp"

// Lightweight declaration parser: a single forward pass with a scope stack,
// classifying each brace group from the statement head that precedes it
// (namespace / class / enum / function-body / initializer). It recovers
// classes + fields + method bodies, free-function bodies, namespace-scope
// variables, and function-local statics. Known, accepted limitations (none
// occur in this codebase; self-lint keeps it that way):
//   * constructor member-init lists written with braces (`: x_{1} {`) — the
//     project style uses parens;
//   * multi-declarator members share the head's cv-flags;
//   * function-pointer members are classified as method declarations.

namespace gpuqos::lint {
namespace {

bool is_one_of(const std::string& s, std::initializer_list<const char*> set) {
  return std::any_of(set.begin(), set.end(),
                     [&](const char* v) { return s == v; });
}

/// Keywords that can appear in a declaration head but never name a field.
bool is_decl_keyword(const std::string& s) {
  return is_one_of(
      s, {"static",   "const",    "constexpr", "consteval", "constinit",
          "mutable",  "volatile", "inline",    "extern",    "thread_local",
          "virtual",  "explicit", "typename",  "unsigned",  "signed",
          "long",     "short",    "int",       "char",      "bool",
          "float",    "double",   "void",      "auto",      "register",
          "struct",   "class",    "union",     "enum",      "operator",
          "noexcept", "override", "final",     "default",   "nullptr",
          "true",     "false",    "alignas",   "decltype"});
}

struct Parser {
  explicit Parser(ParsedFile& out) : out_(out), t_(out.ts.tokens) {}

  void run() { parse_scope(nullptr, ""); }

  ParsedFile& out_;
  const std::vector<Token>& t_;
  std::size_t i_ = 0;

  [[nodiscard]] const Token& cur() const { return t_[i_]; }
  [[nodiscard]] bool eof() const { return t_[i_].kind == Tok::Eof; }
  [[nodiscard]] bool at_punct(const char* p) const {
    return cur().kind == Tok::Punct && cur().text == p;
  }

  /// Skip a preprocessor directive. Object/function macro definitions are
  /// recorded as pseudo-functions ("GPUQOS_LOG" -> {log_message, ...}) so
  /// the thread-purity reachability walk can follow macro indirection.
  void skip_directive() {
    ++i_;  // the '#'
    std::vector<std::size_t> toks;
    while (!eof() && !cur().starts_line) {
      toks.push_back(i_);
      ++i_;
    }
    if (toks.size() >= 2 && t_[toks[0]].kind == Tok::Ident &&
        t_[toks[0]].text == "define" && t_[toks[1]].kind == Tok::Ident) {
      FunctionDef fn;
      fn.name = t_[toks[1]].text;
      fn.line = t_[toks[1]].line;
      for (std::size_t k = 2; k < toks.size(); ++k) {
        if (t_[toks[k]].kind == Tok::Ident) {
          fn.body_idents.insert(t_[toks[k]].text);
        }
      }
      out_.functions.push_back(std::move(fn));
    }
  }

  /// Skip a balanced {...} group; cur() must be at the '{'.
  void skip_braces() {
    int depth = 0;
    while (!eof()) {
      if (at_punct("{")) ++depth;
      if (at_punct("}")) {
        --depth;
        if (depth == 0) {
          ++i_;
          return;
        }
      }
      ++i_;
    }
  }

  void parse_scope(ClassDecl* cls, const std::string& nest_prefix) {
    while (!eof()) {
      if (at_punct("}")) {
        ++i_;
        return;
      }
      if (at_punct(";")) {
        ++i_;
        continue;
      }
      if (cur().kind == Tok::Hash) {
        skip_directive();
        continue;
      }
      if (cls != nullptr && cur().kind == Tok::Ident &&
          is_one_of(cur().text, {"public", "private", "protected"}) &&
          t_[i_ + 1].kind == Tok::Punct && t_[i_ + 1].text == ":") {
        i_ += 2;
        continue;
      }
      parse_element(cls, nest_prefix);
    }
  }

  // ---- element parsing ----------------------------------------------------

  struct Head {
    std::vector<std::size_t> toks;  // indices into t_
    int angle = 0;                  // template-angle depth
    int paren = 0;
    int bracket = 0;                  // [...] depth: captures, attributes
    bool saw_toplevel_eq = false;     // '=' at angle/paren depth 0
    bool saw_toplevel_paren = false;  // '(' at angle depth 0 (before any '=')
    int first_line = 0;
    [[nodiscard]] bool contains(const char* kw, const Parser& p) const {
      return std::any_of(toks.begin(), toks.end(), [&](std::size_t k) {
        return p.t_[k].kind == Tok::Ident && p.t_[k].text == kw;
      });
    }
  };

  /// Whether a '<' after `prev` opens a template-argument list. Openers
  /// follow a name or a closing angle (std::vector<..., SmallFn<...); the
  /// '<' of `operator<` is part of the operator's name, not an opener.
  static bool angle_opens_after(const Token& prev) {
    if (prev.kind == Tok::Ident) return prev.text != "operator";
    return prev.kind == Tok::Punct && (prev.text == ">" || prev.text == "::");
  }

  /// Keywords whose following (...) group is part of the type, not a
  /// function declarator: `decltype(0u) v_;` declares a field.
  static bool is_type_paren_keyword(const Token& tk) {
    return tk.kind == Tok::Ident &&
           is_one_of(tk.text,
                     {"decltype", "noexcept", "alignas", "__attribute__"});
  }

  void head_track(Head& h, const Token& tk) {
    if (tk.kind != Tok::Punct) return;
    const std::string& s = tk.text;
    if (s == "[") {
      ++h.bracket;
      return;
    }
    if (s == "]") {
      if (h.bracket > 0) --h.bracket;
      return;
    }
    // Inside [...] (lambda init-captures, attributes, array bounds) the
    // tokens are opaque: a `<` comparison or `=` there is not a declarator
    // boundary.
    if (h.bracket > 0) return;
    if (s == "<") {
      if (!h.toks.empty() && angle_opens_after(t_[h.toks.back()])) ++h.angle;
    } else if (s == ">" && h.angle > 0) {
      --h.angle;
    } else if (s == ">>" && h.angle > 0) {
      h.angle = h.angle >= 2 ? h.angle - 2 : 0;
    } else if (s == "(") {
      if (h.angle == 0 && !h.saw_toplevel_eq &&
          !(h.paren == 0 && !h.toks.empty() &&
            is_type_paren_keyword(t_[h.toks.back()]))) {
        h.saw_toplevel_paren = true;
      }
      ++h.paren;
    } else if (s == ")") {
      if (h.paren > 0) --h.paren;
    } else if (s == "=" && h.angle == 0 && h.paren == 0) {
      h.saw_toplevel_eq = true;
    }
  }

  void parse_element(ClassDecl* cls, const std::string& nest_prefix) {
    Head head;
    head.first_line = cur().line;
    while (!eof()) {
      if (cur().kind == Tok::Hash) {
        skip_directive();
        continue;
      }
      if (at_punct(";") && head.paren == 0) {
        const int end_line = cur().line;
        ++i_;
        finish_declaration(cls, head, end_line);
        return;
      }
      if (at_punct("{") && head.paren == 0) {
        if (head.contains("namespace", *this)) {
          ++i_;
          parse_scope(nullptr, nest_prefix);
          return;
        }
        if (head.contains("enum", *this)) {
          skip_braces();
          consume_to_semi();
          return;
        }
        if (head.saw_toplevel_paren && !head.saw_toplevel_eq) {
          parse_function(cls, head);
          return;
        }
        if (class_key_index(head) != npos) {
          parse_class(cls, head, nest_prefix);
          return;
        }
        // Brace initializer (or a construct this parser doesn't model):
        // swallow it and keep reading the declaration.
        skip_braces();
        continue;
      }
      head_track(head, cur());
      head.toks.push_back(i_);
      ++i_;
    }
  }

  void consume_to_semi() {
    int depth = 0;
    while (!eof()) {
      if (at_punct("{")) ++depth;
      if (at_punct("}") && depth > 0) --depth;
      if (at_punct(";") && depth == 0) {
        ++i_;
        return;
      }
      ++i_;
    }
  }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Index (into head.toks) of the last class/struct/union key at angle
  /// depth 0 — skipping template-parameter `class T` occurrences.
  [[nodiscard]] std::size_t class_key_index(const Head& head) const {
    std::size_t found = npos;
    int angle = 0;
    for (std::size_t k = 0; k < head.toks.size(); ++k) {
      const Token& tk = t_[head.toks[k]];
      if (tk.kind == Tok::Punct) {
        if (tk.text == "<") {
          if (k > 0) {
            const Token& prev = t_[head.toks[k - 1]];
            if (prev.kind == Tok::Ident || prev.text == ">" ||
                prev.text == "::") {
              ++angle;
            }
          }
        } else if (tk.text == ">" && angle > 0) {
          --angle;
        } else if (tk.text == ">>" && angle > 0) {
          angle = angle >= 2 ? angle - 2 : 0;
        }
      }
      if (angle == 0 && tk.kind == Tok::Ident &&
          is_one_of(tk.text, {"class", "struct", "union"})) {
        found = k;
      }
    }
    return found;
  }

  // ---- classes ------------------------------------------------------------

  void parse_class(ClassDecl* outer, const Head& head,
                   const std::string& nest_prefix) {
    ClassDecl decl;
    decl.line = head.first_line;
    const std::size_t key = class_key_index(head);
    for (std::size_t k = key + 1; k < head.toks.size(); ++k) {
      const Token& tk = t_[head.toks[k]];
      if (tk.kind == Tok::Ident && !is_decl_keyword(tk.text)) {
        decl.name = tk.text;
        break;
      }
      // Stop at the base-clause ':' — an unnamed class stays unnamed.
      if (tk.kind == Tok::Punct && tk.text == ":") break;
    }
    if (outer != nullptr && !decl.name.empty()) {
      decl.name = (nest_prefix.empty() ? outer->name : nest_prefix) +
                  "::" + decl.name;
    }
    ++i_;  // '{'
    parse_scope(&decl, decl.name);
    consume_to_semi();
    if (!decl.name.empty()) out_.classes.push_back(std::move(decl));
  }

  // ---- functions ----------------------------------------------------------

  /// Function name and (for out-of-line members) the qualifying class, taken
  /// from the tokens just before the declarator '('. Returns the index of
  /// that '(' in head.toks (npos when the head has none), so callers can
  /// parse the parameter list. Handles operator names (operator<, (), [],
  /// conversion operators) and class-template qualifiers (Box<T>::digest).
  static std::size_t function_name(const Parser& p, const Head& head,
                                   std::string& name, std::string& qual) {
    auto text = [&](std::size_t k) -> const std::string& {
      return p.t_[head.toks[k]].text;
    };
    int angle = 0;
    int skip_paren = 0;  // depth inside a decltype/noexcept/alignas group
    std::size_t paren = npos;
    for (std::size_t k = 0; k < head.toks.size(); ++k) {
      const Token& tk = p.t_[head.toks[k]];
      if (tk.kind != Tok::Punct) continue;
      if (tk.text == "<") {
        if (k > 0 && angle_opens_after(p.t_[head.toks[k - 1]])) ++angle;
      } else if (tk.text == ">" && angle > 0) {
        --angle;
      } else if (tk.text == ">>" && angle > 0) {
        angle = angle >= 2 ? angle - 2 : 0;
      } else if (tk.text == "(") {
        if (skip_paren > 0) {
          ++skip_paren;
        } else if (angle == 0) {
          if (k > 0 && is_type_paren_keyword(p.t_[head.toks[k - 1]])) {
            ++skip_paren;  // type parens: keep looking for the declarator
          } else {
            paren = k;
            break;
          }
        }
      } else if (tk.text == ")" && skip_paren > 0) {
        --skip_paren;
      }
    }
    if (paren == npos || paren == 0) return npos;
    const Token& before = p.t_[head.toks[paren - 1]];
    if (before.kind == Tok::Ident) {
      // `operator()` — this '(' is the call operator's name, not the list.
      name = before.text == "operator" ? "operator()" : before.text;
    } else if (before.kind == Tok::Punct) {
      if (paren >= 3 && before.text == "]" && text(paren - 2) == "[" &&
          text(paren - 3) == "operator") {
        name = "operator[]";
      } else if (paren >= 2 && text(paren - 2) == "operator") {
        name = "operator" + before.text;  // operator<, operator==, ...
      }
    }
    if (name.empty()) return paren;
    if (before.kind == Tok::Ident && before.text != "operator") {
      // Conversion operators: `operator std::uint64_t()` — the ident before
      // '(' names a type and "operator" sits behind the type tokens.
      for (std::size_t j = paren - 1; j > 0; --j) {
        const Token& tk = p.t_[head.toks[j - 1]];
        const bool type_tok =
            tk.kind == Tok::Ident ||
            (tk.kind == Tok::Punct &&
             (tk.text == "::" || tk.text == "<" || tk.text == ">" ||
              tk.text == ">>" || tk.text == "*" || tk.text == "&"));
        if (!type_tok) break;
        if (tk.kind == Tok::Ident && tk.text == "operator") {
          name = "operator " + name;
          return paren;  // no :: qualifier applies to the conversion name
        }
      }
    }
    if (paren >= 3 && text(paren - 2) == "::") {
      std::size_t j = paren - 3;
      if (p.t_[head.toks[j]].kind == Tok::Ident) {
        qual = text(j);
      } else if (text(j) == ">" || text(j) == ">>") {
        // Class-template member: walk back over `<T, ...>` to the name.
        int depth = 0;
        while (true) {
          const std::string& s = text(j);
          if (s == ">") ++depth;
          if (s == ">>") depth += 2;
          if (s == "<") --depth;
          if (depth == 0 || j == 0) break;
          --j;
        }
        if (depth == 0 && j > 0 &&
            p.t_[head.toks[j - 1]].kind == Tok::Ident) {
          qual = text(j - 1);
        }
      }
    }
    return paren;
  }

  /// Parse the parameter list opened at head.toks[paren] into fn.params.
  void parse_params(const Head& head, std::size_t paren, FunctionDef& fn) {
    std::vector<std::vector<std::size_t>> chunks(1);
    int depth = 1;
    int angle = 0;
    int bracket = 0;
    for (std::size_t k = paren + 1; k < head.toks.size(); ++k) {
      const Token& tk = t_[head.toks[k]];
      if (tk.kind == Tok::Punct) {
        if (tk.text == "(") {
          ++depth;
        } else if (tk.text == ")") {
          if (--depth == 0) break;
        } else if (tk.text == "[") {
          ++bracket;
        } else if (tk.text == "]") {
          if (bracket > 0) --bracket;
        } else if (bracket == 0 && tk.text == "<" &&
                   angle_opens_after(t_[head.toks[k - 1]])) {
          ++angle;
        } else if (bracket == 0 && tk.text == ">" && angle > 0) {
          --angle;
        } else if (bracket == 0 && tk.text == ">>" && angle > 0) {
          angle = angle >= 2 ? angle - 2 : 0;
        } else if (tk.text == "," && depth == 1 && angle == 0 &&
                   bracket == 0) {
          chunks.emplace_back();
          continue;
        }
      }
      chunks.back().push_back(head.toks[k]);
    }
    for (const auto& chunk : chunks) {
      if (chunk.empty()) continue;
      int a = 0;
      int par = 0;
      std::size_t name_k = npos;
      std::size_t type_end = chunk.size();
      for (std::size_t k = 0; k < chunk.size(); ++k) {
        const Token& tk = t_[chunk[k]];
        if (tk.kind == Tok::Punct) {
          if (tk.text == "(") {
            ++par;
          } else if (tk.text == ")" && par > 0) {
            --par;
          } else if (par == 0 && tk.text == "<" && k > 0 &&
                     angle_opens_after(t_[chunk[k - 1]])) {
            ++a;
          } else if (par == 0 && tk.text == ">" && a > 0) {
            --a;
          } else if (par == 0 && tk.text == ">>" && a > 0) {
            a = a >= 2 ? a - 2 : 0;
          } else if (par == 0 && a == 0 && tk.text == "=") {
            type_end = std::min(type_end, k);
            break;  // default argument
          }
          continue;
        }
        if (tk.kind == Tok::Ident && a == 0 && par == 0 &&
            !is_decl_keyword(tk.text)) {
          name_k = k;
        }
      }
      ParamDecl pd;
      // A lone ident is a type, not a name (`f(Foo)` vs `f(Foo f)`).
      if (name_k != npos && name_k > 0) {
        pd.name = t_[chunk[name_k]].text;
        type_end = std::min(type_end, name_k);
      }
      for (std::size_t k = 0; k < type_end; ++k) {
        if (!pd.type.empty()) pd.type += ' ';
        pd.type += t_[chunk[k]].text;
      }
      if (pd.type == "void" && pd.name.empty()) continue;
      if (pd.type.empty() && pd.name.empty()) continue;
      fn.params.push_back(std::move(pd));
    }
  }

  void parse_function(ClassDecl* cls, const Head& head) {
    FunctionDef fn;
    fn.line = head.first_line;
    const std::size_t paren =
        function_name(*this, head, fn.name, fn.qual_class);
    if (cls != nullptr && fn.qual_class.empty()) fn.qual_class = cls->name;
    if (paren != npos) parse_params(head, paren, fn);
    fn.body_begin = i_;  // the '{'
    ++i_;
    scan_function_body(fn);
    fn.body_end = i_;  // one past the matching '}'
    if (cls != nullptr && !fn.name.empty()) {
      MethodInfo& m = cls->methods[fn.name];
      m.declared = true;
      m.line = head.first_line;
      m.has_body = true;
      m.body_idents.insert(fn.body_idents.begin(), fn.body_idents.end());
    }
    if (!fn.name.empty()) out_.functions.push_back(std::move(fn));
  }

  void scan_function_body(FunctionDef& fn) {
    int depth = 1;
    std::string prev_punct = "{";
    bool prev_was_punct = true;
    while (!eof() && depth > 0) {
      const Token& tk = cur();
      if (tk.kind == Tok::Punct) {
        if (tk.text == "{") ++depth;
        if (tk.text == "}") {
          --depth;
          if (depth == 0) {
            ++i_;
            return;
          }
        }
        prev_punct = tk.text;
        prev_was_punct = true;
        ++i_;
        continue;
      }
      if (tk.kind == Tok::Hash) {
        skip_directive();
        continue;
      }
      if (tk.kind == Tok::Ident) {
        fn.body_idents.insert(tk.text);
        const bool stmt_start =
            tk.starts_line ||
            (prev_was_punct &&
             (prev_punct == ";" || prev_punct == "{" || prev_punct == "}"));
        if (stmt_start &&
            (tk.text == "static" || tk.text == "thread_local")) {
          scan_local_static(fn);
          prev_was_punct = false;
          continue;
        }
      }
      prev_was_punct = false;
      ++i_;
    }
  }

  /// cur() is at the `static` / `thread_local` keyword of a block-scope
  /// declaration; consume through its ';', recording idents as body tokens.
  void scan_local_static(FunctionDef& fn) {
    LocalStatic var;
    var.line = cur().line;
    std::vector<std::size_t> decl;
    int depth = 0;
    while (!eof()) {
      const Token& tk = cur();
      if (tk.kind == Tok::Ident) fn.body_idents.insert(tk.text);
      if (tk.kind == Tok::Punct) {
        if (tk.text == "{") ++depth;
        if (tk.text == "}") --depth;
        if (tk.text == ";" && depth <= 0) {
          ++i_;
          break;
        }
      }
      decl.push_back(i_);
      ++i_;
    }
    int angle = 0;
    bool stop_flags = false;
    std::string last_ident;
    std::vector<std::string> type_toks;
    for (std::size_t k : decl) {
      const Token& tk = t_[k];
      if (tk.kind == Tok::Punct) {
        if (tk.text == "<") {
          if (angle_opens_after(t_[k - 1])) ++angle;
        } else if (tk.text == ">" && angle > 0) {
          --angle;
        } else if (tk.text == ">>" && angle > 0) {
          angle = angle >= 2 ? angle - 2 : 0;
        } else if ((tk.text == "=" || tk.text == "{" || tk.text == "[" ||
                    tk.text == "(") &&
                   angle == 0) {
          // A '(' anywhere in the initializer means the static runs code
          // when first reached (magic-static: blocking init, hidden order
          // dependence) — recorded for the concurrency-discipline rule.
          if (tk.text == "(") var.has_call_init = true;
          stop_flags = true;
        }
        if (!stop_flags) type_toks.push_back(tk.text);
        continue;
      }
      if (stop_flags) continue;
      if (tk.kind == Tok::Ident || tk.kind == Tok::Number) {
        type_toks.push_back(tk.text);
      }
      if (tk.kind != Tok::Ident || angle != 0) continue;
      if (tk.text == "const" || tk.text == "constexpr") var.is_const = true;
      if (tk.text == "constexpr" || tk.text == "constinit" ||
          tk.text == "consteval") {
        var.is_constexpr = true;
      }
      if (tk.text == "thread_local") var.is_thread_local = true;
      if (tk.text.rfind("atomic", 0) == 0) var.is_atomic = true;
      if (tk.text.find("mutex") != std::string::npos) var.is_mutex = true;
      if (!is_decl_keyword(tk.text)) last_ident = tk.text;
    }
    var.name = last_ident;
    if (!type_toks.empty() && type_toks.back() == var.name) {
      type_toks.pop_back();
    }
    for (const std::string& s : type_toks) {
      if (!var.type.empty()) var.type += ' ';
      var.type += s;
    }
    if (!var.name.empty()) fn.local_statics.push_back(std::move(var));
  }

  // ---- terminal declarations (ended by ';') -------------------------------

  void finish_declaration(ClassDecl* cls, const Head& head, int end_line) {
    if (head.toks.empty()) return;
    if (head.contains("using", *this) || head.contains("typedef", *this) ||
        head.contains("friend", *this) ||
        head.contains("static_assert", *this)) {
      return;
    }
    // Class-template forward declarations and alias/variable templates have
    // no declarator parens; function/method template declarations do and
    // fall through so R1 sees the declared method.
    if (head.contains("template", *this) && !head.saw_toplevel_paren) return;
    if (head.saw_toplevel_paren) {
      // Function declaration (or a function-pointer member). Record declared
      // methods so R1 knows which of save/load/digest a class promises.
      if (cls != nullptr) {
        std::string name;
        std::string qual;
        function_name(*this, head, name, qual);
        if (!name.empty()) {
          MethodInfo& m = cls->methods[name];
          m.declared = true;
          if (m.line == 0) m.line = head.first_line;
        }
      }
      return;
    }
    if (class_key_index(head) != npos || head.contains("enum", *this) ||
        head.contains("namespace", *this) || head.contains("extern", *this)) {
      return;  // forward declarations, enum decls, extern hooks
    }
    emit_variables(cls, head, end_line);
  }

  void emit_variables(ClassDecl* cls, const Head& head, int end_line) {
    // Split on top-level commas; each chunk is one declarator (the first
    // carries the type).
    std::vector<std::vector<std::size_t>> chunks(1);
    int angle = 0;
    int paren = 0;
    int bracket = 0;
    bool after_eq = false;
    for (std::size_t k = 0; k < head.toks.size(); ++k) {
      const Token& tk = t_[head.toks[k]];
      if (tk.kind == Tok::Punct) {
        if (tk.text == "<") {
          if (k > 0) {
            const Token& prev = t_[head.toks[k - 1]];
            if (prev.kind == Tok::Ident || prev.text == ">" ||
                prev.text == "::") {
              ++angle;
            }
          }
        } else if (tk.text == ">" && angle > 0) {
          --angle;
        } else if (tk.text == ">>" && angle > 0) {
          angle = angle >= 2 ? angle - 2 : 0;
        } else if (tk.text == "(") {
          ++paren;
        } else if (tk.text == ")") {
          --paren;
        } else if (tk.text == "[") {
          ++bracket;
        } else if (tk.text == "]") {
          --bracket;
        } else if (tk.text == "=" && angle == 0 && paren == 0) {
          after_eq = true;
        } else if (tk.text == "," && angle == 0 && paren == 0 &&
                   bracket == 0) {
          chunks.emplace_back();
          after_eq = false;
          continue;
        }
      }
      chunks.back().push_back(head.toks[k]);
    }
    (void)after_eq;

    FieldDecl flags;  // head-wide cv/storage flags from the first chunk
    {
      int a = 0;
      bool stop = false;
      for (std::size_t k = 0; k < chunks[0].size() && !stop; ++k) {
        const Token& tk = t_[chunks[0][k]];
        if (tk.kind == Tok::Punct) {
          if (tk.text == "<") {
            const Token& prev = t_[chunks[0][k - 1]];
            if (prev.kind == Tok::Ident || prev.text == ">" ||
                prev.text == "::")
              ++a;
          } else if (tk.text == ">" && a > 0) {
            --a;
          } else if (tk.text == ">>" && a > 0) {
            a = a >= 2 ? a - 2 : 0;
          } else if (tk.text == "=" && a == 0) {
            stop = true;
          } else if ((tk.text == "&" || tk.text == "&&") && a == 0) {
            flags.is_ref = true;
          } else if (tk.text == "*" && a == 0) {
            flags.is_ptr = true;
          }
          continue;
        }
        if (tk.kind != Tok::Ident || a != 0) continue;
        if (tk.text == "static") flags.is_static = true;
        if (tk.text == "const" || tk.text == "constexpr") flags.is_const = true;
        if (tk.text == "thread_local") flags.is_thread_local = true;
        if (tk.text.rfind("atomic", 0) == 0) flags.is_atomic = true;
        if (tk.text.find("mutex") != std::string::npos) flags.is_mutex = true;
      }
    }

    std::string head_type;  // type tokens of the first declarator
    for (const auto& chunk : chunks) {
      std::string name;
      int name_line = head.first_line;
      std::size_t name_k = npos;
      int a = 0;
      for (std::size_t k = 0; k < chunk.size(); ++k) {
        const Token& tk = t_[chunk[k]];
        if (tk.kind == Tok::Punct) {
          if (tk.text == "<") {
            if (angle_opens_after(t_[chunk[k - 1]])) ++a;
          } else if (tk.text == ">" && a > 0) {
            --a;
          } else if (tk.text == ">>" && a > 0) {
            a = a >= 2 ? a - 2 : 0;
          } else if ((tk.text == "=" || tk.text == "[" || tk.text == ":") &&
                     a == 0) {
            break;
          }
          continue;
        }
        if (tk.kind == Tok::Ident && a == 0 && !is_decl_keyword(tk.text)) {
          name = tk.text;
          name_line = tk.line;
          name_k = k;
        }
      }
      if (name.empty()) continue;
      std::string type;
      for (std::size_t k = 0; k < chunk.size() && k < name_k; ++k) {
        if (!type.empty()) type += ' ';
        type += t_[chunk[k]].text;
      }
      if (head_type.empty()) head_type = type;
      if (type.empty()) type = head_type;  // later declarators share the head
      if (cls != nullptr) {
        FieldDecl f = flags;
        f.name = name;
        f.type = std::move(type);
        f.line = name_line;
        annotate(f, head.first_line, end_line);
        (f.is_static ? cls->static_members : cls->fields)
            .push_back(std::move(f));
      } else {
        NamespaceVar v;
        v.name = name;
        v.type = std::move(type);
        v.line = name_line;
        v.is_const = flags.is_const;
        v.is_atomic = flags.is_atomic;
        v.is_thread_local = flags.is_thread_local;
        v.is_mutex = flags.is_mutex;
        out_.namespace_vars.push_back(std::move(v));
      }
    }
  }

  /// /*ckpt:skip*/, /*digest:skip*/ and /*own:...*/ annotations attach to
  /// any comment on the declaration's lines.
  void annotate(FieldDecl& f, int first_line, int end_line) const {
    for (const Comment& c : out_.ts.comments) {
      if (c.line < first_line || c.line > end_line) continue;
      if (c.text.find("ckpt:skip") != std::string::npos) f.skip_ckpt = true;
      if (c.text.find("digest:skip") != std::string::npos)
        f.skip_digest = true;
      if (c.text.find("own:worker") != std::string::npos) f.own_worker = true;
      if (c.text.find("own:guarded") != std::string::npos)
        f.own_guarded = true;
    }
  }
};

}  // namespace

ParsedFile parse(std::string path, TokenStream ts) {
  ParsedFile out;
  out.path = std::move(path);
  out.ts = std::move(ts);
  Parser p(out);
  p.run();
  return out;
}

}  // namespace gpuqos::lint
