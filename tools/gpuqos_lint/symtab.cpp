#include "symtab.hpp"

#include <cctype>
#include <sstream>

namespace gpuqos::lint {
namespace {

std::string simple_name(const std::string& name) {
  return name.substr(name.rfind(':') + 1);
}

bool is_cv_word(const std::string& s) {
  return s == "const" || s == "constexpr" || s == "volatile" ||
         s == "static" || s == "mutable" || s == "inline" ||
         s == "thread_local" || s == "typename" || s == "struct" ||
         s == "class" || s == "union" || s == "enum";
}

bool class_line_annotated(const ParsedFile& pf, int line, const char* tag) {
  for (const Comment& c : pf.ts.comments) {
    if (c.line != line && !(c.own_line && c.line == line - 1)) continue;
    if (c.text.find(tag) != std::string::npos) return true;
  }
  return false;
}

}  // namespace

std::string Symtab::type_class(const std::string& type) {
  std::istringstream ss(type);
  std::string tok;
  std::string last;
  int angle = 0;
  while (ss >> tok) {
    if (tok == "<") {
      ++angle;
    } else if (tok == ">" && angle > 0) {
      --angle;
    } else if (tok == ">>" && angle > 0) {
      angle = angle >= 2 ? angle - 2 : 0;
    } else if (angle == 0 && !tok.empty() &&
               (std::isalpha(static_cast<unsigned char>(tok[0])) != 0 ||
                tok[0] == '_') &&
               !is_cv_word(tok)) {
      last = tok;
    }
  }
  return last;
}

Symtab build_symtab(const std::vector<const ParsedFile*>& files) {
  Symtab st;
  for (const ParsedFile* pf : files) {
    for (const ClassDecl& c : pf->classes) {
      const std::string simple = simple_name(c.name);
      SymClass& sc = st.classes[simple];
      if (sc.decl == nullptr) {
        sc.name = simple;
        sc.decl = &c;
        sc.file = pf;
      }
      for (const FieldDecl& f : c.fields) {
        sc.fields.emplace(f.name, &f);
        if (f.is_mutex) sc.has_mutex = true;
      }
      static const char* kDetMethods[] = {"tick", "digest", "save", "load"};
      for (const char* m : kDetMethods) {
        auto it = c.methods.find(m);
        if (it != c.methods.end() && it->second.declared) {
          sc.has_det_method = true;
        }
      }
      if (class_line_annotated(*pf, c.line, "own:worker")) {
        sc.own_worker = true;
      }
      if (class_line_annotated(*pf, c.line, "own:shared")) {
        sc.own_shared = true;
      }
    }
    for (const FunctionDef& fn : pf->functions) {
      const std::size_t idx = st.fns.size();
      SymFn sf;
      sf.def = &fn;
      sf.file = pf;
      sf.qualified = fn.qual_class.empty()
                         ? fn.name
                         : simple_name(fn.qual_class) + "::" + fn.name;
      st.by_name.insert({fn.name, idx});
      st.by_qualified.insert({sf.qualified, idx});
      st.fns.push_back(std::move(sf));
    }
  }
  return st;
}

}  // namespace gpuqos::lint
