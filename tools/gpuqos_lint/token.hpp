// gpuqos-lint token model (docs/ANALYSIS.md, "gpuqos-lint").
//
// The analyzer never builds a full C++ AST: it lexes each translation unit
// into a flat token stream (comments kept on the side, keyed by line, so
// suppression and /*ckpt:skip*/ annotations stay addressable) and a
// lightweight declaration parser recovers just enough structure — classes,
// member fields, member-function bodies, namespace-scope variables — for the
// project-contract rules to run on.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace gpuqos::lint {

enum class Tok {
  Ident,    // identifiers and keywords (keyword-ness decided by the parser)
  Number,   // integer / floating literal (pp-number)
  String,   // "..." including raw strings and prefixed literals
  Char,     // '...'
  Punct,    // operators and punctuation, multi-char ops lexed as one token
  Hash,     // '#' introducing a preprocessor directive (column-0 context)
  Eof,
};

struct Token {
  Tok kind = Tok::Eof;
  std::string text;
  int line = 0;              // 1-based
  bool starts_line = false;  // first token on its physical line
};

/// A comment with its location, preserved for annotation/suppression lookup.
struct Comment {
  std::string text;  // without the // or /* */ markers, trimmed
  int line = 0;      // line the comment starts on
  bool line_comment = false;
  bool own_line = false;  // nothing but whitespace precedes it on the line
};

struct TokenStream {
  std::vector<Token> tokens;    // always terminated by an Eof token
  std::vector<Comment> comments;
};

/// Lex `content`. Never fails: unrecognized bytes become single-char Punct
/// tokens so the parser can skip them.
[[nodiscard]] TokenStream lex(const std::string& content);

}  // namespace gpuqos::lint
