#include "cfg.hpp"

namespace gpuqos::lint {
namespace {

class Builder {
 public:
  Builder(const std::vector<Token>& t, std::size_t begin, std::size_t end)
      : t_(t), begin_(begin), end_(end) {}

  Cfg build() {
    cfg_.scope_parent.push_back(-1);  // scope 0: the function body
    cfg_.entry = new_block();
    cfg_.exit = new_block();
    cur_ = cfg_.entry;
    if (end_ > begin_ + 1) {
      // Skip the opening '{'; the matching '}' is the last token.
      parse_stmts(begin_ + 1, end_ - 1, 0, nullptr);
    }
    edge(cur_, cfg_.exit);
    return std::move(cfg_);
  }

 private:
  struct SwitchCtx {
    std::size_t head;
    bool labeled = false;  // a case/default label has started a block
  };

  const std::vector<Token>& t_;
  std::size_t begin_;
  std::size_t end_;
  Cfg cfg_;
  std::size_t cur_ = 0;
  std::vector<std::size_t> break_targets_;
  std::vector<std::size_t> continue_targets_;

  std::size_t new_block() {
    cfg_.blocks.emplace_back();
    return cfg_.blocks.size() - 1;
  }
  int new_scope(int parent) {
    cfg_.scope_parent.push_back(parent);
    // Scope count is bounded by the function's token count.
    return static_cast<int>(cfg_.scope_parent.size()) - 1;  /*narrow:ok*/
  }
  void edge(std::size_t from, std::size_t to) {
    cfg_.blocks[from].succ.push_back(to);
  }
  void add_stmt(std::size_t b, std::size_t e, int scope) {
    if (e > b) cfg_.blocks[cur_].stmts.push_back(CfgStmt{b, e, scope});
  }

  [[nodiscard]] bool is_punct(std::size_t k, const char* p) const {
    return k < end_ && t_[k].kind == Tok::Punct && t_[k].text == p;
  }
  [[nodiscard]] bool is_ident(std::size_t k, const char* s) const {
    return k < end_ && t_[k].kind == Tok::Ident && t_[k].text == s;
  }

  /// One past the group closer matching the opener at `k` (any of ([{).
  [[nodiscard]] std::size_t skip_group(std::size_t k) const {
    int depth = 0;
    for (; k < end_; ++k) {
      if (t_[k].kind != Tok::Punct) continue;
      const std::string& s = t_[k].text;
      if (s == "(" || s == "[" || s == "{") ++depth;
      if ((s == ")" || s == "]" || s == "}") && --depth == 0) return k + 1;
    }
    return end_;
  }

  /// One past the ';' ending a plain statement, skipping nested groups
  /// (lambda bodies, init-lists, call arguments).
  [[nodiscard]] std::size_t skip_to_semi(std::size_t k) const {
    while (k < end_) {
      if (t_[k].kind == Tok::Punct) {
        const std::string& s = t_[k].text;
        if (s == ";") return k + 1;
        if (s == "(" || s == "[" || s == "{") {
          k = skip_group(k);
          continue;
        }
        if (s == "}") return k;  // unterminated: don't escape the scope
      }
      ++k;
    }
    return end_;
  }

  /// Statements until an unmatched '}' (not consumed) or `stop`.
  std::size_t parse_stmts(std::size_t k, std::size_t stop, int scope,
                          SwitchCtx* sw) {
    while (k < stop && !is_punct(k, "}")) k = parse_stmt(k, stop, scope, sw);
    return k;
  }

  std::size_t parse_stmt(std::size_t k, std::size_t stop, int scope,
                         SwitchCtx* sw) {
    if (t_[k].kind == Tok::Hash) {  // preprocessor line: skip it
      ++k;
      while (k < stop && !t_[k].starts_line) ++k;
      return k;
    }
    if (is_punct(k, ";")) return k + 1;
    if (is_punct(k, "{")) {  // bare compound: child scope, same block flow
      const int child = new_scope(scope);
      const std::size_t close = skip_group(k) - 1;
      k = parse_stmts(k + 1, close, child, nullptr);
      return is_punct(k, "}") ? k + 1 : k;
    }
    if (t_[k].kind == Tok::Ident) {
      const std::string& s = t_[k].text;
      if (s == "if") return parse_if(k, stop, scope);
      if (s == "while") return parse_while(k, stop, scope);
      if (s == "for") return parse_for(k, stop, scope);
      if (s == "do") return parse_do(k, stop, scope);
      if (s == "switch") return parse_switch(k, stop, scope);
      if (s == "try") return parse_try(k, stop, scope);
      if (s == "return" || s == "throw") {
        const std::size_t e = skip_to_semi(k);
        add_stmt(k, e, scope);
        edge(cur_, cfg_.exit);
        cur_ = new_block();  // anything after is dead code
        return e;
      }
      if (s == "break" || s == "continue") {
        add_stmt(k, k + 1, scope);
        const std::vector<std::size_t>& targets =
            s == "break" ? break_targets_ : continue_targets_;
        edge(cur_, targets.empty() ? cfg_.exit : targets.back());
        cur_ = new_block();
        return skip_to_semi(k);
      }
      if (sw != nullptr && (s == "case" || s == "default")) {
        // New leader block: an edge from the switch head plus fall-through
        // from the previous label's statements.
        std::size_t j = k + 1;
        while (j < stop && !is_punct(j, ":")) ++j;
        const std::size_t lbl = new_block();
        edge(sw->head, lbl);  // dispatch edge
        edge(cur_, lbl);      // fall-through from the previous label

        sw->labeled = true;
        cur_ = lbl;
        return j < stop ? j + 1 : stop;
      }
      if (s == "else") {
        // Stray else (shouldn't happen): treat its statement as plain flow.
        return parse_stmt(k + 1, stop, scope, sw);
      }
    }
    const std::size_t e = skip_to_semi(k);
    add_stmt(k, e, scope);
    return e;
  }

  /// One branch arm: a braced compound or a single statement, in a child
  /// scope. Returns the cursor past the arm.
  std::size_t parse_arm(std::size_t k, std::size_t stop, int scope) {
    const int child = new_scope(scope);
    if (is_punct(k, "{")) {
      const std::size_t close = skip_group(k) - 1;
      k = parse_stmts(k + 1, close, child, nullptr);
      return is_punct(k, "}") ? k + 1 : k;
    }
    return parse_stmt(k, stop, child, nullptr);
  }

  /// Condition parens starting at `k` (the keyword). Sets [cb, ce) to the
  /// condition token range and returns one past the ')'.
  std::size_t read_cond(std::size_t k, std::size_t& cb, std::size_t& ce) {
    std::size_t open = k + 1;
    if (is_ident(open, "constexpr")) ++open;  // if constexpr (...)
    if (!is_punct(open, "(")) {
      cb = ce = k;
      return k + 1;
    }
    const std::size_t past = skip_group(open);
    cb = open + 1;
    ce = past > 0 ? past - 1 : open + 1;
    return past;
  }

  std::size_t parse_if(std::size_t k, std::size_t stop, int scope) {
    std::size_t cb = 0;
    std::size_t ce = 0;
    k = read_cond(k, cb, ce);
    add_stmt(cb, ce, scope);  // the condition is evaluated here
    cfg_.blocks[cur_].has_cond = true;
    cfg_.blocks[cur_].cond_begin = cb;
    cfg_.blocks[cur_].cond_end = ce;
    const std::size_t head = cur_;

    const std::size_t then_entry = new_block();
    cur_ = then_entry;
    k = parse_arm(k, stop, scope);
    const std::size_t then_last = cur_;

    if (is_ident(k, "else")) {
      const std::size_t else_entry = new_block();
      cur_ = else_entry;
      k = parse_arm(k + 1, stop, scope);
      const std::size_t else_last = cur_;
      const std::size_t merge = new_block();
      edge(head, then_entry);  // true
      edge(head, else_entry);  // false
      edge(then_last, merge);
      edge(else_last, merge);
      cur_ = merge;
      return k;
    }
    const std::size_t merge = new_block();
    edge(head, then_entry);  // true
    edge(head, merge);       // false
    edge(then_last, merge);
    cur_ = merge;
    return k;
  }

  std::size_t parse_while(std::size_t k, std::size_t stop, int scope) {
    std::size_t cb = 0;
    std::size_t ce = 0;
    k = read_cond(k, cb, ce);
    const std::size_t head = new_block();
    edge(cur_, head);
    cur_ = head;
    add_stmt(cb, ce, scope);
    cfg_.blocks[head].has_cond = true;
    cfg_.blocks[head].loop_head = true;
    cfg_.blocks[head].cond_begin = cb;
    cfg_.blocks[head].cond_end = ce;

    const std::size_t body = new_block();
    const std::size_t after = new_block();
    edge(head, body);   // true
    edge(head, after);  // false
    break_targets_.push_back(after);
    continue_targets_.push_back(head);
    cur_ = body;
    k = parse_arm(k, stop, scope);
    edge(cur_, head);  // back edge
    break_targets_.pop_back();
    continue_targets_.pop_back();
    cur_ = after;
    return k;
  }

  std::size_t parse_for(std::size_t k, std::size_t stop, int scope) {
    const std::size_t open = k + 1;
    if (!is_punct(open, "(")) {  // malformed: treat as a plain statement
      const std::size_t e = skip_to_semi(k);
      add_stmt(k, e, scope);
      return e;
    }
    const std::size_t past = skip_group(open);
    const std::size_t close = past - 1;

    // Range-for has a ':' at paren depth 1 before any ';'.
    std::size_t colon = close;
    std::size_t semi1 = close;
    std::size_t semi2 = close;
    int depth = 0;
    for (std::size_t j = open; j < close; ++j) {
      if (t_[j].kind != Tok::Punct) continue;
      const std::string& s = t_[j].text;
      if (s == "(" || s == "[" || s == "{") ++depth;
      if (s == ")" || s == "]" || s == "}") --depth;
      if (depth != 1) continue;
      if (s == ":" && colon == close && semi1 == close &&
          (j == open + 1 || t_[j - 1].text != ":")) {
        colon = j;
      } else if (s == ";") {
        if (semi1 == close) {
          semi1 = j;
        } else if (semi2 == close) {
          semi2 = j;
        }
      }
    }
    const int child = new_scope(scope);  // loop variables live here

    const std::size_t head = new_block();
    const std::size_t body = new_block();
    const std::size_t after = new_block();
    if (colon != close && semi1 == close) {
      // Range-for: the whole head is one evaluated statement; no condition
      // to refine on, but both continue-and-exit edges exist.
      edge(cur_, head);
      cur_ = head;
      add_stmt(open + 1, close, child);
      edge(head, body);
      edge(head, after);
    } else {
      if (semi1 != close) add_stmt(open + 1, semi1, child);  // init
      edge(cur_, head);
      cur_ = head;
      const std::size_t cb = semi1 != close ? semi1 + 1 : open + 1;
      const std::size_t ce = semi2 != close ? semi2 : close;
      if (ce > cb) {
        add_stmt(cb, ce, child);
        cfg_.blocks[head].has_cond = true;
        cfg_.blocks[head].loop_head = true;
        cfg_.blocks[head].cond_begin = cb;
        cfg_.blocks[head].cond_end = ce;
        edge(head, body);   // true
        edge(head, after);  // false
      } else {
        edge(head, body);  // for(;;): after is only reachable via break
      }
    }
    break_targets_.push_back(after);
    continue_targets_.push_back(head);
    cur_ = body;
    std::size_t kk = parse_arm(past, stop, child);
    if (semi2 != close && close > semi2 + 1) {
      add_stmt(semi2 + 1, close, child);  // increment, re-evaluated per trip
    }
    edge(cur_, head);
    break_targets_.pop_back();
    continue_targets_.pop_back();
    cur_ = after;
    return kk;
  }

  std::size_t parse_do(std::size_t k, std::size_t stop, int scope) {
    const std::size_t body = new_block();
    const std::size_t cond = new_block();
    const std::size_t after = new_block();
    edge(cur_, body);
    break_targets_.push_back(after);
    continue_targets_.push_back(cond);
    cur_ = body;
    k = parse_arm(k + 1, stop, scope);
    edge(cur_, cond);
    break_targets_.pop_back();
    continue_targets_.pop_back();

    cur_ = cond;
    if (is_ident(k, "while")) {
      std::size_t cb = 0;
      std::size_t ce = 0;
      k = read_cond(k, cb, ce);
      add_stmt(cb, ce, scope);
      cfg_.blocks[cond].has_cond = true;
      cfg_.blocks[cond].loop_head = true;
      cfg_.blocks[cond].cond_begin = cb;
      cfg_.blocks[cond].cond_end = ce;
      if (is_punct(k, ";")) ++k;
    }
    edge(cond, body);   // true
    edge(cond, after);  // false
    cur_ = after;
    return k;
  }

  std::size_t parse_switch(std::size_t k, std::size_t stop, int scope) {
    std::size_t cb = 0;
    std::size_t ce = 0;
    k = read_cond(k, cb, ce);
    add_stmt(cb, ce, scope);
    const std::size_t head = cur_;
    const std::size_t after = new_block();
    break_targets_.push_back(after);
    SwitchCtx sw{head, false};
    if (is_punct(k, "{")) {
      const int child = new_scope(scope);
      const std::size_t close = skip_group(k) - 1;
      // Statements before the first label are dead; a fresh block keeps them
      // out of the head's flow.
      cur_ = new_block();
      k = parse_stmts(k + 1, close, child, &sw);
      if (is_punct(k, "}")) ++k;
    }
    edge(cur_, after);
    edge(head, after);  // no matching label / no default
    break_targets_.pop_back();
    cur_ = after;
    (void)stop;
    return k;
  }

  std::size_t parse_try(std::size_t k, std::size_t stop, int scope) {
    // Conservative linearization: the try compound flows into each catch
    // compound in order. Must-facts from the try body may leak into the
    // handlers; the project uses try/catch sparingly enough that this stays
    // honest.
    ++k;  // 'try'
    if (is_punct(k, "{")) {
      const int child = new_scope(scope);
      const std::size_t close = skip_group(k) - 1;
      k = parse_stmts(k + 1, close, child, nullptr);
      if (is_punct(k, "}")) ++k;
    }
    while (is_ident(k, "catch")) {
      ++k;
      if (is_punct(k, "(")) k = skip_group(k);
      const std::size_t before = cur_;
      const std::size_t handler = new_block();
      const std::size_t merge = new_block();
      edge(before, handler);  // exception path
      edge(before, merge);    // clean path
      cur_ = handler;
      if (is_punct(k, "{")) {
        const int child = new_scope(scope);
        const std::size_t close = skip_group(k) - 1;
        k = parse_stmts(k + 1, close, child, nullptr);
        if (is_punct(k, "}")) ++k;
      }
      edge(cur_, merge);
      cur_ = merge;
    }
    (void)stop;
    return k;
  }
};

}  // namespace

Cfg build_cfg(const std::vector<Token>& tokens, std::size_t body_begin,
              std::size_t body_end) {
  if (body_end <= body_begin || body_end > tokens.size()) {
    Cfg cfg;
    cfg.scope_parent.push_back(-1);
    cfg.entry = 0;
    cfg.exit = 1;
    cfg.blocks.resize(2);
    cfg.blocks[0].succ.push_back(1);
    return cfg;
  }
  return Builder(tokens, body_begin, body_end).build();
}

}  // namespace gpuqos::lint
