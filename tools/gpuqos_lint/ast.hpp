// gpuqos-lint declaration model.
//
// Deliberately shallow: the rules need classes with their fields and the
// bodies of save()/load()/digest(), every function definition (for the
// thread-purity reachability walk), and namespace-scope variables. Nothing
// else about the program is recovered.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "token.hpp"

namespace gpuqos::lint {

struct FieldDecl {
  std::string name;
  std::string type;  // declaration-head type tokens, space-joined
  int line = 0;
  bool is_static = false;
  bool is_const = false;      // const or constexpr
  bool is_atomic = false;     // std::atomic<...> (or atomic_*)
  bool is_thread_local = false;
  bool is_ref = false;        // reference member: non-owning wiring
  bool is_ptr = false;        // raw-pointer member: non-owning wiring
  bool is_mutex = false;      // std::mutex / std::shared_mutex and friends
  bool skip_ckpt = false;     // /*ckpt:skip*/ annotation on the declaration
  bool skip_digest = false;   // /*digest:skip*/ annotation on the declaration
  bool own_worker = false;    // /*own:worker*/ worker-local by construction
  bool own_guarded = false;   // /*own:guarded*/ externally-disciplined access
};

struct MethodInfo {
  bool declared = false;
  int line = 0;  // declaration line inside the class body
  std::set<std::string> body_idents;  // empty until a definition is seen
  bool has_body = false;
};

struct ClassDecl {
  std::string name;  // unqualified; nested classes use Outer::Inner
  int line = 0;
  std::vector<FieldDecl> fields;          // non-static data members
  std::vector<FieldDecl> static_members;  // static data members
  std::map<std::string, MethodInfo> methods;  // every declared member function
};

struct LocalStatic {
  std::string name;
  std::string type;  // declaration tokens before the initializer, joined
  int line = 0;
  bool is_const = false;
  bool is_atomic = false;
  bool is_thread_local = false;
  bool is_mutex = false;
  bool is_constexpr = false;  // constant-initialized: no init code runs
  bool has_call_init = false;  // initializer runs code (magic-static hazard)
};

struct ParamDecl {
  std::string name;  // empty for unnamed parameters
  std::string type;
};

struct FunctionDef {
  std::string name;        // unqualified ("save", "run_many", ...)
  std::string qual_class;  // "Engine" for Engine::save, empty for free fns
  int line = 0;
  std::set<std::string> body_idents;
  std::vector<LocalStatic> local_statics;
  std::vector<ParamDecl> params;
  // Token range of the body brace group in ParsedFile::ts.tokens:
  // [body_begin, body_end), '{' included. 0,0 when there is no body
  // (declarations, recorded #define pseudo-functions).
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
};

struct NamespaceVar {
  std::string name;
  std::string type;
  int line = 0;
  bool is_const = false;
  bool is_atomic = false;
  bool is_thread_local = false;
  bool is_mutex = false;
};

struct ParsedFile {
  std::string path;
  TokenStream ts;
  std::vector<ClassDecl> classes;
  std::vector<NamespaceVar> namespace_vars;
  std::vector<FunctionDef> functions;
};

/// Parse one file's token stream into the shallow declaration model.
[[nodiscard]] ParsedFile parse(std::string path, TokenStream ts);

}  // namespace gpuqos::lint
