// Cross-TU call graph over Symtab::fns (docs/ANALYSIS.md, "gpuqos-lint").
//
// Calls through an explicit `Cls::` qualifier, `this->`, or a receiver whose
// declared type resolves to a known class bind to that class's methods only;
// everything else falls back to every function sharing the callee's name.
// Bare mentions of a function name (callbacks, function pointers, recorded
// #define bodies) also produce edges — over-approximate by design, the same
// philosophy as R2's ident reachability, but with enough precision that
// same-named methods of unrelated classes no longer alias.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "symtab.hpp"

namespace gpuqos::lint {

struct CallGraph {
  std::vector<std::vector<std::size_t>> edges;  // fn index -> callee indices

  /// BFS from every function whose unqualified name is in `roots`. When no
  /// root is defined in the scanned set, everything is reachable
  /// (conservative fallback; also what lets small test snippets lint).
  [[nodiscard]] std::vector<bool> reachable_from(
      const Symtab& st, const std::vector<std::string>& roots) const;
};

[[nodiscard]] CallGraph build_callgraph(const Symtab& st);

}  // namespace gpuqos::lint
