#include "absint.hpp"

#include <deque>

namespace gpuqos::lint {
namespace {

/// Pointwise join of two states under the domain's lattice.
AbsState join_states(const Domain& d, const AbsState& a, const AbsState& b) {
  AbsState out;
  auto ia = a.begin();
  auto ib = b.begin();
  auto put = [&](const std::string& key, int v) {
    if (v != Domain::kDrop) out.emplace(key, v);
  };
  while (ia != a.end() || ib != b.end()) {
    if (ib == b.end() || (ia != a.end() && ia->first < ib->first)) {
      put(ia->first, d.join_missing(ia->first, ia->second));
      ++ia;
    } else if (ia == a.end() || ib->first < ia->first) {
      put(ib->first, d.join_missing(ib->first, ib->second));
      ++ib;
    } else {
      put(ia->first, d.join(ia->first, ia->second, ib->second));
      ++ia;
      ++ib;
    }
  }
  return out;
}

}  // namespace

AbsResult solve(const Cfg& cfg, Domain& d) {
  AbsResult r;
  r.block_in.resize(cfg.blocks.size());
  r.reached.assign(cfg.blocks.size(), false);
  r.block_in[cfg.entry] = d.entry_state();
  r.reached[cfg.entry] = true;

  std::deque<std::size_t> work{cfg.entry};
  std::vector<bool> queued(cfg.blocks.size(), false);
  queued[cfg.entry] = true;

  // Finite lattices converge well before this; the bound only guards a
  // non-monotone domain from spinning.
  std::size_t budget = cfg.blocks.size() * 256 + 1024;
  while (!work.empty() && budget-- > 0) {
    const std::size_t b = work.front();
    work.pop_front();
    queued[b] = false;

    AbsState state = r.block_in[b];
    const CfgBlock& blk = cfg.blocks[b];
    for (const CfgStmt& st : blk.stmts) d.transfer(state, st);

    for (std::size_t i = 0; i < blk.succ.size(); ++i) {
      const std::size_t to = blk.succ[i];
      AbsState out = state;
      if (blk.has_cond) d.transfer_branch(out, blk, i == 0);
      bool changed = false;
      if (!r.reached[to]) {
        r.block_in[to] = std::move(out);
        r.reached[to] = true;
        changed = true;
      } else {
        AbsState joined = join_states(d, r.block_in[to], out);
        if (joined != r.block_in[to]) {
          r.block_in[to] = std::move(joined);
          changed = true;
        }
      }
      if (changed && !queued[to]) {
        work.push_back(to);
        queued[to] = true;
      }
    }
  }
  return r;
}

void report(const Cfg& cfg, Domain& d, const AbsResult& r) {
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    if (!r.reached[b]) continue;  // dead code: nothing to report against
    AbsState state = r.block_in[b];
    const CfgBlock& blk = cfg.blocks[b];
    for (const CfgStmt& st : blk.stmts) {
      d.visit(state, st);
      d.transfer(state, st);
    }
    if (blk.has_cond) d.visit_branch(state, blk);
  }
}

}  // namespace gpuqos::lint
