#include "dataflow.hpp"

#include <algorithm>
#include <sstream>

namespace gpuqos::lint {
namespace {

bool is_stmt_keyword(const std::string& s) {
  static const char* kKw[] = {"if",     "else",    "for",      "while",
                              "do",     "switch",  "case",     "return",
                              "break",  "continue", "goto",    "using",
                              "delete", "new",     "throw",    "try",
                              "catch",  "default",  "sizeof",  "typedef",
                              "static_assert", "co_return", "co_await"};
  return std::any_of(std::begin(kKw), std::end(kKw),
                     [&](const char* k) { return s == k; });
}

bool is_type_word(const std::string& s) {
  return s == "const" || s == "constexpr" || s == "static" ||
         s == "thread_local" || s == "volatile" || s == "unsigned" ||
         s == "signed" || s == "long" || s == "short" || s == "int" ||
         s == "char" || s == "bool" || s == "float" || s == "double" ||
         s == "void" || s == "auto" || s == "typename" || s == "struct" ||
         s == "class" || s == "mutable" || s == "register";
}

bool angle_opens_after(const Token& prev) {
  if (prev.kind == Tok::Ident) return prev.text != "operator";
  return prev.kind == Tok::Punct && (prev.text == ">" || prev.text == "::");
}

bool contains_word(const std::string& type, const char* word) {
  // Token-boundary search in a space-joined token string.
  const std::string w = word;
  std::size_t pos = 0;
  while ((pos = type.find(w, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || type[pos - 1] == ' ';
    const std::size_t end = pos + w.size();
    const bool right_ok = end == type.size() || type[end] == ' ';
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

}  // namespace

std::map<std::string, LocalVar> scan_locals(const SymFn& fn) {
  std::map<std::string, LocalVar> out;
  for (const ParamDecl& p : fn.def->params) {
    if (p.name.empty()) continue;
    LocalVar v;
    v.type = p.type;
    v.line = fn.def->line;
    v.is_param = true;
    out.emplace(p.name, std::move(v));
  }
  if (fn.def->body_end <= fn.def->body_begin) return out;
  const std::vector<Token>& t = fn.file->ts.tokens;

  // Statement-head scan: at each statement start, try to read
  // `type-tokens name` up to `=` / `;` / `{` / `(`-with-args.
  bool stmt_start = true;
  std::size_t k = fn.def->body_begin + 1;
  const std::size_t end = fn.def->body_end > 0 ? fn.def->body_end - 1
                                               : fn.def->body_begin;
  while (k < end) {
    const Token& tk = t[k];
    if (tk.kind == Tok::Punct) {
      stmt_start = tk.text == ";" || tk.text == "{" || tk.text == "}" ||
                   tk.text == "(";
      ++k;
      continue;
    }
    if (tk.kind == Tok::Hash) {
      // Skip the directive's tokens.
      ++k;
      while (k < end && !t[k].starts_line) ++k;
      stmt_start = true;
      continue;
    }
    if (!stmt_start || tk.kind != Tok::Ident || is_stmt_keyword(tk.text)) {
      stmt_start = false;
      ++k;
      continue;
    }
    // Candidate declaration: collect type/name tokens.
    std::vector<std::size_t> decl;
    int angle = 0;
    bool ok = false;
    std::size_t j = k;
    for (; j < end; ++j) {
      const Token& dt = t[j];
      if (dt.kind == Tok::Punct) {
        if (dt.text == "<") {
          if (j > 0 && angle_opens_after(t[j - 1])) {
            ++angle;
          } else {
            break;  // comparison: not a declaration
          }
        } else if (dt.text == ">" && angle > 0) {
          --angle;
        } else if (dt.text == ">>" && angle > 0) {
          angle = angle >= 2 ? angle - 2 : 0;
        } else if (angle == 0 && (dt.text == "=" || dt.text == ";" ||
                                  dt.text == "{" || dt.text == "(" ||
                                  dt.text == ":")) {
          ok = true;
          break;
        } else if (dt.text == "*" || dt.text == "&" || dt.text == "&&" ||
                   dt.text == "::") {
          // type punctuation — keep collecting
        } else if (angle != 0 && dt.text == ",") {
          // template-argument separator — keep collecting
        } else {
          break;  // expression punctuation: abandon
        }
        decl.push_back(j);
        continue;
      }
      if (dt.kind == Tok::Ident || dt.kind == Tok::Number) {
        decl.push_back(j);
        continue;
      }
      break;  // strings/chars: expression, abandon
    }
    if (ok && decl.size() >= 2) {
      const std::string& term = t[j].text;
      std::size_t name_k = static_cast<std::size_t>(-1);
      for (std::size_t d = 0; d < decl.size(); ++d) {
        const Token& dt = t[decl[d]];
        if (dt.kind == Tok::Ident && !is_type_word(dt.text) &&
            !is_stmt_keyword(dt.text)) {
          name_k = d;
        }
      }
      // The name must be the last collected token with a type part before
      // it; `ns::f(args)` is a qualified call, not a direct-init.
      const bool qualified_call =
          term == "(" && name_k != static_cast<std::size_t>(-1) &&
          name_k > 0 && t[decl[name_k - 1]].text == "::";
      if (!qualified_call && name_k != static_cast<std::size_t>(-1) &&
          name_k == decl.size() - 1 && name_k > 0) {
        const Token& name_tok = t[decl[name_k]];
        if (out.count(name_tok.text) == 0) {
          LocalVar v;
          for (std::size_t d = 0; d < name_k; ++d) {
            if (!v.type.empty()) v.type += ' ';
            v.type += t[decl[d]].text;
          }
          v.line = name_tok.line;
          if (!v.type.empty()) out.emplace(name_tok.text, std::move(v));
        }
      }
    }
    k = j > k ? j : k + 1;
    stmt_start = false;
  }
  return out;
}

bool type_is_unordered(const std::string& type) {
  return type.find("unordered_") != std::string::npos;
}

bool type_is_float(const std::string& type) {
  return contains_word(type, "float") || contains_word(type, "double");
}

bool type_is_mutex(const std::string& type) {
  return type.find("mutex") != std::string::npos;
}

bool type_is_ptr_keyed_ordered(const std::string& type) {
  // Find `map <` / `set <` (and multi- variants), then look for a `*` in the
  // first template argument (up to a top-level comma or the closing angle).
  static const char* kNames[] = {"map", "multimap", "set", "multiset"};
  for (const char* n : kNames) {
    std::size_t pos = 0;
    const std::string needle = std::string(n) + " <";
    while ((pos = type.find(needle, pos)) != std::string::npos) {
      const bool left_ok = pos == 0 || type[pos - 1] == ' ';
      if (!left_ok) {
        pos += needle.size();
        continue;
      }
      int angle = 0;
      bool in_first_arg = true;
      std::size_t k = pos + needle.size() - 1;  // at the '<'
      std::string tok;
      std::istringstream ss(type.substr(k));
      while (ss >> tok && in_first_arg) {
        if (tok == "<") {
          ++angle;
        } else if (tok == ">" || tok == ">>") {
          angle -= tok == ">>" ? 2 : 1;
          if (angle <= 0) in_first_arg = false;
        } else if (tok == "," && angle == 1) {
          in_first_arg = false;
        } else if (tok == "*" && angle == 1) {
          return true;
        }
      }
      pos += needle.size();
    }
  }
  return false;
}

bool body_has_raii_lock(const SymFn& fn) {
  static const char* kLocks[] = {"lock_guard", "scoped_lock", "unique_lock",
                                 "shared_lock"};
  return std::any_of(std::begin(kLocks), std::end(kLocks), [&](const char* l) {
    return fn.def->body_idents.count(l) != 0;
  });
}

bool line_annotated(const ParsedFile& pf, int line, const char* tag) {
  for (const Comment& c : pf.ts.comments) {
    if (c.line != line && !(c.own_line && c.line == line - 1)) continue;
    if (c.text.find(tag) != std::string::npos) return true;
  }
  return false;
}

std::string resolve_type(const SymFn& fn,
                         const std::map<std::string, LocalVar>& locals,
                         const Symtab& st, const std::string& name) {
  auto lit = locals.find(name);
  if (lit != locals.end()) return lit->second.type;
  if (!fn.def->qual_class.empty()) {
    const std::string simple =
        fn.def->qual_class.substr(fn.def->qual_class.rfind(':') + 1);
    const SymClass* cls = st.find_class(simple);
    if (cls != nullptr) {
      auto fit = cls->fields.find(name);
      if (fit != cls->fields.end()) return fit->second->type;
    }
  }
  for (const NamespaceVar& v : fn.file->namespace_vars) {
    if (v.name == name) return v.type;
  }
  return "";
}

}  // namespace gpuqos::lint
