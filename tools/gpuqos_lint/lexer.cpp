#include "token.hpp"

#include <cctype>

namespace gpuqos::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Multi-character punctuators, longest-match-first. Lexing << and >> as
/// single tokens is what keeps the parser's template-angle tracking sane.
const char* kPuncts[] = {
    "<<=", ">>=", "...", "->*", "<=>", "::", "->", "++", "--", "<<", ">>",
    "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=",
};

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

}  // namespace

TokenStream lex(const std::string& content) {
  TokenStream out;
  const std::size_t n = content.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;   // only whitespace seen so far on this line
  bool fresh_line = true;      // no token emitted yet on this line

  auto push = [&](Tok kind, std::string text, int tok_line) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = tok_line;
    t.starts_line = fresh_line;
    fresh_line = false;
    out.tokens.push_back(std::move(t));
  };

  while (i < n) {
    char c = content[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      fresh_line = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Line continuation inside a directive: just consume.
    if (c == '\\' && i + 1 < n && (content[i + 1] == '\n' ||
                                   (content[i + 1] == '\r' && i + 2 < n &&
                                    content[i + 2] == '\n'))) {
      i += content[i + 1] == '\n' ? 2 : 3;
      ++line;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      std::size_t e = content.find('\n', i);
      if (e == std::string::npos) e = n;
      Comment cm;
      cm.text = trim(content.substr(i + 2, e - i - 2));
      cm.line = line;
      cm.line_comment = true;
      cm.own_line = at_line_start;
      out.comments.push_back(std::move(cm));
      i = e;
      continue;
    }
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      std::size_t e = content.find("*/", i + 2);
      std::size_t end = e == std::string::npos ? n : e + 2;
      Comment cm;
      cm.text = trim(content.substr(
          i + 2, (e == std::string::npos ? n : e) - i - 2));
      cm.line = line;
      cm.own_line = at_line_start;
      for (std::size_t k = i; k < end; ++k) {
        if (content[k] == '\n') ++line;
      }
      out.comments.push_back(std::move(cm));
      i = end;
      continue;
    }
    at_line_start = false;
    // Raw strings: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && content[i + 1] == '"') {
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && content[p] != '(') delim += content[p++];
      std::string closer = ")" + delim + "\"";
      std::size_t e = content.find(closer, p);
      std::size_t end = e == std::string::npos ? n : e + closer.size();
      const int start_line = line;
      for (std::size_t k = i; k < end; ++k) {
        if (content[k] == '\n') ++line;
      }
      push(Tok::String, content.substr(i, end - i), start_line);
      i = end;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t p = i + 1;
      while (p < n && content[p] != quote) {
        if (content[p] == '\\' && p + 1 < n) ++p;
        if (content[p] == '\n') ++line;
        ++p;
      }
      std::size_t end = p < n ? p + 1 : n;
      push(quote == '"' ? Tok::String : Tok::Char, content.substr(i, end - i),
           line);
      i = end;
      continue;
    }
    if (ident_start(c)) {
      std::size_t p = i + 1;
      while (p < n && ident_char(content[p])) ++p;
      push(Tok::Ident, content.substr(i, p - i), line);
      i = p;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(content[i + 1])) != 0)) {
      // pp-number: digits, idents, ', and exponent signs.
      std::size_t p = i + 1;
      while (p < n) {
        char d = content[p];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++p;
        } else if ((d == '+' || d == '-') &&
                   (content[p - 1] == 'e' || content[p - 1] == 'E' ||
                    content[p - 1] == 'p' || content[p - 1] == 'P')) {
          ++p;
        } else {
          break;
        }
      }
      push(Tok::Number, content.substr(i, p - i), line);
      i = p;
      continue;
    }
    if (c == '#') {
      push(Tok::Hash, "#", line);
      ++i;
      continue;
    }
    bool matched = false;
    for (const char* punct : kPuncts) {
      std::size_t len = std::char_traits<char>::length(punct);
      if (content.compare(i, len, punct) == 0) {
        push(Tok::Punct, punct, line);
        i += len;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    push(Tok::Punct, std::string(1, c), line);
    ++i;
  }
  Token eof;
  eof.kind = Tok::Eof;
  eof.line = line;
  out.tokens.push_back(eof);
  return out;
}

}  // namespace gpuqos::lint
