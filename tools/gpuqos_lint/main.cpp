// gpuqos_lint CLI (docs/ANALYSIS.md, "gpuqos-lint").
//
//   gpuqos_lint [options] <file-or-dir>...
//     --format=human|json|github|sarif  output format (default human)
//     --baseline=FILE              explicit baseline (default: nearest
//                                  tools/gpuqos_lint/baseline.txt above the
//                                  first input path)
//     --no-baseline                ignore any baseline
//     --write-baseline=FILE        write current findings as a baseline and
//                                  exit 0
//     --rules=r1,r2                run only the named rules
//     --roots=a,b                  thread-purity reachability roots
//                                  (default run_many,run_hetero)
//     --det-roots=a,b              det-hazard reachability roots
//                                  (default tick,digest,save,load)
//     --threads=N                  parse worker threads (0 = auto, default)
//     --stats                      per-rule timing table on stderr
//     --changed-only=GITREF        parse everything (cross-TU context) but
//                                  report findings only in files changed
//                                  vs. GITREF (git diff --name-only)
//     --list-rules                 print rule names and exit
//
// Exit status: 0 clean (after NOLINT + baseline), 1 findings, 2 usage/IO
// error. Directories are scanned recursively for .hpp/.cpp, skipping
// build*/ and hidden directories.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>

#include "lint.hpp"

namespace fs = std::filesystem;
using namespace gpuqos::lint;

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--format=human|json|github|sarif]"
               " [--baseline=FILE|--no-baseline] [--write-baseline=FILE]"
               " [--rules=...] [--roots=...] [--det-roots=...] [--threads=N]"
               " [--stats] [--changed-only=GITREF] <file-or-dir>...\n";
  return 2;
}

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

void collect(const fs::path& p, std::vector<fs::path>& out) {
  if (fs::is_regular_file(p)) {
    const std::string ext = p.extension().string();
    if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc") {
      out.push_back(p);
    }
    return;
  }
  if (!fs::is_directory(p)) return;
  for (const auto& entry : fs::directory_iterator(p)) {
    const std::string name = entry.path().filename().string();
    if (entry.is_directory()) {
      if (name.rfind("build", 0) == 0 || name.front() == '.') continue;
      collect(entry.path(), out);
    } else {
      collect(entry.path(), out);
    }
  }
}

/// Nearest tools/gpuqos_lint/baseline.txt at or above `start`.
std::string find_default_baseline(const fs::path& start) {
  std::error_code ec;
  fs::path dir = fs::absolute(start, ec);
  if (ec) return "";
  if (!fs::is_directory(dir)) dir = dir.parent_path();
  for (; !dir.empty(); dir = dir.parent_path()) {
    const fs::path candidate = dir / "tools" / "gpuqos_lint" / "baseline.txt";
    if (fs::exists(candidate)) return candidate.string();
    if (dir == dir.root_path()) break;
  }
  return "";
}

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Parse-cache key: mtime ^ size, never 0 for an existing file (0 means
/// "don't cache").
std::uint64_t file_stamp(const fs::path& p) {
  std::error_code ec;
  const auto mtime = fs::last_write_time(p, ec);
  if (ec) return 0;
  const auto size = fs::file_size(p, ec);
  if (ec) return 0;
  const std::uint64_t stamp =
      static_cast<std::uint64_t>(mtime.time_since_epoch().count()) ^
      static_cast<std::uint64_t>(size);
  return stamp != 0 ? stamp : 1;
}

/// `git diff --name-only <ref>` as a path set; false on git failure.
bool changed_files(const std::string& ref, std::set<std::string>& out) {
  const std::string cmd = "git diff --name-only '" + ref + "' 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return false;
  char buf[4096];
  std::string text;
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) text += buf;
  if (pclose(pipe) != 0) return false;
  std::stringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty()) out.insert(line);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "human";
  std::string baseline_path;
  std::string write_baseline_path;
  std::string changed_only_ref;
  bool no_baseline = false;
  bool want_stats = false;
  LintOptions opts;
  std::vector<fs::path> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg == "-h" || arg == "--help") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--list-rules") {
      for (const std::string& r : all_rules()) std::cout << r << "\n";
      return 0;
    } else if (arg.rfind("--format=", 0) == 0) {
      format = value_of("--format=");
      if (format != "human" && format != "json" && format != "github" &&
          format != "sarif") {
        return usage(argv[0]);
      }
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = value_of("--baseline=");
    } else if (arg == "--no-baseline") {
      no_baseline = true;
    } else if (arg.rfind("--write-baseline=", 0) == 0) {
      write_baseline_path = value_of("--write-baseline=");
    } else if (arg.rfind("--rules=", 0) == 0) {
      for (const std::string& r : split_list(value_of("--rules="))) {
        bool known = false;
        for (const std::string& k : all_rules()) known = known || k == r;
        if (!known) {
          std::cerr << "gpuqos_lint: unknown rule '" << r << "'\n";
          return 2;
        }
        opts.rules.insert(r);
      }
    } else if (arg.rfind("--roots=", 0) == 0) {
      opts.purity_roots = split_list(value_of("--roots="));
    } else if (arg.rfind("--det-roots=", 0) == 0) {
      opts.det_roots = split_list(value_of("--det-roots="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      opts.threads =
          static_cast<unsigned>(std::atoi(value_of("--threads=").c_str()));
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (arg.rfind("--changed-only=", 0) == 0) {
      changed_only_ref = value_of("--changed-only=");
      if (changed_only_ref.empty()) return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (inputs.empty()) return usage(argv[0]);

  std::vector<fs::path> paths;
  for (const fs::path& p : inputs) {
    if (!fs::exists(p)) {
      std::cerr << "gpuqos_lint: no such file or directory: " << p << "\n";
      return 2;
    }
    collect(p, paths);
  }
  std::sort(paths.begin(), paths.end());

  std::vector<FileInput> files;
  files.reserve(paths.size());
  for (const fs::path& p : paths) {
    FileInput f;
    f.path = p.generic_string();
    if (!read_file(p, f.content)) {
      std::cerr << "gpuqos_lint: cannot read " << p << "\n";
      return 2;
    }
    f.stamp = file_stamp(p);
    files.push_back(std::move(f));
  }

  ParseCache cache;
  LintResult result = run_lint_cached(files, cache, opts);

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    out << to_baseline(result);
    if (!out) {
      std::cerr << "gpuqos_lint: cannot write " << write_baseline_path
                << "\n";
      return 2;
    }
    std::cout << "wrote " << result.findings.size() << " fingerprint(s) to "
              << write_baseline_path << "\n";
    return 0;
  }

  if (!no_baseline) {
    if (baseline_path.empty() && !inputs.empty()) {
      baseline_path = find_default_baseline(inputs.front());
    }
    if (!baseline_path.empty()) {
      std::string text;
      if (!read_file(baseline_path, text)) {
        std::cerr << "gpuqos_lint: cannot read baseline " << baseline_path
                  << "\n";
        return 2;
      }
      apply_baseline(result, parse_baseline(text));
    }
  }

  if (!changed_only_ref.empty()) {
    std::set<std::string> changed;
    if (!changed_files(changed_only_ref, changed)) {
      std::cerr << "gpuqos_lint: git diff --name-only '" << changed_only_ref
                << "' failed\n";
      return 2;
    }
    // The full input set was still parsed (cross-TU rules need the whole
    // symbol table); only the reporting is narrowed to the changed paths.
    // git emits repo-root-relative paths, so run from the repository root.
    std::vector<Finding> kept;
    for (Finding& f : result.findings) {
      if (changed.count(f.file) != 0) kept.push_back(std::move(f));
    }
    result.findings = std::move(kept);
  }

  if (want_stats) std::cerr << format_stats(result);

  // Baselined fingerprints are path-relative: findings are reported with the
  // paths as given, so run from the repository root (the ctest does).
  if (format == "json") {
    std::cout << format_json(result);
  } else if (format == "github") {
    std::cout << format_github(result);
    std::cout << result.findings.size() << " finding(s)\n";
  } else if (format == "sarif") {
    std::cout << format_sarif(result);
  } else {
    std::cout << format_human(result);
  }
  return result.findings.empty() ? 0 : 1;
}
