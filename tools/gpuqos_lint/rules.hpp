// Internal rule entry points; each appends findings for its rule family.
#pragma once

#include <vector>

#include "ast.hpp"
#include "lint.hpp"

namespace gpuqos::lint {

/// R1: save/load/digest field coverage, cross-file (out-of-line bodies).
void rule_state_coverage(const std::vector<ParsedFile>& files,
                         std::vector<Finding>& out);

/// R2: mutable statics reachable from the purity roots' call graph.
void rule_thread_purity(const std::vector<ParsedFile>& files,
                        const std::vector<std::string>& roots,
                        std::vector<Finding>& out);

/// R3: bare assert(), raw new/delete, un-stamped cerr/clog. Token-level.
void rule_check_hygiene(const ParsedFile& file, std::vector<Finding>& out);

/// R4: #pragma once / include-guard presence in headers.
void rule_header_hygiene(const ParsedFile& file, std::vector<Finding>& out);

}  // namespace gpuqos::lint
