// Internal rule entry points; each appends findings for its rule family.
#pragma once

#include <vector>

#include "ast.hpp"
#include "callgraph.hpp"
#include "cfg.hpp"
#include "lint.hpp"
#include "symtab.hpp"

namespace gpuqos::lint {

/// R1: save/load/digest field coverage, cross-file (out-of-line bodies).
void rule_state_coverage(const std::vector<const ParsedFile*>& files,
                         std::vector<Finding>& out);

/// R2: mutable statics reachable from the purity roots' call graph.
void rule_thread_purity(const std::vector<const ParsedFile*>& files,
                        const std::vector<std::string>& roots,
                        std::vector<Finding>& out);

/// R3: bare assert(), raw new/delete, un-stamped cerr/clog. Token-level.
void rule_check_hygiene(const ParsedFile& file, std::vector<Finding>& out);

/// R4: #pragma once / include-guard presence in headers.
void rule_header_hygiene(const ParsedFile& file, std::vector<Finding>& out);

/// R5: determinism hazards (unordered iteration, pointer-keyed ordering,
/// address-as-value, wall-clock/PRNG reads, float accumulation order) in
/// functions reachable from the det roots. /*det:ok: reason*/ escapes.
void rule_det_hazard(const Symtab& st, const CallGraph& cg,
                     const std::vector<std::string>& det_roots,
                     std::vector<Finding>& out);

/// R6: write-ownership and lock discipline for code reachable from the
/// purity roots: shared-class fields need an RAII lock in the writing
/// function (or /*own:worker*/ / /*own:guarded*/), no bare mutex lock(),
/// no code-running static-local initializers.
void rule_concurrency_discipline(const Symtab& st, const CallGraph& cg,
                                 const std::vector<std::string>& purity_roots,
                                 std::vector<Finding>& out);

/// R7: capture safety of deferred event payloads — lambdas passed to the
/// event calls must not capture by reference or capture stack addresses.
/// /*cap:ok: reason*/ escapes.
void rule_event_capture(const Symtab& st,
                        const std::vector<std::string>& event_calls,
                        std::vector<Finding>& out);

/// Per-function CFG cache shared by the flow rules (R9-R11) so each body is
/// built once per run.
class CfgCache {
 public:
  CfgCache();
  ~CfgCache();
  [[nodiscard]] const Cfg& get(const SymFn& fn);

 private:
  std::map<const FunctionDef*, Cfg> by_fn_;
};

/// R8: save/load/digest state-order symmetry — primitive write/read call
/// sequences and field first-touch order must match pairwise.
/// /*order:ok: reason*/ escapes.
void rule_state_order(const Symtab& st, std::vector<Finding>& out);

/// R9: flow-sensitive lock discipline — RAII lock sets over guard scopes,
/// global acquisition-order consistency, no blocking calls under a lock,
/// guarded-field writes outside the held region. /*lock:ok: reason*/.
void rule_lock_discipline(const Symtab& st, CfgCache& cfgs,
                          std::vector<Finding>& out);

/// R10: untrusted-input taint — StateReader/JSON-decoded values (sources
/// scoped by path substring) must pass a dominating bound check before
/// allocation sizes, memcpy lengths, loop bounds, indexing. /*taint:ok*/.
void rule_input_taint(const Symtab& st, CfgCache& cfgs,
                      const std::vector<std::string>& taint_scopes,
                      std::vector<Finding>& out);

/// R11: narrowing static_casts of 64-bit size/cycle expressions without a
/// dominating range check or masking idiom. /*narrow:ok: reason*/.
void rule_narrowing_cast(const Symtab& st, CfgCache& cfgs,
                         std::vector<Finding>& out);

}  // namespace gpuqos::lint
