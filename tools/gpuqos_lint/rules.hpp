// Internal rule entry points; each appends findings for its rule family.
#pragma once

#include <vector>

#include "ast.hpp"
#include "callgraph.hpp"
#include "lint.hpp"
#include "symtab.hpp"

namespace gpuqos::lint {

/// R1: save/load/digest field coverage, cross-file (out-of-line bodies).
void rule_state_coverage(const std::vector<const ParsedFile*>& files,
                         std::vector<Finding>& out);

/// R2: mutable statics reachable from the purity roots' call graph.
void rule_thread_purity(const std::vector<const ParsedFile*>& files,
                        const std::vector<std::string>& roots,
                        std::vector<Finding>& out);

/// R3: bare assert(), raw new/delete, un-stamped cerr/clog. Token-level.
void rule_check_hygiene(const ParsedFile& file, std::vector<Finding>& out);

/// R4: #pragma once / include-guard presence in headers.
void rule_header_hygiene(const ParsedFile& file, std::vector<Finding>& out);

/// R5: determinism hazards (unordered iteration, pointer-keyed ordering,
/// address-as-value, wall-clock/PRNG reads, float accumulation order) in
/// functions reachable from the det roots. /*det:ok: reason*/ escapes.
void rule_det_hazard(const Symtab& st, const CallGraph& cg,
                     const std::vector<std::string>& det_roots,
                     std::vector<Finding>& out);

/// R6: write-ownership and lock discipline for code reachable from the
/// purity roots: shared-class fields need an RAII lock in the writing
/// function (or /*own:worker*/ / /*own:guarded*/), no bare mutex lock(),
/// no code-running static-local initializers.
void rule_concurrency_discipline(const Symtab& st, const CallGraph& cg,
                                 const std::vector<std::string>& purity_roots,
                                 std::vector<Finding>& out);

/// R7: capture safety of deferred event payloads — lambdas passed to the
/// event calls must not capture by reference or capture stack addresses.
/// /*cap:ok: reason*/ escapes.
void rule_event_capture(const Symtab& st,
                        const std::vector<std::string>& event_calls,
                        std::vector<Finding>& out);

}  // namespace gpuqos::lint
