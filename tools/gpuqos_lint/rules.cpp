#include "rules.hpp"

#include <algorithm>
#include <deque>
#include <map>

namespace gpuqos::lint {
namespace {

Finding make(const char* rule, const std::string& file, int line,
             std::string symbol, std::string message) {
  Finding f;
  f.rule = rule;
  f.file = file;
  f.line = line;
  f.symbol = std::move(symbol);
  f.message = std::move(message);
  return f;
}

}  // namespace

// ---- R1: state-coverage ---------------------------------------------------

void rule_state_coverage(const std::vector<const ParsedFile*>& files,
                         std::vector<Finding>& out) {
  static const char* kTriple[] = {"save", "load", "digest"};

  // Merge out-of-line member definitions into each class's method table.
  // Classes are matched by unqualified name: the project keeps one class per
  // name (everything lives in namespace gpuqos).
  struct ClassRef {
    const ClassDecl* decl;
    const ParsedFile* file;
  };
  std::map<std::string, ClassRef> classes;
  for (const ParsedFile* pf : files) {
    for (const ClassDecl& c : pf->classes) {
      std::string simple = c.name.substr(c.name.rfind(':') + 1);
      classes.insert({simple, ClassRef{&c, pf}});
    }
  }
  std::map<std::string, std::map<std::string, std::set<std::string>>> bodies;
  for (const ParsedFile* pf : files) {
    for (const FunctionDef& fn : pf->functions) {
      if (fn.qual_class.empty()) continue;
      for (const char* m : kTriple) {
        if (fn.name == m) {
          bodies[fn.qual_class][fn.name].insert(fn.body_idents.begin(),
                                                fn.body_idents.end());
        }
      }
    }
  }

  for (const auto& [name, ref] : classes) {
    const ClassDecl& c = *ref.decl;
    bool has_any = false;
    for (const char* m : kTriple) {
      auto it = c.methods.find(m);
      if (it != c.methods.end() && it->second.declared) has_any = true;
    }
    if (!has_any) continue;

    for (const char* m : kTriple) {
      auto it = c.methods.find(m);
      if (it == c.methods.end() || !it->second.declared) continue;
      std::set<std::string> body = it->second.body_idents;
      auto bc = bodies.find(name);
      if (bc != bodies.end()) {
        auto bm = bc->second.find(m);
        if (bm != bc->second.end()) {
          body.insert(bm->second.begin(), bm->second.end());
        }
      }
      // Declared but never defined in the scanned set (pure virtual, or the
      // definition lives outside the input): nothing to check against.
      if (body.empty()) continue;

      const bool is_digest = std::string(m) == "digest";
      for (const FieldDecl& f : c.fields) {
        if (f.is_ref || f.is_ptr) continue;  // non-owning wiring
        if (is_digest ? f.skip_digest : f.skip_ckpt) continue;
        if (body.count(f.name) != 0) continue;
        out.push_back(make(
            kRuleStateCoverage, ref.file->path, f.line, name + "::" + f.name,
            "field '" + f.name + "' of '" + name +
                "' is not referenced in " + m +
                "() — checkpoint/digest coverage drifts silently; cover the "
                "field or annotate it " +
                (is_digest ? "/*digest:skip*/ (derived or instrumentation "
                             "state, with a reason)"
                           : "/*ckpt:skip*/ (transient state, with a "
                             "reason)")));
      }
    }
  }
}

// ---- R2: thread-purity ----------------------------------------------------

void rule_thread_purity(const std::vector<const ParsedFile*>& files,
                        const std::vector<std::string>& roots,
                        std::vector<Finding>& out) {
  struct FnRef {
    const FunctionDef* fn;
    const ParsedFile* file;
  };
  std::vector<FnRef> fns;
  std::multimap<std::string, std::size_t> by_name;
  for (const ParsedFile* pf : files) {
    for (const FunctionDef& fn : pf->functions) {
      by_name.insert({fn.name, fns.size()});
      fns.push_back(FnRef{&fn, pf});
    }
  }

  // Identifier-based reachability from the purity roots: body mentions a
  // name -> edge to every function of that name. Over-approximate by design
  // (virtual dispatch, SmallFn callbacks, and recorded #define bodies all
  // collapse to name references). With no root in the scanned set, every
  // function counts as reachable.
  std::vector<bool> reachable(fns.size(), false);
  std::deque<std::size_t> work;
  for (const std::string& root : roots) {
    auto [lo, hi] = by_name.equal_range(root);
    for (auto it = lo; it != hi; ++it) {
      if (!reachable[it->second]) {
        reachable[it->second] = true;
        work.push_back(it->second);
      }
    }
  }
  const bool have_roots = !work.empty();
  if (!have_roots) reachable.assign(fns.size(), true);
  while (!work.empty()) {
    const std::size_t idx = work.front();
    work.pop_front();
    for (const std::string& ident : fns[idx].fn->body_idents) {
      auto [lo, hi] = by_name.equal_range(ident);
      for (auto it = lo; it != hi; ++it) {
        if (!reachable[it->second]) {
          reachable[it->second] = true;
          work.push_back(it->second);
        }
      }
    }
  }
  auto referenced_by_reachable = [&](const std::string& name) {
    if (!have_roots) return true;
    for (std::size_t k = 0; k < fns.size(); ++k) {
      if (reachable[k] && fns[k].fn->body_idents.count(name) != 0) return true;
    }
    return false;
  };

  const std::string kWhy =
      " — shared mutable state breaks run_many() pooled-sweep determinism "
      "(serial-vs-pooled digest equality); make it const, move it into the "
      "simulation, or allowlist it with NOLINT-gpuqos(thread-purity) and a "
      "reason";

  for (std::size_t k = 0; k < fns.size(); ++k) {
    if (!reachable[k]) continue;
    for (const LocalStatic& v : fns[k].fn->local_statics) {
      if (v.is_const) continue;
      std::string kind = v.is_thread_local ? "thread_local" : "static";
      if (v.is_atomic) kind += " atomic";
      if (v.is_mutex) kind += " mutex";
      out.push_back(make(kRuleThreadPurity, fns[k].file->path, v.line, v.name,
                         "mutable function-local " + kind + " '" + v.name +
                             "' in '" + fns[k].fn->name + "()'" + kWhy));
    }
  }
  for (const ParsedFile* pf : files) {
    for (const NamespaceVar& v : pf->namespace_vars) {
      if (v.is_const) continue;
      if (!referenced_by_reachable(v.name)) continue;
      std::string kind = v.is_atomic ? "atomic variable" : "variable";
      if (v.is_mutex) kind = "mutex";
      out.push_back(make(kRuleThreadPurity, pf->path, v.line, v.name,
                         "namespace-scope mutable " + kind + " '" + v.name +
                             "'" + kWhy));
    }
    for (const ClassDecl& c : pf->classes) {
      for (const FieldDecl& f : c.static_members) {
        if (f.is_const || f.is_atomic) continue;
        if (!referenced_by_reachable(f.name)) continue;
        out.push_back(make(kRuleThreadPurity, pf->path, f.line,
                           c.name + "::" + f.name,
                           "non-atomic mutable static member '" + c.name +
                               "::" + f.name + "'" + kWhy));
      }
    }
  }
}

// ---- R3: check-hygiene ----------------------------------------------------

void rule_check_hygiene(const ParsedFile& file, std::vector<Finding>& out) {
  const std::vector<Token>& t = file.ts.tokens;
  bool in_directive = false;
  for (std::size_t k = 0; k < t.size(); ++k) {
    if (t[k].starts_line) in_directive = t[k].kind == Tok::Hash;
    if (in_directive) continue;  // `#include <new>` is not an allocation
    if (t[k].kind != Tok::Ident) continue;
    const std::string& s = t[k].text;
    const Token* next = k + 1 < t.size() ? &t[k + 1] : nullptr;
    const Token* prev = k > 0 ? &t[k - 1] : nullptr;
    auto prev_is = [&](const char* p) {
      return prev != nullptr && prev->text == p;
    };
    if (s == "assert" && next != nullptr && next->text == "(" &&
        !prev_is("#") && !prev_is(".") && !prev_is("::") && !prev_is("->")) {
      out.push_back(make(kRuleCheckHygiene, file.path, t[k].line, "",
                         "bare assert() — use GPUQOS_CHECK(cond, msg): it "
                         "stamps the simulation cycle and module and routes "
                         "through the log sink before aborting"));
    } else if ((s == "cerr" || s == "clog") && !prev_is(".") &&
               !prev_is("->")) {
      out.push_back(make(kRuleCheckHygiene, file.path, t[k].line, "",
                         "un-stamped std::" + s +
                             " logging — use GPUQOS_LOG (cycle-stamped, "
                             "pluggable sink) so sweeps and CI capture it"));
    } else if (s == "new" && !prev_is("operator")) {
      // Placement new constructs into existing storage (no allocation) and
      // is allowed; `new (args...) T` is recognized by the '(' that follows.
      if (next != nullptr && next->text == "(") continue;
      out.push_back(make(kRuleCheckHygiene, file.path, t[k].line, "",
                         "raw new outside an annotated arena — use "
                         "std::make_unique/containers, or annotate the arena "
                         "with NOLINT-gpuqos(check-hygiene) and a reason"));
    } else if (s == "delete" && !prev_is("=") && !prev_is("operator")) {
      out.push_back(make(kRuleCheckHygiene, file.path, t[k].line, "",
                         "raw delete outside an annotated arena — owning "
                         "state must use RAII, or annotate the arena with "
                         "NOLINT-gpuqos(check-hygiene) and a reason"));
    }
  }
}

// ---- R4: header-hygiene ---------------------------------------------------

void rule_header_hygiene(const ParsedFile& file, std::vector<Finding>& out) {
  if (file.path.size() < 4 ||
      file.path.compare(file.path.size() - 4, 4, ".hpp") != 0) {
    return;
  }
  const std::vector<Token>& t = file.ts.tokens;
  bool guarded = false;
  std::string ifndef_sym;
  std::size_t k = 0;
  while (k < t.size() && t[k].kind != Tok::Eof) {
    if (t[k].kind != Tok::Hash) break;  // code before any guard
    // Walk this directive's tokens.
    std::size_t d = k + 1;
    std::vector<const Token*> dir;
    while (d < t.size() && !t[d].starts_line && t[d].kind != Tok::Eof) {
      dir.push_back(&t[d]);
      ++d;
    }
    if (dir.size() >= 2 && dir[0]->text == "pragma" &&
        dir[1]->text == "once") {
      guarded = true;
      break;
    }
    if (!dir.empty() && dir[0]->text == "ifndef" && dir.size() >= 2) {
      ifndef_sym = dir[1]->text;
    } else if (!dir.empty() && dir[0]->text == "define" && dir.size() >= 2 &&
               !ifndef_sym.empty() && dir[1]->text == ifndef_sym) {
      guarded = true;
      break;
    }
    k = d;
  }
  if (!guarded) {
    out.push_back(make(kRuleHeaderHygiene, file.path, 1, "",
                       "header has no #pragma once (or include guard) before "
                       "its first declaration — double inclusion breaks the "
                       "header_compile self-containment build"));
  }
}

}  // namespace gpuqos::lint
