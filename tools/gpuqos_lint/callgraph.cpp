#include "callgraph.hpp"

#include <deque>
#include <set>

#include "dataflow.hpp"

namespace gpuqos::lint {
namespace {

std::string simple_name(const std::string& name) {
  return name.substr(name.rfind(':') + 1);
}

void add_by_name(const Symtab& st, const std::string& name,
                 std::set<std::size_t>& out) {
  auto [lo, hi] = st.by_name.equal_range(name);
  for (auto it = lo; it != hi; ++it) out.insert(it->second);
}

void add_by_qualified(const Symtab& st, const std::string& qualified,
                      std::set<std::size_t>& out) {
  auto [lo, hi] = st.by_qualified.equal_range(qualified);
  for (auto it = lo; it != hi; ++it) out.insert(it->second);
}

/// Add edges for a resolved-class call: `C::name` if C defines it, falling
/// back to all functions named `name` when it does not (base class, macro,
/// or out-of-set definition).
void add_class_call(const Symtab& st, const std::string& cls,
                    const std::string& name, std::set<std::size_t>& out) {
  const std::string qualified = cls + "::" + name;
  if (st.by_qualified.count(qualified) != 0) {
    add_by_qualified(st, qualified, out);
  } else {
    add_by_name(st, name, out);
  }
}

}  // namespace

CallGraph build_callgraph(const Symtab& st) {
  CallGraph cg;
  cg.edges.resize(st.fns.size());
  for (std::size_t idx = 0; idx < st.fns.size(); ++idx) {
    const SymFn& fn = st.fns[idx];
    std::set<std::size_t> callees;
    if (fn.def->body_end <= fn.def->body_begin) {
      // No token range (macro pseudo-function or bodyless declaration):
      // every mentioned ident that names a function becomes an edge.
      for (const std::string& ident : fn.def->body_idents) {
        add_by_name(st, ident, callees);
      }
      cg.edges[idx].assign(callees.begin(), callees.end());
      continue;
    }
    const std::vector<Token>& t = fn.file->ts.tokens;
    const std::string enclosing = simple_name(fn.def->qual_class);
    const std::map<std::string, LocalVar> locals = scan_locals(fn);
    for (std::size_t k = fn.def->body_begin + 1; k + 1 < fn.def->body_end;
         ++k) {
      if (t[k].kind != Tok::Ident) continue;
      const std::string& name = t[k].text;
      const bool is_call = t[k + 1].kind == Tok::Punct && t[k + 1].text == "(";
      if (!is_call) {
        // Bare mention: callback registration, function pointer, macro arg.
        add_by_name(st, name, callees);
        continue;
      }
      const Token* prev = k > 0 ? &t[k - 1] : nullptr;
      if (prev != nullptr && prev->kind == Tok::Punct && prev->text == "::" &&
          k >= 2 && t[k - 2].kind == Tok::Ident &&
          st.find_class(t[k - 2].text) != nullptr) {
        add_class_call(st, t[k - 2].text, name, callees);  // Cls::f(...)
        continue;
      }
      if (prev != nullptr && prev->kind == Tok::Punct &&
          (prev->text == "." || prev->text == "->")) {
        std::string recv_class;
        if (k >= 2 && t[k - 2].kind == Tok::Ident) {
          if (t[k - 2].text == "this") {
            recv_class = enclosing;
          } else {
            recv_class = Symtab::type_class(
                resolve_type(fn, locals, st, t[k - 2].text));
          }
        }
        if (!recv_class.empty() && st.find_class(recv_class) != nullptr) {
          add_class_call(st, recv_class, name, callees);
        } else {
          add_by_name(st, name, callees);  // unresolved receiver
        }
        continue;
      }
      // Unqualified call: the enclosing class's method if it has one, plus
      // free functions of that name (ADL / plain calls).
      bool bound = false;
      if (!enclosing.empty()) {
        const std::string qualified = enclosing + "::" + name;
        if (st.by_qualified.count(qualified) != 0) {
          add_by_qualified(st, qualified, callees);
          bound = true;
        }
      }
      if (bound) {
        auto [lo, hi] = st.by_name.equal_range(name);
        for (auto it = lo; it != hi; ++it) {
          if (st.fns[it->second].def->qual_class.empty()) {
            callees.insert(it->second);
          }
        }
      } else {
        add_by_name(st, name, callees);
      }
    }
    cg.edges[idx].assign(callees.begin(), callees.end());
  }
  return cg;
}

std::vector<bool> CallGraph::reachable_from(
    const Symtab& st, const std::vector<std::string>& roots) const {
  std::vector<bool> reachable(st.fns.size(), false);
  std::deque<std::size_t> work;
  for (const std::string& root : roots) {
    auto [lo, hi] = st.by_name.equal_range(root);
    for (auto it = lo; it != hi; ++it) {
      if (!reachable[it->second]) {
        reachable[it->second] = true;
        work.push_back(it->second);
      }
    }
  }
  if (work.empty()) {
    reachable.assign(st.fns.size(), true);
    return reachable;
  }
  while (!work.empty()) {
    const std::size_t idx = work.front();
    work.pop_front();
    for (std::size_t callee : edges[idx]) {
      if (!reachable[callee]) {
        reachable[callee] = true;
        work.push_back(callee);
      }
    }
  }
  return reachable;
}

}  // namespace gpuqos::lint
