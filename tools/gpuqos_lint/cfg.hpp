// Intra-procedural control-flow graph over a function body's token range
// (docs/ANALYSIS.md, "gpuqos-lint v3").
//
// The builder walks the flat token stream between FunctionDef::body_begin and
// body_end and recovers basic blocks at statement granularity: if/else,
// while/for/do, switch/case, break/continue, return/throw, and nested brace
// scopes. It is the substrate the flow-sensitive rules (R9-R11) run their
// abstract interpretation on; precision follows the project house style and
// degrades gracefully elsewhere:
//   * a statement is a token range [begin, end) inside one basic block;
//   * every statement carries the id of its enclosing lexical scope, and the
//     scope tree is exposed so RAII lifetimes (lock guards) can be scoped
//     without explicit release events — a guard declared in scope S is dead
//     at any statement whose scope is not S or a descendant of S;
//   * conditional blocks expose their condition token range and order their
//     successors [true-edge, false-edge] so branch-sensitive transfer
//     functions (taint sanitization by a dominating bound check) can refine
//     per edge;
//   * brace groups inside expressions (lambda bodies, init-lists) are kept
//     opaque: their tokens belong to the enclosing statement and contribute
//     no blocks. Lambdas execute on a different frame; rules that care scan
//     them separately.
#pragma once

#include <cstddef>
#include <vector>

#include "token.hpp"

namespace gpuqos::lint {

struct CfgStmt {
  std::size_t begin = 0;  // token range [begin, end) in the owning stream
  std::size_t end = 0;
  int scope = 0;  // enclosing lexical scope id (index into Cfg::scope_parent)
};

struct CfgBlock {
  std::vector<CfgStmt> stmts;
  /// Token range of the branch condition when this block ends in one
  /// (if/while/for/do/switch heads). Empty range otherwise.
  std::size_t cond_begin = 0;
  std::size_t cond_end = 0;
  bool has_cond = false;
  /// This conditional is a while/for/do loop head: its condition bounds the
  /// trip count (an input-taint sink, unlike a plain if).
  bool loop_head = false;
  /// Successor block ids. For has_cond blocks succ[0] is the true edge and
  /// succ[1] the false edge; switch heads list one edge per label plus the
  /// fall-past edge last.
  std::vector<std::size_t> succ;
};

struct Cfg {
  std::vector<CfgBlock> blocks;
  /// Lexical scope tree: scope_parent[s] is the enclosing scope, -1 for the
  /// function body scope (id 0).
  std::vector<int> scope_parent;
  std::size_t entry = 0;
  std::size_t exit = 0;  // unified exit: returns, throws, and fall-off-end

  /// Whether `outer` encloses (or equals) `inner` in the scope tree.
  [[nodiscard]] bool scope_encloses(int outer, int inner) const {
    for (int s = inner; s >= 0; s = scope_parent[static_cast<std::size_t>(s)]) {
      if (s == outer) return true;
    }
    return false;
  }
};

/// Build the CFG for the body brace group at [body_begin, body_end) ('{'
/// included, one past '}' excluded). Returns an entry-and-exit-only graph for
/// an empty or missing body.
[[nodiscard]] Cfg build_cfg(const std::vector<Token>& tokens,
                            std::size_t body_begin, std::size_t body_end);

}  // namespace gpuqos::lint
