// gpuqos-lint public API (docs/ANALYSIS.md, "gpuqos-lint").
//
// A self-contained static analyzer for the project contracts the test suite
// can only probe dynamically:
//   state-coverage  (R1)  every non-transient field of a class that declares
//                         save()/load()/digest() is referenced in all three
//                         (/*ckpt:skip*/ exempts save+load, /*digest:skip*/
//                         exempts digest);
//   thread-purity   (R2)  no mutable namespace-scope variables, function-
//                         local statics, or non-atomic static data members
//                         reachable from the run_many()/run_hetero call
//                         graph — the structural guarantee behind pooled-
//                         sweep determinism;
//   check-hygiene   (R3)  no bare assert(), no raw new/delete outside
//                         annotated arenas, no un-stamped std::cerr/clog
//                         logging (use GPUQOS_CHECK / GPUQOS_LOG);
//   header-hygiene  (R4)  every header opens with #pragma once or an include
//                         guard (self-containment is enforced by the
//                         header_compile ctest target);
//   det-hazard      (R5)  no unordered-container iteration, pointer-keyed
//                         ordering, address-as-value, wall-clock/PRNG reads,
//                         or float accumulation-order dependence in code
//                         reachable from tick()/digest()/save()/load()
//                         (/*det:ok: reason*/ escapes a deliberate use);
//   concurrency-    (R6)  fields of shared classes (mutex-owning or
//     discipline          /*own:shared*/) written from pool-worker-reachable
//                         code need an RAII lock in the same function, no
//                         bare mutex lock()/unlock(), no code-running
//                         static-local initializers (/*own:worker*/,
//                         /*own:guarded*/, *_locked naming escape);
//   event-capture   (R7)  lambdas posted to the engine's deferred event
//                         calls must not capture by reference or capture
//                         stack addresses (/*cap:ok: reason*/ escapes);
//   state-order     (R8)  save()/load()/digest() must walk state in the
//                         *same order*, not just cover it: primitive
//                         write/read sequences and field first-touch order
//                         are compared pairwise (/*order:ok: reason*/);
//   lock-discipline (R9)  flow-sensitive lock sets over RAII guard scopes:
//                         inconsistent mutex acquisition order, locks held
//                         across blocking calls (socket IO, future/condvar
//                         waits), guarded-field writes with an empty lock
//                         set in locking functions (/*lock:ok: reason*/);
//   input-taint     (R10) untrusted bytes (StateReader primitives, decoded
//                         JSON accessors — sources scoped to the service
//                         layer) must pass a dominating bound check before
//                         reaching resize/reserve/new[] sizes, memcpy
//                         lengths, loop bounds, or indexing (/*taint:ok*/);
//   narrowing-cast  (R11) static_cast of 64-bit size/cycle expressions to a
//                         narrower type with no dominating range check and
//                         no masking/shift (/*narrow:ok: reason*/).
//
// R5-R7 run on a cross-TU symbol table + call graph (symtab.hpp,
// callgraph.hpp): receivers with a known declared type bind to that class's
// methods, everything else falls back to name matching. R9-R11 additionally
// run a forward abstract interpretation over per-function CFGs (cfg.hpp,
// absint.hpp) so facts are path-joined, not just body-scanned.
//
// Suppressions: `// NOLINT-gpuqos(rule): reason` on the finding's line or
// the line above; `// NOLINT-gpuqos-file(rule): reason` anywhere in a file.
// Findings can also be parked in a committed baseline file (one fingerprint
// per line) and burned down over time.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace gpuqos::lint {

struct ParsedFile;

inline constexpr const char* kRuleStateCoverage = "state-coverage";
inline constexpr const char* kRuleThreadPurity = "thread-purity";
inline constexpr const char* kRuleCheckHygiene = "check-hygiene";
inline constexpr const char* kRuleHeaderHygiene = "header-hygiene";
inline constexpr const char* kRuleDetHazard = "det-hazard";
inline constexpr const char* kRuleConcurrency = "concurrency-discipline";
inline constexpr const char* kRuleEventCapture = "event-capture";
inline constexpr const char* kRuleStateOrder = "state-order";
inline constexpr const char* kRuleLockDiscipline = "lock-discipline";
inline constexpr const char* kRuleInputTaint = "input-taint";
inline constexpr const char* kRuleNarrowingCast = "narrowing-cast";

/// All rule names, in reporting order.
[[nodiscard]] const std::vector<std::string>& all_rules();

struct Finding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string symbol;   // "Class::field", variable name; empty for token hits
  std::string message;
};

/// Stable identity for baseline matching: rule|file|symbol (or the message
/// when the finding has no symbol). Deliberately line-number-free so
/// unrelated edits don't invalidate the baseline.
[[nodiscard]] std::string fingerprint(const Finding& f);

struct SourceFile {
  std::string path;     // as reported in findings
  std::string content;
};

struct LintOptions {
  std::set<std::string> rules;  // empty = run all
  /// Roots of the thread-purity/concurrency reachability walk. When none of
  /// them is defined in the scanned set, every function is treated as
  /// reachable (conservative fallback, also what lets test snippets lint).
  std::vector<std::string> purity_roots = {"run_many", "run_hetero"};
  /// Roots of the determinism-hazard (R5) reachability walk.
  std::vector<std::string> det_roots = {"tick", "digest", "save", "load"};
  /// Calls whose lambda arguments are deferred event payloads (R7).
  std::vector<std::string> event_calls = {"schedule", "add_ticker"};
  /// Path substrings whose files carry untrusted-input taint *sources* (R10):
  /// StateReader primitives and decoded-JSON accessors only taint in files
  /// whose path contains one of these. Empty = every file.
  std::vector<std::string> taint_scopes = {"svc"};
  /// Parse worker threads; 0 = one per hardware thread (capped at 8).
  unsigned threads = 0;
};

struct RuleStat {
  std::string rule;
  double millis = 0;
  int findings = 0;  // pre-NOLINT/baseline
};

struct LintResult {
  std::vector<Finding> findings;  // post-NOLINT, sorted by file/line/rule
  int nolint_suppressed = 0;
  int baseline_filtered = 0;  // filled in by apply_baseline()
  // --stats instrumentation:
  std::vector<RuleStat> rule_stats;  // per rule family, reporting order
  double parse_millis = 0;
  int files_parsed = 0;  // parse-cache misses
  int cache_hits = 0;
};

/// A file plus its cache key. `stamp` is any value that changes when the
/// content changes (the CLI uses mtime ^ size); 0 disables caching for the
/// file.
struct FileInput {
  std::string path;
  std::string content;
  std::uint64_t stamp = 0;
};

/// Thread-safe (path, stamp)-keyed parse cache for embedders that lint
/// repeatedly (watch modes, tests): only files whose stamp changed are
/// re-parsed. Entries are shared_ptrs, so results stay valid while a run
/// still holds them even if the cache evicts/replaces concurrently.
class ParseCache {
 public:
  ParseCache();
  ~ParseCache();
  ParseCache(const ParseCache&) = delete;
  ParseCache& operator=(const ParseCache&) = delete;

  /// nullptr on miss (stamp 0 never hits).
  [[nodiscard]] std::shared_ptr<const ParsedFile> lookup(
      const std::string& path, std::uint64_t stamp) const;
  void store(const std::string& path, std::uint64_t stamp,
             std::shared_ptr<const ParsedFile> pf);
  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    std::uint64_t stamp = 0;
    std::shared_ptr<const ParsedFile> pf;
  };
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

/// Lex + parse every file, run the selected rules, apply NOLINT
/// suppressions. Never touches the filesystem.
[[nodiscard]] LintResult run_lint(const std::vector<SourceFile>& files,
                                  const LintOptions& opts = {});

/// run_lint with a parse cache: files whose (path, stamp) is cached skip
/// lexing+parsing. Parsing fans out over opts.threads workers.
[[nodiscard]] LintResult run_lint_cached(const std::vector<FileInput>& files,
                                         ParseCache& cache,
                                         const LintOptions& opts = {});

/// Parse a baseline file's contents into fingerprints ('#' comments and
/// blank lines ignored).
[[nodiscard]] std::set<std::string> parse_baseline(const std::string& text);

/// Drop findings whose fingerprint is in `baseline`, counting them in
/// result.baseline_filtered.
void apply_baseline(LintResult& result, const std::set<std::string>& baseline);

/// Serialize findings as baseline fingerprints (sorted, with a header).
[[nodiscard]] std::string to_baseline(const LintResult& result);

[[nodiscard]] std::string format_human(const LintResult& result);
[[nodiscard]] std::string format_json(const LintResult& result);
/// GitHub workflow annotations (::error file=...,line=...::message).
[[nodiscard]] std::string format_github(const LintResult& result);
/// SARIF 2.1.0 (one run, one result per finding, stable partialFingerprints
/// reusing the baseline fingerprint) for code-scanning upload.
[[nodiscard]] std::string format_sarif(const LintResult& result);
/// Per-rule timing table (--stats; written to stderr by the CLI so piped
/// JSON stays parseable).
[[nodiscard]] std::string format_stats(const LintResult& result);

}  // namespace gpuqos::lint
