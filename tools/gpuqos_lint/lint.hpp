// gpuqos-lint public API (docs/ANALYSIS.md, "gpuqos-lint").
//
// A self-contained static analyzer for the project contracts the test suite
// can only probe dynamically:
//   state-coverage  (R1)  every non-transient field of a class that declares
//                         save()/load()/digest() is referenced in all three
//                         (/*ckpt:skip*/ exempts save+load, /*digest:skip*/
//                         exempts digest);
//   thread-purity   (R2)  no mutable namespace-scope variables, function-
//                         local statics, or non-atomic static data members
//                         reachable from the run_many()/run_hetero call
//                         graph — the structural guarantee behind pooled-
//                         sweep determinism;
//   check-hygiene   (R3)  no bare assert(), no raw new/delete outside
//                         annotated arenas, no un-stamped std::cerr/clog
//                         logging (use GPUQOS_CHECK / GPUQOS_LOG);
//   header-hygiene  (R4)  every header opens with #pragma once or an include
//                         guard (self-containment is enforced by the
//                         header_compile ctest target).
//
// Suppressions: `// NOLINT-gpuqos(rule): reason` on the finding's line or
// the line above; `// NOLINT-gpuqos-file(rule): reason` anywhere in a file.
// Findings can also be parked in a committed baseline file (one fingerprint
// per line) and burned down over time.
#pragma once

#include <set>
#include <string>
#include <vector>

namespace gpuqos::lint {

inline constexpr const char* kRuleStateCoverage = "state-coverage";
inline constexpr const char* kRuleThreadPurity = "thread-purity";
inline constexpr const char* kRuleCheckHygiene = "check-hygiene";
inline constexpr const char* kRuleHeaderHygiene = "header-hygiene";

/// All rule names, in reporting order.
[[nodiscard]] const std::vector<std::string>& all_rules();

struct Finding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string symbol;   // "Class::field", variable name; empty for token hits
  std::string message;
};

/// Stable identity for baseline matching: rule|file|symbol (or the message
/// when the finding has no symbol). Deliberately line-number-free so
/// unrelated edits don't invalidate the baseline.
[[nodiscard]] std::string fingerprint(const Finding& f);

struct SourceFile {
  std::string path;     // as reported in findings
  std::string content;
};

struct LintOptions {
  std::set<std::string> rules;  // empty = run all
  /// Roots of the thread-purity reachability walk. When none of them is
  /// defined in the scanned set, every function is treated as reachable
  /// (conservative fallback, also what lets small test snippets lint).
  std::vector<std::string> purity_roots = {"run_many", "run_hetero"};
};

struct LintResult {
  std::vector<Finding> findings;  // post-NOLINT, sorted by file/line/rule
  int nolint_suppressed = 0;
  int baseline_filtered = 0;  // filled in by apply_baseline()
};

/// Lex + parse every file, run the selected rules, apply NOLINT
/// suppressions. Never touches the filesystem.
[[nodiscard]] LintResult run_lint(const std::vector<SourceFile>& files,
                                  const LintOptions& opts = {});

/// Parse a baseline file's contents into fingerprints ('#' comments and
/// blank lines ignored).
[[nodiscard]] std::set<std::string> parse_baseline(const std::string& text);

/// Drop findings whose fingerprint is in `baseline`, counting them in
/// result.baseline_filtered.
void apply_baseline(LintResult& result, const std::set<std::string>& baseline);

/// Serialize findings as baseline fingerprints (sorted, with a header).
[[nodiscard]] std::string to_baseline(const LintResult& result);

[[nodiscard]] std::string format_human(const LintResult& result);
[[nodiscard]] std::string format_json(const LintResult& result);
/// GitHub workflow annotations (::error file=...,line=...::message).
[[nodiscard]] std::string format_github(const LintResult& result);

}  // namespace gpuqos::lint
