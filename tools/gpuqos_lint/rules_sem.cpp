// Semantic rule families R5/R6/R7: determinism hazards, concurrency
// discipline, and event-capture safety, all driven by the cross-TU symbol
// table + call graph instead of per-file token scans.
#include <algorithm>
#include <set>

#include "dataflow.hpp"
#include "rules.hpp"

namespace gpuqos::lint {
namespace {

Finding make(const char* rule, const std::string& file, int line,
             std::string symbol, std::string message) {
  Finding f;
  f.rule = rule;
  f.file = file;
  f.line = line;
  f.symbol = std::move(symbol);
  f.message = std::move(message);
  return f;
}

bool is_one_of(const std::string& s, std::initializer_list<const char*> set) {
  return std::any_of(set.begin(), set.end(),
                     [&](const char* v) { return s == v; });
}

std::string simple_name(const std::string& name) {
  return name.substr(name.rfind(':') + 1);
}

/// Matching close for the punct group opened at t[open] ('(' or '[' or '{').
std::size_t match_close(const std::vector<Token>& t, std::size_t open,
                        const char* o, const char* c, std::size_t limit) {
  int depth = 0;
  for (std::size_t k = open; k < limit; ++k) {
    if (t[k].kind != Tok::Punct) continue;
    if (t[k].text == o) ++depth;
    if (t[k].text == c && --depth == 0) return k;
  }
  return limit;
}

/// Resolve the type of a member chain starting at token `k` (`core`,
/// `this->pending_`, `gmi_.rob`): follow `.`/`->` links through known
/// classes. Returns the final type string ("" when unresolved) and sets
/// `chain` to the dotted source text.
std::string resolve_chain(const SymFn& fn,
                          const std::map<std::string, LocalVar>& locals,
                          const Symtab& st, const std::vector<Token>& t,
                          std::size_t k, std::size_t limit,
                          std::string& chain) {
  if (k >= limit || t[k].kind != Tok::Ident) return "";
  std::string type;
  chain = t[k].text;
  if (t[k].text == "this") {
    type = simple_name(fn.def->qual_class);
  } else {
    type = resolve_type(fn, locals, st, t[k].text);
  }
  ++k;
  while (k + 1 < limit && t[k].kind == Tok::Punct &&
         (t[k].text == "." || t[k].text == "->") &&
         t[k + 1].kind == Tok::Ident) {
    const SymClass* cls = st.find_class(Symtab::type_class(type));
    if (cls == nullptr && chain == "this") {
      cls = st.find_class(simple_name(fn.def->qual_class));
    }
    if (cls == nullptr) return "";
    auto fit = cls->fields.find(t[k + 1].text);
    if (fit == cls->fields.end()) return "";
    type = fit->second->type;
    chain += (t[k].text == "." ? "." : "->") + t[k + 1].text;
    k += 2;
  }
  return type;
}

}  // namespace

// ---- R5: det-hazard -------------------------------------------------------

void rule_det_hazard(const Symtab& st, const CallGraph& cg,
                     const std::vector<std::string>& det_roots,
                     std::vector<Finding>& out) {
  const std::vector<bool> reach = cg.reachable_from(st, det_roots);

  const std::string kEscape =
      "; if the use is order-independent or host-only, annotate the line "
      "/*det:ok: reason*/";

  for (std::size_t idx = 0; idx < st.fns.size(); ++idx) {
    const SymFn& fn = st.fns[idx];
    if (fn.def->body_end <= fn.def->body_begin) continue;
    const ParsedFile& pf = *fn.file;
    const std::vector<Token>& t = pf.ts.tokens;
    const std::map<std::string, LocalVar> locals = scan_locals(fn);
    const std::size_t begin = fn.def->body_begin;
    const std::size_t end = fn.def->body_end;
    const bool det = reach[idx];

    auto emit = [&](int line, const std::string& kind,
                    const std::string& detail, const std::string& msg) {
      if (line_annotated(pf, line, "det:ok")) return;
      out.push_back(make(kRuleDetHazard, pf.path, line,
                         fn.qualified + "#" + kind +
                             (detail.empty() ? "" : ":" + detail),
                         msg + kEscape));
    };

    // Pointer-keyed ordered containers leak allocation addresses into
    // iteration order in ANY function — flagged regardless of reachability
    // (decoder/report paths must also be stable run-to-run).
    for (const auto& [name, var] : locals) {
      if (var.is_param || !type_is_ptr_keyed_ordered(var.type)) continue;
      emit(var.line, "ptr-key", name,
           "'" + name + "' is an ordered container keyed by a raw pointer — "
           "its iteration order is the allocator's and differs run to run "
           "under ASLR; key by a stable id or index instead");
    }

    if (!det) continue;  // the remaining checks apply on det paths only

    for (std::size_t k = begin + 1; k + 1 < end; ++k) {
      if (t[k].kind != Tok::Ident) continue;
      const std::string& s = t[k].text;
      const Token& next = t[k + 1];
      const Token* prev = k > 0 ? &t[k - 1] : nullptr;
      const bool member_access =
          prev != nullptr && prev->kind == Tok::Punct &&
          (prev->text == "." || prev->text == "->");
      const bool call = next.kind == Tok::Punct && next.text == "(";

      // Wall-clock / PRNG reads: simulated state must never depend on host
      // time or the C runtime's hidden PRNG stream.
      if (call && !member_access &&
          is_one_of(s, {"rand", "srand", "time", "clock", "gettimeofday",
                        "localtime", "gmtime", "mktime", "random"})) {
        emit(t[k].line, "wall-clock", s,
             "call to '" + s + "()' on a tick/digest/save/load path — "
             "simulated state must not depend on host time or the libc "
             "PRNG; use the seeded simulation Rng / the engine cycle");
      } else if (is_one_of(s, {"steady_clock", "system_clock",
                               "high_resolution_clock"})) {
        emit(t[k].line, "wall-clock", s,
             "std::chrono " + s + " read on a tick/digest/save/load path — "
             "host time must not feed simulated state; use the engine "
             "cycle, or keep the reading strictly host-side");
      } else if (call && is_one_of(s, {"__rdtsc", "__builtin_ia32_rdtsc"})) {
        emit(t[k].line, "wall-clock", s,
             "TSC read on a tick/digest/save/load path — host cycle "
             "counters must not feed simulated state");
      }

      // Object addresses used as values: hashes/keys over pointers differ
      // run to run.
      if (s == "reinterpret_cast" && next.kind == Tok::Punct &&
          next.text == "<") {
        for (std::size_t j = k + 2; j < end && j < k + 12; ++j) {
          if (t[j].kind == Tok::Punct && t[j].text == ">") break;
          if (t[j].kind == Tok::Ident &&
              (t[j].text == "uintptr_t" || t[j].text == "intptr_t")) {
            emit(t[k].line, "addr-value", "",
                 "object address reinterpret_cast to an integer on a "
                 "det path — addresses differ run to run under ASLR and "
                 "must not reach digests, keys, or simulated state");
            break;
          }
        }
      } else if (s == "hash" && next.kind == Tok::Punct && next.text == "<") {
        const std::size_t close = match_close(t, k + 1, "<", ">", end);
        for (std::size_t j = k + 2; j < close; ++j) {
          if (t[j].kind == Tok::Punct && t[j].text == "*") {
            emit(t[k].line, "addr-value", "",
                 "std::hash over a pointer type on a det path — pointer "
                 "hashes differ run to run; hash a stable id instead");
            break;
          }
        }
      }

      // Range-for over an unordered container, plus order-dependent float
      // accumulation inside such a loop.
      if (s == "for" && call) {
        const std::size_t open = k + 1;
        const std::size_t close = match_close(t, open, "(", ")", end);
        std::size_t colon = close;
        int depth = 0;
        for (std::size_t j = open; j < close; ++j) {
          if (t[j].kind != Tok::Punct) continue;
          if (t[j].text == "(") ++depth;
          if (t[j].text == ")") --depth;
          if (t[j].text == ":" && depth == 1) {
            colon = j;
            break;
          }
        }
        if (colon == close) continue;  // classic for loop
        std::size_t c = colon + 1;
        while (c < close && t[c].kind == Tok::Punct &&
               (t[c].text == "*" || t[c].text == "&" || t[c].text == "(")) {
          ++c;
        }
        std::string chain;
        const std::string ctype =
            resolve_chain(fn, locals, st, t, c, close, chain);
        if (!type_is_unordered(ctype)) continue;
        emit(t[k].line, "unordered-iter", chain,
             "range-for over unordered container '" + chain + "' on a "
             "tick/digest/save/load path — bucket order varies with "
             "allocation history; iterate a sorted view, or fold with an "
             "order-independent op");
        // Float accumulation inside the loop body: even an annotated
        // XOR-style fold must not quietly grow a sum of floats.
        if (close + 1 < end && t[close + 1].kind == Tok::Punct &&
            t[close + 1].text == "{") {
          const std::size_t bclose =
              match_close(t, close + 1, "{", "}", end);
          for (std::size_t j = close + 2; j + 1 < bclose; ++j) {
            if (t[j].kind != Tok::Ident) continue;
            const Token& op = t[j + 1];
            if (op.kind != Tok::Punct ||
                (op.text != "+=" && op.text != "-=")) {
              continue;
            }
            const std::string vt =
                resolve_type(fn, locals, st, t[j].text);
            if (type_is_float(vt)) {
              emit(t[j].line, "float-accum", t[j].text,
                   "float accumulation into '" + t[j].text + "' inside an "
                   "unordered-container loop — summation order changes "
                   "the result; accumulate integers or sort first");
            }
          }
        }
      }
    }
  }

  // Fields of det classes (declaring tick/digest/save/load) keyed by raw
  // pointers: the ordering leaks into whatever those methods fold.
  for (const auto& [name, cls] : st.classes) {
    if (!cls.has_det_method) continue;
    for (const auto& [fname, field] : cls.fields) {
      if (!type_is_ptr_keyed_ordered(field->type)) continue;
      if (line_annotated(*cls.file, field->line, "det:ok")) continue;
      out.push_back(make(
          kRuleDetHazard, cls.file->path, field->line, name + "::" + fname,
          "field '" + fname + "' of det class '" + name + "' is an ordered "
          "container keyed by a raw pointer — iteration order differs run "
          "to run under ASLR; key by a stable id, or annotate the line "
          "/*det:ok: reason*/"));
    }
  }
}

// ---- R6: concurrency-discipline -------------------------------------------

void rule_concurrency_discipline(const Symtab& st, const CallGraph& cg,
                                 const std::vector<std::string>& purity_roots,
                                 std::vector<Finding>& out) {
  const std::vector<bool> reach = cg.reachable_from(st, purity_roots);

  static const char* kMutators[] = {
      "push_back", "emplace_back", "emplace", "insert", "erase",  "clear",
      "pop_back",  "pop_front",    "push_front", "push", "pop",   "resize",
      "assign",    "swap",         "reserve"};

  for (std::size_t idx = 0; idx < st.fns.size(); ++idx) {
    const SymFn& fn = st.fns[idx];
    if (!reach[idx] || fn.def->body_end <= fn.def->body_begin) continue;
    const ParsedFile& pf = *fn.file;
    const std::vector<Token>& t = pf.ts.tokens;
    const std::size_t begin = fn.def->body_begin;
    const std::size_t end = fn.def->body_end;
    const std::map<std::string, LocalVar> locals = scan_locals(fn);

    // (a) Shared-class write ownership: a class that owns a mutex (or is
    // annotated /*own:shared*/) declares itself concurrently accessed;
    // every field write in its methods must hold an RAII lock in the same
    // function, be annotated, or follow the *_locked caller-holds-the-lock
    // naming convention. Constructors/destructors are exempt (no aliases
    // exist yet / anymore).
    const SymClass* cls = st.find_class(simple_name(fn.def->qual_class));
    const bool shared_cls =
        cls != nullptr && (cls->has_mutex || cls->own_shared) &&
        !cls->own_worker;
    const bool exempt_fn =
        cls != nullptr &&
        (fn.def->name == cls->name ||  // ctor/dtor parse to the class name
         (fn.def->name.size() > 7 &&
          fn.def->name.compare(fn.def->name.size() - 7, 7, "_locked") == 0));
    if (shared_cls && !exempt_fn && !body_has_raii_lock(fn)) {
      for (std::size_t k = begin + 1; k + 1 < end; ++k) {
        if (t[k].kind != Tok::Ident) continue;
        auto fit = cls->fields.find(t[k].text);
        if (fit == cls->fields.end()) continue;
        const FieldDecl& f = *fit->second;
        if (f.is_atomic || f.is_const || f.is_mutex || f.own_worker ||
            f.own_guarded) {
          continue;
        }
        // Self-access only: `other.field_` writes are the caller's problem.
        const Token* prev = k > 0 ? &t[k - 1] : nullptr;
        if (prev != nullptr && prev->kind == Tok::Punct &&
            (prev->text == "." || prev->text == "->") &&
            !(k >= 2 && t[k - 2].text == "this")) {
          continue;
        }
        // Write shapes: assignment/compound/inc-dec, mutating member call,
        // or indexed assignment.
        const Token& next = t[k + 1];
        bool write = false;
        if (next.kind == Tok::Punct) {
          write = is_one_of(next.text,
                            {"=", "+=", "-=", "*=", "/=", "%=", "|=", "&=",
                             "^=", "<<=", ">>=", "++", "--"});
          if (!write && (next.text == "." || next.text == "->") &&
              k + 3 < end && t[k + 2].kind == Tok::Ident &&
              t[k + 3].text == "(") {
            write = std::any_of(
                std::begin(kMutators), std::end(kMutators),
                [&](const char* m) { return t[k + 2].text == m; });
          }
          if (!write && next.text == "[") {
            const std::size_t close = match_close(t, k + 1, "[", "]", end);
            write = close + 1 < end && t[close + 1].kind == Tok::Punct &&
                    is_one_of(t[close + 1].text,
                              {"=", "+=", "-=", "*=", "/=", "|=", "&=",
                               "^=", "++", "--"});
          }
        }
        if (prev != nullptr && prev->kind == Tok::Punct &&
            (prev->text == "++" || prev->text == "--")) {
          write = true;
        }
        if (!write) continue;
        if (line_annotated(pf, t[k].line, "own:guarded")) continue;
        out.push_back(make(
            kRuleConcurrency, pf.path, t[k].line,
            cls->name + "::" + f.name + "@" + fn.def->name,
            "field '" + cls->name + "::" + f.name + "' of a shared class "
            "written in '" + fn.def->name + "()' without an RAII lock in "
            "the same function — pool workers race on it; take a "
            "std::lock_guard/scoped_lock here, rename the method "
            "*_locked if the caller holds the mutex, or annotate the "
            "field or write /*own:guarded: reason*/ (worker-local classes: "
            "/*own:worker*/ on the class line)"));
      }
    }

    // (b) Bare mutex lock()/unlock(): lock lifetime must be scope-tied.
    for (std::size_t k = begin + 1; k + 1 < end; ++k) {
      if (t[k].kind != Tok::Ident ||
          !is_one_of(t[k].text, {"lock", "unlock", "try_lock"})) {
        continue;
      }
      if (t[k + 1].kind != Tok::Punct || t[k + 1].text != "(") continue;
      const Token* prev = k > 0 ? &t[k - 1] : nullptr;
      if (prev == nullptr || prev->kind != Tok::Punct ||
          (prev->text != "." && prev->text != "->")) {
        continue;
      }
      if (k < 2 || t[k - 2].kind != Tok::Ident) continue;
      const std::string& recv = t[k - 2].text;
      const std::string rtype = resolve_type(fn, locals, st, recv);
      const bool mutexish =
          type_is_mutex(rtype) ||
          (rtype.empty() && recv.find("mutex") != std::string::npos);
      if (!mutexish) continue;
      out.push_back(make(
          kRuleConcurrency, pf.path, t[k].line,
          fn.qualified + "#bare-lock:" + recv,
          "bare '" + recv + "." + t[k].text + "()' — an early return or "
          "exception leaks the lock; use std::lock_guard/std::scoped_lock "
          "(std::unique_lock for condition waits)"));
    }

    // (c) Static-local initializers that run code: the init races/blocks at
    // first call and hides an initialization-order dependence. Mutable ones
    // are already R2 findings; this catches the const ones. constexpr/
    // constinit statics are constant-initialized — no code runs, exempt.
    for (const LocalStatic& v : fn.def->local_statics) {
      if (!v.is_const || !v.has_call_init || v.is_constexpr) continue;
      out.push_back(make(
          kRuleConcurrency, pf.path, v.line,
          fn.qualified + "#static-init:" + v.name,
          "static-local '" + v.name + "' in '" + fn.def->name + "()' runs "
          "code in its initializer — first-call magic-static init blocks "
          "other workers and hides order dependence; initialize from "
          "constants, or hoist to a namespace-scope constant"));
    }
  }
}

// ---- R7: event-capture ----------------------------------------------------

void rule_event_capture(const Symtab& st,
                        const std::vector<std::string>& event_calls,
                        std::vector<Finding>& out) {
  const std::string kWhy =
      " — the payload outlives this frame inside the engine queue "
      "(dangling-callback hazard); capture by value / std::move, or "
      "annotate the lambda line /*cap:ok: reason*/ if the referent is "
      "rooted in a module that outlives the event";

  for (const SymFn& fn : st.fns) {
    if (fn.def->body_end <= fn.def->body_begin) continue;
    const ParsedFile& pf = *fn.file;
    const std::vector<Token>& t = pf.ts.tokens;
    const std::size_t end = fn.def->body_end;
    for (std::size_t k = fn.def->body_begin + 1; k + 1 < end; ++k) {
      if (t[k].kind != Tok::Ident) continue;
      if (std::none_of(event_calls.begin(), event_calls.end(),
                       [&](const std::string& c) { return t[k].text == c; })) {
        continue;
      }
      if (t[k + 1].kind != Tok::Punct || t[k + 1].text != "(") continue;
      const std::string& call = t[k].text;
      const std::size_t close = match_close(t, k + 1, "(", ")", end);
      for (std::size_t j = k + 2; j < close; ++j) {
        if (t[j].kind != Tok::Punct || t[j].text != "[") continue;
        const Token& before = t[j - 1];
        const bool lambda_intro =
            before.kind == Tok::Punct &&
            (before.text == "(" || before.text == ",");
        if (!lambda_intro) continue;
        const std::size_t cap_close = match_close(t, j, "[", "]", close + 1);
        const int lam_line = t[j].line;
        if (line_annotated(pf, lam_line, "cap:ok")) {
          j = cap_close;
          continue;
        }
        // Split the capture list on top-level commas.
        std::vector<std::vector<std::size_t>> caps(1);
        int depth = 0;
        for (std::size_t c = j + 1; c < cap_close; ++c) {
          if (t[c].kind == Tok::Punct) {
            if (t[c].text == "(" || t[c].text == "[" || t[c].text == "{") {
              ++depth;
            } else if (t[c].text == ")" || t[c].text == "]" ||
                       t[c].text == "}") {
              --depth;
            } else if (t[c].text == "," && depth == 0) {
              caps.emplace_back();
              continue;
            }
          }
          caps.back().push_back(c);
        }
        for (const auto& cap : caps) {
          if (cap.empty()) continue;
          const Token& c0 = t[cap[0]];
          auto emit = [&](const std::string& what, const std::string& msg) {
            out.push_back(make(kRuleEventCapture, pf.path, lam_line,
                               fn.qualified + "#capture:" + what,
                               msg + kWhy));
          };
          if (c0.kind == Tok::Punct && c0.text == "&") {
            if (cap.size() == 1) {
              emit("&", "lambda posted to '" + call + "()' captures "
                        "everything by reference ([&])");
            } else if (t[cap[1]].kind == Tok::Ident) {
              emit(t[cap[1]].text,
                   "lambda posted to '" + call + "()' captures '" +
                       t[cap[1]].text + "' by reference");
            }
            continue;
          }
          if (c0.kind == Tok::Ident && c0.text != "this" && cap.size() >= 3 &&
              t[cap[1]].kind == Tok::Punct && t[cap[1]].text == "=" &&
              t[cap[2]].kind == Tok::Punct && t[cap[2]].text == "&") {
            emit(c0.text, "lambda posted to '" + call + "()' init-captures "
                          "'" + c0.text + "' as the address of an object");
          }
        }
        j = cap_close;
      }
    }
  }
}

}  // namespace gpuqos::lint
