// Cross-translation-unit symbol table (docs/ANALYSIS.md, "gpuqos-lint").
//
// Flattens every ParsedFile into one view: all function definitions indexed
// by unqualified and qualified name, and per-class field/method summaries
// merged across TUs (a class declared in a header and defined out-of-line in
// a .cpp contributes to the same SymClass). Classes are keyed by simple name
// — the project keeps one class per name, everything in namespace gpuqos.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "ast.hpp"

namespace gpuqos::lint {

struct SymClass {
  std::string name;                 // simple (unqualified) class name
  const ClassDecl* decl = nullptr;  // first declaration seen
  const ParsedFile* file = nullptr;
  std::map<std::string, const FieldDecl*> fields;  // non-static data members
  bool has_mutex = false;   // declares a mutex member: shared by design
  bool own_worker = false;  // class-level /*own:worker*/ on the class line
  bool own_shared = false;  // class-level /*own:shared*/ (no mutex member
                            // but still accessed concurrently)
  bool has_det_method = false;  // declares tick/digest/save/load
};

struct SymFn {
  const FunctionDef* def = nullptr;
  const ParsedFile* file = nullptr;
  std::string qualified;  // "Engine::save" for members, "run_many" for free
};

struct Symtab {
  std::vector<SymFn> fns;
  std::multimap<std::string, std::size_t> by_name;  // unqualified fn name
  std::multimap<std::string, std::size_t> by_qualified;
  std::map<std::string, SymClass> classes;  // by simple class name

  [[nodiscard]] const SymClass* find_class(const std::string& simple) const {
    auto it = classes.find(simple);
    return it != classes.end() ? &it->second : nullptr;
  }

  /// Simple class name a declaration type string refers to: the last
  /// identifier at angle depth 0 ("const Foo&" -> "Foo",
  /// "std::unordered_map<K, V>" -> "unordered_map"). Empty when the type is
  /// built-in or unparseable.
  [[nodiscard]] static std::string type_class(const std::string& type);
};

[[nodiscard]] Symtab build_symtab(const std::vector<const ParsedFile*>& files);

}  // namespace gpuqos::lint
