// Forward abstract interpretation over the lint CFG (docs/ANALYSIS.md,
// "gpuqos-lint v3").
//
// The engine is rule-agnostic: a state is a string-keyed map of small
// integer lattice values (lock sets, taint levels, range-checked marks), and
// each rule supplies a Domain describing its lattice join and its transfer
// functions. Two passes run per function:
//   solve()  — worklist fixpoint over block-entry states. Joins are
//              pointwise; a key missing on one side is resolved by
//              Domain::join_missing, which lets one domain mix may-facts
//              (taint: missing = bottom, keep the other side) and must-facts
//              (locks/checks: missing = not established, drop) in one state.
//   report() — one replay over the stabilized states, calling visit hooks
//              with the state *before* each statement / branch so rules emit
//              findings against converged facts. Blocks never reached in
//              solve() (dead code after return/break) are skipped.
#pragma once

#include <climits>
#include <cstddef>
#include <map>
#include <string>

#include "cfg.hpp"

namespace gpuqos::lint {

/// Abstract environment: lattice value per tracked key. Keys are
/// rule-defined (variable names, member chains, "Class::mutex" lock ids).
using AbsState = std::map<std::string, int>;

class Domain {
 public:
  virtual ~Domain() = default;

  /// State on entry to the function (default: empty).
  [[nodiscard]] virtual AbsState entry_state() const { return {}; }

  /// Join two present values for `key` (must be monotone).
  [[nodiscard]] virtual int join(const std::string& key, int a, int b) const = 0;

  /// Resolve `key` present on one side of a join with value `v` and missing
  /// on the other. Return the joined value, or kDrop to remove the key
  /// (must-facts: an unestablished path kills the fact).
  [[nodiscard]] virtual int join_missing(const std::string& key,
                                         int v) const = 0;
  static constexpr int kDrop = INT_MIN;

  /// Apply one statement's effect to the state.
  virtual void transfer(AbsState& s, const CfgStmt& stmt) = 0;

  /// Refine the state along a conditional edge. `taken` is true on the
  /// condition's true edge. Default: no refinement.
  virtual void transfer_branch(AbsState& s, const CfgBlock& b, bool taken) {
    (void)s;
    (void)b;
    (void)taken;
  }

  /// Reporting hooks, called by report() with the pre-state.
  virtual void visit(const AbsState& s, const CfgStmt& stmt) {
    (void)s;
    (void)stmt;
  }
  virtual void visit_branch(const AbsState& s, const CfgBlock& b) {
    (void)s;
    (void)b;
  }
};

struct AbsResult {
  std::vector<AbsState> block_in;  // entry state per block
  std::vector<bool> reached;
};

/// Run the worklist fixpoint. Iteration is bounded (the lattices are finite
/// — keys come from program tokens, values from small enums — but the bound
/// keeps a buggy domain from hanging the lint).
[[nodiscard]] AbsResult solve(const Cfg& cfg, Domain& d);

/// Replay each reached block from its converged entry state, calling
/// Domain::visit before every statement and Domain::visit_branch before the
/// block's conditional exit.
void report(const Cfg& cfg, Domain& d, const AbsResult& r);

}  // namespace gpuqos::lint
