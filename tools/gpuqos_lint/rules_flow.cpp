// Flow-sensitive rule families R8-R11 (docs/ANALYSIS.md, "gpuqos-lint v3").
//
// R8 (state-order) is sequence-based: it extracts the ordered stream of
// StateWriter/StateReader primitive calls and sub-object save/load calls from
// each class's save()/load() bodies and demands they line up pairwise, then
// checks that the first-touch order of fields common to save/load (and
// save/digest) agrees. R9-R11 run the abstract interpreter (absint.hpp) over
// per-function CFGs (cfg.hpp) with three small lattices:
//   R9  lock-discipline: "g:<guard>" must-facts over RAII guard scopes, a
//       global mutex acquisition-order graph, blocking calls under a lock,
//       and guarded-field writes outside the held region;
//   R10 input-taint:     "t:<chain>" may-facts (2 = tainted, 1 = passed a
//       dominating bound check) from StateReader/JSON sources to allocation
//       /copy/loop/index sinks;
//   R11 narrowing-cast:  "c:<chain>" must-facts marking values a comparison
//       dominates, consumed by static_cast-to-narrow sites.
// All of it is token-stream heuristics in the house style of rules_sem.cpp:
// precise on this project's idioms, conservative elsewhere.
#include <algorithm>
#include <cctype>
#include <initializer_list>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "absint.hpp"
#include "cfg.hpp"
#include "dataflow.hpp"
#include "rules.hpp"

namespace gpuqos::lint {
namespace {

Finding make(const char* rule, const std::string& file, int line,
             std::string symbol, std::string message) {
  Finding f;
  f.rule = rule;
  f.file = file;
  f.line = line;
  f.symbol = std::move(symbol);
  f.message = std::move(message);
  return f;
}

bool is_one_of(const std::string& s, std::initializer_list<const char*> set) {
  return std::any_of(set.begin(), set.end(),
                     [&](const char* v) { return s == v; });
}

std::string simple_name(const std::string& name) {
  return name.substr(name.rfind(':') + 1);
}

/// Matching close for the punct group opened at t[open].
std::size_t match_close(const std::vector<Token>& t, std::size_t open,
                        const char* o, const char* c, std::size_t limit) {
  int depth = 0;
  for (std::size_t k = open; k < limit; ++k) {
    if (t[k].kind != Tok::Punct) continue;
    if (t[k].text == o) ++depth;
    if (t[k].text == c && --depth == 0) return k;
  }
  return limit;
}

// ---- member-chain scanning ------------------------------------------------

/// A dotted member chain recovered from the token stream: `arr.items.size`
/// for `arr.items.size()`, `jobs_` for `this->jobs_`. Chains are the keys of
/// every flow lattice, so reads and writes of the same l-value agree.
struct ChainRef {
  std::string key;        // dotted, 'this->' stripped, '->' folded to '.'
  std::size_t begin = 0;  // first token of the chain
  std::size_t end = 0;    // one past the last chain token (call args excl.)
  bool is_call = false;   // chain ends at a '(': last segment is a callee
};

/// Parse the chain starting at t[k]. Fails mid-chain (prev token is a member
/// or scope operator, so the head was already consumed) and on qualified
/// names (`std::min` is a callee, never an l-value we track).
bool parse_chain(const std::vector<Token>& t, std::size_t k, std::size_t limit,
                 ChainRef& out) {
  if (k >= limit || t[k].kind != Tok::Ident) return false;
  if (k > 0 && t[k - 1].kind == Tok::Punct &&
      (t[k - 1].text == "." || t[k - 1].text == "->" ||
       t[k - 1].text == "::")) {
    return false;
  }
  out.begin = k;
  std::size_t j = k;
  if (t[j].text == "this" && j + 1 < limit && t[j + 1].kind == Tok::Punct &&
      t[j + 1].text == "->") {
    j += 2;
    if (j >= limit || t[j].kind != Tok::Ident) return false;
  }
  if (j + 1 < limit && t[j + 1].kind == Tok::Punct &&
      t[j + 1].text == "::") {
    return false;
  }
  out.key = t[j].text;
  ++j;
  out.is_call = j < limit && t[j].kind == Tok::Punct && t[j].text == "(";
  while (!out.is_call && j + 1 < limit && t[j].kind == Tok::Punct &&
         (t[j].text == "." || t[j].text == "->") &&
         t[j + 1].kind == Tok::Ident) {
    out.key += "." + t[j + 1].text;
    j += 2;
    out.is_call = j < limit && t[j].kind == Tok::Punct && t[j].text == "(";
  }
  out.end = j;
  return true;
}

std::vector<ChainRef> chains_in(const std::vector<Token>& t, std::size_t b,
                                std::size_t e) {
  std::vector<ChainRef> out;
  for (std::size_t k = b; k < e;) {
    ChainRef c;
    if (parse_chain(t, k, e, c)) {
      out.push_back(c);
      k = c.end;
    } else {
      ++k;
    }
  }
  return out;
}

std::vector<std::string> split_chain(const std::string& key) {
  std::vector<std::string> parts;
  std::size_t b = 0;
  for (std::size_t i = 0; i <= key.size(); ++i) {
    if (i == key.size() || key[i] == '.') {
      parts.push_back(key.substr(b, i - b));
      b = i + 1;
    }
  }
  return parts;
}

/// Declared type of a (possibly partial) chain, following member links
/// through known classes. `drop_last` skips the final segment (a method name
/// on call chains). Empty when unresolved.
std::string chain_type(const SymFn& fn,
                       const std::map<std::string, LocalVar>& locals,
                       const Symtab& st, const std::vector<std::string>& parts,
                       std::size_t take) {
  if (take == 0 || parts.empty()) return "";
  std::string type = resolve_type(fn, locals, st, parts[0]);
  for (std::size_t i = 1; i < take && i < parts.size(); ++i) {
    const SymClass* cls = st.find_class(Symtab::type_class(type));
    if (cls == nullptr) return "";
    auto fit = cls->fields.find(parts[i]);
    if (fit == cls->fields.end()) return "";
    type = fit->second->type;
  }
  return type;
}

/// Whether the space-joined type string contains `word` as a whole token.
bool type_has_word(const std::string& type, const char* word) {
  const std::size_t n = std::string(word).size();
  for (std::size_t pos = 0; (pos = type.find(word, pos)) != std::string::npos;
       pos += n) {
    const bool lb = pos == 0 || !(std::isalnum(static_cast<unsigned char>(
                                      type[pos - 1])) ||
                                  type[pos - 1] == '_');
    const std::size_t after = pos + n;
    const bool rb =
        after >= type.size() ||
        !(std::isalnum(static_cast<unsigned char>(type[after])) ||
          type[after] == '_');
    if (lb && rb) return true;
  }
  return false;
}

/// Top-level comma split of a call-argument token range (depth over ([{).
std::vector<std::pair<std::size_t, std::size_t>> split_args(
    const std::vector<Token>& t, std::size_t b, std::size_t e) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  int depth = 0;
  std::size_t start = b;
  for (std::size_t k = b; k < e; ++k) {
    if (t[k].kind != Tok::Punct) continue;
    const std::string& s = t[k].text;
    if (s == "(" || s == "[" || s == "{") ++depth;
    if (s == ")" || s == "]" || s == "}") --depth;
    if (s == "," && depth == 0) {
      out.emplace_back(start, k);
      start = k + 1;
    }
  }
  if (e > start) out.emplace_back(start, e);
  return out;
}

bool range_has_call(const std::vector<Token>& t, std::size_t b, std::size_t e,
                    std::initializer_list<const char*> names) {
  for (std::size_t k = b; k + 1 < e; ++k) {
    if (t[k].kind != Tok::Ident || !is_one_of(t[k].text, names)) continue;
    std::size_t p = k + 1;
    // Hop explicit template arguments: std::min<std::size_t>(...).
    if (t[p].kind == Tok::Punct && t[p].text == "<") {
      p = match_close(t, p, "<", ">", e);
      if (p >= e) continue;
      ++p;
    }
    if (p < e && t[p].kind == Tok::Punct && t[p].text == "(") return true;
  }
  return false;
}

bool range_has_punct(const std::vector<Token>& t, std::size_t b, std::size_t e,
                     std::initializer_list<const char*> ops) {
  for (std::size_t k = b; k < e; ++k) {
    if (t[k].kind == Tok::Punct && is_one_of(t[k].text, ops)) return true;
  }
  return false;
}

const std::initializer_list<const char*> kComparisons = {"<",  "<=", ">",
                                                         ">=", "==", "!="};

}  // namespace

// ---- CfgCache -------------------------------------------------------------

CfgCache::CfgCache() = default;
CfgCache::~CfgCache() = default;

const Cfg& CfgCache::get(const SymFn& fn) {
  auto it = by_fn_.find(fn.def);
  if (it == by_fn_.end()) {
    it = by_fn_
             .emplace(fn.def, build_cfg(fn.file->ts.tokens,
                                        fn.def->body_begin, fn.def->body_end))
             .first;
  }
  return it->second;
}

// ---- R8: state-order ------------------------------------------------------

namespace {

const std::set<std::string>& reader_writer_prims() {
  static const std::set<std::string> kPrims = {
      "u8", "u16", "u32", "u64", "i32", "i64", "f64", "boolean", "str",
      "bytes"};
  return kPrims;
}

struct StateOp {
  bool sub = false;   // sub-object save/load/digest call
  std::string what;   // primitive name, or the sub-object receiver
  int line = 0;
};

struct StateSeq {
  const SymFn* fn = nullptr;
  std::vector<StateOp> ops;
  std::vector<std::string> field_order;  // first-touch order
  std::map<std::string, int> field_line;
};

std::string describe(const StateOp& op) {
  return op.sub ? "sub-state '" + op.what + "'" : "." + op.what + "()";
}

/// Receiver identifier of a `.save(`/`.load(`/`.digest(` call: the ident
/// before the member operator, hopping back over one `[...]` subscript.
std::string sub_receiver(const std::vector<Token>& t, std::size_t dot,
                         std::size_t lo) {
  if (dot <= lo) return "";
  std::size_t j = dot - 1;
  if (t[j].kind == Tok::Punct && t[j].text == "]") {
    int depth = 0;
    while (j > lo) {
      if (t[j].kind == Tok::Punct && t[j].text == "]") ++depth;
      if (t[j].kind == Tok::Punct && t[j].text == "[" && --depth == 0) {
        if (j == lo) return "";
        --j;
        break;
      }
      --j;
    }
  }
  return t[j].kind == Tok::Ident ? t[j].text : "";
}

enum class Role { kSave, kLoad, kDigest };

StateSeq extract_seq(const SymClass& cls, const SymFn& fn, Role role) {
  StateSeq seq;
  seq.fn = &fn;
  const std::vector<Token>& t = fn.file->ts.tokens;
  if (fn.def->body_end <= fn.def->body_begin) return seq;

  // The serialization stream parameter (save/load only).
  std::string stream;
  if (role != Role::kDigest) {
    const char* want =
        role == Role::kSave ? "StateWriter" : "StateReader";
    for (const ParamDecl& p : fn.def->params) {
      if (!p.name.empty() && p.type.find(want) != std::string::npos) {
        stream = p.name;
        break;
      }
    }
  }
  const char* sub_call = role == Role::kSave    ? "save"
                         : role == Role::kLoad  ? "load"
                                                : "digest";

  const std::size_t lo = fn.def->body_begin;
  for (std::size_t k = lo + 1; k + 1 < fn.def->body_end; ++k) {
    if (t[k].kind != Tok::Ident) continue;
    const std::string& s = t[k].text;
    // Primitive stream op: w.u64(...), r.str(...).
    if (!stream.empty() && s == stream && k + 3 < fn.def->body_end &&
        t[k + 1].kind == Tok::Punct &&
        (t[k + 1].text == "." || t[k + 1].text == "->") &&
        t[k + 2].kind == Tok::Ident && t[k + 3].kind == Tok::Punct &&
        t[k + 3].text == "(" &&
        reader_writer_prims().count(t[k + 2].text) != 0) {
      seq.ops.push_back(StateOp{false, t[k + 2].text, t[k + 2].line});
    }
    // Sub-object hop: rob_.save(w) / rob_.load(r) / h.mix(rob_.digest()).
    if (s == sub_call && k > lo && k + 1 < fn.def->body_end &&
        t[k - 1].kind == Tok::Punct &&
        (t[k - 1].text == "." || t[k - 1].text == "->") &&
        t[k + 1].kind == Tok::Punct && t[k + 1].text == "(") {
      const std::string recv = sub_receiver(t, k - 1, lo);
      if (!recv.empty() && recv != stream) {
        seq.ops.push_back(StateOp{true, recv, t[k].line});
      }
    }
    // Field first-touch order. Access through another object (x.field)
    // doesn't touch our field; `this->field` does.
    if (cls.fields.count(s) != 0) {
      const bool through_other =
          t[k - 1].kind == Tok::Punct &&
          (t[k - 1].text == "." || t[k - 1].text == "::" ||
           (t[k - 1].text == "->" &&
            !(k >= 2 && t[k - 2].kind == Tok::Ident &&
              t[k - 2].text == "this")));
      if (!through_other && seq.field_line.emplace(s, t[k].line).second) {
        seq.field_order.push_back(s);
      }
    }
  }
  return seq;
}

/// Fields present in both sequences, in `a`'s order.
std::vector<std::string> common_fields(const StateSeq& a, const StateSeq& b) {
  std::vector<std::string> out;
  for (const std::string& f : a.field_order) {
    if (b.field_line.count(f) != 0) out.push_back(f);
  }
  return out;
}

}  // namespace

void rule_state_order(const Symtab& st, std::vector<Finding>& out) {
  // Group save/load/digest definitions by their class.
  struct Trio {
    const SymFn* save = nullptr;
    const SymFn* load = nullptr;
    const SymFn* digest = nullptr;
  };
  std::map<std::string, Trio> by_class;
  for (const SymFn& fn : st.fns) {
    if (fn.def->qual_class.empty() ||
        fn.def->body_end <= fn.def->body_begin) {
      continue;
    }
    Trio& trio = by_class[fn.def->qual_class];
    if (fn.def->name == "save" && trio.save == nullptr) trio.save = &fn;
    if (fn.def->name == "load" && trio.load == nullptr) trio.load = &fn;
    if (fn.def->name == "digest" && trio.digest == nullptr) trio.digest = &fn;
  }

  auto emit = [&](const SymFn& at, int line, const std::string& cls,
                  const std::string& msg) {
    if (line_annotated(*at.file, line, "order:ok")) return;
    if (line_annotated(*at.file, at.def->line, "order:ok")) return;
    out.push_back(make(kRuleStateOrder, at.file->path, line,
                       cls + "::" + at.def->name, msg));
  };

  for (const auto& [qual, trio] : by_class) {
    const SymClass* cls = st.find_class(qual);
    if (cls == nullptr) cls = st.find_class(simple_name(qual));
    if (cls == nullptr || trio.save == nullptr || trio.load == nullptr) {
      continue;
    }
    const StateSeq save = extract_seq(*cls, *trio.save, Role::kSave);
    const StateSeq load = extract_seq(*cls, *trio.load, Role::kLoad);
    if (save.ops.empty() && load.ops.empty()) continue;

    // 1) The primitive/sub-call streams must agree element by element —
    //    this is the byte order of the snapshot.
    bool stream_diverged = false;
    const std::size_t n = std::min(save.ops.size(), load.ops.size());
    for (std::size_t i = 0; i < n; ++i) {
      const StateOp& a = save.ops[i];
      const StateOp& b = load.ops[i];
      if (a.sub == b.sub && a.what == b.what) continue;
      emit(*trio.load, b.line, cls->name,
           "save() step " + std::to_string(i + 1) + " writes " + describe(a) +
               " but load() reads " + describe(b) +
               " — snapshot byte order must be symmetric "
               "(/*order:ok: reason*/ if the asymmetry is deliberate)");
      stream_diverged = true;
      break;
    }
    if (!stream_diverged && save.ops.size() != load.ops.size()) {
      const bool save_longer = save.ops.size() > load.ops.size();
      const SymFn& at = save_longer ? *trio.save : *trio.load;
      const StateOp& extra =
          save_longer ? save.ops[load.ops.size()] : load.ops[save.ops.size()];
      emit(at, extra.line, cls->name,
           "save() has " + std::to_string(save.ops.size()) +
               " serialization steps but load() has " +
               std::to_string(load.ops.size()) + " — first unmatched is " +
               describe(extra) +
               " (save/load drift shows up as a runtime CRC mismatch)");
      stream_diverged = true;
    }

    // 2) First-touch order of the fields both bodies reference (load-only
    //    reconstruction like derived tables is fine and ignored here).
    if (!stream_diverged) {
      const std::vector<std::string> in_save = common_fields(save, load);
      const std::vector<std::string> in_load = common_fields(load, save);
      for (std::size_t i = 0; i < in_save.size() && i < in_load.size(); ++i) {
        if (in_save[i] == in_load[i]) continue;
        emit(*trio.load, load.field_line.at(in_load[i]), cls->name,
             "save() touches field '" + in_save[i] + "' before '" +
                 in_load[i] + "' but load() touches '" + in_load[i] +
                 "' first — reorder one side so the state walk matches");
        break;
      }
    }

    // 3) digest() should fold the shared fields in save order, so a digest
    //    divergence localizes to the field that changed, not the mix order.
    if (trio.digest != nullptr) {
      const StateSeq dig = extract_seq(*cls, *trio.digest, Role::kDigest);
      const std::vector<std::string> in_save = common_fields(save, dig);
      const std::vector<std::string> in_dig = common_fields(dig, save);
      for (std::size_t i = 0; i < in_save.size() && i < in_dig.size(); ++i) {
        if (in_save[i] == in_dig[i]) continue;
        emit(*trio.digest, dig.field_line.at(in_dig[i]), cls->name,
             "digest() mixes field '" + in_dig[i] + "' before '" +
                 in_save[i] + "' but save() writes '" + in_save[i] +
                 "' first — keep the fold order aligned with the snapshot "
                 "walk");
        break;
      }
    }
  }
}

// ---- R9: lock-discipline --------------------------------------------------

namespace {

/// Canonical identity of a mutex expression:
///   "Class::field"        mutex data member (shared across the class);
///   "::name"              namespace-scope mutex;
///   "local:Fn::name"      function-local mutex object;
///   "?:chain"             plausibly a mutex, identity unknown.
/// Unknown ids participate in held-sets but are excluded from the global
/// acquisition-order graph (they could alias anything).
std::string mutex_id(const SymFn& fn,
                     const std::map<std::string, LocalVar>& locals,
                     const Symtab& st, const std::vector<Token>& t,
                     std::size_t b, std::size_t e) {
  while (b < e && t[b].kind == Tok::Punct &&
         (t[b].text == "*" || t[b].text == "&" || t[b].text == "(")) {
    ++b;
  }
  ChainRef c;
  if (!parse_chain(t, b, e, c)) return "";
  const std::vector<std::string> parts = split_chain(c.key);

  const SymClass* own =
      fn.def->qual_class.empty()
          ? nullptr
          : st.find_class(simple_name(fn.def->qual_class));
  if (parts.size() == 1) {
    const std::string& name = parts[0];
    if (own != nullptr) {
      auto fit = own->fields.find(name);
      if (fit != own->fields.end() && fit->second->is_mutex) {
        return own->name + "::" + name;
      }
    }
    auto lit = locals.find(name);
    if (lit != locals.end() && type_is_mutex(lit->second.type)) {
      // A reference/pointer local aliases a mutex owned elsewhere.
      if (lit->second.type.find('&') != std::string::npos ||
          lit->second.type.find('*') != std::string::npos) {
        return "?:" + name;
      }
      return "local:" + fn.qualified + "::" + name;
    }
    for (const NamespaceVar& nv : fn.file->namespace_vars) {
      if (nv.name == name && nv.is_mutex) return "::" + name;
    }
  } else {
    // Member-object chain: resolve the owner of the final field.
    std::string type = resolve_type(fn, locals, st, parts[0]);
    for (std::size_t i = 1; i < parts.size(); ++i) {
      const SymClass* cls = st.find_class(Symtab::type_class(type));
      if (cls == nullptr) break;
      auto fit = cls->fields.find(parts[i]);
      if (fit == cls->fields.end()) break;
      if (i + 1 == parts.size() && fit->second->is_mutex) {
        return cls->name + "::" + parts[i];
      }
      type = fit->second->type;
    }
  }
  const std::string low = c.key;
  if (low.find("mu") != std::string::npos ||
      low.find("mutex") != std::string::npos ||
      low.find("lock") != std::string::npos) {
    return "?:" + c.key;
  }
  return "";
}

struct OrderEdge {
  std::string held;
  std::string acquired;
  const ParsedFile* file = nullptr;
  int line = 0;
};

struct OrderGraph {
  std::set<std::pair<std::string, std::string>> seen;
  std::vector<OrderEdge> edges;
};

struct GuardInfo {
  std::string name;  // guard variable; empty for the *_locked entry guard
  int scope = 0;
  std::vector<std::string> ids;
  bool from_entry = false;
};

const std::initializer_list<const char*> kGuardTypes = {
    "lock_guard", "scoped_lock", "unique_lock", "shared_lock"};

// One instance per function, driven from the single rule-runner thread.
class LockDomain : public Domain {  /*own:worker*/
 public:
  LockDomain(const SymFn& fn, const Symtab& st, const Cfg& cfg,
             std::map<std::string, LocalVar> locals, OrderGraph& order,
             std::vector<Finding>& out)
      : fn_(fn),
        st_(st),
        cfg_(cfg),
        locals_(std::move(locals)),
        order_(order),
        out_(out),
        t_(fn.file->ts.tokens) {
    cls_ = fn.def->qual_class.empty()
               ? nullptr
               : st.find_class(simple_name(fn.def->qual_class));
    if (cls_ != nullptr) {
      for (const auto& [name, fld] : cls_->fields) {
        if (fld->is_mutex) class_mutexes_.push_back(cls_->name + "::" + name);
      }
    }
    const std::string& name = fn.def->name;
    is_locked_convention_ =
        name.size() > 7 && name.compare(name.size() - 7, 7, "_locked") == 0;
    // Guarded-field pass: only meaningful for locking functions of a
    // mutex-owning class — lock-free writers are R6's department.
    field_check_ = cls_ != nullptr && !class_mutexes_.empty() &&
                   !cls_->own_worker && !is_locked_convention_ &&
                   name != simple_name(cls_->name) && name[0] != '~' &&
                   name.compare(0, 8, "operator") != 0 &&
                   body_has_raii_lock(fn);
  }

  AbsState entry_state() const override {
    AbsState s;
    if (is_locked_convention_ && !class_mutexes_.empty()) {
      s.emplace("g:0", 1);
    }
    return s;
  }

  void prepare() {
    // Slot 0 is the *_locked entry pseudo-guard (callers hold the class
    // mutexes by convention); it never feeds the acquisition-order graph.
    guards_.push_back(GuardInfo{"", 0, class_mutexes_, true});
  }

  int join(const std::string&, int a, int b) const override {
    return a == b ? a : 1;
  }
  int join_missing(const std::string&, int) const override { return kDrop; }

  void transfer(AbsState& s, const CfgStmt& stmt) override {
    // RAII: a guard dies when flow leaves its declaring scope.
    for (auto it = s.begin(); it != s.end();) {
      const GuardInfo& g = guards_[guard_index(it->first)];
      if (!cfg_.scope_encloses(g.scope, stmt.scope)) {
        it = s.erase(it);
      } else {
        ++it;
      }
    }
    scan_guard_decl(s, stmt);
    scan_unlock(s, stmt);
  }

  void visit(const AbsState& s, const CfgStmt& stmt) override {
    check_blocking(s, stmt);
    if (field_check_) check_fields(s, stmt);
  }

 private:
  const SymFn& fn_;
  const Symtab& st_;
  const Cfg& cfg_;
  std::map<std::string, LocalVar> locals_;
  OrderGraph& order_;
  std::vector<Finding>& out_;
  const std::vector<Token>& t_;
  const SymClass* cls_ = nullptr;
  std::vector<std::string> class_mutexes_;
  bool is_locked_convention_ = false;
  bool field_check_ = false;
  std::vector<GuardInfo> guards_;
  std::map<std::size_t, std::size_t> decl_at_;  // stmt.begin -> guard index

  static std::size_t guard_index(const std::string& key) {
    return static_cast<std::size_t>(std::stoul(key.substr(2)));
  }

  void emit(int line, const std::string& symbol, const std::string& msg) {
    if (line_annotated(*fn_.file, line, "lock:ok")) return;
    out_.push_back(make(kRuleLockDiscipline, fn_.file->path, line,
                        symbol.empty() ? fn_.qualified : symbol, msg));
  }

  std::vector<std::string> held_ids(const AbsState& s) const {
    std::vector<std::string> ids;
    for (const auto& [key, v] : s) {
      (void)v;
      for (const std::string& id : guards_[guard_index(key)].ids) {
        if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
          ids.push_back(id);
        }
      }
    }
    return ids;
  }

  static std::string join_ids(const std::vector<std::string>& ids) {
    std::string out;
    for (const std::string& id : ids) {
      if (!out.empty()) out += ", ";
      out += "'" + id + "'";
    }
    return out;
  }

  void scan_guard_decl(AbsState& s, const CfgStmt& stmt) {
    for (std::size_t k = stmt.begin; k + 2 < stmt.end; ++k) {
      if (t_[k].kind != Tok::Ident || !is_one_of(t_[k].text, kGuardTypes)) {
        continue;
      }
      std::size_t j = k + 1;
      if (j < stmt.end && t_[j].kind == Tok::Punct && t_[j].text == "<") {
        const std::size_t close = match_close(t_, j, "<", ">", stmt.end);
        if (close >= stmt.end) continue;
        j = close + 1;
      }
      if (j >= stmt.end || t_[j].kind != Tok::Ident) continue;  // not a decl
      const std::string guard_name = t_[j].text;
      if (j + 1 >= stmt.end || t_[j + 1].kind != Tok::Punct ||
          (t_[j + 1].text != "(" && t_[j + 1].text != "{")) {
        continue;
      }
      const char* open = t_[j + 1].text == "(" ? "(" : "{";
      const char* close_p = t_[j + 1].text == "(" ? ")" : "}";
      const std::size_t close = match_close(t_, j + 1, open, close_p,
                                            stmt.end);
      if (close >= stmt.end) continue;

      bool deferred = false;
      for (std::size_t a = j + 2; a < close; ++a) {
        if (t_[a].kind == Tok::Ident && t_[a].text == "defer_lock") {
          deferred = true;
        }
      }
      if (deferred) continue;  // not held at construction; approximation

      std::vector<std::string> ids;
      for (const auto& [ab, ae] : split_args(t_, j + 2, close)) {
        const std::string id = mutex_id(fn_, locals_, st_, t_, ab, ae);
        if (!id.empty() &&
            std::find(ids.begin(), ids.end(), id) == ids.end()) {
          ids.push_back(id);
        }
      }
      if (ids.empty()) continue;

      // Acquisition-order edges: every mutex already held orders before
      // every mutex this guard acquires.
      for (const auto& [key, v] : s) {
        (void)v;
        const GuardInfo& g = guards_[guard_index(key)];
        if (g.from_entry) continue;  // entry set is an over-approximation
        for (const std::string& held : g.ids) {
          if (held[0] == '?') continue;
          for (const std::string& acq : ids) {
            if (acq[0] == '?' || held == acq) continue;
            if (order_.seen.emplace(held, acq).second) {
              order_.edges.push_back(
                  OrderEdge{held, acq, fn_.file, t_[k].line});
            }
          }
        }
      }

      auto dit = decl_at_.find(stmt.begin);
      std::size_t idx;
      if (dit != decl_at_.end()) {
        idx = dit->second;
      } else {
        idx = guards_.size();
        guards_.push_back(GuardInfo{guard_name, stmt.scope, ids, false});
        decl_at_.emplace(stmt.begin, idx);
      }
      s["g:" + std::to_string(idx)] = 1;
      k = close;
    }
  }

  void scan_unlock(AbsState& s, const CfgStmt& stmt) {
    for (std::size_t k = stmt.begin; k + 2 < stmt.end; ++k) {
      if (t_[k].kind != Tok::Ident) continue;
      if (t_[k + 1].kind != Tok::Punct ||
          (t_[k + 1].text != "." && t_[k + 1].text != "->")) {
        continue;
      }
      if (t_[k + 2].kind != Tok::Ident ||
          (t_[k + 2].text != "unlock" && t_[k + 2].text != "release")) {
        continue;
      }
      for (auto it = s.begin(); it != s.end();) {
        const GuardInfo& g = guards_[guard_index(it->first)];
        if (!g.from_entry && g.name == t_[k].text) {
          it = s.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  void check_blocking(const AbsState& s, const CfgStmt& stmt) {
    if (s.empty()) return;
    const std::vector<std::string> held = held_ids(s);
    if (held.empty()) return;

    for (std::size_t k = stmt.begin; k + 1 < stmt.end; ++k) {
      if (t_[k].kind != Tok::Ident || t_[k + 1].kind != Tok::Punct ||
          t_[k + 1].text != "(") {
        continue;
      }
      const std::string& name = t_[k].text;
      const bool member =
          k > 0 && t_[k - 1].kind == Tok::Punct &&
          (t_[k - 1].text == "." || t_[k - 1].text == "->");

      if (member) {
        const std::string type = receiver_type(stmt, k);
        const std::string recv = receiver_name(k);
        if (is_one_of(name, {"wait", "wait_for", "wait_until"})) {
          const bool condvar =
              type.find("condition_variable") != std::string::npos ||
              recv.find("cv") != std::string::npos ||
              recv.find("cond") != std::string::npos;
          const bool future = type.find("future") != std::string::npos ||
                              recv.find("fut") != std::string::npos;
          if (condvar) {
            // cv.wait(lk) releases lk while sleeping; any *other* held lock
            // stays held across the sleep.
            std::vector<std::string> rest = held;
            const std::size_t close =
                match_close(t_, k + 1, "(", ")", stmt.end);
            for (const auto& [key, v] : s) {
              (void)v;
              const GuardInfo& g = guards_[guard_index(key)];
              bool named = false;
              for (std::size_t a = k + 2; a < close; ++a) {
                if (t_[a].kind == Tok::Ident && t_[a].text == g.name) {
                  named = true;
                }
              }
              if (!named) continue;
              for (const std::string& id : g.ids) {
                rest.erase(std::remove(rest.begin(), rest.end(), id),
                           rest.end());
              }
            }
            if (!rest.empty()) {
              emit(t_[k].line, fn_.qualified,
                   "condition_variable wait while still holding " +
                       join_ids(rest) +
                       " — only the wait lock is released during the sleep "
                       "(/*lock:ok: reason*/ if intended)");
            }
          } else if (future) {
            emit(t_[k].line, fn_.qualified,
                 "blocking future wait with " + join_ids(held) +
                     " held — the producer may need the same lock to make "
                     "progress (move the wait outside the guard)");
          }
        } else if (name == "get" &&
                   (type.find("future") != std::string::npos ||
                    recv.find("fut") != std::string::npos ||
                    recv.find("future") != std::string::npos)) {
          emit(t_[k].line, fn_.qualified,
               "future::get() with " + join_ids(held) +
                   " held blocks until another thread produces the value — "
                   "copy the future and get() outside the lock");
        } else if (name == "join" &&
                   (type.find("thread") != std::string::npos ||
                    recv.find("thread") != std::string::npos)) {
          emit(t_[k].line, fn_.qualified,
               "thread join with " + join_ids(held) +
                   " held — the joined thread may block on the same lock "
                   "(swap the container under the lock, join outside)");
        }
      } else {
        const bool scoped_free =
            k > 0 && t_[k - 1].kind == Tok::Punct && t_[k - 1].text == "::";
        const bool socketish = is_one_of(
            name, {"recv", "send", "accept", "poll", "connect", "select",
                   "sleep_for", "sleep_until"});
        const bool posix_io =
            scoped_free && is_one_of(name, {"read", "write"});
        if (socketish || posix_io) {
          emit(t_[k].line, fn_.qualified,
               "blocking call '" + name + "' with " + join_ids(held) +
                   " held — socket/sleep latency is attacker- or "
                   "peer-controlled; release the lock first");
        }
      }
    }
  }

  std::string receiver_name(std::size_t method) const {
    return method >= 2 && t_[method - 2].kind == Tok::Ident
               ? t_[method - 2].text
               : std::string();
  }

  std::string receiver_type(const CfgStmt& stmt, std::size_t method) const {
    // Walk back over the `a.b.c` chain feeding `.method(`.
    std::size_t cs = method;
    std::size_t q = method - 1;  // the '.' / '->'
    while (q > stmt.begin && t_[q].kind == Tok::Punct &&
           (t_[q].text == "." || t_[q].text == "->") &&
           t_[q - 1].kind == Tok::Ident) {
      cs = q - 1;
      if (cs == stmt.begin) break;
      q = cs - 1;
    }
    if (cs == method) return "";
    ChainRef c;
    if (!parse_chain(t_, cs, method - 1, c)) return "";
    const std::vector<std::string> parts = split_chain(c.key);
    return chain_type(fn_, locals_, st_, parts, parts.size());
  }

  void check_fields(const AbsState& s, const CfgStmt& stmt) {
    // Does the current lock set cover this class's mutexes (or an unknown
    // mutex we give the benefit of the doubt)?
    bool covered = false;
    for (const auto& [key, v] : s) {
      (void)v;
      for (const std::string& id : guards_[guard_index(key)].ids) {
        if (id[0] == '?' ||
            std::find(class_mutexes_.begin(), class_mutexes_.end(), id) !=
                class_mutexes_.end()) {
          covered = true;
        }
      }
    }
    if (covered) return;

    for (std::size_t k = stmt.begin; k < stmt.end; ++k) {
      if (t_[k].kind != Tok::Ident) continue;
      auto fit = cls_->fields.find(t_[k].text);
      if (fit == cls_->fields.end()) continue;
      const FieldDecl& fld = *fit->second;
      if (fld.is_atomic || fld.is_const || fld.is_mutex || fld.own_worker ||
          fld.own_guarded) {
        continue;
      }
      const bool through_other =
          k > 0 && t_[k - 1].kind == Tok::Punct &&
          (t_[k - 1].text == "." ||
           (t_[k - 1].text == "->" &&
            !(k >= 2 && t_[k - 2].text == "this")));
      if (through_other) continue;
      if (!is_write(stmt, k)) continue;
      if (line_annotated(*fn_.file, t_[k].line, "own:guarded")) continue;
      emit(t_[k].line, cls_->name + "::" + fld.name,
           "write to guarded field '" + fld.name +
               "' with an empty lock set — this function takes '" +
               class_mutexes_.front() +
               "' elsewhere, so this write races with the locked region "
               "(move it under the guard or annotate /*lock:ok: reason*/)");
    }
  }

  bool is_write(const CfgStmt& stmt, std::size_t k) const {
    if (k > stmt.begin && t_[k - 1].kind == Tok::Punct &&
        (t_[k - 1].text == "++" || t_[k - 1].text == "--")) {
      return true;
    }
    std::size_t j = k + 1;
    if (j < stmt.end && t_[j].kind == Tok::Punct && t_[j].text == "[") {
      const std::size_t close = match_close(t_, j, "[", "]", stmt.end);
      if (close >= stmt.end) return false;
      j = close + 1;
    }
    if (j >= stmt.end || t_[j].kind != Tok::Punct) return false;
    const std::string& op = t_[j].text;
    if (is_one_of(op, {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
                       "<<=", ">>=", "++", "--"})) {
      return true;
    }
    if ((op == "." || op == "->") && j + 2 < stmt.end &&
        t_[j + 1].kind == Tok::Ident && t_[j + 2].kind == Tok::Punct &&
        t_[j + 2].text == "(") {
      return is_one_of(t_[j + 1].text,
                       {"push_back", "emplace_back", "emplace", "insert",
                        "erase", "clear", "resize", "reserve", "assign",
                        "pop_back", "pop_front", "push_front", "swap",
                        "reset"});
    }
    return false;
  }
};

}  // namespace

void rule_lock_discipline(const Symtab& st, CfgCache& cfgs,
                          std::vector<Finding>& out) {
  OrderGraph order;
  for (const SymFn& fn : st.fns) {
    if (fn.def->body_end <= fn.def->body_begin) continue;
    // Cheap pre-filter: no guard construct, no *_locked convention, nothing
    // for the domain to do.
    const std::set<std::string>& ids = fn.def->body_idents;
    const bool has_guard =
        ids.count("lock_guard") != 0 || ids.count("scoped_lock") != 0 ||
        ids.count("unique_lock") != 0 || ids.count("shared_lock") != 0;
    const std::string& name = fn.def->name;
    const bool locked_conv =
        name.size() > 7 && name.compare(name.size() - 7, 7, "_locked") == 0;
    if (!has_guard && !locked_conv) continue;

    const Cfg& cfg = cfgs.get(fn);
    LockDomain d(fn, st, cfg, scan_locals(fn), order, out);
    d.prepare();
    const AbsResult r = solve(cfg, d);
    report(cfg, d, r);
  }

  // Global acquisition-order consistency: an edge a->b plus a path b->..->a
  // is a potential deadlock cycle.
  std::map<std::string, std::set<std::string>> adj;
  for (const auto& [from, to] : order.seen) adj[from].insert(to);
  auto reaches = [&](const std::string& from, const std::string& to) {
    std::set<std::string> seen{from};
    std::vector<std::string> stack{from};
    while (!stack.empty()) {
      const std::string cur = stack.back();
      stack.pop_back();
      auto it = adj.find(cur);
      if (it == adj.end()) continue;
      for (const std::string& nxt : it->second) {
        if (nxt == to) return true;
        if (seen.insert(nxt).second) stack.push_back(nxt);
      }
    }
    return false;
  };
  std::set<std::pair<std::string, std::string>> reported;
  for (const OrderEdge& e : order.edges) {
    if (!reaches(e.acquired, e.held)) continue;
    const auto pair = std::minmax(e.held, e.acquired);
    if (!reported.emplace(pair.first, pair.second).second) continue;
    if (line_annotated(*e.file, e.line, "lock:ok")) continue;
    out.push_back(make(
        kRuleLockDiscipline, e.file->path, e.line,
        "lock-order:" + pair.first + "<->" + pair.second,
        "'" + e.acquired + "' is acquired here while '" + e.held +
            "' is held, but elsewhere the same mutexes are taken in the "
            "opposite order — pick one global order or collapse to one "
            "scoped_lock (/*lock:ok: reason*/ if externally serialized)"));
  }
}

// ---- R10: input-taint -----------------------------------------------------

namespace {

const std::set<std::string>& json_accessors() {
  static const std::set<std::string> kNames = {
      "req", "req_string", "req_u64", "req_f64",
      "as_string", "as_u64", "as_f64"};
  return kNames;
}

constexpr int kTainted = 2;
constexpr int kBounded = 1;

class TaintDomain : public Domain {
 public:
  TaintDomain(const SymFn& fn, const Symtab& st,
              std::map<std::string, LocalVar> locals,
              std::vector<Finding>& out)
      : fn_(fn),
        st_(st),
        locals_(std::move(locals)),
        out_(out),
        t_(fn.file->ts.tokens) {}

  int join(const std::string&, int a, int b) const override {
    return std::max(a, b);  // may-taint: any tainted path taints the join
  }
  int join_missing(const std::string&, int v) const override { return v; }

  void transfer(AbsState& s, const CfgStmt& stmt) override {
    const std::size_t op = find_assign(stmt);
    if (op == stmt.end) return;
    const std::string target = assign_target(stmt, op);
    if (target.empty()) return;
    int lvl = eval_range(s, op + 1, stmt.end);
    if (t_[op].text != "=") {  // compound assignment keeps existing taint
      lvl = std::max(lvl, level(s, target));
    }
    if (lvl > 0) {
      s["t:" + target] = lvl;
    } else {
      s.erase("t:" + target);
    }
  }

  void transfer_branch(AbsState& s, const CfgBlock& b, bool) override {
    // A comparison dominates both edges in the house idiom
    // `if (n > bound) fail(...)`: mark every compared chain as bounded. The
    // refinement is deliberately direction-blind — a path that skips the
    // check re-taints the join, which is exactly the "dominating check"
    // semantics the rule wants.
    if (!range_has_punct(t_, b.cond_begin, b.cond_end, kComparisons)) return;
    for (const ChainRef& c : chains_in(t_, b.cond_begin, b.cond_end)) {
      if (level(s, c.key) == kTainted) s["t:" + c.key] = kBounded;
    }
  }

  void visit(const AbsState& s, const CfgStmt& stmt) override {
    for (std::size_t k = stmt.begin; k < stmt.end; ++k) {
      if (t_[k].kind != Tok::Ident) continue;
      const std::string& name = t_[k].text;
      const bool call = k + 1 < stmt.end && t_[k + 1].kind == Tok::Punct &&
                        t_[k + 1].text == "(";
      const bool member =
          k > stmt.begin && t_[k - 1].kind == Tok::Punct &&
          (t_[k - 1].text == "." || t_[k - 1].text == "->");

      if (call && member && is_one_of(name, {"resize", "reserve"})) {
        const std::size_t close = match_close(t_, k + 1, "(", ")", stmt.end);
        check_sink(s, k + 2, close, t_[k].line,
                   "allocation size passed to ." + name + "()");
      }
      if (call && !member &&
          is_one_of(name, {"memcpy", "memmove", "memset", "strncpy"})) {
        const std::size_t close = match_close(t_, k + 1, "(", ")", stmt.end);
        const auto args = split_args(t_, k + 2, close);
        if (!args.empty()) {
          check_sink(s, args.back().first, args.back().second, t_[k].line,
                     name + "() length");
        }
      }
      if (name == "new") {
        // new T[expr]
        std::size_t j = k + 1;
        while (j < stmt.end &&
               (t_[j].kind == Tok::Ident ||
                (t_[j].kind == Tok::Punct &&
                 (t_[j].text == "::" || t_[j].text == "<" ||
                  t_[j].text == ">")))) {
          ++j;
        }
        if (j < stmt.end && t_[j].kind == Tok::Punct && t_[j].text == "[") {
          const std::size_t close = match_close(t_, j, "[", "]", stmt.end);
          check_sink(s, j + 1, close, t_[k].line, "new[] element count");
        }
      }
    }
    // Container indexing with a tainted subscript.
    for (const ChainRef& c : chains_in(t_, stmt.begin, stmt.end)) {
      if (c.is_call || c.end >= stmt.end || t_[c.end].kind != Tok::Punct ||
          t_[c.end].text != "[") {
        continue;
      }
      const std::vector<std::string> parts = split_chain(c.key);
      const std::string type =
          chain_type(fn_, locals_, st_, parts, parts.size());
      if (type.find("map") != std::string::npos) continue;  // keyed, not OOB
      const std::size_t close = match_close(t_, c.end, "[", "]", stmt.end);
      check_sink(s, c.end + 1, close, t_[c.end].line,
                 "index into '" + c.key + "'");
    }
  }

  void visit_branch(const AbsState& s, const CfgBlock& b) override {
    if (!b.loop_head) return;
    for (const ChainRef& c : chains_in(t_, b.cond_begin, b.cond_end)) {
      if (level(s, c.key) != kTainted) continue;
      if (line_annotated(*fn_.file, t_[c.begin].line, "taint:ok")) continue;
      out_.push_back(make(
          kRuleInputTaint, fn_.file->path, t_[c.begin].line, fn_.qualified,
          "loop bound '" + c.key +
              "' comes from untrusted input with no dominating bound check "
              "— an attacker picks the trip count (check against a cap or "
              "remaining() first; /*taint:ok: reason*/ if audited)"));
      return;
    }
  }

 private:
  const SymFn& fn_;
  const Symtab& st_;
  std::map<std::string, LocalVar> locals_;
  std::vector<Finding>& out_;
  const std::vector<Token>& t_;

  /// Effective taint of a chain: the most specific tracked prefix wins, so
  /// sanitizing `arr.items.size` beats the taint on `arr`.
  static int level(const AbsState& s, const std::string& key) {
    std::string probe = key;
    for (;;) {
      auto it = s.find("t:" + probe);
      if (it != s.end()) return it->second;
      const std::size_t dot = probe.rfind('.');
      if (dot == std::string::npos) return 0;
      probe.resize(dot);
    }
  }

  std::size_t find_assign(const CfgStmt& stmt) const {
    int depth = 0;
    for (std::size_t k = stmt.begin; k < stmt.end; ++k) {
      if (t_[k].kind != Tok::Punct) continue;
      const std::string& s = t_[k].text;
      if (s == "(" || s == "[" || s == "{") ++depth;
      if (s == ")" || s == "]" || s == "}") --depth;
      if (depth == 0 &&
          is_one_of(s, {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
                        "<<=", ">>="})) {
        return k;
      }
    }
    return stmt.end;
  }

  std::string assign_target(const CfgStmt& stmt, std::size_t op) const {
    std::size_t p = op;
    if (p == stmt.begin) return "";
    --p;
    // Hop back over a subscript: `buf[i] = x` targets `buf`.
    if (t_[p].kind == Tok::Punct && t_[p].text == "]") {
      int depth = 0;
      while (p > stmt.begin) {
        if (t_[p].kind == Tok::Punct && t_[p].text == "]") ++depth;
        if (t_[p].kind == Tok::Punct && t_[p].text == "[" && --depth == 0) {
          if (p == stmt.begin) return "";
          --p;
          break;
        }
        --p;
      }
    }
    if (t_[p].kind != Tok::Ident) return "";
    // Walk back to the chain head.
    std::size_t cs = p;
    while (cs >= stmt.begin + 2 && t_[cs - 1].kind == Tok::Punct &&
           (t_[cs - 1].text == "." || t_[cs - 1].text == "->") &&
           t_[cs - 2].kind == Tok::Ident) {
      cs -= 2;
    }
    ChainRef c;
    if (!parse_chain(t_, cs, op, c)) return "";
    return c.key;
  }

  // Sources are only scanned in taint-scope files (rule_input_taint skips
  // the rest wholesale), so every call here is potentially a source.
  bool is_source(const AbsState& s, const ChainRef& c) const {
    if (!c.is_call) return false;
    const std::vector<std::string> parts = split_chain(c.key);
    const std::string& last = parts.back();
    if (parts.size() == 1) return last == "json_parse";
    if (json_accessors().count(last) != 0) return true;
    if (reader_writer_prims().count(last) != 0) {
      const std::string base =
          chain_type(fn_, locals_, st_, parts, parts.size() - 1);
      return base.find("StateReader") != std::string::npos;
    }
    if (last == "get" || last == "items" || last == "fields") {
      const std::string base =
          chain_type(fn_, locals_, st_, parts, parts.size() - 1);
      if (base.find("Json") != std::string::npos) return true;
    }
    // Derived from a tainted base — unless a bound check downgraded the
    // chain itself (kBounded falls through to level() in eval_range).
    return level(s, c.key) == kTainted;
  }

  int eval_range(const AbsState& s, std::size_t b, std::size_t e) const {
    int lvl = 0;
    for (std::size_t k = b; k < e;) {
      ChainRef c;
      if (!parse_chain(t_, k, e, c)) {
        ++k;
        continue;
      }
      k = c.end;
      if (is_source(s, c)) {
        lvl = std::max(lvl, kTainted);
      } else {
        lvl = std::max(lvl, level(s, c.key));
        // A non-source free function owns its return value: taint does not
        // flow through call results intra-procedurally (send_frame(tainted)
        // yields a clean bool), so its argument range is skipped. Member
        // calls keep the receiver's taint via level() above.
        if (c.is_call && c.key.find('.') == std::string::npos && k < e) {
          k = match_close(t_, k, "(", ")", e);
          if (k < e) ++k;
        }
      }
      if (lvl == kTainted) break;
    }
    if (lvl == kTainted && range_has_call(t_, b, e, {"min", "clamp"})) {
      lvl = kBounded;  // std::min(n, cap) bounds the value inline
    }
    return lvl;
  }

  void check_sink(const AbsState& s, std::size_t b, std::size_t e, int line,
                  const std::string& what) {
    if (eval_range(s, b, e) != kTainted) return;
    if (line_annotated(*fn_.file, line, "taint:ok")) return;
    out_.push_back(make(
        kRuleInputTaint, fn_.file->path, line, fn_.qualified,
        what + " comes from untrusted input with no dominating bound check "
              "— validate against a protocol cap (or remaining()) before "
              "sizing memory (/*taint:ok: reason*/ if audited)"));
  }
};

}  // namespace

void rule_input_taint(const Symtab& st, CfgCache& cfgs,
                      const std::vector<std::string>& taint_scopes,
                      std::vector<Finding>& out) {
  for (const SymFn& fn : st.fns) {
    if (fn.def->body_end <= fn.def->body_begin) continue;
    bool in_scope = taint_scopes.empty();
    for (const std::string& scope : taint_scopes) {
      if (fn.file->path.find(scope) != std::string::npos) in_scope = true;
    }
    if (!in_scope) continue;  // no sources -> nothing can reach a sink

    const Cfg& cfg = cfgs.get(fn);
    TaintDomain d(fn, st, scan_locals(fn), out);
    const AbsResult r = solve(cfg, d);
    report(cfg, d, r);
  }
}

// ---- R11: narrowing-cast --------------------------------------------------

namespace {

bool is_narrow_type(const std::vector<Token>& t, std::size_t b,
                    std::size_t e) {
  bool narrow = false;
  for (std::size_t k = b; k < e; ++k) {
    if (t[k].kind != Tok::Ident) continue;
    const std::string& s = t[k].text;
    if (is_one_of(s, {"uint64_t", "int64_t", "size_t", "long", "double",
                      "float", "ptrdiff_t", "intptr_t", "uintptr_t",
                      "time_t", "streamsize", "streamoff", "off_t", "Cycle",
                      "u64", "i64", "bool", "void"})) {
      return false;  // target is wide (or not an integer truncation)
    }
    if (is_one_of(s, {"uint32_t", "int32_t", "uint16_t", "int16_t",
                      "uint8_t", "int8_t", "int", "unsigned", "short",
                      "char", "u32", "u16", "u8", "i32", "i16", "i8"})) {
      narrow = true;
    }
  }
  return narrow;
}

class NarrowDomain : public Domain {
 public:
  NarrowDomain(const SymFn& fn, const Symtab& st,
               std::map<std::string, LocalVar> locals,
               std::vector<Finding>& out)
      : fn_(fn),
        st_(st),
        locals_(std::move(locals)),
        out_(out),
        t_(fn.file->ts.tokens) {}

  int join(const std::string&, int, int) const override { return 1; }
  int join_missing(const std::string&, int) const override { return kDrop; }

  void transfer(AbsState& s, const CfgStmt& stmt) override {
    // Assignments either establish a bound (masking / min / clamp), copy an
    // existing bound, or invalidate a stale one.
    int depth = 0;
    std::size_t op = stmt.end;
    for (std::size_t k = stmt.begin; k < stmt.end; ++k) {
      if (t_[k].kind != Tok::Punct) continue;
      const std::string& p = t_[k].text;
      if (p == "(" || p == "[" || p == "{") ++depth;
      if (p == ")" || p == "]" || p == "}") --depth;
      if (depth == 0 && p == "=") {
        op = k;
        break;
      }
    }
    if (op == stmt.end) return;
    ChainRef target;
    {
      std::size_t p = op - 1;
      if (t_[p].kind != Tok::Ident) return;
      std::size_t cs = p;
      while (cs >= stmt.begin + 2 && t_[cs - 1].kind == Tok::Punct &&
             (t_[cs - 1].text == "." || t_[cs - 1].text == "->") &&
             t_[cs - 2].kind == Tok::Ident) {
        cs -= 2;
      }
      if (!parse_chain(t_, cs, op, target)) return;
    }
    const bool bounded =
        range_has_punct(t_, op + 1, stmt.end, {">>", "&", "%"}) ||
        range_has_call(t_, op + 1, stmt.end, {"min", "clamp"});
    if (bounded) {
      s["c:" + target.key] = 1;
      return;
    }
    const std::vector<ChainRef> rhs = chains_in(t_, op + 1, stmt.end);
    if (rhs.size() == 1 && !rhs[0].is_call &&
        s.count("c:" + rhs[0].key) != 0) {
      s["c:" + target.key] = 1;  // bound propagates through a plain copy
    } else {
      s.erase("c:" + target.key);
    }
  }

  void transfer_branch(AbsState& s, const CfgBlock& b, bool) override {
    if (!range_has_punct(t_, b.cond_begin, b.cond_end, kComparisons)) return;
    for (const ChainRef& c : chains_in(t_, b.cond_begin, b.cond_end)) {
      s["c:" + c.key] = 1;
    }
  }

  void visit(const AbsState& s, const CfgStmt& stmt) override {
    for (std::size_t k = stmt.begin; k + 1 < stmt.end; ++k) {
      if (t_[k].kind != Tok::Ident || t_[k].text != "static_cast") continue;
      if (t_[k + 1].kind != Tok::Punct || t_[k + 1].text != "<") continue;
      const std::size_t tclose = match_close(t_, k + 1, "<", ">", stmt.end);
      if (tclose >= stmt.end || !is_narrow_type(t_, k + 2, tclose)) continue;
      if (tclose + 1 >= stmt.end || t_[tclose + 1].kind != Tok::Punct ||
          t_[tclose + 1].text != "(") {
        continue;
      }
      const std::size_t close =
          match_close(t_, tclose + 1, "(", ")", stmt.end);
      const std::size_t eb = tclose + 2;
      // Masking, shifting, and modulo are the sanctioned truncation idioms;
      // bit-position functions are bounded by the operand width by
      // construction.
      if (range_has_punct(t_, eb, close, {">>", "&", "%"})) continue;
      if (range_has_call(t_, eb, close,
                         {"min", "clamp", "countr_zero", "countl_zero",
                          "popcount", "bit_width"})) {
        continue;
      }

      bool wide = false;
      bool all_checked = true;
      std::string culprit;
      int bdepth = 0;
      for (std::size_t j = eb; j < close;) {
        // Chains inside a subscript index the container; the cast truncates
        // the element, not them.
        if (t_[j].kind == Tok::Punct) {
          if (t_[j].text == "[") ++bdepth;
          if (t_[j].text == "]") --bdepth;
        }
        ChainRef c;
        if (bdepth > 0 || !parse_chain(t_, j, close, c)) {
          ++j;
          continue;
        }
        j = c.end;
        const std::vector<std::string> parts = split_chain(c.key);
        bool w = false;
        if (c.is_call) {
          w = is_one_of(parts.back(),
                        {"size", "length", "remaining", "count", "u64",
                         "i64"});
          // The call's *result* is the cast operand; its arguments are not
          // truncated. Hop the argument list so a wide index passed into
          // `policy_->victim(set)` does not flag the cast of the return.
          if (j < close && t_[j].kind == Tok::Punct && t_[j].text == "(") {
            j = match_close(t_, j, "(", ")", close);
            if (j < close) ++j;
          }
        } else {
          const std::string type =
              chain_type(fn_, locals_, st_, parts, parts.size());
          if (type.empty()) continue;  // unknown: stay quiet
          w = type_has_word(type, "uint64_t") ||
              type_has_word(type, "int64_t") ||
              type_has_word(type, "size_t") || type_has_word(type, "long") ||
              type_has_word(type, "Cycle") || type_has_word(type, "u64") ||
              type_has_word(type, "i64");
          // constexpr only: a `const` local can still hold a value the
          // reader or a peer controls.
          if (w && type_has_word(type, "constexpr")) {
            continue;  // named constants are author-bounded
          }
        }
        if (!w) continue;
        wide = true;
        if (s.count("c:" + c.key) == 0 &&
            !checked_in_stmt(stmt, eb, close, c.key)) {
          all_checked = false;
          if (culprit.empty()) culprit = c.key;
        }
      }
      if (!wide || all_checked) continue;
      if (line_annotated(*fn_.file, t_[k].line, "narrow:ok")) continue;
      out_.push_back(make(
          kRuleNarrowingCast, fn_.file->path, t_[k].line, fn_.qualified,
          "narrowing cast of 64-bit value '" + culprit +
              "' with no dominating range check — values past the narrow "
              "type wrap silently (check against a cap first, mask the "
              "intended bits, or /*narrow:ok: reason*/)"));
    }
  }

 private:
  /// Same-statement comparison against `key`, outside the cast expression
  /// [eb, close). Catches checks the CFG cannot see as dominating blocks:
  /// the guard arm of a ternary and range checks inside an opaque lambda
  /// body (`if (wide > cap) return false; *out = static_cast<u32>(wide);`).
  bool checked_in_stmt(const CfgStmt& stmt, std::size_t eb, std::size_t close,
                       const std::string& key) const {
    for (std::size_t k = stmt.begin; k < stmt.end;) {
      if (k >= eb && k < close) {
        k = close;
        continue;
      }
      ChainRef c;
      if (!parse_chain(t_, k, stmt.end, c)) {
        ++k;
        continue;
      }
      k = c.end;
      if (c.key != key) continue;
      if (c.begin > stmt.begin && t_[c.begin - 1].kind == Tok::Punct &&
          is_one_of(t_[c.begin - 1].text, kComparisons)) {
        return true;
      }
      std::size_t r = c.end;  // hop a call's argument parens
      if (c.is_call && r < stmt.end) {
        r = match_close(t_, r, "(", ")", stmt.end);
        if (r < stmt.end) ++r;
      }
      if (r < stmt.end && t_[r].kind == Tok::Punct &&
          is_one_of(t_[r].text, kComparisons)) {
        return true;
      }
    }
    return false;
  }

  const SymFn& fn_;
  const Symtab& st_;
  std::map<std::string, LocalVar> locals_;
  std::vector<Finding>& out_;
  const std::vector<Token>& t_;
};

}  // namespace

void rule_narrowing_cast(const Symtab& st, CfgCache& cfgs,
                         std::vector<Finding>& out) {
  for (const SymFn& fn : st.fns) {
    if (fn.def->body_end <= fn.def->body_begin) continue;
    if (fn.def->body_idents.count("static_cast") == 0) continue;
    const Cfg& cfg = cfgs.get(fn);
    NarrowDomain d(fn, st, scan_locals(fn), out);
    const AbsResult r = solve(cfg, d);
    report(cfg, d, r);
  }
}

}  // namespace gpuqos::lint
