// Per-function dataflow helpers for the semantic rules (R5/R6/R7): local
// declaration scanning, type classification, RAII-lock detection, and
// annotation lookup. All heuristics over the flat token stream — precise
// enough for the project's house style, over-approximate elsewhere.
#pragma once

#include <map>
#include <string>

#include "symtab.hpp"

namespace gpuqos::lint {

struct LocalVar {
  std::string type;  // space-joined declaration tokens
  int line = 0;
  bool is_param = false;
};

/// Parameters plus block-scope `Type name ...;` declarations recovered from
/// the function body by a statement-head heuristic. Returns an empty map for
/// bodyless functions (declarations, macro pseudo-functions).
[[nodiscard]] std::map<std::string, LocalVar> scan_locals(const SymFn& fn);

// Type-string classifiers over the parser's space-joined token strings.
[[nodiscard]] bool type_is_unordered(const std::string& type);
[[nodiscard]] bool type_is_float(const std::string& type);
[[nodiscard]] bool type_is_mutex(const std::string& type);
/// std::map / std::set (and multi- variants) keyed by a raw pointer: the
/// iteration order is the allocator's, different run to run under ASLR.
[[nodiscard]] bool type_is_ptr_keyed_ordered(const std::string& type);

/// Whether the body constructs an RAII lock (std::lock_guard, scoped_lock,
/// unique_lock, shared_lock).
[[nodiscard]] bool body_has_raii_lock(const SymFn& fn);

/// Whether a comment containing `tag` sits on `line` or on an own-line
/// comment directly above it — the escape-hatch placement rule for
/// /*det:ok: ...*/, /*cap:ok: ...*/ and /*own:...*/ annotations.
[[nodiscard]] bool line_annotated(const ParsedFile& pf, int line,
                                  const char* tag);

/// Resolve the declared type of `name` inside `fn`: locals/params first,
/// then fields of the enclosing class, then namespace-scope variables of the
/// defining file. Empty when unknown.
[[nodiscard]] std::string resolve_type(
    const SymFn& fn, const std::map<std::string, LocalVar>& locals,
    const Symtab& st, const std::string& name);

}  // namespace gpuqos::lint
