#include "lint.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <sstream>
#include <thread>

#include "ast.hpp"
#include "rules.hpp"

namespace gpuqos::lint {

const std::vector<std::string>& all_rules() {
  static const std::vector<std::string> kRules = {
      kRuleStateCoverage, kRuleThreadPurity,  kRuleCheckHygiene,
      kRuleHeaderHygiene, kRuleDetHazard,     kRuleConcurrency,
      kRuleEventCapture,  kRuleStateOrder,    kRuleLockDiscipline,
      kRuleInputTaint,    kRuleNarrowingCast};
  return kRules;
}

// ---- ParseCache -----------------------------------------------------------

ParseCache::ParseCache() = default;
ParseCache::~ParseCache() = default;

std::shared_ptr<const ParsedFile> ParseCache::lookup(
    const std::string& path, std::uint64_t stamp) const {
  if (stamp == 0) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(path);
  if (it == entries_.end() || it->second.stamp != stamp) return nullptr;
  return it->second.pf;
}

void ParseCache::store(const std::string& path, std::uint64_t stamp,
                       std::shared_ptr<const ParsedFile> pf) {
  if (stamp == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  entries_[path] = Entry{stamp, std::move(pf)};
}

std::size_t ParseCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::string fingerprint(const Finding& f) {
  return f.rule + "|" + f.file + "|" +
         (f.symbol.empty() ? f.message : f.symbol);
}

namespace {

/// Per-file suppression index built from `NOLINT-gpuqos(...)` comments.
struct Suppressions {
  // line -> rules suppressed on that line (and, for own-line comments, the
  // following line).
  std::map<int, std::set<std::string>> by_line;
  std::set<std::string> whole_file;

  [[nodiscard]] bool covers(const Finding& f) const {
    if (whole_file.count(f.rule) != 0 || whole_file.count("*") != 0) {
      return true;
    }
    auto it = by_line.find(f.line);
    if (it == by_line.end()) return false;
    return it->second.count(f.rule) != 0 || it->second.count("*") != 0;
  }
};

void add_rules(std::set<std::string>& dst, const std::string& list) {
  std::stringstream ss(list);
  std::string rule;
  while (std::getline(ss, rule, ',')) {
    const std::size_t b = rule.find_first_not_of(" \t");
    const std::size_t e = rule.find_last_not_of(" \t");
    if (b != std::string::npos) dst.insert(rule.substr(b, e - b + 1));
  }
}

Suppressions collect_suppressions(const ParsedFile& pf) {
  Suppressions s;
  static const std::string kFileMark = "NOLINT-gpuqos-file(";
  static const std::string kLineMark = "NOLINT-gpuqos(";
  // An own-line suppression covers the next line holding code, so a NOLINT
  // explanation may span several comment lines above the declaration.
  std::vector<int> code_lines;
  for (const Token& t : pf.ts.tokens) {
    if (t.kind != Tok::Eof && t.starts_line) code_lines.push_back(t.line);
  }
  auto next_code_line = [&](int line) {
    auto it = std::upper_bound(code_lines.begin(), code_lines.end(), line);
    return it != code_lines.end() ? *it : line + 1;
  };
  for (const Comment& c : pf.ts.comments) {
    for (std::size_t pos = 0;
         (pos = c.text.find("NOLINT-gpuqos", pos)) != std::string::npos;) {
      const bool file_wide =
          c.text.compare(pos, kFileMark.size(), kFileMark) == 0;
      const std::size_t open = c.text.find('(', pos);
      if (open == std::string::npos) break;
      const std::size_t close = c.text.find(')', open);
      if (close == std::string::npos) break;
      const std::string rules = c.text.substr(open + 1, close - open - 1);
      if (file_wide) {
        add_rules(s.whole_file, rules);
      } else {
        add_rules(s.by_line[c.line], rules);
        // A comment on its own line suppresses the declaration below it.
        if (c.own_line) add_rules(s.by_line[next_code_line(c.line)], rules);
      }
      pos = close;
    }
  }
  return s;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

LintResult run_lint(const std::vector<SourceFile>& files,
                    const LintOptions& opts) {
  std::vector<FileInput> inputs;
  inputs.reserve(files.size());
  for (const SourceFile& f : files) {
    inputs.push_back(FileInput{f.path, f.content, 0});  // stamp 0: no caching
  }
  ParseCache throwaway;
  return run_lint_cached(inputs, throwaway, opts);
}

LintResult run_lint_cached(const std::vector<FileInput>& files,
                           ParseCache& cache, const LintOptions& opts) {
  using clock = std::chrono::steady_clock;
  auto millis_since = [](clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(clock::now() - t0)
        .count();
  };
  auto enabled = [&](const char* rule) {
    return opts.rules.empty() || opts.rules.count(rule) != 0;
  };

  LintResult result;

  // Parse phase: workers pull indices off a shared counter and write into
  // preallocated slots, so the parsed order (and therefore every downstream
  // ordering) is identical to a sequential run.
  const auto parse_t0 = clock::now();
  std::vector<std::shared_ptr<const ParsedFile>> parsed(files.size());
  std::atomic<std::size_t> next{0};
  std::atomic<int> hits{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= files.size()) return;
      const FileInput& f = files[i];
      if (auto hit = cache.lookup(f.path, f.stamp)) {
        parsed[i] = std::move(hit);
        hits.fetch_add(1);
        continue;
      }
      auto pf =
          std::make_shared<const ParsedFile>(parse(f.path, lex(f.content)));
      cache.store(f.path, f.stamp, pf);
      parsed[i] = std::move(pf);
    }
  };
  unsigned nthreads = opts.threads != 0
                          ? opts.threads
                          : std::min(8u, std::thread::hardware_concurrency());
  nthreads = std::max(1u, std::min<unsigned>(nthreads, files.size()));
  if (nthreads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(nthreads);
    for (unsigned k = 0; k < nthreads; ++k) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  result.parse_millis = millis_since(parse_t0);
  result.cache_hits = hits.load();
  // A lint invocation's file list is nowhere near INT_MAX.
  result.files_parsed =
      static_cast<int>(files.size()) - result.cache_hits;  /*narrow:ok*/

  std::vector<const ParsedFile*> view;
  view.reserve(parsed.size());
  for (const auto& pf : parsed) view.push_back(pf.get());

  std::vector<Finding> raw;
  auto timed = [&](const char* rule, auto&& run) {
    if (!enabled(rule)) return;
    const auto t0 = clock::now();
    const std::size_t before = raw.size();
    run();
    result.rule_stats.push_back(RuleStat{
        rule, millis_since(t0),
        static_cast<int>(raw.size() - before)});  /*narrow:ok*/ // delta: small
  };
  timed(kRuleStateCoverage, [&] { rule_state_coverage(view, raw); });
  timed(kRuleThreadPurity,
        [&] { rule_thread_purity(view, opts.purity_roots, raw); });
  timed(kRuleCheckHygiene, [&] {
    for (const ParsedFile* pf : view) rule_check_hygiene(*pf, raw);
  });
  timed(kRuleHeaderHygiene, [&] {
    for (const ParsedFile* pf : view) rule_header_hygiene(*pf, raw);
  });

  // The semantic rules (R5-R11) share one symbol table + call graph; its
  // construction cost is reported as a pseudo-rule in the stats table. The
  // flow rules (R9-R11) additionally share per-function CFGs, likewise
  // reported as a pseudo-rule ("(cfg)" covers nothing on its own: each CFG
  // is built lazily by the first flow rule that needs it, so the build cost
  // lands inside that rule's own timing).
  if (enabled(kRuleDetHazard) || enabled(kRuleConcurrency) ||
      enabled(kRuleEventCapture) || enabled(kRuleStateOrder) ||
      enabled(kRuleLockDiscipline) || enabled(kRuleInputTaint) ||
      enabled(kRuleNarrowingCast)) {
    const auto t0 = clock::now();
    const Symtab st = build_symtab(view);
    const CallGraph cg = build_callgraph(st);
    result.rule_stats.push_back(
        RuleStat{"(symtab+callgraph)", millis_since(t0), 0});
    timed(kRuleDetHazard,
          [&] { rule_det_hazard(st, cg, opts.det_roots, raw); });
    timed(kRuleConcurrency, [&] {
      rule_concurrency_discipline(st, cg, opts.purity_roots, raw);
    });
    timed(kRuleEventCapture,
          [&] { rule_event_capture(st, opts.event_calls, raw); });
    CfgCache cfgs;
    timed(kRuleStateOrder, [&] { rule_state_order(st, raw); });
    timed(kRuleLockDiscipline,
          [&] { rule_lock_discipline(st, cfgs, raw); });
    timed(kRuleInputTaint,
          [&] { rule_input_taint(st, cfgs, opts.taint_scopes, raw); });
    timed(kRuleNarrowingCast,
          [&] { rule_narrowing_cast(st, cfgs, raw); });
  }

  std::map<std::string, Suppressions> by_file;
  for (const ParsedFile* pf : view) {
    by_file.emplace(pf->path, collect_suppressions(*pf));
  }

  for (Finding& f : raw) {
    auto it = by_file.find(f.file);
    if (it != by_file.end() && it->second.covers(f)) {
      ++result.nolint_suppressed;
    } else {
      result.findings.push_back(std::move(f));
    }
  }
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  return result;
}

std::set<std::string> parse_baseline(const std::string& text) {
  std::set<std::string> out;
  std::stringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t b = line.find_first_not_of(" \t");
    if (b == std::string::npos || line[b] == '#') continue;
    const std::size_t e = line.find_last_not_of(" \t");
    out.insert(line.substr(b, e - b + 1));
  }
  return out;
}

void apply_baseline(LintResult& result,
                    const std::set<std::string>& baseline) {
  std::vector<Finding> kept;
  for (Finding& f : result.findings) {
    if (baseline.count(fingerprint(f)) != 0) {
      ++result.baseline_filtered;
    } else {
      kept.push_back(std::move(f));
    }
  }
  result.findings = std::move(kept);
}

std::string to_baseline(const LintResult& result) {
  std::set<std::string> prints;
  for (const Finding& f : result.findings) prints.insert(fingerprint(f));
  std::string out =
      "# gpuqos-lint baseline: one `rule|file|symbol` fingerprint per line.\n"
      "# Findings listed here are reported as 'baselined' and do not fail\n"
      "# the lint; burn them down instead of adding to them. Regenerate a\n"
      "# fingerprint with: gpuqos_lint --write-baseline=<file> <paths>.\n";
  for (const std::string& p : prints) out += p + "\n";
  return out;
}

std::string format_human(const LintResult& result) {
  std::string out;
  for (const Finding& f : result.findings) {
    out += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.message + "\n";
  }
  out += std::to_string(result.findings.size()) + " finding(s)";
  if (result.nolint_suppressed > 0) {
    out += ", " + std::to_string(result.nolint_suppressed) +
           " suppressed by NOLINT";
  }
  if (result.baseline_filtered > 0) {
    out += ", " + std::to_string(result.baseline_filtered) + " baselined";
  }
  out += "\n";
  return out;
}

std::string format_json(const LintResult& result) {
  std::string out = "{\n  \"findings\": [";
  bool first = true;
  for (const Finding& f : result.findings) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"rule\": \"" + json_escape(f.rule) + "\", \"file\": \"" +
           json_escape(f.file) + "\", \"line\": " + std::to_string(f.line) +
           ", \"symbol\": \"" + json_escape(f.symbol) +
           "\", \"message\": \"" + json_escape(f.message) + "\"}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"count\": " + std::to_string(result.findings.size()) +
         ",\n  \"nolint_suppressed\": " +
         std::to_string(result.nolint_suppressed) +
         ",\n  \"baseline_filtered\": " +
         std::to_string(result.baseline_filtered) + "\n}\n";
  return out;
}

std::string format_github(const LintResult& result) {
  std::string out;
  for (const Finding& f : result.findings) {
    out += "::error file=" + f.file + ",line=" + std::to_string(f.line) +
           ",title=gpuqos-lint(" + f.rule + ")::" + f.message + "\n";
  }
  return out;
}

std::string format_sarif(const LintResult& result) {
  std::string out =
      "{\n"
      "  \"$schema\": "
      "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
      "Schemata/sarif-schema-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"gpuqos-lint\",\n"
      "          \"informationUri\": \"docs/ANALYSIS.md\",\n"
      "          \"rules\": [";
  bool first = true;
  for (const std::string& rule : all_rules()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "            {\"id\": \"" + json_escape(rule) + "\"}";
  }
  out += first ? "]\n" : "\n          ]\n";
  out +=
      "        }\n"
      "      },\n"
      "      \"results\": [";
  first = true;
  for (const Finding& f : result.findings) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "        {\"ruleId\": \"" + json_escape(f.rule) +
           "\", \"level\": \"error\", \"message\": {\"text\": \"" +
           json_escape(f.message) +
           "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \"" +
           json_escape(f.file) +
           "\"}, \"region\": {\"startLine\": " + std::to_string(f.line) +
           "}}}], \"partialFingerprints\": {\"gpuqosLintFingerprint/v1\": "
           "\"" +
           json_escape(fingerprint(f)) + "\"}}";
  }
  out += first ? "]\n" : "\n      ]\n";
  out +=
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

std::string format_stats(const LintResult& result) {
  char buf[160];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "parse: %.1f ms (%d parsed, %d cache hit%s)\n",
                result.parse_millis, result.files_parsed, result.cache_hits,
                result.cache_hits == 1 ? "" : "s");
  out += buf;
  out += "rule                       ms  findings\n";
  for (const RuleStat& rs : result.rule_stats) {
    std::snprintf(buf, sizeof buf, "%-22s %7.1f  %8d\n", rs.rule.c_str(),
                  rs.millis, rs.findings);
    out += buf;
  }
  return out;
}

}  // namespace gpuqos::lint
