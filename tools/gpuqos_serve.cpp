// gpuqos_serve: simulation-as-a-service daemon (docs/SERVICE.md).
//
// Listens on a Unix-domain socket for batches of sweep jobs, executes them on
// the shared run_many pool, dedupes against a persistent content-addressed
// result store, and forks hot jobs from a warm checkpoint cache so only the
// measured phase simulates on a cache hit. SIGTERM/SIGINT drain gracefully:
// in-flight batches finish (and persist), then the daemon exits 0.

#include <csignal>
#include <cstdio>

#include "common/cli.hpp"
#include "svc/options.hpp"
#include "svc/server.hpp"

namespace {

gpuqos::svc::Server* g_server = nullptr;

extern "C" void handle_stop(int) {
  if (g_server != nullptr) g_server->request_stop();  // async-signal-safe
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gpuqos;

  svc::ExecFlags exec_flags;
  exec_flags.store_dir = "gpuqos_store";  // daemon default: persist results
  svc::ServerOptions server_opts;
  server_opts.socket_path = "gpuqos_serve.sock";

  cli::OptionSet opts(
      "[--socket PATH] [--store-dir DIR] [--warm-cache-max BYTES] ...",
      "Simulation service daemon. Submit batches with gpuqos_submit or any\n"
      "harness built on svc::Client (--socket / GPUQOS_SERVE_SOCKET).");
  opts.str("--socket", "PATH", "Unix socket to listen on",
           &server_opts.socket_path);
  svc::register_exec_flags(opts, exec_flags);
  opts.f64("--io-timeout", "SECONDS",
           "per-connection socket send/receive timeout (0 = none)",
           &server_opts.io_timeout_s);
  opts.str("--binlog", "FILE",
           "write a svc.jobs lifecycle binlog on shutdown (obs_cat readable)",
           &server_opts.binlog_path);

  std::vector<const char*> positional;
  opts.parse(argc, argv, positional);
  if (!positional.empty()) {
    std::fprintf(stderr, "%s: unexpected argument '%s'\n", argv[0],
                 positional.front());
    opts.print_help(stderr, argv[0]);
    return 2;
  }

  try {
    svc::Executor exec(exec_flags.to_options());
    svc::Server server(exec, server_opts);
    g_server = &server;
    std::signal(SIGTERM, handle_stop);
    std::signal(SIGINT, handle_stop);

    server.start();
    std::fprintf(stderr,
                 "[gpuqos_serve] listening on %s (store: %s, warm cache: "
                 "%llu bytes)\n",
                 server_opts.socket_path.c_str(),
                 exec_flags.store_dir.empty() ? "<none>"
                                              : exec_flags.store_dir.c_str(),
                 static_cast<unsigned long long>(exec_flags.warm_cache_max));
    server.wait();
    g_server = nullptr;

    std::fprintf(
        stderr,
        "[gpuqos_serve] drained: %llu connections, %llu batches, "
        "%llu requests, %llu simulated, %llu warm forks, store %llu hits / "
        "%llu misses / %llu rejects\n",
        static_cast<unsigned long long>(server.connections()),
        static_cast<unsigned long long>(server.batches()),
        static_cast<unsigned long long>(exec.requests()),
        static_cast<unsigned long long>(exec.sim_runs()),
        static_cast<unsigned long long>(exec.warm_forks()),
        static_cast<unsigned long long>(exec.store().hits()),
        static_cast<unsigned long long>(exec.store().misses()),
        static_cast<unsigned long long>(exec.store().rejects()));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[gpuqos_serve] fatal: %s\n", e.what());
    return 1;
  }
}
