// Determinism comparator: diff two digest streams (gpuqos_run --digest-out)
// and pinpoint the first divergent cycle and module.
//
// Usage:
//   digest_diff [--from CYCLE] a.digest b.digest
//
// --from drops records before CYCLE from both streams, which is how the
// checkpoint determinism test (docs/CHECKPOINT.md) ignores the straight run's
// pre-resume prefix: a resumed run only replays cycles at or after the
// snapshot barrier, so only that suffix is expected to match.
//
// Exit status: 0 when the streams are identical, 1 on divergence, 2 on a
// usage or I/O error. See docs/ANALYSIS.md for the workflow.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "check/digest.hpp"
#include "common/cli.hpp"

using namespace gpuqos;

namespace {

bool load(const char* path, std::uint64_t from, std::vector<DigestRecord>& out) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "digest_diff: cannot open %s\n", path);
    return false;
  }
  out = parse_digest_stream(is);
  if (from > 0) {
    std::erase_if(out,
                  [from](const DigestRecord& r) { return r.cycle < from; });
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t from = 0;
  cli::OptionSet opts("[--from CYCLE] A.digest B.digest",
                      "exit status: 0 identical, 1 divergence, 2 usage/IO "
                      "error");
  opts.u64("--from", "CYCLE",
           "compare only records with cycle >= CYCLE (checkpoint-resume "
           "suffix comparison)", &from);
  std::vector<const char*> positional;
  opts.parse(argc, argv, positional);
  if (positional.size() != 2) {
    opts.print_help(stderr, argv[0]);
    return 2;
  }

  std::vector<DigestRecord> a, b;
  if (!load(positional[0], from, a) || !load(positional[1], from, b)) return 2;

  const auto div = first_divergence(a, b);
  if (!div.has_value()) {
    std::printf("identical: %zu records\n", a.size());
    return 0;
  }
  if (div->length_mismatch) {
    std::printf(
        "DIVERGED: stream lengths differ (%zu vs %zu records); "
        "first unmatched record #%zu at cycle %llu, module %s\n",
        a.size(), b.size(), div->index,
        static_cast<unsigned long long>(div->cycle), div->module.c_str());
    return 1;
  }
  std::printf("DIVERGED at record #%zu: cycle %llu, module %s\n", div->index,
              static_cast<unsigned long long>(div->cycle),
              div->module.c_str());
  // Context: show the mismatching pair plus each stream's surrounding lines.
  const DigestRecord& ra = a[div->index];
  const DigestRecord& rb = b[div->index];
  std::printf("  %s: %llu %s %016llx\n", positional[0],
              static_cast<unsigned long long>(ra.cycle), ra.module.c_str(),
              static_cast<unsigned long long>(ra.hash));
  std::printf("  %s: %llu %s %016llx\n", positional[1],
              static_cast<unsigned long long>(rb.cycle), rb.module.c_str(),
              static_cast<unsigned long long>(rb.hash));
  return 1;
}
