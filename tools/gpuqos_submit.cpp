// gpuqos_submit: batch client for gpuqos_serve (docs/SERVICE.md).
//
// Builds a batch (mixes x policies, budgets from RunScale::from_env so
// GPUQOS_FAST works as everywhere else), submits it through svc::Client —
// daemon when reachable, in-process otherwise — and prints one line per
// result. --dump writes key/digest/container-hex per job, which is what
// tests/serve_test.sh byte-compares across daemon kills and restarts.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "sim/runner.hpp"
#include "svc/client.hpp"
#include "svc/options.hpp"
#include "svc/protocol.hpp"

namespace {

std::vector<std::string> split_list(const char* s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(*p);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gpuqos;

  svc::ClientFlags client_flags;
  svc::ExecFlags exec_flags;
  std::vector<std::string> mixes = {"M1"};
  std::vector<std::string> policies = {"Baseline"};
  std::string preset = "scaled";
  std::uint64_t seed = 42;
  double target_fps = 40.0;
  std::string dump_path;
  bool local_only = false;
  bool quiet = false;

  cli::OptionSet opts(
      "[--mixes M1,M8] [--policies Baseline,Throttled] [--socket PATH] ...",
      "Batch client for gpuqos_serve. Budgets come from the environment\n"
      "(GPUQOS_FAST=1 for smoke scale). Exit 0 iff every job returned.");
  opts.custom("--mixes", "LIST", "comma-separated mix ids (default M1)",
              [&mixes](const char* v) {
                mixes = split_list(v);
                return !mixes.empty();
              });
  opts.custom("--policies", "LIST",
              "comma-separated policy names (default Baseline); 'all' = every "
              "policy",
              [&policies](const char* v) {
                if (std::strcmp(v, "all") == 0) {
                  policies.clear();
                  for (Policy p : all_policies()) policies.push_back(to_string(p));
                  return true;
                }
                policies = split_list(v);
                return !policies.empty();
              });
  opts.str("--preset", "NAME", "SimConfig preset: scaled | paper", &preset);
  opts.u64("--seed", "N", "simulation seed (default 42)", &seed);
  opts.f64("--target-fps", "FPS", "QoS target frame rate (default 40)",
           &target_fps);
  opts.str("--dump", "FILE",
           "write 'key digest hex-bytes' per job (byte-identity checks)",
           &dump_path);
  opts.flag("--local", "run in-process even when a daemon socket is set",
            &local_only);
  opts.flag("--quiet", "suppress per-job progress lines", &quiet);
  svc::register_client_flags(opts, client_flags);
  svc::register_exec_flags(opts, exec_flags);

  std::vector<const char*> positional;
  opts.parse(argc, argv, positional);
  if (!positional.empty()) {
    std::fprintf(stderr, "%s: unexpected argument '%s'\n", argv[0],
                 positional.front());
    return 2;
  }

  const RunScale scale = RunScale::from_env();
  std::vector<svc::JobSpec> jobs;
  for (const std::string& mix_id : mixes) {
    for (const std::string& policy : policies) {
      svc::JobSpec spec = svc::hetero_job(mix_id, policy, scale);
      spec.preset = preset;
      spec.seed = seed;
      spec.target_fps = target_fps;
      jobs.push_back(std::move(spec));
    }
  }

  try {
    std::unique_ptr<svc::Client> client;
    if (local_only) {
      client = std::make_unique<svc::Client>(exec_flags.to_options());
    } else {
      client = svc::Client::create(client_flags.socket, exec_flags.to_options());
    }
    std::fprintf(stderr, "[gpuqos_submit] %zu jobs via %s\n", jobs.size(),
                 client->remote() ? "daemon" : "in-process executor");

    svc::BatchStats stats;
    const std::vector<svc::JobResult> results = client->submit_batch(
        jobs,
        [quiet](std::size_t done, std::size_t total, const svc::JobResult& r) {
          if (quiet) return;
          std::fprintf(stderr, "  [%zu/%zu] %s %s %s (%s)\n", done, total,
                       r.spec.mix_id.c_str(), r.spec.policy.c_str(),
                       svc::u64_hex(r.digest).c_str(),
                       svc::to_string(r.source));
        },
        &stats);

    for (const svc::JobResult& r : results) {
      std::printf("%s %s %s %s fps=%.4f source=%s\n",
                  svc::job_key_hex(r.spec).c_str(), r.spec.mix_id.c_str(),
                  r.spec.policy.c_str(), svc::u64_hex(r.digest).c_str(),
                  r.result.fps, svc::to_string(r.source));
    }
    std::fprintf(stderr,
                 "[gpuqos_submit] done: %llu jobs, %llu store hits, %llu warm "
                 "forks, %llu cold, %llu in-batch dups\n",
                 static_cast<unsigned long long>(stats.jobs),
                 static_cast<unsigned long long>(stats.store_hits),
                 static_cast<unsigned long long>(stats.warm_forks),
                 static_cast<unsigned long long>(stats.cold_runs),
                 static_cast<unsigned long long>(stats.dup_jobs));

    if (!dump_path.empty()) {
      std::FILE* f = std::fopen(dump_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "%s: cannot open dump file '%s'\n", argv[0],
                     dump_path.c_str());
        return 1;
      }
      for (const svc::JobResult& r : results) {
        std::fprintf(f, "%s %s %s\n", svc::job_key_hex(r.spec).c_str(),
                     svc::u64_hex(r.digest).c_str(),
                     svc::hex_encode(r.bytes).c_str());
      }
      if (std::fclose(f) != 0) {
        std::fprintf(stderr, "%s: short write to '%s'\n", argv[0],
                     dump_path.c_str());
        return 1;
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[gpuqos_submit] error: %s\n", e.what());
    return 1;
  }
}
