// QoS controller trace: renders one high-FPS title under throttling and
// prints the controller's state every few control intervals — predicted FPS,
// the WG window, and whether the CPU-priority boost is active. Useful for
// understanding the Figure 6 feedback loop (and the learning/prediction
// phase alternation of Figure 4).
//
// Run: ./build/examples/qos_controller_trace
#include <cstdio>

#include "sim/hetero_cmp.hpp"
#include "workloads/gpu_apps.hpp"
#include "workloads/mixes.hpp"
#include "workloads/spec.hpp"

using namespace gpuqos;

int main() {
  const SimConfig cfg = Presets::scaled();
  const HeteroMix& m = mix("M7");  // DOOM3
  const auto& app = gpu_app(m.gpu_app);

  std::vector<SpecProfile> profiles;
  for (int id : m.cpu_specs) profiles.push_back(spec_profile(id));

  HeteroCmp cmp(cfg, Policy::ThrottleCpuPrio, profiles,
                build_frames(app, cfg.seed), app.fps_scale);
  cmp.gpu().set_repeat(true);

  std::printf("QoS controller trace — %s under ThrotCPUprio (target %.0f FPS)\n\n",
              app.name.c_str(), cfg.qos.target_fps);
  std::printf("%12s %8s %10s %12s %6s %9s %9s\n", "cycle(base)", "frames",
              "phase", "pred FPS", "WG", "cpu_prio", "relearns");

  const Cycle step = 2'000'000;
  for (int i = 0; i < 25; ++i) {
    cmp.engine().run_for(step);
    const QosSignals& sig = cmp.signals();
    std::printf("%12llu %8llu %10s %12.1f %6llu %9s %9llu\n",
                static_cast<unsigned long long>(cmp.engine().now()),
                static_cast<unsigned long long>(cmp.gpu().frames_completed()),
                cmp.frpu().predicting() ? "predict" : "learn",
                sig.predicted_fps,
                static_cast<unsigned long long>(cmp.atu().wg()),
                sig.cpu_prio_boost ? "on" : "off",
                static_cast<unsigned long long>(cmp.frpu().relearn_events()));
  }
  std::printf(
      "\nWG ramps up in +%u steps while the predicted FPS exceeds the\n"
      "target, relearning re-anchors the estimate under the new rate, and\n"
      "the frame rate settles just above %.0f FPS.\n",
      cfg.qos.wg_step, cfg.qos.target_fps);
  return 0;
}
