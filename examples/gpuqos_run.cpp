// Command-line driver: run any Table III mix under any policy and print the
// full result (FPS, per-app IPC, weighted speedup vs standalone, key memory
// system statistics). The --trace-out/--stats-json/--sample-interval family
// of flags switches on the observability layer (docs/OBSERVABILITY.md).
//
// Usage:
//   gpuqos_run [mix] [policy] [target_fps] [--flags...]
//   gpuqos_run M7 ThrotCPUprio 40
//   gpuqos_run W13 Baseline
//   gpuqos_run --trace-out run.json --stats-json stats.json
//              --sample-interval 100000
// Policies: Baseline Throttled ThrotCPUprio SMS-0.9 SMS-0 DynPrio HeLM
//           ForceBypass
// Observability flags:
//   --trace-out FILE        Chrome trace-event JSON (load in Perfetto)
//   --stats-json FILE       end-of-run StatRegistry + latency histograms
//   --sample-interval N     interval sampler period in base cycles
//   --samples-out FILE      sampler time-series (.jsonl, default samples.jsonl)
//   --journal-out FILE      QoS decision journal (.jsonl,
//                           default qos_journal.jsonl)
// Correctness-analysis flags (docs/ANALYSIS.md):
//   --check                 run the invariant auditors during the simulation
//   --check-interval N      audit period in base cycles (default 100000)
//   --digest-out FILE       per-module determinism digest stream; compare two
//                           runs with tools/digest_diff
//   --digest-interval N     digest sampling period in base cycles
//                           (default 100000 when --digest-out is given)
//   --pool N                run N identical copies of the simulation through
//                           the parallel sweep pool (sim/sweep.hpp; thread
//                           count via GPUQOS_THREADS), assert their digest
//                           streams agree, and report job 0 — the
//                           serial-vs-pooled determinism check
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "check/context.hpp"
#include "obs/telemetry.hpp"
#include "sim/metrics.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"

using namespace gpuqos;

namespace {

bool parse_policy(const char* name, Policy& out) {
  for (Policy p : {Policy::Baseline, Policy::Throttle, Policy::ThrottleCpuPrio,
                   Policy::Sms09, Policy::Sms0, Policy::DynPrio, Policy::Helm,
                   Policy::ForceBypass}) {
    if (to_string(p) == name) {
      out = p;
      return true;
    }
  }
  return false;
}

void usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [mix M1..M14|W1..W14] [policy] [target_fps]\n"
               "          [--trace-out FILE] [--stats-json FILE]\n"
               "          [--sample-interval CYCLES] [--samples-out FILE]\n"
               "          [--journal-out FILE]\n"
               "          [--check] [--check-interval CYCLES]\n"
               "          [--digest-out FILE] [--digest-interval CYCLES]\n"
               "          [--pool N]\n",
               prog);
  std::fprintf(stderr,
               "policies: Baseline Throttled ThrotCPUprio SMS-0.9 SMS-0 "
               "DynPrio HeLM ForceBypass\n");
}

/// Open `path` and run `emit(os)`; returns false (with a message) on failure.
template <typename Emit>
bool write_file(const std::string& path, Emit emit) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  emit(os);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out, stats_json_out, samples_out, journal_out;
  std::string digest_out;
  Cycle sample_interval = 0;
  Cycle check_interval = 0;
  Cycle digest_interval = 0;
  bool want_check = false;
  unsigned pool_jobs = 1;
  std::vector<const char*> positional;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto flag_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--trace-out") {
      trace_out = flag_value("--trace-out");
    } else if (arg == "--stats-json") {
      stats_json_out = flag_value("--stats-json");
    } else if (arg == "--sample-interval") {
      sample_interval = std::strtoull(flag_value("--sample-interval"),
                                      nullptr, 10);
    } else if (arg == "--samples-out") {
      samples_out = flag_value("--samples-out");
    } else if (arg == "--journal-out") {
      journal_out = flag_value("--journal-out");
    } else if (arg == "--check") {
      want_check = true;
    } else if (arg == "--check-interval") {
      check_interval = std::strtoull(flag_value("--check-interval"),
                                     nullptr, 10);
      want_check = true;
    } else if (arg == "--digest-out") {
      digest_out = flag_value("--digest-out");
    } else if (arg == "--digest-interval") {
      digest_interval = std::strtoull(flag_value("--digest-interval"),
                                      nullptr, 10);
    } else if (arg == "--pool") {
      pool_jobs = static_cast<unsigned>(
          std::strtoul(flag_value("--pool"), nullptr, 10));
      if (pool_jobs == 0) pool_jobs = 1;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    } else {
      positional.push_back(argv[i]);
    }
  }

  const bool want_telemetry = !trace_out.empty() || !stats_json_out.empty() ||
                              sample_interval > 0 || !samples_out.empty() ||
                              !journal_out.empty();
  if (sample_interval > 0 && samples_out.empty()) samples_out = "samples.jsonl";
  if (want_telemetry && journal_out.empty()) journal_out = "qos_journal.jsonl";

  // Default to a mix whose GPU comfortably exceeds the target frame rate so
  // the throttle/priority machinery (and its trace spans) actually engages.
  const char* mix_name = positional.size() > 0 ? positional[0] : "M8";
  const char* policy_name =
      positional.size() > 1 ? positional[1] : "ThrotCPUprio";
  Policy policy;
  if (!parse_policy(policy_name, policy)) {
    std::fprintf(stderr, "unknown policy: %s\n", policy_name);
    return 2;
  }

  SimConfig cfg = Presets::scaled();
  if (positional.size() > 2) cfg.qos.target_fps = std::atof(positional[2]);

  const HeteroMix* m;
  try {
    m = &mix(mix_name);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  if (m->cpu_specs.size() == 1) cfg.cpu_cores = 1;

  const RunScale scale = RunScale::from_env();
  std::printf("mix %s: GPU=%s, CPUs={", m->id.c_str(), m->gpu_app.c_str());
  for (int id : m->cpu_specs) std::printf(" %d", id);
  std::printf(" }, policy=%s, target=%.0f FPS\n\n", to_string(policy).c_str(),
              cfg.qos.target_fps);

  std::unique_ptr<Telemetry> telemetry;
  if (want_telemetry) {
    TelemetryOptions topts;
    topts.sample_interval = sample_interval;
    topts.capture_trace = !trace_out.empty();
    telemetry = std::make_unique<Telemetry>(topts);
  }

  CheckOptions copts;
  const bool with_check = want_check || !digest_out.empty();
  if (with_check) {
    if (check_interval > 0) {
      copts.audit_interval = check_interval;
    } else if (!want_check) {
      copts.audit_interval = 0;  // --digest-out alone: digests only
    }
    if (!digest_out.empty()) {
      copts.digest_interval = digest_interval > 0 ? digest_interval : 100'000;
    }
  }
  if (pool_jobs > 1 && want_telemetry) {
    std::fprintf(stderr, "--pool cannot be combined with telemetry flags\n");
    return 2;
  }

  std::unique_ptr<CheckContext> check;
  if (with_check && pool_jobs == 1) check = std::make_unique<CheckContext>(copts);

  const auto alone = standalone_ipcs(cfg, *m, scale);
  HeteroResult r;
  if (pool_jobs == 1) {
    r = run_hetero(cfg, *m, policy, scale, telemetry.get(), check.get());
  } else {
    // Pooled mode: N identical copies of this configuration run concurrently
    // through run_many (worker count from GPUQOS_THREADS). Every job carries
    // its own CheckContext; all digest streams must agree with job 0, which
    // becomes the reported run. tests/sweep_determinism_test.sh diffs this
    // against a serial run with tools/digest_diff.
    std::vector<std::unique_ptr<CheckContext>> checks;
    std::vector<std::function<HeteroResult()>> jobs;
    for (unsigned j = 0; j < pool_jobs; ++j) {
      checks.push_back(with_check ? std::make_unique<CheckContext>(copts)
                                  : nullptr);
      CheckContext* c = checks.back().get();
      jobs.push_back(
          [&cfg, m, policy, &scale, c] {
            return run_hetero(cfg, *m, policy, scale, nullptr, c);
          });
    }
    std::vector<HeteroResult> results = run_many(std::move(jobs));
    if (with_check) {
      const auto stream = [](const CheckContext& c) {
        std::ostringstream os;
        c.write_digests(os);
        return os.str();
      };
      const std::string want = stream(*checks[0]);
      for (unsigned j = 1; j < pool_jobs; ++j) {
        if (stream(*checks[j]) != want) {
          std::fprintf(stderr,
                       "pool job %u produced a digest stream diverging from "
                       "job 0 — pooled execution is not deterministic\n", j);
          return 1;
        }
      }
      std::printf("pool: %u jobs, digest streams identical\n\n", pool_jobs);
    }
    r = results[0];
    check = std::move(checks[0]);
  }

  std::printf("GPU: %.1f FPS (%.0f GPU cycles/frame)%s\n", r.fps,
              r.gpu_frame_cycles, r.hit_cycle_cap ? "  [hit cycle cap]" : "");
  std::printf("estimator: %llu samples, mean error %.2f%%, %llu relearns\n",
              static_cast<unsigned long long>(r.est_samples), r.est_error_pct,
              static_cast<unsigned long long>(r.est_relearns));
  std::printf("\n%-8s %12s %12s %10s\n", "core", "hetero IPC", "alone IPC",
              "ratio");
  for (std::size_t i = 0; i < r.cpu_ipc.size(); ++i) {
    std::printf("%d%-7s %12.3f %12.3f %10.3f\n", m->cpu_specs[i], "",
                r.cpu_ipc[i], alone[i],
                alone[i] > 0 ? r.cpu_ipc[i] / alone[i] : 0.0);
  }
  std::printf("weighted speedup: %.3f (of %zu)\n",
              weighted_speedup(r.cpu_ipc, alone), r.cpu_ipc.size());

  std::printf("\nmemory system (measurement window):\n");
  for (const char* key :
       {"llc.access.cpu", "llc.miss.cpu", "llc.access.gpu", "llc.miss.gpu",
        "dram.read_bytes.cpu", "dram.read_bytes.gpu", "dram.write_bytes.gpu",
        "dram.row_hits", "dram.row_misses", "gpu.gmi_throttled_cycles"}) {
    std::printf("  %-26s %12llu\n", key,
                static_cast<unsigned long long>(r.stat(key)));
  }

  if (telemetry != nullptr) {
    std::printf("\nobservability:\n");
    if (!trace_out.empty() &&
        write_file(trace_out,
                   [&](std::ostream& os) { telemetry->trace().write(os); })) {
      std::printf("  trace          %s (%zu events)\n", trace_out.c_str(),
                  telemetry->trace().size());
    }
    if (!stats_json_out.empty() &&
        write_file(stats_json_out, [&](std::ostream& os) {
          os << "{\"stats\":" << telemetry->stats_json()
             << ",\"latency_histograms\":" << telemetry->histograms_json()
             << "}\n";
        })) {
      std::printf("  stats          %s\n", stats_json_out.c_str());
    }
    if (!samples_out.empty() &&
        write_file(samples_out, [&](std::ostream& os) {
          telemetry->sampler().write_jsonl(os);
        })) {
      std::printf("  time-series    %s (%zu intervals)\n", samples_out.c_str(),
                  telemetry->sampler().samples().size());
    }
    if (!journal_out.empty() &&
        write_file(journal_out, [&](std::ostream& os) {
          telemetry->journal().write_jsonl(os);
        })) {
      std::printf("  qos journal    %s (%zu entries)\n", journal_out.c_str(),
                  telemetry->journal().entries().size());
    }
    // Fig.-8-style prediction-error report straight from the journal: it must
    // agree with the estimator line above (same samples, same math).
    const QosJournal& j = telemetry->journal();
    std::printf(
        "  journal report: %llu predictions, mean error %.2f%% "
        "(|err| %.2f%%), %llu WG transitions, %llu CPU-priority flips\n",
        static_cast<unsigned long long>(j.predictions()),
        j.mean_prediction_error_pct(), j.mean_abs_prediction_error_pct(),
        static_cast<unsigned long long>(j.wg_changes()),
        static_cast<unsigned long long>(j.prio_flips()));
  }

  if (check != nullptr) {
    std::printf("\ncorrectness analysis:\n");
    std::printf("  audits run     %llu (0 violations — a violation aborts)\n",
                static_cast<unsigned long long>(check->audits_run()));
    if (!digest_out.empty() &&
        write_file(digest_out, [&](std::ostream& os) {
          check->write_digests(os);
        })) {
      std::printf("  digest stream  %s (%zu records)\n", digest_out.c_str(),
                  check->digest_records().size());
    }
  }
  return 0;
}
