// Command-line driver: run any Table III mix under any policy and print the
// full result (FPS, per-app IPC, weighted speedup vs standalone, key memory
// system statistics).
//
// Usage:
//   gpuqos_run <mix> <policy> [target_fps]
//   gpuqos_run M7 ThrotCPUprio 40
//   gpuqos_run W13 Baseline
// Policies: Baseline Throttled ThrotCPUprio SMS-0.9 SMS-0 DynPrio HeLM
//           ForceBypass
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/metrics.hpp"
#include "sim/runner.hpp"

using namespace gpuqos;

namespace {

bool parse_policy(const char* name, Policy& out) {
  for (Policy p : {Policy::Baseline, Policy::Throttle, Policy::ThrottleCpuPrio,
                   Policy::Sms09, Policy::Sms0, Policy::DynPrio, Policy::Helm,
                   Policy::ForceBypass}) {
    if (to_string(p) == name) {
      out = p;
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <mix M1..M14|W1..W14> <policy> [target_fps]\n",
                 argv[0]);
    std::fprintf(stderr,
                 "policies: Baseline Throttled ThrotCPUprio SMS-0.9 SMS-0 "
                 "DynPrio HeLM ForceBypass\n");
    return 2;
  }
  Policy policy;
  if (!parse_policy(argv[2], policy)) {
    std::fprintf(stderr, "unknown policy: %s\n", argv[2]);
    return 2;
  }

  SimConfig cfg = Presets::scaled();
  if (argc > 3) cfg.qos.target_fps = std::atof(argv[3]);

  const HeteroMix* m;
  try {
    m = &mix(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  if (m->cpu_specs.size() == 1) cfg.cpu_cores = 1;

  const RunScale scale = RunScale::from_env();
  std::printf("mix %s: GPU=%s, CPUs={", m->id.c_str(), m->gpu_app.c_str());
  for (int id : m->cpu_specs) std::printf(" %d", id);
  std::printf(" }, policy=%s, target=%.0f FPS\n\n", to_string(policy).c_str(),
              cfg.qos.target_fps);

  const auto alone = standalone_ipcs(cfg, *m, scale);
  const HeteroResult r = run_hetero(cfg, *m, policy, scale);

  std::printf("GPU: %.1f FPS (%.0f GPU cycles/frame)%s\n", r.fps,
              r.gpu_frame_cycles, r.hit_cycle_cap ? "  [hit cycle cap]" : "");
  std::printf("estimator: %llu samples, mean error %.2f%%, %llu relearns\n",
              static_cast<unsigned long long>(r.est_samples), r.est_error_pct,
              static_cast<unsigned long long>(r.est_relearns));
  std::printf("\n%-8s %12s %12s %10s\n", "core", "hetero IPC", "alone IPC",
              "ratio");
  for (std::size_t i = 0; i < r.cpu_ipc.size(); ++i) {
    std::printf("%d%-7s %12.3f %12.3f %10.3f\n", m->cpu_specs[i], "",
                r.cpu_ipc[i], alone[i],
                alone[i] > 0 ? r.cpu_ipc[i] / alone[i] : 0.0);
  }
  std::printf("weighted speedup: %.3f (of %zu)\n",
              weighted_speedup(r.cpu_ipc, alone), r.cpu_ipc.size());

  std::printf("\nmemory system (measurement window):\n");
  for (const char* key :
       {"llc.access.cpu", "llc.miss.cpu", "llc.access.gpu", "llc.miss.gpu",
        "dram.read_bytes.cpu", "dram.read_bytes.gpu", "dram.write_bytes.gpu",
        "dram.row_hits", "dram.row_misses", "gpu.gmi_throttled_cycles"}) {
    std::printf("  %-26s %12llu\n", key,
                static_cast<unsigned long long>(r.stat(key)));
  }
  return 0;
}
