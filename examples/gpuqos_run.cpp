// Command-line driver: run any Table III mix under any policy and print the
// full result (FPS, per-app IPC, weighted speedup vs standalone, key memory
// system statistics). The --trace-out/--stats-json/--sample-interval family
// of flags switches on the observability layer (docs/OBSERVABILITY.md); the
// --ckpt-out/--resume/--ckpt-interval family drives the checkpoint/restore
// subsystem (docs/CHECKPOINT.md); --serve-addr routes the run through a
// gpuqos_serve daemon (docs/SERVICE.md), falling back to the same in-process
// executor when none is reachable. Flags are declared in a cli::OptionSet,
// so --help is generated from the same table that parses them.
//
// Usage:
//   gpuqos_run [mix] [policy] [target_fps] [--flags...]
//   gpuqos_run M7 ThrotCPUprio 40
//   gpuqos_run M8 ThrotCPUprio --ckpt-interval 2000000 --ckpt-out m8.snap
//   gpuqos_run M8 ThrotCPUprio --resume m8.snap
//   gpuqos_run M8 ThrotCPUprio --serve-addr gpuqos_serve.sock
// Policies: Baseline Throttled ThrotCPUprio SMS-0.9 SMS-0 DynPrio HeLM
//           ForceBypass
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "check/context.hpp"
#include "ckpt/state_io.hpp"
#include "common/cli.hpp"
#include "obs/binlog.hpp"
#include "obs/counters.hpp"
#include "obs/telemetry.hpp"
#include "sim/metrics.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"
#include "svc/client.hpp"
#include "svc/jobspec.hpp"
#include "svc/protocol.hpp"

using namespace gpuqos;

namespace {

/// Open `path` and run `emit(os)`; returns false (with a message) on failure.
/// The stream state is re-checked after the emit + flush, so a full disk or
/// revoked permission surfaces instead of silently truncating the artifact.
template <typename Emit>
bool write_file(const std::string& path, Emit emit) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  emit(os);
  os.flush();
  if (!os) {
    std::fprintf(stderr, "short write to %s (disk full?)\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out, stats_json_out, samples_out, journal_out;
  std::string prof_out, counters_out, binlog_out;
  std::string digest_out, ckpt_out, resume_path;
  std::uint64_t prof_flush_interval = 0;
  std::uint64_t sample_interval = 0;
  std::uint64_t check_interval = 0;
  std::uint64_t digest_interval = 0;
  std::uint64_t ckpt_interval = 0;
  bool want_check = false;
  unsigned pool_jobs = 1;
  std::string serve_addr;

  cli::OptionSet opts(
      "[mix M1..M14|W1..W14] [policy] [target_fps] [--flags...]",
      "policies: Baseline Throttled ThrotCPUprio SMS-0.9 SMS-0 "
      "DynPrio HeLM ForceBypass\n"
      "docs: OBSERVABILITY.md (trace/stats/samples/journal), ANALYSIS.md "
      "(check/digest),\n      CHECKPOINT.md (ckpt/resume)");
  opts.str("--trace-out", "FILE", "Chrome trace-event JSON (load in Perfetto)",
           &trace_out);
  opts.str("--stats-json", "FILE",
           "end-of-run StatRegistry + latency histograms", &stats_json_out);
  opts.u64("--sample-interval", "CYCLES",
           "interval sampler period in base cycles", &sample_interval);
  opts.str("--samples-out", "FILE",
           "sampler time-series (.jsonl, default samples.jsonl)", &samples_out);
  opts.str("--journal-out", "FILE",
           "QoS decision journal (.jsonl, default qos_journal.jsonl)",
           &journal_out);
  opts.str("--prof-out", "FILE",
           "host-time attribution profile (JSON; table also printed)",
           &prof_out);
  opts.u64("--prof-flush-interval", "CYCLES",
           "periodic profiler snapshot period in base cycles "
           "(implies --prof-out profiling)", &prof_flush_interval);
  opts.str("--counters-out", "FILE",
           "activity-counter export (JSON, stable schema)", &counters_out);
  opts.str("--binlog", "FILE",
           "binary telemetry stream with every enabled sink "
           "(decode with tools/obs_cat)", &binlog_out);
  opts.flag("--check", "run the invariant auditors during the simulation",
            &want_check);
  opts.u64("--check-interval", "CYCLES",
           "audit period in base cycles (default 100000; implies --check)",
           &check_interval);
  opts.str("--digest-out", "FILE",
           "per-module determinism digest stream (tools/digest_diff)",
           &digest_out);
  opts.u64("--digest-interval", "CYCLES",
           "digest sampling period in base cycles (default 100000)",
           &digest_interval);
  opts.u32("--pool", "N",
           "run N identical copies through the parallel sweep pool and "
           "assert their digest streams agree", &pool_jobs);
  opts.str("--ckpt-out", "PATH",
           "write a snapshot here at every --ckpt-interval barrier (or once "
           "at warm-up end when no interval is set)", &ckpt_out);
  opts.u64("--ckpt-interval", "CYCLES",
           "drain-barrier period in base cycles; each barrier overwrites "
           "--ckpt-out with the latest resume point", &ckpt_interval);
  opts.str("--resume", "PATH",
           "restore from a snapshot and continue the run it came from",
           &resume_path);
  opts.str("--serve-addr", "PATH",
           "submit the run to the gpuqos_serve daemon on this Unix socket "
           "(in-process fallback when unreachable); alone IPCs use the "
           "one-core standalone convention", &serve_addr);

  std::vector<const char*> positional;
  opts.parse(argc, argv, positional);

  const bool want_profile = !prof_out.empty() || prof_flush_interval > 0;
  const bool want_telemetry = !trace_out.empty() || !stats_json_out.empty() ||
                              sample_interval > 0 || !samples_out.empty() ||
                              !journal_out.empty() || want_profile ||
                              !counters_out.empty() || !binlog_out.empty();
  if (sample_interval > 0 && samples_out.empty()) samples_out = "samples.jsonl";
  if (want_telemetry && journal_out.empty()) journal_out = "qos_journal.jsonl";
  if (check_interval > 0) want_check = true;

  // Default to a mix whose GPU comfortably exceeds the target frame rate so
  // the throttle/priority machinery (and its trace spans) actually engages.
  const char* mix_name = positional.size() > 0 ? positional[0] : "M8";
  const char* policy_name =
      positional.size() > 1 ? positional[1] : "ThrotCPUprio";
  Policy policy;
  if (!policy_from_string(policy_name, policy)) {
    std::fprintf(stderr, "unknown policy: %s\n", policy_name);
    return 2;
  }

  SimConfig cfg = Presets::scaled();
  if (positional.size() > 2) {
    double fps = 0.0;
    if (!cli::parse_f64(positional[2], fps) || fps <= 0) {
      std::fprintf(stderr, "invalid target_fps: %s\n", positional[2]);
      return 2;
    }
    cfg.qos.target_fps = fps;
  }

  const HeteroMix* m;
  try {
    m = &mix(mix_name);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  if (m->cpu_specs.size() == 1) cfg.cpu_cores = 1;

  const RunScale scale = RunScale::from_env();
  std::printf("mix %s: GPU=%s, CPUs={", m->id.c_str(), m->gpu_app.c_str());
  for (int id : m->cpu_specs) std::printf(" %d", id);
  std::printf(" }, policy=%s, target=%.0f FPS\n\n", to_string(policy).c_str(),
              cfg.qos.target_fps);

  std::unique_ptr<Telemetry> telemetry;
  if (want_telemetry) {
    TelemetryOptions topts;
    topts.sample_interval = sample_interval;
    topts.capture_trace = !trace_out.empty();
    topts.capture_profile = want_profile;
    topts.prof_flush_interval = prof_flush_interval;
    telemetry = std::make_unique<Telemetry>(topts);
  }

  CheckOptions copts;
  const bool with_check = want_check || !digest_out.empty();
  if (with_check) {
    if (check_interval > 0) {
      copts.audit_interval = check_interval;
    } else if (!want_check) {
      copts.audit_interval = 0;  // --digest-out alone: digests only
    }
    if (!digest_out.empty()) {
      copts.digest_interval = digest_interval > 0 ? digest_interval : 100'000;
    }
  }
  if (pool_jobs > 1 && want_telemetry) {
    std::fprintf(stderr, "--pool cannot be combined with telemetry flags\n");
    return 2;
  }
  if (pool_jobs > 1 &&
      (!ckpt_out.empty() || !resume_path.empty() || ckpt_interval > 0)) {
    std::fprintf(stderr, "--pool cannot be combined with checkpoint flags\n");
    return 2;
  }
  // The service executes jobs remotely (or through its in-process fallback),
  // so nothing that attaches to the local CMP instance can ride along.
  if (!serve_addr.empty() &&
      (want_telemetry || with_check || pool_jobs > 1 || !ckpt_out.empty() ||
       !resume_path.empty() || ckpt_interval > 0)) {
    std::fprintf(stderr,
                 "--serve-addr cannot be combined with telemetry, check, "
                 "checkpoint, or pool flags\n");
    return 2;
  }

  std::vector<double> alone;
  HeteroResult r;
  if (!serve_addr.empty()) {
    // Service mode (docs/SERVICE.md): one batch carries the heterogeneous run
    // plus the per-application standalone-IPC jobs. Identical resubmissions
    // are store hits; hetero jobs sharing a mix fork from one warm snapshot.
    std::vector<svc::JobSpec> jobs;
    {
      svc::JobSpec hj = svc::hetero_job(m->id, to_string(policy), scale);
      hj.seed = cfg.seed;
      hj.target_fps = cfg.qos.target_fps;
      jobs.push_back(std::move(hj));
    }
    for (int id : m->cpu_specs) {
      svc::JobSpec aj;
      aj.kind = svc::JobKind::kCpuAlone;
      aj.spec_id = id;
      aj.seed = cfg.seed;
      aj.target_fps = cfg.qos.target_fps;
      aj.scale = scale;
      jobs.push_back(std::move(aj));
    }
    try {
      std::unique_ptr<svc::Client> client = svc::Client::create(serve_addr, {});
      svc::BatchStats stats;
      const std::vector<svc::JobResult> results =
          client->submit_batch(jobs, nullptr, &stats);
      r = results[0].result;
      for (std::size_t i = 1; i < results.size(); ++i) {
        alone.push_back(results[i].result.cpu_ipc.empty()
                            ? 0.0
                            : results[i].result.cpu_ipc[0]);
      }
      std::printf(
          "service: %s, hetero digest %s (%s), %llu store hits / %llu warm "
          "forks / %llu cold\n\n",
          client->remote() ? serve_addr.c_str() : "in-process fallback",
          svc::u64_hex(results[0].digest).c_str(),
          svc::to_string(results[0].source),
          static_cast<unsigned long long>(stats.store_hits),
          static_cast<unsigned long long>(stats.warm_forks),
          static_cast<unsigned long long>(stats.cold_runs));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "service error: %s\n", e.what());
      return 1;
    }
  } else {
    alone = standalone_ipcs(cfg, *m, scale);
  }

  std::unique_ptr<CheckContext> check;
  if (with_check && pool_jobs == 1) check = std::make_unique<CheckContext>(copts);

  if (!serve_addr.empty()) {
    // Result already delivered by the service above.
  } else if (pool_jobs == 1) {
    RunHooks hooks;
    hooks.telemetry = telemetry.get();
    hooks.check = check.get();
    hooks.resume_path = resume_path;
    hooks.ckpt_out = ckpt_out;
    hooks.ckpt_interval = ckpt_interval;
    try {
      r = run_hetero(cfg, *m, policy, scale, hooks);
    } catch (const ckpt::CkptError& e) {
      std::fprintf(stderr, "checkpoint error: %s\n", e.what());
      return 1;
    }
  } else {
    // Pooled mode: N identical copies of this configuration run concurrently
    // through run_many (worker count from GPUQOS_THREADS). Every job carries
    // its own CheckContext; all digest streams must agree with job 0, which
    // becomes the reported run. tests/sweep_determinism_test.sh diffs this
    // against a serial run with tools/digest_diff.
    std::vector<std::unique_ptr<CheckContext>> checks;
    std::vector<std::function<HeteroResult()>> jobs;
    for (unsigned j = 0; j < pool_jobs; ++j) {
      checks.push_back(with_check ? std::make_unique<CheckContext>(copts)
                                  : nullptr);
      CheckContext* c = checks.back().get();
      jobs.push_back(
          [&cfg, m, policy, &scale, c] {
            RunHooks hooks;
            hooks.check = c;
            return run_hetero(cfg, *m, policy, scale, hooks);
          });
    }
    std::vector<HeteroResult> results = run_many(std::move(jobs));
    if (with_check) {
      const auto stream = [](const CheckContext& c) {
        std::ostringstream os;
        c.write_digests(os);
        return os.str();
      };
      const std::string want = stream(*checks[0]);
      for (unsigned j = 1; j < pool_jobs; ++j) {
        if (stream(*checks[j]) != want) {
          std::fprintf(stderr,
                       "pool job %u produced a digest stream diverging from "
                       "job 0 — pooled execution is not deterministic\n", j);
          return 1;
        }
      }
      std::printf("pool: %u jobs, digest streams identical\n\n", pool_jobs);
    }
    r = results[0];
    check = std::move(checks[0]);
  }

  std::printf("GPU: %.1f FPS (%.0f GPU cycles/frame)%s\n", r.fps,
              r.gpu_frame_cycles, r.hit_cycle_cap ? "  [hit cycle cap]" : "");
  std::printf("estimator: %llu samples, mean error %.2f%%, %llu relearns\n",
              static_cast<unsigned long long>(r.est_samples), r.est_error_pct,
              static_cast<unsigned long long>(r.est_relearns));
  std::printf("\n%-8s %12s %12s %10s\n", "core", "hetero IPC", "alone IPC",
              "ratio");
  for (std::size_t i = 0; i < r.cpu_ipc.size(); ++i) {
    std::printf("%d%-7s %12.3f %12.3f %10.3f\n", m->cpu_specs[i], "",
                r.cpu_ipc[i], alone[i],
                alone[i] > 0 ? r.cpu_ipc[i] / alone[i] : 0.0);
  }
  std::printf("weighted speedup: %.3f (of %zu)\n",
              weighted_speedup(r.cpu_ipc, alone), r.cpu_ipc.size());

  std::printf("\nmemory system (measurement window):\n");
  for (const char* key :
       {"llc.access.cpu", "llc.miss.cpu", "llc.access.gpu", "llc.miss.gpu",
        "dram.read_bytes.cpu", "dram.read_bytes.gpu", "dram.write_bytes.gpu",
        "dram.row_hits", "dram.row_misses", "gpu.gmi_throttled_cycles"}) {
    std::printf("  %-26s %12llu\n", key,
                static_cast<unsigned long long>(r.stat(key)));
  }

  if (telemetry != nullptr) {
    std::printf("\nobservability:\n");
    if (!trace_out.empty() &&
        write_file(trace_out,
                   [&](std::ostream& os) { telemetry->trace().write(os); })) {
      std::printf("  trace          %s (%zu events)\n", trace_out.c_str(),
                  telemetry->trace().size());
    }
    if (!stats_json_out.empty() &&
        write_file(stats_json_out, [&](std::ostream& os) {
          os << "{\"stats\":" << telemetry->stats_json()
             << ",\"latency_histograms\":" << telemetry->histograms_json()
             << "}\n";
        })) {
      std::printf("  stats          %s\n", stats_json_out.c_str());
    }
    if (!samples_out.empty() &&
        write_file(samples_out, [&](std::ostream& os) {
          telemetry->sampler().write_jsonl(os);
        })) {
      std::printf("  time-series    %s (%zu intervals)\n", samples_out.c_str(),
                  telemetry->sampler().samples().size());
    }
    if (!journal_out.empty() &&
        write_file(journal_out, [&](std::ostream& os) {
          telemetry->journal().write_jsonl(os);
        })) {
      std::printf("  qos journal    %s (%zu entries)\n", journal_out.c_str(),
                  telemetry->journal().entries().size());
    }
    if (const Profiler* prof = telemetry->profiler()) {
      if (!prof_out.empty() &&
          write_file(prof_out, [&](std::ostream& os) {
            os << prof->to_json() << "\n";
          })) {
        std::printf("  profile        %s (%zu flushes)\n", prof_out.c_str(),
                    prof->flushes().size());
      }
      std::printf("\n%s", prof->table().c_str());
    }
    if (!counters_out.empty()) {
      const ActivityCounterBank bank = ActivityCounterBank::for_config(cfg);
      if (write_file(counters_out, [&](std::ostream& os) {
            os << bank.values_json(telemetry->counters()) << "\n";
          })) {
        std::printf("  counters       %s (%zu events)\n", counters_out.c_str(),
                    bank.catalog().size());
      }
    }
    if (!binlog_out.empty()) {
      BinLogWriter w;
      if (sample_interval > 0) telemetry->sampler().write_binlog(w);
      if (telemetry->options().capture_journal) {
        telemetry->journal().write_binlog(w);
      }
      if (telemetry->options().capture_trace) {
        telemetry->trace().write_binlog(w);
      }
      if (const Profiler* prof = telemetry->profiler()) {
        prof->write_binlog(w);
      }
      ActivityCounterBank::for_config(cfg).write_binlog(w,
                                                        telemetry->counters());
      if (w.write_file(binlog_out)) {
        std::printf("  binlog         %s (%zu rows, %zu bytes)\n",
                    binlog_out.c_str(), w.rows(), w.bytes().size());
      } else {
        // BinLogWriter::write_file logged the cause (open vs short write)
        // via GPUQOS_LOG, which is off by default — keep the CLI loud.
        std::fprintf(stderr, "cannot write %s\n", binlog_out.c_str());
      }
    }
    // Fig.-8-style prediction-error report straight from the journal: it must
    // agree with the estimator line above (same samples, same math).
    const QosJournal& j = telemetry->journal();
    std::printf(
        "  journal report: %llu predictions, mean error %.2f%% "
        "(|err| %.2f%%), %llu WG transitions, %llu CPU-priority flips\n",
        static_cast<unsigned long long>(j.predictions()),
        j.mean_prediction_error_pct(), j.mean_abs_prediction_error_pct(),
        static_cast<unsigned long long>(j.wg_changes()),
        static_cast<unsigned long long>(j.prio_flips()));
  }

  if (check != nullptr) {
    std::printf("\ncorrectness analysis:\n");
    std::printf("  audits run     %llu (0 violations — a violation aborts)\n",
                static_cast<unsigned long long>(check->audits_run()));
    if (!digest_out.empty() &&
        write_file(digest_out, [&](std::ostream& os) {
          check->write_digests(os);
        })) {
      std::printf("  digest stream  %s (%zu records)\n", digest_out.c_str(),
                  check->digest_records().size());
    }
  }
  return 0;
}
