// Quickstart: simulate one heterogeneous mix (DOOM3 + four SPEC apps) under
// the baseline and under the paper's throttling+CPU-priority proposal, and
// print the GPU frame rate and CPU speedup.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "sim/metrics.hpp"
#include "sim/runner.hpp"

using namespace gpuqos;

int main() {
  const SimConfig cfg = Presets::scaled();
  const RunScale scale = RunScale::from_env();
  const HeteroMix& m7 = mix("M7");  // DOOM3 + {410,433,462,471}

  std::printf("Simulating mix %s: GPU=%s, CPUs={", m7.id.c_str(),
              m7.gpu_app.c_str());
  for (int id : m7.cpu_specs) std::printf(" %d", id);
  std::printf(" }\n\n");

  std::printf("[1/4] standalone CPU runs (speedup denominators)...\n");
  const std::vector<double> alone = standalone_ipcs(cfg, m7, scale);

  std::printf("[2/4] heterogeneous baseline...\n");
  const HeteroResult base = run_hetero(cfg, m7, Policy::Baseline, scale);

  std::printf("[3/4] GPU access throttling (target %.0f FPS)...\n",
              cfg.qos.target_fps);
  const HeteroResult thr = run_hetero(cfg, m7, Policy::Throttle, scale);

  std::printf("[4/4] throttling + CPU priority in DRAM scheduler...\n\n");
  const HeteroResult prio = run_hetero(cfg, m7, Policy::ThrottleCpuPrio, scale);

  const double ws_base = weighted_speedup(base.cpu_ipc, alone);
  const double ws_thr = weighted_speedup(thr.cpu_ipc, alone);
  const double ws_prio = weighted_speedup(prio.cpu_ipc, alone);

  std::printf("%-22s %10s %14s\n", "configuration", "GPU FPS", "CPU speedup");
  std::printf("%-22s %10.1f %14.3f\n", "Baseline", base.fps, 1.0);
  std::printf("%-22s %10.1f %14.3f\n", "Throttled", thr.fps,
              ws_thr / ws_base);
  std::printf("%-22s %10.1f %14.3f\n", "Throttled+CPUprio", prio.fps,
              ws_prio / ws_base);
  std::printf(
      "\nThe GPU runs just above the %.0f FPS target while the freed LLC\n"
      "capacity and DRAM bandwidth speed up the co-running CPU mix.\n",
      cfg.qos.target_fps);
  return 0;
}
