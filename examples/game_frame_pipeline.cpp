// Game frame-pipeline scenario (paper Section I): while the GPU renders
// frame N, the CPU cores prepare frame N+1 — physics and AI (latency
// sensitive, pointer chasing) plus unrelated background jobs. The example
// contrasts every evaluated policy on this mix and prints where the
// proposal's advantage comes from (LLC misses and DRAM bandwidth shift).
//
// Run: ./build/examples/game_frame_pipeline
#include <cstdio>

#include "sim/metrics.hpp"
#include "sim/runner.hpp"

using namespace gpuqos;

int main() {
  RunScale scale = RunScale::from_env();

  // Physics (mcf-like pointer chasing), AI (gcc-like branchy integer),
  // streaming asset decompression (bzip2), background job (sphinx3).
  HeteroMix game;
  game.id = "game";
  game.gpu_app = "HL2";  // renders well above 40 FPS when unmanaged
  game.cpu_specs = {429, 403, 401, 482};

  const SimConfig cfg = Presets::scaled();
  std::printf("Game pipeline: HL2 renderer + physics/AI/asset/background cores\n");
  std::printf("(40 FPS QoS target; CPU side prepares the next frame)\n\n");

  const std::vector<double> alone = standalone_ipcs(cfg, game, scale);
  const HeteroResult base = run_hetero(cfg, game, Policy::Baseline, scale);
  const double ws_base = weighted_speedup(base.cpu_ipc, alone);

  std::printf("%-14s %9s %12s %14s %14s\n", "policy", "GPU FPS",
              "CPU speedup", "gpu LLC miss%", "gpu DRAM GB/s");
  for (Policy p : {Policy::Baseline, Policy::Sms09, Policy::DynPrio,
                   Policy::Helm, Policy::Throttle, Policy::ThrottleCpuPrio}) {
    const HeteroResult r =
        p == Policy::Baseline ? base : run_hetero(cfg, game, p, scale);
    const double ws = weighted_speedup(r.cpu_ipc, alone) / ws_base;
    const double miss_rate =
        r.stat("llc.access.gpu") > 0
            ? 100.0 * static_cast<double>(r.stat("llc.miss.gpu")) /
                  static_cast<double>(r.stat("llc.access.gpu"))
            : 0.0;
    const double bw =
        r.seconds > 0
            ? (static_cast<double>(r.stat("dram.read_bytes.gpu")) +
               static_cast<double>(r.stat("dram.write_bytes.gpu"))) /
                  r.seconds / 1e9
            : 0.0;
    std::printf("%-14s %9.1f %12.3f %14.1f %14.2f\n", to_string(p).c_str(),
                r.fps, ws, miss_rate, bw);
  }
  std::printf(
      "\nThe throttled GPU ages out of the LLC faster (higher miss rate)\n"
      "yet demands less DRAM bandwidth — both freed resources go to the\n"
      "frame-N+1 preparation on the CPU cores.\n");
  return 0;
}
