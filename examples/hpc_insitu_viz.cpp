// HPC in-situ visualization scenario (paper Section V-B): the CPU cores run
// the current time-step of a scientific simulation (bandwidth-heavy
// streaming codes) while the GPU renders the previous time-steps for
// visualization. The operator only needs an interactive frame rate, so the
// QoS governor sweeps several target FPS values and reports how much CPU
// throughput each target buys.
//
// Run: ./build/examples/hpc_insitu_viz
#include <cstdio>

#include "sim/metrics.hpp"
#include "sim/runner.hpp"
#include "workloads/spec.hpp"

using namespace gpuqos;

int main() {
  RunScale scale = RunScale::from_env();

  // Scientific stack: bwaves (CFD), leslie3d (combustion), lbm (lattice
  // Boltzmann), milc (lattice QCD) — the streaming-heavy half of Table III.
  HeteroMix job;
  job.id = "insitu";
  job.gpu_app = "Quake4";  // stands in for the visualization front-end
  job.cpu_specs = {410, 437, 470, 433};

  std::printf("In-situ visualization: 4 solver ranks + 1 rendering GPU\n\n");

  const SimConfig base_cfg = Presets::scaled();
  std::printf("reference (no QoS management)...\n");
  const std::vector<double> alone = standalone_ipcs(base_cfg, job, scale);
  const HeteroResult ref = run_hetero(base_cfg, job, Policy::Baseline, scale);
  const double ws_ref = weighted_speedup(ref.cpu_ipc, alone);

  std::printf("\n%-12s %10s %14s %16s\n", "target FPS", "GPU FPS",
              "solver speedup", "GPU DRAM GB/s");
  for (double target : {60.0, 40.0, 30.0, 20.0}) {
    SimConfig cfg = base_cfg;
    cfg.qos.target_fps = target;
    const HeteroResult r = run_hetero(cfg, job, Policy::ThrottleCpuPrio, scale);
    const double ws = weighted_speedup(r.cpu_ipc, alone) / ws_ref;
    const double gpu_bw =
        r.seconds > 0
            ? (static_cast<double>(r.stat("dram.read_bytes.gpu")) +
               static_cast<double>(r.stat("dram.write_bytes.gpu"))) /
                  r.seconds / 1e9
            : 0.0;
    std::printf("%-12.0f %10.1f %14.3f %16.2f\n", target, r.fps, ws, gpu_bw);
  }
  std::printf(
      "\nBaseline GPU FPS: %.1f. Lower visualization targets shift DRAM\n"
      "bandwidth and LLC capacity to the solver ranks; the governor keeps\n"
      "the rendered frame rate just above each requested target.\n",
      ref.fps);
  return 0;
}
