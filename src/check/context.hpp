// CheckContext: the runtime correctness net (docs/ANALYSIS.md).
//
// Mirrors the Telemetry pattern: components hold a null-by-default
// `CheckContext*`, so auditing costs one predictable branch when disabled.
// When a run wants auditing, the caller constructs a CheckContext, attaches it
// (HeteroCmp::attach_checks), and the context then
//   * keeps a conservation ledger of memory requests (injected vs. retired,
//     per flow class, with duplicate-retirement detection),
//   * runs registered invariant auditors every `audit_interval` base cycles
//     and at every GPU frame boundary,
//   * samples per-module state digests every `digest_interval` base cycles
//     for determinism comparison (tools/digest_diff).
// A violation aborts with a cycle-stamped diagnostic through the GPUQOS_LOG
// sink; tests set `abort_on_violation = false` and inspect `violations()`.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "check/digest.hpp"
#include "common/types.hpp"

namespace gpuqos {

struct CheckOptions {
  Cycle audit_interval = 100'000;  // base cycles between audits (0 = off)
  Cycle digest_interval = 0;       // base cycles between digests (0 = off)
  bool abort_on_violation = true;  // false: record only (unit tests)
  Cycle starvation_bound = 8'000'000;  // max queued age of a DRAM read
  std::size_t max_recorded_violations = 256;  // when not aborting
};

struct CheckViolation {
  Cycle cycle = 0;
  std::string auditor;
  std::string message;
};

class CheckContext {
 public:
  /// Request flow classes the conservation ledger distinguishes. Read flows
  /// retire via their completion callback; writes are posted (no retirement).
  enum class Flow : int {
    CpuRead = 0,
    CpuWrite,
    GpuRead,
    GpuWrite,
    DramRead,
    DramWrite,
  };
  static constexpr int kNumFlows = 6;

  using AuditFn = std::function<void(Cycle)>;  // calls fail() on violation
  using DigestFn = std::function<std::uint64_t()>;

  explicit CheckContext(CheckOptions opts = {});

  CheckContext(const CheckContext&) = delete;
  CheckContext& operator=(const CheckContext&) = delete;

  [[nodiscard]] const CheckOptions& options() const { return opts_; }

  // --- Registration (HeteroCmp::attach_checks) --------------------------
  void add_auditor(std::string name, AuditFn fn);
  void add_digest_source(std::string name, DigestFn fn);
  [[nodiscard]] std::size_t num_auditors() const { return auditors_.size(); }

  // --- Conservation ledger (hot path, module check hooks) ---------------
  void on_inject(Flow f) { ++injected_[static_cast<int>(f)]; }
  void on_retire(Flow f, Cycle now);

  /// Wrap a read-completion callback: counts the retirement and fails if the
  /// same completion is ever delivered twice (request duplication).
  [[nodiscard]] std::function<void(Cycle)> guard_retire(
      std::function<void(Cycle)> cb, Flow f);

  [[nodiscard]] std::uint64_t injected(Flow f) const {
    return injected_[static_cast<int>(f)];
  }
  [[nodiscard]] std::uint64_t retired(Flow f) const {
    return retired_[static_cast<int>(f)];
  }
  /// Injected-but-not-retired requests (read flows only).
  [[nodiscard]] std::uint64_t in_flight(Flow f) const {
    return injected(f) - retired(f);
  }
  /// Cap on in-flight requests of a read flow (0 = unchecked). Set from the
  /// structural capacities of the attached configuration.
  void set_in_flight_bound(Flow f, std::uint64_t bound) {
    in_flight_bound_[static_cast<int>(f)] = bound;
  }

  // --- Execution --------------------------------------------------------
  /// Run every registered auditor plus the ledger audit.
  void audit(Cycle now);
  /// Fold every digest source into one record per module.
  void sample_digests(Cycle now);
  /// End-of-run: audit once more; when `quiesced` (no events left in the
  /// engine), additionally require zero in-flight requests — a leaked MSHR
  /// entry or dropped completion surfaces here even if no audit fired.
  void finalize(Cycle now, bool quiesced);

  /// Report a violation: cycle-stamped diagnostic through the log sink, then
  /// abort (or record, when abort_on_violation is false).
  void fail(const std::string& auditor, Cycle cycle, const std::string& msg);

  [[nodiscard]] const std::vector<CheckViolation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::uint64_t audits_run() const { return audits_run_; }

  // --- Digest results ---------------------------------------------------
  [[nodiscard]] const std::vector<DigestRecord>& digest_records() const {
    return digests_;
  }
  void write_digests(std::ostream& os) const;

 private:
  void audit_ledger(Cycle now);

  CheckOptions opts_;
  std::vector<std::pair<std::string, AuditFn>> auditors_;
  std::vector<std::pair<std::string, DigestFn>> digest_sources_;
  std::uint64_t injected_[kNumFlows] = {};
  std::uint64_t retired_[kNumFlows] = {};
  std::uint64_t in_flight_bound_[kNumFlows] = {};
  std::vector<CheckViolation> violations_;
  std::vector<DigestRecord> digests_;
  std::uint64_t audits_run_ = 0;
  bool auditing_ = false;  // re-entrancy guard: a failing auditor must not recurse
};

[[nodiscard]] const char* to_string(CheckContext::Flow f);

}  // namespace gpuqos
