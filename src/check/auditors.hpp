// Cross-module invariant auditors.
//
// Each auditor is a pure function over a plain *audit view* — a snapshot
// struct the owning module produces (MshrTable::audit_view(), ...). Keeping
// the functions view-based means unit tests can construct a violating state
// directly and assert it is caught (tests/test_check.cpp), while
// HeteroCmp::attach_checks registers closures that build the views from the
// live modules every audit interval.
//
// Invariants covered (ISSUE 2 / paper Sections III, V):
//  * MSHR occupancy <= capacity, bounded coalescing, no leaks at quiesce
//    (the leak half lives in CheckContext::finalize).
//  * LLC tag/state consistency: no duplicate valid tags in a set, occupancy
//    counters match a recount, deferred/outstanding reads within structure.
//  * ATU token accounting: issues <= grants, tokens <= NG, and WG disabled
//    windows never overlap (wg == 0 implies no active block).
//  * DRAM queue occupancy (read queue bounded by the LLC MSHR pool that
//    feeds it) and FR-FCFS / cpu_prio starvation bounds.
//  * RTP-table entry bounds (<= 64) and finite, non-negative Eq. 1-3 inputs.
//  * FRPU tile bookkeeping and finite predictions.
//  * Engine event-population bound (event leaks).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "check/context.hpp"
#include "common/types.hpp"

namespace gpuqos {

struct MshrAuditView {
  std::size_t size = 0;
  std::size_t capacity = 0;
  std::size_t max_waiters = 0;   // largest per-entry waiter list
  std::size_t waiter_bound = 0;  // 0 = unchecked
};
void audit_mshr(CheckContext& ctx, Cycle now, const MshrAuditView& v);

struct LlcAuditView {
  MshrAuditView mshr;
  std::size_t deferred_cpu = 0;
  std::size_t deferred_gpu = 0;
  std::size_t gpu_held_mshrs = 0;
  std::uint64_t outstanding_reads = 0;
  std::uint64_t valid_blocks = 0;
  std::uint64_t capacity_blocks = 0;
  std::optional<std::string> tag_error;  // SetAssocCache::consistency_error()
};
void audit_llc(CheckContext& ctx, Cycle now, const LlcAuditView& v);

struct AtuAuditView {
  unsigned ng = 1;
  Cycle wg = 0;
  unsigned tokens_left = 0;
  Cycle blocked_until = 0;
  std::uint64_t grants = 0;
  std::uint64_t issues = 0;
  std::uint64_t window_overlaps = 0;  // blocked windows that began mid-window
};
void audit_atu(CheckContext& ctx, Cycle now, const AtuAuditView& v);

struct ChannelAuditView {
  unsigned index = 0;
  std::size_t read_depth = 0;
  std::size_t write_depth = 0;
  std::size_t read_bound = 0;   // 0 = unchecked
  std::size_t write_bound = 0;  // 0 = unchecked
  Cycle oldest_read_arrival = kNoCycle;  // kNoCycle when the queue is empty
  Cycle now = 0;
  Cycle starvation_bound = 0;  // 0 = unchecked
};
void audit_channel(CheckContext& ctx, Cycle now, const ChannelAuditView& v);

struct RingAuditView {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;  // counted only while a CheckContext is attached
  Cycle max_link_reserved = 0;  // furthest-future link reservation
  Cycle now = 0;
  Cycle horizon = 0;  // 0 = unchecked
};
void audit_ring(CheckContext& ctx, Cycle now, const RingAuditView& v);

struct RtpAuditView {
  unsigned used = 0;
  unsigned capacity = 0;
  unsigned max_entries = 64;  // paper Section III-D storage bound
  std::uint32_t rtp_count = 0;
  double avg_cycles_per_rtp = 0.0;  // Eq. 2 input
  std::uint64_t total_updates = 0;  // Eq. 1 input
};
void audit_rtp(CheckContext& ctx, Cycle now, const RtpAuditView& v);

struct FrpuAuditView {
  bool in_frame = false;
  unsigned num_tiles = 0;
  std::size_t tile_slots = 0;  // tile_updates_ vector size
  unsigned tiles_at_target = 0;
  double predicted_cycles = 0.0;  // Eq. 3 output (0 while learning)
};
void audit_frpu(CheckContext& ctx, Cycle now, const FrpuAuditView& v);

struct EngineAuditView {
  std::size_t pending_events = 0;
  std::size_t event_bound = 0;  // 0 = unchecked
};
void audit_engine(CheckContext& ctx, Cycle now, const EngineAuditView& v);

}  // namespace gpuqos
