#include "check/check.hpp"

#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "common/log.hpp"

namespace gpuqos {

std::string check_module_of(const char* file) {
  std::string_view path(file);
  const auto src = path.rfind("src/");
  if (src != std::string_view::npos) {
    std::string_view rest = path.substr(src + 4);
    const auto slash = rest.find('/');
    if (slash != std::string_view::npos) return std::string(rest.substr(0, slash));
  }
  const auto base = path.find_last_of('/');
  return std::string(base == std::string_view::npos ? path
                                                    : path.substr(base + 1));
}

void check_fail(const char* file, int line, const char* cond,
                const std::string& msg) {
  const std::string module = check_module_of(file);
  // Force the message out even when logging is off: a failing invariant must
  // never abort silently. log_message stamps the current simulation cycle and
  // routes through any installed sink (telemetry trace, CI capture).
  if (log_level() == LogLevel::Off) set_log_level(LogLevel::Error);
  std::ostringstream os;
  os << "CHECK failed [" << module << "] " << file << ":" << line << ": ("
     << cond << ") " << msg;
  log_message(LogLevel::Error, os.str());
  std::fflush(nullptr);
  std::abort();
}

}  // namespace gpuqos
