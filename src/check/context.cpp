#include "check/context.hpp"

#include <cstdlib>
#include <memory>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/log.hpp"

namespace gpuqos {

const char* to_string(CheckContext::Flow f) {
  switch (f) {
    case CheckContext::Flow::CpuRead: return "cpu_read";
    case CheckContext::Flow::CpuWrite: return "cpu_write";
    case CheckContext::Flow::GpuRead: return "gpu_read";
    case CheckContext::Flow::GpuWrite: return "gpu_write";
    case CheckContext::Flow::DramRead: return "dram_read";
    case CheckContext::Flow::DramWrite: return "dram_write";
  }
  return "?";
}

CheckContext::CheckContext(CheckOptions opts) : opts_(opts) {}

void CheckContext::add_auditor(std::string name, AuditFn fn) {
  auditors_.emplace_back(std::move(name), std::move(fn));
}

void CheckContext::add_digest_source(std::string name, DigestFn fn) {
  digest_sources_.emplace_back(std::move(name), std::move(fn));
}

void CheckContext::on_retire(Flow f, Cycle now) {
  const int i = static_cast<int>(f);
  ++retired_[i];
  if (retired_[i] > injected_[i]) {
    std::ostringstream os;
    os << to_string(f) << " retired " << retired_[i]
       << " requests but only " << injected_[i]
       << " were injected (spurious completion)";
    fail("conservation", now, os.str());
  }
}

std::function<void(Cycle)> CheckContext::guard_retire(
    std::function<void(Cycle)> cb, Flow f) {
  // shared_ptr flag: std::function copies must share the delivered bit, or a
  // copied callback could legitimise a duplicated completion.
  auto delivered = std::make_shared<bool>(false);
  return [this, f, delivered, cb = std::move(cb)](Cycle when) {
    if (*delivered) {
      std::ostringstream os;
      os << to_string(f) << " completion delivered twice (request duplicated "
         << "in the memory system)";
      fail("conservation", when, os.str());
      return;  // reached only when abort_on_violation is off
    }
    *delivered = true;
    on_retire(f, when);
    if (cb) cb(when);
  };
}

void CheckContext::audit_ledger(Cycle now) {
  for (int i = 0; i < kNumFlows; ++i) {
    if (retired_[i] > injected_[i]) {
      std::ostringstream os;
      os << to_string(static_cast<Flow>(i)) << " retired " << retired_[i]
         << " > injected " << injected_[i];
      fail("conservation", now, os.str());
    }
    if (in_flight_bound_[i] > 0 &&
        injected_[i] - retired_[i] > in_flight_bound_[i]) {
      std::ostringstream os;
      os << to_string(static_cast<Flow>(i)) << " has "
         << injected_[i] - retired_[i] << " requests in flight, above the "
         << "structural bound " << in_flight_bound_[i]
         << " (leaked or duplicated requests)";
      fail("conservation", now, os.str());
    }
  }
}

void CheckContext::audit(Cycle now) {
  if (auditing_) return;
  auditing_ = true;
  ++audits_run_;
  audit_ledger(now);
  for (const auto& [name, fn] : auditors_) fn(now);
  auditing_ = false;
}

void CheckContext::sample_digests(Cycle now) {
  for (const auto& [name, fn] : digest_sources_) {
    digests_.push_back(DigestRecord{now, name, fn()});
  }
}

void CheckContext::finalize(Cycle now, bool quiesced) {
  audit(now);
  if (!quiesced) return;
  for (Flow f : {Flow::CpuRead, Flow::GpuRead, Flow::DramRead}) {
    if (in_flight(f) != 0) {
      std::ostringstream os;
      os << to_string(f) << " leaked " << in_flight(f)
         << " requests: injected " << injected(f) << ", retired " << retired(f)
         << " with the engine quiesced";
      fail("conservation", now, os.str());
    }
  }
}

void CheckContext::fail(const std::string& auditor, Cycle cycle,
                        const std::string& msg) {
  std::ostringstream os;
  os << "invariant violation [" << auditor << "] @" << cycle << ": " << msg;
  if (opts_.abort_on_violation) {
    if (log_level() == LogLevel::Off) set_log_level(LogLevel::Error);
    log_message(LogLevel::Error, os.str());
    std::abort();
  }
  if (violations_.size() < opts_.max_recorded_violations) {
    violations_.push_back(CheckViolation{cycle, auditor, msg});
  }
}

void CheckContext::write_digests(std::ostream& os) const {
  write_digest_stream(os, digests_);
}

}  // namespace gpuqos
