#include "check/digest.hpp"

#include <istream>
#include <ostream>
#include <sstream>

namespace gpuqos {

std::optional<DigestDivergence> first_divergence(
    const std::vector<DigestRecord>& a, const std::vector<DigestRecord>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) {
      return DigestDivergence{i, a[i].cycle, a[i].module, false};
    }
  }
  if (a.size() != b.size()) {
    const auto& longer = a.size() > b.size() ? a : b;
    return DigestDivergence{n, longer[n].cycle, longer[n].module, true};
  }
  return std::nullopt;
}

void write_digest_stream(std::ostream& os,
                         const std::vector<DigestRecord>& records) {
  os << "# gpuqos digest stream v1\n";
  for (const auto& r : records) {
    os << r.cycle << ' ' << r.module << ' ' << std::hex << r.hash << std::dec
       << '\n';
  }
}

std::vector<DigestRecord> parse_digest_stream(std::istream& is) {
  std::vector<DigestRecord> out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    DigestRecord r;
    ls >> r.cycle >> r.module >> std::hex >> r.hash;
    if (!ls.fail()) out.push_back(std::move(r));
  }
  return out;
}

}  // namespace gpuqos
