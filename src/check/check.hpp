// GPUQOS_CHECK: invariant assertion that reports through the cycle-stamped
// log sink before aborting.
//
// Unlike bare assert(), a failing GPUQOS_CHECK prints the simulation cycle,
// the owning module (derived from the source path), and a formatted message,
// all routed through the pluggable GPUQOS_LOG sink so a telemetry trace or a
// CI log captures the diagnostic. Checks are active in debug builds and in
// Release when the build sets GPUQOS_STRICT_CHECKS (cmake -DGPUQOS_STRICT=ON).
#pragma once

#include <limits>
#include <sstream>
#include <string>

namespace gpuqos {

/// Log the failure (cycle-stamped, through the log sink) and abort. `file`
/// is used to name the failing module ("src/dram/channel.cpp" -> "dram").
[[noreturn]] void check_fail(const char* file, int line, const char* cond,
                             const std::string& msg);

/// "src/dram/channel.cpp" -> "dram"; files outside src/ keep their basename.
[[nodiscard]] std::string check_module_of(const char* file);

/// Range-checked narrowing for unsigned counts (container sizes, slot
/// indices): aborts through check_fail rather than wrapping when the value
/// does not fit `To`. The sanctioned spelling for count casts — gpuqos-lint's
/// narrowing-cast rule (docs/ANALYSIS.md, R11) flags bare static_cast of a
/// 64-bit value with no dominating range check.
template <typename To, typename From>
[[nodiscard]] constexpr To checked_narrow(From v) {
  static_assert(!std::numeric_limits<From>::is_signed &&
                    !std::numeric_limits<To>::is_signed,
                "checked_narrow covers unsigned count types only");
  if (v > static_cast<From>((std::numeric_limits<To>::max)()))
      [[unlikely]] {
    check_fail(__FILE__, __LINE__, "checked_narrow",
               "value does not fit the narrow type");
  }
  return static_cast<To>(v);
}

}  // namespace gpuqos

#if !defined(NDEBUG) || defined(GPUQOS_STRICT_CHECKS)
#define GPUQOS_CHECK(cond, msg)                                  \
  do {                                                           \
    if (!(cond)) [[unlikely]] {                                  \
      std::ostringstream gpuqos_check_os_;                       \
      gpuqos_check_os_ << msg;                                   \
      ::gpuqos::check_fail(__FILE__, __LINE__, #cond,            \
                           gpuqos_check_os_.str());              \
    }                                                            \
  } while (0)
#else
#define GPUQOS_CHECK(cond, msg) \
  do {                          \
    (void)sizeof(cond);         \
  } while (0)
#endif
