// GPUQOS_CHECK: invariant assertion that reports through the cycle-stamped
// log sink before aborting.
//
// Unlike bare assert(), a failing GPUQOS_CHECK prints the simulation cycle,
// the owning module (derived from the source path), and a formatted message,
// all routed through the pluggable GPUQOS_LOG sink so a telemetry trace or a
// CI log captures the diagnostic. Checks are active in debug builds and in
// Release when the build sets GPUQOS_STRICT_CHECKS (cmake -DGPUQOS_STRICT=ON).
#pragma once

#include <sstream>
#include <string>

namespace gpuqos {

/// Log the failure (cycle-stamped, through the log sink) and abort. `file`
/// is used to name the failing module ("src/dram/channel.cpp" -> "dram").
[[noreturn]] void check_fail(const char* file, int line, const char* cond,
                             const std::string& msg);

/// "src/dram/channel.cpp" -> "dram"; files outside src/ keep their basename.
[[nodiscard]] std::string check_module_of(const char* file);

}  // namespace gpuqos

#if !defined(NDEBUG) || defined(GPUQOS_STRICT_CHECKS)
#define GPUQOS_CHECK(cond, msg)                                  \
  do {                                                           \
    if (!(cond)) [[unlikely]] {                                  \
      std::ostringstream gpuqos_check_os_;                       \
      gpuqos_check_os_ << msg;                                   \
      ::gpuqos::check_fail(__FILE__, __LINE__, #cond,            \
                           gpuqos_check_os_.str());              \
    }                                                            \
  } while (0)
#else
#define GPUQOS_CHECK(cond, msg) \
  do {                          \
    (void)sizeof(cond);         \
  } while (0)
#endif
