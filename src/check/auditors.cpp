#include "check/auditors.hpp"

#include <cmath>
#include <sstream>

namespace gpuqos {
namespace {

/// ostringstream-builder so each violation formats lazily in one line.
template <typename... Parts>
std::string fmt(Parts&&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}

}  // namespace

void audit_mshr(CheckContext& ctx, Cycle now, const MshrAuditView& v) {
  if (v.size > v.capacity) {
    ctx.fail("mshr", now,
             fmt("occupancy ", v.size, " exceeds capacity ", v.capacity));
  }
  if (v.waiter_bound > 0 && v.max_waiters > v.waiter_bound) {
    ctx.fail("mshr", now, fmt("an entry coalesced ", v.max_waiters,
                              " waiters, above the bound ", v.waiter_bound));
  }
}

void audit_llc(CheckContext& ctx, Cycle now, const LlcAuditView& v) {
  audit_mshr(ctx, now, v.mshr);
  if (v.tag_error) {
    ctx.fail("llc", now, fmt("tag store inconsistent: ", *v.tag_error));
  }
  if (v.valid_blocks > v.capacity_blocks) {
    ctx.fail("llc", now, fmt("valid blocks ", v.valid_blocks,
                             " exceed cache capacity ", v.capacity_blocks));
  }
  if (v.gpu_held_mshrs > v.mshr.size) {
    ctx.fail("llc", now,
             fmt("GPU-held MSHR count ", v.gpu_held_mshrs,
                 " exceeds total live entries ", v.mshr.size));
  }
  if (v.outstanding_reads > v.mshr.capacity) {
    ctx.fail("llc", now,
             fmt("outstanding DRAM reads ", v.outstanding_reads,
                 " exceed the MSHR pool ", v.mshr.capacity,
                 " that must back them"));
  }
}

void audit_atu(CheckContext& ctx, Cycle now, const AtuAuditView& v) {
  if (v.tokens_left > v.ng) {
    ctx.fail("atu", now, fmt("tokens_left ", v.tokens_left,
                             " exceeds the grant budget NG ", v.ng));
  }
  if (v.issues > v.grants) {
    ctx.fail("atu", now,
             fmt("issued ", v.issues, " accesses but only ", v.grants,
                 " were granted (gate bypassed)"));
  }
  if (v.wg == 0 && v.blocked_until != 0) {
    ctx.fail("atu", now,
             fmt("throttling disabled (WG=0) but a blocked window is still "
                 "armed until GPU cycle ",
                 v.blocked_until));
  }
  if (v.window_overlaps > 0) {
    ctx.fail("atu", now, fmt(v.window_overlaps,
                             " disabled windows began while a previous window "
                             "was still active (overlapping WG windows)"));
  }
}

void audit_channel(CheckContext& ctx, Cycle now, const ChannelAuditView& v) {
  if (v.read_bound > 0 && v.read_depth > v.read_bound) {
    ctx.fail("dram", now,
             fmt("channel ", v.index, " read queue depth ", v.read_depth,
                 " exceeds the feeding MSHR pool ", v.read_bound));
  }
  if (v.write_bound > 0 && v.write_depth > v.write_bound) {
    ctx.fail("dram", now, fmt("channel ", v.index, " write queue depth ",
                              v.write_depth, " exceeds bound ", v.write_bound));
  }
  if (v.starvation_bound > 0 && v.oldest_read_arrival != kNoCycle &&
      v.now > v.oldest_read_arrival &&
      v.now - v.oldest_read_arrival > v.starvation_bound) {
    ctx.fail("dram", now,
             fmt("channel ", v.index, " starved a read for ",
                 v.now - v.oldest_read_arrival,
                 " cycles (bound ", v.starvation_bound,
                 "); scheduler is not making forward progress"));
  }
}

void audit_ring(CheckContext& ctx, Cycle now, const RingAuditView& v) {
  if (v.delivered > v.sent) {
    ctx.fail("ring", now, fmt("delivered ", v.delivered,
                              " messages but only ", v.sent,
                              " were sent (duplicated delivery)"));
  }
  if (v.horizon > 0 && v.max_link_reserved > v.now + v.horizon) {
    ctx.fail("ring", now,
             fmt("a link is reserved ", v.max_link_reserved - v.now,
                 " cycles ahead (horizon ", v.horizon,
                 "); ring backlog is unbounded"));
  }
}

void audit_rtp(CheckContext& ctx, Cycle now, const RtpAuditView& v) {
  if (v.capacity > v.max_entries) {
    ctx.fail("rtp", now, fmt("table capacity ", v.capacity,
                             " exceeds the architected ", v.max_entries,
                             " entries (Section III-D)"));
  }
  if (v.used > v.capacity) {
    ctx.fail("rtp", now,
             fmt("used entries ", v.used, " exceed capacity ", v.capacity));
  }
  if (v.rtp_count < v.used) {
    ctx.fail("rtp", now,
             fmt("N_rtp ", v.rtp_count, " below used entries ", v.used,
                 " (overflow folding lost RTPs)"));
  }
  if (!std::isfinite(v.avg_cycles_per_rtp) || v.avg_cycles_per_rtp < 0.0) {
    ctx.fail("rtp", now, fmt("Eq. 2 input C_avg is not finite/non-negative: ",
                             v.avg_cycles_per_rtp));
  }
}

void audit_frpu(CheckContext& ctx, Cycle now, const FrpuAuditView& v) {
  if (v.in_frame && v.tile_slots != v.num_tiles) {
    ctx.fail("frpu", now, fmt("tile bookkeeping has ", v.tile_slots,
                              " slots for ", v.num_tiles, " tiles"));
  }
  if (v.tiles_at_target > v.num_tiles) {
    ctx.fail("frpu", now, fmt("tiles_at_target ", v.tiles_at_target,
                              " exceeds tile count ", v.num_tiles));
  }
  if (!std::isfinite(v.predicted_cycles) || v.predicted_cycles < 0.0) {
    ctx.fail("frpu", now, fmt("Eq. 3 prediction is not finite/non-negative: ",
                              v.predicted_cycles));
  }
}

void audit_engine(CheckContext& ctx, Cycle now, const EngineAuditView& v) {
  if (v.event_bound > 0 && v.pending_events > v.event_bound) {
    ctx.fail("engine", now,
             fmt("pending event population ", v.pending_events,
                 " exceeds bound ", v.event_bound, " (event leak)"));
  }
}

}  // namespace gpuqos
