// FNV-1a state digests for determinism auditing.
//
// Every module exposes a `digest()` that folds its architectural state (tags,
// queues, cursors, controller registers — not closures or host pointers) into
// a 64-bit FNV-1a hash. The CheckContext samples these every N cycles; two
// runs of the same seeded configuration must produce identical streams, and
// the first record where they differ pinpoints the cycle and module that
// diverged (tools/digest_diff, docs/ANALYSIS.md).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gpuqos {

/// Incremental 64-bit FNV-1a hasher.
class Fnv1a64 {
 public:
  static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  void mix_byte(std::uint8_t b) {
    h_ = (h_ ^ b) * kPrime;
  }
  /// Fold a 64-bit value byte-by-byte (fixed little-endian order).
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<std::uint8_t>(v >> (i * 8)));
  }
  void mix_signed(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
  void mix_bool(bool b) { mix_byte(b ? 1 : 0); }
  /// Doubles are folded by bit pattern; all simulator doubles come from IEEE
  /// +,-,*,/ over seeded integer state, so the pattern is run-invariant.
  void mix_double(double d) { mix(std::bit_cast<std::uint64_t>(d)); }
  void mix_string(std::string_view s) {
    for (char c : s) mix_byte(static_cast<std::uint8_t>(c));
    mix_byte(0);  // terminator so {"ab","c"} != {"a","bc"}
  }

  /// Order-independent fold for unordered containers: XOR the element hashes
  /// before mixing, so iteration order cannot leak into the digest.
  void mix_unordered(std::uint64_t element_hash) { acc_ ^= element_hash; }
  void commit_unordered() {
    mix(acc_);
    acc_ = 0;
  }

  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = kOffsetBasis;
  std::uint64_t acc_ = 0;
};

/// One sampled digest: (cycle, module, hash). Streams of these are what
/// `--digest-out` emits and what the comparator consumes.
struct DigestRecord {
  std::uint64_t cycle = 0;
  std::string module;
  std::uint64_t hash = 0;

  friend bool operator==(const DigestRecord&, const DigestRecord&) = default;
};

/// First record index where the streams differ (value mismatch or one stream
/// ending early); nullopt when identical.
struct DigestDivergence {
  std::size_t index = 0;
  std::uint64_t cycle = 0;     // cycle of the divergent record
  std::string module;          // module of the divergent record
  bool length_mismatch = false;
};

[[nodiscard]] std::optional<DigestDivergence> first_divergence(
    const std::vector<DigestRecord>& a, const std::vector<DigestRecord>& b);

/// Text stream format (one record per line): "<cycle> <module> <hex hash>".
/// Lines starting with '#' are comments and are skipped on parse.
void write_digest_stream(std::ostream& os,
                         const std::vector<DigestRecord>& records);
[[nodiscard]] std::vector<DigestRecord> parse_digest_stream(std::istream& is);

}  // namespace gpuqos
