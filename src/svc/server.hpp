// The gpuqos_serve daemon core: a Unix-domain-socket server wrapping one
// Executor (docs/SERVICE.md §daemon).
//
// One accept thread polls the listen socket plus a self-pipe; each accepted
// connection gets its own thread running the frame loop (hello negotiation,
// then submit -> progress*/result*/done). Connections are independent — two
// clients submitting overlapping batches share the executor's store and warm
// cache, so the second client's duplicate jobs come back as store hits.
//
// Error discipline (see protocol.hpp): framing-level corruption gets an
// error frame with code "bad-frame"/"version-mismatch" and the connection
// closes (byte sync is lost or the peer speaks a different protocol);
// malformed jobs inside a valid submit get "bad-job" and the connection
// stays usable; executor failures get "internal".
//
// Shutdown: request_stop() is async-signal-safe (one write to the self-pipe)
// so SIGTERM/SIGINT handlers can call it directly. The server then stops
// accepting, lets every in-flight batch finish and send its done frame
// (graceful drain — partial results are already persisted in the store
// either way), joins the connection threads, and removes the socket file.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "svc/exec.hpp"

namespace gpuqos {
class BinLogWriter;
}

namespace gpuqos::svc {

struct ServerOptions {
  std::string socket_path;
  /// Per-connection socket send/receive timeout, seconds (0 = none). Bounds
  /// how long a dead peer can pin a connection thread.
  double io_timeout_s = 30.0;
  /// When set, a "svc.jobs" binlog stream records every job's lifecycle
  /// (batch, key, source, digest); written out on shutdown.
  std::string binlog_path;
};

class Server {
 public:
  /// `exec` must outlive the server. Throws std::runtime_error when the
  /// socket cannot be bound (stale socket files are unlinked first).
  Server(Executor& exec, ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and spawn the accept thread.
  void start();
  /// Block until stop() completes (used by the daemon main).
  void wait();
  /// Graceful drain; idempotent. Safe to call from any thread.
  void stop();
  /// Async-signal-safe stop request (one self-pipe write); the accept
  /// thread picks it up and runs the drain.
  void request_stop() noexcept;

  // Lifetime counters.
  [[nodiscard]] std::uint64_t connections() const { return connections_.load(); }
  [[nodiscard]] std::uint64_t batches() const { return batches_.load(); }
  [[nodiscard]] std::uint64_t frame_errors() const { return frame_errors_.load(); }

 private:
  void accept_loop();
  void serve_connection(int fd);
  void log_job_locked(std::uint64_t batch_id, const JobResult& r);

  Executor& exec_;
  ServerOptions opts_;
  int listen_fd_ = -1;      /*own:guarded: written in start() before any
      thread exists, read-only afterwards*/
  int stop_pipe_[2] = {-1, -1};
  std::thread accept_thread_; /*own:guarded: set in start() before workers
      spawn, joined in stop() after the stop flag*/
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};

  std::mutex conn_mu_;  // guards conn_threads_
  std::vector<std::thread> conn_threads_;

  std::mutex binlog_mu_;  // guards binlog_ rows
  std::unique_ptr<BinLogWriter> binlog_;
  std::uint32_t binlog_stream_ = 0;

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> frame_errors_{0};
};

}  // namespace gpuqos::svc
