// Canonical sweep-job description for the simulation service
// (docs/SERVICE.md). A JobSpec names one simulation — the same vocabulary the
// figure harnesses use (preset, mix, policy, RunScale budgets, seed, FPS
// target) — in a form that can cross the wire and act as a content address:
//
//  * canonical(spec)       — one-line key=value rendering with a fixed field
//    order; two specs describing the same simulation always canonicalize to
//    the same bytes, so FNV-1a over it is the dedup key.
//  * warm_canonical(spec)  — the same minus the policy: warm-up state is
//    policy-independent by construction (the executor always warms under
//    Policy::Baseline and forks, see exec.hpp), so jobs differing only in
//    policy share one warm checkpoint cache entry.
#pragma once

#include <cstdint>
#include <string>

#include "sim/runner.hpp"
#include "svc/json.hpp"

namespace gpuqos::svc {

/// Malformed job/frame content (unknown mix, bad policy, missing field).
/// Distinct from JsonError so the server can reply with the right typed
/// error code ("bad-job" vs "bad-frame").
class SpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class JobKind : std::uint8_t {
  kHetero,    // Table III mix under a policy (run_hetero)
  kCpuAlone,  // one SPEC application, GPU idle (standalone_cpu_ipc)
  kGpuAlone,  // one GPU application, CPUs idle (standalone_gpu)
};

[[nodiscard]] const char* to_string(JobKind k);

struct JobSpec {
  JobKind kind = JobKind::kHetero;
  std::string preset = "scaled";  // "scaled" | "paper" (SimConfig preset)
  std::string mix_id;             // kHetero: "M1".."W14"
  std::string gpu_app;            // kGpuAlone: Table II application name
  int spec_id = 0;                // kCpuAlone: SPEC application id
  std::string policy = "Baseline";  // kHetero only; validated on execution
  RunScale scale;                 // warm/measure budgets
  std::uint64_t seed = 42;
  double target_fps = 40.0;
};

/// Canonical one-line rendering (the dedup identity). Stable across
/// processes and protocol versions; extend only by appending fields.
[[nodiscard]] std::string canonical(const JobSpec& spec);

/// canonical() minus the policy field: the warm-checkpoint cache key.
[[nodiscard]] std::string warm_canonical(const JobSpec& spec);

/// FNV-1a64 of canonical(spec) — the content address in the result store.
[[nodiscard]] std::uint64_t job_key(const JobSpec& spec);
/// job_key as 16 hex digits (store file names, log lines).
[[nodiscard]] std::string job_key_hex(const JobSpec& spec);

/// JSON wire form (`submit` frames). from_json throws SpecError on missing
/// or malformed fields; semantic validation (mix exists, policy parses)
/// happens in validate().
[[nodiscard]] JsonValue to_json(const JobSpec& spec);
[[nodiscard]] JobSpec job_from_json(const JsonValue& v);

/// Throws SpecError when the spec names an unknown mix/app/policy/preset or
/// carries empty budgets that would hang the simulator.
void validate(const JobSpec& spec);

/// SimConfig the job runs under (preset + seed + FPS target + core count).
[[nodiscard]] SimConfig config_for(const JobSpec& spec);

/// Convenience builder for the common hetero case.
[[nodiscard]] JobSpec hetero_job(const std::string& mix_id,
                                 const std::string& policy,
                                 const RunScale& scale);

}  // namespace gpuqos::svc
