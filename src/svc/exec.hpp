// Batch executor: the one engine behind both the daemon (server.hpp) and the
// in-process fallback (client.hpp), so "daemon reachable" vs "run locally" is
// a transport decision, not a results decision (docs/SERVICE.md §executor).
//
// Per job: consult the persistent ResultStore (content address = job_key);
// on a miss, simulate and store. Hetero jobs always execute warm-then-fork —
// warm up under Policy::Baseline, drain, snapshot (shared via WarmCache
// across every policy of the same mix/scale/seed), then fork the measured
// phase under the requested policy. Always forking, even on a cold warm
// cache, keeps results canonical: a cold run, a warm-cache hit, a store hit,
// and a daemon-restart replay all produce byte-identical result containers.
// Standalone jobs (kCpuAlone/kGpuAlone) have no warm phase to share and run
// whole.
//
// Batches run on sim::run_many (GPUQOS_THREADS pool); results keep job
// order. Exact duplicate specs within a batch simulate once.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/runner.hpp"
#include "svc/jobspec.hpp"
#include "svc/store.hpp"
#include "svc/warm_cache.hpp"

namespace gpuqos::svc {

struct ExecOptions {
  /// Result-store directory ("" = no persistence).
  std::string store_dir;
  /// Warm-cache bound in bytes (0 = unbounded).
  std::uint64_t warm_cache_max = 256ull << 20;
  /// Worker threads for run_many (0 = auto / GPUQOS_THREADS).
  unsigned threads = 0;
};

/// How a finished job's bytes were obtained.
enum class JobSource : std::uint8_t {
  kStore,     // persistent store hit — zero simulation
  kWarmFork,  // warm snapshot was cached — only the measured phase ran
  kCold,      // full run (warm-up + measure, or a standalone job)
};

[[nodiscard]] const char* to_string(JobSource s);

struct JobResult {
  JobSpec spec;
  HeteroResult result;
  std::vector<std::uint8_t> bytes;  // encoded result container (result_io)
  std::uint64_t digest = 0;         // result_digest(bytes)
  JobSource source = JobSource::kCold;
};

/// Per-batch execution summary (the `done` frame payload).
struct BatchStats {
  std::uint64_t jobs = 0;
  std::uint64_t store_hits = 0;
  std::uint64_t warm_forks = 0;  // measured-phase-only simulations
  std::uint64_t cold_runs = 0;
  std::uint64_t dup_jobs = 0;  // in-batch duplicates served by copy
};

class Executor {
 public:
  explicit Executor(const ExecOptions& opts);

  /// Called as each job finishes, in completion order, serialized by an
  /// internal mutex (safe to write sockets or stdout from it).
  using Progress =
      std::function<void(std::size_t done, std::size_t total, const JobResult&)>;

  /// Execute a batch; results[i] corresponds to jobs[i]. Specs must already
  /// be validated (validate(spec)); execution errors propagate as the first
  /// job's exception after the pool drains (run_many semantics).
  [[nodiscard]] std::vector<JobResult> run_batch(
      const std::vector<JobSpec>& jobs, const Progress& progress = {},
      BatchStats* stats = nullptr);

  [[nodiscard]] ResultStore& store() { return store_; }
  [[nodiscard]] WarmCache& warm_cache() { return warm_cache_; }

  // Lifetime counters across batches (served by the daemon's obs surface).
  [[nodiscard]] std::uint64_t requests() const { return requests_.load(); }
  [[nodiscard]] std::uint64_t sim_runs() const { return sim_runs_.load(); }
  [[nodiscard]] std::uint64_t warm_forks() const { return warm_forks_.load(); }

 private:
  [[nodiscard]] JobResult run_one(const JobSpec& spec);

  ExecOptions opts_;
  ResultStore store_;
  WarmCache warm_cache_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> sim_runs_{0};
  std::atomic<std::uint64_t> warm_forks_{0};
};

}  // namespace gpuqos::svc
