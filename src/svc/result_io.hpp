// HeteroResult <-> CRC-guarded container bytes (docs/SERVICE.md §store).
//
// A stored result reuses the snapshot container (ckpt::StateWriter: magic +
// version header, CRC-guarded sections), so a corrupted store file is
// rejected with a ckpt::CkptError naming the bad section instead of being
// silently served. Two sections:
//
//   "svc.job"    — format version + the canonical job line the result was
//                  computed for. Decoding verifies it against the requesting
//                  spec, so an FNV key collision (or a renamed file) can
//                  never serve the wrong job's numbers.
//   "svc.result" — every HeteroResult field, fixed order.
//
// encode is deterministic: byte-identical results <=> identical simulations,
// which is what the dedup/byte-identity acceptance checks compare.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/runner.hpp"
#include "svc/jobspec.hpp"

namespace gpuqos::svc {

inline constexpr std::uint32_t kResultFormat = 1;

[[nodiscard]] std::vector<std::uint8_t> encode_result(const JobSpec& spec,
                                                      const HeteroResult& r);

/// Decode + validate: container framing, CRCs, format version, and the
/// canonical-job binding. Throws ckpt::CkptError on any mismatch.
[[nodiscard]] HeteroResult decode_result(const JobSpec& spec,
                                         const std::vector<std::uint8_t>& bytes);

/// FNV-1a64 over the encoded container — the digest reported in `result`
/// frames and compared by the byte-identity tests.
[[nodiscard]] std::uint64_t result_digest(const std::vector<std::uint8_t>& bytes);

}  // namespace gpuqos::svc
