// gpuqos_serve wire protocol (docs/SERVICE.md §protocol).
//
// A connection carries length-prefixed JSON frames in both directions:
//
//   [u32 little-endian payload length][payload: one JSON object + '\n']
//
// The trailing newline is part of the payload (so `socat`/log dumps stay
// line-readable) and is included in the length. Frame types:
//
//   client -> server : hello {version}, submit {id, jobs[]}
//   server -> client : hello {version}, progress {id, done, total, ...},
//                      result {id, index, key, source, digest, bytes},
//                      done {id, stats}, error {code, message [, id]}
//
// Versioning: the client's hello carries the highest protocol version it
// speaks; the server replies with min(client, server) or an error frame with
// code "version-mismatch" when there is no overlap. Malformed framing (bad
// length, oversized frame, invalid JSON) is unrecoverable — the peer replies
// error code "bad-frame" and closes, since byte sync is lost. Malformed jobs
// inside a well-framed submit get error code "bad-job" and the connection
// stays usable.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "svc/exec.hpp"
#include "svc/json.hpp"

namespace gpuqos::svc {

inline constexpr std::uint32_t kProtoVersion = 1;

/// Upper bound on one frame's payload; a length prefix beyond this is treated
/// as framing corruption, not an allocation request.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Upper bound on jobs in one submit batch: the job array sizes the spec
/// vector and the executor's result store, so the count is validated before
/// any allocation keys off it.
inline constexpr std::size_t kMaxBatchJobs = 4096;

/// Framing-level failure (length, size bound, JSON syntax). The connection
/// cannot continue after one of these.
class ProtoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

[[nodiscard]] std::string hex_encode(const std::vector<std::uint8_t>& bytes);
/// Throws ProtoError on odd length or non-hex characters.
[[nodiscard]] std::vector<std::uint8_t> hex_decode(const std::string& hex);
[[nodiscard]] std::string u64_hex(std::uint64_t v);  // 16 digits

/// Serialize one frame: length prefix + JSON text + '\n'.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const JsonValue& v);

/// Incremental frame decoder: feed() raw socket bytes, next() yields one
/// parsed frame object at a time. Throws ProtoError on oversized frames or
/// invalid JSON; after a throw the stream is out of sync and must be closed.
class FrameReader {
 public:
  void feed(const std::uint8_t* data, std::size_t n);
  [[nodiscard]] std::optional<JsonValue> next();
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix, reclaimed when the buffer drains
};

// --- Frame builders --------------------------------------------------------

[[nodiscard]] JsonValue hello_frame(std::uint32_t version);
[[nodiscard]] JsonValue submit_frame(std::uint64_t batch_id,
                                     const std::vector<JobSpec>& jobs);
[[nodiscard]] JsonValue progress_frame(std::uint64_t batch_id,
                                       std::size_t done, std::size_t total,
                                       const JobResult& r);
[[nodiscard]] JsonValue result_frame(std::uint64_t batch_id, std::size_t index,
                                     const JobResult& r);
[[nodiscard]] JsonValue done_frame(std::uint64_t batch_id,
                                   const BatchStats& stats);
[[nodiscard]] JsonValue error_frame(const std::string& code,
                                    const std::string& message);

/// Frame type tag, or throws JsonError when `type` is missing/not a string.
[[nodiscard]] const std::string& frame_type(const JsonValue& v);

/// Decode a result frame back into a JobResult (bytes hex-decoded, container
/// decoded + CRC/identity-validated against `spec`). Throws ProtoError /
/// ckpt::CkptError on malformed or mismatched content.
[[nodiscard]] JobResult decode_result_frame(const JsonValue& v,
                                            const JobSpec& spec);

/// Parse a submit frame's job list. Throws SpecError ("bad-job") on
/// malformed entries, JsonError on missing structure.
[[nodiscard]] std::vector<JobSpec> decode_submit_jobs(const JsonValue& v);

}  // namespace gpuqos::svc
