#include "svc/result_io.hpp"

#include <limits>
#include <string>
#include <utility>

#include "check/digest.hpp"
#include "ckpt/state_io.hpp"

namespace gpuqos::svc {

std::vector<std::uint8_t> encode_result(const JobSpec& spec,
                                        const HeteroResult& r) {
  ckpt::StateWriter w;
  w.begin_section("svc.job");
  w.u32(kResultFormat);
  w.str(canonical(spec));
  w.end_section();

  w.begin_section("svc.result");
  w.str(r.mix_id);
  w.str(to_string(r.policy));
  w.u64(r.spec_ids.size());
  for (int id : r.spec_ids) w.i64(id);
  w.u64(r.cpu_ipc.size());
  for (double v : r.cpu_ipc) w.f64(v);
  w.f64(r.fps);
  w.f64(r.gpu_frame_cycles);
  w.f64(r.seconds);
  w.boolean(r.hit_cycle_cap);
  w.f64(r.est_error_pct);
  w.u64(r.est_samples);
  w.u64(r.est_relearns);
  w.u64(r.stat_delta.size());
  for (const auto& [name, value] : r.stat_delta) {  // std::map: sorted, stable
    w.str(name);
    w.u64(value);
  }
  w.end_section();
  return w.finish();
}

HeteroResult decode_result(const JobSpec& spec,
                           const std::vector<std::uint8_t>& bytes) {
  ckpt::StateReader reader(bytes);
  if (!reader.next_section() || reader.tag() != "svc.job") {
    throw ckpt::CkptError("svc.result: expected svc.job section first");
  }
  const std::uint32_t format = reader.u32();
  if (format != kResultFormat) {
    reader.fail("svc.job: unsupported result format " + std::to_string(format));
  }
  const std::string stored = reader.str();
  const std::string wanted = canonical(spec);
  if (stored != wanted) {
    reader.fail("svc.job: stored result is for '" + stored +
                "', requested '" + wanted + "'");
  }
  reader.expect_section_end();

  if (!reader.next_section() || reader.tag() != "svc.result") {
    throw ckpt::CkptError("svc.result: missing svc.result section");
  }
  HeteroResult r;
  r.mix_id = reader.str();
  const std::string policy_name = reader.str();
  if (!policy_from_string(policy_name, r.policy)) {
    reader.fail("svc.result: unknown policy '" + policy_name + "'");
  }
  const std::uint64_t n_spec = reader.u64();
  if (n_spec > reader.remaining()) reader.fail("svc.result: spec_ids overrun");
  r.spec_ids.reserve(static_cast<std::size_t>(n_spec));
  for (std::uint64_t i = 0; i < n_spec; ++i) {
    const std::int64_t sid = reader.i64();
    if (sid < 0 || sid > std::numeric_limits<int>::max()) {
      reader.fail("svc.result: spec id " + std::to_string(sid) +
                  " out of range");
    }
    r.spec_ids.push_back(static_cast<int>(sid));
  }
  const std::uint64_t n_ipc = reader.u64();
  if (n_ipc > reader.remaining()) reader.fail("svc.result: cpu_ipc overrun");
  r.cpu_ipc.reserve(static_cast<std::size_t>(n_ipc));
  for (std::uint64_t i = 0; i < n_ipc; ++i) r.cpu_ipc.push_back(reader.f64());
  r.fps = reader.f64();
  r.gpu_frame_cycles = reader.f64();
  r.seconds = reader.f64();
  r.hit_cycle_cap = reader.boolean();
  r.est_error_pct = reader.f64();
  r.est_samples = reader.u64();
  r.est_relearns = reader.u64();
  const std::uint64_t n_stats = reader.u64();
  if (n_stats > reader.remaining()) {
    reader.fail("svc.result: stat_delta overrun");
  }
  for (std::uint64_t i = 0; i < n_stats; ++i) {
    std::string name = reader.str();
    const std::uint64_t value = reader.u64();
    r.stat_delta.emplace(std::move(name), value);
  }
  reader.expect_section_end();
  return r;
}

std::uint64_t result_digest(const std::vector<std::uint8_t>& bytes) {
  Fnv1a64 h;
  for (std::uint8_t b : bytes) h.mix_byte(b);
  return h.value();
}

}  // namespace gpuqos::svc
