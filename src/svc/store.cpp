#include "svc/store.hpp"

#include <cstdio>
#include <filesystem>

#include "ckpt/state_io.hpp"
#include "svc/result_io.hpp"

namespace gpuqos::svc {

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir)) {
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
      throw ckpt::CkptError("result store: cannot create '" + dir_ +
                            "': " + ec.message());
    }
  }
}

std::string ResultStore::path_for(const JobSpec& spec) const {
  return dir_ + "/" + job_key_hex(spec) + ".gqr";
}

std::optional<std::vector<std::uint8_t>> ResultStore::get(const JobSpec& spec) {
  if (!enabled()) return std::nullopt;
  const std::string path = path_for(spec);
  if (!std::filesystem::exists(path)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++misses_;
    return std::nullopt;
  }
  try {
    std::vector<std::uint8_t> bytes = ckpt::read_snapshot_file(path);
    (void)decode_result(spec, bytes);  // full CRC + identity validation
    std::lock_guard<std::mutex> lock(mu_);
    ++hits_;
    return bytes;
  } catch (const ckpt::CkptError& e) {
    // Corruption or a key collision: treat as a miss so the job re-runs and
    // put() overwrites the bad file. Never serve unvalidated bytes.
    std::fprintf(stderr, "[svc.store] rejecting %s: %s\n", path.c_str(),
                 e.what());
    std::lock_guard<std::mutex> lock(mu_);
    ++rejects_;
    ++misses_;
    return std::nullopt;
  }
}

void ResultStore::put(const JobSpec& spec, const std::vector<std::uint8_t>& bytes) {
  if (!enabled()) return;
  std::string tmp;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tmp = dir_ + "/.put." + std::to_string(tmp_seq_++) + ".tmp";
  }
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw ckpt::CkptError("result store: cannot open '" + tmp + "'");
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    throw ckpt::CkptError("result store: short write to '" + tmp + "'");
  }
  const std::string path = path_for(spec);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw ckpt::CkptError("result store: cannot rename '" + tmp + "' to '" +
                          path + "'");
  }
}

std::uint64_t ResultStore::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}
std::uint64_t ResultStore::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}
std::uint64_t ResultStore::rejects() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejects_;
}

}  // namespace gpuqos::svc
