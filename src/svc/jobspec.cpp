#include "svc/jobspec.hpp"

#include <cstdio>

#include "check/digest.hpp"
#include "workloads/gpu_apps.hpp"
#include "workloads/mixes.hpp"
#include "workloads/spec.hpp"

namespace gpuqos::svc {
namespace {

/// Canonical double rendering: shortest round-trip form, so 40.0 -> "40" in
/// every process that ever hashes a spec.
std::string canon_f64(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void append_scale(std::string& out, const RunScale& s) {
  out += ";wi=" + std::to_string(s.warm_instrs);
  out += ";mi=" + std::to_string(s.measure_instrs);
  out += ";wf=" + std::to_string(s.warm_frames);
  out += ";mf=" + std::to_string(s.measure_frames);
  out += ";wmc=" + std::to_string(s.warm_min_cycles);
  out += ";cap=" + std::to_string(s.max_cycles);
}

std::string canonical_impl(const JobSpec& spec, bool with_policy) {
  std::string out = "v1;kind=";
  out += to_string(spec.kind);
  out += ";preset=" + spec.preset;
  switch (spec.kind) {
    case JobKind::kHetero:
      out += ";mix=" + spec.mix_id;
      break;
    case JobKind::kCpuAlone:
      out += ";spec=" + std::to_string(spec.spec_id);
      break;
    case JobKind::kGpuAlone:
      out += ";app=" + spec.gpu_app;
      break;
  }
  if (with_policy && spec.kind == JobKind::kHetero) {
    out += ";policy=" + spec.policy;
  }
  out += ";seed=" + std::to_string(spec.seed);
  out += ";tfps=" + canon_f64(spec.target_fps);
  append_scale(out, spec.scale);
  return out;
}

JsonValue scale_json(const RunScale& s) {
  JsonValue v = JsonValue::object();
  v.add("warm_instrs", JsonValue::num_u64(s.warm_instrs));
  v.add("measure_instrs", JsonValue::num_u64(s.measure_instrs));
  v.add("warm_frames", JsonValue::num_u64(s.warm_frames));
  v.add("measure_frames", JsonValue::num_u64(s.measure_frames));
  v.add("warm_min_cycles", JsonValue::num_u64(s.warm_min_cycles));
  v.add("max_cycles", JsonValue::num_u64(s.max_cycles));
  return v;
}

RunScale scale_from_json(const JsonValue& v) {
  RunScale s;
  s.warm_instrs = v.req_u64("warm_instrs");
  s.measure_instrs = v.req_u64("measure_instrs");
  s.warm_frames = static_cast<unsigned>(v.req_u64("warm_frames"));
  s.measure_frames = static_cast<unsigned>(v.req_u64("measure_frames"));
  s.warm_min_cycles = v.req_u64("warm_min_cycles");
  s.max_cycles = v.req_u64("max_cycles");
  return s;
}

}  // namespace

const char* to_string(JobKind k) {
  switch (k) {
    case JobKind::kHetero: return "hetero";
    case JobKind::kCpuAlone: return "cpu_alone";
    case JobKind::kGpuAlone: return "gpu_alone";
  }
  return "?";
}

std::string canonical(const JobSpec& spec) {
  return canonical_impl(spec, /*with_policy=*/true);
}

std::string warm_canonical(const JobSpec& spec) {
  return "warm;" + canonical_impl(spec, /*with_policy=*/false);
}

std::uint64_t job_key(const JobSpec& spec) {
  Fnv1a64 h;
  h.mix_string(canonical(spec));
  return h.value();
}

std::string job_key_hex(const JobSpec& spec) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(job_key(spec)));
  return buf;
}

JsonValue to_json(const JobSpec& spec) {
  JsonValue v = JsonValue::object();
  v.add("kind", JsonValue::str(to_string(spec.kind)));
  v.add("preset", JsonValue::str(spec.preset));
  switch (spec.kind) {
    case JobKind::kHetero:
      v.add("mix", JsonValue::str(spec.mix_id));
      v.add("policy", JsonValue::str(spec.policy));
      break;
    case JobKind::kCpuAlone:
      v.add("spec", JsonValue::num_u64(static_cast<std::uint64_t>(spec.spec_id)));
      break;
    case JobKind::kGpuAlone:
      v.add("app", JsonValue::str(spec.gpu_app));
      break;
  }
  v.add("seed", JsonValue::num_u64(spec.seed));
  v.add("target_fps", JsonValue::num_f64(spec.target_fps));
  v.add("scale", scale_json(spec.scale));
  return v;
}

JobSpec job_from_json(const JsonValue& v) {
  try {
    JobSpec spec;
    const std::string& kind = v.req_string("kind");
    if (kind == "hetero") {
      spec.kind = JobKind::kHetero;
      spec.mix_id = v.req_string("mix");
      spec.policy = v.req_string("policy");
    } else if (kind == "cpu_alone") {
      spec.kind = JobKind::kCpuAlone;
      spec.spec_id = static_cast<int>(v.req_u64("spec"));
    } else if (kind == "gpu_alone") {
      spec.kind = JobKind::kGpuAlone;
      spec.gpu_app = v.req_string("app");
    } else {
      throw SpecError("job: unknown kind '" + kind + "'");
    }
    spec.preset = v.req_string("preset");
    spec.seed = v.req_u64("seed");
    spec.target_fps = v.req_f64("target_fps");
    spec.scale = scale_from_json(v.req("scale"));
    return spec;
  } catch (const JsonError& e) {
    throw SpecError(std::string("job: ") + e.what());
  }
}

void validate(const JobSpec& spec) {
  if (spec.preset != "scaled" && spec.preset != "paper") {
    throw SpecError("job: unknown preset '" + spec.preset + "'");
  }
  if (spec.scale.max_cycles == 0) {
    throw SpecError("job: max_cycles must be nonzero");
  }
  switch (spec.kind) {
    case JobKind::kHetero: {
      Policy p;
      if (!policy_from_string(spec.policy, p)) {
        throw SpecError("job: unknown policy '" + spec.policy + "'");
      }
      try {
        (void)mix(spec.mix_id);
      } catch (const std::exception& e) {
        throw SpecError(std::string("job: ") + e.what());
      }
      break;
    }
    case JobKind::kGpuAlone:
      try {
        (void)gpu_app(spec.gpu_app);
      } catch (const std::exception& e) {
        throw SpecError(std::string("job: ") + e.what());
      }
      break;
    case JobKind::kCpuAlone:
      try {
        (void)spec_profile(spec.spec_id);
      } catch (const std::exception& e) {
        throw SpecError(std::string("job: ") + e.what());
      }
      break;
  }
}

SimConfig config_for(const JobSpec& spec) {
  SimConfig cfg = spec.preset == "paper" ? Presets::paper() : Presets::scaled();
  cfg.seed = spec.seed;
  cfg.qos.target_fps = spec.target_fps;
  if (spec.kind == JobKind::kCpuAlone) {
    cfg.cpu_cores = 1;
  } else if (spec.kind == JobKind::kHetero &&
             mix(spec.mix_id).cpu_specs.size() == 1) {
    cfg.cpu_cores = 1;  // W-mixes: the Section II one-core configuration
  }
  return cfg;
}

JobSpec hetero_job(const std::string& mix_id, const std::string& policy,
                   const RunScale& scale) {
  JobSpec spec;
  spec.kind = JobKind::kHetero;
  spec.mix_id = mix_id;
  spec.policy = policy;
  spec.scale = scale;
  return spec;
}

}  // namespace gpuqos::svc
