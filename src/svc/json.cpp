#include "svc/json.hpp"

#include <cctype>
#include <cstdio>

#include "common/cli.hpp"
#include "common/jsonio.hpp"

namespace gpuqos::svc {
namespace {

constexpr int kMaxDepth = 64;

[[noreturn]] void fail_at(std::size_t pos, const std::string& why) {
  throw JsonError("json: " + why + " at byte " + std::to_string(pos));
}

class Parser {
 public:
  explicit Parser(std::string_view src) : src_(src) {}

  JsonValue run() {
    JsonValue v = value(0);
    skip_ws();
    if (pos_ != src_.size()) fail_at(pos_, "trailing data after document");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= src_.size()) fail_at(pos_, "unexpected end of input");
    return src_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail_at(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < src_.size() && src_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue value(int depth) {
    if (depth > kMaxDepth) fail_at(pos_, "nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return object(depth);
      case '[':
        return array(depth);
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.text = string();
        return v;
      }
      case 't':
        keyword("true");
        return JsonValue::boolean(true);
      case 'f':
        keyword("false");
        return JsonValue::boolean(false);
      case 'n': {
        keyword("null");
        return JsonValue{};
      }
      default:
        return number();
    }
  }

  void keyword(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= src_.size() || src_[pos_] != *p) {
        fail_at(pos_, std::string("expected '") + word + "'");
      }
      ++pos_;
    }
  }

  JsonValue object(int depth) {
    expect('{');
    JsonValue v = JsonValue::object();
    skip_ws();
    if (consume('}')) return v;
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.fields.emplace_back(std::move(key), value(depth + 1));
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return v;
    }
  }

  JsonValue array(int depth) {
    expect('[');
    JsonValue v = JsonValue::array();
    skip_ws();
    if (consume(']')) return v;
    for (;;) {
      v.items.push_back(value(depth + 1));
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= src_.size()) fail_at(pos_, "unterminated string");
      const char c = src_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail_at(pos_ - 1, "raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= src_.size()) fail_at(pos_, "dangling escape");
      const char e = src_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          const unsigned cp = hex4();
          // Basic-plane decode only; surrogate pairs are not needed by the
          // protocol (all frame strings are ASCII identifiers/paths) but a
          // lone surrogate must still not produce garbage bytes.
          if (cp >= 0xD800 && cp <= 0xDFFF) {
            fail_at(pos_, "surrogate escapes are not supported");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail_at(pos_ - 1, "invalid escape");
      }
    }
  }

  unsigned hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= src_.size()) fail_at(pos_, "truncated \\u escape");
      const char c = src_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail_at(pos_ - 1, "invalid \\u escape digit");
      }
    }
    return v;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0u | (cp >> 6)));
      out.push_back(static_cast<char>(0x80u | (cp & 0x3Fu)));
    } else {
      out.push_back(static_cast<char>(0xE0u | (cp >> 12)));
      out.push_back(static_cast<char>(0x80u | ((cp >> 6) & 0x3Fu)));
      out.push_back(static_cast<char>(0x80u | (cp & 0x3Fu)));
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (consume('-')) { /* sign */ }
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      fail_at(pos_, "invalid value");
    }
    while (pos_ < src_.size() &&
           std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
      ++pos_;
    }
    if (consume('.')) {
      if (pos_ >= src_.size() ||
          !std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        fail_at(pos_, "digits must follow '.'");
      }
      while (pos_ < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < src_.size() && (src_[pos_] == 'e' || src_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < src_.size() && (src_[pos_] == '+' || src_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= src_.size() ||
          !std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        fail_at(pos_, "digits must follow exponent");
      }
      while (pos_ < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        ++pos_;
      }
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.text.assign(src_.substr(start, pos_ - start));
    return v;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
};

void write_value(const JsonValue& v, std::string& out) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      out += "null";
      return;
    case JsonValue::Kind::kBool:
      out += v.flag ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber:
      out += v.text;
      return;
    case JsonValue::Kind::kString:
      out += '"';
      out += json_escape(v.text);
      out += '"';
      return;
    case JsonValue::Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < v.items.size(); ++i) {
        if (i > 0) out += ',';
        write_value(v.items[i], out);
      }
      out += ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < v.fields.size(); ++i) {
        if (i > 0) out += ',';
        out += '"';
        out += json_escape(v.fields[i].first);
        out += "\":";
        write_value(v.fields[i].second, out);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

const JsonValue* JsonValue::get(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::string& JsonValue::as_string(const char* what) const {
  if (kind != Kind::kString) {
    throw JsonError(std::string("json: ") + what + " must be a string");
  }
  return text;
}

std::uint64_t JsonValue::as_u64(const char* what) const {
  std::uint64_t out = 0;
  if (kind != Kind::kNumber || !cli::parse_u64(text.c_str(), out)) {
    throw JsonError(std::string("json: ") + what +
                    " must be an unsigned integer");
  }
  return out;
}

double JsonValue::as_f64(const char* what) const {
  double out = 0.0;
  if (kind != Kind::kNumber || !cli::parse_f64(text.c_str(), out)) {
    throw JsonError(std::string("json: ") + what + " must be a number");
  }
  return out;
}

const JsonValue& JsonValue::req(const char* key) const {
  const JsonValue* v = get(key);
  if (v == nullptr) {
    throw JsonError(std::string("json: missing required field '") + key + "'");
  }
  return *v;
}

const std::string& JsonValue::req_string(const char* key) const {
  return req(key).as_string(key);
}
std::uint64_t JsonValue::req_u64(const char* key) const {
  return req(key).as_u64(key);
}
double JsonValue::req_f64(const char* key) const { return req(key).as_f64(key); }

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind = Kind::kObject;
  return v;
}
JsonValue JsonValue::array() {
  JsonValue v;
  v.kind = Kind::kArray;
  return v;
}
JsonValue JsonValue::str(std::string s) {
  JsonValue v;
  v.kind = Kind::kString;
  v.text = std::move(s);
  return v;
}
JsonValue JsonValue::num_u64(std::uint64_t n) {
  JsonValue v;
  v.kind = Kind::kNumber;
  v.text = std::to_string(n);
  return v;
}
JsonValue JsonValue::num_f64(double d) {
  JsonValue v;
  v.kind = Kind::kNumber;
  // Max round-trip precision: the result frames carry doubles that must
  // survive daemon -> client unchanged (json_double's 12 digits would not).
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  v.text = buf;
  return v;
}
JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind = Kind::kBool;
  v.flag = b;
  return v;
}

JsonValue& JsonValue::add(std::string key, JsonValue v) {
  fields.emplace_back(std::move(key), std::move(v));
  return *this;
}
JsonValue& JsonValue::push(JsonValue v) {
  items.push_back(std::move(v));
  return *this;
}

JsonValue json_parse(std::string_view src) { return Parser(src).run(); }

std::string json_write(const JsonValue& v) {
  std::string out;
  write_value(v, out);
  return out;
}

}  // namespace gpuqos::svc
