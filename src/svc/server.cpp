#include "svc/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "obs/binlog.hpp"
#include "svc/protocol.hpp"

namespace gpuqos::svc {
namespace {

void set_io_timeout(int fd, double seconds) {
  if (seconds <= 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - std::floor(seconds)) * 1e6);
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Write the whole buffer or return false (peer gone / timeout). MSG_NOSIGNAL
/// turns a closed peer into EPIPE instead of a process-killing SIGPIPE.
bool send_all(int fd, const std::vector<std::uint8_t>& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_frame(int fd, const JsonValue& v) {
  return send_all(fd, encode_frame(v));
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path '" + path + "' exceeds " +
                             std::to_string(sizeof(addr.sun_path) - 1) +
                             " bytes");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Server::Server(Executor& exec, ServerOptions opts)
    : exec_(exec), opts_(std::move(opts)) {
  if (!opts_.binlog_path.empty()) {
    binlog_ = std::make_unique<BinLogWriter>();
    binlog_stream_ = binlog_->define_stream(
        "svc.jobs", {{"batch", BinField::U64},
                     {"key", BinField::Str},
                     {"source", BinField::Str},
                     {"digest", BinField::Str}});
  }
}

Server::~Server() { stop(); }

void Server::start() {
  if (::pipe(stop_pipe_) != 0) {
    throw std::runtime_error("gpuqos_serve: cannot create the stop pipe");
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("gpuqos_serve: cannot create the listen socket");
  }
  const sockaddr_un addr = make_addr(opts_.socket_path);
  (void)::unlink(opts_.socket_path.c_str());  // stale socket from a past run
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    throw std::runtime_error("gpuqos_serve: cannot bind '" +
                             opts_.socket_path + "': " + std::strerror(errno));
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0 || stopping_.load()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    set_io_timeout(conn, opts_.io_timeout_s);
    connections_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_threads_.emplace_back([this, conn] { serve_connection(conn); });
  }
  stopping_.store(true);
}

void Server::serve_connection(int fd) {
  FrameReader reader;
  std::uint8_t chunk[65536];
  bool hello_done = false;

  auto next_frame = [&]() -> std::optional<JsonValue> {
    for (;;) {
      if (auto frame = reader.next()) return frame;
      // Wake on readable data or a stop request; in-flight batches are never
      // interrupted (we only get here between frames).
      pollfd fds[2] = {{fd, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
      if (::poll(fds, 2, -1) < 0) {
        if (errno == EINTR) continue;
        return std::nullopt;
      }
      if ((fds[1].revents & POLLIN) != 0 || stopping_.load()) {
        return std::nullopt;  // graceful drain: stop reading new work
      }
      if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return std::nullopt;  // peer closed or timed out
      reader.feed(chunk, static_cast<std::size_t>(n));
    }
  };

  try {
    for (;;) {
      std::optional<JsonValue> frame;
      try {
        frame = next_frame();
      } catch (const ProtoError& e) {
        frame_errors_.fetch_add(1, std::memory_order_relaxed);
        (void)send_frame(fd, error_frame("bad-frame", e.what()));
        break;  // framing lost: close
      }
      if (!frame) break;

      std::string type;
      try {
        type = frame_type(*frame);
        if (!hello_done) {
          if (type != "hello") {
            frame_errors_.fetch_add(1, std::memory_order_relaxed);
            (void)send_frame(
                fd, error_frame("bad-frame", "expected a hello frame first"));
            break;
          }
          const auto client_version =
              static_cast<std::uint32_t>(frame->req_u64("version"));
          if (client_version == 0) {
            (void)send_frame(fd, error_frame("version-mismatch",
                                             "client offered version 0"));
            break;
          }
          const std::uint32_t chosen = std::min(client_version, kProtoVersion);
          if (!send_frame(fd, hello_frame(chosen))) break;
          hello_done = true;
          continue;
        }
        if (type == "submit") {
          const std::uint64_t batch_id = frame->req_u64("id");
          std::vector<JobSpec> jobs;
          try {
            jobs = decode_submit_jobs(*frame);
          } catch (const SpecError& e) {
            frame_errors_.fetch_add(1, std::memory_order_relaxed);
            if (!send_frame(fd, error_frame("bad-job", e.what()))) break;
            continue;  // connection stays usable
          }
          batches_.fetch_add(1, std::memory_order_relaxed);
          BatchStats stats;
          std::vector<JobResult> results = exec_.run_batch(
              jobs,
              [this, fd, batch_id](std::size_t done, std::size_t total,
                                   const JobResult& r) {
                (void)send_frame(fd, progress_frame(batch_id, done, total, r));
                std::lock_guard<std::mutex> lock(binlog_mu_);
                log_job_locked(batch_id, r);
              },
              &stats);
          bool ok = true;
          for (std::size_t i = 0; i < results.size() && ok; ++i) {
            ok = send_frame(fd, result_frame(batch_id, i, results[i]));
          }
          if (!ok || !send_frame(fd, done_frame(batch_id, stats))) break;
          continue;
        }
        frame_errors_.fetch_add(1, std::memory_order_relaxed);
        if (!send_frame(fd, error_frame("bad-frame",
                                        "unknown frame type '" + type + "'"))) {
          break;
        }
      } catch (const JsonError& e) {
        // Valid JSON, wrong shape: sync is intact, reply and keep going.
        frame_errors_.fetch_add(1, std::memory_order_relaxed);
        if (!send_frame(fd, error_frame("bad-frame", e.what()))) break;
      }
    }
  } catch (const std::exception& e) {
    // Executor/internal failure: tell the peer before closing.
    (void)send_frame(fd, error_frame("internal", e.what()));
    std::fprintf(stderr, "[gpuqos_serve] connection error: %s\n", e.what());
  }
  ::close(fd);
}

void Server::log_job_locked(std::uint64_t batch_id, const JobResult& r) {
  if (!binlog_) return;
  binlog_->begin_row(binlog_stream_);
  binlog_->u64(batch_id);
  binlog_->str(job_key_hex(r.spec));
  binlog_->str(to_string(r.source));
  binlog_->str(u64_hex(r.digest));
  binlog_->end_row();
}

void Server::request_stop() noexcept {
  if (stop_pipe_[1] >= 0) {
    const char byte = 's';
    (void)!::write(stop_pipe_[1], &byte, 1);
  }
}

void Server::stop() {
  if (stopped_.exchange(true)) return;
  stopping_.store(true);
  request_stop();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(conn_threads_);
  }
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();  // drain: batches finish, done frames go out
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    (void)::unlink(opts_.socket_path.c_str());
  }
  for (int& fd : stop_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  if (binlog_) {
    std::lock_guard<std::mutex> lock(binlog_mu_);
    if (!binlog_->write_file(opts_.binlog_path)) {
      std::fprintf(stderr, "[gpuqos_serve] failed to write binlog '%s'\n",
                   opts_.binlog_path.c_str());
    }
  }
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  stop();
}

}  // namespace gpuqos::svc
