#include "svc/exec.hpp"

#include <mutex>
#include <unordered_map>
#include <utility>

#include "ckpt/snapshot.hpp"
#include "sim/sweep.hpp"
#include "svc/result_io.hpp"
#include "workloads/gpu_apps.hpp"
#include "workloads/mixes.hpp"

namespace gpuqos::svc {

const char* to_string(JobSource s) {
  switch (s) {
    case JobSource::kStore: return "store";
    case JobSource::kWarmFork: return "warm-fork";
    case JobSource::kCold: return "cold";
  }
  return "?";
}

Executor::Executor(const ExecOptions& opts)
    : opts_(opts), store_(opts.store_dir), warm_cache_(opts.warm_cache_max) {}

JobResult Executor::run_one(const JobSpec& spec) {
  requests_.fetch_add(1, std::memory_order_relaxed);

  JobResult out;
  out.spec = spec;
  if (auto cached = store_.get(spec)) {
    out.bytes = std::move(*cached);
    out.result = decode_result(spec, out.bytes);
    out.digest = result_digest(out.bytes);
    out.source = JobSource::kStore;
    return out;
  }

  const SimConfig cfg = config_for(spec);
  switch (spec.kind) {
    case JobKind::kHetero: {
      Policy policy = Policy::Baseline;
      if (!policy_from_string(spec.policy, policy)) {
        throw SpecError("job: unknown policy '" + spec.policy + "'");
      }
      const HeteroMix& m = mix(spec.mix_id);
      // Warm once under Baseline (policy-independent by kFork's contract),
      // fork the measured phase under the requested policy. `built` tells us
      // whether this call paid for the warm-up or found it cached.
      bool built = false;
      auto warm = warm_cache_.get_or_build(warm_canonical(spec), [&] {
        built = true;
        return warm_hetero_snapshot(cfg, m, Policy::Baseline, spec.scale);
      });
      RunHooks hooks;
      hooks.resume_data = warm.get();
      hooks.resume_mode = ckpt::RestoreMode::kFork;
      out.result = run_hetero(cfg, m, policy, spec.scale, hooks);
      sim_runs_.fetch_add(1, std::memory_order_relaxed);
      if (built) {
        out.source = JobSource::kCold;
      } else {
        out.source = JobSource::kWarmFork;
        warm_forks_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    case JobKind::kCpuAlone: {
      const double ipc = standalone_cpu_ipc(cfg, spec.spec_id, spec.scale);
      out.result.spec_ids = {spec.spec_id};
      out.result.cpu_ipc = {ipc};
      sim_runs_.fetch_add(1, std::memory_order_relaxed);
      out.source = JobSource::kCold;
      break;
    }
    case JobKind::kGpuAlone: {
      out.result = standalone_gpu(cfg, gpu_app(spec.gpu_app), spec.scale);
      sim_runs_.fetch_add(1, std::memory_order_relaxed);
      out.source = JobSource::kCold;
      break;
    }
  }

  out.bytes = encode_result(spec, out.result);
  out.digest = result_digest(out.bytes);
  store_.put(spec, out.bytes);
  return out;
}

std::vector<JobResult> Executor::run_batch(const std::vector<JobSpec>& jobs,
                                           const Progress& progress,
                                           BatchStats* stats) {
  const std::size_t n = jobs.size();

  // In-batch dedup: exact duplicate specs (same canonical line) simulate
  // once; the copies are scattered back after the pool drains.
  std::unordered_map<std::string, std::size_t> first_of;  // canonical -> slot
  std::vector<std::size_t> unique_jobs;  // indexes into `jobs`
  std::vector<std::size_t> slot_of(n);   // jobs[i] -> index into unique_jobs
  for (std::size_t i = 0; i < n; ++i) {
    auto [it, inserted] = first_of.emplace(canonical(jobs[i]), unique_jobs.size());
    if (inserted) unique_jobs.push_back(i);
    slot_of[i] = it->second;
  }

  std::mutex progress_mu;
  std::size_t done = 0;
  std::vector<std::function<JobResult()>> thunks;
  thunks.reserve(unique_jobs.size());
  for (std::size_t u : unique_jobs) {
    thunks.push_back([this, &jobs, &progress, &progress_mu, &done, n, u] {
      JobResult r = run_one(jobs[u]);
      if (progress) {
        std::lock_guard<std::mutex> lock(progress_mu);
        progress(++done, n, r);
      }
      return r;
    });
  }

  std::vector<JobResult> unique = run_many(std::move(thunks), opts_.threads);

  std::vector<JobResult> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool is_owner = unique_jobs[slot_of[i]] == i;
    out.push_back(unique[slot_of[i]]);  // copy; owners could move, dups can't
    if (!is_owner && progress) {
      std::lock_guard<std::mutex> lock(progress_mu);
      progress(++done, n, out.back());
    }
  }

  if (stats != nullptr) {
    *stats = BatchStats{};
    stats->jobs = n;
    stats->dup_jobs = n - unique.size();
    for (const JobResult& r : unique) {
      switch (r.source) {
        case JobSource::kStore: ++stats->store_hits; break;
        case JobSource::kWarmFork: ++stats->warm_forks; break;
        case JobSource::kCold: ++stats->cold_runs; break;
      }
    }
  }
  return out;
}

}  // namespace gpuqos::svc
