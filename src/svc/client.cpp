#include "svc/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <unordered_map>

#include "svc/protocol.hpp"

namespace gpuqos::svc {
namespace {

bool send_all(int fd, const std::vector<std::uint8_t>& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void set_io_timeout(int fd, double seconds) {
  if (seconds <= 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - std::floor(seconds)) * 1e6);
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Blocking read of the next frame; nullopt on EOF/timeout.
std::optional<JsonValue> read_frame(int fd, FrameReader& reader) {
  for (;;) {
    if (auto frame = reader.next()) return frame;
    std::uint8_t chunk[65536];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return std::nullopt;
    }
    reader.feed(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace

std::string resolve_socket(const std::string& explicit_path) {
  if (!explicit_path.empty()) return explicit_path;
  if (const char* env = std::getenv("GPUQOS_SERVE_SOCKET")) return env;
  return "";
}

Client::Client(const ExecOptions& local)
    : local_(std::make_unique<Executor>(local)) {}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<Client> Client::connect(const std::string& socket_path,
                                        double io_timeout_s) {
  if (socket_path.empty()) return nullptr;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) return nullptr;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return nullptr;
  }
  set_io_timeout(fd, io_timeout_s);

  FrameReader reader;
  if (!send_all(fd, encode_frame(hello_frame(kProtoVersion)))) {
    ::close(fd);
    return nullptr;
  }
  std::optional<JsonValue> reply;
  try {
    reply = read_frame(fd, reader);
    if (!reply || frame_type(*reply) != "hello") {
      ::close(fd);
      return nullptr;
    }
  } catch (const std::exception&) {
    ::close(fd);
    return nullptr;
  }

  // NOLINT-gpuqos(check-hygiene): the default ctor is private (create/connect
  // are the only entry points), so make_unique cannot reach it; the raw new
  // is owned by the unique_ptr on the same line.
  auto client = std::unique_ptr<Client>(new Client());
  client->fd_ = fd;
  client->version_ = static_cast<std::uint32_t>(reply->req_u64("version"));
  return client;
}

std::unique_ptr<Client> Client::create(const std::string& socket,
                                       const ExecOptions& local_opts) {
  const std::string path = resolve_socket(socket);
  if (!path.empty()) {
    if (auto remote = connect(path)) return remote;
  }
  return std::make_unique<Client>(local_opts);
}

std::vector<JobResult> Client::submit_batch(const std::vector<JobSpec>& jobs,
                                            const Executor::Progress& progress,
                                            BatchStats* stats) {
  for (const JobSpec& spec : jobs) validate(spec);
  if (!remote()) return local_->run_batch(jobs, progress, stats);
  return submit_remote(jobs, progress, stats);
}

std::vector<JobResult> Client::submit_remote(const std::vector<JobSpec>& jobs,
                                             const Executor::Progress& progress,
                                             BatchStats* stats) {
  const std::uint64_t batch_id = next_batch_++;
  if (!send_all(fd_, encode_frame(submit_frame(batch_id, jobs)))) {
    throw ClientError("daemon connection lost while submitting the batch");
  }

  // Progress frames only carry key/source/digest; map keys back to specs so
  // the callback still sees which job finished (bytes arrive with `result`).
  std::unordered_map<std::string, const JobSpec*> by_key;
  for (const JobSpec& spec : jobs) by_key.emplace(job_key_hex(spec), &spec);

  std::vector<std::optional<JobResult>> slots(jobs.size());
  FrameReader reader;
  for (;;) {
    std::optional<JsonValue> frame;
    try {
      frame = read_frame(fd_, reader);
    } catch (const ProtoError& e) {
      throw ClientError(std::string("daemon sent a malformed frame: ") +
                        e.what());
    }
    if (!frame) {
      throw ClientError("daemon connection lost mid-batch (" +
                        std::to_string(jobs.size()) +
                        " jobs submitted; resubmit to resume from the store)");
    }
    const std::string& type = frame_type(*frame);
    if (type == "error") {
      throw ClientError(frame->req_string("code") + ": " +
                        frame->req_string("message"));
    }
    if (frame->req_u64("id") != batch_id) {
      throw ClientError("daemon answered with a foreign batch id");
    }
    if (type == "progress") {
      if (progress) {
        JobResult partial;
        auto it = by_key.find(frame->req_string("key"));
        if (it != by_key.end()) partial.spec = *it->second;
        const std::string& source = frame->req_string("source");
        partial.source = source == "store"      ? JobSource::kStore
                         : source == "warm-fork" ? JobSource::kWarmFork
                                                 : JobSource::kCold;
        partial.digest =
            std::strtoull(frame->req_string("digest").c_str(), nullptr, 16);
        progress(static_cast<std::size_t>(frame->req_u64("done")),
                 static_cast<std::size_t>(frame->req_u64("total")), partial);
      }
      continue;
    }
    if (type == "result") {
      const auto index = static_cast<std::size_t>(frame->req_u64("index"));
      if (index >= slots.size()) {
        throw ClientError("daemon sent result index " + std::to_string(index) +
                          " for a " + std::to_string(slots.size()) +
                          "-job batch");
      }
      try {
        slots[index] = decode_result_frame(*frame, jobs[index]);
      } catch (const std::exception& e) {
        throw ClientError(std::string("result frame for job ") +
                          std::to_string(index) + " failed validation: " +
                          e.what());
      }
      continue;
    }
    if (type == "done") {
      if (stats != nullptr) {
        const JsonValue& s = frame->req("stats");
        stats->jobs = s.req_u64("jobs");
        stats->store_hits = s.req_u64("store_hits");
        stats->warm_forks = s.req_u64("warm_forks");
        stats->cold_runs = s.req_u64("cold_runs");
        stats->dup_jobs = s.req_u64("dup_jobs");
      }
      break;
    }
    throw ClientError("daemon sent unexpected frame type '" + type + "'");
  }

  std::vector<JobResult> out;
  out.reserve(jobs.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (!slots[i].has_value()) {
      throw ClientError("daemon's done frame arrived before the result for "
                        "job " + std::to_string(i));
    }
    out.push_back(std::move(*slots[i]));
  }
  return out;
}

}  // namespace gpuqos::svc
