#include "svc/protocol.hpp"

#include <cstdio>
#include <cstring>

#include "svc/result_io.hpp"

namespace gpuqos::svc {
namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

JsonValue summary_json(const HeteroResult& r) {
  JsonValue s = JsonValue::object();
  s.add("fps", JsonValue::num_f64(r.fps));
  JsonValue ipc = JsonValue::array();
  for (double v : r.cpu_ipc) ipc.push(JsonValue::num_f64(v));
  s.add("cpu_ipc", std::move(ipc));
  s.add("hit_cycle_cap", JsonValue::boolean(r.hit_cycle_cap));
  return s;
}

}  // namespace

std::string hex_encode(const std::vector<std::uint8_t>& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xF]);
  }
  return out;
}

std::vector<std::uint8_t> hex_decode(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    throw ProtoError("hex payload has odd length " +
                     std::to_string(hex.size()));
  }
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_digit(hex[i]);
    const int lo = hex_digit(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw ProtoError("hex payload has a non-hex character at offset " +
                       std::to_string(i));
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::string u64_hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::vector<std::uint8_t> encode_frame(const JsonValue& v) {
  std::string text = json_write(v);
  text.push_back('\n');
  if (text.size() > kMaxFrameBytes) {
    throw ProtoError("frame payload of " + std::to_string(text.size()) +
                     " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
                     "-byte bound");
  }
  const auto len = static_cast<std::uint32_t>(text.size());
  std::vector<std::uint8_t> out(sizeof(len) + text.size());
  std::memcpy(out.data(), &len, sizeof(len));
  std::memcpy(out.data() + sizeof(len), text.data(), text.size());
  return out;
}

void FrameReader::feed(const std::uint8_t* data, std::size_t n) {
  // Reclaim the consumed prefix before growing; keeps the buffer bounded by
  // one partial frame plus whatever feed() just delivered.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > kMaxFrameBytes) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

std::optional<JsonValue> FrameReader::next() {
  if (buf_.size() - pos_ < sizeof(std::uint32_t)) return std::nullopt;
  std::uint32_t len = 0;
  std::memcpy(&len, buf_.data() + pos_, sizeof(len));
  if (len == 0 || len > kMaxFrameBytes) {
    throw ProtoError("frame length prefix " + std::to_string(len) +
                     " is outside (0, " + std::to_string(kMaxFrameBytes) +
                     "] — framing lost");
  }
  if (buf_.size() - pos_ < sizeof(len) + len) return std::nullopt;
  const char* text = reinterpret_cast<const char*>(buf_.data() + pos_ + sizeof(len));
  std::string_view payload(text, len);
  pos_ += sizeof(len) + len;
  try {
    return json_parse(payload);
  } catch (const JsonError& e) {
    throw ProtoError(std::string("frame payload is not valid JSON: ") +
                     e.what());
  }
}

JsonValue hello_frame(std::uint32_t version) {
  JsonValue v = JsonValue::object();
  v.add("type", JsonValue::str("hello"));
  v.add("version", JsonValue::num_u64(version));
  return v;
}

JsonValue submit_frame(std::uint64_t batch_id,
                       const std::vector<JobSpec>& jobs) {
  JsonValue v = JsonValue::object();
  v.add("type", JsonValue::str("submit"));
  v.add("id", JsonValue::num_u64(batch_id));
  JsonValue arr = JsonValue::array();
  for (const JobSpec& j : jobs) arr.push(to_json(j));
  v.add("jobs", std::move(arr));
  return v;
}

JsonValue progress_frame(std::uint64_t batch_id, std::size_t done,
                         std::size_t total, const JobResult& r) {
  JsonValue v = JsonValue::object();
  v.add("type", JsonValue::str("progress"));
  v.add("id", JsonValue::num_u64(batch_id));
  v.add("done", JsonValue::num_u64(done));
  v.add("total", JsonValue::num_u64(total));
  v.add("key", JsonValue::str(job_key_hex(r.spec)));
  v.add("source", JsonValue::str(to_string(r.source)));
  v.add("digest", JsonValue::str(u64_hex(r.digest)));
  return v;
}

JsonValue result_frame(std::uint64_t batch_id, std::size_t index,
                       const JobResult& r) {
  JsonValue v = JsonValue::object();
  v.add("type", JsonValue::str("result"));
  v.add("id", JsonValue::num_u64(batch_id));
  v.add("index", JsonValue::num_u64(index));
  v.add("key", JsonValue::str(job_key_hex(r.spec)));
  v.add("source", JsonValue::str(to_string(r.source)));
  v.add("digest", JsonValue::str(u64_hex(r.digest)));
  v.add("summary", summary_json(r.result));
  v.add("bytes", JsonValue::str(hex_encode(r.bytes)));
  return v;
}

JsonValue done_frame(std::uint64_t batch_id, const BatchStats& stats) {
  JsonValue v = JsonValue::object();
  v.add("type", JsonValue::str("done"));
  v.add("id", JsonValue::num_u64(batch_id));
  JsonValue s = JsonValue::object();
  s.add("jobs", JsonValue::num_u64(stats.jobs));
  s.add("store_hits", JsonValue::num_u64(stats.store_hits));
  s.add("warm_forks", JsonValue::num_u64(stats.warm_forks));
  s.add("cold_runs", JsonValue::num_u64(stats.cold_runs));
  s.add("dup_jobs", JsonValue::num_u64(stats.dup_jobs));
  v.add("stats", std::move(s));
  return v;
}

JsonValue error_frame(const std::string& code, const std::string& message) {
  JsonValue v = JsonValue::object();
  v.add("type", JsonValue::str("error"));
  v.add("code", JsonValue::str(code));
  v.add("message", JsonValue::str(message));
  return v;
}

const std::string& frame_type(const JsonValue& v) {
  return v.req_string("type");
}

JobResult decode_result_frame(const JsonValue& v, const JobSpec& spec) {
  JobResult r;
  r.spec = spec;
  r.bytes = hex_decode(v.req_string("bytes"));
  r.result = decode_result(spec, r.bytes);  // CRC + canonical-identity check
  r.digest = result_digest(r.bytes);
  const std::string& claimed = v.req_string("digest");
  if (claimed != u64_hex(r.digest)) {
    throw ProtoError("result frame digest '" + claimed +
                     "' does not match the payload ('" + u64_hex(r.digest) +
                     "')");
  }
  const std::string& source = v.req_string("source");
  if (source == "store") {
    r.source = JobSource::kStore;
  } else if (source == "warm-fork") {
    r.source = JobSource::kWarmFork;
  } else if (source == "cold") {
    r.source = JobSource::kCold;
  } else {
    throw ProtoError("result frame has unknown source '" + source + "'");
  }
  return r;
}

std::vector<JobSpec> decode_submit_jobs(const JsonValue& v) {
  const JsonValue& arr = v.req("jobs");
  if (!arr.is_array()) throw SpecError("submit: 'jobs' must be an array");
  if (arr.items.empty()) throw SpecError("submit: empty job list");
  if (arr.items.size() > kMaxBatchJobs) {
    throw SpecError("submit: batch of " + std::to_string(arr.items.size()) +
                    " jobs exceeds the cap of " +
                    std::to_string(kMaxBatchJobs));
  }
  std::vector<JobSpec> jobs;
  jobs.reserve(arr.items.size());
  for (const JsonValue& item : arr.items) {
    JobSpec spec = job_from_json(item);
    validate(spec);
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

}  // namespace gpuqos::svc
