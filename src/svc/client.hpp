// The one public entry point to the simulation service (docs/SERVICE.md
// §client). Harnesses and bench drivers build JobSpecs and call
// Client::submit_batch; whether the batch executes in a gpuqos_serve daemon
// or in-process is decided here:
//
//   Client::create(socket, local_opts)
//     socket non-empty + daemon answers hello  -> remote transport
//     otherwise                                -> in-process Executor
//
// Both paths run the identical executor logic (exec.hpp), so results are
// byte-identical either way — the serve_test harness proves it by digest.
// An empty `socket` consults GPUQOS_SERVE_SOCKET, so any harness can be
// pointed at a daemon without new flags.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "svc/exec.hpp"

namespace gpuqos::svc {

/// The daemon replied with an error frame or broke protocol mid-batch.
class ClientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Socket path to use: `explicit_path` when non-empty, else the
/// GPUQOS_SERVE_SOCKET environment variable, else "".
[[nodiscard]] std::string resolve_socket(const std::string& explicit_path);

class Client {
 public:
  /// In-process client: no daemon, batches run on a private Executor.
  explicit Client(const ExecOptions& local);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to a daemon and negotiate hello. Returns nullptr when the
  /// socket is absent/refusing or the handshake fails — callers fall back
  /// to a local Client. `io_timeout_s` bounds each socket read/write
  /// (0 = none; batches legitimately take minutes, so progress frames are
  /// what keep a live daemon under the timeout).
  [[nodiscard]] static std::unique_ptr<Client> connect(
      const std::string& socket_path, double io_timeout_s = 0.0);

  /// Remote when a daemon is reachable at resolve_socket(socket), local
  /// otherwise. Never returns nullptr.
  [[nodiscard]] static std::unique_ptr<Client> create(
      const std::string& socket, const ExecOptions& local_opts);

  [[nodiscard]] bool remote() const { return fd_ >= 0; }
  [[nodiscard]] std::uint32_t protocol_version() const { return version_; }

  /// Execute a batch; results[i] corresponds to jobs[i]. Remote failures
  /// (error frames, protocol breaks, lost connection) throw ClientError —
  /// they are not silently downgraded to local execution mid-batch.
  [[nodiscard]] std::vector<JobResult> submit_batch(
      const std::vector<JobSpec>& jobs,
      const Executor::Progress& progress = {}, BatchStats* stats = nullptr);

 private:
  Client() = default;
  [[nodiscard]] std::vector<JobResult> submit_remote(
      const std::vector<JobSpec>& jobs, const Executor::Progress& progress,
      BatchStats* stats);

  int fd_ = -1;
  std::uint32_t version_ = 0;
  std::uint64_t next_batch_ = 1;
  std::unique_ptr<Executor> local_;
};

}  // namespace gpuqos::svc
