// Minimal JSON value model + strict parser for the service protocol
// (docs/SERVICE.md). The simulator proper only ever *emits* JSON
// (common/jsonio.hpp); the daemon and its client additionally have to parse
// the frames they receive from the wire, which is what this covers. The
// parser is strict RFC-8259 (no comments, no trailing commas), depth-limited,
// and every malformed input throws JsonError with a byte offset — a frame
// that fails to parse becomes a typed `error` reply, never UB.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gpuqos::svc {

/// Any malformed JSON text. Carries a human-readable reason + byte offset.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A parsed JSON value. Plain value type: objects keep insertion order (the
/// canonical frame field order), numbers keep their source token so 64-bit
/// integers round-trip without a detour through double.
class JsonValue {
 public:
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool flag = false;             // kBool
  std::string text;              // kString: decoded bytes; kNumber: raw token
  std::vector<JsonValue> items;  // kArray
  std::vector<std::pair<std::string, JsonValue>> fields;  // kObject

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }

  /// Object member lookup (first match), nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* get(std::string_view key) const;

  // Checked accessors: throw JsonError naming `what` on kind/range mismatch.
  [[nodiscard]] const std::string& as_string(const char* what) const;
  [[nodiscard]] std::uint64_t as_u64(const char* what) const;
  [[nodiscard]] double as_f64(const char* what) const;

  // Required object members (throw JsonError when missing or mistyped).
  [[nodiscard]] const JsonValue& req(const char* key) const;
  [[nodiscard]] const std::string& req_string(const char* key) const;
  [[nodiscard]] std::uint64_t req_u64(const char* key) const;
  [[nodiscard]] double req_f64(const char* key) const;

  // Builders (used by the emit side of the protocol and by tests).
  [[nodiscard]] static JsonValue object();
  [[nodiscard]] static JsonValue array();
  [[nodiscard]] static JsonValue str(std::string s);
  [[nodiscard]] static JsonValue num_u64(std::uint64_t v);
  [[nodiscard]] static JsonValue num_f64(double v);
  [[nodiscard]] static JsonValue boolean(bool v);
  JsonValue& add(std::string key, JsonValue v);  // object append, returns *this
  JsonValue& push(JsonValue v);                  // array append, returns *this
};

/// Parse one complete JSON document; trailing non-whitespace is an error.
[[nodiscard]] JsonValue json_parse(std::string_view src);

/// Compact single-line serialization (object/array member order preserved).
[[nodiscard]] std::string json_write(const JsonValue& v);

}  // namespace gpuqos::svc
