// Persistent content-addressed result store (docs/SERVICE.md §store).
//
// Layout: one file per job, `<dir>/<16-hex job_key>.gqr`, holding the
// CRC-guarded container from result_io. Lookups decode + validate, so a
// corrupt or mismatched file behaves as a miss (and is logged), never as a
// silently-served wrong result. Writes go through tmp + rename, so a daemon
// killed mid-write leaves either the old file or none — which is what makes
// crash-resume work: after a restart, every job that finished before the kill
// is served from here without re-simulation.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "svc/jobspec.hpp"

namespace gpuqos::svc {

class ResultStore {
 public:
  /// `dir` is created if missing (empty string = store disabled: every get
  /// misses and puts are dropped, for pure in-memory runs).
  explicit ResultStore(std::string dir);

  /// Stored container bytes for this job, already CRC- and identity-checked
  /// against `spec`; nullopt on miss or on a corrupt/mismatched file.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> get(
      const JobSpec& spec);

  /// Persist encoded result bytes for this job (atomic tmp + rename).
  void put(const JobSpec& spec, const std::vector<std::uint8_t>& bytes);

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] bool enabled() const { return !dir_.empty(); }

  // Lifetime counters (monotonic, readable from any thread).
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::uint64_t rejects() const;  // corrupt/mismatched files

 private:
  [[nodiscard]] std::string path_for(const JobSpec& spec) const;

  std::string dir_;
  mutable std::mutex mu_;  // guards counters and tmp-file naming
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t rejects_ = 0;
  std::uint64_t tmp_seq_ = 0;
};

}  // namespace gpuqos::svc
