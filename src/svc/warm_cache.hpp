// Warm checkpoint cache (docs/SERVICE.md §warm-cache).
//
// The executor always runs hetero jobs as warm-then-fork: warm up once under
// Policy::Baseline, drain, snapshot, then fork the measured phase under the
// requested policy (docs/CHECKPOINT.md warm-state forking). The snapshot is
// policy-independent by construction, so jobs that differ only in policy —
// the standard sweep shape, one mix x N policies — share one entry keyed by
// warm_canonical(spec). A cache hit skips the warm-up entirely: only the
// measured phase simulates.
//
// Concurrency: the first thread to ask for a key becomes its builder; other
// threads asking for the same key block on a shared_future instead of warming
// the same state twice (in-flight dedup). Eviction is LRU over completed
// entries, bounded by --warm-cache-max bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace gpuqos::svc {

class WarmCache {
 public:
  /// `max_bytes` bounds resident snapshot payload (0 = unbounded). A single
  /// snapshot larger than the bound is still cached (then evicted by the next
  /// insert), so a tiny bound degrades to "cache of one", not "no cache".
  explicit WarmCache(std::uint64_t max_bytes);

  /// Snapshot for `key`, building it with `build` on a miss. `build` runs on
  /// the calling thread; concurrent callers for the same key wait for the
  /// builder and share its snapshot. If the builder throws, waiters see the
  /// exception and the key is cleared so a later call can retry.
  [[nodiscard]] std::shared_ptr<const std::vector<std::uint8_t>> get_or_build(
      const std::string& key,
      const std::function<std::vector<std::uint8_t>()>& build);

  // Lifetime counters.
  [[nodiscard]] std::uint64_t hits() const;    // served from cache
  [[nodiscard]] std::uint64_t misses() const;  // this caller built it
  [[nodiscard]] std::uint64_t joins() const;   // waited on another builder
  [[nodiscard]] std::uint64_t evictions() const;
  [[nodiscard]] std::uint64_t resident_bytes() const;

 private:
  using Snapshot = std::shared_ptr<const std::vector<std::uint8_t>>;

  struct Entry {
    std::shared_future<Snapshot> future;
    std::uint64_t bytes = 0;      // 0 while building
    bool ready = false;           // future resolved successfully
    std::list<std::string>::iterator lru_pos;  // valid only when ready
  };

  void evict_to_fit_locked();

  std::uint64_t max_bytes_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recent
  std::uint64_t resident_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t joins_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace gpuqos::svc
