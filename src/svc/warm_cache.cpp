#include "svc/warm_cache.hpp"

#include <functional>
#include <utility>

namespace gpuqos::svc {

WarmCache::WarmCache(std::uint64_t max_bytes) : max_bytes_(max_bytes) {}

std::shared_ptr<const std::vector<std::uint8_t>> WarmCache::get_or_build(
    const std::string& key,
    const std::function<std::vector<std::uint8_t>()>& build) {
  std::promise<Snapshot> promise;
  std::shared_future<Snapshot> waiting;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      if (it->second.ready) {
        ++hits_;
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      } else {
        ++joins_;
      }
      waiting = it->second.future;
    } else {
      ++misses_;
      Entry entry;
      entry.future = promise.get_future().share();
      entries_.emplace(key, std::move(entry));
    }
  }
  if (waiting.valid()) {
    // Wait outside the lock; other keys keep building in parallel. Rethrows
    // the builder's exception on failure.
    return waiting.get();
  }

  Snapshot snap;
  try {
    snap = std::make_shared<const std::vector<std::uint8_t>>(build());
  } catch (...) {
    {
      // Clear the slot so a later request can retry, then wake the waiters
      // with the exception.
      std::lock_guard<std::mutex> lock(mu_);
      entries_.erase(key);
    }
    promise.set_exception(std::current_exception());
    throw;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.bytes = snap->size();
      it->second.ready = true;
      lru_.push_front(key);
      it->second.lru_pos = lru_.begin();
      resident_ += snap->size();
      evict_to_fit_locked();
    }
  }
  promise.set_value(snap);
  return snap;
}

void WarmCache::evict_to_fit_locked() {
  if (max_bytes_ == 0) return;
  while (resident_ > max_bytes_ && lru_.size() > 1) {
    const std::string& victim = lru_.back();
    auto it = entries_.find(victim);
    if (it != entries_.end()) {
      resident_ -= it->second.bytes;
      entries_.erase(it);
      ++evictions_;
    }
    lru_.pop_back();
  }
}

std::uint64_t WarmCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}
std::uint64_t WarmCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}
std::uint64_t WarmCache::joins() const {
  std::lock_guard<std::mutex> lock(mu_);
  return joins_;
}
std::uint64_t WarmCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}
std::uint64_t WarmCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_;
}

}  // namespace gpuqos::svc
