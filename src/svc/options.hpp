// Shared service flag registration (ISSUE: "daemon/client flags registered
// once and reused"). Every binary that talks to the service — gpuqos_serve,
// gpuqos_submit, gpuqos_run, the figure harnesses via bench::init_harness —
// pulls its flags from here, so `--socket` means the same thing everywhere.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/cli.hpp"
#include "svc/client.hpp"
#include "svc/exec.hpp"

namespace gpuqos::svc {

/// Client-side connection flags.
struct ClientFlags {
  /// Daemon socket; empty = GPUQOS_SERVE_SOCKET env, else run in-process.
  std::string socket;
};

/// Executor/store knobs, shared by the daemon and the in-process fallback.
struct ExecFlags {
  std::string store_dir;
  std::uint64_t warm_cache_max = 256ull << 20;
  unsigned threads = 0;

  [[nodiscard]] ExecOptions to_options() const {
    ExecOptions opts;
    opts.store_dir = store_dir;
    opts.warm_cache_max = warm_cache_max;
    opts.threads = threads;
    return opts;
  }
};

inline void register_client_flags(cli::OptionSet& opts, ClientFlags& out) {
  opts.str("--socket", "PATH",
           "gpuqos_serve socket to submit through (default: "
           "$GPUQOS_SERVE_SOCKET, else run in-process)",
           &out.socket);
}

inline void register_exec_flags(cli::OptionSet& opts, ExecFlags& out) {
  opts.str("--store-dir", "DIR",
           "persistent result store directory (default: none)",
           &out.store_dir);
  opts.u64("--warm-cache-max", "BYTES",
           "warm checkpoint cache bound in bytes (0 = unbounded)",
           &out.warm_cache_max);
  opts.u32("--threads", "N",
           "executor worker threads (0 = auto / GPUQOS_THREADS)",
           &out.threads);
}

/// A ready-to-use client honoring the flags: daemon when reachable, local
/// executor (with `exec_flags`) otherwise.
[[nodiscard]] inline std::unique_ptr<Client> make_client(
    const ClientFlags& client_flags, const ExecFlags& exec_flags) {
  return Client::create(client_flags.socket, exec_flags.to_options());
}

}  // namespace gpuqos::svc
