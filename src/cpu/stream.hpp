// Synthetic instruction/memory stream generation for CPU workloads.
//
// Substitute for SPEC CPU 2006 traces (see DESIGN.md §2). Each profile is a
// statistical model of a benchmark's committed-instruction stream built
// around the quantity that matters to the shared memory system: LLC accesses
// per kilo-instruction (APKI). A memory op lands in one of three regions:
//   * hot set    — small, private-cache resident (the L1/L2 locality real
//                  SPEC codes have); generates no LLC traffic,
//   * LLC set    — benchmark working set that lives in the shared LLC;
//                  vulnerable to GPU-induced eviction (the paper's effect),
//   * stream     — sequential sweep over a large region; compulsory misses.
// The LLC-set probability is derived from the APKI target so each profile
// reproduces its benchmark's published LLC pressure class.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace gpuqos {

struct SpecProfile {
  std::string name;                  // e.g. "429.mcf"
  int spec_id = 0;
  double mem_op_fraction = 0.35;     // committed ops that are loads/stores
  double store_fraction = 0.30;      // of memory ops
  double dependent_fraction = 0.20;  // of loads: serialized (pointer chase)
  double llc_apki = 10.0;            // target LLC accesses / kilo-instruction
  double stream_fraction = 0.0;      // of memory ops: sequential sweep
  std::uint64_t llc_ws_bytes = 1 << 20;   // LLC-resident working set
  std::uint64_t hot_bytes = 16 << 10;     // private-cache-resident hot set
  std::uint64_t stream_bytes = 16 << 20;  // streaming region
  std::uint64_t stream_stride = 8;
};

/// One committed micro-op group: `gap` non-memory instructions followed by
/// one memory operation.
struct MicroOp {
  std::uint32_t gap = 0;
  Addr addr = 0;
  bool is_store = false;
  bool dependent = false;  // load feeds the next instructions directly
};

class CpuStream {
 public:
  CpuStream(const SpecProfile& profile, Addr base, Rng rng);

  /// Produce the next micro-op group (infinite stream).
  [[nodiscard]] MicroOp next();

  [[nodiscard]] const SpecProfile& profile() const { return profile_; }
  /// Derived probability that a memory op touches the LLC working set.
  [[nodiscard]] double llc_probability() const { return p_llc_; }

  /// Checkpoint the stream position (docs/CHECKPOINT.md). The profile, base
  /// address, and derived means are construction parameters, not state.
  void save(ckpt::StateWriter& w) const {
    rng_.save(w);
    w.u64(stream_pos_);
  }
  void load(ckpt::StateReader& r) {
    rng_.load(r);
    stream_pos_ = r.u64();
  }

  /// Fold the stream position into a determinism digest so an rng divergence
  /// surfaces at the sample point instead of cycles later through committed_.
  [[nodiscard]] std::uint64_t digest() const {
    Fnv1a64 h;
    h.mix(rng_.digest());
    h.mix(stream_pos_);
    return h.value();
  }

 private:
  SpecProfile profile_;  // ckpt:skip digest:skip: construction parameter
  Addr base_;            // ckpt:skip digest:skip: construction parameter
  Rng rng_;
  Addr stream_pos_ = 0;
  double mean_gap_;  // ckpt:skip digest:skip: derived from profile_
  double p_llc_;     // ckpt:skip digest:skip: derived from profile_
};

}  // namespace gpuqos
