// Interval-model out-of-order CPU core.
//
// The core commits up to `commit_width` instructions per cycle from a
// synthetic stream. Loads that miss the private hierarchy become outstanding
// LLC requests; commit stalls when (a) a dependent load is unresolved,
// (b) the reorder window past the oldest outstanding miss is exhausted, or
// (c) L2 MSHRs are full. This captures the latency/bandwidth sensitivity the
// paper's policies act on without simulating a full pipeline.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cache/cache.hpp"
#include "common/config.hpp"
#include "common/engine.hpp"
#include "common/mem_request.hpp"
#include "common/stats.hpp"
#include "cpu/stream.hpp"

namespace gpuqos {

class CheckContext;
class Profiler;

class CpuCore {
 public:
  using MemPort = std::function<void(MemRequest&&)>;

  CpuCore(Engine& engine, const CpuCoreConfig& cfg, unsigned index,
          std::unique_ptr<CpuStream> stream, StatRegistry& stats);

  void set_mem_port(MemPort port) { port_ = std::move(port); }

  /// While attached, every LLC read this core issues feeds the conservation
  /// ledger (Flow::CpuRead), with duplicate-completion detection.
  void set_check(CheckContext* check) { check_ = check; }
  void set_profiler(Profiler* prof) { prof_ = prof; }

  /// Advance one CPU cycle (registered as a period-1 ticker by HeteroCmp; or
  /// called directly by tests).
  void tick(Cycle now);

  /// Drop `addr` from the private hierarchy (LLC back-invalidation).
  /// Returns true when a dirty copy existed (the LLC then owns writing it
  /// back to DRAM).
  bool back_invalidate(Addr addr);

  [[nodiscard]] std::uint64_t committed() const { return committed_; }
  [[nodiscard]] unsigned index() const { return index_; }
  [[nodiscard]] std::uint64_t outstanding_misses() const {
    return outstanding_.size();
  }
  /// Structural ceiling on this core's in-flight LLC reads (demand misses
  /// plus stream prefetches) — the conservation ledger's CpuRead bound.
  [[nodiscard]] std::uint64_t max_reads_in_flight() const {
    return cfg_.l2_mshrs + kMaxPrefetchInFlight;
  }
  [[nodiscard]] const SetAssocCache& l1d() const { return *l1d_; }
  [[nodiscard]] const SetAssocCache& l2() const { return *l2_; }

  /// FNV-1a digest of the core's architectural state (commit count, stall
  /// bookkeeping, private caches, outstanding misses, prefetch trackers).
  [[nodiscard]] std::uint64_t digest() const;

  /// Checkpoint barrier support (docs/CHECKPOINT.md): a frozen core's tick()
  /// returns immediately — no commits, no new misses, no stat bumps — while
  /// in-flight completions still land (they only mark outstanding_ entries
  /// done and fill caches). Freezing all injectors lets the engine drain.
  void freeze() { frozen_ = true; }
  void unfreeze() { frozen_ = false; }
  [[nodiscard]] bool frozen() const { return frozen_; }

  /// True when no LLC read of this core is still in flight.
  [[nodiscard]] bool quiescent() const {
    if (prefetches_in_flight_ > 0) return false;
    for (const Miss& m : outstanding_) {
      if (!m.done) return false;
    }
    return true;
  }

  /// Checkpoint the architectural state; requires quiescent(). load()
  /// targets a freshly-constructed core with the same configuration.
  void save(ckpt::StateWriter& w) const;
  void load(ckpt::StateReader& r);

 private:
  struct Miss {
    std::uint64_t seq;   // committed-instruction count at issue
    bool done = false;
  };

  /// Attempt to execute the pending memory op; false on a structural or
  /// dependency stall (commit cannot proceed this cycle).
  bool execute_mem_op(Cycle now);
  void send_llc_read(Addr block, Cycle now, std::size_t miss_slot);
  void send_llc_write(Addr block, Cycle now);
  [[nodiscard]] bool rob_full() const;
  void l2_insert(Addr block, bool dirty, Cycle now);

  Engine& engine_;
  CpuCoreConfig cfg_;  // ckpt:skip digest:skip: construction parameter
  unsigned index_;     // ckpt:skip digest:skip: construction identity
  std::unique_ptr<CpuStream> stream_;
  StatRegistry& stats_;
  MemPort port_;  // ckpt:skip digest:skip: wiring callbacks to the LLC
  CheckContext* check_ = nullptr;

  std::unique_ptr<SetAssocCache> l1d_;
  std::unique_ptr<SetAssocCache> l2_;

  MicroOp pending_{};
  bool has_pending_ = false;
  // Checkpoint barrier: tick() is a no-op while set, managed around save().
  bool frozen_ = false;  // ckpt:skip digest:skip: barrier flag
  std::uint32_t gap_left_ = 0;

  std::uint64_t committed_ = 0;
  Cycle resume_at_ = 0;                  // short fixed-latency stalls
  std::vector<Miss> outstanding_;        // in-flight LLC reads
  std::int64_t blocking_miss_ = -1;      // index into outstanding_, or -1
  // digest:skip: resolved-entry count awaiting compaction, derived from
  // outstanding_ (whose per-entry done flags are digested).
  unsigned done_misses_ = 0;  // digest:skip

  // Stream prefetcher: detects ascending block streams on L2 misses and
  // runs ahead, hiding DRAM latency for streaming workloads the way the L2
  // prefetchers of real cores do.
  struct StreamTracker {
    Addr next = 0;
    bool valid = false;
  };
  static constexpr unsigned kStreamTrackers = 4;
  static constexpr unsigned kPrefetchDegree = 4;
  static constexpr unsigned kMaxPrefetchInFlight = 12;
  StreamTracker trackers_[kStreamTrackers] = {};
  unsigned tracker_rr_ = 0;
  unsigned prefetches_in_flight_ = 0;  // ckpt:skip: zero at the barrier
  void maybe_prefetch(Addr miss_block, Cycle now);

  std::string stat_prefix_;  // ckpt:skip digest:skip: diagnostic label
  Profiler* prof_ = nullptr;
  // Host-side decimation counter for the sampled profiler scope; never
  // touches simulated state.
  std::uint32_t prof_decim_ = 0;  // ckpt:skip digest:skip: host-side only
  std::uint64_t* st_stall_fixed_ = nullptr;
  std::uint64_t* st_stall_dep_ = nullptr;
  std::uint64_t* st_stall_rob_ = nullptr;
  std::uint64_t* st_stall_struct_ = nullptr;
  std::uint64_t* st_llc_reads_ = nullptr;
  std::uint64_t* st_llc_writes_ = nullptr;
  std::uint64_t* st_read_lat_ = nullptr;
  std::uint64_t* st_prefetches_ = nullptr;
  std::uint64_t* st_committed_ = nullptr;  // activity counter
};

}  // namespace gpuqos
