#include "cpu/stream.hpp"

#include <algorithm>

namespace gpuqos {

CpuStream::CpuStream(const SpecProfile& profile, Addr base, Rng rng)
    : profile_(profile), base_(base), rng_(rng) {
  // mem_op_fraction f means one memory op per 1/f instructions, i.e. a mean
  // gap of (1/f - 1) non-memory instructions.
  const double f = std::clamp(profile_.mem_op_fraction, 0.01, 0.9);
  mean_gap_ = 1.0 / f - 1.0;

  // Memory ops per kilo-instruction, and the LLC traffic the stream region
  // already contributes (one block fetch per blocksize/stride accesses).
  const double ops_per_kinstr = f * 1000.0;
  const double stream_apki =
      profile_.stream_fraction * ops_per_kinstr *
      static_cast<double>(profile_.stream_stride) / 64.0;
  const double residual = std::max(0.0, profile_.llc_apki - stream_apki);
  p_llc_ = std::clamp(residual / ops_per_kinstr, 0.0,
                      1.0 - profile_.stream_fraction);
}

MicroOp CpuStream::next() {
  MicroOp op;
  op.gap = static_cast<std::uint32_t>(rng_.geometric(mean_gap_ + 1.0)) - 1;
  op.is_store = rng_.bernoulli(profile_.store_fraction);

  const double u = rng_.next_double();
  if (u < profile_.stream_fraction) {
    op.addr = base_ + stream_pos_;
    stream_pos_ += profile_.stream_stride;
    if (stream_pos_ >= profile_.stream_bytes) stream_pos_ = 0;
  } else if (u < profile_.stream_fraction + p_llc_) {
    // LLC working set with hierarchical locality (real SPEC reuse is
    // zipf-like, not uniform): 70% of accesses hit the warmest 1/8 of the
    // working set, whose short reuse distance keeps it LLC-resident under
    // SRRIP even while the GPU churns the cache; the cold remainder is the
    // traffic that turns into DRAM misses under GPU pressure.
    const std::uint64_t blocks =
        std::max<std::uint64_t>(1, profile_.llc_ws_bytes / 64);
    const std::uint64_t warm_blocks = std::max<std::uint64_t>(1, blocks / 6);
    if (rng_.bernoulli(0.75)) {
      op.addr = base_ + profile_.stream_bytes + rng_.next_below(warm_blocks) * 64;
    } else {
      op.addr = base_ + profile_.stream_bytes +
                (warm_blocks + rng_.next_below(blocks - warm_blocks)) * 64;
    }
  } else {
    // Hot set: private-cache resident.
    const std::uint64_t blocks =
        std::max<std::uint64_t>(1, profile_.hot_bytes / 64);
    op.addr = base_ + profile_.stream_bytes + profile_.llc_ws_bytes +
              rng_.next_below(blocks) * 64;
  }
  op.dependent = !op.is_store && rng_.bernoulli(profile_.dependent_fraction);
  return op;
}

}  // namespace gpuqos
