#include "cpu/core.hpp"

#include <algorithm>

#include "check/check.hpp"
#include "check/context.hpp"
#include "check/digest.hpp"
#include "ckpt/state_io.hpp"
#include "obs/profiler.hpp"

namespace gpuqos {
namespace {
/// Extra cycles a dependent load pays on an L2 hit (L1-miss/L2-hit path).
constexpr Cycle kL2HitPenalty = 8;
}  // namespace

CpuCore::CpuCore(Engine& engine, const CpuCoreConfig& cfg, unsigned index,
                 std::unique_ptr<CpuStream> stream, StatRegistry& stats)
    : engine_(engine),
      cfg_(cfg),
      index_(index),
      stream_(std::move(stream)),
      stats_(stats),
      l1d_(std::make_unique<SetAssocCache>(cfg.l1d, "l1d")),
      l2_(std::make_unique<SetAssocCache>(cfg.l2, "l2")),
      stat_prefix_("cpu" + std::to_string(index) + ".") {
  outstanding_.reserve(cfg.l2_mshrs + 1);
  st_stall_fixed_ = stats_.counter_ptr(stat_prefix_ + "stall_fixed");
  st_stall_dep_ = stats_.counter_ptr(stat_prefix_ + "stall_dependent");
  st_stall_rob_ = stats_.counter_ptr(stat_prefix_ + "stall_rob");
  st_stall_struct_ = stats_.counter_ptr(stat_prefix_ + "stall_structural");
  st_llc_reads_ = stats_.counter_ptr(stat_prefix_ + "llc_reads");
  st_llc_writes_ = stats_.counter_ptr(stat_prefix_ + "llc_writes");
  st_read_lat_ = stats_.counter_ptr(stat_prefix_ + "llc_read_latency");
  st_prefetches_ = stats_.counter_ptr(stat_prefix_ + "prefetches");
  // Activity counter (obs/counters.hpp): unconditional, so the stats digest
  // is identical with and without observability attached.
  st_committed_ = stats_.counter_ptr(stat_prefix_ + "committed_instrs");
}

bool CpuCore::rob_full() const {
  std::uint64_t oldest = ~std::uint64_t{0};
  for (const auto& m : outstanding_) {
    if (!m.done) oldest = std::min(oldest, m.seq);
  }
  if (oldest == ~std::uint64_t{0}) return false;
  return committed_ - oldest >= cfg_.rob_size;
}

void CpuCore::tick(Cycle now) {
  if (frozen_) return;
  // Sampled (1-in-16) scope: a full rdtsc pair per core per base cycle
  // would dominate the <10% telemetry-overhead budget.
  SampledProfScope<16> prof(prof_, ProfModule::CpuCore, prof_decim_);
  if (now < resume_at_) {
    ++*st_stall_fixed_;
    return;
  }
  if (blocking_miss_ >= 0) {
    const auto id = static_cast<std::uint64_t>(blocking_miss_);
    auto it = std::find_if(outstanding_.begin(), outstanding_.end(),
                           [id](const Miss& m) { return m.seq == id; });
    // blocking_miss_ stores the miss seq (unique per miss: committed_ count
    // at issue is strictly increasing between mem ops... see execute_mem_op).
    if (it != outstanding_.end() && !it->done) {
      ++*st_stall_dep_;
      return;
    }
    blocking_miss_ = -1;
  }
  // Compact resolved misses (safe: no live references right now). Guarded by
  // the done-count so the common all-in-flight tick skips the vector walk.
  if (done_misses_ > 0) {
    std::erase_if(outstanding_, [](const Miss& m) { return m.done; });
    done_misses_ = 0;
  }

  unsigned budget = cfg_.commit_width;
  while (budget > 0) {
    if (!has_pending_) {
      pending_ = stream_->next();
      gap_left_ = pending_.gap;
      has_pending_ = true;
    }
    if (gap_left_ > 0) {
      const std::uint32_t c =
          std::min<std::uint32_t>(budget, gap_left_);
      committed_ += c;
      *st_committed_ += c;
      gap_left_ -= c;
      budget -= c;
      continue;
    }
    if (rob_full()) {
      ++*st_stall_rob_;
      break;
    }
    if (!execute_mem_op(now)) {
      ++*st_stall_struct_;
      break;
    }
    ++committed_;
    ++*st_committed_;
    --budget;
    has_pending_ = false;
    if (blocking_miss_ >= 0) break;  // dependent load: stop committing
    if (now < resume_at_) break;     // L2-hit penalty starts next cycle
  }
}

bool CpuCore::execute_mem_op(Cycle now) {
  const Addr block = l1d_->block_base(pending_.addr);
  const SourceId src = SourceId::cpu(static_cast<std::uint8_t>(index_));

  bool l1_hit = false;
  auto ev1 = l1d_->access(block, pending_.is_store, src,
                          GpuAccessClass::None, l1_hit);
  if (ev1 && ev1->dirty) l2_insert(ev1->block_addr, /*dirty=*/true, now);
  if (l1_hit) return true;

  if (l2_->lookup(block, /*write=*/false)) {
    if (pending_.dependent) resume_at_ = now + kL2HitPenalty;
    return true;
  }

  // L2 miss: needs an LLC round trip (loads and store-fills alike).
  unsigned in_flight = 0;
  for (const auto& m : outstanding_) {
    if (!m.done) ++in_flight;
  }
  if (in_flight >= cfg_.l2_mshrs) return false;

  // `seq` doubles as a unique miss id: committed_ is strictly increasing and
  // at most one miss is issued per committed_ value (the mem op commits
  // right after issuing, bumping committed_).
  const std::uint64_t id = committed_;
  outstanding_.push_back(Miss{id, false});
  send_llc_read(block, now, outstanding_.size() - 1);
  if (pending_.dependent) blocking_miss_ = static_cast<std::int64_t>(id);
  ++*st_llc_reads_;
  maybe_prefetch(block, now);
  return true;
}

void CpuCore::maybe_prefetch(Addr miss_block, Cycle now) {
  // Find (or allocate) a tracker expecting this block.
  int hit = -1;
  for (unsigned t = 0; t < kStreamTrackers; ++t) {
    if (trackers_[t].valid && trackers_[t].next == miss_block) {
      hit = static_cast<int>(t);
      break;
    }
  }
  if (hit < 0) {
    // Train: remember the successor; prefetch fires on the next hit.
    trackers_[tracker_rr_] = {miss_block + 64, true};
    tracker_rr_ = (tracker_rr_ + 1) % kStreamTrackers;
    return;
  }
  // Confirmed stream: run ahead by kPrefetchDegree blocks.
  Addr next = miss_block + 64;
  for (unsigned d = 0; d < kPrefetchDegree; ++d, next += 64) {
    if (prefetches_in_flight_ >= kMaxPrefetchInFlight) break;
    if (l2_->probe(next)) continue;
    ++prefetches_in_flight_;
    ++*st_prefetches_;
    MemRequest req;
    req.addr = next;
    req.is_write = false;
    req.source = SourceId::cpu(static_cast<std::uint8_t>(index_));
    req.issued_at = now;
    req.on_complete = [this, next](Cycle when) {
      if (prefetches_in_flight_ > 0) --prefetches_in_flight_;
      l2_insert(next, /*dirty=*/false, when);
    };
    if (check_ != nullptr) {
      check_->on_inject(CheckContext::Flow::CpuRead);
      req.on_complete = check_->guard_retire(std::move(req.on_complete),
                                             CheckContext::Flow::CpuRead);
    }
    port_(std::move(req));
  }
  trackers_[hit].next = next;
}

void CpuCore::send_llc_read(Addr block, Cycle now, std::size_t miss_slot) {
  (void)miss_slot;
  GPUQOS_CHECK(port_, "core " << index_ << " has no LLC port wired");
  const std::uint64_t id = outstanding_.back().seq;
  const bool dirty_fill = pending_.is_store;

  MemRequest req;
  req.addr = block;
  req.is_write = false;
  req.source = SourceId::cpu(static_cast<std::uint8_t>(index_));
  req.issued_at = now;
  req.on_complete = [this, id, block, dirty_fill, now](Cycle when) {
    auto it = std::find_if(outstanding_.begin(), outstanding_.end(),
                           [id](const Miss& m) { return m.seq == id; });
    if (it != outstanding_.end() && !it->done) {
      it->done = true;
      ++done_misses_;
    }
    *st_read_lat_ += when - now;
    l2_insert(block, dirty_fill, when);
    auto ev1 = l1d_->fill(block,
                          SourceId::cpu(static_cast<std::uint8_t>(index_)),
                          GpuAccessClass::None, dirty_fill);
    if (ev1 && ev1->dirty) l2_insert(ev1->block_addr, /*dirty=*/true, when);
  };
  if (check_ != nullptr) {
    check_->on_inject(CheckContext::Flow::CpuRead);
    req.on_complete = check_->guard_retire(std::move(req.on_complete),
                                           CheckContext::Flow::CpuRead);
  }
  port_(std::move(req));
}

void CpuCore::l2_insert(Addr block, bool dirty, Cycle now) {
  auto ev = l2_->fill(block, SourceId::cpu(static_cast<std::uint8_t>(index_)),
                      GpuAccessClass::None, dirty);
  if (ev && ev->dirty) send_llc_write(ev->block_addr, now);
}

void CpuCore::send_llc_write(Addr block, Cycle now) {
  GPUQOS_CHECK(port_, "core " << index_ << " has no LLC port wired");
  MemRequest req;
  req.addr = block;
  req.is_write = true;
  req.source = SourceId::cpu(static_cast<std::uint8_t>(index_));
  req.issued_at = now;
  ++*st_llc_writes_;
  if (check_ != nullptr) check_->on_inject(CheckContext::Flow::CpuWrite);
  port_(std::move(req));
}

bool CpuCore::back_invalidate(Addr addr) {
  bool dirty = false;
  if (auto ev = l1d_->invalidate(addr)) dirty |= ev->dirty;
  if (auto ev = l2_->invalidate(addr)) dirty |= ev->dirty;
  return dirty;
}

std::uint64_t CpuCore::digest() const {
  Fnv1a64 h;
  h.mix(committed_);
  h.mix(resume_at_);
  h.mix_signed(blocking_miss_);
  h.mix_bool(has_pending_);
  h.mix(pending_.addr);
  h.mix_bool(pending_.is_store);
  h.mix_bool(pending_.dependent);
  h.mix(gap_left_);
  h.mix(outstanding_.size());
  for (const Miss& m : outstanding_) {
    h.mix(m.seq);
    h.mix_bool(m.done);
  }
  for (const StreamTracker& t : trackers_) {
    h.mix(t.next);
    h.mix_bool(t.valid);
  }
  h.mix(tracker_rr_);
  h.mix(prefetches_in_flight_);
  h.mix(l1d_->digest());
  h.mix(l2_->digest());
  h.mix(stream_->digest());
  return h.value();
}

void CpuCore::save(ckpt::StateWriter& w) const {
  if (!quiescent()) {
    throw ckpt::CkptError("cpu core save() with misses in flight: the "
                          "simulation was not drained before checkpointing");
  }
  w.u64(committed_);
  w.u64(resume_at_);
  w.i64(blocking_miss_);
  w.boolean(has_pending_);
  w.u32(pending_.gap);
  w.u64(pending_.addr);
  w.boolean(pending_.is_store);
  w.boolean(pending_.dependent);
  w.u32(gap_left_);
  // Resolved-but-uncompacted misses carry no closures; serialize them so the
  // next tick's compaction (and the digest until then) replays identically.
  w.u64(outstanding_.size());
  for (const Miss& m : outstanding_) {
    w.u64(m.seq);
    w.boolean(m.done);
  }
  w.u32(done_misses_);
  for (const StreamTracker& t : trackers_) {
    w.u64(t.next);
    w.boolean(t.valid);
  }
  w.u32(tracker_rr_);
  l1d_->save(w);
  l2_->save(w);
  stream_->save(w);
}

void CpuCore::load(ckpt::StateReader& r) {
  committed_ = r.u64();
  resume_at_ = r.u64();
  blocking_miss_ = r.i64();
  has_pending_ = r.boolean();
  pending_.gap = r.u32();
  pending_.addr = r.u64();
  pending_.is_store = r.boolean();
  pending_.dependent = r.boolean();
  gap_left_ = r.u32();
  const std::uint64_t n = r.u64();
  outstanding_.clear();
  for (std::uint64_t i = 0; i < n; ++i) {
    Miss m;
    m.seq = r.u64();
    m.done = r.boolean();
    if (!m.done) r.fail("outstanding miss not done in snapshot");
    outstanding_.push_back(m);
  }
  done_misses_ = r.u32();
  for (StreamTracker& t : trackers_) {
    t.next = r.u64();
    t.valid = r.boolean();
  }
  tracker_rr_ = r.u32();
  l1d_->load(r);
  l2_->load(r);
  stream_->load(r);
}

}  // namespace gpuqos
