// Versioned binary snapshot format (docs/CHECKPOINT.md).
//
// A snapshot is a header (magic + format version) followed by a sequence of
// tagged sections:
//
//   [u16 tag_len][tag bytes][u64 payload_len][u32 crc32][payload bytes]
//
// Each stateful module serializes into exactly one section via
// save(StateWriter&) and restores from it via load(StateReader&). The CRC is
// over the payload, so corruption is pinned to a module. Readers iterate
// sections in order and skip tags they do not recognise, which is what makes
// the format forward-compatible: a new module adds a new section and old
// readers step over it.
//
// Every malformed condition — truncation, bad magic, wrong version, CRC
// mismatch, a module reading past its section, a module leaving bytes
// unconsumed — throws CkptError with a message naming the section, rather
// than asserting or reading garbage.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace gpuqos::ckpt {

/// Any failure to write, parse, or validate a snapshot. Callers (CLI, tests)
/// catch this to fail gracefully with the message.
class CkptError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// CRC-32 (IEEE 802.3 polynomial) of a byte range.
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t len);

inline constexpr std::uint64_t kSnapshotMagic = 0x4750'5551'4F53'434Bull;
inline constexpr std::uint32_t kSnapshotVersion = 1;

class StateWriter {
 public:
  StateWriter();

  /// Open a tagged section; all primitive writes go into its payload until
  /// end_section() seals it (length + CRC). Sections do not nest.
  void begin_section(std::string_view tag);
  void end_section();

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void boolean(bool v);
  void str(std::string_view s);
  void bytes(const void* data, std::size_t len);

  /// Seal the buffer and return it. The writer must not be reused after.
  [[nodiscard]] std::vector<std::uint8_t> finish();

 private:
  void require_section(const char* what) const;

  std::vector<std::uint8_t> buf_;      // header + sealed sections
  std::vector<std::uint8_t> payload_;  // current open section
  std::string tag_;
  bool in_section_ = false;
  bool finished_ = false;
};

class StateReader {
 public:
  /// Takes ownership of a snapshot byte buffer; validates magic + version.
  explicit StateReader(std::vector<std::uint8_t> data);

  /// Advance to the next section (validating framing + CRC) and make its
  /// payload current. Returns false at end of snapshot.
  [[nodiscard]] bool next_section();
  [[nodiscard]] const std::string& tag() const { return tag_; }

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  bool boolean();
  std::string str();
  void bytes(void* out, std::size_t len);

  /// Bytes left in the current section's payload.
  [[nodiscard]] std::size_t remaining() const { return sect_end_ - pos_; }

  /// Assert the current section was fully consumed; a module that leaves
  /// bytes behind mis-parsed (or the snapshot came from a newer writer whose
  /// extra trailing fields it should have versioned).
  void expect_section_end() const;

  /// Throw CkptError("<context>: ...") helpers for load-time validation.
  [[noreturn]] void fail(const std::string& message) const;

 private:
  void need(std::size_t n) const;

  std::vector<std::uint8_t> data_;
  std::size_t pos_ = 0;       // read cursor (inside current section payload)
  std::size_t sect_end_ = 0;  // end of current section payload
  std::string tag_;
};

/// The bare container header (magic + version) — for append-only writers
/// that grow a container one section at a time (sim::SweepManifest) instead
/// of sealing a whole buffer through StateWriter.
[[nodiscard]] std::vector<std::uint8_t> container_header();

/// One sealed section frame ([u16 tag_len][tag][u64 len][u32 crc][payload])
/// as standalone bytes, appendable after container_header() or any sealed
/// section. Same framing StateWriter emits, so StateReader reads the result.
[[nodiscard]] std::vector<std::uint8_t> encode_section(
    std::string_view tag, const std::vector<std::uint8_t>& payload);

/// Whole-snapshot file helpers. Throw CkptError on any I/O failure.
void write_snapshot_file(const std::string& path,
                         const std::vector<std::uint8_t>& data);
[[nodiscard]] std::vector<std::uint8_t> read_snapshot_file(
    const std::string& path);

}  // namespace gpuqos::ckpt
