// Snapshot-level helpers on top of state_io: the `meta` section that pins a
// snapshot to the run that produced it, and the compatibility check applied
// before any module state is restored.
//
// The meta section is always the first section of a snapshot. Restore modes:
//  * resume  — the snapshot continues the exact same run, so every identity
//    field (mix, policy, seed, core count, budgets, config digest) must match.
//  * fork    — warm-state forking deliberately restores a warm-up taken under
//    one policy into a CMP built for another, so the policy field is exempt;
//    everything else must still match.
#pragma once

#include <cstdint>
#include <string>

#include "ckpt/state_io.hpp"

namespace gpuqos::ckpt {

/// Identity of the run a snapshot was taken from.
struct SnapshotMeta {
  std::string mix_id;
  std::string policy;
  std::uint64_t seed = 0;
  std::uint32_t cpu_cores = 0;
  double fps_scale = 1.0;
  /// FNV-1a over the SimConfig fields that shape simulation state (see
  /// hetero_cmp.cpp); two configs with equal digests build identical CMPs.
  std::uint64_t cfg_digest = 0;
  // RunScale budgets: a resumed run must re-derive the same warm/measure
  // schedule, so mismatched budgets are a hard error on resume.
  std::uint64_t warm_instrs = 0;
  std::uint64_t measure_instrs = 0;
  std::uint32_t warm_frames = 0;
  std::uint32_t measure_frames = 0;
  std::uint64_t warm_min_cycles = 0;
  std::uint64_t max_cycles = 0;
};

/// How strictly load_state checks the meta section against the live run.
enum class RestoreMode {
  kResume,  // exact match, including policy
  kFork,    // warm-state fork: policy may differ
};

void save_meta(StateWriter& w, const SnapshotMeta& meta);

/// Parse the current section (must be tagged "meta").
[[nodiscard]] SnapshotMeta load_meta(StateReader& r);

/// Throws CkptError describing the first mismatch, or returns silently.
void validate_meta(const SnapshotMeta& snap, const SnapshotMeta& live,
                   RestoreMode mode);

}  // namespace gpuqos::ckpt
