#include "ckpt/state_io.hpp"

#include <array>
#include <cstdio>
#include <cstring>

namespace gpuqos::ckpt {
namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void append(std::vector<std::uint8_t>& out, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  out.insert(out.end(), p, p + n);
}

template <class T>
void append_pod(std::vector<std::uint8_t>& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  append(out, &v, sizeof(v));
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t len) {
  static constexpr std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

StateWriter::StateWriter() {
  append_pod(buf_, kSnapshotMagic);
  append_pod(buf_, kSnapshotVersion);
}

void StateWriter::require_section(const char* what) const {
  if (finished_) throw CkptError(std::string(what) + " after finish()");
  if (!in_section_) {
    throw CkptError(std::string(what) + " outside a section");
  }
}

void StateWriter::begin_section(std::string_view tag) {
  if (finished_) throw CkptError("begin_section after finish()");
  if (in_section_) {
    throw CkptError("begin_section('" + std::string(tag) +
                    "') while section '" + tag_ + "' is open");
  }
  if (tag.empty() || tag.size() > 0xFFFF) {
    throw CkptError("section tag must be 1..65535 bytes");
  }
  tag_ = std::string(tag);
  payload_.clear();
  in_section_ = true;
}

void StateWriter::end_section() {
  require_section("end_section");
  // begin_section rejects tags past 0xFFFF, so the u16 cannot wrap.
  append_pod(buf_, static_cast<std::uint16_t>(tag_.size()));  /*narrow:ok*/
  append(buf_, tag_.data(), tag_.size());
  append_pod(buf_, static_cast<std::uint64_t>(payload_.size()));
  append_pod(buf_, crc32(payload_.data(), payload_.size()));
  append(buf_, payload_.data(), payload_.size());
  in_section_ = false;
}

void StateWriter::u8(std::uint8_t v) {
  require_section("u8");
  payload_.push_back(v);
}
void StateWriter::u32(std::uint32_t v) {
  require_section("u32");
  append_pod(payload_, v);
}
void StateWriter::u64(std::uint64_t v) {
  require_section("u64");
  append_pod(payload_, v);
}
void StateWriter::i64(std::int64_t v) {
  require_section("i64");
  append_pod(payload_, v);
}
void StateWriter::f64(double v) {
  require_section("f64");
  append_pod(payload_, v);
}
void StateWriter::boolean(bool v) { u8(v ? 1 : 0); }

void StateWriter::str(std::string_view s) {
  require_section("str");
  if (s.size() > 0xFFFF'FFFFull) {
    throw CkptError("str() payload exceeds the u32 length prefix");
  }
  append_pod(payload_, static_cast<std::uint32_t>(s.size()));
  append(payload_, s.data(), s.size());
}

void StateWriter::bytes(const void* data, std::size_t len) {
  require_section("bytes");
  append(payload_, data, len);
}

std::vector<std::uint8_t> StateWriter::finish() {
  if (in_section_) {
    throw CkptError("finish() while section '" + tag_ + "' is open");
  }
  finished_ = true;
  return std::move(buf_);
}

StateReader::StateReader(std::vector<std::uint8_t> data)
    : data_(std::move(data)) {
  if (data_.size() < sizeof(kSnapshotMagic) + sizeof(kSnapshotVersion)) {
    throw CkptError("snapshot truncated: shorter than the header");
  }
  std::uint64_t magic = 0;
  std::memcpy(&magic, data_.data(), sizeof(magic));
  if (magic != kSnapshotMagic) {
    throw CkptError("not a gpuqos snapshot (bad magic)");
  }
  std::uint32_t version = 0;
  std::memcpy(&version, data_.data() + sizeof(magic), sizeof(version));
  if (version != kSnapshotVersion) {
    throw CkptError("unsupported snapshot version " + std::to_string(version) +
                    " (this build reads version " +
                    std::to_string(kSnapshotVersion) + ")");
  }
  pos_ = sizeof(magic) + sizeof(version);
  sect_end_ = pos_;  // no section current yet
}

void StateReader::need(std::size_t n) const {
  if (pos_ + n > sect_end_) {
    throw CkptError("section '" + tag_ + "' truncated: read of " +
                    std::to_string(n) + " bytes overruns the payload");
  }
}

bool StateReader::next_section() {
  // Skip whatever remains of the current section's payload (forward compat:
  // unknown or partially-read sections are stepped over, not parsed).
  pos_ = sect_end_;
  if (pos_ == data_.size()) return false;

  auto raw = [&](void* out, std::size_t n, const char* what) {
    if (pos_ + n > data_.size()) {
      throw CkptError(std::string("snapshot truncated while reading ") + what);
    }
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
  };
  std::uint16_t tag_len = 0;
  raw(&tag_len, sizeof(tag_len), "a section tag length");
  if (tag_len == 0) throw CkptError("corrupt snapshot: empty section tag");
  if (pos_ + tag_len > data_.size()) {
    throw CkptError("snapshot truncated while reading a section tag");
  }
  tag_.assign(reinterpret_cast<const char*>(data_.data() + pos_), tag_len);
  pos_ += tag_len;

  std::uint64_t payload_len = 0;
  std::uint32_t crc = 0;
  raw(&payload_len, sizeof(payload_len),
      ("section '" + tag_ + "' length").c_str());
  raw(&crc, sizeof(crc), ("section '" + tag_ + "' checksum").c_str());
  if (payload_len > data_.size() - pos_) {
    throw CkptError("snapshot truncated: section '" + tag_ + "' claims " +
                    std::to_string(payload_len) + " payload bytes but only " +
                    std::to_string(data_.size() - pos_) + " remain");
  }
  const std::uint32_t actual = crc32(data_.data() + pos_, payload_len);
  if (actual != crc) {
    throw CkptError("section '" + tag_ + "' is corrupt (CRC mismatch)");
  }
  sect_end_ = pos_ + payload_len;
  return true;
}

std::uint8_t StateReader::u8() {
  need(1);
  return data_[pos_++];
}
std::uint32_t StateReader::u32() {
  need(4);
  std::uint32_t v = 0;
  std::memcpy(&v, data_.data() + pos_, 4);
  pos_ += 4;
  return v;
}
std::uint64_t StateReader::u64() {
  need(8);
  std::uint64_t v = 0;
  std::memcpy(&v, data_.data() + pos_, 8);
  pos_ += 8;
  return v;
}
std::int64_t StateReader::i64() {
  need(8);
  std::int64_t v = 0;
  std::memcpy(&v, data_.data() + pos_, 8);
  pos_ += 8;
  return v;
}
double StateReader::f64() {
  need(8);
  double v = 0;
  std::memcpy(&v, data_.data() + pos_, 8);
  pos_ += 8;
  return v;
}
bool StateReader::boolean() { return u8() != 0; }

std::string StateReader::str() {
  const std::uint32_t len = u32();
  need(len);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return s;
}

void StateReader::bytes(void* out, std::size_t len) {
  need(len);
  std::memcpy(out, data_.data() + pos_, len);
  pos_ += len;
}

void StateReader::expect_section_end() const {
  if (pos_ != sect_end_) {
    throw CkptError("section '" + tag_ + "' has " +
                    std::to_string(sect_end_ - pos_) +
                    " unconsumed bytes after load (format mismatch)");
  }
}

void StateReader::fail(const std::string& message) const {
  throw CkptError("section '" + tag_ + "': " + message);
}

std::vector<std::uint8_t> container_header() {
  // Exact-size construction + memcpy (not append/insert): GCC 12's
  // stringop-overflow analysis misfires on inlined vector::insert growth
  // under -Werror, and the size is statically known anyway.
  std::vector<std::uint8_t> out(sizeof(kSnapshotMagic) +
                                sizeof(kSnapshotVersion));
  std::memcpy(out.data(), &kSnapshotMagic, sizeof(kSnapshotMagic));
  std::memcpy(out.data() + sizeof(kSnapshotMagic), &kSnapshotVersion,
              sizeof(kSnapshotVersion));
  return out;
}

std::vector<std::uint8_t> encode_section(
    std::string_view tag, const std::vector<std::uint8_t>& payload) {
  if (tag.empty() || tag.size() > 0xFFFF) {
    throw CkptError("section tag must be 1..65535 bytes");
  }
  // Exact-size construction + memcpy for the same GCC 12 reason as
  // container_header() above.
  const auto tag_len = static_cast<std::uint16_t>(tag.size());
  const auto payload_len = static_cast<std::uint64_t>(payload.size());
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  std::vector<std::uint8_t> out(sizeof(tag_len) + tag.size() +
                                sizeof(payload_len) + sizeof(crc) +
                                payload.size());
  std::size_t off = 0;
  auto put = [&out, &off](const void* p, std::size_t n) {
    std::memcpy(out.data() + off, p, n);
    off += n;
  };
  put(&tag_len, sizeof(tag_len));
  put(tag.data(), tag.size());
  put(&payload_len, sizeof(payload_len));
  put(&crc, sizeof(crc));
  put(payload.data(), payload.size());
  return out;
}

void write_snapshot_file(const std::string& path,
                         const std::vector<std::uint8_t>& data) {
  // Atomic-ish: write to a sibling temp file and rename over the target so a
  // crash mid-write never leaves a torn snapshot under the final name.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) throw CkptError("cannot open '" + tmp + "' for writing");
  const std::size_t written = std::fwrite(data.data(), 1, data.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != data.size() || !flushed) {
    std::remove(tmp.c_str());
    throw CkptError("short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw CkptError("cannot rename '" + tmp + "' to '" + path + "'");
  }
}

std::vector<std::uint8_t> read_snapshot_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw CkptError("cannot open snapshot '" + path + "'");
  std::vector<std::uint8_t> data;
  std::array<std::uint8_t, 65536> chunk{};
  std::size_t n = 0;
  while ((n = std::fread(chunk.data(), 1, chunk.size(), f)) > 0) {
    data.insert(data.end(), chunk.begin(), chunk.begin() + n);
  }
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) throw CkptError("read error on snapshot '" + path + "'");
  return data;
}

}  // namespace gpuqos::ckpt
