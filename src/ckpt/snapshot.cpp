#include "ckpt/snapshot.hpp"

namespace gpuqos::ckpt {

void save_meta(StateWriter& w, const SnapshotMeta& meta) {
  w.begin_section("meta");
  w.str(meta.mix_id);
  w.str(meta.policy);
  w.u64(meta.seed);
  w.u32(meta.cpu_cores);
  w.f64(meta.fps_scale);
  w.u64(meta.cfg_digest);
  w.u64(meta.warm_instrs);
  w.u64(meta.measure_instrs);
  w.u32(meta.warm_frames);
  w.u32(meta.measure_frames);
  w.u64(meta.warm_min_cycles);
  w.u64(meta.max_cycles);
  w.end_section();
}

SnapshotMeta load_meta(StateReader& r) {
  if (r.tag() != "meta") {
    r.fail("expected the snapshot to begin with a 'meta' section");
  }
  SnapshotMeta m;
  m.mix_id = r.str();
  m.policy = r.str();
  m.seed = r.u64();
  m.cpu_cores = r.u32();
  m.fps_scale = r.f64();
  m.cfg_digest = r.u64();
  m.warm_instrs = r.u64();
  m.measure_instrs = r.u64();
  m.warm_frames = r.u32();
  m.measure_frames = r.u32();
  m.warm_min_cycles = r.u64();
  m.max_cycles = r.u64();
  r.expect_section_end();
  return m;
}

namespace {

template <class T>
void check_field(const char* name, const T& snap, const T& live) {
  if (snap != live) {
    throw CkptError(std::string("snapshot mismatch: ") + name +
                    " differs (snapshot has '" + [&] {
                      if constexpr (std::is_same_v<T, std::string>) {
                        return snap;
                      } else {
                        return std::to_string(snap);
                      }
                    }() + "', this run has '" +
                    [&] {
                      if constexpr (std::is_same_v<T, std::string>) {
                        return live;
                      } else {
                        return std::to_string(live);
                      }
                    }() + "')");
  }
}

}  // namespace

void validate_meta(const SnapshotMeta& snap, const SnapshotMeta& live,
                   RestoreMode mode) {
  check_field("mix", snap.mix_id, live.mix_id);
  if (mode == RestoreMode::kResume) {
    check_field("policy", snap.policy, live.policy);
  }
  check_field("seed", snap.seed, live.seed);
  check_field("cpu_cores", snap.cpu_cores, live.cpu_cores);
  check_field("fps_scale", snap.fps_scale, live.fps_scale);
  check_field("config digest", snap.cfg_digest, live.cfg_digest);
  check_field("warm_instrs", snap.warm_instrs, live.warm_instrs);
  check_field("measure_instrs", snap.measure_instrs, live.measure_instrs);
  check_field("warm_frames", snap.warm_frames, live.warm_frames);
  check_field("measure_frames", snap.measure_frames, live.measure_frames);
  check_field("warm_min_cycles", snap.warm_min_cycles, live.warm_min_cycles);
  check_field("max_cycles", snap.max_cycles, live.max_cycles);
}

}  // namespace gpuqos::ckpt
