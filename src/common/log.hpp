// Minimal leveled logging. Off by default; enabled via set_log_level or the
// GPUQOS_LOG environment variable (error|warn|info|debug).
#pragma once

#include <sstream>
#include <string>

namespace gpuqos {

enum class LogLevel : int { Off = 0, Error, Warn, Info, Debug };

void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();
void log_message(LogLevel level, const std::string& msg);

}  // namespace gpuqos

#define GPUQOS_LOG(level, expr)                                   \
  do {                                                            \
    if (static_cast<int>(::gpuqos::log_level()) >=                \
        static_cast<int>(::gpuqos::LogLevel::level)) {            \
      std::ostringstream os_;                                     \
      os_ << expr;                                                \
      ::gpuqos::log_message(::gpuqos::LogLevel::level, os_.str()); \
    }                                                             \
  } while (0)
