// Minimal leveled logging. Off by default; enabled via set_log_level or the
// GPUQOS_LOG environment variable (error|warn|info|debug).
//
// Every message carries a monotonic simulation-cycle stamp so controller logs
// correlate with traces and sampled time-series: the active simulation (see
// HeteroCmp) registers a cycle source, and an optional sink lets the
// observability layer (src/obs) mirror messages into the Chrome trace.
#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "common/types.hpp"

namespace gpuqos {

enum class LogLevel : int { Off = 0, Error, Warn, Info, Debug };

void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Provides the current simulation cycle for message stamps. The registrant
/// must clear it (pass nullptr/empty) before the backing clock is destroyed.
/// Thread-local: each sweep-pool worker registers the clock of the simulation
/// it is running, so concurrent sims stamp their own cycles. The level is a
/// process-wide atomic.
void set_log_cycle_source(std::function<Cycle()> source);

/// Redirect messages away from stderr (e.g. into the telemetry trace). The
/// sink receives (level, cycle, message). Pass an empty function to restore
/// the default stderr sink. The registrant must clear it before the sink's
/// captured state is destroyed.
using LogSink = std::function<void(LogLevel, Cycle, const std::string&)>;
void set_log_sink(LogSink sink);

void log_message(LogLevel level, const std::string& msg);

}  // namespace gpuqos

#define GPUQOS_LOG(level, expr)                                   \
  do {                                                            \
    if (static_cast<int>(::gpuqos::log_level()) >=                \
        static_cast<int>(::gpuqos::LogLevel::level)) {            \
      std::ostringstream os_;                                     \
      os_ << expr;                                                \
      ::gpuqos::log_message(::gpuqos::LogLevel::level, os_.str()); \
    }                                                             \
  } while (0)
