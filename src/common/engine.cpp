#include "common/engine.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <utility>

#include "check/check.hpp"
#include "check/digest.hpp"
#include "ckpt/state_io.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace gpuqos {

namespace {

inline void cpu_pause() {
#if defined(__x86_64__) || defined(_M_X64)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

/// GPUQOS_TICK_THREADS: 1 (or unset/garbage) = serial reference path;
/// >= 2 enables the parallel tick. Clamped to 8 — only three parallel
/// domains exist, so more buys nothing.
unsigned parse_tick_threads() {
  const char* s = std::getenv("GPUQOS_TICK_THREADS");
  if (s == nullptr || *s == '\0') return 1;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || v < 1) return 1;
  return v > 8 ? 8U : static_cast<unsigned>(v);
}

}  // namespace

// NOLINT-gpuqos(thread-purity): audited — per-thread defer target that
// partitions parallel-phase state between executors instead of sharing it;
// always null outside fire_tickers_parallel, so pool workers are unaffected.
thread_local Engine::DeferBuf* Engine::t_defer_ = nullptr;

/// Persistent tick-worker group: one slot per worker, each on its own cache
/// line, woken by a per-slot generation counter (spin with pause, then a
/// condvar sleep for long idle stretches — drains, checkpoint barriers).
struct Engine::TickWorkers {
  static constexpr int kSpinsBeforeSleep = 1 << 14;

  struct alignas(64) Slot {
    std::atomic<std::uint64_t> go{0};
    std::atomic<std::uint64_t> done{0};
    std::atomic<bool> sleeping{false};
    std::mutex m; /*own:guarded: guards cv sleep/wake handshake only*/
    std::condition_variable cv;
    std::thread th;
    std::array<TickDomain, 2> domains{TickDomain::Main, TickDomain::Main};
    int ndomains = 0;
  };

  TickWorkers(Engine& eng, unsigned n) : slots_(n) {
    // Oversubscribed host (fewer cores than main + workers): a waiter's spin
    // burns cycles the thread it waits on needs, so park almost immediately
    // — the condvar/yield handoff costs a context switch, the spin costs a
    // whole scheduler timeslice.
    const unsigned hc = std::thread::hardware_concurrency();
    spin_budget_ = (hc != 0 && hc < n + 1) ? 1 : kSpinsBeforeSleep;
    // Static domain partition: the main thread always takes Cpu (the widest
    // domain); one worker serves Gpu+Dram, two workers split them.
    if (n == 1) {
      slots_[0].domains = {TickDomain::Gpu, TickDomain::Dram};
      slots_[0].ndomains = 2;
    } else {
      slots_[0].domains[0] = TickDomain::Gpu;
      slots_[0].ndomains = 1;
      slots_[1].domains[0] = TickDomain::Dram;
      slots_[1].ndomains = 1;
    }
    for (unsigned w = 0; w < n; ++w) {
      slots_[w].th = std::thread([this, &eng, w] { worker_main(eng, w); });
    }
  }

  ~TickWorkers() {
    quit_.store(true, std::memory_order_release);
    for (Slot& s : slots_) {
      s.go.fetch_add(1, std::memory_order_seq_cst);
      if (s.sleeping.load(std::memory_order_seq_cst)) {
        const std::lock_guard<std::mutex> lk(s.m);
        s.cv.notify_one();
      }
    }
    for (Slot& s : slots_) {
      if (s.th.joinable()) s.th.join();
    }
  }

  TickWorkers(const TickWorkers&) = delete;
  TickWorkers& operator=(const TickWorkers&) = delete;

  /// Release a worker into the current cycle's parallel phase. The release
  /// store publishes everything the main thread wrote since the last
  /// barrier (due lists, cleared buffers, module state mutated by events).
  void wake(Slot& s, std::uint64_t gen) {
    s.go.store(gen, std::memory_order_release);
    if (s.sleeping.load(std::memory_order_seq_cst)) {
      const std::lock_guard<std::mutex> lk(s.m);
      s.cv.notify_one();
    }
  }

  void worker_main(Engine& eng, unsigned w) {
    if (eng.worker_init_) eng.worker_init_(w);
    Slot& s = slots_[w];
    std::uint64_t seen = 0;
    for (;;) {
      std::uint64_t g = s.go.load(std::memory_order_acquire);
      if (g == seen) {
        int spins = 0;
        while ((g = s.go.load(std::memory_order_acquire)) == seen) {
          if (++spins < spin_budget_) {
            cpu_pause();
            continue;
          }
          std::unique_lock<std::mutex> lk(s.m);
          s.sleeping.store(true, std::memory_order_seq_cst);
          if (s.go.load(std::memory_order_seq_cst) == seen) {
            s.cv.wait(lk, [&] {
              return s.go.load(std::memory_order_acquire) != seen;
            });
          }
          s.sleeping.store(false, std::memory_order_seq_cst);
          g = s.go.load(std::memory_order_acquire);
          break;
        }
      }
      seen = g;
      if (quit_.load(std::memory_order_acquire)) {
        s.done.store(seen, std::memory_order_release);
        return;
      }
      for (int i = 0; i < s.ndomains; ++i) {
        eng.run_domain(s.domains[static_cast<std::size_t>(i)]);
      }
      // The release store publishes the worker's ticker/module mutations
      // and defer buffer to the main thread's matching acquire spin.
      s.done.store(seen, std::memory_order_release);
    }
  }

  std::atomic<bool> quit_{false};
  std::uint64_t gen_ = 0; /*own:worker: written by the main thread only*/
  int spin_budget_ = kSpinsBeforeSleep; /*own:worker: set once in the ctor*/
  std::vector<Slot> slots_;
};

Engine::Engine() : buckets_(kWheelSize), tick_threads_(parse_tick_threads()) {}

Engine::~Engine() = default;

bool Engine::deferring() { return t_defer_ != nullptr; }

void Engine::defer_host(HostFn fn) {
  DeferBuf* b = t_defer_;
  if (b == nullptr) {
    fn();
    return;
  }
  b->ops.push_back(
      DeferredOp{b->cur_ticker, false, 0, Action{}, std::move(fn)});
}

void Engine::ensure_workers() {
  if (workers_ != nullptr) return;
  const unsigned n = tick_threads_ > 2 ? 2U : tick_threads_ - 1;
  workers_ = std::make_unique<TickWorkers>(*this, n);
}

void Engine::schedule(Cycle delay, Action fn) {
  if (DeferBuf* b = t_defer_; b != nullptr) {
    // Parallel phase: park the event in the domain buffer. The barrier
    // replay re-issues it on the main thread in serial order, so seq
    // numbers (and therefore same-cycle FIFO order) match the serial path.
    b->ops.push_back(
        DeferredOp{b->cur_ticker, true, delay, std::move(fn), HostFn{}});
    return;
  }
  const Cycle when = now_ + delay;
  if (delay < kWheelSize) {
    // Direct insert: the bucket for `when` can only hold events of `when`
    // (it was drained when the wheel last passed it). Appending preserves
    // global (when, seq) order only if every far event for `when` (all of
    // which carry smaller seqs) is already in the bucket — normally true
    // because the run loop refills each cycle, but now_ can also advance by
    // an idle skip-ahead, so top up the wheel if the far heap intrudes into
    // the horizon. One compare in the common case.
    if (!far_.empty() && far_.front().when <= now_ + kWheelMask) {
      refill_wheel();
    }
    buckets_[when & kWheelMask].push_back(EventNode{seq_++, std::move(fn)});
    ++near_count_;
  } else {
    far_.push_back(FarEvent{when, seq_++, std::move(fn)});
    std::push_heap(far_.begin(), far_.end(), std::greater<>{});
  }
}

void Engine::add_ticker(Cycle period, Cycle phase, TickFn fn) {
  add_ticker(TickDomain::Main, period, phase, std::move(fn));
}

void Engine::add_ticker(TickDomain domain, Cycle period, Cycle phase,
                        TickFn fn) {
  const Cycle ph = phase % period;
  const Cycle rem = now_ % period;
  const Cycle first = now_ + (ph >= rem ? ph - rem : period - (rem - ph));
  tickers_.push_back(Ticker{period, first, domain, std::move(fn)});
  min_next_fire_ = std::min(min_next_fire_, first);
}

void Engine::refill_wheel() {
  const Cycle horizon = now_ + kWheelMask;  // wheel now covers [now_, horizon]
  while (!far_.empty() && far_.front().when <= horizon) {
    std::pop_heap(far_.begin(), far_.end(), std::greater<>{});
    FarEvent ev = std::move(far_.back());
    far_.pop_back();
    buckets_[ev.when & kWheelMask].push_back(
        EventNode{ev.seq, std::move(ev.fn)});
    ++near_count_;
  }
}

void Engine::drain_bucket() {
  auto& bucket = buckets_[now_ & kWheelMask];
  // Index loop, size re-read each iteration: an action may schedule a
  // zero-delay event, which appends to this same bucket and (matching the
  // original engine's "run everything due" loop) still runs this cycle.
  for (std::size_t i = 0; i < bucket.size(); ++i) {
    // Move out before calling: the action may grow the bucket (reallocating)
    // while this node is live.
    Action fn = std::move(bucket[i].fn);
    fn();
    ++events_run_;
  }
  near_count_ -= bucket.size();
  bucket.clear();  // keeps capacity — steady state does no allocation
}

void Engine::fire_tickers() {
  if (tick_threads_ > 1) {
    fire_tickers_parallel();
    return;
  }
  fire_due_serial();
}

void Engine::fire_due_serial() {
  // The serial reference: all due tickers in registration order, schedules
  // applied directly (t_defer_ is null here). GPUQOS_TICK_THREADS=1 runs
  // exactly this path, and the parallel path must be bit-identical to it.
  Cycle next_min = kNoCycle;
  for (auto& t : tickers_) {
    if (t.next_fire == now_) {
      t.fn(now_);
      ++ticks_run_;
      t.next_fire += t.period;
    }
    next_min = std::min(next_min, t.next_fire);
  }
  min_next_fire_ = next_min;
}

void Engine::run_domain(TickDomain d) {
  const int di = static_cast<int>(d);
  DeferBuf& buf = bufs_[static_cast<std::size_t>(di)];
  t_defer_ = &buf;
  for (const std::uint32_t idx : due_[static_cast<std::size_t>(di)]) {
    Ticker& t = tickers_[idx];
    buf.cur_ticker = idx;
    t.fn(now_);
    t.next_fire += t.period;
    ++buf.fired;
  }
  t_defer_ = nullptr;
}

void Engine::fire_tickers_parallel() {
  // Classify due tickers by domain; each list is ascending in registration
  // index because tickers_ is scanned in order.
  for (auto& v : due_) v.clear();
  for (std::uint32_t i = 0; i < tickers_.size(); ++i) {
    if (tickers_[i].next_fire == now_) {
      due_[static_cast<std::size_t>(tickers_[i].domain)].push_back(i);
    }
  }
  constexpr auto kMain = static_cast<std::size_t>(TickDomain::Main);
  int pdomains = 0;
  for (std::size_t d = 1; d < due_.size(); ++d) {
    pdomains += due_[d].empty() ? 0 : 1;
  }
  if (pdomains < 2) {
    // Zero or one parallel domain due: serial firing in registration order
    // is already the exact answer and skips the barrier entirely. With the
    // standard dividers this covers every cycle not ≡ 0 or 1 (mod 4).
    fire_due_serial();
    return;
  }
  // Ordering contract: the parallel phase runs before the Main phase, so a
  // due Main ticker registered *before* a due parallel ticker would fire in
  // the wrong relative order. Registration in HeteroCmp guarantees this
  // never happens (the governor's phase never coincides with the GPU's);
  // check it every parallel cycle so a future re-wiring fails loudly.
  if (!due_[kMain].empty()) {
    std::uint32_t max_par = 0;
    for (std::size_t d = 1; d < due_.size(); ++d) {
      if (!due_[d].empty()) max_par = std::max(max_par, due_[d].back());
    }
    GPUQOS_CHECK(due_[kMain].front() > max_par,
                 "parallel tick ordering contract violated at cycle "
                     << now_ << ": main-domain ticker #" << due_[kMain].front()
                     << " registered before parallel ticker #" << max_par
                     << " and both are due");
  }
  ensure_workers();
  for (std::size_t d = 1; d < bufs_.size(); ++d) {
    bufs_[d].ops.clear();
    bufs_[d].fired = 0;
  }
  const std::uint64_t gen = ++workers_->gen_;
  std::array<bool, 2> engaged{false, false};
  for (std::size_t w = 0; w < workers_->slots_.size(); ++w) {
    TickWorkers::Slot& s = workers_->slots_[w];
    for (int i = 0; i < s.ndomains; ++i) {
      const auto d = static_cast<std::size_t>(
          s.domains[static_cast<std::size_t>(i)]);
      if (!due_[d].empty()) {
        engaged[w] = true;
        break;
      }
    }
    if (engaged[w]) workers_->wake(s, gen);
  }
  // The main thread takes the Cpu domain (the widest: one ticker per core)
  // while the workers run Gpu/Dram.
  if (!due_[static_cast<std::size_t>(TickDomain::Cpu)].empty()) {
    run_domain(TickDomain::Cpu);
  }
  for (std::size_t w = 0; w < workers_->slots_.size(); ++w) {
    if (!engaged[w]) continue;
    TickWorkers::Slot& s = workers_->slots_[w];
    // Bounded spin, then yield: on an oversubscribed host an unbounded
    // pause-spin would hold the core the worker needs to finish.
    int spins = 0;
    while (s.done.load(std::memory_order_acquire) != gen) {
      if (++spins < workers_->spin_budget_) {
        cpu_pause();
      } else {
        std::this_thread::yield();
      }
    }
  }
  // Barrier reached. Replay deferred cross-domain ops merged by originating
  // ticker index: each buffer is ascending and a ticker belongs to exactly
  // one domain, so the k-way merge reproduces the serial interleaving (and
  // the serial event seq numbering — schedule() runs direct here).
  std::array<std::size_t, kNumTickDomains> cur{};
  for (;;) {
    int best = -1;
    std::uint32_t best_idx = 0;
    for (std::size_t d = 1; d < bufs_.size(); ++d) {
      DeferBuf& b = bufs_[d];
      if (cur[d] < b.ops.size()) {
        const std::uint32_t ti = b.ops[cur[d]].ticker;
        if (best < 0 || ti < best_idx) {
          best = static_cast<int>(d);
          best_idx = ti;
        }
      }
    }
    if (best < 0) break;
    auto& slot = cur[static_cast<std::size_t>(best)];
    DeferredOp& op = bufs_[static_cast<std::size_t>(best)].ops[slot++];
    if (op.is_schedule) {
      schedule(op.delay, std::move(op.act));
    } else {
      op.host();
    }
  }
  std::uint64_t fired = 0;
  for (std::size_t d = 1; d < bufs_.size(); ++d) fired += bufs_[d].fired;
  // Main-domain tickers observe the fully merged cycle state, exactly as
  // they would at their serial position (the ordering contract above).
  for (const std::uint32_t idx : due_[kMain]) {
    Ticker& t = tickers_[idx];
    t.fn(now_);
    ++fired;
    t.next_fire += t.period;
  }
  ticks_run_ += fired;
  Cycle next_min = kNoCycle;
  for (const auto& t : tickers_) next_min = std::min(next_min, t.next_fire);
  min_next_fire_ = next_min;
}

void Engine::step_cycle() {
  refill_wheel();
  drain_bucket();
  if (min_next_fire_ == now_) fire_tickers();
  // Zero-delay events scheduled by tickers still belong to this cycle.
  drain_bucket();
  ++now_;
}

void Engine::step() { step_cycle(); }

Cycle Engine::next_event_cycle() const {
  if (near_count_ > 0) {
    for (Cycle k = 0; k < kWheelSize; ++k) {
      if (!buckets_[(now_ + k) & kWheelMask].empty()) return now_ + k;
    }
  }
  return far_.empty() ? kNoCycle : far_.front().when;
}

Cycle Engine::run_until(const std::function<bool()>& pred, Cycle max_cycles) {
  const Cycle start = now_;
  const Cycle end = start + max_cycles;
  while (now_ < end) {
    if (pred()) break;
    refill_wheel();
    if (buckets_[now_ & kWheelMask].empty() && min_next_fire_ > now_) {
      // Idle cycle: nothing can run until the next event or ticker. Jump
      // there (capped at `end`) without burning a loop iteration per cycle.
      const Cycle target =
          std::min({end, min_next_fire_, next_event_cycle()});
      now_ = target;
      continue;
    }
    step_cycle();
  }
  return now_ - start;
}

void Engine::run_for(Cycle cycles) {
  const Cycle end = now_ + cycles;
  while (now_ < end) {
    refill_wheel();
    if (buckets_[now_ & kWheelMask].empty() && min_next_fire_ > now_) {
      now_ = std::min({end, min_next_fire_, next_event_cycle()});
      continue;
    }
    step_cycle();
  }
}

std::uint64_t Engine::digest() const {
  Fnv1a64 h;
  h.mix(now_);
  h.mix(seq_);
  h.mix(near_count_);
  h.mix(far_.size());
  // Ticker count is deliberately NOT folded: audit/digest/telemetry tickers
  // vary with instrumentation flags, and a digest must compare equal across
  // a --check run and a plain --digest-out run of the same simulation.
  h.mix(next_event_cycle());
  // Wheel occupancy: (slot, size) for each populated bucket, walked in cycle
  // order from now_ so the fold is a function of queue *state*, not of where
  // the wheel happens to be positioned modulo 256.
  for (Cycle k = 0; k < kWheelSize; ++k) {
    const auto& b = buckets_[(now_ + k) & kWheelMask];
    if (!b.empty()) {
      h.mix(k);
      h.mix(b.size());
      h.mix(b.front().seq);
    }
  }
  return h.value();
}

void Engine::save(ckpt::StateWriter& w) const {
  if (pending_events() != 0) {
    throw ckpt::CkptError(
        "engine save() with events still pending: the simulation was not "
        "drained before checkpointing");
  }
  w.u64(now_);
  w.u64(seq_);
  w.u64(events_run_);
  w.u64(ticks_run_);
  w.u64(tickers_.size());
  for (const auto& t : tickers_) {
    w.u64(t.period);
    w.u64(t.next_fire);
  }
}

void Engine::load(ckpt::StateReader& r) {
  if (pending_events() != 0) {
    r.fail("engine load() target already has scheduled events");
  }
  now_ = r.u64();
  seq_ = r.u64();
  events_run_ = r.u64();
  ticks_run_ = r.u64();
  const std::uint64_t count = r.u64();
  if (count != tickers_.size()) {
    r.fail("ticker count mismatch (snapshot has " + std::to_string(count) +
           ", this run registered " + std::to_string(tickers_.size()) +
           "); a resumed run must attach the same instrumentation "
           "(telemetry/check intervals, policy, mix) as the run that "
           "produced the snapshot");
  }
  min_next_fire_ = kNoCycle;
  for (auto& t : tickers_) {
    const Cycle period = r.u64();
    const Cycle next_fire = r.u64();
    if (period != t.period) {
      r.fail("ticker period mismatch (snapshot has " + std::to_string(period) +
             ", this run registered " + std::to_string(t.period) +
             "); tickers must be registered in the same order with the same "
             "periods as the run that produced the snapshot");
    }
    t.next_fire = next_fire;
    min_next_fire_ = std::min(min_next_fire_, next_fire);
  }
}

}  // namespace gpuqos
