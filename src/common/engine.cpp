#include "common/engine.hpp"

#include <utility>

#include "check/digest.hpp"

namespace gpuqos {

void Engine::schedule(Cycle delay, Action fn) {
  events_.push(Event{now_ + delay, seq_++, std::move(fn)});
}

void Engine::add_ticker(Cycle period, Cycle phase, TickFn fn) {
  tickers_.push_back(Ticker{period, phase % period, std::move(fn)});
}

void Engine::run_due_events() {
  while (!events_.empty() && events_.top().when <= now_) {
    // Copy out before pop: the action may schedule new events.
    Action fn = std::move(const_cast<Event&>(events_.top()).fn);
    events_.pop();
    fn();
  }
}

void Engine::step() {
  run_due_events();
  for (auto& t : tickers_) {
    if (now_ % t.period == t.phase) t.fn(now_);
  }
  // Zero-delay events scheduled by tickers still belong to this cycle.
  run_due_events();
  ++now_;
}

Cycle Engine::run_until(const std::function<bool()>& pred, Cycle max_cycles) {
  const Cycle start = now_;
  while (now_ - start < max_cycles) {
    if (pred()) break;
    step();
  }
  return now_ - start;
}

void Engine::run_for(Cycle cycles) {
  const Cycle end = now_ + cycles;
  while (now_ < end) step();
}

std::uint64_t Engine::digest() const {
  Fnv1a64 h;
  h.mix(now_);
  h.mix(seq_);
  h.mix(events_.size());
  h.mix(tickers_.size());
  return h.value();
}

}  // namespace gpuqos
