#include "common/engine.hpp"

#include <algorithm>
#include <utility>

#include "check/digest.hpp"
#include "ckpt/state_io.hpp"

namespace gpuqos {

void Engine::schedule(Cycle delay, Action fn) {
  const Cycle when = now_ + delay;
  if (delay < kWheelSize) {
    // Direct insert: the bucket for `when` can only hold events of `when`
    // (it was drained when the wheel last passed it). Appending preserves
    // global (when, seq) order only if every far event for `when` (all of
    // which carry smaller seqs) is already in the bucket — normally true
    // because the run loop refills each cycle, but now_ can also advance by
    // an idle skip-ahead, so top up the wheel if the far heap intrudes into
    // the horizon. One compare in the common case.
    if (!far_.empty() && far_.front().when <= now_ + kWheelMask) {
      refill_wheel();
    }
    buckets_[when & kWheelMask].push_back(EventNode{seq_++, std::move(fn)});
    ++near_count_;
  } else {
    far_.push_back(FarEvent{when, seq_++, std::move(fn)});
    std::push_heap(far_.begin(), far_.end(), std::greater<>{});
  }
}

void Engine::add_ticker(Cycle period, Cycle phase, TickFn fn) {
  const Cycle ph = phase % period;
  const Cycle rem = now_ % period;
  const Cycle first = now_ + (ph >= rem ? ph - rem : period - (rem - ph));
  tickers_.push_back(Ticker{period, first, std::move(fn)});
  min_next_fire_ = std::min(min_next_fire_, first);
}

void Engine::refill_wheel() {
  const Cycle horizon = now_ + kWheelMask;  // wheel now covers [now_, horizon]
  while (!far_.empty() && far_.front().when <= horizon) {
    std::pop_heap(far_.begin(), far_.end(), std::greater<>{});
    FarEvent ev = std::move(far_.back());
    far_.pop_back();
    buckets_[ev.when & kWheelMask].push_back(
        EventNode{ev.seq, std::move(ev.fn)});
    ++near_count_;
  }
}

void Engine::drain_bucket() {
  auto& bucket = buckets_[now_ & kWheelMask];
  // Index loop, size re-read each iteration: an action may schedule a
  // zero-delay event, which appends to this same bucket and (matching the
  // original engine's "run everything due" loop) still runs this cycle.
  for (std::size_t i = 0; i < bucket.size(); ++i) {
    // Move out before calling: the action may grow the bucket (reallocating)
    // while this node is live.
    Action fn = std::move(bucket[i].fn);
    fn();
    ++events_run_;
  }
  near_count_ -= bucket.size();
  bucket.clear();  // keeps capacity — steady state does no allocation
}

void Engine::fire_tickers() {
  Cycle next_min = kNoCycle;
  for (auto& t : tickers_) {
    if (t.next_fire == now_) {
      t.fn(now_);
      ++ticks_run_;
      t.next_fire += t.period;
    }
    next_min = std::min(next_min, t.next_fire);
  }
  min_next_fire_ = next_min;
}

void Engine::step_cycle() {
  refill_wheel();
  drain_bucket();
  if (min_next_fire_ == now_) fire_tickers();
  // Zero-delay events scheduled by tickers still belong to this cycle.
  drain_bucket();
  ++now_;
}

void Engine::step() { step_cycle(); }

Cycle Engine::next_event_cycle() const {
  if (near_count_ > 0) {
    for (Cycle k = 0; k < kWheelSize; ++k) {
      if (!buckets_[(now_ + k) & kWheelMask].empty()) return now_ + k;
    }
  }
  return far_.empty() ? kNoCycle : far_.front().when;
}

Cycle Engine::run_until(const std::function<bool()>& pred, Cycle max_cycles) {
  const Cycle start = now_;
  const Cycle end = start + max_cycles;
  while (now_ < end) {
    if (pred()) break;
    refill_wheel();
    if (buckets_[now_ & kWheelMask].empty() && min_next_fire_ > now_) {
      // Idle cycle: nothing can run until the next event or ticker. Jump
      // there (capped at `end`) without burning a loop iteration per cycle.
      const Cycle target =
          std::min({end, min_next_fire_, next_event_cycle()});
      now_ = target;
      continue;
    }
    step_cycle();
  }
  return now_ - start;
}

void Engine::run_for(Cycle cycles) {
  const Cycle end = now_ + cycles;
  while (now_ < end) {
    refill_wheel();
    if (buckets_[now_ & kWheelMask].empty() && min_next_fire_ > now_) {
      now_ = std::min({end, min_next_fire_, next_event_cycle()});
      continue;
    }
    step_cycle();
  }
}

std::uint64_t Engine::digest() const {
  Fnv1a64 h;
  h.mix(now_);
  h.mix(seq_);
  h.mix(near_count_);
  h.mix(far_.size());
  // Ticker count is deliberately NOT folded: audit/digest/telemetry tickers
  // vary with instrumentation flags, and a digest must compare equal across
  // a --check run and a plain --digest-out run of the same simulation.
  h.mix(next_event_cycle());
  // Wheel occupancy: (slot, size) for each populated bucket, walked in cycle
  // order from now_ so the fold is a function of queue *state*, not of where
  // the wheel happens to be positioned modulo 256.
  for (Cycle k = 0; k < kWheelSize; ++k) {
    const auto& b = buckets_[(now_ + k) & kWheelMask];
    if (!b.empty()) {
      h.mix(k);
      h.mix(b.size());
      h.mix(b.front().seq);
    }
  }
  return h.value();
}

void Engine::save(ckpt::StateWriter& w) const {
  if (pending_events() != 0) {
    throw ckpt::CkptError(
        "engine save() with events still pending: the simulation was not "
        "drained before checkpointing");
  }
  w.u64(now_);
  w.u64(seq_);
  w.u64(events_run_);
  w.u64(ticks_run_);
  w.u64(tickers_.size());
  for (const auto& t : tickers_) {
    w.u64(t.period);
    w.u64(t.next_fire);
  }
}

void Engine::load(ckpt::StateReader& r) {
  if (pending_events() != 0) {
    r.fail("engine load() target already has scheduled events");
  }
  now_ = r.u64();
  seq_ = r.u64();
  events_run_ = r.u64();
  ticks_run_ = r.u64();
  const std::uint64_t count = r.u64();
  if (count != tickers_.size()) {
    r.fail("ticker count mismatch (snapshot has " + std::to_string(count) +
           ", this run registered " + std::to_string(tickers_.size()) +
           "); a resumed run must attach the same instrumentation "
           "(telemetry/check intervals, policy, mix) as the run that "
           "produced the snapshot");
  }
  min_next_fire_ = kNoCycle;
  for (auto& t : tickers_) {
    const Cycle period = r.u64();
    const Cycle next_fire = r.u64();
    if (period != t.period) {
      r.fail("ticker period mismatch (snapshot has " + std::to_string(period) +
             ", this run registered " + std::to_string(t.period) +
             "); tickers must be registered in the same order with the same "
             "periods as the run that produced the snapshot");
    }
    t.next_fire = next_fire;
    min_next_fire_ = std::min(min_next_fire_, next_fire);
  }
}

}  // namespace gpuqos
