// Minimal JSON output helpers shared by the stats serializer and the
// observability writers (src/obs). Emission only — the simulator never needs
// to parse JSON.
#pragma once

#include <string>

namespace gpuqos {

/// Escape a string for embedding inside a JSON string literal (no quotes
/// added): backslash, quote, and control characters.
[[nodiscard]] std::string json_escape(const std::string& s);

/// Render a double as a JSON-safe literal: finite values with up to 12
/// significant digits, non-finite values as 0 (JSON has no NaN/Inf).
[[nodiscard]] std::string json_double(double v);

}  // namespace gpuqos
