#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace gpuqos {
namespace {

// NOLINT-gpuqos(thread-purity): audited — read from the environment once at
// startup and only read afterwards; identical for every pooled worker.
std::atomic<LogLevel> g_level = [] {
  const char* env = std::getenv("GPUQOS_LOG");
  if (env == nullptr) return LogLevel::Off;
  if (std::strcmp(env, "error") == 0) return LogLevel::Error;
  if (std::strcmp(env, "warn") == 0) return LogLevel::Warn;
  if (std::strcmp(env, "info") == 0) return LogLevel::Info;
  if (std::strcmp(env, "debug") == 0) return LogLevel::Debug;
  return LogLevel::Off;
}();

// Per-thread: each sweep-pool worker runs its own simulation and registers
// that engine's clock/sink for messages logged on its thread (see
// run_many() in src/sim/sweep.hpp).
std::function<Cycle()>& cycle_source() {
  // NOLINT-gpuqos(thread-purity): audited — thread_local by design; each
  // pooled worker binds its own simulation's clock, so workers never share.
  thread_local std::function<Cycle()> source;
  return source;
}

LogSink& log_sink() {
  // NOLINT-gpuqos(thread-purity): audited — thread_local by design, one
  // sink per worker thread (see cycle_source above).
  thread_local LogSink sink;
  return sink;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Error: return "ERROR";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Info: return "INFO";
    case LogLevel::Debug: return "DEBUG";
    default: return "?";
  }
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_cycle_source(std::function<Cycle()> source) {
  cycle_source() = std::move(source);
}

void set_log_sink(LogSink sink) { log_sink() = std::move(sink); }

void log_message(LogLevel level, const std::string& msg) {
  const Cycle cycle = cycle_source() ? cycle_source()() : 0;
  if (log_sink()) {
    log_sink()(level, cycle, msg);
    return;
  }
  std::fprintf(stderr, "[gpuqos %s @%llu] %s\n", level_name(level),
               static_cast<unsigned long long>(cycle), msg.c_str());
}

}  // namespace gpuqos
