#include "common/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace gpuqos {
namespace {

LogLevel g_level = [] {
  const char* env = std::getenv("GPUQOS_LOG");
  if (env == nullptr) return LogLevel::Off;
  if (std::strcmp(env, "error") == 0) return LogLevel::Error;
  if (std::strcmp(env, "warn") == 0) return LogLevel::Warn;
  if (std::strcmp(env, "info") == 0) return LogLevel::Info;
  if (std::strcmp(env, "debug") == 0) return LogLevel::Debug;
  return LogLevel::Off;
}();

std::function<Cycle()>& cycle_source() {
  static std::function<Cycle()> source;
  return source;
}

LogSink& log_sink() {
  static LogSink sink;
  return sink;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Error: return "ERROR";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Info: return "INFO";
    case LogLevel::Debug: return "DEBUG";
    default: return "?";
  }
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void set_log_cycle_source(std::function<Cycle()> source) {
  cycle_source() = std::move(source);
}

void set_log_sink(LogSink sink) { log_sink() = std::move(sink); }

void log_message(LogLevel level, const std::string& msg) {
  const Cycle cycle = cycle_source() ? cycle_source()() : 0;
  if (log_sink()) {
    log_sink()(level, cycle, msg);
    return;
  }
  std::fprintf(stderr, "[gpuqos %s @%llu] %s\n", level_name(level),
               static_cast<unsigned long long>(cycle), msg.c_str());
}

}  // namespace gpuqos
