// Reusable command-line option table shared by the drivers (gpuqos_run,
// tools/digest_diff). Each option is registered once with its name, value
// parser, and help text; the table then drives both argv parsing and the
// generated --help output, so the two cannot drift apart.
//
// Numeric options are validated strictly: the whole token must be a base-10
// number in range. A bare std::strtoull would silently turn
// `--sample-interval abc` into 0; here it is a usage error (exit 2).
#pragma once

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace gpuqos::cli {

/// Strict unsigned parse: accepts exactly one non-negative base-10 integer
/// that fits in 64 bits; rejects empty strings, signs, trailing garbage, and
/// out-of-range values.
[[nodiscard]] inline bool parse_u64(const char* s, std::uint64_t& out) {
  if (s == nullptr || *s == '\0' || *s == '-' || *s == '+') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno == ERANGE || end == s || *end != '\0') return false;
  out = v;
  return true;
}

/// Strict floating-point parse: the whole token must be a finite decimal
/// number (strtod syntax, no trailing garbage).
[[nodiscard]] inline bool parse_f64(const char* s, double& out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (errno == ERANGE || end == s || *end != '\0') return false;
  out = v;
  return true;
}

/// Option table: register options, then parse(). Anything in argv that is not
/// a registered option name becomes a positional argument; an unregistered
/// token starting with "--" is a usage error. --help/-h prints the generated
/// help and exits 0; any parse error prints a message plus the help text and
/// exits 2.
class OptionSet {
 public:
  OptionSet(std::string prog_synopsis, std::string epilog = {})
      : synopsis_(std::move(prog_synopsis)), epilog_(std::move(epilog)) {}

  /// Boolean switch: presence sets *out.
  void flag(std::string name, std::string help, bool* out) {
    add(std::move(name), "", std::move(help),
        [out](const char*) {
          *out = true;
          return true;
        },
        /*takes_value=*/false);
  }

  /// String-valued option (stored verbatim).
  void str(std::string name, std::string arg, std::string help,
           std::string* out) {
    add(std::move(name), std::move(arg), std::move(help),
        [out](const char* v) {
          *out = v;
          return true;
        },
        /*takes_value=*/true);
  }

  /// Unsigned option with strict validation (see parse_u64).
  void u64(std::string name, std::string arg, std::string help,
           std::uint64_t* out) {
    add(std::move(name), std::move(arg), std::move(help),
        [out](const char* v) { return parse_u64(v, *out); },
        /*takes_value=*/true);
  }

  /// Unsigned option narrowed to `unsigned`; rejects values that don't fit.
  void u32(std::string name, std::string arg, std::string help,
           unsigned* out) {
    add(std::move(name), std::move(arg), std::move(help),
        [out](const char* v) {
          std::uint64_t wide = 0;
          if (!parse_u64(v, wide) || wide > 0xFFFF'FFFFull) return false;
          *out = static_cast<unsigned>(wide);
          return true;
        },
        /*takes_value=*/true);
  }

  /// Floating-point option with strict validation (see parse_f64).
  void f64(std::string name, std::string arg, std::string help, double* out) {
    add(std::move(name), std::move(arg), std::move(help),
        [out](const char* v) { return parse_f64(v, *out); },
        /*takes_value=*/true);
  }

  /// Escape hatch: option with a caller-supplied parser. Return false from
  /// `apply` to reject the value as a usage error.
  void custom(std::string name, std::string arg, std::string help,
              std::function<bool(const char*)> apply) {
    add(std::move(name), std::move(arg), std::move(help), std::move(apply),
        /*takes_value=*/true);
  }

  /// Parse argv; fills `positional` with non-option tokens in order.
  void parse(int argc, char** argv,
             std::vector<const char*>& positional) const {
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
        print_help(stdout, argv[0]);
        std::exit(0);
      }
      const Opt* opt = find(a);
      if (opt != nullptr) {
        const char* value = nullptr;
        if (opt->takes_value) {
          if (i + 1 >= argc) {
            std::fprintf(stderr, "%s: %s requires a value %s\n", argv[0],
                         opt->name.c_str(), opt->arg.c_str());
            print_help(stderr, argv[0]);
            std::exit(2);
          }
          value = argv[++i];
        }
        if (!opt->apply(value)) {
          std::fprintf(stderr, "%s: invalid value '%s' for %s (expected %s)\n",
                       argv[0], value == nullptr ? "" : value,
                       opt->name.c_str(),
                       opt->arg.empty() ? "nothing" : opt->arg.c_str());
          std::exit(2);
        }
      } else if (a[0] == '-' && a[1] == '-' && a[2] != '\0') {
        std::fprintf(stderr, "%s: unknown flag: %s\n", argv[0], a);
        print_help(stderr, argv[0]);
        std::exit(2);
      } else {
        positional.push_back(a);
      }
    }
  }

  /// Generated help: synopsis, one aligned row per option, optional epilog.
  void print_help(std::FILE* f, const char* prog) const {
    std::fprintf(f, "usage: %s %s\n", prog, synopsis_.c_str());
    std::size_t width = 0;
    for (const Opt& o : opts_) {
      const std::size_t w = o.name.size() + (o.arg.empty() ? 0 : 1 + o.arg.size());
      if (w > width) width = w;
    }
    for (const Opt& o : opts_) {
      std::string head = o.name;
      if (!o.arg.empty()) {
        head += ' ';
        head += o.arg;
      }
      // Column width for %-*s; capped so a pathological option name cannot
      // push the int conversion anywhere near wrapping.
      std::fprintf(f, "  %-*s  %s\n",
                   static_cast<int>(std::min<std::size_t>(width, 64)),
                   head.c_str(), o.help.c_str());
    }
    if (!epilog_.empty()) std::fprintf(f, "%s\n", epilog_.c_str());
  }

 private:
  struct Opt {
    std::string name;
    std::string arg;   // metavar shown in help; empty for switches
    std::string help;
    std::function<bool(const char*)> apply;
    bool takes_value;
  };

  void add(std::string name, std::string arg, std::string help,
           std::function<bool(const char*)> apply, bool takes_value) {
    opts_.push_back(Opt{std::move(name), std::move(arg), std::move(help),
                        std::move(apply), takes_value});
  }

  [[nodiscard]] const Opt* find(const char* name) const {
    for (const Opt& o : opts_) {
      if (o.name == name) return &o;
    }
    return nullptr;
  }

  std::string synopsis_;
  std::string epilog_;
  std::vector<Opt> opts_;
};

}  // namespace gpuqos::cli
