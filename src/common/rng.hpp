// Deterministic pseudo-random number generation (xoshiro256**).
//
// Every stochastic component owns its own stream seeded from the run seed and
// a component tag, so simulations are reproducible regardless of component
// evaluation order.
#pragma once

#include <cstdint>

#include "check/digest.hpp"
#include "ckpt/state_io.hpp"

namespace gpuqos {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Derive an independent stream for a named sub-component.
  [[nodiscard]] Rng fork(std::uint64_t tag) const;

  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Geometrically distributed gap with mean `mean` (>= 1 for mean >= 1).
  std::uint64_t geometric(double mean);

  /// FNV-1a fold of the full generator state. Two runs that consumed the
  /// same number of draws from the same seed digest identically.
  [[nodiscard]] std::uint64_t digest() const {
    Fnv1a64 h;
    for (std::uint64_t w : s_) h.mix(w);
    return h.value();
  }

  /// Serialize the generator state. The geometric() memo is derived from the
  /// caller's `mean` argument and is rebuilt on first use, so only s_ is
  /// persisted (bit-identical draws either way).
  void save(ckpt::StateWriter& w) const {
    for (std::uint64_t word : s_) w.u64(word);
  }
  void load(ckpt::StateReader& r) {
    for (std::uint64_t& word : s_) word = r.u64();
  }

 private:
  std::uint64_t s_[4];
  // geometric() memo (derived from the last `mean`, not generator state —
  // deliberately excluded from digest()).
  double cached_mean_ = 0.0;   // ckpt:skip digest:skip: memo, see above
  double cached_log1p_ = 0.0;  // ckpt:skip digest:skip: memo, see above
};

}  // namespace gpuqos
