// Shared QoS state published by the governor (src/qos) and consumed by the
// DRAM schedulers and the HeLM bypass policy (src/sched). Lives in common so
// neither layer depends on the other.
#pragma once

#include "common/types.hpp"

namespace gpuqos {

struct QosSignals {
  // Frame-rate estimation (valid when `estimating` is true).
  bool estimating = false;      // FRPU is in the prediction phase
  double predicted_fps = 0.0;   // effective (paper-scale) frames per second
  double target_fps = 40.0;
  bool gpu_meets_target = false;  // predicted cycles/frame <= target

  // DRAM scheduling inputs.
  bool cpu_prio_boost = false;  // ThrotCPUprio: CPU first in the scheduler
  double frame_progress = 0.0;  // fraction of the current frame rendered
  bool gpu_urgent = false;      // DynPrio: inside the last 10% of frame time

  // HeLM input (updated from the pipeline each governor tick).
  double gpu_latency_tolerance = 1.0;
};

}  // namespace gpuqos
