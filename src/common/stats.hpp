// Named statistics registry.
//
// Components register counters/scalars under hierarchical names
// ("llc.miss.gpu", "dram.ch0.read_bytes"). The registry supports snapshots so
// experiment runners can subtract warm-up activity from measured activity.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gpuqos {

namespace ckpt {
class StateWriter;
class StateReader;
}  // namespace ckpt

class StatRegistry {
 public:
  /// Increment a counter, creating it on first use.
  void add(const std::string& name, std::uint64_t delta = 1);

  /// Stable pointer to a counter for hot paths (std::map nodes do not move).
  /// Callers cache the pointer once and bump it directly each cycle.
  [[nodiscard]] std::uint64_t* counter_ptr(const std::string& name);

  /// Set a scalar (gauge) value.
  void set(const std::string& name, double value);

  [[nodiscard]] std::uint64_t counter(const std::string& name) const;
  [[nodiscard]] double scalar(const std::string& name) const;
  [[nodiscard]] bool has_counter(const std::string& name) const;

  /// Copy of all counters (used for warm-up snapshots and reporting).
  [[nodiscard]] std::map<std::string, std::uint64_t> counters() const;
  [[nodiscard]] std::map<std::string, double> scalars() const;

  /// Counter value minus the value it had in `baseline` (missing = 0).
  [[nodiscard]] std::uint64_t since(
      const std::string& name,
      const std::map<std::string, std::uint64_t>& baseline) const;

  void clear();

  /// Render "name value" lines, one per stat, sorted by name.
  [[nodiscard]] std::string report(const std::string& prefix = "") const;

  /// JSON export: {"counters":{...},"scalars":{...}} with keys in stable
  /// (lexicographic) order. Shared by the interval sampler and end-of-run
  /// reporting so both emit identical serializations.
  [[nodiscard]] std::string to_json() const;

  /// FNV-1a digest of every counter and scalar (stable map order). The
  /// broadest determinism probe: almost any behavioural divergence moves a
  /// counter within one sampling interval.
  [[nodiscard]] std::uint64_t digest() const;

  /// Serialize every counter and scalar. load() writes values into existing
  /// map nodes (or creates them), so counter_ptr pointers cached by modules
  /// before the load stay valid and observe the restored values.
  void save(ckpt::StateWriter& w) const;
  void load(ckpt::StateReader& r);

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> scalars_;
};

/// Geometric mean of strictly positive values; returns 0 for empty input.
[[nodiscard]] double geomean(const std::vector<double>& values);

}  // namespace gpuqos
