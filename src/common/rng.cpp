#include "common/rng.hpp"

#include <cmath>

namespace gpuqos {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

Rng Rng::fork(std::uint64_t tag) const {
  // Mix the current state with the tag through splitmix to decorrelate.
  std::uint64_t x = s_[0] ^ rotl(s_[2], 17) ^ (tag * 0xD6E8FEB86659FD93ull);
  return Rng(splitmix64(x));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire's multiply-shift rejection-free variant is overkill here; a
  // simple 128-bit multiply keeps bias below 2^-64 per draw.
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::uint64_t Rng::geometric(double mean) {
  if (mean <= 1.0) return 1;
  // log1p(-1/mean) is a pure function of `mean`, and callers draw millions of
  // gaps from a handful of fixed means (one per traffic generator), so cache
  // the denominator per distinct mean. Bit-identical to recomputing it.
  if (mean != cached_mean_) {
    cached_mean_ = mean;
    cached_log1p_ = std::log1p(-1.0 / mean);
  }
  const double u = next_double();
  const double g = std::log1p(-u) / cached_log1p_;
  return static_cast<std::uint64_t>(g) + 1;
}

}  // namespace gpuqos
