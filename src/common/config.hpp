// Simulation configuration mirroring Table I of the paper, plus the
// paper-scaled preset used for tests and benches (see DESIGN.md §2).
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "common/units.hpp"

namespace gpuqos {

struct CacheConfig {
  std::uint64_t size_bytes = 32 * KiB;
  unsigned ways = 8;
  unsigned block_bytes = 64;
  unsigned latency = 2;  // lookup latency in owner-clock cycles
  bool srrip = false;    // false = LRU

  [[nodiscard]] std::uint64_t sets() const {
    return size_bytes / (static_cast<std::uint64_t>(ways) * block_bytes);
  }
};

struct CpuCoreConfig {
  CacheConfig l1d{32 * KiB, 8, 64, 2, false};
  CacheConfig l1i{32 * KiB, 8, 64, 2, false};
  CacheConfig l2{256 * KiB, 8, 64, 3, false};
  unsigned commit_width = 4;
  unsigned rob_size = 192;
  unsigned l1_mshrs = 8;
  unsigned l2_mshrs = 16;
};

struct LlcConfig {
  std::uint64_t size_bytes = 16 * MiB;
  unsigned ways = 16;
  unsigned block_bytes = 64;
  unsigned latency = 10;      // lookup latency (base cycles)
  unsigned ports = 2;         // lookups accepted per base cycle
  unsigned mshrs = 64;
  // Inclusive for CPU blocks (evictions back-invalidate the owning core's
  // private hierarchy); non-inclusive for GPU blocks (Table I).
};

/// DDR3-2133-like timing in memory-bus command-clock cycles (Table I:
/// 14-14-14, BL=8, open page, 1 rank/channel, 8 banks/rank, 1 KB row/device,
/// x8 devices => 8 KB row per bank).
struct DramTiming {
  unsigned tCL = 14;
  unsigned tRCD = 14;
  unsigned tRP = 14;
  unsigned tRAS = 36;
  unsigned tWR = 16;   // write recovery
  unsigned tBurst = 4; // BL=8 on a DDR bus = 4 command-clock cycles
  unsigned tCCD = 4;   // column-to-column
  unsigned tRTP = 8;   // read to precharge
  unsigned tWTR = 8;   // write to read turnaround
};

struct DramConfig {
  unsigned channels = 2;
  unsigned banks_per_channel = 8;
  std::uint64_t row_bytes = 8 * KiB;  // per bank
  DramTiming timing{};
  unsigned read_queue_depth = 64;
  unsigned write_queue_depth = 64;
  unsigned write_drain_high = 48;  // start draining writes
  unsigned write_drain_low = 16;   // stop draining writes
};

struct RingConfig {
  // Stops: cpu0..cpuN-1, gpu, llc, mc0, mc1 (built by HeteroCmp).
  unsigned hop_latency = 1;  // base cycles per hop (Table I: single-cycle)
};

struct GpuConfig {
  // Shader/throughput model (scaled from Table I's 64 cores / 128 GTexel/s /
  // 64 GPixel/s machine; the ratios are preserved).
  unsigned shader_cores = 64;
  unsigned max_fragments_in_flight = 192;  // latency-tolerance contexts
  unsigned rop_units = 8;                  // fragments retired per GPU cycle cap
  unsigned raster_rate = 8;                // fragments rasterized per GPU cycle
  unsigned vertex_rate = 4;                // vertices processed per GPU cycle
  unsigned shader_cycles_per_fragment = 1; // ALU cost folded into issue rate

  CacheConfig tex_l0{2 * KiB, 2, 64, 1, false};     // per-sampler, modeled shared
  CacheConfig tex_l1{64 * KiB, 16, 64, 2, false};
  CacheConfig tex_l2{384 * KiB, 48, 64, 4, false};
  CacheConfig depth_l1{2 * KiB, 2, 64, 1, false};   // paper: 256B blocks; we
  CacheConfig depth_l2{32 * KiB, 32, 64, 2, false}; // keep 64B for LLC parity
  CacheConfig color_l1{2 * KiB, 2, 64, 1, false};
  CacheConfig color_l2{32 * KiB, 32, 64, 2, false};
  CacheConfig vertex_cache{16 * KiB, 16, 64, 1, false};
  CacheConfig hiz_cache{16 * KiB, 16, 64, 1, false};
  CacheConfig shader_icache{32 * KiB, 8, 64, 1, false};

  unsigned mem_queue_depth = 128;  // GPU memory-interface queue (back-pressure)
  unsigned llc_issue_width = 1;    // GMI requests sent to the LLC per issue slot
  unsigned llc_issue_interval = 1; // GPU cycles between GMI issue slots
};

/// The paper's QoS parameters (Section III).
struct QosConfig {
  double target_fps = 40.0;
  unsigned rtp_table_entries = 64;
  double relearn_threshold = 0.25;  // learned-vs-observed divergence to relearn
  unsigned control_interval_gpu_cycles = 8192;  // ATU controller invocation
  unsigned ng_init = 1;  // accesses allowed per throttle window
  unsigned wg_step = 2;  // WG increment per controller invocation (Fig. 6)

  // Control-loop design choices (DESIGN.md §4a); defaults are required for
  // convergence onto CT, the ablation bench flips them to the literal
  // reading of the paper.
  bool relearn_on_cycles = true;       // cycle divergence triggers relearn
  bool hold_throttle_in_learning = true;  // keep WG during learning phases
};

struct SimConfig {
  unsigned cpu_cores = 4;
  CpuCoreConfig core{};
  LlcConfig llc{};
  DramConfig dram{};
  RingConfig ring{};
  GpuConfig gpu{};
  QosConfig qos{};
  std::uint64_t seed = 42;

  /// Ratio by which GPU frame area was scaled down relative to the paper's
  /// resolutions; reported FPS = raw frame rate / fps_scale. 1.0 for the
  /// full-size preset. Set per-workload by the experiment runner.
  double fps_scale = 1.0;
};

/// Presets. `paper()` is Table I verbatim; `scaled()` shrinks the LLC and GPU
/// caches (working sets shrink with it in src/workloads) so full experiment
/// sweeps run on one host core. See DESIGN.md §2 for the scaling argument.
struct Presets {
  [[nodiscard]] static SimConfig paper();
  [[nodiscard]] static SimConfig scaled();
};

}  // namespace gpuqos
