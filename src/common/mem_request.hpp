// Memory transaction passed between the cores/GPU, LLC, and DRAM.
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.hpp"

namespace gpuqos {

/// A block-granular memory request. `on_complete` (reads only) is invoked
/// with the cycle at which data is available at the requester.
struct MemRequest {
  Addr addr = 0;          // block-aligned by the issuing cache level
  bool is_write = false;  // writes are posted (no completion callback)
  SourceId source = SourceId::cpu(0);
  GpuAccessClass gclass = GpuAccessClass::None;
  Cycle issued_at = 0;
  // Stage timestamp, stamped by the telemetry layer (base cycles): when the
  // shared LLC detected a miss for this request (0 = not yet / no telemetry).
  // The MSHR-wait and miss-roundtrip latency histograms are measured from it.
  Cycle miss_at = 0;
  std::function<void(Cycle)> on_complete;  // empty for writes
};

}  // namespace gpuqos
