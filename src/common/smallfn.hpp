// Small-buffer type-erased callable for the simulation hot path.
//
// std::function heap-allocates any closure larger than its implementation's
// SBO (~16 bytes with libstdc++), and message-delivery events routinely
// capture a MemRequest plus a couple of pointers. SmallFn stores closures up
// to `Inline` bytes in place — sized so every event payload in the simulator
// fits — and only falls back to the heap for oversized or potentially-throwing
// types. It is move-only: events are scheduled once and run once, so copy
// semantics (and the allocations they hide) are exactly what we want to ban.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace gpuqos {

template <typename Sig, std::size_t Inline = 72>
class SmallFn;  // primary template intentionally undefined

template <typename R, typename... Args, std::size_t Inline>
class SmallFn<R(Args...), Inline> {
 public:
  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace<D>(std::forward<F>(f));
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  SmallFn& operator=(F&& f) {
    reset();
    emplace<D>(std::forward<F>(f));
    return *this;
  }

  SmallFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  R operator()(Args... args) {
    return ops_->call(buf_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*call)(void*, Args&&...);
    // Move-construct into `dst` from `src`, then destroy `src`'s payload.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  static constexpr bool stores_inline() {
    return sizeof(D) <= Inline && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static const Ops* inline_ops() {
    static constexpr Ops ops{
        [](void* p, Args&&... args) -> R {
          return (*std::launder(reinterpret_cast<D*>(p)))(
              std::forward<Args>(args)...);
        },
        [](void* dst, void* src) noexcept {
          D* s = std::launder(reinterpret_cast<D*>(src));
          ::new (dst) D(std::move(*s));
          s->~D();
        },
        [](void* p) noexcept { std::launder(reinterpret_cast<D*>(p))->~D(); },
    };
    return &ops;
  }

  template <typename D>
  static const Ops* heap_ops() {
    static constexpr Ops ops{
        [](void* p, Args&&... args) -> R {
          return (**std::launder(reinterpret_cast<D**>(p)))(
              std::forward<Args>(args)...);
        },
        [](void* dst, void* src) noexcept {
          ::new (dst) (D*)(*std::launder(reinterpret_cast<D**>(src)));
        },
        // NOLINT-gpuqos(check-hygiene): heap-fallback arena — this deleter
        // owns the pointer constructed in emplace() below.
        [](void* p) noexcept { delete *std::launder(reinterpret_cast<D**>(p)); },
    };
    return &ops;
  }

  template <typename D, typename F>
  void emplace(F&& f) {
    if constexpr (stores_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = inline_ops<D>();
    } else {
      // NOLINT-gpuqos(check-hygiene): heap-fallback arena — released by the
      // heap_ops destroy hook above.
      ::new (static_cast<void*>(buf_)) (D*)(new D(std::forward<F>(f)));
      ops_ = heap_ops<D>();
    }
  }

  void move_from(SmallFn& other) noexcept {
    if (other.ops_ == nullptr) return;
    ops_ = other.ops_;
    ops_->relocate(buf_, other.buf_);
    other.ops_ = nullptr;
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) std::byte buf_[Inline < sizeof(void*)
                                               ? sizeof(void*)
                                               : Inline];
};

}  // namespace gpuqos
