// Byte-size and frequency literals for configuration code.
#pragma once

#include <cstdint>

namespace gpuqos {

inline constexpr std::uint64_t KiB = 1024;
inline constexpr std::uint64_t MiB = 1024 * KiB;
inline constexpr std::uint64_t GiB = 1024 * MiB;

/// Base simulation clock (the CPU clock) in Hz.
inline constexpr double kCpuClockHz = 4.0e9;
/// GPU clock: 1 GHz, i.e. one GPU cycle every kGpuClockDivider base cycles.
inline constexpr unsigned kGpuClockDivider = 4;
/// DDR3-2133 command clock is 1066.67 MHz; we approximate with one memory
/// cycle every 4 base cycles (1 GHz), a <7% rate error applied uniformly to
/// all policies.
inline constexpr unsigned kDramClockDivider = 4;

[[nodiscard]] constexpr double cycles_to_seconds(std::uint64_t cycles) {
  return static_cast<double>(cycles) / kCpuClockHz;
}

[[nodiscard]] constexpr std::uint64_t gpu_to_base_cycles(std::uint64_t gpu_cycles) {
  return gpu_cycles * kGpuClockDivider;
}

[[nodiscard]] constexpr std::uint64_t base_to_gpu_cycles(std::uint64_t base_cycles) {
  return base_cycles / kGpuClockDivider;
}

}  // namespace gpuqos
