// Reference (pre-overhaul) simulation engine, kept for differential testing
// and perf baselining.
//
// This is the original `Engine` implementation verbatim — a binary min-heap of
// heap-allocated std::function events and a per-cycle modulo scan over every
// ticker. The production `Engine` (engine.hpp) replaced it with a timing wheel,
// an inline small-buffer callable, a precomputed ticker schedule, and idle
// skip-ahead; tests/test_engine.cpp drives both through randomized schedules
// and asserts identical execution traces, and bench/perf_engine reports the
// throughput of each so the speedup claim stays measurable, not historical.
//
// Do not "improve" this class: its value is being a frozen semantic oracle.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace gpuqos {

class ReferenceEngine {
 public:
  using Action = std::function<void()>;
  using TickFn = std::function<void(Cycle)>;

  [[nodiscard]] Cycle now() const { return now_; }

  void schedule(Cycle delay, Action fn) {
    events_.push(Event{now_ + delay, seq_++, std::move(fn)});
  }

  void add_ticker(Cycle period, Cycle phase, TickFn fn) {
    tickers_.push_back(Ticker{period, phase % period, std::move(fn)});
  }

  void step() {
    run_due_events();
    for (auto& t : tickers_) {
      if (now_ % t.period == t.phase) t.fn(now_);
    }
    // Zero-delay events scheduled by tickers still belong to this cycle.
    run_due_events();
    ++now_;
  }

  Cycle run_until(const std::function<bool()>& pred, Cycle max_cycles) {
    const Cycle start = now_;
    while (now_ - start < max_cycles) {
      if (pred()) break;
      step();
    }
    return now_ - start;
  }

  void run_for(Cycle cycles) {
    const Cycle end = now_ + cycles;
    while (now_ < end) step();
  }

  [[nodiscard]] std::size_t pending_events() const { return events_.size(); }

 private:
  struct Event {
    Cycle when;
    std::uint64_t seq;
    Action fn;
    bool operator>(const Event& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };
  struct Ticker {
    Cycle period;
    Cycle phase;
    TickFn fn;
  };

  void run_due_events() {
    while (!events_.empty() && events_.top().when <= now_) {
      // Move out before pop: the action may schedule new events.
      Action fn = std::move(const_cast<Event&>(events_.top()).fn);
      events_.pop();
      fn();
    }
  }

  Cycle now_ = 0;
  std::uint64_t seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::vector<Ticker> tickers_;
};

}  // namespace gpuqos
