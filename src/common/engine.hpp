// Cycle-driven simulation engine.
//
// The engine owns the base clock (CPU cycles). Components interact two ways:
//  * Tickers: registered callbacks invoked every `period` base cycles with a
//    fixed phase — used by CPU cores (period 1), the GPU pipeline (period 4),
//    and the DRAM channels (period 4).
//  * Events: one-shot callbacks scheduled `delay` cycles in the future — used
//    for message delivery, cache lookup completion, and DRAM data return.
//
// Events scheduled for the same cycle run in scheduling order (stable), and
// all events of a cycle run before that cycle's tickers.
//
// Internals (docs/PERFORMANCE.md has the full story; engine_ref.hpp keeps the
// original priority-queue implementation as a semantic oracle):
//  * Near-future events (delay < kWheelSize) go straight into a 256-bucket
//    timing wheel — one bucket per cycle, append-ordered, so same-cycle FIFO
//    ordering is free and draining a cycle is a linear vector walk instead of
//    log(n) heap pops.
//  * Far-future events wait in a (when, seq) min-heap and are refilled into
//    the wheel as the horizon reaches them — eagerly by the run loop, and on
//    demand by schedule() when the far heap intrudes into the horizon (the
//    clock can jump via idle skip-ahead) — so bucket append order always
//    equals global (when, seq) order.
//  * Event callbacks are SmallFn, not std::function: payloads up to 104 bytes
//    (a MemRequest-capturing closure) live inline in the event node — zero
//    heap traffic per event in steady state, since buckets recycle capacity.
//  * Tickers carry a precomputed absolute `next_fire` cycle instead of being
//    modulo-tested every cycle, and the engine caches the minimum across
//    tickers, so a no-ticker cycle costs one comparison.
//  * run_for/run_until skip ahead over provably idle gaps (no due event, no
//    due ticker) instead of stepping through them. Note: the run_until
//    predicate is not evaluated inside a skipped gap; a predicate that
//    depends on now() alone may therefore observe an overshoot of up to the
//    smallest ticker period minus one. Any simulation with a period-1 ticker
//    (every gpuqos mix: CPU cores) never skips, so fixtures are unaffected.
//
// Parallel tick (docs/PERFORMANCE.md "The parallel tick model"):
//  * Every ticker belongs to a TickDomain. Main-domain tickers (the default)
//    always run on the main thread; Cpu/Gpu/Dram tickers of the same cycle
//    may run concurrently on a persistent worker group when
//    GPUQOS_TICK_THREADS > 1 (1 = the serial reference path, bit-identical
//    by construction since the parallel machinery is never entered).
//  * While a domain's tickers run in the parallel phase, Engine::schedule()
//    self-defers into a per-domain buffer instead of touching the shared
//    queues, and modules route cross-domain side effects through
//    Engine::defer_host(). At the cycle barrier the main thread replays all
//    deferred ops merged by originating-ticker registration index — which
//    reproduces the exact serial interleaving (and event seq numbering)
//    because each ticker belongs to exactly one domain and each domain fires
//    its due tickers in registration order. Main-domain tickers then run
//    inline, guarded by a runtime check that every due Main ticker was
//    registered after every due parallel ticker (the ordering contract that
//    makes "parallel first, Main last" equal serial order).
//  * Cycles where fewer than two parallel domains are due skip the barrier
//    entirely and fire serially — with the standard clock dividers that is
//    every cycle not congruent to 0 or 1 mod 4.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/smallfn.hpp"
#include "common/types.hpp"

namespace gpuqos {

namespace ckpt {
class StateWriter;
class StateReader;
}  // namespace ckpt

class Engine {
 public:
  /// Inline capacity covers a closure capturing a MemRequest plus a pointer;
  /// larger (or potentially-throwing) payloads fall back to the heap.
  using Action = SmallFn<void(), 104>;
  using TickFn = SmallFn<void(Cycle)>;
  /// Deferred host-side op (defer_host): sized to hold a re-dispatched ring
  /// send (an Action plus routing fields) inline.
  using HostFn = SmallFn<void(), 152>;

  /// Which executor a ticker's callback runs on during the parallel phase.
  /// Main (the default) is everything that must observe the merged
  /// post-barrier state: the governor, auditors, digest/telemetry samplers.
  enum class TickDomain : std::uint8_t { Main = 0, Cpu, Gpu, Dram };
  static constexpr int kNumTickDomains = 4;

  static constexpr std::uint32_t kWheelBits = 8;
  static constexpr Cycle kWheelSize = Cycle{1} << kWheelBits;
  static constexpr Cycle kWheelMask = kWheelSize - 1;

  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Cycle now() const { return now_; }

  /// Schedule `fn` to run `delay` cycles from now (delay 0 = later this cycle
  /// if scheduled from an event, or next event phase if from a ticker).
  /// Thread-aware: called from a parallel-phase ticker it defers into the
  /// calling domain's buffer for serial-order replay at the cycle barrier.
  void schedule(Cycle delay, Action fn);

  /// Register a periodic ticker. Tickers fire on cycles where
  /// (cycle % period) == phase. This overload registers on the Main domain.
  void add_ticker(Cycle period, Cycle phase, TickFn fn);

  /// Register a ticker on an explicit domain. Cpu/Gpu/Dram tickers of one
  /// cycle may run concurrently; everything they publish to other domains
  /// must go through schedule()/defer_host() (see header comment).
  void add_ticker(TickDomain domain, Cycle period, Cycle phase, TickFn fn);

  /// True while the calling thread is firing a parallel-phase ticker (its
  /// schedules are being deferred). Modules use this to route whole
  /// operations through defer_host() when they would touch shared state.
  [[nodiscard]] static bool deferring();

  /// Run `fn` now when called outside the parallel phase; otherwise append
  /// it to the calling domain's defer buffer so it replays on the main
  /// thread at the cycle barrier, in serial order.
  static void defer_host(HostFn fn);

  /// Hook invoked once on each tick-worker thread at spawn (worker index
  /// 0-based) — used to wire thread-local log cycle sources and profiler
  /// lanes. Must be set before the first parallel cycle fires.
  void set_worker_init(std::function<void(unsigned)> init) {
    worker_init_ = std::move(init);
  }

  /// Configured tick parallelism (GPUQOS_TICK_THREADS, clamped; 1 = serial).
  [[nodiscard]] unsigned tick_threads() const { return tick_threads_; }

  /// Advance one cycle: run due events, then tickers.
  void step();

  /// Run until `pred` returns true or `max_cycles` elapse. Returns cycles run.
  /// Idle gaps are skipped without re-evaluating `pred` (see header comment).
  Cycle run_until(const std::function<bool()>& pred, Cycle max_cycles);

  /// Run a fixed number of cycles (idle gaps skipped, end cycle exact).
  void run_for(Cycle cycles);

  [[nodiscard]] std::size_t pending_events() const {
    return near_count_ + far_.size();
  }

  /// Cycle of the earliest pending event, or kNoCycle if none.
  [[nodiscard]] Cycle next_event_cycle() const;

  /// Total events executed / ticker callbacks fired since construction
  /// (perf accounting for bench/perf_engine; not part of the digest).
  [[nodiscard]] std::uint64_t events_run() const { return events_run_; }
  [[nodiscard]] std::uint64_t ticks_run() const { return ticks_run_; }

  /// FNV-1a digest of the engine clock and queue state (determinism
  /// auditing). Event payloads are closures, so the schedule *shape* folds
  /// in: clock, sequence counter, near/far queue sizes, next-due cycle, and
  /// per-bucket occupancy of the timing wheel.
  [[nodiscard]] std::uint64_t digest() const;

  /// Serialize the clock and ticker phases (docs/CHECKPOINT.md). Event
  /// payloads are closures and cannot be serialized, so save() requires the
  /// engine to be drained (pending_events() == 0) — HeteroCmp's barrier
  /// drain guarantees this.
  void save(ckpt::StateWriter& w) const;

  /// Restore into a freshly-constructed engine whose tickers have already
  /// been registered. The ticker list must match the saved one (same count,
  /// same periods in registration order); a mismatch means the resumed run
  /// attached different instrumentation and is rejected with CkptError.
  void load(ckpt::StateReader& r);

 private:
  struct EventNode {
    std::uint64_t seq;
    Action fn;
  };
  struct FarEvent {
    Cycle when;
    std::uint64_t seq;
    Action fn;
    // min-heap via std::push_heap/pop_heap with std::greater-style compare
    bool operator>(const FarEvent& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };
  struct Ticker {
    Cycle period;
    Cycle next_fire;  // absolute cycle of the next firing
    TickDomain domain;
    TickFn fn;
  };

  /// One deferred cross-domain op captured during the parallel phase.
  /// Tagged with the originating ticker's registration index so the barrier
  /// replay can k-way merge the per-domain buffers back into serial order.
  struct DeferredOp {
    std::uint32_t ticker;
    bool is_schedule;
    Cycle delay;   // schedule ops: delay relative to the deferring cycle
    Action act;    // schedule payload
    HostFn host;   // host-effect payload
  };
  struct DeferBuf {
    std::uint32_t cur_ticker = 0;  // index of the ticker currently firing
    std::uint64_t fired = 0;       // tickers fired this cycle (perf counter)
    std::vector<DeferredOp> ops;
  };
  struct TickWorkers;  // persistent worker group (engine.cpp)

  /// Move far events whose cycle entered the wheel horizon into buckets.
  void refill_wheel();
  /// Run every event in the current cycle's bucket (including ones appended
  /// mid-drain by zero-delay schedules), then release the bucket.
  void drain_bucket();
  /// Fire tickers due at now_ and recompute the cached minimum next_fire.
  void fire_tickers();
  /// Serial reference firing: all due tickers in registration order.
  void fire_due_serial();
  /// Parallel-phase firing: classify due tickers by domain, dispatch to the
  /// worker group, barrier, merge-replay deferred ops, run Main tickers.
  void fire_tickers_parallel();
  /// Fire one domain's due tickers on the calling thread, deferring their
  /// schedules into the domain buffer. Runs on workers and the main thread.
  void run_domain(TickDomain d);
  /// Spawn the worker group on first parallel use (GPUQOS_TICK_THREADS > 1).
  void ensure_workers();
  /// One full cycle at now_ (events, tickers, trailing events), then advance.
  void step_cycle();

  Cycle now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_run_ = 0;  // digest:skip: perf accounting only
  std::uint64_t ticks_run_ = 0;   // digest:skip: perf accounting only
  // Wheel/heap contents are digested (in-flight events must match between
  // runs) but never serialized: save() requires the quiescent barrier.
  std::size_t near_count_ = 0;                   // ckpt:skip: zero at barrier
  std::vector<std::vector<EventNode>> buckets_;  // ckpt:skip: wheel, drained
  std::vector<FarEvent> far_;                    // ckpt:skip: heap, drained
  // Ticker registrations differ between instrumented and plain runs, so they
  // are excluded from the digest; their schedule is recomputed on load.
  std::vector<Ticker> tickers_;     // digest:skip: instrumentation varies
  Cycle min_next_fire_ = kNoCycle;  // ckpt:skip digest:skip: cached minimum
  // Parallel-tick machinery: host-side only, empty at every cycle boundary,
  // and bit-invisible to the simulation (replay reproduces serial order).
  // ckpt:skip digest:skip on all of it.
  unsigned tick_threads_ = 1;  // ckpt:skip digest:skip: host parallelism knob
  std::function<void(unsigned)> worker_init_;  // ckpt:skip digest:skip: hook
  // Per-domain defer buffers + due-ticker scratch, drained within each
  // fire_tickers_parallel call.
  std::array<DeferBuf, kNumTickDomains> bufs_;  // ckpt:skip digest:skip
  std::array<std::vector<std::uint32_t>, kNumTickDomains>
      due_;                             // ckpt:skip digest:skip: scratch
  std::unique_ptr<TickWorkers> workers_;  // ckpt:skip digest:skip: threads
  // Points at the defer buffer of the domain this thread is currently
  // firing; null outside the parallel phase (then schedule() is direct).
  // NOLINT-gpuqos(thread-purity): audited — per-thread, never shared; see
  // the definition in engine.cpp.
  static thread_local DeferBuf* t_defer_;
};

}  // namespace gpuqos
