// Cycle-driven simulation engine.
//
// The engine owns the base clock (CPU cycles). Components interact two ways:
//  * Tickers: registered callbacks invoked every `period` base cycles with a
//    fixed phase — used by CPU cores (period 1), the GPU pipeline (period 4),
//    and the DRAM channels (period 4).
//  * Events: one-shot callbacks scheduled `delay` cycles in the future — used
//    for message delivery, cache lookup completion, and DRAM data return.
//
// Events scheduled for the same cycle run in scheduling order (stable), and
// all events of a cycle run before that cycle's tickers.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace gpuqos {

class Engine {
 public:
  using Action = std::function<void()>;
  using TickFn = std::function<void(Cycle)>;

  [[nodiscard]] Cycle now() const { return now_; }

  /// Schedule `fn` to run `delay` cycles from now (delay 0 = later this cycle
  /// if scheduled from an event, or next event phase if from a ticker).
  void schedule(Cycle delay, Action fn);

  /// Register a periodic ticker. Tickers fire on cycles where
  /// (cycle % period) == phase.
  void add_ticker(Cycle period, Cycle phase, TickFn fn);

  /// Advance one cycle: run due events, then tickers.
  void step();

  /// Run until `pred` returns true or `max_cycles` elapse. Returns cycles run.
  Cycle run_until(const std::function<bool()>& pred, Cycle max_cycles);

  /// Run a fixed number of cycles.
  void run_for(Cycle cycles);

  [[nodiscard]] std::size_t pending_events() const { return events_.size(); }

  /// FNV-1a digest of the engine clock state (determinism auditing). Event
  /// payloads are closures, so only the schedule shape (count, next sequence
  /// number) folds in — divergent event ordering shows up in `seq_`.
  [[nodiscard]] std::uint64_t digest() const;

 private:
  struct Event {
    Cycle when;
    std::uint64_t seq;
    Action fn;
    bool operator>(const Event& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };
  struct Ticker {
    Cycle period;
    Cycle phase;
    TickFn fn;
  };

  void run_due_events();

  Cycle now_ = 0;
  std::uint64_t seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::vector<Ticker> tickers_;
};

}  // namespace gpuqos
