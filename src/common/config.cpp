#include "common/config.hpp"

namespace gpuqos {

std::string to_string(GpuAccessClass c) {
  switch (c) {
    case GpuAccessClass::Texture: return "texture";
    case GpuAccessClass::Depth: return "depth";
    case GpuAccessClass::Color: return "color";
    case GpuAccessClass::Vertex: return "vertex";
    case GpuAccessClass::HiZ: return "hiz";
    case GpuAccessClass::ShaderInstr: return "shader_instr";
    case GpuAccessClass::None: return "none";
  }
  return "?";
}

std::string to_string(SourceId s) {
  if (s.is_gpu()) return "gpu";
  return "cpu" + std::to_string(static_cast<int>(s.index));
}

SimConfig Presets::paper() {
  return SimConfig{};  // defaults are Table I verbatim
}

SimConfig Presets::scaled() {
  SimConfig cfg;
  // LLC scaled 16 MB -> 2 MB (1/8); private caches scaled 1/4 so the private
  // hit-rate vs LLC pressure balance is preserved for the 1/8-scaled CPU
  // working sets defined in src/workloads/spec.cpp.
  cfg.llc.size_bytes = 2 * MiB;
  cfg.core.l1d.size_bytes = 8 * KiB;
  cfg.core.l1i.size_bytes = 8 * KiB;
  cfg.core.l2.size_bytes = 64 * KiB;
  // GPU caches scaled 1/4: frames are area-scaled 1/64, but the per-tile
  // streaming footprint (what these caches capture) scales with the tile
  // row, not the area.
  cfg.gpu.tex_l1.size_bytes = 16 * KiB;
  cfg.gpu.tex_l2.size_bytes = 96 * KiB;
  cfg.gpu.tex_l2.ways = 24;
  cfg.gpu.depth_l2.size_bytes = 8 * KiB;
  cfg.gpu.color_l2.size_bytes = 8 * KiB;
  cfg.gpu.vertex_cache.size_bytes = 4 * KiB;
  cfg.gpu.hiz_cache.size_bytes = 4 * KiB;
  cfg.gpu.shader_icache.size_bytes = 8 * KiB;
  // GPU throughput engines scale with the 1/64-area frames so the GPU:CPU
  // memory pressure ratio stays in the paper's regime (the full-rate GPU
  // would render 64x more frames per second and swamp the scaled LLC).
  cfg.gpu.max_fragments_in_flight = 48;
  cfg.gpu.raster_rate = 6;
  cfg.gpu.rop_units = 6;
  cfg.gpu.llc_issue_interval = 2;
  return cfg;
}

}  // namespace gpuqos
