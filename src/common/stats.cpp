#include "common/stats.hpp"

#include <cmath>
#include <sstream>

#include "check/digest.hpp"
#include "ckpt/state_io.hpp"
#include "common/jsonio.hpp"

namespace gpuqos {

void StatRegistry::add(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

std::uint64_t* StatRegistry::counter_ptr(const std::string& name) {
  return &counters_[name];
}

void StatRegistry::set(const std::string& name, double value) {
  scalars_[name] = value;
}

std::uint64_t StatRegistry::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double StatRegistry::scalar(const std::string& name) const {
  auto it = scalars_.find(name);
  return it == scalars_.end() ? 0.0 : it->second;
}

bool StatRegistry::has_counter(const std::string& name) const {
  return counters_.contains(name);
}

std::map<std::string, std::uint64_t> StatRegistry::counters() const {
  return counters_;
}

std::map<std::string, double> StatRegistry::scalars() const { return scalars_; }

std::uint64_t StatRegistry::since(
    const std::string& name,
    const std::map<std::string, std::uint64_t>& baseline) const {
  const std::uint64_t now = counter(name);
  auto it = baseline.find(name);
  const std::uint64_t before = it == baseline.end() ? 0 : it->second;
  return now >= before ? now - before : 0;
}

void StatRegistry::clear() {
  // Zero rather than erase: hot-path counter_ptr() pointers stay valid.
  for (auto& [name, value] : counters_) value = 0;
  for (auto& [name, value] : scalars_) value = 0.0;
}

std::string StatRegistry::report(const std::string& prefix) const {
  std::ostringstream os;
  for (const auto& [name, value] : counters_) {
    if (name.rfind(prefix, 0) == 0) os << name << ' ' << value << '\n';
  }
  for (const auto& [name, value] : scalars_) {
    if (name.rfind(prefix, 0) == 0) os << name << ' ' << value << '\n';
  }
  return os.str();
}

std::string StatRegistry::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << value;
  }
  os << "},\"scalars\":{";
  first = true;
  for (const auto& [name, value] : scalars_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << json_double(value);
  }
  os << "}}";
  return os.str();
}

std::uint64_t StatRegistry::digest() const {
  Fnv1a64 h;
  for (const auto& [name, value] : counters_) {
    h.mix_string(name);
    h.mix(value);
  }
  for (const auto& [name, value] : scalars_) {
    h.mix_string(name);
    h.mix_double(value);
  }
  return h.value();
}

void StatRegistry::save(ckpt::StateWriter& w) const {
  w.u64(counters_.size());
  for (const auto& [name, value] : counters_) {
    w.str(name);
    w.u64(value);
  }
  w.u64(scalars_.size());
  for (const auto& [name, value] : scalars_) {
    w.str(name);
    w.f64(value);
  }
}

void StatRegistry::load(ckpt::StateReader& r) {
  // Assign into the maps rather than swapping them out: modules cached
  // counter_ptr() nodes at construction and those pointers must stay live.
  const std::uint64_t nc = r.u64();
  for (std::uint64_t i = 0; i < nc; ++i) {
    const std::string name = r.str();
    counters_[name] = r.u64();
  }
  const std::uint64_t ns = r.u64();
  for (std::uint64_t i = 0; i < ns; ++i) {
    const std::string name = r.str();
    scalars_[name] = r.f64();
  }
}

double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) return 0.0;
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace gpuqos
