// Fundamental types shared across the gpuqos simulator.
#pragma once

#include <cstdint>
#include <string>

namespace gpuqos {

/// Physical byte address.
using Addr = std::uint64_t;

/// Simulation time in base-clock (CPU, 4 GHz) cycles.
using Cycle = std::uint64_t;

inline constexpr Cycle kNoCycle = ~Cycle{0};

/// Who issued a memory request. The GPU is a single agent; CPU cores are
/// numbered. The LLC, DRAM schedulers, and QoS machinery all key off this.
struct SourceId {
  enum class Kind : std::uint8_t { Cpu, Gpu };
  Kind kind = Kind::Cpu;
  std::uint8_t index = 0;  // CPU core number; 0 for the GPU

  [[nodiscard]] bool is_cpu() const { return kind == Kind::Cpu; }
  [[nodiscard]] bool is_gpu() const { return kind == Kind::Gpu; }
  friend bool operator==(const SourceId&, const SourceId&) = default;

  static SourceId cpu(std::uint8_t core) { return {Kind::Cpu, core}; }
  static SourceId gpu() { return {Kind::Gpu, 0}; }
};

/// Which GPU pipeline unit generated an access. Used for the texture-share
/// statistic the paper quotes (~25% of GPU LLC accesses are texture) and for
/// HeLM's shader-sourced read-miss identification.
enum class GpuAccessClass : std::uint8_t {
  Texture,
  Depth,
  Color,
  Vertex,
  HiZ,
  ShaderInstr,
  None,  // CPU accesses
};

[[nodiscard]] std::string to_string(GpuAccessClass c);
[[nodiscard]] std::string to_string(SourceId s);

}  // namespace gpuqos
