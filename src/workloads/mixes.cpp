#include "workloads/mixes.hpp"

#include <stdexcept>

namespace gpuqos {
namespace {

std::vector<HeteroMix> build_m() {
  return {
      {"M1", "3DMark06GT1", {403, 450, 481, 482}},
      {"M2", "3DMark06GT2", {403, 429, 434, 462}},
      {"M3", "3DMark06HDR1", {401, 437, 450, 470}},
      {"M4", "3DMark06HDR2", {401, 462, 470, 471}},
      {"M5", "COD2", {401, 437, 450, 470}},
      {"M6", "Crysis", {429, 433, 434, 482}},
      {"M7", "DOOM3", {410, 433, 462, 471}},
      {"M8", "HL2", {410, 429, 433, 434}},
      {"M9", "L4D", {410, 433, 462, 471}},
      {"M10", "NFS", {410, 429, 433, 471}},
      {"M11", "Quake4", {401, 437, 450, 481}},
      {"M12", "COR", {403, 437, 450, 481}},
      {"M13", "UT2004", {401, 437, 462, 470}},
      {"M14", "UT3", {403, 437, 450, 481}},
  };
}

std::vector<HeteroMix> build_w() {
  return {
      {"W1", "3DMark06GT1", {481}},
      {"W2", "3DMark06GT2", {471}},
      {"W3", "3DMark06HDR1", {470}},
      {"W4", "3DMark06HDR2", {482}},
      {"W5", "COD2", {470}},
      {"W6", "Crysis", {429}},
      {"W7", "DOOM3", {462}},
      {"W8", "HL2", {403}},
      {"W9", "L4D", {462}},
      {"W10", "NFS", {437}},
      {"W11", "Quake4", {410}},
      {"W12", "COR", {434}},
      {"W13", "UT2004", {450}},
      {"W14", "UT3", {434}},
  };
}

}  // namespace

const std::vector<HeteroMix>& m_mixes() {
  // NOLINT-gpuqos(concurrency-discipline): immutable input-independent table;
  // C++11 magic-static init is thread-safe and runs once.
  static const std::vector<HeteroMix> m = build_m();
  return m;
}

const std::vector<HeteroMix>& w_mixes() {
  // NOLINT-gpuqos(concurrency-discipline): immutable input-independent table;
  // C++11 magic-static init is thread-safe and runs once.
  static const std::vector<HeteroMix> w = build_w();
  return w;
}

const HeteroMix& mix(const std::string& id) {
  for (const auto& m : m_mixes()) {
    if (m.id == id) return m;
  }
  for (const auto& w : w_mixes()) {
    if (w.id == id) return w;
  }
  throw std::out_of_range("unknown mix: " + id);
}

std::vector<HeteroMix> high_fps_mixes() {
  return {mix("M7"), mix("M8"), mix("M10"), mix("M11"), mix("M12"),
          mix("M13")};
}

std::vector<HeteroMix> low_fps_mixes() {
  return {mix("M1"), mix("M2"), mix("M3"), mix("M4"),
          mix("M5"), mix("M6"), mix("M9"), mix("M14")};
}

}  // namespace gpuqos
