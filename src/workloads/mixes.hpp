// The heterogeneous workload mixes of Table III.
//
// M1-M14: four SPEC CPU 2006 applications + one GPU application (used with
// the 4-CPU + 1-GPU configuration). W1-W14: one SPEC application + one GPU
// application (used for the Section II motivation experiments).
#pragma once

#include <array>
#include <string>
#include <vector>

namespace gpuqos {

struct HeteroMix {
  std::string id;              // "M1" or "W1"
  std::string gpu_app;         // Table II application name
  std::vector<int> cpu_specs;  // SPEC ids (4 for M-mixes, 1 for W-mixes)
};

[[nodiscard]] const std::vector<HeteroMix>& m_mixes();  // M1..M14
[[nodiscard]] const std::vector<HeteroMix>& w_mixes();  // W1..W14

[[nodiscard]] const HeteroMix& mix(const std::string& id);

/// The six mixes whose GPU application exceeds the 40 FPS target (DOOM3,
/// HL2, NFS, Quake4, COR, UT2004) — the Figure 9/12 population.
[[nodiscard]] std::vector<HeteroMix> high_fps_mixes();
/// The remaining eight (Figure 13/14 population).
[[nodiscard]] std::vector<HeteroMix> low_fps_mixes();

}  // namespace gpuqos
