#include "workloads/gpu_apps.hpp"

#include <stdexcept>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace gpuqos {
namespace {

// GPU surface layout (disjoint from the per-core CPU regions).
constexpr Addr kColorBase = 0x4000000000ull;
constexpr Addr kDepthBase = 0x4400000000ull;
constexpr Addr kVertexBase = 0x4800000000ull;
constexpr Addr kTextureBase = 0x4C00000000ull;

// Tile grids for the paper's resolution classes at 1/64 area, 16x16 tiles:
// R1 = 1280x1024 -> 160x128, R2 = 1920x1200 -> 240x144, R3 = 1600x1200 ->
// 200x144 (rounded to whole tiles).
struct Res {
  unsigned tx, ty;
  const char* tag;
};
constexpr Res kR1{10, 8, "R1 (1280x1024)"};
constexpr Res kR2{15, 9, "R2 (1920x1200)"};
constexpr Res kR3{12, 9, "R3 (1600x1200)"};

GpuAppDesc make(const char* name, const char* api, Res res, unsigned frames,
                double paper_fps, double fps_scale, unsigned passes,
                double overdraw, unsigned tex_samples, unsigned shader_cycles,
                double blend_fraction, std::uint64_t texture_bytes,
                unsigned mrt_targets = 1) {
  GpuAppDesc d;
  d.name = name;
  d.api = api;
  d.resolution = res.tag;
  d.tiles_x = res.tx;
  d.tiles_y = res.ty;
  d.frames = frames;
  d.paper_fps = paper_fps;
  d.fps_scale = fps_scale;
  d.passes = passes;
  d.overdraw = overdraw;
  d.tex_samples = tex_samples;
  d.shader_cycles = shader_cycles;
  d.blend_fraction = blend_fraction;
  d.texture_bytes = texture_bytes;
  d.mrt_targets = mrt_targets;
  return d;
}

std::vector<GpuAppDesc> build_apps() {
  std::vector<GpuAppDesc> a;
  // fps_scale values are calibrated so the heterogeneous-baseline FPS lands
  // on the Table II column (see EXPERIMENTS.md). To recalibrate after
  // changing GPU/DRAM/scene parameters: run the M-mix baselines and set
  // fps_scale_new = fps_scale_old * measured_fps / paper_fps.
  a.push_back(make("3DMark06GT1", "DX", kR1, 2, 6.0, 155, 7, 2.2, 3, 32,
                   0.50, 24 * MiB, 2));
  a.push_back(make("3DMark06GT2", "DX", kR1, 2, 13.8, 153, 5, 1.8, 2, 24,
                   0.40, 16 * MiB, 2));
  a.push_back(make("3DMark06HDR1", "DX", kR1, 2, 16.0, 106, 5, 1.6, 3, 22,
                   0.60, 16 * MiB, 2));
  a.push_back(make("3DMark06HDR2", "DX", kR1, 2, 20.8, 106, 4, 1.5, 3, 20,
                   0.60, 16 * MiB, 2));
  a.push_back(make("COD2", "DX", kR2, 2, 18.1, 84, 4, 1.8, 2, 20,
                   0.35, 16 * MiB));
  a.push_back(make("Crysis", "DX", kR2, 2, 6.6, 51, 8, 2.4, 4, 36,
                   0.50, 32 * MiB, 3));
  a.push_back(make("DOOM3", "OGL", kR3, 4, 81.0, 65, 2, 1.3, 2, 10,
                   0.30, 8 * MiB));
  a.push_back(make("HL2", "DX", kR3, 4, 75.9, 67, 2, 1.4, 2, 10,
                   0.25, 8 * MiB));
  a.push_back(make("L4D", "DX", kR1, 3, 32.5, 118, 3, 1.6, 2, 16,
                   0.30, 12 * MiB));
  a.push_back(make("NFS", "DX", kR1, 4, 62.3, 104, 2, 1.5, 2, 12,
                   0.35, 12 * MiB));
  a.push_back(make("Quake4", "OGL", kR3, 4, 80.8, 73, 2, 1.3, 2, 10,
                   0.30, 8 * MiB));
  a.push_back(make("COR", "OGL", kR1, 4, 111.0, 176, 1, 1.3, 2, 8,
                   0.20, 8 * MiB));
  a.push_back(make("UT2004", "OGL", kR3, 5, 130.7, 164, 1, 1.2, 1, 6,
                   0.15, 8 * MiB));
  a.push_back(make("UT3", "DX", kR1, 2, 26.8, 77, 4, 1.7, 3, 18,
                   0.40, 16 * MiB, 2));
  return a;
}

}  // namespace

const std::vector<GpuAppDesc>& gpu_apps() {
  // NOLINT-gpuqos(concurrency-discipline): immutable input-independent table;
  // C++11 magic-static init is thread-safe and runs once.
  static const std::vector<GpuAppDesc> apps = build_apps();
  return apps;
}

const GpuAppDesc& gpu_app(const std::string& name) {
  for (const auto& a : gpu_apps()) {
    if (a.name == name) return a;
  }
  throw std::out_of_range("unknown GPU app: " + name);
}

std::vector<SceneFrame> build_frames(const GpuAppDesc& app,
                                     std::uint64_t seed) {
  Rng rng(seed ^ 0xA77111A5EEDull);
  std::vector<SceneFrame> frames;
  frames.reserve(app.frames);
  for (unsigned f = 0; f < app.frames; ++f) {
    SceneFrame frame;
    frame.tiles_x = app.tiles_x;
    frame.tiles_y = app.tiles_y;
    frame.tile_px = 16;
    // Animation double-buffers the swap chain: even/odd frames render to
    // different color surfaces, so render-target blocks are not silently
    // reused across frames in the LLC.
    frame.color_base = kColorBase + (f % 2) * 512 * MiB;
    frame.depth_base = kDepthBase;
    frame.vertex_base = kVertexBase;
    frame.texture_base = kTextureBase;
    frame.texture_bytes = app.texture_bytes;

    // Frame-to-frame work variation: consecutive frames of a game differ a
    // little (camera motion), which exercises the estimator's robustness.
    const double jitter =
        1.0 + app.frame_jitter * (rng.next_double() * 2.0 - 1.0);

    for (unsigned p = 0; p < app.passes; ++p) {
      DrawBatch b;
      b.triangles = app.triangles_per_batch;
      b.tile_coverage = 1.0;
      b.frags_per_tile_px = app.overdraw * jitter;
      b.tex_samples = app.tex_samples;
      b.depth_test = true;
      b.depth_write = p == 0;  // later passes test against the prepass depth
      b.blend = rng.bernoulli(app.blend_fraction);
      b.shader_cycles = app.shader_cycles;
      b.texture_id = p;
      b.tex_locality = app.tex_locality;
      // The geometry pass of a deferred renderer writes the full G-buffer;
      // later passes write the single shaded output.
      b.mrt_targets = p == 0 ? app.mrt_targets : 1;
      frame.batches.push_back(b);
    }
    for (unsigned o = 0; o < app.overlay_batches; ++o) {
      DrawBatch b;
      b.triangles = 64;
      b.tile_coverage = 0.15;
      b.frags_per_tile_px = 0.8;
      b.tex_samples = 1;
      b.depth_test = false;
      b.depth_write = false;
      b.blend = true;
      b.shader_cycles = 4;
      b.texture_id = app.passes + o;
      b.tex_locality = 0.95;
      frame.batches.push_back(b);
    }
    frames.push_back(std::move(frame));
  }
  return frames;
}

}  // namespace gpuqos
