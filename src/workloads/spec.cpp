#include "workloads/spec.hpp"

#include <map>
#include <stdexcept>

#include "common/units.hpp"

namespace gpuqos {
namespace {

std::map<int, SpecProfile> build_profiles() {
  std::map<int, SpecProfile> p;
  // name, id, mem_frac, store_frac, dep_frac, llc_apki, stream_frac,
  // llc_ws, stream_bytes. APKI classes follow the published SPEC CPU 2006
  // memory characterizations (working sets scaled 1/8 for the 2 MB LLC).
  auto add = [&p](const char* name, int id, double mem, double st, double dep,
                  double apki, double stream, std::uint64_t llc_ws,
                  std::uint64_t sb) {
    SpecProfile s;
    s.name = name;
    s.spec_id = id;
    s.mem_op_fraction = mem;
    s.store_fraction = st;
    s.dependent_fraction = dep;
    s.llc_apki = apki;
    s.stream_fraction = stream;
    s.llc_ws_bytes = llc_ws;
    s.stream_bytes = sb;
    p[id] = s;
  };
  // Integer, cache-friendly-to-moderate.
  add("401.bzip2", 401, 0.34, 0.30, 0.10, 4.0, 0.02, 192 * KiB, 4 * MiB);
  add("403.gcc", 403, 0.38, 0.32, 0.12, 6.0, 0.02, 256 * KiB, 2 * MiB);
  // Floating-point streaming, bandwidth hungry.
  add("410.bwaves", 410, 0.42, 0.22, 0.04, 18.0, 0.40, 128 * KiB, 24 * MiB);
  // Pointer chasing, very high MPKI, latency sensitive.
  add("429.mcf", 429, 0.36, 0.25, 0.30, 28.0, 0.02, 768 * KiB, 8 * MiB);
  add("433.milc", 433, 0.40, 0.30, 0.05, 25.0, 0.35, 256 * KiB, 16 * MiB);
  add("434.zeusmp", 434, 0.36, 0.28, 0.06, 10.0, 0.25, 192 * KiB, 8 * MiB);
  add("437.leslie3d", 437, 0.44, 0.26, 0.05, 20.0, 0.35, 192 * KiB, 20 * MiB);
  // Mixed: large working set with irregular reuse.
  add("450.soplex", 450, 0.39, 0.24, 0.15, 16.0, 0.10, 512 * KiB, 6 * MiB);
  // Pure streaming, the classic bandwidth hog.
  add("462.libquantum", 462, 0.33, 0.20, 0.03, 28.0, 0.60, 64 * KiB, 32 * MiB);
  // Streaming with heavy store traffic.
  add("470.lbm", 470, 0.40, 0.45, 0.04, 24.0, 0.45, 96 * KiB, 28 * MiB);
  // Pointer chasing over a large heap.
  add("471.omnetpp", 471, 0.37, 0.30, 0.28, 14.0, 0.02, 512 * KiB, 6 * MiB);
  add("481.wrf", 481, 0.35, 0.28, 0.07, 8.0, 0.20, 192 * KiB, 10 * MiB);
  add("482.sphinx3", 482, 0.41, 0.12, 0.12, 13.0, 0.10, 256 * KiB, 6 * MiB);
  return p;
}

const std::map<int, SpecProfile>& profiles() {
  // NOLINT-gpuqos(concurrency-discipline): immutable input-independent table;
  // C++11 magic-static init is thread-safe and runs once.
  static const std::map<int, SpecProfile> p = build_profiles();
  return p;
}

}  // namespace

const SpecProfile& spec_profile(int spec_id) {
  return profiles().at(spec_id);
}

const std::vector<int>& spec_ids() {
  // NOLINT-gpuqos(concurrency-discipline): immutable input-independent table;
  // C++11 magic-static init is thread-safe and runs once.
  static const std::vector<int> ids = [] {
    std::vector<int> v;
    for (const auto& [id, prof] : profiles()) v.push_back(id);
    return v;
  }();
  return ids;
}

}  // namespace gpuqos
