// The fourteen 3D-rendering workloads of Table II, as synthetic scene
// generators (substitutes for the ATTILA DirectX/OpenGL traces; DESIGN.md §2).
//
// Frame area is scaled ~1/64 relative to the paper's resolutions; each app's
// `fps_scale` converts simulated frame rate to effective (paper-comparable)
// FPS and folds in the per-pixel work our synthetic shaders do not perform.
// Scene parameters (passes, overdraw, texture intensity, blending) are set
// per title so the *heterogeneous baseline* FPS ordering and the >40 FPS /
// <40 FPS split match Table II.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpu/scene.hpp"

namespace gpuqos {

struct GpuAppDesc {
  std::string name;        // e.g. "DOOM3"
  std::string api;         // "DX" or "OGL"
  std::string resolution;  // paper resolution class (R1/R2/R3)
  unsigned frames = 2;     // sequence length (scaled from Table II)
  double paper_fps = 0;    // Table II baseline FPS, for reporting
  double fps_scale = 64;   // effective FPS = simulated FPS / fps_scale

  // Scene shape.
  unsigned tiles_x = 10, tiles_y = 8;  // render target in 16x16-px tiles
  unsigned passes = 2;                 // full-coverage batches per frame
  double overdraw = 1.3;               // fragments per pixel per pass
  unsigned tex_samples = 2;
  double tex_locality = 0.92;
  unsigned shader_cycles = 10;
  double blend_fraction = 0.3;     // fraction of passes that blend
  unsigned overlay_batches = 1;    // partial-coverage batches (HUD etc.)
  std::uint64_t texture_bytes = 1 << 20;
  unsigned mrt_targets = 1;        // render targets in the main passes
  unsigned triangles_per_batch = 256;
  double frame_jitter = 0.04;      // inter-frame work variation
};

/// All fourteen applications in Table II order.
[[nodiscard]] const std::vector<GpuAppDesc>& gpu_apps();

/// Lookup by name; throws std::out_of_range when unknown.
[[nodiscard]] const GpuAppDesc& gpu_app(const std::string& name);

/// Generate the app's frame sequence (deterministic for a given seed).
[[nodiscard]] std::vector<SceneFrame> build_frames(const GpuAppDesc& app,
                                                   std::uint64_t seed);

}  // namespace gpuqos
