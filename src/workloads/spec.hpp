// SPEC CPU 2006 workload profiles (synthetic substitutes; DESIGN.md §2).
//
// Parameters follow the published memory characterization of each benchmark
// (MPKI class, streaming vs. pointer-chasing behaviour, store intensity),
// with working sets scaled 1/8 to match the scaled preset's 2 MB LLC.
#pragma once

#include <vector>

#include "cpu/stream.hpp"

namespace gpuqos {

/// Profile for a SPEC id used in the paper's mixes (Table III). Ids:
/// 401.bzip2, 403.gcc, 410.bwaves, 429.mcf, 433.milc, 434.zeusmp,
/// 437.leslie3d, 450.soplex, 462.libquantum, 470.lbm, 471.omnetpp,
/// 481.wrf, 482.sphinx3. Throws std::out_of_range for unknown ids.
[[nodiscard]] const SpecProfile& spec_profile(int spec_id);

/// All ids with profiles, ascending.
[[nodiscard]] const std::vector<int>& spec_ids();

}  // namespace gpuqos
