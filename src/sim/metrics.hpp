// Performance metrics used in the paper's evaluation (Section V-B).
#pragma once

#include <vector>

namespace gpuqos {

/// Weighted speedup of a multiprogrammed CPU mix: sum of per-application
/// IPC ratios relative to standalone execution.
[[nodiscard]] double weighted_speedup(const std::vector<double>& hetero_ipc,
                                      const std::vector<double>& alone_ipc);

/// Equal-weight combined CPU+GPU metric for Figure 14: geometric mean of the
/// normalized CPU weighted speedup and the normalized GPU frame rate.
[[nodiscard]] double combined_performance(double cpu_norm, double gpu_norm);

}  // namespace gpuqos
