#include "sim/metrics.hpp"

#include <cmath>

#include "check/check.hpp"

namespace gpuqos {

double weighted_speedup(const std::vector<double>& hetero_ipc,
                        const std::vector<double>& alone_ipc) {
  GPUQOS_CHECK(hetero_ipc.size() == alone_ipc.size(),
               "per-core IPC vectors differ: " << hetero_ipc.size() << " vs "
                                               << alone_ipc.size());
  double ws = 0.0;
  for (std::size_t i = 0; i < hetero_ipc.size(); ++i) {
    if (alone_ipc[i] > 0) ws += hetero_ipc[i] / alone_ipc[i];
  }
  return ws;
}

double combined_performance(double cpu_norm, double gpu_norm) {
  if (cpu_norm <= 0 || gpu_norm <= 0) return 0.0;
  return std::sqrt(cpu_norm * gpu_norm);
}

}  // namespace gpuqos
