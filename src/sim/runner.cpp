#include "sim/runner.hpp"

#include <cstdlib>
#include <cstring>

#include "check/context.hpp"
#include "common/units.hpp"
#include "obs/telemetry.hpp"
#include "workloads/spec.hpp"

namespace gpuqos {
namespace {

/// Per-core measurement bookkeeping.
struct CoreWindow {
  std::uint64_t start_committed = 0;
  Cycle start_cycle = 0;
  Cycle done_cycle = kNoCycle;
};

std::vector<SpecProfile> profiles_of(const std::vector<int>& ids) {
  std::vector<SpecProfile> out;
  out.reserve(ids.size());
  for (int id : ids) out.push_back(spec_profile(id));
  return out;
}

}  // namespace

RunScale RunScale::from_env() {
  RunScale s;
  const char* fast = std::getenv("GPUQOS_FAST");
  if (fast != nullptr && std::strcmp(fast, "0") != 0) {
    s.warm_instrs = 50'000;
    s.measure_instrs = 300'000;
    s.warm_frames = 2;
    s.measure_frames = 2;
    s.warm_min_cycles = 1'000'000;
    s.max_cycles = 100'000'000;
  }
  return s;
}

double standalone_cpu_ipc(const SimConfig& cfg, int spec_id,
                          const RunScale& scale) {
  HeteroCmp cmp(cfg, Policy::Baseline, {spec_profile(spec_id)}, {}, 1.0);
  Engine& eng = cmp.engine();
  CpuCore& core = cmp.core(0);

  eng.run_until([&] { return core.committed() >= scale.warm_instrs; },
                scale.max_cycles);
  const std::uint64_t c0 = core.committed();
  const Cycle t0 = eng.now();
  eng.run_until([&] { return core.committed() >= c0 + scale.measure_instrs; },
                scale.max_cycles);
  const Cycle elapsed = eng.now() - t0;
  return elapsed > 0
             ? static_cast<double>(core.committed() - c0) /
                   static_cast<double>(elapsed)
             : 0.0;
}

namespace {

HeteroResult run_cmp(const SimConfig& cfg, const std::string& mix_id,
                     const std::vector<int>& spec_ids_in,
                     const GpuAppDesc* app, Policy policy,
                     const RunScale& scale, Telemetry* telemetry,
                     CheckContext* check) {
  std::vector<SceneFrame> frames;
  double fps_scale = 1.0;
  unsigned measure_frames = 0;
  if (app != nullptr) {
    frames = build_frames(*app, cfg.seed);
    fps_scale = app->fps_scale;
    measure_frames =
        scale.measure_frames > 0 ? scale.measure_frames : app->frames;
  }

  HeteroCmp cmp(cfg, policy, profiles_of(spec_ids_in), std::move(frames),
                fps_scale);
  if (telemetry != nullptr) cmp.attach_telemetry(*telemetry);
#ifdef GPUQOS_STRICT_CHECKS
  // Strict builds audit every run: experiments double as regression nets.
  CheckContext strict_check;
  if (check == nullptr) check = &strict_check;
#endif
  if (check != nullptr) cmp.attach_checks(*check);
  if (app != nullptr) cmp.gpu().set_repeat(true);
  Engine& eng = cmp.engine();

  const std::size_t n = cmp.num_cores();
  const bool gpu_active = app != nullptr;

  // --- Warm-up: every core reaches its warm quota; the GPU completes its
  // warm frames (which also moves the FRPU past its first learning phase).
  auto warm_done = [&] {
    if (eng.now() < scale.warm_min_cycles) return false;
    for (std::size_t i = 0; i < n; ++i) {
      if (cmp.core(i).committed() < scale.warm_instrs) return false;
    }
    if (gpu_active && cmp.gpu().frames_completed() < scale.warm_frames) {
      return false;
    }
    return true;
  };
  eng.run_until(warm_done, scale.max_cycles);
  if (telemetry != nullptr) {
    telemetry->mark_phase(eng.now(), "measure_start");
    telemetry->sampler().rebase(eng.now());
  }

  // --- Snapshot.
  const auto snap = cmp.stats().counters();
  std::vector<CoreWindow> windows(n);
  for (std::size_t i = 0; i < n; ++i) {
    windows[i].start_committed = cmp.core(i).committed();
    windows[i].start_cycle = eng.now();
  }
  const std::uint64_t frames0 = cmp.gpu().frames_completed();
  const Cycle t0 = eng.now();
  Cycle gpu_done_cycle = kNoCycle;

  // --- Measure: each CPU application runs until it commits its quota
  // (recording its own finish time); the run ends when all quotas are met
  // and the GPU has rendered its measured frames.
  auto all_done = [&] {
    bool done = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (windows[i].done_cycle == kNoCycle) {
        if (cmp.core(i).committed() >=
            windows[i].start_committed + scale.measure_instrs) {
          windows[i].done_cycle = eng.now();
        } else {
          done = false;
        }
      }
    }
    if (gpu_active && gpu_done_cycle == kNoCycle) {
      if (cmp.gpu().frames_completed() >= frames0 + measure_frames) {
        gpu_done_cycle = eng.now();
      } else {
        done = false;
      }
    }
    return done;
  };
  const Cycle ran = eng.run_until(all_done, scale.max_cycles);

  HeteroResult r;
  r.mix_id = mix_id;
  r.policy = policy;
  r.spec_ids = spec_ids_in;
  r.hit_cycle_cap = ran >= scale.max_cycles;
  for (std::size_t i = 0; i < n; ++i) {
    const Cycle end =
        windows[i].done_cycle != kNoCycle ? windows[i].done_cycle : eng.now();
    const Cycle elapsed = end - windows[i].start_cycle;
    const std::uint64_t committed =
        cmp.core(i).committed() - windows[i].start_committed;
    const std::uint64_t counted =
        std::min<std::uint64_t>(committed, scale.measure_instrs);
    r.cpu_ipc.push_back(elapsed > 0 ? static_cast<double>(counted) /
                                          static_cast<double>(elapsed)
                                    : 0.0);
  }
  if (gpu_active) {
    // Frames are measured up to the cycle the GPU met its quota; the GPU
    // keeps rendering afterwards (repeat mode) purely as contention for any
    // still-running CPU applications.
    const Cycle gend = gpu_done_cycle != kNoCycle ? gpu_done_cycle : eng.now();
    const std::uint64_t gframes =
        gpu_done_cycle != kNoCycle
            ? measure_frames
            : cmp.gpu().frames_completed() - frames0;
    const double secs = cycles_to_seconds(gend - t0);
    r.seconds = secs;
    r.fps = secs > 0 ? static_cast<double>(gframes) / secs / fps_scale : 0.0;
    r.gpu_frame_cycles =
        gframes > 0 ? static_cast<double>(base_to_gpu_cycles(gend - t0)) /
                          static_cast<double>(gframes)
                    : 0.0;
  }
  if (gpu_active) {
    const auto& samples = cmp.frpu().samples();
    double err_sum = 0.0;
    for (const auto& smp : samples) {
      if (smp.actual_cycles > 0) {
        err_sum += (smp.predicted_cycles - smp.actual_cycles) /
                   smp.actual_cycles * 100.0;
      }
    }
    r.est_samples = samples.size();
    r.est_error_pct = samples.empty()
                          ? 0.0
                          : err_sum / static_cast<double>(samples.size());
    r.est_relearns = cmp.frpu().relearn_events();
  }
  for (const auto& [name, value] : cmp.stats().counters()) {
    auto it = snap.find(name);
    const std::uint64_t before = it == snap.end() ? 0 : it->second;
    r.stat_delta[name] = value >= before ? value - before : 0;
  }
  if (telemetry != nullptr) {
    // Close open trace spans and capture the registry before the CMP (which
    // owns the StatRegistry) is destroyed.
    telemetry->finalize(eng.now());
    telemetry->capture_stats(cmp.stats());
  }
  if (check != nullptr) {
    // A run that stopped mid-flight is not quiesced, so the ledger only
    // requires injected >= retired; a drained engine additionally requires
    // every read to have completed exactly once.
    check->finalize(eng.now(), /*quiesced=*/eng.pending_events() == 0);
  }
  return r;
}

}  // namespace

HeteroResult standalone_gpu(const SimConfig& cfg, const GpuAppDesc& app,
                            const RunScale& scale, Telemetry* telemetry,
                            CheckContext* check) {
  return run_cmp(cfg, app.name + "-alone", {}, &app, Policy::Baseline, scale,
                 telemetry, check);
}

HeteroResult run_hetero(const SimConfig& cfg, const HeteroMix& mix,
                        Policy policy, const RunScale& scale,
                        Telemetry* telemetry, CheckContext* check) {
  const GpuAppDesc& app = gpu_app(mix.gpu_app);
  return run_cmp(cfg, mix.id, mix.cpu_specs, &app, policy, scale, telemetry,
                 check);
}

std::vector<double> standalone_ipcs(const SimConfig& cfg, const HeteroMix& mix,
                                    const RunScale& scale) {
  std::vector<double> out;
  out.reserve(mix.cpu_specs.size());
  for (int id : mix.cpu_specs) out.push_back(standalone_cpu_ipc(cfg, id, scale));
  return out;
}

}  // namespace gpuqos
