#include "sim/runner.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <utility>

#include "check/check.hpp"
#include "check/context.hpp"
#include "ckpt/state_io.hpp"
#include "common/units.hpp"
#include "obs/telemetry.hpp"
#include "workloads/spec.hpp"

namespace gpuqos {
namespace {

/// Per-core measurement bookkeeping.
struct CoreWindow {
  std::uint64_t start_committed = 0;
  Cycle start_cycle = 0;
  Cycle done_cycle = kNoCycle;
};

/// Where in the run a snapshot was taken; stored in the "run" section so a
/// resumed process can rebuild the runner's bookkeeping.
enum RunStage : std::uint8_t {
  kStageWarm = 0,      // mid-warm-up
  kStageWarmDone = 1,  // warm-up complete, measurement not yet started
  kStageMeasure = 2,   // mid-measurement
};

std::vector<SpecProfile> profiles_of(const std::vector<int>& ids) {
  std::vector<SpecProfile> out;
  out.reserve(ids.size());
  for (int id : ids) out.push_back(spec_profile(id));
  return out;
}

}  // namespace

RunScale RunScale::from_env() {
  RunScale s;
  const char* fast = std::getenv("GPUQOS_FAST");
  if (fast != nullptr && std::strcmp(fast, "0") != 0) {
    s.warm_instrs = 50'000;
    s.measure_instrs = 300'000;
    s.warm_frames = 2;
    s.measure_frames = 2;
    s.warm_min_cycles = 1'000'000;
    s.max_cycles = 100'000'000;
  }
  return s;
}

double standalone_cpu_ipc(const SimConfig& cfg, int spec_id,
                          const RunScale& scale) {
  HeteroCmp cmp(cfg, Policy::Baseline, {spec_profile(spec_id)}, {}, 1.0);
  Engine& eng = cmp.engine();
  CpuCore& core = cmp.core(0);

  eng.run_until([&] { return core.committed() >= scale.warm_instrs; },
                scale.max_cycles);
  const std::uint64_t c0 = core.committed();
  const Cycle t0 = eng.now();
  eng.run_until([&] { return core.committed() >= c0 + scale.measure_instrs; },
                scale.max_cycles);
  const Cycle elapsed = eng.now() - t0;
  return elapsed > 0
             ? static_cast<double>(core.committed() - c0) /
                   static_cast<double>(elapsed)
             : 0.0;
}

namespace {

HeteroResult run_cmp(const SimConfig& cfg, const std::string& mix_id,
                     const std::vector<int>& spec_ids_in,
                     const GpuAppDesc* app, Policy policy,
                     const RunScale& scale, const RunHooks& hooks) {
  std::vector<SceneFrame> frames;
  double fps_scale = 1.0;
  unsigned measure_frames = 0;
  if (app != nullptr) {
    frames = build_frames(*app, cfg.seed);
    fps_scale = app->fps_scale;
    measure_frames =
        scale.measure_frames > 0 ? scale.measure_frames : app->frames;
  }

  HeteroCmp cmp(cfg, policy, profiles_of(spec_ids_in), std::move(frames),
                fps_scale);
  Telemetry* telemetry = hooks.telemetry;
  CheckContext* check = hooks.check;
  if (telemetry != nullptr) cmp.attach_telemetry(*telemetry);
#ifdef GPUQOS_STRICT_CHECKS
  // Strict builds audit every run: experiments double as regression nets.
  CheckContext strict_check;
  if (check == nullptr) check = &strict_check;
#endif
  if (check != nullptr) cmp.attach_checks(*check);
  if (app != nullptr) cmp.gpu().set_repeat(true);
  Engine& eng = cmp.engine();
  Profiler* prof = telemetry != nullptr ? telemetry->profiler() : nullptr;

  const std::size_t n = cmp.num_cores();
  const bool gpu_active = app != nullptr;

  // --- Snapshot identity: pins any snapshot this run writes, and is what
  // any snapshot this run loads is validated against.
  ckpt::SnapshotMeta live_meta;
  live_meta.mix_id = mix_id;
  live_meta.policy = to_string(policy);
  live_meta.seed = cfg.seed;
  live_meta.cpu_cores = checked_narrow<std::uint32_t>(n);
  live_meta.fps_scale = fps_scale;
  live_meta.cfg_digest = config_digest(cfg);
  live_meta.warm_instrs = scale.warm_instrs;
  live_meta.measure_instrs = scale.measure_instrs;
  live_meta.warm_frames = scale.warm_frames;
  live_meta.measure_frames = scale.measure_frames;
  live_meta.warm_min_cycles = scale.warm_min_cycles;
  live_meta.max_cycles = scale.max_cycles;

  // --- Runner bookkeeping; overwritten below when resuming.
  std::uint8_t stage = kStageWarm;
  Cycle ckpt_interval = hooks.ckpt_interval;
  Cycle next_barrier = ckpt_interval;
  Cycle phase_cap = scale.max_cycles;  // warm-up starts at cycle 0
  std::map<std::string, std::uint64_t> snap;
  std::vector<CoreWindow> windows;
  std::uint64_t frames0 = 0;
  Cycle t0 = 0;
  Cycle gpu_done_cycle = kNoCycle;

  // --- Resume: meta, runner bookkeeping, then every module section. Loads
  // after attach_telemetry/attach_checks so the restored engine can verify
  // the ticker layout matches the instrumentation actually attached.
  const bool resuming =
      hooks.resume_data != nullptr || !hooks.resume_path.empty();
  if (resuming) {
    std::vector<std::uint8_t> bytes =
        hooks.resume_data != nullptr
            ? *hooks.resume_data
            : ckpt::read_snapshot_file(hooks.resume_path);
    ckpt::StateReader r(std::move(bytes));
    if (!r.next_section()) {
      throw ckpt::CkptError("snapshot has no sections");
    }
    ckpt::SnapshotMeta m = ckpt::load_meta(r);
    r.expect_section_end();
    ckpt::validate_meta(m, live_meta, hooks.resume_mode);
    if (!r.next_section() || r.tag() != "run") {
      throw ckpt::CkptError("snapshot is missing the 'run' section");
    }
    stage = r.u8();
    ckpt_interval = r.u64();
    next_barrier = r.u64();
    phase_cap = r.u64();
    if (stage == kStageMeasure) {
      const std::uint64_t counters = r.u64();
      for (std::uint64_t i = 0; i < counters; ++i) {
        const std::string name = r.str();
        snap[name] = r.u64();
      }
      const std::uint64_t cores = r.u64();
      if (cores != n) r.fail("core-window count mismatch");
      windows.assign(n, CoreWindow{});
      for (CoreWindow& cw : windows) {
        cw.start_committed = r.u64();
        cw.start_cycle = r.u64();
        cw.done_cycle = r.u64();
      }
      frames0 = r.u64();
      t0 = r.u64();
      gpu_done_cycle = r.u64();
    } else if (stage > kStageMeasure) {
      r.fail("unknown run stage " + std::to_string(stage));
    }
    r.expect_section_end();
    cmp.load_state(r, hooks.resume_mode);
    if (telemetry != nullptr) telemetry->sampler().rebase(eng.now());
  }

  // --- Snapshot writing: meta, run bookkeeping, then every module. Callers
  // must have drained the simulation (cmp.drain()) first.
  auto write_snapshot = [&](std::uint8_t snap_stage,
                            std::vector<std::uint8_t>* memory_out) {
    ckpt::StateWriter w;
    ckpt::save_meta(w, live_meta);
    w.begin_section("run");
    w.u8(snap_stage);
    w.u64(ckpt_interval);
    w.u64(next_barrier);
    w.u64(phase_cap);
    if (snap_stage == kStageMeasure) {
      w.u64(snap.size());
      for (const auto& [name, value] : snap) {
        w.str(name);
        w.u64(value);
      }
      w.u64(windows.size());
      for (const CoreWindow& cw : windows) {
        w.u64(cw.start_committed);
        w.u64(cw.start_cycle);
        w.u64(cw.done_cycle);
      }
      w.u64(frames0);
      w.u64(t0);
      w.u64(gpu_done_cycle);
    }
    w.end_section();
    cmp.save_state(w);
    if (memory_out != nullptr) {
      *memory_out = w.finish();
    } else {
      ckpt::write_snapshot_file(hooks.ckpt_out, w.finish());
      std::fprintf(stderr, "# ckpt: wrote %s at cycle %llu\n",
                   hooks.ckpt_out.c_str(),
                   static_cast<unsigned long long>(eng.now()));
    }
  };

  // --- Phase driver: run `pred` to completion under the phase cap,
  // drain-barriering (and snapshotting) every `ckpt_interval` cycles.
  // Returns false when the cap cut the phase short.
  auto run_phase = [&](const std::function<bool()>& pred) {
    for (;;) {
      if (pred()) return true;
      if (eng.now() >= phase_cap) return false;
      Cycle target = phase_cap;
      if (ckpt_interval > 0 && next_barrier < target) target = next_barrier;
      if (target > eng.now()) {
        eng.run_until(
            [&] {
              const bool done = pred();
              return done || eng.now() >= target;
            },
            target - eng.now());
      }
      if (pred()) return true;
      if (ckpt_interval > 0 && eng.now() >= next_barrier) {
        ProfScope ps(prof, ProfModule::Ckpt);
        cmp.drain();
        if (!hooks.ckpt_out.empty()) write_snapshot(stage, nullptr);
        cmp.unfreeze_injectors();
        while (next_barrier <= eng.now()) next_barrier += ckpt_interval;
      }
    }
  };

  // --- Warm-up: every core reaches its warm quota; the GPU completes its
  // warm frames (which also moves the FRPU past its first learning phase).
  if (stage == kStageWarm) {
    auto warm_done = [&] {
      if (eng.now() < scale.warm_min_cycles) return false;
      for (std::size_t i = 0; i < n; ++i) {
        if (cmp.core(i).committed() < scale.warm_instrs) return false;
      }
      if (gpu_active && cmp.gpu().frames_completed() < scale.warm_frames) {
        return false;
      }
      return true;
    };
    run_phase(warm_done);
    stage = kStageWarmDone;
    // Warm-end snapshot: the warm-fork capture, or --ckpt-out without a
    // barrier interval.
    const bool warm_snapshot =
        hooks.warm_capture != nullptr ||
        (ckpt_interval == 0 && !hooks.ckpt_out.empty());
    if (warm_snapshot) {
      ProfScope ps(prof, ProfModule::Ckpt);
      cmp.drain();
      write_snapshot(kStageWarmDone, hooks.warm_capture);
      cmp.unfreeze_injectors();
    }
    if (hooks.warm_capture != nullptr) {
      HeteroResult r;
      r.mix_id = mix_id;
      r.policy = policy;
      r.spec_ids = spec_ids_in;
      if (telemetry != nullptr) {
        telemetry->finalize(eng.now());
        telemetry->capture_stats(cmp.stats());
      }
      if (check != nullptr) {
        check->finalize(eng.now(), /*quiesced=*/eng.pending_events() == 0);
      }
      return r;
    }
  }

  if (stage == kStageWarmDone) {
    if (telemetry != nullptr) {
      telemetry->mark_phase(eng.now(), "measure_start");
      telemetry->sampler().rebase(eng.now());
    }
    if (prof != nullptr) prof->set_phase(ProfPhase::Measure);
    // --- Measurement-window snapshot.
    snap = cmp.stats().counters();
    windows.assign(n, CoreWindow{});
    for (std::size_t i = 0; i < n; ++i) {
      windows[i].start_committed = cmp.core(i).committed();
      windows[i].start_cycle = eng.now();
    }
    frames0 = cmp.gpu().frames_completed();
    t0 = eng.now();
    gpu_done_cycle = kNoCycle;
    phase_cap = eng.now() + scale.max_cycles;
    stage = kStageMeasure;
  } else {
    // Resumed straight into the measured window.
    if (prof != nullptr) prof->set_phase(ProfPhase::Measure);
    if (telemetry != nullptr) telemetry->mark_phase(eng.now(), "resume");
  }

  // --- Measure: each CPU application runs until it commits its quota
  // (recording its own finish time); the run ends when all quotas are met
  // and the GPU has rendered its measured frames.
  auto all_done = [&] {
    bool done = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (windows[i].done_cycle == kNoCycle) {
        if (cmp.core(i).committed() >=
            windows[i].start_committed + scale.measure_instrs) {
          windows[i].done_cycle = eng.now();
        } else {
          done = false;
        }
      }
    }
    if (gpu_active && gpu_done_cycle == kNoCycle) {
      if (cmp.gpu().frames_completed() >= frames0 + measure_frames) {
        gpu_done_cycle = eng.now();
      } else {
        done = false;
      }
    }
    return done;
  };
  const bool completed = run_phase(all_done);

  HeteroResult r;
  r.mix_id = mix_id;
  r.policy = policy;
  r.spec_ids = spec_ids_in;
  r.hit_cycle_cap = !completed;
  for (std::size_t i = 0; i < n; ++i) {
    const Cycle end =
        windows[i].done_cycle != kNoCycle ? windows[i].done_cycle : eng.now();
    const Cycle elapsed = end - windows[i].start_cycle;
    const std::uint64_t committed =
        cmp.core(i).committed() - windows[i].start_committed;
    const std::uint64_t counted =
        std::min<std::uint64_t>(committed, scale.measure_instrs);
    r.cpu_ipc.push_back(elapsed > 0 ? static_cast<double>(counted) /
                                          static_cast<double>(elapsed)
                                    : 0.0);
  }
  if (gpu_active) {
    // Frames are measured up to the cycle the GPU met its quota; the GPU
    // keeps rendering afterwards (repeat mode) purely as contention for any
    // still-running CPU applications.
    const Cycle gend = gpu_done_cycle != kNoCycle ? gpu_done_cycle : eng.now();
    const std::uint64_t gframes =
        gpu_done_cycle != kNoCycle
            ? measure_frames
            : cmp.gpu().frames_completed() - frames0;
    const double secs = cycles_to_seconds(gend - t0);
    r.seconds = secs;
    r.fps = secs > 0 ? static_cast<double>(gframes) / secs / fps_scale : 0.0;
    r.gpu_frame_cycles =
        gframes > 0 ? static_cast<double>(base_to_gpu_cycles(gend - t0)) /
                          static_cast<double>(gframes)
                    : 0.0;
  }
  if (gpu_active) {
    const auto& samples = cmp.frpu().samples();
    double err_sum = 0.0;
    for (const auto& smp : samples) {
      if (smp.actual_cycles > 0) {
        err_sum += (smp.predicted_cycles - smp.actual_cycles) /
                   smp.actual_cycles * 100.0;
      }
    }
    r.est_samples = samples.size();
    r.est_error_pct = samples.empty()
                          ? 0.0
                          : err_sum / static_cast<double>(samples.size());
    r.est_relearns = cmp.frpu().relearn_events();
  }
  for (const auto& [name, value] : cmp.stats().counters()) {
    auto it = snap.find(name);
    const std::uint64_t before = it == snap.end() ? 0 : it->second;
    r.stat_delta[name] = value >= before ? value - before : 0;
  }
  if (telemetry != nullptr) {
    // Close open trace spans and capture the registry before the CMP (which
    // owns the StatRegistry) is destroyed.
    telemetry->finalize(eng.now());
    telemetry->capture_stats(cmp.stats());
  }
  if (check != nullptr) {
    // A run that stopped mid-flight is not quiesced, so the ledger only
    // requires injected >= retired; a drained engine additionally requires
    // every read to have completed exactly once.
    check->finalize(eng.now(), /*quiesced=*/eng.pending_events() == 0);
  }
  return r;
}

}  // namespace

HeteroResult standalone_gpu(const SimConfig& cfg, const GpuAppDesc& app,
                            const RunScale& scale, const RunHooks& hooks) {
  return run_cmp(cfg, app.name + "-alone", {}, &app, Policy::Baseline, scale,
                 hooks);
}

HeteroResult run_hetero(const SimConfig& cfg, const HeteroMix& mix,
                        Policy policy, const RunScale& scale,
                        const RunHooks& hooks) {
  const GpuAppDesc& app = gpu_app(mix.gpu_app);
  return run_cmp(cfg, mix.id, mix.cpu_specs, &app, policy, scale, hooks);
}

std::vector<std::uint8_t> warm_hetero_snapshot(const SimConfig& cfg,
                                               const HeteroMix& mix,
                                               Policy policy,
                                               const RunScale& scale) {
  std::vector<std::uint8_t> bytes;
  RunHooks hooks;
  hooks.warm_capture = &bytes;
  (void)run_hetero(cfg, mix, policy, scale, hooks);
  return bytes;
}

std::vector<HeteroResult> run_hetero_forked(const SimConfig& cfg,
                                            const HeteroMix& mix,
                                            const std::vector<Policy>& policies,
                                            const RunScale& scale) {
  std::vector<HeteroResult> out;
  if (policies.empty()) return out;
  const std::vector<std::uint8_t> warm =
      warm_hetero_snapshot(cfg, mix, policies.front(), scale);
  out.reserve(policies.size());
  for (Policy p : policies) {
    RunHooks hooks;
    hooks.resume_data = &warm;
    hooks.resume_mode = ckpt::RestoreMode::kFork;
    out.push_back(run_hetero(cfg, mix, p, scale, hooks));
  }
  return out;
}

std::vector<double> standalone_ipcs(const SimConfig& cfg, const HeteroMix& mix,
                                    const RunScale& scale) {
  std::vector<double> out;
  out.reserve(mix.cpu_specs.size());
  for (int id : mix.cpu_specs) out.push_back(standalone_cpu_ipc(cfg, id, scale));
  return out;
}

}  // namespace gpuqos
